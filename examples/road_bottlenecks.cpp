// Road-network bottleneck analysis.
//
// On road networks (the paper's luxembourg-osm family), vertices with high
// betweenness centrality are exactly the chokepoints every detour-free route
// must cross — bridges, junction clusters. This example generates a sparse
// road mesh, runs exact BC, and reports the chokepoints together with how
// much of all shortest-path traffic crosses them. It also demonstrates the
// deep-BFS regime: hundreds of frontier levels, the worst case for
// level-synchronous GPU algorithms (compare the modeled time per edge with
// quickstart's shallow small world).
//
// Usage: road_bottlenecks [--rows 8] [--cols 8] [--subdiv 12] [--seed 3]
#include <algorithm>
#include <iostream>
#include <numeric>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "core/turbobc.hpp"
#include "generators/road.hpp"
#include "gpusim/device.hpp"
#include "graph/bfs_probe.hpp"

int main(int argc, char** argv) {
  using namespace turbobc;
  const CliArgs args(argc, argv);

  const auto graph = gen::road_network({
      .grid_rows = static_cast<vidx_t>(args.get_int("rows", 8)),
      .grid_cols = static_cast<vidx_t>(args.get_int("cols", 8)),
      .keep_p = 0.65,
      .subdivisions = static_cast<int>(args.get_int("subdiv", 12)),
      .seed = static_cast<std::uint64_t>(args.get_int("seed", 3)),
  });
  const vidx_t n = graph.num_vertices();
  std::cout << "road network: " << n << " junctions/segments, "
            << graph.num_arcs() / 2 << " road segments\n";

  const auto probe =
      graph::bfs_reference(graph::CscGraph::from_edges(graph), 0);
  std::cout << "network diameter from vertex 0 (BFS depth): " << probe.height
            << " hops — deep-BFS regime\n\n";

  sim::Device device;
  device.set_keep_launch_records(false);
  bc::TurboBC turbo(device, graph, {.variant = bc::Variant::kScCsc});
  const bc::BcResult result = turbo.run_exact();

  // Normalize: bc(v) / [(n-1)(n-2)/2] = fraction of all vertex pairs whose
  // shortest paths cross v (undirected normalization).
  const double pairs = static_cast<double>(n - 1) *
                       static_cast<double>(n - 2) / 2.0;
  std::vector<vidx_t> order(result.bc.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](vidx_t a, vidx_t b) {
    return result.bc[static_cast<std::size_t>(a)] >
           result.bc[static_cast<std::size_t>(b)];
  });

  std::cout << "top 8 chokepoints (share of all shortest routes crossing "
               "them):\n";
  for (int i = 0; i < 8; ++i) {
    const auto v = static_cast<std::size_t>(order[static_cast<std::size_t>(i)]);
    std::cout << "  vertex " << v << "  "
              << fixed(100.0 * result.bc[v] / pairs, 1) << "% of routes\n";
  }

  std::cout << "\nmodeled device time: "
            << fixed(result.device_seconds, 3) << " s for " << n
            << " sources (" << fixed(result.device_seconds * 1e6 /
                                          static_cast<double>(n),
                                     0)
            << " us/source — deep BFS trees pay per-level launch overhead)\n";
  std::cout << "peak device memory: " << human_bytes(result.peak_device_bytes)
            << '\n';
  return 0;
}
