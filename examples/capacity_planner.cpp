// Device-capacity planner: will a BC run fit on your GPU?
//
// The paper's Table 4 point is practical: the array inventory decides
// whether a graph's BC is computable at all on a given device. This tool
// takes a Matrix Market file (or generates a demo graph), prints the
// structural profile, the recommended TurboBC variant, and the projected
// device footprint of TurboBC (7n + m words) vs a gunrock-style BC
// (9n + 3m words with advance scratch) against a chosen memory size — then
// actually runs TurboBC single-source on a simulated device of that size to
// confirm.
//
// Usage: capacity_planner [graph.mtx] [--memory-mb 12196] [--source 0]
//        [--profile] [--trace out.json]
//
// --profile prints an nvprof-style per-kernel summary of the run;
// --trace writes a Chrome trace-event JSON of the kernel timeline
// (load it in chrome://tracing or ui.perfetto.dev).
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/footprint.hpp"
#include "core/turbobc.hpp"
#include "generators/kronecker.hpp"
#include "gpusim/device.hpp"
#include "gpusim/trace.hpp"
#include "graph/mtx_io.hpp"
#include "graph/stats.hpp"

int main(int argc, char** argv) {
  using namespace turbobc;
  const CliArgs args(argc, argv);

  graph::EdgeList graph(0, true);
  if (!args.positional().empty()) {
    std::cout << "loading " << args.positional()[0] << "...\n";
    graph = graph::read_matrix_market_file(args.positional()[0]);
  } else {
    std::cout << "no input file given; generating a demo kronecker graph "
                 "(pass a .mtx path to analyze your own)\n";
    graph = gen::kronecker({.scale = 14, .edge_factor = 32, .seed = 5});
  }

  const vidx_t n = graph.num_vertices();
  const eidx_t m = graph.num_arcs();
  const auto stats = graph::degree_stats(graph);
  const double scf = graph::scf_index(graph);
  const bc::Variant variant = bc::select_variant(graph);

  std::cout << "\nstructural profile\n";
  Table p({"n", "m", "degree max/mu/sd", "scf", "class", "variant"});
  p.add_row({human_count(static_cast<double>(n)),
             human_count(static_cast<double>(m)),
             human_count(static_cast<double>(stats.max)) + "/" +
                 fixed(stats.mean, 1) + "/" + fixed(stats.stddev, 1),
             fixed(scf, 1),
             graph::is_irregular(graph) ? "irregular" : "regular",
             std::string(bc::to_string(variant))});
  p.print(std::cout);

  const auto memory_mb = static_cast<std::uint64_t>(
      args.get_int("memory-mb", 12196));
  const std::uint64_t capacity = memory_mb * 1024 * 1024;

  std::cout << "\nprojected device footprint vs " << memory_mb << " MB\n";
  Table f({"implementation", "model", "bytes", "fits"});
  f.add_row({"TurboBC", "7n + m words",
             human_bytes(bc::turbobc_model_bytes(n, m)),
             bc::turbobc_fits(n, m, capacity) ? "yes" : "NO"});
  f.add_row({"gunrock-style BC", "9n + 3m words (with advance scratch)",
             human_bytes(bc::gunrock_runtime_words(n, m) * bc::kPaperWordBytes),
             bc::gunrock_fits(n, m, capacity) ? "yes" : "NO"});
  f.print(std::cout);

  // Confirm by construction on a simulated device of that size.
  sim::DeviceProps props = sim::DeviceProps::titan_xp();
  props.global_mem_bytes = capacity;
  sim::Device device(props);
  try {
    bc::TurboBC turbo(device, graph, {.variant = variant});
    const auto source = static_cast<vidx_t>(args.get_int("source", 0));
    const auto r = turbo.run_single_source(source);
    std::cout << "\nsingle-source run: OK — "
              << fixed(r.device_seconds * 1e3, 2) << " ms modeled, peak "
              << human_bytes(r.peak_device_bytes) << ", BFS depth "
              << r.last_source.bfs_depth << ", reached "
              << r.last_source.reached << "/" << n << " vertices\n";
  } catch (const DeviceOutOfMemory& e) {
    std::cout << "\nsingle-source run: OUT OF MEMORY (" << e.what() << ")\n";
    return 0;
  }

  if (args.has("profile")) {
    std::cout << "\nper-kernel profile (modeled):\n";
    sim::print_kernel_profile(std::cout, device);
  }
  if (args.has("trace")) {
    const std::string path = args.get("trace", "trace.json");
    std::ofstream out(path);
    sim::write_chrome_trace(out, device);
    std::cout << "\nkernel timeline written to " << path
              << " (open in chrome://tracing)\n";
  }
  return 0;
}
