// Critical-link analysis with edge betweenness centrality.
//
// Vertex BC finds chokepoint *places*; edge BC finds chokepoint *links* —
// the cables, bridges and trunk roads whose failure reroutes the most
// traffic. This example builds a sparse road mesh, computes exact edge BC
// with the TurboBC edge extension, verifies against the Brandes edge
// oracle, and prints the most critical links. It then demonstrates the
// point by "closing" the top link and measuring how much the average
// shortest-path length degrades versus closing a random link.
//
// Usage: critical_links [--rows 6] [--cols 6] [--subdiv 6] [--seed 2]
#include <algorithm>
#include <iostream>
#include <numeric>
#include <queue>

#include "baselines/brandes.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "core/turbobc.hpp"
#include "graph/csr.hpp"
#include "generators/road.hpp"
#include "gpusim/device.hpp"

namespace {

using namespace turbobc;

/// Mean finite shortest-path length from a few probes (connectivity proxy).
double mean_path_length(const graph::EdgeList& el) {
  const auto csr = graph::CsrGraph::from_edges(el);
  const vidx_t n = csr.num_vertices();
  double total = 0.0;
  int pairs = 0;
  for (vidx_t s = 0; s < n; s += std::max<vidx_t>(1, n / 16)) {
    std::vector<vidx_t> dist(static_cast<std::size_t>(n), kInvalidVertex);
    std::queue<vidx_t> q;
    dist[static_cast<std::size_t>(s)] = 0;
    q.push(s);
    while (!q.empty()) {
      const vidx_t v = q.front();
      q.pop();
      const auto [b, e] = csr.row_range(v);
      for (eidx_t k = b; k < e; ++k) {
        const vidx_t w = csr.col_idx()[static_cast<std::size_t>(k)];
        if (dist[static_cast<std::size_t>(w)] == kInvalidVertex) {
          dist[static_cast<std::size_t>(w)] =
              dist[static_cast<std::size_t>(v)] + 1;
          q.push(w);
        }
      }
    }
    for (const vidx_t d : dist) {
      if (d > 0 && d != kInvalidVertex) {
        total += d;
        ++pairs;
      }
    }
  }
  return pairs > 0 ? total / pairs : 0.0;
}

graph::EdgeList without_edge(const graph::EdgeList& el, vidx_t u, vidx_t v) {
  graph::EdgeList out(el.num_vertices(), el.directed());
  for (const graph::Edge& e : el.edges()) {
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) continue;
    out.add_edge(e.u, e.v);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  auto el = gen::road_network({
      .grid_rows = static_cast<vidx_t>(args.get_int("rows", 6)),
      .grid_cols = static_cast<vidx_t>(args.get_int("cols", 6)),
      .keep_p = 0.6,
      .subdivisions = static_cast<int>(args.get_int("subdiv", 6)),
      .seed = static_cast<std::uint64_t>(args.get_int("seed", 2)),
  });
  el.canonicalize();
  std::cout << "road network: " << el.num_vertices() << " vertices, "
            << el.num_arcs() / 2 << " links\n";

  sim::Device device;
  device.set_keep_launch_records(false);
  bc::TurboBC turbo(device, el,
                    {.variant = bc::Variant::kScCsc, .edge_bc = true});
  const bc::BcResult result = turbo.run_exact();
  std::cout << "exact edge BC in " << fixed(result.device_seconds, 3)
            << " s (modeled)\n";

  // Verify against the Brandes edge oracle before trusting the ranking.
  const auto golden = baseline::brandes_edge_bc(el);
  double worst = 0.0;
  for (std::size_t k = 0; k < golden.size(); ++k) {
    worst = std::max(worst, std::abs(result.edge_bc[k] - golden[k]) /
                                std::max(1.0, golden[k]));
  }
  std::cout << "verification vs Brandes edge BC: max rel err "
            << fixed(worst, 9) << (worst < 1e-6 ? " (OK)\n\n" : " MISMATCH\n\n");

  // Rank undirected links by the sum of their two arc values.
  struct Link {
    vidx_t u, v;
    double bc;
  };
  std::vector<Link> links;
  for (std::size_t k = 0; k < el.edges().size(); ++k) {
    const auto& e = el.edges()[k];
    if (e.u < e.v) {
      // find the reverse arc's value via linear map: canonical order allows
      // a lookup by binary search, but a simple pairing pass suffices here.
      links.push_back({e.u, e.v, result.edge_bc[k]});
    } else {
      for (auto& l : links) {
        if (l.u == e.v && l.v == e.u) {
          l.bc += result.edge_bc[k];
          break;
        }
      }
    }
  }
  std::sort(links.begin(), links.end(),
            [](const Link& a, const Link& b) { return a.bc > b.bc; });

  std::cout << "top 5 critical links:\n";
  for (int i = 0; i < 5 && i < static_cast<int>(links.size()); ++i) {
    std::cout << "  " << links[static_cast<std::size_t>(i)].u << " -- "
              << links[static_cast<std::size_t>(i)].v << "  edge bc "
              << fixed(links[static_cast<std::size_t>(i)].bc, 0) << '\n';
  }

  // Close the top link vs a median link and compare network degradation.
  const double base = mean_path_length(el);
  const auto& top = links.front();
  const auto& median = links[links.size() / 2];
  const double after_top = mean_path_length(without_edge(el, top.u, top.v));
  const double after_median =
      mean_path_length(without_edge(el, median.u, median.v));
  std::cout << "\nmean shortest-path length: " << fixed(base, 2)
            << "\n  after closing the top link:    " << fixed(after_top, 2)
            << " (+" << fixed(100.0 * (after_top / base - 1.0), 1) << "%)"
            << "\n  after closing a median link:   " << fixed(after_median, 2)
            << " (+" << fixed(100.0 * (after_median / base - 1.0), 1)
            << "%)\n";
  return 0;
}
