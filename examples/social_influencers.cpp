// Influencer analysis on a synthetic social network — the paper's motivating
// social-network use case.
//
// Generates a follower graph with celebrity superhubs, computes betweenness
// centrality from a sample of sources (the standard approximation for big
// graphs: BC is a sum over sources, so a uniform sample gives an unbiased
// scaled estimate), and contrasts the BC ranking with the naive
// follower-count (degree) ranking: brokers who bridge communities rank high
// on BC even with modest degree.
//
// Usage: social_influencers [--n 20000] [--sources 64] [--seed 7]
#include <algorithm>
#include <iostream>
#include <numeric>

#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "core/turbobc.hpp"
#include "generators/preferential.hpp"
#include "gpusim/device.hpp"

int main(int argc, char** argv) {
  using namespace turbobc;
  const CliArgs args(argc, argv);
  const auto n = static_cast<vidx_t>(args.get_int("n", 20000));
  const auto n_sources = static_cast<std::size_t>(args.get_int("sources", 64));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  const auto graph = gen::superhub_social({
      .n = n,
      .out_degree = 12,
      .celebrities = 6,
      .celebrity_p = 0.25,
      .seed = seed,
  });
  std::cout << "follower graph: n = " << graph.num_vertices()
            << ", arcs = " << graph.num_arcs() << '\n';

  // Uniform source sample (without replacement).
  Xoshiro256 rng(seed ^ 0x5eed);
  std::vector<vidx_t> sources;
  std::vector<char> chosen(static_cast<std::size_t>(n), 0);
  while (sources.size() < n_sources) {
    const auto v = static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (!chosen[static_cast<std::size_t>(v)]) {
      chosen[static_cast<std::size_t>(v)] = 1;
      sources.push_back(v);
    }
  }

  sim::Device device;
  device.set_keep_launch_records(false);
  bc::TurboBC turbo(device, graph, {.variant = bc::select_variant(graph)});
  const bc::BcResult result = turbo.run_sources(sources);
  std::cout << "sampled " << sources.size() << " sources in "
            << fixed(result.device_seconds * 1e3, 1) << " ms (modeled, "
            << bc::to_string(turbo.options().variant) << ")\n\n";

  // Rankings.
  const auto in_deg = graph.in_degrees();
  std::vector<vidx_t> by_bc(static_cast<std::size_t>(n));
  std::iota(by_bc.begin(), by_bc.end(), 0);
  auto by_deg = by_bc;
  std::sort(by_bc.begin(), by_bc.end(), [&](vidx_t a, vidx_t b) {
    return result.bc[static_cast<std::size_t>(a)] >
           result.bc[static_cast<std::size_t>(b)];
  });
  std::sort(by_deg.begin(), by_deg.end(), [&](vidx_t a, vidx_t b) {
    return in_deg[static_cast<std::size_t>(a)] > in_deg[static_cast<std::size_t>(b)];
  });

  Table t({"rank", "by followers (in-degree)", "followers",
           "by betweenness (sampled)", "bc estimate"});
  for (int i = 0; i < 10; ++i) {
    const auto d = static_cast<std::size_t>(by_deg[static_cast<std::size_t>(i)]);
    const auto b = static_cast<std::size_t>(by_bc[static_cast<std::size_t>(i)]);
    t.add_row({std::to_string(i + 1), "user " + std::to_string(d),
               std::to_string(in_deg[d]), "user " + std::to_string(b),
               fixed(result.bc[b] * static_cast<double>(n) /
                         static_cast<double>(sources.size()),
                     0)});
  }
  t.print(std::cout);

  // How different are the two top-50 sets?
  std::vector<char> in_top_deg(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < 50; ++i) {
    in_top_deg[static_cast<std::size_t>(by_deg[static_cast<std::size_t>(i)])] = 1;
  }
  int overlap = 0;
  for (int i = 0; i < 50; ++i) {
    overlap += in_top_deg[static_cast<std::size_t>(by_bc[static_cast<std::size_t>(i)])];
  }
  std::cout << "\ntop-50 overlap between follower ranking and betweenness "
               "ranking: "
            << overlap << "/50 — the rest are brokers, invisible to degree\n";
  return 0;
}
