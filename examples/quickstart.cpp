// Quickstart: the smallest end-to-end TurboBC program.
//
//   1. build a graph (here: a Watts-Strogatz small world; swap in
//      read_matrix_market_file() for your own .mtx),
//   2. let the library pick the SpMV variant from the graph's structure,
//   3. run exact betweenness centrality on the simulated GPU,
//   4. print the most central vertices and the device-side statistics.
//
// Usage: quickstart [--n 2000] [--k 10] [--p 0.1] [--seed 1]
#include <algorithm>
#include <iostream>
#include <numeric>

#include "baselines/brandes.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "core/turbobc.hpp"
#include "generators/small_world.hpp"
#include "gpusim/device.hpp"

int main(int argc, char** argv) {
  using namespace turbobc;
  const CliArgs args(argc, argv);

  // 1. A graph.
  const auto graph = gen::small_world({
      .n = static_cast<vidx_t>(args.get_int("n", 2000)),
      .k = static_cast<int>(args.get_int("k", 10)),
      .rewire_p = args.get_double("p", 0.1),
      .seed = static_cast<std::uint64_t>(args.get_int("seed", 1)),
  });
  std::cout << "graph: n = " << graph.num_vertices()
            << ", arcs = " << graph.num_arcs() << '\n';

  // 2. Variant selection (Section 3.1 of the paper).
  const bc::Variant variant = bc::select_variant(graph);
  std::cout << "selected variant: " << bc::to_string(variant)
            << " (scf index " << fixed(graph::scf_index(graph), 1) << ")\n";

  // 3. Exact BC on the simulated Titan Xp.
  sim::Device device;
  device.set_keep_launch_records(false);
  bc::TurboBC turbo(device, graph, {.variant = variant});
  const bc::BcResult result = turbo.run_exact();

  // 4. Report.
  std::vector<vidx_t> order(result.bc.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](vidx_t a, vidx_t b) {
    return result.bc[static_cast<std::size_t>(a)] >
           result.bc[static_cast<std::size_t>(b)];
  });
  std::cout << "\ntop 10 vertices by betweenness centrality:\n";
  for (int i = 0; i < 10 && i < static_cast<int>(order.size()); ++i) {
    std::cout << "  #" << (i + 1) << "  vertex " << order[static_cast<std::size_t>(i)]
              << "  bc = "
              << fixed(result.bc[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])], 1)
              << '\n';
  }

  std::cout << "\nmodeled device time: " << fixed(result.device_seconds * 1e3, 2)
            << " ms for " << result.sources << " sources\n";
  std::cout << "peak device memory:  " << human_bytes(result.peak_device_bytes)
            << '\n';

  // Sanity: spot-check the winner against the queue-based Brandes oracle.
  const auto golden = baseline::brandes_bc(graph);
  const auto top = static_cast<std::size_t>(order[0]);
  std::cout << "verification: bc(top) = " << fixed(result.bc[top], 3)
            << " vs Brandes " << fixed(golden[top], 3) << " -> "
            << (std::abs(result.bc[top] - golden[top]) <
                        1e-6 * std::max(1.0, golden[top])
                    ? "OK"
                    : "MISMATCH")
            << '\n';
  return 0;
}
