#!/usr/bin/env bash
# Long-budget fuzz job (nightly/cron tier, separate from ci/check.sh's
# 2000-case smoke): a Release build driving turbobc_fuzz with a much larger
# deterministic budget. Any oracle violation exits non-zero and leaves
# minimized reproducers in the corpus dir for triage.
#
# Usage: ci/fuzz_long.sh [budget] [seed] [build-dir]
#        (defaults: 50000 cases, seed 1, build-ci-fuzz)
set -euo pipefail

cd "$(dirname "$0")/.."
budget="${1:-50000}"
seed="${2:-1}"
dir="${3:-build-ci-fuzz}"

cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$dir" -j "$(nproc)" --target turbobc_fuzz

echo "=== fuzz-long: seed $seed, budget $budget ==="
"$dir/src/tools/turbobc_fuzz" --seed "$seed" --budget "$budget" \
  --corpus-dir "$dir/fuzz-failures"
echo "=== fuzz-long passed ==="
