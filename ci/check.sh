#!/usr/bin/env bash
# CI check: build and test the repo in two configurations —
#
#   1. Release        — the tier-1 suite as shipped.
#   2. ThreadSanitizer (-DTURBOBC_SANITIZE=thread) — the same suite with the
#      host-parallel execution engine under TSan. The engine's contract is
#      that its only shared-memory traffic is either synchronized (pool
#      hand-off), relaxed-atomic (buffer element access in concurrent mode)
#      or deferred to the single-threaded merge (float atomic adds), so the
#      suite must be race-free.
#
# Usage: ci/check.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$(nproc)"
  echo "=== [$name] ctest ==="
  (cd "$dir" && ctest --output-on-failure -j "$(nproc)")
  # Differential fuzz smoke: fixed seed, fixed budget, every oracle
  # invariant armed. Any violation (non-zero exit) fails CI; minimized
  # reproducers land in the build dir for post-mortem.
  echo "=== [$name] fuzz-smoke ==="
  "$dir/src/tools/turbobc_fuzz" --seed 1 --budget 2000 \
    --corpus-dir "$dir/fuzz-failures"
}

run_config "release" "${prefix}-release"
run_config "tsan" "${prefix}-tsan" -DTURBOBC_SANITIZE=thread

echo "=== all configurations passed ==="
