#!/usr/bin/env bash
# CI check: build and test the repo in two configurations —
#
#   1. Release        — the tier-1 suite as shipped.
#   2. ThreadSanitizer (-DTURBOBC_SANITIZE=thread) — the same suite with the
#      host-parallel execution engine under TSan. The engine's contract is
#      that its only shared-memory traffic is either synchronized (pool
#      hand-off), relaxed-atomic (buffer element access in concurrent mode)
#      or deferred to the single-threaded merge (float atomic adds), so the
#      suite must be race-free.
#
# plus a focused ASan+UBSan stage (-DTURBOBC_SANITIZE=address): the
# direction-optimizing smoke and the differential fuzz smoke only — the
# paths that juggle the bitmap buffers, the widened convergence-flag
# readback, and the oracle's mode cross-checks — so heap errors and UB in
# the new kernels surface without paying for a third full-suite run.
#
# Usage: ci/check.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$(nproc)"
  echo "=== [$name] ctest ==="
  (cd "$dir" && ctest --output-on-failure -j "$(nproc)")
  # Differential fuzz smoke: fixed seed, fixed budget, every oracle
  # invariant armed. Any violation (non-zero exit) fails CI; minimized
  # reproducers land in the build dir for post-mortem.
  echo "=== [$name] fuzz-smoke ==="
  "$dir/src/tools/turbobc_fuzz" --seed 1 --budget 2000 \
    --corpus-dir "$dir/fuzz-failures"
  # Approximate-BC smoke: generate a mid-size scale-free graph, run the
  # adaptive estimator end to end through the CLI on both engines, and pin
  # the bit-identical-at-any-width contract by diffing --threads 1 vs 8.
  # --max-sources keeps the wall clock CI-friendly on small runners.
  echo "=== [$name] approx-smoke ==="
  local cli="$dir/src/tools/turbobc_cli" g="$dir/approx_smoke.mtx"
  "$cli" generate --family preferential --n 2000 --m-attach 3 --out "$g"
  "$cli" approx "$g" --seed 1 --max-sources 256 --json --threads 1 \
    > "$dir/approx_smoke_t1.json"
  "$cli" approx "$g" --seed 1 --max-sources 256 --json --threads 8 \
    > "$dir/approx_smoke_t8.json"
  cmp "$dir/approx_smoke_t1.json" "$dir/approx_smoke_t8.json"
  "$cli" approx "$g" --seed 1 --max-sources 256 --engine batched \
    --sampler degree --json > /dev/null
  # CLI misuse must exit 2 (usage), not crash or exit 1.
  if "$cli" approx "$g" --epsilon banana > /dev/null 2>&1; then
    echo "approx-smoke: malformed flag should have failed" >&2; exit 1
  fi
  # Distributed-engine smoke: both strategies on a K=4 modeled topology over
  # a small suite graph, --verify pinning the BC against sequential Brandes,
  # and the repo-wide determinism contract pinned end to end by diffing the
  # full --devices 4 JSON (BC, modeled times, comm bytes, shard rows) at
  # pool width 8 against width 1, byte for byte.
  echo "=== [$name] dist-smoke ==="
  local dg="$dir/dist_smoke.mtx"
  "$cli" generate --family mycielski --order 7 --out "$dg"
  "$cli" bc "$dg" --exact --devices 4 --verify > /dev/null
  "$cli" bc "$dg" --exact --devices 4 --dist partition --verify > /dev/null
  "$cli" bc "$dg" --exact --devices 4 --dist partition --json --threads 1 \
    > "$dir/dist_smoke_t1.json"
  "$cli" bc "$dg" --exact --devices 4 --dist partition --json --threads 8 \
    > "$dir/dist_smoke_t8.json"
  cmp "$dir/dist_smoke_t1.json" "$dir/dist_smoke_t8.json"
  "$cli" info --json > /dev/null
  dobfs_smoke "$name" "$dir"
  msbfs_smoke "$name" "$dir"
  serve_smoke "$name" "$dir"
  ooc_smoke "$name" "$dir"
  daemon_smoke "$name" "$dir"
  hybrid_smoke "$name" "$dir"
}

# Hybrid co-execution smoke: `bc --exact --hybrid` must reproduce the
# single-engine BC (the "top" ranking and the Brandes verification line —
# modeled makespan and peak legitimately differ), the full hybrid JSON
# (schedule, makespan, per-processor stats) must be pool-width invariant
# byte for byte at --threads 1 vs 8, and the misuse surfaces must exit 2:
# --hybrid without --exact, --hybrid with --dist, and the daemon's
# --readers 0 zero-count (the get_count validation this PR adds). The
# Release stage additionally runs bench_hybrid, whose bit-identity /
# >=1.2x-makespan-speedup / pool-width gates are enforced by its exit code.
hybrid_smoke() {
  local name="$1" dir="$2"
  echo "=== [$name] hybrid-smoke ==="
  local cli="$dir/src/tools/turbobc_cli" g="$dir/hybrid_smoke.mtx"
  "$cli" generate --family smallworld --n 700 --k 6 --p 0.1 --out "$g"
  "$cli" bc "$g" --exact --verify --json > "$dir/hybrid_smoke_single.json"
  "$cli" bc "$g" --exact --hybrid --devices 2 --verify --json --threads 1 \
    > "$dir/hybrid_smoke_t1.json"
  "$cli" bc "$g" --exact --hybrid --devices 2 --verify --json --threads 8 \
    > "$dir/hybrid_smoke_t8.json"
  cmp "$dir/hybrid_smoke_t1.json" "$dir/hybrid_smoke_t8.json"
  for f in single t1; do
    grep -E '"top"|"verify_max_rel_err"' "$dir/hybrid_smoke_$f.json" \
      > "$dir/hybrid_smoke_${f}_bc.json"
  done
  cmp "$dir/hybrid_smoke_single_bc.json" "$dir/hybrid_smoke_t1_bc.json"
  local rc=0
  "$cli" bc "$g" --source 3 --hybrid >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "hybrid-smoke: --hybrid without --exact should exit 2, got $rc" \
      >&2; exit 1
  fi
  rc=0
  "$cli" bc "$g" --exact --hybrid --dist partition >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "hybrid-smoke: --hybrid with --dist should exit 2, got $rc" \
      >&2; exit 1
  fi
  rc=0
  "$cli" daemon "$g" --listen 127.0.0.1:0 --readers 0 >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "hybrid-smoke: daemon --readers 0 should exit 2, got $rc" \
      >&2; exit 1
  fi
  if [ "$name" = "release" ]; then
    echo "=== [$name] bench-hybrid ==="
    cmake --build "$dir" -j "$(nproc)" --target bench_hybrid
    "$dir/bench/bench_hybrid" --out "$dir/BENCH_hybrid.json"
  fi
}

# Daemon smoke: a real socket round trip through `turbobc_cli daemon` /
# `turbobc_cli client` — start the daemon on an ephemeral TCP port, parse
# the resolved address from its 'listening' banner, replay a mixed session
# through the client, and diff the client transcript byte for byte against
# `serve --wire --json --script` on the same graph (the byte-identity the
# qa daemon_agreement invariant pins in-process, here pinned across a real
# TCP hop and the CLI surface). A second connection's `shutdown` then stops
# the server gracefully; its exit status and stopped-banner are checked.
# Runs under TSan too — this is the repo's only real-concurrency subsystem.
# The Release stage additionally runs bench_daemon, whose >=2x reader-lane
# throughput-scaling / digest-vs-scratch-replay / zero-drop gates are
# enforced by its exit code.
daemon_smoke() {
  local name="$1" dir="$2"
  echo "=== [$name] daemon-smoke ==="
  local cli="$dir/src/tools/turbobc_cli" g="$dir/daemon_smoke.mtx"
  "$cli" generate --family mycielski --order 6 --out "$g"
  printf 'bc 5\ninsert 0 40\ntop 5\ndelete 0 40\nbc 5\nstats\n' \
    > "$dir/daemon_smoke_session.txt"
  "$cli" daemon "$g" --listen 127.0.0.1:0 --json \
    > "$dir/daemon_smoke_server.log" &
  local daemon_pid=$!
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^daemon: listening on //p' "$dir/daemon_smoke_server.log")
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "daemon-smoke: server never printed its listening banner" >&2
    kill "$daemon_pid" 2>/dev/null || true
    exit 1
  fi
  "$cli" client --connect "$addr" --script "$dir/daemon_smoke_session.txt" \
    > "$dir/daemon_smoke_client.jsonl"
  "$cli" serve "$g" --wire --json --script "$dir/daemon_smoke_session.txt" \
    > "$dir/daemon_smoke_serve.jsonl"
  cmp "$dir/daemon_smoke_client.jsonl" "$dir/daemon_smoke_serve.jsonl"
  printf 'shutdown\n' | "$cli" client --connect "$addr" > /dev/null
  wait "$daemon_pid"
  grep -q '^daemon: stopped after 2 connection' "$dir/daemon_smoke_server.log"
  if [ "$name" = "release" ]; then
    echo "=== [$name] bench-daemon ==="
    cmake --build "$dir" -j "$(nproc)" --target bench_daemon
    "$dir/bench/bench_daemon" --out "$dir/BENCH_daemon.json"
  fi
}

# Out-of-core smoke: the compressed (delta-varint CCSC) engine must
# reproduce the uncompressed BC byte for byte (the "top" ranking and the
# Brandes verification line — modeled time, transactions, and peak
# legitimately differ), the streamed run (LRU shard window over the PCIe
# model) must be pool-width invariant byte for byte across the full JSON
# at --threads 1 vs 8, and the two failure surfaces must map to their
# documented exit codes: a malformed chunk mid-ingest is a data error
# (exit 1 with a clean ParseError line, never a crash — the CLI-misuse
# class, exit 2, is probed via --stream-window without --compress). The
# Release stage additionally runs bench_ooc, whose compression-ratio /
# bit-identity / transaction-reduction / OOM-crossing gates are enforced
# by its exit code, and re-checks select_variant's 50x in-degree COOC
# rule against the vendored real-graph fixtures via bench_ablation_scf.
ooc_smoke() {
  local name="$1" dir="$2"
  echo "=== [$name] ooc-smoke ==="
  local cli="$dir/src/tools/turbobc_cli" g="$dir/ooc_smoke.mtx"
  "$cli" generate --family smallworld --n 800 --k 6 --p 0.05 --out "$g"
  "$cli" bc "$g" --exact --verify --json > "$dir/ooc_smoke_plain.json"
  "$cli" bc "$g" --exact --compress --verify --json \
    > "$dir/ooc_smoke_compressed.json"
  for f in plain compressed; do
    grep -E '"top"|"verify_max_rel_err"' "$dir/ooc_smoke_$f.json" \
      > "$dir/ooc_smoke_${f}_bc.json"
  done
  cmp "$dir/ooc_smoke_plain_bc.json" "$dir/ooc_smoke_compressed_bc.json"
  "$cli" bc "$g" --exact --compress --stream-window 2 --stream-shards 6 \
    --json --threads 1 > "$dir/ooc_smoke_stream_t1.json"
  "$cli" bc "$g" --exact --compress --stream-window 2 --stream-shards 6 \
    --json --threads 8 > "$dir/ooc_smoke_stream_t8.json"
  cmp "$dir/ooc_smoke_stream_t1.json" "$dir/ooc_smoke_stream_t8.json"
  printf '%%%%MatrixMarket matrix coordinate pattern general\n5 5 4\n1 2\n2 3\n7 !\n' \
    > "$dir/ooc_smoke_bad.mtx"
  local rc=0
  "$cli" bc "$dir/ooc_smoke_bad.mtx" --compress >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 1 ]; then
    echo "ooc-smoke: malformed chunk should exit 1, got $rc" >&2; exit 1
  fi
  rc=0
  "$cli" bc "$g" --stream-window 2 >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "ooc-smoke: --stream-window without --compress should exit 2," \
      "got $rc" >&2; exit 1
  fi
  if [ "$name" = "release" ]; then
    echo "=== [$name] bench-ooc ==="
    cmake --build "$dir" -j "$(nproc)" --target bench_ooc bench_ablation_scf
    "$dir/bench/bench_ooc" --out "$dir/BENCH_ooc.json"
    "$dir/bench/bench_ablation_scf" \
      bench/fixtures/karate.mtx bench/fixtures/florentine.mtx \
      bench/fixtures/mawi_tail.mtx bench/fixtures/midskew.mtx > /dev/null
  fi
}

# Serving smoke: a scripted session through `turbobc_cli serve`, the
# warm-cache post-update query compared against a cold (all-scratch)
# session on the same mutated graph, the JSON transcript diffed at
# --threads 1 vs 8 byte for byte, and a malformed script probing the
# exit-2 usage surface. The Release stage additionally runs bench_serve,
# whose >=5x serving-speedup / bit-identity / pool-width gates are
# enforced by its exit code.
serve_smoke() {
  local name="$1" dir="$2"
  echo "=== [$name] serve-smoke ==="
  local cli="$dir/src/tools/turbobc_cli" g="$dir/serve_smoke.mtx"
  "$cli" generate --family mycielski --order 7 --out "$g"
  printf 'bc 5\ninsert 0 90\ntop 5\nbc 5\ndelete 0 90\nbc 5\nstats\n' \
    > "$dir/serve_smoke_session.txt"
  "$cli" serve "$g" --script "$dir/serve_smoke_session.txt" \
    > "$dir/serve_smoke.txt"
  "$cli" serve "$g" --script "$dir/serve_smoke_session.txt" --json \
    --threads 1 > "$dir/serve_smoke_t1.json"
  "$cli" serve "$g" --script "$dir/serve_smoke_session.txt" --json \
    --threads 8 > "$dir/serve_smoke_t8.json"
  cmp "$dir/serve_smoke_t1.json" "$dir/serve_smoke_t8.json"
  # Incremental vs scratch: the warm session answers its post-update query
  # from surviving cache blocks plus cone recomputes; the cold session
  # recomputes every source on the same mutated graph. The ranked BC lines
  # of the final query must agree exactly.
  printf 'bc 5\ninsert 0 90\nbc 5\n' > "$dir/serve_smoke_warm.txt"
  printf 'insert 0 90\nbc 5\n' > "$dir/serve_smoke_cold.txt"
  "$cli" serve "$g" --script "$dir/serve_smoke_warm.txt" \
    | grep '^  ' | tail -5 > "$dir/serve_smoke_warm_bc.txt"
  "$cli" serve "$g" --script "$dir/serve_smoke_cold.txt" \
    | grep '^  ' > "$dir/serve_smoke_cold_bc.txt"
  cmp "$dir/serve_smoke_warm_bc.txt" "$dir/serve_smoke_cold_bc.txt"
  printf 'bc 2\nfrobnicate\n' > "$dir/serve_smoke_bad.txt"
  if "$cli" serve "$g" --script "$dir/serve_smoke_bad.txt" >/dev/null 2>&1
  then
    echo "serve-smoke: malformed script should have failed" >&2; exit 1
  fi
  if [ "$name" = "release" ]; then
    echo "=== [$name] bench-serve ==="
    cmake --build "$dir" -j "$(nproc)" --target bench_serve
    "$dir/bench/bench_serve" --out "$dir/BENCH_serve.json"
  fi
}

# MS-BFS smoke: the packed-mask batched sweep must reproduce the per-source
# fold byte for byte (both engines print the same "top" ranking and Brandes
# verification line), the batched JSON must be pool-width invariant, and the
# partitioned mask exchange must hold the same contract across 4 modeled
# devices. The Release stage additionally runs bench_msbfs, whose speedup /
# bit-identity / footprint gates are enforced by its exit code.
msbfs_smoke() {
  local name="$1" dir="$2"
  echo "=== [$name] msbfs-smoke ==="
  local cli="$dir/src/tools/turbobc_cli" g="$dir/msbfs_smoke.mtx"
  "$cli" generate --family smallworld --n 600 --k 4 --p 0.1 --out "$g"
  "$cli" bc "$g" --exact --variant sccsc --verify --json \
    > "$dir/msbfs_smoke_scalar.json"
  "$cli" bc "$g" --exact --batch 64 --verify --json --threads 1 \
    > "$dir/msbfs_smoke_batched_t1.json"
  "$cli" bc "$g" --exact --batch 64 --verify --json --threads 8 \
    > "$dir/msbfs_smoke_batched_t8.json"
  cmp "$dir/msbfs_smoke_batched_t1.json" "$dir/msbfs_smoke_batched_t8.json"
  for f in scalar batched_t1; do
    grep -E '"top"|"verify_max_rel_err"' "$dir/msbfs_smoke_$f.json" \
      > "$dir/msbfs_smoke_${f}_bc.json"
  done
  cmp "$dir/msbfs_smoke_scalar_bc.json" "$dir/msbfs_smoke_batched_t1_bc.json"
  "$cli" bc "$g" --exact --batch 8 --devices 4 --dist partition --verify \
    --json --threads 1 > "$dir/msbfs_smoke_dist_t1.json"
  "$cli" bc "$g" --exact --batch 8 --devices 4 --dist partition --verify \
    --json --threads 8 > "$dir/msbfs_smoke_dist_t8.json"
  cmp "$dir/msbfs_smoke_dist_t1.json" "$dir/msbfs_smoke_dist_t8.json"
  if "$cli" bc "$g" --exact --batch 8 --devices 4 > /dev/null 2>&1; then
    echo "msbfs-smoke: --batch without --dist partition should have failed" \
      >&2; exit 1
  fi
  if [ "$name" = "release" ]; then
    echo "=== [$name] bench-msbfs ==="
    cmake --build "$dir" -j "$(nproc)" --target bench_msbfs
    "$dir/bench/bench_msbfs" --out "$dir/BENCH_msbfs.json"
  fi
}

# Direction-optimizing smoke: every --advance mode on a hub-heavy graph
# must produce byte-identical BC (the "top" ranking and the Brandes
# verification line — modeled time, peak, and the demoted variant
# legitimately differ between modes), --advance auto must reproduce the
# width-1 JSON byte for byte at pool width 8, and count/enum misuse must
# exit 2 (usage).
dobfs_smoke() {
  local name="$1" dir="$2"
  echo "=== [$name] dobfs-smoke ==="
  local cli="$dir/src/tools/turbobc_cli" g="$dir/dobfs_smoke.mtx"
  # n kept small: the smoke runs exact BC five times and must stay
  # CI-friendly under TSan/ASan's ~10x slowdown.
  "$cli" generate --family preferential --n 1000 --m-attach 4 --out "$g"
  for mode in push pull auto; do
    "$cli" bc "$g" --exact --advance "$mode" --verify --json \
      > "$dir/dobfs_smoke_$mode.json"
    grep -E '"top"|"verify_max_rel_err"' "$dir/dobfs_smoke_$mode.json" \
      > "$dir/dobfs_smoke_${mode}_bc.json"
  done
  cmp "$dir/dobfs_smoke_push_bc.json" "$dir/dobfs_smoke_pull_bc.json"
  cmp "$dir/dobfs_smoke_push_bc.json" "$dir/dobfs_smoke_auto_bc.json"
  "$cli" bc "$g" --exact --advance auto --verify --json --threads 8 \
    > "$dir/dobfs_smoke_auto_t8.json"
  cmp "$dir/dobfs_smoke_auto.json" "$dir/dobfs_smoke_auto_t8.json"
  "$cli" bfs "$g" --source 0 --advance auto > /dev/null
  if "$cli" bc "$g" --exact --advance sideways > /dev/null 2>&1; then
    echo "dobfs-smoke: unknown --advance should have failed" >&2; exit 1
  fi
  if "$cli" bc "$g" --exact --devices 0 > /dev/null 2>&1; then
    echo "dobfs-smoke: --devices 0 should have failed" >&2; exit 1
  fi
}

# Focused ASan+UBSan stage (see file comment): build only the fuzzer and
# the CLI, then run the two smokes that exercise the DO engine hardest.
run_asan_stage() {
  local name="asan" dir="${prefix}-asan"
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release -DTURBOBC_SANITIZE=address
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$(nproc)" --target turbobc_fuzz turbobc_cli
  dobfs_smoke "$name" "$dir"
  echo "=== [$name] fuzz-smoke ==="
  "$dir/src/tools/turbobc_fuzz" --seed 1 --budget 2000 \
    --corpus-dir "$dir/fuzz-failures"
}

run_config "release" "${prefix}-release"
run_config "tsan" "${prefix}-tsan" -DTURBOBC_SANITIZE=thread
run_asan_stage

echo "=== all configurations passed ==="
