// Ablation for the paper's Section 3.4 claim: running the BFS-stage SpMV on
// integer vectors is up to 2.7x faster than on floating-point vectors (the
// win comes from integer vs floating-point global atomics), at the price of
// the small realloc overhead for the float dependency triple.
//
// We run the full BC per graph with integer BFS vectors (default) and with
// the float_bfs option, and report the BFS-stage time ratio.
#include <iostream>

#include "bench_support/suite.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/turbobc.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"

namespace {

/// Total modeled seconds of the BFS-stage SpMV kernels (the paper's claim
/// is about the SpMV operation, not the whole stage).
double bfs_stage_seconds(const turbobc::sim::Device& dev) {
  double t = 0.0;
  for (const auto& [name, agg] : dev.kernel_aggregates()) {
    if (name.rfind("bfs_spmv", 0) == 0) t += agg.time_s;
  }
  return t;
}

}  // namespace

int main() {
  using namespace turbobc;
  using namespace turbobc::bench;

  Table t({"graph", "variant", "SpMV int (ms)", "SpMV float (ms)",
           "float/int", "total int (ms)", "total float (ms)"});

  // The effect is driven by the scCOOC forward kernel's global atomics, so
  // the workloads are atomic-heavy: hub-dominated graphs where many edge
  // threads contend on the same frontier column (mawi-style traces, large
  // mycielski orders). scCSC (no atomics in the forward gather) is the
  // control: its ratio must stay ~1.
  // Multi-million-edge graphs: at smaller sizes the 3.5 us kernel-launch
  // overhead hides everything, exactly as a real GPU's would. Here the SpMV
  // is throughput-bound and the atomic rate shows.
  std::vector<Workload> workloads;
  workloads.push_back({"mycielski-M14", "mycielski", gen::mycielski(14),
                       bc::Variant::kVeCsc, {}});
  workloads.push_back({"kron scale 15", "kronecker",
                       gen::kronecker({.scale = 15, .edge_factor = 60,
                                       .seed = 92}),
                       bc::Variant::kVeCsc, {}});
  // Dense random graph, depth ~2: nearly every edge fires a frontier atomic
  // in one level — the worst case the paper's "up to 2.7x" refers to.
  workloads.push_back({"dense random", "erdos_renyi",
                       gen::erdos_renyi({.n = 20000, .arcs = 4000000,
                                         .directed = false, .seed = 93}),
                       bc::Variant::kScCooc, {}});
  std::vector<std::pair<std::string, bc::Variant>> configs = {
      {"scCOOC", bc::Variant::kScCooc},
      {"veCSC", bc::Variant::kVeCsc},
      {"scCSC", bc::Variant::kScCsc},
  };

  for (const Workload& w : workloads) {
    const vidx_t source = representative_source(w.graph);
    for (const auto& [vname, variant] : configs) {
      double bfs_int = 0, bfs_float = 0, tot_int = 0, tot_float = 0;
      {
        sim::Device dev;
        bc::TurboBC turbo(dev, w.graph, {.variant = variant});
        tot_int = turbo.run_single_source(source).device_seconds;
        bfs_int = bfs_stage_seconds(dev);
      }
      {
        sim::Device dev;
        bc::TurboBC turbo(dev, w.graph,
                          {.variant = variant, .float_bfs = true});
        tot_float = turbo.run_single_source(source).device_seconds;
        bfs_float = bfs_stage_seconds(dev);
      }
      t.add_row({w.name, vname, fixed(bfs_int * 1e3, 3),
                 fixed(bfs_float * 1e3, 3), fixed(bfs_float / bfs_int, 2),
                 fixed(tot_int * 1e3, 3), fixed(tot_float * 1e3, 3)});
    }
    std::cerr << "  [ablation-dt] " << w.name << " done\n";
  }

  std::cout << "Ablation — integer vs floating-point BFS vectors "
               "(paper Section 3.4: int up to 2.7x faster on the SpMV)\n";
  t.print(std::cout);
  return 0;
}
