// google-benchmark microbenchmarks of the host-side building blocks: the
// sequential SpMV references (Algorithms 2 and 3) and the simulator's kernel
// dispatch. These measure real wall time of this library's code (not the
// modeled device), and guard against regressions in the simulation itself.
#include <benchmark/benchmark.h>

#include "generators/generators.hpp"
#include "gpusim/kernel.hpp"
#include "spmv/device_graph.hpp"
#include "spmv/spmv_kernels.hpp"
#include "spmv/spmv_seq.hpp"

namespace {

using namespace turbobc;

graph::EdgeList bench_graph(int scale) {
  return gen::kronecker({.scale = scale, .edge_factor = 16, .seed = 7});
}

void BM_SeqSpmvCooc(benchmark::State& state) {
  const auto el = bench_graph(static_cast<int>(state.range(0)));
  const auto g = graph::CoocGraph::from_edges(el);
  std::vector<sigma_t> x(static_cast<std::size_t>(g.num_vertices()), 1);
  std::vector<sigma_t> y(x.size());
  for (auto _ : state) {
    std::fill(y.begin(), y.end(), 0);
    spmv::seq_spmv_cooc<sigma_t>(g, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_SeqSpmvCooc)->Arg(10)->Arg(12);

void BM_SeqSpmvCscMasked(benchmark::State& state) {
  const auto el = bench_graph(static_cast<int>(state.range(0)));
  const auto g = graph::CscGraph::from_edges(el);
  std::vector<sigma_t> x(static_cast<std::size_t>(g.num_vertices()), 1);
  std::vector<sigma_t> sigma(x.size(), 0);
  std::vector<sigma_t> y(x.size());
  for (auto _ : state) {
    std::fill(y.begin(), y.end(), 0);
    spmv::seq_spmv_csc_masked<sigma_t, sigma_t>(g, x, sigma, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_SeqSpmvCscMasked)->Arg(10)->Arg(12);

void BM_SimulatedScCscKernel(benchmark::State& state) {
  const auto el = bench_graph(static_cast<int>(state.range(0)));
  const auto n = static_cast<std::size_t>(el.num_vertices());
  sim::Device dev;
  dev.set_keep_launch_records(false);
  spmv::DeviceCsc g(dev, graph::CscGraph::from_edges(el));
  sim::DeviceBuffer<sigma_t> x(dev, n, "x"), y(dev, n, "y"), s(dev, n, "s");
  x.device_fill(1);
  s.device_fill(0);
  for (auto _ : state) {
    y.device_fill(0);
    spmv::spmv_forward_sccsc(dev, g, x, y, s);
    benchmark::DoNotOptimize(y.host().data());
  }
  state.SetItemsProcessed(state.iterations() * g.m());
}
BENCHMARK(BM_SimulatedScCscKernel)->Arg(10);

void BM_SimulatedVeCscKernel(benchmark::State& state) {
  const auto el = bench_graph(static_cast<int>(state.range(0)));
  const auto n = static_cast<std::size_t>(el.num_vertices());
  sim::Device dev;
  dev.set_keep_launch_records(false);
  spmv::DeviceCsc g(dev, graph::CscGraph::from_edges(el));
  sim::DeviceBuffer<sigma_t> x(dev, n, "x"), y(dev, n, "y"), s(dev, n, "s");
  x.device_fill(1);
  s.device_fill(0);
  for (auto _ : state) {
    y.device_fill(0);
    spmv::spmv_forward_vecsc(dev, g, x, y, s);
    benchmark::DoNotOptimize(y.host().data());
  }
  state.SetItemsProcessed(state.iterations() * g.m());
}
BENCHMARK(BM_SimulatedVeCscKernel)->Arg(10);

void BM_MycielskiGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto g = gen::mycielski(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(g.num_arcs());
  }
}
BENCHMARK(BM_MycielskiGeneration)->Arg(10)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
