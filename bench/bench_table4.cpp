// Reproduces Table 4: BC/vertex on four "big" graphs for which the paper's
// gunrock runs out of GPU memory while TurboBC completes.
//
// The workloads are ~1000x-scaled replicas, so the device capacity is scaled
// by the same factor (capacity = 12196 MB x m_scaled / m_paper): the byte
// *ratios* between the TurboBC inventory, the gunrock inventory and the
// capacity are preserved, which is what makes the OOM crossover meaningful.
// The analytic check at paper scale (7n + m vs 9n + 3m words against
// 12196 MB) is printed alongside.
#include <iostream>

#include "bench_support/runner.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/footprint.hpp"
#include "gpusim/executor.hpp"

int main(int argc, char** argv) {
  using namespace turbobc;
  using namespace turbobc::bench;
  const CliArgs args(argc, argv);
  // Host-parallel pool width; modeled numbers are width-invariant.
  sim::ExecutorPool::instance().set_threads(
      static_cast<unsigned>(args.get_int("threads", 1)));

  // Paper-scale (n, m) per Table 4 row, for the analytic fit check and the
  // capacity scaling.
  struct PaperScale {
    vidx_t n;
    eidx_t m;
  };
  const PaperScale paper_scale[4] = {
      {214000000, 465000000},   // kmer_V1r
      {42000000, 1151000000},   // it-2004
      {62000000, 1469000000},   // GAP-twitter
      {51000000, 1950000000},   // sk-2005
  };
  const std::uint64_t paper_capacity = 12196ull * 1024 * 1024;

  const auto suite = table4_suite();
  std::vector<ExperimentRow> rows;
  Table fit({"File", "TurboBC(7n+m)", "gunrock(9n+3m)", "capacity",
             "TurboBC fits", "gunrock fits"});

  for (std::size_t i = 0; i < suite.size(); ++i) {
    const Workload& w = suite[i];
    // Scale the device capacity with the workload.
    const double factor = static_cast<double>(w.graph.num_arcs()) /
                          static_cast<double>(paper_scale[i].m);
    RunnerConfig cfg;
    cfg.device_props = sim::DeviceProps::titan_xp_scaled_memory(factor);
    rows.push_back(run_single_source_experiment(w, cfg));
    std::cerr << "  [table4] " << w.name << " done (capacity "
              << human_bytes(cfg.device_props.global_mem_bytes) << ")\n";

    fit.add_row({w.name,
                 human_bytes(bc::turbobc_model_bytes(paper_scale[i].n,
                                                     paper_scale[i].m)),
                 human_bytes(bc::gunrock_runtime_words(paper_scale[i].n,
                                                       paper_scale[i].m) *
                             bc::kPaperWordBytes),
                 human_bytes(paper_capacity),
                 bc::turbobc_fits(paper_scale[i].n, paper_scale[i].m,
                                  paper_capacity)
                     ? "yes"
                     : "NO",
                 bc::gunrock_fits(paper_scale[i].n, paper_scale[i].m,
                                  paper_capacity)
                     ? "yes (unexpected)"
                     : "no (OOM, as the paper reports)"});
  }

  print_rows(std::cout,
             "Table 4 — BC/vertex, big graphs (scaled), gunrock expected OOM "
             "(modeled times; paper columns on the right)",
             rows, /*time_unit_s=*/true, /*exact=*/false);

  std::cout << "Analytic device-fit check at paper scale (12196 MB Titan Xp):\n";
  fit.print(std::cout);
  std::cout << '\n';
  return 0;
}
