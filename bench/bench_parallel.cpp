// Host-parallel execution engine benchmark: wall-clock time of the same
// multi-source BC run at ExecutorPool width 1 vs --threads N, on graphs of
// >= 10k vertices. The modeled device numbers are identical by construction
// (the table's bit-identical column verifies it); what this bench measures
// is how much faster the *simulation itself* runs when warp chunks and
// source blocks execute on multiple host threads.
//
// Writes a machine-readable BENCH_parallel.json (override with --out) next
// to the human-readable table.
//
//   bench_parallel [--threads N] [--sources K | --exact] [--scale S]
//                  [--out BENCH_parallel.json]
//
// --sources K (default 64) runs K evenly-spread sources through the same
// fan-out path as run_exact; --exact runs every vertex (minutes of wall
// clock at scale 14 — the fan-out is real work, simulated serially per
// source).
#include <fstream>
#include <iostream>

#include "bench_support/runner.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "generators/generators.hpp"

int main(int argc, char** argv) {
  using namespace turbobc;
  using namespace turbobc::bench;

  const CliArgs args(argc, argv);
  HostParallelConfig cfg;
  cfg.threads = static_cast<unsigned>(args.get_int("threads", 0));
  cfg.max_sources =
      args.has("exact") ? 0
                        : static_cast<vidx_t>(args.get_int("sources", 64));
  const int scale = static_cast<int>(args.get_int("scale", 14));

  // Three >= 10k-vertex graphs covering the kernel families: a scale-free
  // kronecker (scCOOC, edge-parallel), a directed Erdos-Renyi (scCSC,
  // vertex-parallel) and the same kronecker under veCSC (warp-per-vertex).
  gen::KroneckerParams kron;
  kron.scale = scale;  // 2^14 = 16384 vertices by default
  kron.edge_factor = 8;
  kron.seed = 1;
  const graph::EdgeList kron_graph = gen::kronecker(kron);

  gen::ErdosRenyiParams er;
  er.n = vidx_t{1} << scale;
  er.arcs = static_cast<eidx_t>(er.n) * 6;
  er.directed = true;
  er.seed = 2;

  std::vector<Workload> workloads;
  workloads.push_back({.name = "kron-s" + std::to_string(scale),
                       .family = "kronecker",
                       .graph = kron_graph,
                       .variant = bc::Variant::kScCooc});
  workloads.push_back({.name = "kron-s" + std::to_string(scale) + "-ve",
                       .family = "kronecker",
                       .graph = kron_graph,
                       .variant = bc::Variant::kVeCsc});
  workloads.push_back({.name = "er-" + std::to_string(er.n) + "(D)",
                       .family = "erdos-renyi",
                       .graph = gen::erdos_renyi(er),
                       .variant = bc::Variant::kScCsc});

  WallTimer run_timer;
  std::vector<HostParallelRow> rows;
  for (const Workload& w : workloads) {
    std::cerr << "  [parallel] " << w.name << " ..." << std::flush;
    rows.push_back(run_host_parallel_experiment(w, cfg));
    std::cerr << " serial " << rows.back().serial_wall_s << " s, x"
              << rows.back().threads << " " << rows.back().parallel_wall_s
              << " s\n";
  }

  std::cout << "Host-parallel engine: wall clock at pool width 1 vs "
            << rows.front().threads << "\n";
  print_parallel_rows(std::cout, rows);

  const std::string out_path = args.get("out", "BENCH_parallel.json");
  std::ofstream json(out_path);
  BenchStamp stamp = make_stamp(kron.seed, run_timer.seconds());
  stamp.threads = rows.front().threads;  // pool is back at width 1 by now
  write_parallel_json(json, stamp, rows);
  std::cout << "\nwrote " << out_path << '\n';

  for (const auto& r : rows) {
    if (!r.bit_identical) {
      std::cerr << "ERROR: " << r.name
                << " modeled results differ across pool widths\n";
      return 1;
    }
  }
  return 0;
}
