// Modeled multi-GPU scaling benchmark: BENCH_multigpu.json.
//
// Part 1 — strong scaling. Two suite graphs (a Table 1 Markov lattice on
// scCSC and a Table 3 Mycielskian on veCSC) run a fixed evenly-spread
// source set through the distributed engine: the replicated strategy at
// K in {1, 2, 4, 8} plus the partitioned strategy at K = 4. Each row
// reports modeled bulk-synchronous seconds, interconnect seconds and bytes,
// the max per-device peak, the speedup against that graph's K = 1 row, and
// whether the BC array is bit-identical to the single-device engine (it
// must be — same pinned variant, shared float folds).
//
// Part 2 — acceptance past the memory wall. An Erdos-Renyi digraph on a
// Titan Xp whose memory is scaled down by 1e-5 so the single-device
// 7n + m inventory overflows: the K = 1 run MUST throw DeviceOutOfMemory
// (caught and asserted), while the K = 4 auto run must pick the
// partitioned strategy, keep every per-device peak under the scaled
// capacity, and match sequential Brandes. The binary exits nonzero if any
// of that fails, or if any scaling row loses bit-identity or falls under
// half the ideal replicated speedup.
//
//   bench_multigpu [--sources 32] [--wall-sources 16] [--seed 1]
//                  [--threads N] [--out BENCH_multigpu.json]
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/brandes.hpp"
#include "bench_support/stamp.hpp"
#include "bench_support/suite.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/turbobc.hpp"
#include "dist/dist_turbobc.hpp"
#include "dist/partition.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/topology.hpp"

namespace {

using namespace turbobc;

struct ScaleRow {
  std::string name;
  vidx_t n = 0;
  eidx_t m = 0;
  std::string strategy;
  int devices = 1;
  vidx_t sources = 0;
  double modeled_s = 0.0;  // bulk-synchronous critical path incl. comm
  double comm_s = 0.0;
  std::uint64_t comm_bytes = 0;
  std::size_t max_peak_bytes = 0;
  double speedup = 0.0;  // K = 1 replicate row of the same graph / this row
  bool bit_identical = false;  // BC == single-device engine, bit for bit
};

struct WallResult {
  std::string name;
  vidx_t n = 0;
  eidx_t m = 0;
  int devices = 0;
  vidx_t sources = 0;
  std::uint64_t capacity_bytes = 0;  // scaled per-device global memory
  std::uint64_t single_model_bytes = 0;  // replicated footprint model
  bool oom_at_k1 = false;
  std::string strategy;
  double modeled_s = 0.0;
  double comm_s = 0.0;
  std::uint64_t comm_bytes = 0;
  std::size_t max_peak_bytes = 0;
  double max_rel_err = 0.0;  // vs sequential Brandes over the source set
  bool bc_ok = false;
};

void write_multigpu_json(std::ostream& os, const bench::BenchStamp& stamp,
                         const std::vector<ScaleRow>& rows,
                         const WallResult& wall) {
  os << "{\n";
  bench::write_stamp_json(os, stamp);
  os << ",\n\"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "  {\"graph\": \"" << r.name << "\", \"n\": " << r.n
       << ", \"m\": " << r.m << ", \"strategy\": \"" << r.strategy
       << "\", \"devices\": " << r.devices << ", \"sources\": " << r.sources
       << ", \"modeled_s\": " << r.modeled_s << ", \"comm_s\": " << r.comm_s
       << ", \"comm_bytes\": " << r.comm_bytes
       << ", \"max_peak_bytes\": " << r.max_peak_bytes
       << ", \"speedup\": " << r.speedup << ", \"bit_identical\": "
       << (r.bit_identical ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  os << "],\n\"acceptance\": {\"graph\": \"" << wall.name
     << "\", \"n\": " << wall.n << ", \"m\": " << wall.m
     << ", \"devices\": " << wall.devices << ", \"sources\": " << wall.sources
     << ", \"capacity_bytes\": " << wall.capacity_bytes
     << ", \"single_model_bytes\": " << wall.single_model_bytes
     << ", \"oom_at_k1\": " << (wall.oom_at_k1 ? "true" : "false")
     << ", \"strategy\": \"" << wall.strategy
     << "\", \"modeled_s\": " << wall.modeled_s
     << ", \"comm_s\": " << wall.comm_s
     << ", \"comm_bytes\": " << wall.comm_bytes
     << ", \"max_peak_bytes\": " << wall.max_peak_bytes
     << ", \"max_rel_err\": " << wall.max_rel_err
     << ", \"bc_ok\": " << (wall.bc_ok ? "true" : "false") << "}\n}\n";
}

void print_rows(std::ostream& os, const std::vector<ScaleRow>& rows) {
  Table t({"graph", "n", "m", "strategy", "K", "modeled(s)", "comm(s)",
           "comm", "peak/dev", "speedup", "bits"});
  for (const auto& r : rows) {
    t.add_row({r.name, human_count(static_cast<double>(r.n)),
               human_count(static_cast<double>(r.m)), r.strategy,
               std::to_string(r.devices), fixed(r.modeled_s, 4),
               fixed(r.comm_s, 6),
               human_bytes(r.comm_bytes),
               human_bytes(r.max_peak_bytes),
               fixed(r.speedup, 2) + "x", r.bit_identical ? "ok" : "DRIFT"});
  }
  t.print(os);
}

std::vector<vidx_t> spread_sources(vidx_t n, vidx_t count) {
  std::vector<vidx_t> s;
  s.reserve(count);
  for (vidx_t i = 0; i < count; ++i) {
    s.push_back(
        static_cast<vidx_t>(static_cast<std::uint64_t>(i) * n / count));
  }
  return s;
}

bool bits_equal(const std::vector<bc_t>& a, const std::vector<bc_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// One strong-scaling row: the given strategy at K devices, checked
/// bit-for-bit against the single-device reference BC.
ScaleRow run_scale_row(const bench::Workload& w,
                       const std::vector<vidx_t>& sources,
                       dist::Strategy strategy, int devices,
                       const std::vector<bc_t>& reference_bc) {
  sim::TopologyProps props = sim::TopologyProps::quad_titan_xp();
  props.num_devices = devices;
  sim::Topology topo(props);
  dist::DistTurboBC engine(topo, w.graph,
                           {.strategy = strategy, .variant = w.variant});
  const dist::DistResult r = engine.run_sources(sources);

  ScaleRow row;
  row.name = w.name;
  row.n = w.graph.num_vertices();
  row.m = w.graph.num_arcs();
  row.strategy = dist::to_string(r.strategy_used);
  row.devices = devices;
  row.sources = static_cast<vidx_t>(sources.size());
  row.modeled_s = r.device_seconds;
  row.comm_s = r.comm_seconds;
  row.comm_bytes = r.comm_bytes;
  row.max_peak_bytes = r.max_peak_bytes;
  row.bit_identical = bits_equal(r.bc, reference_bc);
  return row;
}

/// Part 2: the memory-wall acceptance scenario (see file comment).
WallResult run_memory_wall(vidx_t wall_sources) {
  const auto el = gen::erdos_renyi(
      {.n = 3000, .arcs = 12000, .directed = true, .seed = 13});
  sim::TopologyProps props = sim::TopologyProps::quad_titan_xp();
  props.device = sim::DeviceProps::titan_xp_scaled_memory(1e-5);

  WallResult wall;
  wall.name = "er-3000";
  wall.n = el.num_vertices();
  wall.m = el.num_arcs();
  wall.devices = props.num_devices;
  wall.sources = wall_sources;
  wall.capacity_bytes = props.device.global_mem_bytes;
  wall.single_model_bytes = dist::replicated_device_bytes(
      bc::Variant::kScCsc, wall.n, static_cast<std::uint64_t>(wall.m),
      /*edge_bc=*/false);

  // The whole-graph engine must hit the wall on one scaled device.
  std::cerr << "  [multigpu] " << wall.name << " K=1 ..." << std::flush;
  try {
    sim::Device dev(props.device);
    dev.set_keep_launch_records(false);
    bc::TurboBC single(dev, el, {.variant = bc::Variant::kScCsc});
    single.run_single_source(0);
  } catch (const DeviceOutOfMemory& e) {
    wall.oom_at_k1 = true;
    std::cerr << " OOM as required (" << e.what() << ")\n";
  }
  if (!wall.oom_at_k1) std::cerr << " unexpectedly fit\n";

  // K = 4 auto must partition, fit, and match sequential Brandes.
  std::cerr << "  [multigpu] " << wall.name << " K=" << wall.devices
            << " auto ..." << std::flush;
  sim::Topology topo(props);
  dist::DistTurboBC engine(topo, el, {.variant = bc::Variant::kScCsc});
  const std::vector<vidx_t> sources = spread_sources(wall.n, wall_sources);
  const dist::DistResult r = engine.run_sources(sources);
  wall.strategy = dist::to_string(r.strategy_used);
  wall.modeled_s = r.device_seconds;
  wall.comm_s = r.comm_seconds;
  wall.comm_bytes = r.comm_bytes;
  wall.max_peak_bytes = r.max_peak_bytes;

  std::vector<double> want(static_cast<std::size_t>(wall.n), 0.0);
  for (const vidx_t s : sources) {
    const std::vector<bc_t> delta = baseline::brandes_delta(el, s);
    for (vidx_t v = 0; v < wall.n; ++v) want[v] += delta[v];
  }
  for (vidx_t v = 0; v < wall.n; ++v) {
    const double scale = std::max(std::abs(want[v]), 1.0);
    wall.max_rel_err =
        std::max(wall.max_rel_err, std::abs(r.bc[v] - want[v]) / scale);
  }
  wall.bc_ok = wall.max_rel_err <= 1e-9;
  std::cerr << " " << wall.strategy << ", peak "
            << human_bytes(wall.max_peak_bytes) << " of "
            << human_bytes(wall.capacity_bytes)
            << ", max rel err " << wall.max_rel_err << "\n";
  return wall;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbobc;
  using namespace turbobc::bench;

  const CliArgs args(argc, argv);
  const auto num_sources = static_cast<vidx_t>(args.get_int("sources", 32));
  const auto wall_sources =
      static_cast<vidx_t>(args.get_int("wall-sources", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads > 0) {
    sim::ExecutorPool::instance().set_threads(static_cast<unsigned>(threads));
  }

  WallTimer run_timer;

  // Two suite graphs, one per CSC layout family.
  std::vector<Workload> workloads;
  workloads.push_back(table1_suite()[2]);  // mark3j100sc(D), scCSC
  workloads.push_back(table3_suite()[2]);  // mycielski17(U) stand-in, veCSC

  std::vector<ScaleRow> rows;
  for (const Workload& w : workloads) {
    const vidx_t n = w.graph.num_vertices();
    const std::vector<vidx_t> sources =
        spread_sources(n, std::min(num_sources, n));

    // Single-device reference: same pinned variant, same sources.
    std::cerr << "  [multigpu] " << w.name << " reference ..." << std::flush;
    std::vector<bc_t> reference_bc;
    {
      sim::Device device;
      device.set_keep_launch_records(false);
      bc::TurboBC turbo(device, w.graph, {.variant = w.variant});
      reference_bc = turbo.run_sources(sources).bc;
    }

    double k1_seconds = 0.0;
    for (const int devices : {1, 2, 4, 8}) {
      std::cerr << " K=" << devices << std::flush;
      ScaleRow row = run_scale_row(w, sources, dist::Strategy::kReplicate,
                                   devices, reference_bc);
      if (devices == 1) k1_seconds = row.modeled_s;
      row.speedup = row.modeled_s > 0 ? k1_seconds / row.modeled_s : 0.0;
      rows.push_back(row);
    }
    std::cerr << " partition K=4" << std::flush;
    ScaleRow part = run_scale_row(w, sources, dist::Strategy::kPartition, 4,
                                  reference_bc);
    part.speedup = part.modeled_s > 0 ? k1_seconds / part.modeled_s : 0.0;
    rows.push_back(part);
    std::cerr << " done\n";
  }

  const WallResult wall = run_memory_wall(wall_sources);

  std::cout << "Modeled multi-GPU strong scaling: " << num_sources
            << " evenly-spread sources, PCIe star collectives\n";
  print_rows(std::cout, rows);
  std::cout << "\nMemory wall: " << wall.name << " (n " << wall.n << ", m "
            << wall.m << ") on Titan Xp x 1e-5 memory — single-device model "
            << human_bytes(wall.single_model_bytes)
            << " vs capacity "
            << human_bytes(wall.capacity_bytes)
            << ": K=1 " << (wall.oom_at_k1 ? "OOM" : "fit (!)") << ", K="
            << wall.devices << " " << wall.strategy << " peak "
            << human_bytes(wall.max_peak_bytes)
            << ", max rel err vs Brandes " << wall.max_rel_err << "\n";

  const std::string out_path = args.get("out", "BENCH_multigpu.json");
  std::ofstream json(out_path);
  write_multigpu_json(json, make_stamp(seed, run_timer.seconds()), rows,
                      wall);
  std::cout << "\nwrote " << out_path << '\n';

  int rc = 0;
  for (const ScaleRow& r : rows) {
    if (!r.bit_identical) {
      std::cerr << "ERROR: " << r.name << " " << r.strategy << " K="
                << r.devices << " drifted from the single-device BC\n";
      rc = 1;
    }
    if (r.strategy == "replicate" && r.devices > 1 &&
        r.speedup < 0.5 * r.devices) {
      std::cerr << "ERROR: " << r.name << " replicate K=" << r.devices
                << " speedup " << fixed(r.speedup, 2) << "x (need >= "
                << fixed(0.5 * r.devices, 1) << "x)\n";
      rc = 1;
    }
  }
  // The partitioned shards must actually shrink the per-device footprint.
  for (const Workload& w : workloads) {
    std::size_t k1_peak = 0, part4_peak = 0;
    for (const ScaleRow& r : rows) {
      if (r.name != w.name) continue;
      if (r.strategy == "replicate" && r.devices == 1)
        k1_peak = r.max_peak_bytes;
      if (r.strategy == "partition") part4_peak = r.max_peak_bytes;
    }
    if (part4_peak >= k1_peak) {
      std::cerr << "ERROR: " << w.name << " partition K=4 peak did not drop"
                << " below the whole-graph peak\n";
      rc = 1;
    }
  }
  if (!wall.oom_at_k1) {
    std::cerr << "ERROR: memory-wall graph fit on one scaled device\n";
    rc = 1;
  }
  if (wall.strategy != "partition") {
    std::cerr << "ERROR: memory-wall auto strategy picked " << wall.strategy
              << " (need partition)\n";
    rc = 1;
  }
  if (wall.max_peak_bytes >= wall.capacity_bytes) {
    std::cerr << "ERROR: memory-wall per-device peak " << wall.max_peak_bytes
              << " B >= capacity " << wall.capacity_bytes << " B\n";
    rc = 1;
  }
  if (!wall.bc_ok) {
    std::cerr << "ERROR: memory-wall BC max rel err " << wall.max_rel_err
              << " vs sequential Brandes (need <= 1e-9)\n";
    rc = 1;
  }
  return rc;
}
