// Out-of-core compressed-storage benchmark: BENCH_ooc.json.
//
// Four families across the compressibility spectrum — a Watts–Strogatz
// small world (near-diagonal columns, the codec's best case), a Graph500
// Kronecker (hub columns with small gaps), a Markov lattice (banded local
// stencil), and a subdivided road network (degree-2 chains, the codec's
// worst case: offsets dominate) — each run
// through the resident uncompressed engine, the resident compressed engine
// (--compress), and StreamingTurboBC under eviction pressure.
//
// Gates (any failure exits nonzero):
//   * the delta-varint image must clear kRatioThreshold (1.5x) over the
//     uncompressed CSC on at least kMinWinningFamilies (2) families — the
//     same bytes are the graph's one-time PCIe upload, so this is also the
//     modeled H2D transfer-byte reduction;
//   * compressed and streamed BC must be BIT-identical to the uncompressed
//     kScCsc engine on every family;
//   * the compressed gather's 1-byte loads must coalesce into FEWER modeled
//     memory transactions than the uncompressed 4-byte loads on at least
//     kMinWinningFamilies families;
//   * the compressed peak must sit inside the 7n-words + compressed-image
//     model (core/footprint.hpp turbobc_ooc_model_bytes), and the streamed
//     peak below the resident compressed peak;
//   * the compressed run serialized at pool widths 1 and 8 must be
//     byte-identical (values, modeled seconds, peak bytes);
//   * the crossing: on a device sized between the streamed and resident
//     peaks, the resident engine must die with DeviceOutOfMemory while the
//     streamed engine completes with the same BC vector.
//
//   bench_ooc [--seed 1] [--threads N] [--out BENCH_ooc.json]
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support/stamp.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/footprint.hpp"
#include "core/turbobc.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "graph/csc.hpp"
#include "storage/compressed_csc.hpp"
#include "storage/streaming_bc.hpp"

namespace {

using namespace turbobc;

constexpr double kRatioThreshold = 1.5;
constexpr int kMinWinningFamilies = 2;
constexpr vidx_t kSources = 6;
constexpr int kStreamShards = 8;
constexpr int kStreamWindow = 2;

struct EngineRun {
  bc::BcResult result;
  std::uint64_t load_transactions = 0;
  std::uint64_t store_transactions = 0;
};

struct FamilyRow {
  std::string family;
  vidx_t n = 0;
  eidx_t m = 0;
  std::uint64_t csc_bytes = 0;         // uncompressed resident graph image
  std::uint64_t compressed_bytes = 0;  // delta-varint image (model_bytes)
  double ratio = 0.0;
  bool ratio_ok = false;
  double plain_s = 0.0;
  double compressed_s = 0.0;
  double streamed_s = 0.0;
  std::size_t plain_peak = 0;
  std::size_t compressed_peak = 0;
  std::size_t streamed_peak = 0;
  std::uint64_t plain_loads = 0;
  std::uint64_t compressed_loads = 0;
  bool transactions_ok = false;
  bool compressed_bits_ok = false;
  bool streamed_bits_ok = false;
  bool footprint_ok = false;
  bool streamed_peak_ok = false;
  bool threads_byte_identical = false;
  storage::StreamingLedger ledger;
};

struct Crossing {
  std::string family;
  std::size_t device_bytes = 0;
  std::size_t resident_peak = 0;
  std::size_t streamed_peak = 0;
  bool resident_oom = false;
  bool streamed_completed = false;
  bool streamed_bits_ok = false;
};

std::vector<vidx_t> spread_sources(vidx_t n, vidx_t want) {
  const vidx_t count = std::min(n, want);
  std::vector<vidx_t> sources;
  for (vidx_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<vidx_t>(
        (static_cast<std::uint64_t>(i) * n) / count));
  }
  return sources;
}

EngineRun run_resident(const graph::EdgeList& el,
                       const std::vector<vidx_t>& sources, bool compress) {
  sim::Device device;
  device.set_keep_launch_records(false);
  bc::TurboBC algo(device, el,
                   {.variant = bc::Variant::kScCsc, .compress = compress});
  EngineRun run;
  run.result = algo.run_sources(sources);
  for (const auto& [name, agg] : device.kernel_aggregates()) {
    run.load_transactions += agg.load_transactions;
    run.store_transactions += agg.store_transactions;
  }
  return run;
}

/// Hex-exact serialization of everything the determinism contract covers.
std::string serialize_run(const EngineRun& run) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const bc_t v : run.result.bc) os << v << ',';
  os << '|' << run.result.device_seconds << '|'
     << run.result.peak_device_bytes << '|' << run.load_transactions << '|'
     << run.store_transactions;
  return os.str();
}

bool bits_equal(const std::vector<bc_t>& a, const std::vector<bc_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

void write_ooc_json(std::ostream& os, const bench::BenchStamp& stamp,
                    const std::vector<FamilyRow>& rows,
                    const Crossing& crossing, int ratio_wins,
                    int transaction_wins) {
  os << "{\n";
  bench::write_stamp_json(os, stamp);
  os << ",\n\"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "  {\"family\": \"" << r.family << "\", \"n\": " << r.n
       << ", \"m\": " << r.m << ", \"csc_bytes\": " << r.csc_bytes
       << ", \"compressed_bytes\": " << r.compressed_bytes
       << ", \"compression_ratio\": " << r.ratio
       << ", \"ratio_ok\": " << (r.ratio_ok ? "true" : "false")
       << ", \"plain_s\": " << r.plain_s
       << ", \"compressed_s\": " << r.compressed_s
       << ", \"streamed_s\": " << r.streamed_s
       << ", \"plain_peak\": " << r.plain_peak
       << ", \"compressed_peak\": " << r.compressed_peak
       << ", \"streamed_peak\": " << r.streamed_peak
       << ", \"plain_load_transactions\": " << r.plain_loads
       << ", \"compressed_load_transactions\": " << r.compressed_loads
       << ", \"transactions_ok\": "
       << (r.transactions_ok ? "true" : "false")
       << ", \"compressed_bits_ok\": "
       << (r.compressed_bits_ok ? "true" : "false")
       << ", \"streamed_bits_ok\": "
       << (r.streamed_bits_ok ? "true" : "false")
       << ", \"footprint_ok\": " << (r.footprint_ok ? "true" : "false")
       << ", \"streamed_peak_ok\": "
       << (r.streamed_peak_ok ? "true" : "false")
       << ", \"threads_byte_identical\": "
       << (r.threads_byte_identical ? "true" : "false")
       << ", \"stream\": {\"uploads\": " << r.ledger.shard_uploads
       << ", \"upload_bytes\": " << r.ledger.upload_bytes
       << ", \"refetch_bytes\": " << r.ledger.refetch_bytes
       << ", \"evictions\": " << r.ledger.evictions << "}}"
       << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  os << "],\n\"crossing\": {\"family\": \"" << crossing.family
     << "\", \"device_bytes\": " << crossing.device_bytes
     << ", \"resident_peak\": " << crossing.resident_peak
     << ", \"streamed_peak\": " << crossing.streamed_peak
     << ", \"resident_oom\": " << (crossing.resident_oom ? "true" : "false")
     << ", \"streamed_completed\": "
     << (crossing.streamed_completed ? "true" : "false")
     << ", \"streamed_bits_ok\": "
     << (crossing.streamed_bits_ok ? "true" : "false") << "},\n";
  os << "\"acceptance\": {\"ratio_threshold\": " << kRatioThreshold
     << ", \"min_winning_families\": " << kMinWinningFamilies
     << ", \"ratio_wins\": " << ratio_wins
     << ", \"transaction_wins\": " << transaction_wins << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbobc;
  using namespace turbobc::bench;

  const CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto threads = static_cast<unsigned>(args.get_count("threads", 0));
  sim::ExecutorPool::instance().set_threads(threads);

  WallTimer run_timer;

  struct Family {
    std::string name;
    graph::EdgeList graph;
  };
  std::vector<Family> families;
  std::cerr << "  [ooc] generating graphs ..." << std::flush;
  families.push_back({"smallworld",
                      gen::small_world({.n = 3000, .k = 8, .rewire_p = 0.05,
                                        .seed = seed})});
  families.push_back({"kron12", gen::kronecker({.scale = 12, .edge_factor = 8,
                                                .seed = seed + 1})});
  families.push_back({"mark3j",
                      gen::markov_lattice({.length = 60, .width = 40,
                                           .seed = seed + 2})});
  families.push_back({"road-deep",
                      gen::road_network({.grid_rows = 10, .grid_cols = 10,
                                         .keep_p = 0.85, .subdivisions = 5,
                                         .seed = seed + 3})});
  std::cerr << " done\n";

  std::vector<FamilyRow> rows;
  Crossing crossing;
  for (const Family& fam : families) {
    graph::EdgeList el = fam.graph;
    el.canonicalize();
    const auto sources = spread_sources(el.num_vertices(), kSources);
    std::cerr << "  [ooc] " << fam.name << " (n "
              << human_count(static_cast<double>(el.num_vertices())) << ", m "
              << human_count(static_cast<double>(el.num_arcs())) << ")"
              << std::flush;

    FamilyRow row;
    row.family = fam.name;
    row.n = el.num_vertices();
    row.m = el.num_arcs();
    const storage::CompressedCsc packed =
        storage::encode_csc(graph::CscGraph::from_edges(el));
    row.csc_bytes = 4ull * (static_cast<std::uint64_t>(row.n) + 1) +
                    4ull * static_cast<std::uint64_t>(row.m);
    row.compressed_bytes = packed.model_bytes();
    row.ratio = packed.compression_ratio();
    row.ratio_ok = row.ratio >= kRatioThreshold;

    std::cerr << " plain" << std::flush;
    const EngineRun plain = run_resident(el, sources, /*compress=*/false);
    row.plain_s = plain.result.device_seconds;
    row.plain_peak = plain.result.peak_device_bytes;
    row.plain_loads = plain.load_transactions;

    std::cerr << " compressed" << std::flush;
    const EngineRun compressed = run_resident(el, sources, /*compress=*/true);
    row.compressed_s = compressed.result.device_seconds;
    row.compressed_peak = compressed.result.peak_device_bytes;
    row.compressed_loads = compressed.load_transactions;
    row.compressed_bits_ok = bits_equal(compressed.result.bc, plain.result.bc);
    row.transactions_ok = row.compressed_loads < row.plain_loads;
    // 16 B slack: the CP_A tail entry plus the forward c-flag word, same as
    // the resident model grants (qa/oracle.cpp).
    row.footprint_ok =
        row.compressed_peak <=
        bc::turbobc_ooc_model_bytes(row.n, row.compressed_bytes) + 16;

    std::cerr << " streamed" << std::flush;
    {
      sim::Device device;
      device.set_keep_launch_records(false);
      storage::StreamingTurboBC streamed(
          device, packed,
          {.num_shards = kStreamShards, .window = kStreamWindow});
      const bc::BcResult r = streamed.run_sources(sources);
      row.streamed_s = r.device_seconds;
      row.streamed_peak = r.peak_device_bytes;
      row.streamed_bits_ok = bits_equal(r.bc, plain.result.bc);
      row.streamed_peak_ok = row.streamed_peak < row.compressed_peak;
      row.ledger = streamed.ledger();

      // The crossing demo rides on the first family: pick a device size
      // between the streamed and resident peaks and show the OOM flip.
      if (crossing.family.empty()) {
        crossing.family = fam.name;
        crossing.resident_peak = row.plain_peak;
        crossing.streamed_peak = row.streamed_peak;
        crossing.device_bytes = (row.streamed_peak + row.plain_peak) / 2;
        sim::DeviceProps small = sim::DeviceProps::titan_xp();
        small.global_mem_bytes = crossing.device_bytes;
        try {
          sim::Device tight(small);
          tight.set_keep_launch_records(false);
          bc::TurboBC algo(tight, el, {.variant = bc::Variant::kScCsc});
          algo.run_sources(sources);
        } catch (const DeviceOutOfMemory&) {
          crossing.resident_oom = true;
        }
        try {
          sim::Device tight(small);
          tight.set_keep_launch_records(false);
          storage::StreamingTurboBC tight_streamed(
              tight, packed,
              {.num_shards = kStreamShards, .window = kStreamWindow});
          const bc::BcResult tr = tight_streamed.run_sources(sources);
          crossing.streamed_completed = true;
          crossing.streamed_bits_ok = bits_equal(tr.bc, plain.result.bc);
        } catch (const DeviceOutOfMemory&) {
          crossing.streamed_completed = false;
        }
      }
    }

    std::cerr << " threads" << std::flush;
    std::string by_width[2];
    const unsigned widths[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
      sim::ExecutorPool::instance().set_threads(widths[i]);
      by_width[i] = serialize_run(run_resident(el, sources, true));
    }
    sim::ExecutorPool::instance().set_threads(threads);
    row.threads_byte_identical = by_width[0] == by_width[1];

    rows.push_back(row);
    std::cerr << " done\n";
  }

  int ratio_wins = 0;
  int transaction_wins = 0;
  for (const FamilyRow& r : rows) {
    if (r.ratio_ok) ++ratio_wins;
    if (r.transactions_ok) ++transaction_wins;
  }

  std::cout << "Out-of-core delta-varint storage: resident vs compressed vs "
               "streamed (" << kSources << " spread sources)\n";
  Table t({"family", "n", "m", "csc", "compressed", "ratio", "peak plain",
           "peak comp", "peak stream", "bits"});
  for (const FamilyRow& r : rows) {
    t.add_row({r.family, human_count(static_cast<double>(r.n)),
               human_count(static_cast<double>(r.m)),
               human_bytes(r.csc_bytes), human_bytes(r.compressed_bytes),
               fixed(r.ratio, 2) + "x", human_bytes(r.plain_peak),
               human_bytes(r.compressed_peak), human_bytes(r.streamed_peak),
               r.compressed_bits_ok && r.streamed_bits_ok ? "ok" : "DRIFT"});
  }
  t.print(std::cout);

  std::cout << "\nModeled traffic (load transactions) and the PCIe ledger\n";
  Table g({"family", "loads plain", "loads comp", "fewer", "uploads",
           "upload bytes", "refetch bytes", "evictions", "threads 1==8"});
  for (const FamilyRow& r : rows) {
    g.add_row({r.family, human_count(static_cast<double>(r.plain_loads)),
               human_count(static_cast<double>(r.compressed_loads)),
               r.transactions_ok ? "ok" : "MORE",
               std::to_string(r.ledger.shard_uploads),
               human_bytes(r.ledger.upload_bytes),
               human_bytes(r.ledger.refetch_bytes),
               std::to_string(r.ledger.evictions),
               r.threads_byte_identical ? "ok" : "DRIFT"});
  }
  g.print(std::cout);

  std::cout << "\nOut-of-core crossing (" << crossing.family << ", device "
            << human_bytes(crossing.device_bytes) << "): resident "
            << (crossing.resident_oom ? "OOM" : "FIT (unexpected)")
            << ", streamed "
            << (crossing.streamed_completed ? "completed" : "OOM (unexpected)")
            << (crossing.streamed_bits_ok ? ", bits ok" : ", BITS DRIFTED")
            << "\n";

  const std::string out_path = args.get("out", "BENCH_ooc.json");
  std::ofstream json(out_path);
  write_ooc_json(json, make_stamp(seed, run_timer.seconds()), rows, crossing,
                 ratio_wins, transaction_wins);
  std::cout << "\nwrote " << out_path << '\n';

  int rc = 0;
  for (const FamilyRow& r : rows) {
    if (!r.compressed_bits_ok || !r.streamed_bits_ok) {
      std::cerr << "ERROR: " << r.family
                << " compressed/streamed BC drifted from the uncompressed "
                   "engine\n";
      rc = 1;
    }
    if (!r.footprint_ok) {
      std::cerr << "ERROR: " << r.family << " compressed peak "
                << r.compressed_peak << " B above the 7n + compressed model "
                << bc::turbobc_ooc_model_bytes(r.n, r.compressed_bytes)
                << " B\n";
      rc = 1;
    }
    if (!r.streamed_peak_ok) {
      std::cerr << "ERROR: " << r.family << " streamed peak "
                << r.streamed_peak << " B not below resident compressed peak "
                << r.compressed_peak << " B\n";
      rc = 1;
    }
    if (!r.threads_byte_identical) {
      std::cerr << "ERROR: " << r.family
                << " compressed run drifted between pool widths 1 and 8\n";
      rc = 1;
    }
  }
  if (ratio_wins < kMinWinningFamilies) {
    std::cerr << "ERROR: only " << ratio_wins << " of " << rows.size()
              << " families reached the " << kRatioThreshold
              << "x compression ratio (need >= " << kMinWinningFamilies
              << ")\n";
    rc = 1;
  }
  if (transaction_wins < kMinWinningFamilies) {
    std::cerr << "ERROR: only " << transaction_wins << " of " << rows.size()
              << " families reduced modeled load transactions (need >= "
              << kMinWinningFamilies << ")\n";
    rc = 1;
  }
  if (!crossing.resident_oom || !crossing.streamed_completed ||
      !crossing.streamed_bits_ok) {
    std::cerr << "ERROR: out-of-core crossing did not demonstrate "
                 "OOM-at-resident -> completes-streamed\n";
    rc = 1;
  }
  return rc;
}
