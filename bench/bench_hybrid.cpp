// Hybrid CPU-GPU co-execution benchmark: BENCH_hybrid.json.
//
// Four block-rich families — a Watts–Strogatz small world, a Graph500
// Kronecker, a subdivided road network, and an Erdos–Renyi digraph — each
// run exact all-sources two ways:
//
//   * device-only: the single-engine TurboBC (kScCsc pinned, the variant
//     the host arithmetic reproduces) on one modeled GPU;
//   * hybrid: HybridTurboBC with the same one modeled GPU plus the host
//     (CpuModel's 22-core ligra-style currency) draining the same 64-source
//     block queue, heavy blocks first, probe-calibrated split.
//
// The comparison is makespan vs makespan on the same modeled clock: the
// co-executed run wins exactly when the host's stolen tail overlaps device
// work, which is the whole point of the scheduler.
//
// Gates (any failure exits nonzero):
//   * hybrid BC must be BIT-identical to the device-only engine on every
//     family (the co-execution transparency contract);
//   * the hybrid makespan must beat device-only by kSpeedupThreshold (1.2x)
//     on at least kMinWinningFamilies (2) families;
//   * the host must actually run blocks on every winning family (a "win"
//     with zero host blocks would mean the baseline regressed instead);
//   * the full hybrid report serialized at pool widths 1 and 8 must be
//     byte-identical (BC bits, makespan, busy, per-processor stats).
//
//   bench_hybrid [--seed 1] [--threads N] [--out BENCH_hybrid.json]
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support/stamp.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/turbobc.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "hybrid/hybrid_bc.hpp"

namespace {

using namespace turbobc;

constexpr double kSpeedupThreshold = 1.2;
constexpr int kMinWinningFamilies = 2;

struct FamilyRow {
  std::string family;
  vidx_t n = 0;
  eidx_t m = 0;
  std::size_t blocks = 0;
  double device_only_s = 0.0;
  double hybrid_s = 0.0;       // modeled makespan
  double hybrid_busy_s = 0.0;  // serial sum of per-block seconds
  double speedup = 0.0;
  std::size_t host_blocks = 0;
  std::size_t host_sources = 0;
  double host_utilization = 0.0;
  double gpu_utilization = 0.0;
  bool bits_ok = false;
  bool speedup_ok = false;
  bool threads_byte_identical = false;
};

bool bits_equal(const std::vector<bc_t>& a, const std::vector<bc_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

hybrid::HybridResult run_hybrid(const graph::EdgeList& el) {
  sim::Device device;
  device.set_keep_launch_records(false);
  hybrid::HybridTurboBC engine(device, el, {}, {.devices = 1});
  return engine.run_exact();
}

/// Hex-exact serialization of everything the determinism contract covers:
/// the BC bits plus every modeled number in the hybrid report.
std::string serialize_hybrid(const hybrid::HybridResult& hr) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const bc_t v : hr.result.bc) os << v << ',';
  os << '|' << hr.makespan_seconds << '|' << hr.busy_seconds << '|'
     << hr.probe_block << '|' << hr.num_blocks;
  for (const hybrid::ProcessorStat& p : hr.processors) {
    os << '|' << p.name << ':' << p.blocks << ':' << p.sources << ':'
       << p.rate << ':' << p.busy_seconds << ':' << p.utilization;
  }
  return os.str();
}

void write_hybrid_json(std::ostream& os, const bench::BenchStamp& stamp,
                       const std::vector<FamilyRow>& rows, int speedup_wins) {
  os << "{\n";
  bench::write_stamp_json(os, stamp);
  os << ",\n\"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "  {\"family\": \"" << r.family << "\", \"n\": " << r.n
       << ", \"m\": " << r.m << ", \"blocks\": " << r.blocks
       << ", \"device_only_s\": " << r.device_only_s
       << ", \"hybrid_makespan_s\": " << r.hybrid_s
       << ", \"hybrid_busy_s\": " << r.hybrid_busy_s
       << ", \"speedup\": " << r.speedup
       << ", \"speedup_ok\": " << (r.speedup_ok ? "true" : "false")
       << ", \"host_blocks\": " << r.host_blocks
       << ", \"host_sources\": " << r.host_sources
       << ", \"host_utilization\": " << r.host_utilization
       << ", \"gpu_utilization\": " << r.gpu_utilization
       << ", \"bits_ok\": " << (r.bits_ok ? "true" : "false")
       << ", \"threads_byte_identical\": "
       << (r.threads_byte_identical ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  os << "],\n\"acceptance\": {\"speedup_threshold\": " << kSpeedupThreshold
     << ", \"min_winning_families\": " << kMinWinningFamilies
     << ", \"speedup_wins\": " << speedup_wins << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbobc;
  using namespace turbobc::bench;

  const CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto threads = static_cast<unsigned>(args.get_count("threads", 0));
  sim::ExecutorPool::instance().set_threads(threads);

  WallTimer run_timer;

  struct Family {
    std::string name;
    graph::EdgeList graph;
  };
  std::vector<Family> families;
  std::cerr << "  [hybrid] generating graphs ..." << std::flush;
  families.push_back({"smallworld",
                      gen::small_world({.n = 1200, .k = 6, .rewire_p = 0.1,
                                        .seed = seed})});
  families.push_back({"kron10", gen::kronecker({.scale = 10, .edge_factor = 8,
                                                .seed = seed + 1})});
  families.push_back({"road-mid",
                      gen::road_network({.grid_rows = 12, .grid_cols = 12,
                                         .keep_p = 0.8, .subdivisions = 3,
                                         .seed = seed + 2})});
  families.push_back(
      {"er-digraph",
       gen::erdos_renyi({.n = 1000, .arcs = 5000, .directed = true,
                         .seed = seed + 3})});
  std::cerr << " done\n";

  std::vector<FamilyRow> rows;
  for (const Family& fam : families) {
    graph::EdgeList el = fam.graph;
    el.canonicalize();
    std::cerr << "  [hybrid] " << fam.name << " (n "
              << human_count(static_cast<double>(el.num_vertices())) << ", m "
              << human_count(static_cast<double>(el.num_arcs())) << ")"
              << std::flush;

    FamilyRow row;
    row.family = fam.name;
    row.n = el.num_vertices();
    row.m = el.num_arcs();

    std::cerr << " device-only" << std::flush;
    bc::BcResult device_only;
    {
      sim::Device device;
      device.set_keep_launch_records(false);
      bc::TurboBC algo(device, el, {.variant = bc::Variant::kScCsc});
      device_only = algo.run_exact();
    }
    row.device_only_s = device_only.device_seconds;

    std::cerr << " hybrid" << std::flush;
    const hybrid::HybridResult hr = run_hybrid(el);
    row.blocks = hr.num_blocks;
    row.hybrid_s = hr.makespan_seconds;
    row.hybrid_busy_s = hr.busy_seconds;
    row.speedup = row.hybrid_s > 0.0 ? row.device_only_s / row.hybrid_s : 0.0;
    row.bits_ok = bits_equal(hr.result.bc, device_only.bc);
    const hybrid::ProcessorStat& host = hr.processors.back();
    row.host_blocks = host.blocks;
    row.host_sources = host.sources;
    row.host_utilization = host.utilization;
    row.gpu_utilization = hr.processors.front().utilization;
    // A win that starves the host is a baseline regression, not overlap.
    row.speedup_ok = row.speedup >= kSpeedupThreshold && row.host_blocks > 0;

    std::cerr << " threads" << std::flush;
    std::string by_width[2];
    const unsigned widths[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
      sim::ExecutorPool::instance().set_threads(widths[i]);
      by_width[i] = serialize_hybrid(run_hybrid(el));
    }
    sim::ExecutorPool::instance().set_threads(threads);
    row.threads_byte_identical = by_width[0] == by_width[1];

    rows.push_back(row);
    std::cerr << " done\n";
  }

  int speedup_wins = 0;
  for (const FamilyRow& r : rows) {
    if (r.speedup_ok) ++speedup_wins;
  }

  std::cout << "Hybrid CPU-GPU co-execution: one modeled GPU + host vs the "
               "GPU alone (exact all-sources)\n";
  Table t({"family", "n", "m", "blocks", "device-only s", "hybrid s",
           "speedup", "host blk", "host src", "util gpu", "util host",
           "bits"});
  for (const FamilyRow& r : rows) {
    t.add_row({r.family, human_count(static_cast<double>(r.n)),
               human_count(static_cast<double>(r.m)),
               std::to_string(r.blocks), fixed(r.device_only_s, 4),
               fixed(r.hybrid_s, 4), fixed(r.speedup, 2) + "x",
               std::to_string(r.host_blocks), std::to_string(r.host_sources),
               fixed(r.gpu_utilization, 2), fixed(r.host_utilization, 2),
               r.bits_ok ? "ok" : "DRIFT"});
  }
  t.print(std::cout);

  const std::string out_path = args.get("out", "BENCH_hybrid.json");
  std::ofstream json(out_path);
  write_hybrid_json(json, make_stamp(seed, run_timer.seconds()), rows,
                    speedup_wins);
  std::cout << "\nwrote " << out_path << '\n';

  int rc = 0;
  for (const FamilyRow& r : rows) {
    if (!r.bits_ok) {
      std::cerr << "ERROR: " << r.family
                << " hybrid BC drifted from the device-only engine\n";
      rc = 1;
    }
    if (!r.threads_byte_identical) {
      std::cerr << "ERROR: " << r.family
                << " hybrid report drifted between pool widths 1 and 8\n";
      rc = 1;
    }
  }
  if (speedup_wins < kMinWinningFamilies) {
    std::cerr << "ERROR: only " << speedup_wins << " of " << rows.size()
              << " families reached the " << kSpeedupThreshold
              << "x co-execution speedup (need >= " << kMinWinningFamilies
              << ")\n";
    rc = 1;
  }
  return rc;
}
