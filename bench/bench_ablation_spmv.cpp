// Ablation for the paper's Section 3.3 claims:
//   (1) the SpMV can be up to ~90% of the total BC runtime, so the SpMV
//       variant determines overall performance;
//   (2) the variant ranking flips with graph class: scCSC wins on regular
//       graphs, scCOOC on degree-skewed regular graphs, veCSC on irregular
//       graphs.
// We run all three variants on one representative of each class and print
// the per-kernel time breakdown.
#include <iostream>

#include "bench_support/suite.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/turbobc.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"

namespace {

struct Breakdown {
  double total = 0;
  double spmv = 0;
};

Breakdown run(const turbobc::graph::EdgeList& g, turbobc::bc::Variant v,
              turbobc::vidx_t source) {
  using namespace turbobc;
  sim::Device dev;
  bc::TurboBC turbo(dev, g, {.variant = v});
  Breakdown b;
  b.total = turbo.run_single_source(source).device_seconds;
  for (const auto& [name, agg] : dev.kernel_aggregates()) {
    if (name.find("spmv") != std::string::npos) b.spmv += agg.time_s;
  }
  return b;
}

}  // namespace

int main() {
  using namespace turbobc;
  using namespace turbobc::bench;

  struct ClassRep {
    const char* cls;
    const char* expected_winner;
    graph::EdgeList g;
  };
  std::vector<ClassRep> reps;
  reps.push_back({"regular (lattice)", "scCSC",
                  gen::markov_lattice({.length = 42, .width = 80,
                                       .burst_p = 0.01, .burst_size = 24,
                                       .seed = 11})});
  reps.push_back({"regular, hub-skewed (mawi)", "scCOOC",
                  gen::traffic_trace({.n = 15000, .hubs = 10, .decay = 0.45,
                                      .seed = 28})});
  reps.push_back({"irregular (mycielski)", "veCSC", gen::mycielski(11)});

  Table t({"class", "variant", "total(ms)", "SpMV(ms)", "SpMV %",
           "expected winner"});
  for (const auto& rep : reps) {
    const vidx_t source = representative_source(rep.g);
    double best = 1e300;
    std::string winner;
    struct Row {
      std::string v;
      Breakdown b;
    };
    std::vector<Row> rows;
    for (const auto v : {bc::Variant::kScCooc, bc::Variant::kScCsc,
                         bc::Variant::kVeCsc}) {
      const Breakdown b = run(rep.g, v, source);
      rows.push_back({std::string(bc::to_string(v)), b});
      if (b.total < best) {
        best = b.total;
        winner = bc::to_string(v);
      }
    }
    for (const auto& r : rows) {
      const bool is_winner = r.b.total == best;
      t.add_row({rep.cls, r.v + (is_winner ? " *" : ""),
                 fixed(r.b.total * 1e3, 3), fixed(r.b.spmv * 1e3, 3),
                 fixed(100.0 * r.b.spmv / r.b.total, 0) + "%",
                 rep.expected_winner});
    }
    std::cerr << "  [ablation-spmv] " << rep.cls << ": winner " << winner
              << " (paper expects " << rep.expected_winner << ")\n";
  }

  std::cout << "Ablation — SpMV share of runtime and variant ranking per "
               "graph class ('*' marks the measured winner)\n";
  t.print(std::cout);
  return 0;
}
