// TurboBFS (the paper's reference [1], the forward stage of TurboBC as a
// standalone algorithm): BFS MTEPS per SpMV variant across the benchmark
// classes. Included because the BFS stage is where the paper's SpMV design
// choices act; the backward stage inherits the winner.
#include <iostream>

#include "bench_support/mteps.hpp"
#include "bench_support/suite.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/turbobfs.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "graph/bfs_probe.hpp"

int main() {
  using namespace turbobc;
  using namespace turbobc::bench;

  struct Case {
    const char* name;
    graph::EdgeList g;
  };
  std::vector<Case> cases;
  cases.push_back({"markov lattice (regular, deep)",
                   gen::markov_lattice({.length = 42, .width = 80,
                                        .burst_p = 0.01, .burst_size = 24,
                                        .seed = 11})});
  cases.push_back({"smallworld (regular, shallow)",
                   gen::small_world({.n = 10000, .k = 10, .rewire_p = 0.1,
                                     .seed = 24})});
  cases.push_back({"mawi trace (hub-skewed)",
                   gen::traffic_trace({.n = 20000, .hubs = 11, .decay = 0.45,
                                       .seed = 29})});
  cases.push_back({"mycielski M12 (irregular)", gen::mycielski(12)});
  cases.push_back({"kronecker s13 (irregular)",
                   gen::kronecker({.scale = 13, .edge_factor = 40,
                                   .seed = 100})});

  Table t({"graph", "d", "reached", "scCOOC MTEPS", "scCSC MTEPS",
           "veCSC MTEPS", "winner"});
  for (const Case& c : cases) {
    const vidx_t source = representative_source(c.g);
    double mteps[3] = {0, 0, 0};
    vidx_t depth = 0, reached = 0;
    for (const auto v : {bc::Variant::kScCooc, bc::Variant::kScCsc,
                         bc::Variant::kVeCsc}) {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBfs bfs(dev, c.g, v);
      const auto r = bfs.run(source);
      mteps[static_cast<int>(v)] =
          mteps_single_source(c.g.num_arcs(), r.device_seconds);
      depth = r.height;
      reached = r.reached;
    }
    int best = 0;
    for (int v = 1; v < 3; ++v) {
      if (mteps[v] > mteps[best]) best = v;
    }
    const char* names[] = {"scCOOC", "scCSC", "veCSC"};
    t.add_row({c.name, std::to_string(depth),
               std::to_string(reached) + "/" +
                   std::to_string(c.g.num_vertices()),
               fixed(mteps[0], 0), fixed(mteps[1], 0), fixed(mteps[2], 0),
               names[best]});
    std::cerr << "  [turbobfs] " << c.name << " done\n";
  }

  std::cout << "TurboBFS — standalone BFS throughput per SpMV variant "
               "(modeled MTEPS; the variant ranking matches the BC tables "
               "because the BFS stage dominates)\n";
  t.print(std::cout);
  return 0;
}
