// Extension ablation: vertex reordering (RCM) as SpMV locality preprocessing.
//
// The simulated device charges coalescing and L2 costs from the real access
// streams, so the ordering of vertex ids is measurable: the scalar CSC
// gather x(row_A(k)) hits nearby sectors when in-neighbour ids are close.
// We compare BC time and the SpMV kernels' L2 hit rate for three orderings
// of the same graph — natural (generator order), random (worst case), and
// RCM — on a mesh-like and an irregular workload. BC values are invariant
// under relabeling (pinned by tests), so any time difference is locality.
#include <iostream>

#include "bench_support/suite.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/turbobc.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "graph/reorder.hpp"

namespace {

using namespace turbobc;

struct Probe {
  double ms = 0;
  double l2_hit_pct = 0;
};

Probe run(const graph::EdgeList& g, bc::Variant v, vidx_t source,
          std::size_t l2_bytes) {
  sim::DeviceProps props = sim::DeviceProps::titan_xp();
  props.l2_bytes = l2_bytes;
  sim::Device dev(props);
  bc::TurboBC turbo(dev, g, {.variant = v});
  Probe p;
  p.ms = turbo.run_single_source(source).device_seconds * 1e3;
  std::uint64_t hits = 0, total = 0;
  for (const auto& [name, agg] : dev.kernel_aggregates()) {
    if (name.find("spmv") != std::string::npos) {
      hits += agg.l2_hit_transactions;
      total += agg.l2_hit_transactions + agg.dram_transactions;
    }
  }
  p.l2_hit_pct = total > 0 ? 100.0 * static_cast<double>(hits) /
                                 static_cast<double>(total)
                           : 0.0;
  return p;
}

}  // namespace

int main() {
  using namespace turbobc::bench;

  struct Case {
    const char* name;
    graph::EdgeList g;
    bc::Variant variant;
  };
  std::vector<Case> cases;
  cases.push_back({"delaunay-like mesh (scCSC)",
                   gen::triangulated_grid(85, 78), bc::Variant::kScCsc});
  cases.push_back({"road network (scCSC)",
                   gen::road_network({.grid_rows = 10, .grid_cols = 10,
                                      .keep_p = 0.7, .subdivisions = 30,
                                      .seed = 17}),
                   bc::Variant::kScCsc});
  cases.push_back({"kronecker s12 (veCSC)",
                   gen::kronecker({.scale = 12, .edge_factor = 40,
                                   .seed = 100}),
                   bc::Variant::kVeCsc});

  // Two device configurations: the full 3 MB L2 (scaled graphs are
  // cache-resident — the regime where warp balance dominates) and an
  // L2-starved device (the large-graph regime at paper scale, where the
  // working set no longer fits and gather locality decides DRAM traffic).
  struct DeviceCfg {
    const char* label;
    std::size_t l2;
  };
  const DeviceCfg devices[2] = {{"3 MB L2 (cache-resident)",
                                 3ull * 1024 * 1024},
                                {"64 KB L2 (large-graph regime)", 64 * 1024}};

  for (const DeviceCfg& dc : devices) {
    Table t({"graph", "ordering", "bandwidth", "BC time(ms)", "SpMV L2 hit",
             "vs random"});
    for (const Case& c : cases) {
      const auto random = graph::apply_order(
          c.g, graph::random_order(c.g.num_vertices(), 5));
      const auto rcm = graph::apply_order(random, graph::rcm_order(random));

      struct Row {
        const char* label;
        const graph::EdgeList* g;
      };
      const Row rows[3] = {{"natural", &c.g}, {"random", &random},
                           {"rcm", &rcm}};
      double random_ms = 0.0;
      Probe probes[3];
      for (int i = 0; i < 3; ++i) {
        probes[i] = run(*rows[i].g, c.variant,
                        representative_source(*rows[i].g), dc.l2);
        if (i == 1) random_ms = probes[i].ms;
      }
      for (int i = 0; i < 3; ++i) {
        t.add_row({c.name, rows[i].label,
                   human_count(
                       static_cast<double>(graph::bandwidth(*rows[i].g))),
                   fixed(probes[i].ms, 3),
                   fixed(probes[i].l2_hit_pct, 0) + "%",
                   fixed(random_ms / probes[i].ms, 2) + "x"});
      }
      std::cerr << "  [reordering] " << c.name << " (" << dc.label
                << ") done\n";
    }
    std::cout << "Extension ablation — vertex reordering, device: "
              << dc.label << '\n';
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout
      << "Reading: at these scales BC time is issue/overhead-bound, so\n"
         "ordering moves *warp efficiency*, not DRAM time: the natural mesh\n"
         "order wins (contiguous gathers, interleaved degrees), while RCM —\n"
         "despite slashing the bandwidth (6.6k -> 79 on the mesh) — clusters\n"
         "equal-degree vertices into the same warps and loses ~10% to load\n"
         "imbalance, a known effect for thread-per-column kernels on real\n"
         "GPUs. The DRAM-traffic payoff RCM targets requires working sets\n"
         "far beyond L2 (paper-scale graphs); even the starved-L2 device\n"
         "stays overhead-bound at laptop scale. A negative result, reported\n"
         "as measured.\n";
  return 0;
}