// Concurrent serve-daemon benchmark: BENCH_daemon.json.
//
// Four lockstep socket clients drive a phase-barriered mixed workload
// against a real DaemonServer (JSON wire mode, one response line per
// request): in every phase each client issues one `approx` query (the
// concurrent read path — identical modeled cost per client, so the phase's
// cost multiset is deterministic whatever the arrival order), then each
// issues one `bc` (one incremental recompute plus three cache hits, every
// response stamped with (epoch, digest)), then client 0 applies one edge
// update (which barriers the scheduler's reader lanes). The same workload
// runs twice per family, at reader_lanes = 1 and reader_lanes = 4 — this
// box has one core, so query throughput scaling is measured where every
// other bench measures time: on the modeled clock, here the scheduler's
// reader-lane makespan.
//
// Gates (any failure exits nonzero):
//   * modeled makespan at 1 lane must be >= kSpeedupThreshold (2x) the
//     makespan at 4 lanes on at least kMinWinningFamilies (2) families;
//   * every served bc (epoch, digest) pair, from every client in both runs,
//     must equal a serial from-scratch run_exact replay of the scheduler's
//     epoch-ordered update log — served results are bit-identical to
//     recomputation at their epoch, whatever the interleaving;
//   * zero dropped requests: every request line gets exactly one response
//     (lockstep accounting per client), no BUSY bounces, no parse errors,
//     and the two lane configurations log identical update sequences.
//
//   bench_daemon [--seed 1] [--threads N] [--out BENCH_daemon.json]
#include <barrier>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/stamp.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/turbobc.hpp"
#include "daemon/server.hpp"
#include "daemon/socket.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace turbobc;

constexpr double kSpeedupThreshold = 2.0;
constexpr int kMinWinningFamilies = 2;
constexpr int kPhases = 3;
constexpr int kClients = 4;
constexpr double kApproxEpsilon = 0.02;  // far from convergence: the approx
constexpr double kApproxDelta = 0.1;     // runs its full n-pivot budget

struct ClientLog {
  int sent = 0;
  int received = 0;
  std::vector<std::pair<std::uint64_t, std::string>> bc_pairs;
  std::string error;  // non-empty marks a failed client
};

struct WorkloadRun {
  unsigned lanes = 1;
  daemon::Scheduler::Metrics metrics;
  std::vector<daemon::Scheduler::UpdateRecord> log;
  std::vector<ClientLog> clients;
  int requests = 0;
  int responses = 0;
};

struct FamilyRow {
  std::string family;
  vidx_t n = 0;
  eidx_t m = 0;
  WorkloadRun one;   // reader_lanes = 1
  WorkloadRun four;  // reader_lanes = 4
  double speedup = 0.0;
  bool speedup_ok = false;
  bool digests_ok = false;
  bool drops_ok = false;
  bool logs_match = false;
};

/// One lockstep client: send a line, block for its single JSON response.
class LockstepClient {
 public:
  explicit LockstepClient(const daemon::SocketAddr& addr)
      : fd_(daemon::connect_socket(addr)), reader_(fd_, 1 << 16) {
    std::string hello;
    if (reader_.next(hello) != daemon::LineReader::Status::kLine) {
      throw Error("bench_daemon: no hello from server");
    }
  }
  ~LockstepClient() { daemon::close_socket(fd_); }

  std::string request(const std::string& line, ClientLog& log) {
    if (!daemon::send_all(fd_, line + "\n")) {
      throw Error("bench_daemon: send failed");
    }
    ++log.sent;
    std::string response;
    if (reader_.next(response) != daemon::LineReader::Status::kLine) {
      throw Error("bench_daemon: connection closed mid-request");
    }
    ++log.received;
    return response;
  }

 private:
  int fd_;
  daemon::LineReader reader_;
};

/// The per-phase update stream, identical across runs and lane counts.
std::vector<std::string> update_script(const graph::EdgeList& el,
                                       std::uint64_t seed) {
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const auto n = static_cast<std::uint64_t>(el.num_vertices());
  std::vector<std::string> updates;
  for (int p = 0; p < kPhases; ++p) {
    std::ostringstream os;
    os << (p % 2 == 0 ? "insert " : "delete ") << rng.uniform(n) << ' '
       << rng.uniform(n);
    updates.push_back(os.str());
  }
  return updates;
}

WorkloadRun run_workload(const graph::EdgeList& el, unsigned lanes,
                         std::uint64_t seed) {
  daemon::DaemonOptions dopt;
  dopt.listen = "127.0.0.1:0";
  dopt.json = true;
  dopt.top = 3;
  dopt.sched.reader_lanes = lanes;
  daemon::DaemonServer server(el, dopt);
  server.start();

  const std::vector<std::string> updates = update_script(el, seed);
  WorkloadRun run;
  run.lanes = lanes;
  run.clients.resize(kClients);
  std::barrier phase_barrier(kClients);

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ClientLog& log = run.clients[static_cast<std::size_t>(c)];
      try {
        LockstepClient client(server.bound());
        std::ostringstream approx_cmd;
        approx_cmd << "approx " << kApproxEpsilon << ' ' << kApproxDelta;
        for (int p = 0; p < kPhases; ++p) {
          // Region 1: four concurrent approx queries of identical modeled
          // cost — the lane clock's parallel payload.
          phase_barrier.arrive_and_wait();
          client.request(approx_cmd.str(), log);
          // Region 2: four concurrent bc queries; one recomputes, three hit
          // the cache, all four report this epoch's digest.
          phase_barrier.arrive_and_wait();
          const std::string bc = client.request("bc 3", log);
          unsigned long long epoch = 0;
          char digest[17] = {};
          if (std::sscanf(bc.c_str(),
                          "{\"event\":\"bc\",\"epoch\":%llu,"
                          "\"digest\":\"%16[0-9a-f]\"",
                          &epoch, digest) != 2) {
            throw Error("bench_daemon: unparseable bc response: " + bc);
          }
          log.bc_pairs.emplace_back(epoch, digest);
          // Region 3: one writer applies the phase's update; everyone else
          // waits so the next phase starts at a settled epoch.
          phase_barrier.arrive_and_wait();
          if (c == 0) {
            client.request(updates[static_cast<std::size_t>(p)], log);
          }
          phase_barrier.arrive_and_wait();
        }
      } catch (const std::exception& e) {
        log.error = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  run.metrics = server.scheduler().metrics();
  run.log = server.scheduler().update_log();
  server.stop();
  for (const ClientLog& log : run.clients) {
    run.requests += log.sent;
    run.responses += log.received;
  }
  return run;
}

/// Serial scratch replay of the update log: epoch -> bc digest of a full
/// run_exact on the graph state at that epoch (the serve engine pins the
/// kScCsc variant, so the fold order matches bit for bit).
std::map<std::uint64_t, std::string> replay_digests(
    const graph::EdgeList& canon,
    const std::vector<daemon::Scheduler::UpdateRecord>& log) {
  const auto digest_of = [](const graph::EdgeList& state) {
    sim::Device dev;
    dev.set_keep_launch_records(false);
    bc::TurboBC algo(dev, state,
                     {.variant = serve::ServeOptions{}.variant});
    return serve::digest_hex(serve::bc_digest(algo.run_exact().bc));
  };
  std::map<std::uint64_t, std::string> digests;
  graph::EdgeList state = canon;
  digests[0] = digest_of(state);
  for (const auto& rec : log) {
    if (!rec.applied) continue;
    if (rec.kind == serve::UpdateKind::kInsert) {
      state.add_edge(rec.u, rec.v);
      if (!canon.directed()) state.add_edge(rec.v, rec.u);
    } else {
      state.remove_edge(rec.u, rec.v);
      if (!canon.directed()) state.remove_edge(rec.v, rec.u);
    }
    state.canonicalize();
    digests[rec.epoch] = digest_of(state);
  }
  return digests;
}

bool digests_match(const WorkloadRun& run,
                   const std::map<std::uint64_t, std::string>& expected,
                   const std::string& family) {
  bool ok = true;
  for (const ClientLog& log : run.clients) {
    for (const auto& [epoch, digest] : log.bc_pairs) {
      const auto it = expected.find(epoch);
      if (it == expected.end() || it->second != digest) {
        std::cerr << "ERROR: " << family << " lanes=" << run.lanes
                  << ": served digest " << digest << " at epoch " << epoch
                  << " != scratch replay "
                  << (it == expected.end() ? std::string("<unknown epoch>")
                                           : it->second)
                  << "\n";
        ok = false;
      }
    }
  }
  return ok;
}

/// Zero-drop accounting: every request answered, nothing bounced or
/// misparsed, every client finished cleanly, all expected queries counted.
bool drops_ok(const WorkloadRun& run, const std::string& family) {
  bool ok = true;
  for (std::size_t c = 0; c < run.clients.size(); ++c) {
    const ClientLog& log = run.clients[c];
    if (!log.error.empty()) {
      std::cerr << "ERROR: " << family << " lanes=" << run.lanes
                << " client " << c << ": " << log.error << "\n";
      ok = false;
    }
    if (log.sent != log.received) {
      std::cerr << "ERROR: " << family << " lanes=" << run.lanes
                << " client " << c << ": sent " << log.sent
                << " requests, received " << log.received << " responses\n";
      ok = false;
    }
  }
  const auto queries = static_cast<std::uint64_t>(2 * kClients * kPhases);
  if (run.metrics.queries != queries ||
      run.metrics.updates != static_cast<std::uint64_t>(kPhases) ||
      run.metrics.busy != 0 || run.metrics.errors != 0 ||
      run.metrics.queue_depth != 0) {
    std::cerr << "ERROR: " << family << " lanes=" << run.lanes
              << ": metrics queries=" << run.metrics.queries << " updates="
              << run.metrics.updates << " busy=" << run.metrics.busy
              << " errors=" << run.metrics.errors << " queue="
              << run.metrics.queue_depth << " (expected " << queries
              << " queries, " << kPhases << " updates, all else 0)\n";
    ok = false;
  }
  return ok;
}

bool logs_equal(const std::vector<daemon::Scheduler::UpdateRecord>& a,
                const std::vector<daemon::Scheduler::UpdateRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].u != b[i].u || a[i].v != b[i].v ||
        a[i].applied != b[i].applied || a[i].epoch != b[i].epoch) {
      return false;
    }
  }
  return true;
}

void write_daemon_json(std::ostream& os, const bench::BenchStamp& stamp,
                       const std::vector<FamilyRow>& rows, int speedup_wins) {
  os << "{\n";
  bench::write_stamp_json(os, stamp);
  os << ",\n\"workload\": {\"clients\": " << kClients << ", \"phases\": "
     << kPhases << ", \"approx_epsilon\": " << kApproxEpsilon << "},\n";
  os << "\"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "  {\"family\": \"" << r.family << "\", \"n\": " << r.n
       << ", \"m\": " << r.m
       << ", \"requests\": " << r.one.requests + r.four.requests
       << ", \"responses\": " << r.one.responses + r.four.responses
       << ", \"makespan_1_s\": " << r.one.metrics.modeled_makespan_seconds
       << ", \"makespan_4_s\": " << r.four.metrics.modeled_makespan_seconds
       << ", \"query_seconds\": " << r.one.metrics.modeled_query_seconds
       << ", \"speedup\": " << r.speedup
       << ", \"speedup_ok\": " << (r.speedup_ok ? "true" : "false")
       << ", \"digests_ok\": " << (r.digests_ok ? "true" : "false")
       << ", \"drops_ok\": " << (r.drops_ok ? "true" : "false")
       << ", \"update_logs_match\": " << (r.logs_match ? "true" : "false")
       << ", \"busy\": " << r.one.metrics.busy + r.four.metrics.busy
       << ", \"final_epoch\": " << r.four.metrics.epoch << "}"
       << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  os << "],\n\"acceptance\": {\"speedup_threshold\": " << kSpeedupThreshold
     << ", \"min_winning_families\": " << kMinWinningFamilies
     << ", \"speedup_wins\": " << speedup_wins << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbobc;
  using namespace turbobc::bench;

  const CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto threads = static_cast<unsigned>(args.get_count("threads", 0));
  sim::ExecutorPool::instance().set_threads(threads);

  WallTimer run_timer;

  struct Family {
    std::string name;
    graph::EdgeList graph;
  };
  std::vector<Family> families;
  std::cerr << "  [daemon] generating graphs ..." << std::flush;
  families.push_back({"smallworld",
                      gen::small_world({.n = 360, .k = 6, .rewire_p = 0.1,
                                        .seed = seed})});
  families.push_back({"kron9", gen::kronecker({.scale = 9, .edge_factor = 6,
                                               .seed = seed + 1})});
  families.push_back({"mark3j",
                      gen::markov_lattice({.length = 20, .width = 18,
                                           .seed = seed + 2})});
  std::cerr << " done\n";

  std::vector<FamilyRow> rows;
  for (const Family& fam : families) {
    graph::EdgeList el = fam.graph;
    el.canonicalize();
    std::cerr << "  [daemon] " << fam.name << " (n "
              << human_count(static_cast<double>(el.num_vertices())) << ", m "
              << human_count(static_cast<double>(el.num_arcs())) << ")"
              << std::flush;

    FamilyRow row;
    row.family = fam.name;
    row.n = el.num_vertices();
    row.m = el.num_arcs();

    std::cerr << " lanes=1" << std::flush;
    row.one = run_workload(el, 1, seed);
    std::cerr << " lanes=4" << std::flush;
    row.four = run_workload(el, 4, seed);

    std::cerr << " replay" << std::flush;
    const auto expected = replay_digests(el, row.four.log);
    row.digests_ok = digests_match(row.one, expected, fam.name) &&
                     digests_match(row.four, expected, fam.name);
    row.drops_ok =
        drops_ok(row.one, fam.name) && drops_ok(row.four, fam.name);
    row.logs_match = logs_equal(row.one.log, row.four.log);

    const double m4 = row.four.metrics.modeled_makespan_seconds;
    row.speedup =
        m4 > 0.0 ? row.one.metrics.modeled_makespan_seconds / m4 : 0.0;
    row.speedup_ok = row.speedup >= kSpeedupThreshold;

    rows.push_back(row);
    std::cerr << " done\n";
  }

  int speedup_wins = 0;
  for (const FamilyRow& r : rows) {
    if (r.speedup_ok) ++speedup_wins;
  }

  std::cout << "Serve daemon under " << kClients
            << " concurrent clients: modeled reader-lane makespan at 1 vs 4 "
               "lanes (" << kPhases << " phases, approx-heavy)\n";
  Table t({"family", "n", "m", "queries", "updates", "makespan 1",
           "makespan 4", "speedup", "digests", "drops"});
  for (const FamilyRow& r : rows) {
    t.add_row({r.family, human_count(static_cast<double>(r.n)),
               human_count(static_cast<double>(r.m)),
               std::to_string(r.one.metrics.queries),
               std::to_string(r.one.metrics.updates),
               fixed(r.one.metrics.modeled_makespan_seconds, 4) + " s",
               fixed(r.four.metrics.modeled_makespan_seconds, 4) + " s",
               fixed(r.speedup, 2) + "x", r.digests_ok ? "ok" : "DRIFT",
               r.drops_ok ? "none" : "DROPPED"});
  }
  t.print(std::cout);

  const std::string out_path = args.get("out", "BENCH_daemon.json");
  std::ofstream json(out_path);
  write_daemon_json(json, make_stamp(seed, run_timer.seconds()), rows,
                    speedup_wins);
  std::cout << "\nwrote " << out_path << '\n';

  int rc = 0;
  for (const FamilyRow& r : rows) {
    if (!r.digests_ok) {
      std::cerr << "ERROR: " << r.family
                << " served digests drifted from the scratch replay\n";
      rc = 1;
    }
    if (!r.drops_ok) {
      std::cerr << "ERROR: " << r.family << " dropped or bounced requests\n";
      rc = 1;
    }
    if (!r.logs_match) {
      std::cerr << "ERROR: " << r.family
                << " update logs differ between lane configurations\n";
      rc = 1;
    }
  }
  if (speedup_wins < kMinWinningFamilies) {
    std::cerr << "ERROR: only " << speedup_wins << " of " << rows.size()
              << " families reached the " << kSpeedupThreshold
              << "x modeled makespan speedup at 4 reader lanes (need >= "
              << kMinWinningFamilies << ")\n";
    rc = 1;
  }
  return rc;
}
