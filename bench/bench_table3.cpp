// Reproduces Table 3: BC/vertex on nine irregular graphs (mycielski and
// kronecker families) with TurboBC-veCSC, the warp-per-column kernel.
#include <iostream>

#include "bench_support/runner.hpp"
#include "common/cli.hpp"
#include "gpusim/executor.hpp"

int main(int argc, char** argv) {
  using namespace turbobc::bench;
  const turbobc::CliArgs args(argc, argv);
  // Host-parallel pool width; modeled numbers are width-invariant.
  turbobc::sim::ExecutorPool::instance().set_threads(
      static_cast<unsigned>(args.get_int("threads", 1)));
  std::vector<ExperimentRow> rows;
  for (const Workload& w : table3_suite()) {
    rows.push_back(run_single_source_experiment(w));
    std::cerr << "  [table3] " << w.name << " done\n";
  }
  print_rows(std::cout,
             "Table 3 — BC/vertex, irregular graphs, TurboBC-veCSC "
             "(modeled device/CPU times; paper columns on the right)",
             rows, /*time_unit_s=*/false, /*exact=*/false);
  return 0;
}
