// Ablation for the paper's Section 3.1 regular/irregular classification:
// prints the scale-free index for every benchmark family and the variant
// select_variant() chooses, so the classification boundary is auditable.
// (The paper: regular graphs had scf in [1, 224], irregular in
// [5846, 651837], under its own normalization; see graph/stats.hpp.)
#include <iostream>

#include "bench_support/suite.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/variant.hpp"
#include "graph/stats.hpp"

int main() {
  using namespace turbobc;
  using namespace turbobc::bench;

  Table t({"graph", "family", "scf index", "class", "select_variant",
           "paper's variant"});

  auto add = [&](const std::vector<Workload>& suite) {
    for (const Workload& w : suite) {
      const double scf = graph::scf_index(w.graph);
      t.add_row({w.name, w.family, fixed(scf, 1),
                 graph::is_irregular(w.graph) ? "irregular" : "regular",
                 std::string(bc::to_string(bc::select_variant(w.graph))),
                 std::string(bc::to_string(w.variant))});
    }
  };
  add(table1_suite());
  add(table2_suite());
  add(table3_suite());
  add(table4_suite());

  std::cout << "Ablation — scale-free classification (threshold "
            << fixed(graph::kIrregularScfThreshold, 0)
            << "): scf index per benchmark graph vs the variant the paper "
               "found best\n";
  t.print(std::cout);
  return 0;
}
