// Ablation for the paper's Section 3.1 regular/irregular classification:
// prints the scale-free index for every benchmark family and the variant
// select_variant() chooses, so the classification boundary is auditable.
// (The paper: regular graphs had scf in [1, 224], irregular in
// [5846, 651837], under its own normalization; see graph/stats.hpp.)
//
// Positional arguments name vendored Matrix Market fixtures (real graphs,
// bench/fixtures/*.mtx). Each is ingested through the CHUNKED out-of-core
// loader (storage::read_matrix_market_compressed) and re-checks the
// 50x-mean in-degree COOC rule empirically: all three variants run the same
// sources and the table reports whether select_variant's pick is also the
// modeled-fastest (within a 10% near-tie band — the rule is a static
// heuristic, not an autotuner). A mispick exits nonzero. Findings are
// recorded in EXPERIMENTS.md ("select_variant on real fixtures").
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/suite.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/turbobc.hpp"
#include "core/variant.hpp"
#include "gpusim/device.hpp"
#include "graph/stats.hpp"
#include "storage/mtx_stream.hpp"

namespace {

using namespace turbobc;

double modeled_seconds(const graph::EdgeList& el, bc::Variant variant,
                       const std::vector<vidx_t>& sources) {
  sim::Device device;
  device.set_keep_launch_records(false);
  bc::TurboBC algo(device, el, {.variant = variant});
  return algo.run_sources(sources).device_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbobc;
  using namespace turbobc::bench;

  const CliArgs args(argc, argv);

  Table t({"graph", "family", "scf index", "class", "select_variant",
           "paper's variant"});

  auto add = [&](const std::vector<Workload>& suite) {
    for (const Workload& w : suite) {
      const double scf = graph::scf_index(w.graph);
      t.add_row({w.name, w.family, fixed(scf, 1),
                 graph::is_irregular(w.graph) ? "irregular" : "regular",
                 std::string(bc::to_string(bc::select_variant(w.graph))),
                 std::string(bc::to_string(w.variant))});
    }
  };
  add(table1_suite());
  add(table2_suite());
  add(table3_suite());
  add(table4_suite());

  std::cout << "Ablation — scale-free classification (threshold "
            << fixed(graph::kIrregularScfThreshold, 0)
            << "): scf index per benchmark graph vs the variant the paper "
               "found best\n";
  t.print(std::cout);

  if (args.positional().empty()) return 0;

  std::cout << "\nselect_variant on real .mtx fixtures (chunked ingest, "
               "all-sources modeled seconds per variant)\n";
  Table f({"fixture", "n", "m", "in-deg max/mean", "scf", "chosen",
           "scCSC(s)", "veCSC(s)", "scCOOC(s)", "fastest", "agree"});
  int rc = 0;
  for (const std::string& path : args.positional()) {
    const storage::CompressedCsc packed =
        storage::read_matrix_market_compressed_file(path);
    graph::EdgeList el = storage::to_edge_list(packed);
    el.canonicalize();
    const auto stats = graph::in_degree_stats(el);
    const bc::Variant chosen = bc::select_variant(el);
    std::vector<vidx_t> sources(
        static_cast<std::size_t>(el.num_vertices()));
    for (vidx_t v = 0; v < el.num_vertices(); ++v) {
      sources[static_cast<std::size_t>(v)] = v;
    }
    const bc::Variant variants[] = {bc::Variant::kScCsc, bc::Variant::kVeCsc,
                                    bc::Variant::kScCooc};
    double seconds[3] = {};
    int fastest = 0;
    int chosen_idx = 0;
    for (int i = 0; i < 3; ++i) {
      seconds[i] = modeled_seconds(el, variants[i], sources);
      if (seconds[i] < seconds[fastest]) fastest = i;
      if (variants[i] == chosen) chosen_idx = i;
    }
    const bool agree = seconds[chosen_idx] <= seconds[fastest] * 1.10;
    const std::string base = path.substr(path.find_last_of('/') + 1);
    f.add_row({base, std::to_string(el.num_vertices()),
               std::to_string(el.num_arcs()),
               std::to_string(stats.max) + "/" + fixed(stats.mean, 2),
               fixed(graph::scf_index(el), 1),
               std::string(bc::to_string(chosen)), fixed(seconds[0], 6),
               fixed(seconds[1], 6), fixed(seconds[2], 6),
               std::string(bc::to_string(variants[fastest])),
               agree ? "ok" : "MISPICK"});
    if (!agree) rc = 1;
  }
  f.print(std::cout);
  return rc;
}
