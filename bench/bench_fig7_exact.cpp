// Reproduces Figure 7: exact-BC speedups and MTEPS for the Table 5 set,
// against the BFS depth d. The paper's shape claim: the maxima of both are
// reached on the graphs with the smallest d (the mycielski pair, d = 3).
#include <algorithm>
#include <iostream>

#include "bench_support/runner.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "gpusim/executor.hpp"

int main(int argc, char** argv) {
  using namespace turbobc::bench;
  const turbobc::CliArgs args(argc, argv);
  // Host-parallel pool width; modeled numbers are width-invariant.
  turbobc::sim::ExecutorPool::instance().set_threads(
      static_cast<unsigned>(args.get_int("threads", 1)));

  RunnerConfig cfg;
  cfg.run_gunrock = false;
  cfg.run_ligra = false;
  std::vector<ExperimentRow> rows;
  for (const Workload& w : table5_suite()) {
    rows.push_back(run_exact_experiment(w, cfg));
    std::cerr << "  [fig7] " << w.name << " done\n";
  }

  turbobc::Table t({"graph", "d", "speedup(seq)x", "paper(seq)x", "MTEPS",
                    "paper MTEPS"});
  for (const auto& r : rows) {
    t.add_row({r.name, std::to_string(r.depth),
               turbobc::fixed(r.speedup_seq, 1),
               turbobc::fixed(r.paper.speedup_seq, 1),
               turbobc::fixed(r.mteps, 0),
               turbobc::fixed(r.paper.mteps, 0)});
  }
  std::cout << "Figure 7 — exact BC: speedup and MTEPS vs BFS depth\n";
  t.print(std::cout);

  const auto shallowest = std::min_element(
      rows.begin(), rows.end(),
      [](const auto& a, const auto& b) { return a.depth < b.depth; });
  const auto fastest = std::max_element(
      rows.begin(), rows.end(),
      [](const auto& a, const auto& b) { return a.mteps < b.mteps; });
  std::cout << "\nShape check (paper: smallest d gives max MTEPS): "
            << "shallowest = " << shallowest->name << ", max MTEPS = "
            << fastest->name << " -> "
            << (shallowest->depth == fastest->depth ? "MATCHES" : "differs")
            << '\n';
  return 0;
}
