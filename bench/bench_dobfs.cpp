// Direction-optimizing forward sweep benchmark: BENCH_dobfs.json.
//
// Three hub-heavy families where a dense frontier makes the paper's
// Algorithm 2 edge-parallel push sweep pay for all m arcs every level:
// a Mycielskian (order 16), a Graph500 Kronecker (scale 17), and an
// undirected preferential-attachment web graph. For each family the bench
// runs the standalone forward sweep (TurboBfs) from the max-degree vertex
// in four modes:
//
//   push-cooc   Variant::kScCooc + Advance::kPush — the unmasked
//               edge-parallel sweep (paper Algorithm 2), the classic
//               "push-only" DOBFS baseline. This is the speedup reference.
//   push        select_variant's pick + Advance::kPush — the repo's masked
//               column-scan sweep, for transparency (it is already
//               pull-shaped, so its gap to `auto` is small by design).
//   pull        same variant + Advance::kPull — every level pulls through
//               the frontier bitmap.
//   auto        same variant + Advance::kAuto — per-level Beamer
//               alpha/beta switching (core/autotune.hpp).
//
// Every mode must produce bit-identical depth and sigma arrays (the pull
// fold skips exact zeros only), and the `auto` row must clear a modeled
// speedup threshold against push-cooc on at least kMinWinningFamilies
// families (the web family is reported but not required: its diameter-2
// frontier collapses before switching pays). Two more gates ride along:
// a full TurboBC --advance auto run per family must peak at or under the
// 7n + m + ceil(n/32)-word model of core/footprint.hpp (strictly below
// the gunrock 9n + 2m inventory), and an auto run_sources fan-out at pool
// width 1 vs 8 must be bit-identical. Any failed gate exits nonzero.
//
//   bench_dobfs [--seed 1] [--threads N] [--out BENCH_dobfs.json]
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_support/mteps.hpp"
#include "bench_support/stamp.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/footprint.hpp"
#include "core/turbobc.hpp"
#include "core/turbobfs.hpp"
#include "core/variant.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "graph/stats.hpp"
#include "qa/oracle.hpp"

namespace {

using namespace turbobc;

// Acceptance thresholds (see file comment).
constexpr double kSpeedupThreshold = 1.5;
constexpr int kMinWinningFamilies = 2;

struct ModeRow {
  std::string family;
  std::string mode;        // push-cooc | push | pull | auto
  std::string variant;     // effective variant after the COOC->veCSC demotion
  vidx_t n = 0;
  eidx_t m = 0;
  double modeled_s = 0.0;
  double mteps = 0.0;
  std::size_t peak_bytes = 0;
  vidx_t height = 0;
  vidx_t reached = 0;
  double speedup_vs_push_cooc = 0.0;
  bool bits_ok = false;  // depth+sigma bit-identical to the push-cooc run
};

struct FamilyGate {
  std::string family;
  vidx_t n = 0;
  eidx_t m = 0;
  double scf = 0.0;
  std::string auto_variant;  // select_variant's pick (before demotion)
  double auto_speedup = 0.0;
  // Full TurboBC --advance auto footprint vs the closed forms.
  std::size_t bc_peak_bytes = 0;
  std::uint64_t dobfs_model_bytes = 0;
  std::uint64_t gunrock_bytes = 0;
  bool footprint_ok = false;
  bool threads_bit_identical = false;
};

bool bits_equal_bc(const std::vector<bc_t>& a, const std::vector<bc_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// Highest-total-degree vertex: deterministic, always inside the giant
/// component (Kronecker leaves many isolated vertices; BFS from one of
/// those would time nothing in every mode).
vidx_t max_degree_vertex(const graph::EdgeList& el) {
  std::vector<eidx_t> deg(static_cast<std::size_t>(el.num_vertices()), 0);
  for (const graph::Edge& e : el.edges()) {
    ++deg[static_cast<std::size_t>(e.u)];
    ++deg[static_cast<std::size_t>(e.v)];
  }
  const auto it = std::max_element(deg.begin(), deg.end());
  return static_cast<vidx_t>(it - deg.begin());
}

bc::Variant effective_variant(bc::Variant v, bc::Advance a) {
  // Mirror of the TurboBfs/TurboBC constructor demotion.
  if (a != bc::Advance::kPush && v == bc::Variant::kScCooc) {
    return bc::Variant::kVeCsc;
  }
  return v;
}

ModeRow run_mode(const std::string& family, const graph::EdgeList& el,
                 vidx_t source, bc::Variant variant, bc::Advance advance,
                 const std::string& mode_name,
                 const bc::TurboBfsResult* reference,
                 bc::TurboBfsResult* out = nullptr) {
  sim::Device device;
  device.set_keep_launch_records(false);
  bc::TurboBfs bfs(device, el, variant, advance);
  bc::TurboBfsResult r = bfs.run(source);

  ModeRow row;
  row.family = family;
  row.mode = mode_name;
  row.variant = bc::to_string(effective_variant(variant, advance));
  row.n = el.num_vertices();
  row.m = el.num_arcs();
  row.modeled_s = r.device_seconds;
  row.mteps = bench::mteps_single_source(el.num_arcs(), r.device_seconds);
  row.peak_bytes = r.peak_device_bytes;
  row.height = r.height;
  row.reached = r.reached;
  row.bits_ok = reference == nullptr ||
                (r.depth == reference->depth && r.sigma == reference->sigma);
  if (out != nullptr) *out = std::move(r);
  return row;
}

/// Footprint + determinism gates on the full BC pipeline (not just the
/// standalone sweep): one --advance auto source must peak within the
/// 7n + m + ceil(n/32)-word model, and a 4-source auto fan-out must be
/// bit-identical at pool width 1 and 8.
void run_bc_gates(const graph::EdgeList& el, vidx_t source,
                  bc::Variant variant, FamilyGate& gate) {
  const vidx_t n = el.num_vertices();
  const eidx_t m = el.num_arcs();
  gate.dobfs_model_bytes = bc::turbobc_dobfs_model_bytes(n, m);
  gate.gunrock_bytes = qa::expected_gunrock_inventory_bytes(n, m);
  {
    sim::Device device;
    device.set_keep_launch_records(false);
    bc::TurboBC turbo(device, el,
                      {.variant = variant, .advance = bc::Advance::kAuto});
    gate.bc_peak_bytes = turbo.run_single_source(source).peak_device_bytes;
  }
  // Slack mirrors the qa oracle: the 4(n+1)-byte CSC column pointer's tail
  // word is the only allocation the word model rounds away.
  gate.footprint_ok =
      gate.bc_peak_bytes <= gate.dobfs_model_bytes + 16 &&
      gate.dobfs_model_bytes < gate.gunrock_bytes;

  std::vector<vidx_t> sources;
  for (vidx_t i = 0; i < 4; ++i) {
    sources.push_back(static_cast<vidx_t>(
        static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(n) / 4));
  }
  std::vector<bc_t> bc_by_width[2];
  const unsigned widths[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    sim::ExecutorPool::instance().set_threads(widths[i]);
    sim::Device device;
    device.set_keep_launch_records(false);
    bc::TurboBC turbo(device, el,
                      {.variant = variant, .advance = bc::Advance::kAuto});
    bc_by_width[i] = turbo.run_sources(sources).bc;
  }
  gate.threads_bit_identical = bits_equal_bc(bc_by_width[0], bc_by_width[1]);
}

void write_dobfs_json(std::ostream& os, const bench::BenchStamp& stamp,
                      const std::vector<ModeRow>& rows,
                      const std::vector<FamilyGate>& gates,
                      int winning_families) {
  os << "{\n";
  bench::write_stamp_json(os, stamp);
  os << ",\n\"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "  {\"family\": \"" << r.family << "\", \"mode\": \"" << r.mode
       << "\", \"variant\": \"" << r.variant << "\", \"n\": " << r.n
       << ", \"m\": " << r.m << ", \"modeled_s\": " << r.modeled_s
       << ", \"mteps\": " << r.mteps << ", \"peak_bytes\": " << r.peak_bytes
       << ", \"height\": " << r.height << ", \"reached\": " << r.reached
       << ", \"speedup_vs_push_cooc\": " << r.speedup_vs_push_cooc
       << ", \"bits_ok\": " << (r.bits_ok ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  os << "],\n\"gates\": [\n";
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const auto& g = gates[i];
    os << "  {\"family\": \"" << g.family << "\", \"n\": " << g.n
       << ", \"m\": " << g.m << ", \"scf\": " << g.scf
       << ", \"auto_variant\": \"" << g.auto_variant
       << "\", \"auto_speedup\": " << g.auto_speedup
       << ", \"bc_peak_bytes\": " << g.bc_peak_bytes
       << ", \"dobfs_model_bytes\": " << g.dobfs_model_bytes
       << ", \"gunrock_bytes\": " << g.gunrock_bytes
       << ", \"footprint_ok\": " << (g.footprint_ok ? "true" : "false")
       << ", \"threads_bit_identical\": "
       << (g.threads_bit_identical ? "true" : "false") << "}"
       << (i + 1 < gates.size() ? "," : "") << '\n';
  }
  os << "],\n\"acceptance\": {\"speedup_threshold\": " << kSpeedupThreshold
     << ", \"min_winning_families\": " << kMinWinningFamilies
     << ", \"winning_families\": " << winning_families << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbobc;
  using namespace turbobc::bench;

  const CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto threads =
      static_cast<unsigned>(args.get_count("threads", 0));
  sim::ExecutorPool::instance().set_threads(threads);

  WallTimer run_timer;

  struct Family {
    std::string name;
    graph::EdgeList graph;
  };
  std::vector<Family> families;
  std::cerr << "  [dobfs] generating graphs ..." << std::flush;
  families.push_back({"mycielski16", gen::mycielski(16)});
  families.push_back(
      {"kron17", gen::kronecker({.scale = 17, .edge_factor = 16, .seed = 7})});
  families.push_back(
      {"web-100k", gen::preferential_attachment(
                       {.n = 100000, .m_attach = 8, .seed = 3})});
  std::cerr << " done\n";

  std::vector<ModeRow> rows;
  std::vector<FamilyGate> gates;
  for (const Family& fam : families) {
    const graph::EdgeList& el = fam.graph;
    const vidx_t source = max_degree_vertex(el);
    const bc::Variant auto_variant = bc::select_variant(el);
    std::cerr << "  [dobfs] " << fam.name << " (n "
              << human_count(static_cast<double>(el.num_vertices())) << ", m "
              << human_count(static_cast<double>(el.num_arcs()))
              << ", source " << source << ", variant "
              << bc::to_string(auto_variant) << ")" << std::flush;

    std::cerr << " push-cooc" << std::flush;
    bc::TurboBfsResult reference;
    ModeRow baseline =
        run_mode(fam.name, el, source, bc::Variant::kScCooc,
                 bc::Advance::kPush, "push-cooc", nullptr, &reference);
    baseline.bits_ok = true;
    baseline.speedup_vs_push_cooc = 1.0;

    std::vector<ModeRow> fam_rows;
    for (const auto& [advance, mode_name] :
         {std::pair{bc::Advance::kPush, "push"},
          std::pair{bc::Advance::kPull, "pull"},
          std::pair{bc::Advance::kAuto, "auto"}}) {
      std::cerr << ' ' << mode_name << std::flush;
      ModeRow row = run_mode(fam.name, el, source, auto_variant, advance,
                             mode_name, &reference);
      row.speedup_vs_push_cooc = baseline.modeled_s / row.modeled_s;
      fam_rows.push_back(row);
    }

    FamilyGate gate;
    gate.family = fam.name;
    gate.n = el.num_vertices();
    gate.m = el.num_arcs();
    gate.scf = graph::scf_index(el);
    gate.auto_variant = bc::to_string(auto_variant);
    for (const ModeRow& row : fam_rows) {
      if (row.mode == "auto") gate.auto_speedup = row.speedup_vs_push_cooc;
    }
    std::cerr << " gates" << std::flush;
    run_bc_gates(el, source, auto_variant, gate);
    sim::ExecutorPool::instance().set_threads(threads);
    std::cerr << " done\n";

    rows.push_back(baseline);
    rows.insert(rows.end(), fam_rows.begin(), fam_rows.end());
    gates.push_back(gate);
  }

  int winning_families = 0;
  for (const FamilyGate& g : gates) {
    if (g.auto_speedup >= kSpeedupThreshold) ++winning_families;
  }

  std::cout << "Direction-optimizing forward sweep vs the Algorithm 2 "
               "edge-parallel push baseline\n";
  Table t({"family", "mode", "variant", "modeled(ms)", "MTEPS", "peak",
           "height", "reached", "vs push-cooc", "bits"});
  for (const ModeRow& r : rows) {
    t.add_row({r.family, r.mode, r.variant, fixed(r.modeled_s * 1e3, 3),
               human_count(r.mteps * 1e6), human_bytes(r.peak_bytes),
               std::to_string(r.height),
               human_count(static_cast<double>(r.reached)),
               fixed(r.speedup_vs_push_cooc, 2) + "x",
               r.bits_ok ? "ok" : "DRIFT"});
  }
  t.print(std::cout);
  std::cout << "\nFootprint and determinism gates (--advance auto, full BC "
               "pipeline)\n";
  Table g({"family", "scf", "variant", "auto speedup", "BC peak",
           "7n+m+n/32 model", "gunrock 9n+2m", "fit", "threads 1==8"});
  for (const FamilyGate& gate : gates) {
    g.add_row({gate.family, fixed(gate.scf, 1), gate.auto_variant,
               fixed(gate.auto_speedup, 2) + "x",
               human_bytes(gate.bc_peak_bytes),
               human_bytes(gate.dobfs_model_bytes),
               human_bytes(gate.gunrock_bytes),
               gate.footprint_ok ? "ok" : "OVER",
               gate.threads_bit_identical ? "ok" : "DRIFT"});
  }
  g.print(std::cout);

  const std::string out_path = args.get("out", "BENCH_dobfs.json");
  std::ofstream json(out_path);
  write_dobfs_json(json, make_stamp(seed, run_timer.seconds()), rows, gates,
                   winning_families);
  std::cout << "\nwrote " << out_path << '\n';

  int rc = 0;
  for (const ModeRow& r : rows) {
    if (!r.bits_ok) {
      std::cerr << "ERROR: " << r.family << " " << r.mode
                << " depth/sigma drifted from the push baseline\n";
      rc = 1;
    }
  }
  for (const FamilyGate& gate : gates) {
    if (!gate.footprint_ok) {
      std::cerr << "ERROR: " << gate.family << " --advance auto peak "
                << gate.bc_peak_bytes << " B vs model "
                << gate.dobfs_model_bytes << " B (gunrock "
                << gate.gunrock_bytes << " B)\n";
      rc = 1;
    }
    if (!gate.threads_bit_identical) {
      std::cerr << "ERROR: " << gate.family
                << " auto fan-out drifted between pool widths 1 and 8\n";
      rc = 1;
    }
  }
  if (winning_families < kMinWinningFamilies) {
    std::cerr << "ERROR: only " << winning_families << " of "
              << gates.size() << " families reached "
              << kSpeedupThreshold << "x over push-cooc (need >= "
              << kMinWinningFamilies << ")\n";
    rc = 1;
  }
  return rc;
}
