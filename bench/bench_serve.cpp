// Dynamic-graph serving benchmark: BENCH_serve.json.
//
// Four families drive the same serving workload: warm the per-source cache
// with one full BC query, then stream alternating edge updates (random
// insert / delete of an existing arc), answering a full exact BC query
// after every event. Two systems are charged modeled device seconds:
//
//   serve      src/serve/ ServeEngine — the cone test keeps every block the
//              update provably cannot touch, so a query pays only the
//              invalidated sources.
//   scratch    full recompute per update — TurboBC::run_exact() on the
//              mutated graph (what a cache-less server would pay). Sampled
//              every kScratchEvery events (the cost is near-constant: the
//              graph changes by one arc per event) and doubling as the
//              bit-identity reference on the sampled events; the per-event
//              bit-identity over long streams on EVERY family is the
//              serve_agreement test suite's job, not the bench's.
//
// The family spread covers the cone-size spectrum, which is a property of
// directed reachability. The winners have tiny in-reachable sets, so an
// update touches few sources: a citation-style DAG (preferential
// attachment, new -> old — every path leads toward the early hubs) and a
// "frontier" digraph (subcritical Erdos-Renyi, mean out-degree < 1, a
// just-forming network below the giant-SCC threshold). The web crawl
// (directed but threaded on a fully-reachable backbone chain) and the small
// world (undirected and shallow: a random edge splits almost every source's
// BFS into unequal depths) ride along to show the gate is a property of
// the family, not of the harness.
//
// Gates (any failure exits nonzero):
//   * mean serve query latency must clear kSpeedupThreshold (5x) over the
//     scratch recompute on at least kMinWinningFamilies (2) families;
//   * on every sampled event, the served BC must be BIT-identical to
//     scratch run_exact on the mutated graph;
//   * the full per-event BC stream (hexfloat values + modeled seconds) at
//     pool width 1 and 8 must be byte-identical.
//
//   bench_serve [--seed 1] [--threads N] [--out BENCH_serve.json]
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/stamp.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/turbobc.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "serve/serve_engine.hpp"

namespace {

using namespace turbobc;

constexpr double kSpeedupThreshold = 5.0;
constexpr int kMinWinningFamilies = 2;
constexpr int kScratchEvery = 4;  // scratch baseline sampled at this cadence

struct FamilyRow {
  std::string family;
  vidx_t n = 0;
  eidx_t m = 0;
  int events = 0;
  int applied = 0;              // events that actually changed the graph
  double mean_invalidated = 0;  // blocks dropped per applied update
  double warm_s = 0.0;          // modeled cost of the initial cold query
  double serve_query_s = 0.0;   // mean modeled latency of a post-event query
  double scratch_s = 0.0;       // mean modeled cost of scratch run_exact
  double speedup = 0.0;
  bool bits_ok = true;
  bool threads_byte_identical = false;
};

struct Event {
  serve::UpdateKind kind = serve::UpdateKind::kInsert;
  vidx_t u = 0, v = 0;
};

/// Same stream shape as the serve_agreement suite: even events insert a
/// uniform random pair, odd events delete a uniform random EXISTING arc of
/// the current graph — a pure function of the evolving graph, so replays at
/// different pool widths resolve identical edges.
Event next_event(Xoshiro256& rng, const graph::EdgeList& g, int index) {
  Event e;
  if (index % 2 == 1 && g.num_arcs() > 0) {
    e.kind = serve::UpdateKind::kDelete;
    const graph::Edge edge = g.edges()[static_cast<std::size_t>(
        rng.uniform(static_cast<std::uint64_t>(g.edges().size())))];
    e.u = edge.u;
    e.v = edge.v;
  } else {
    const auto n = static_cast<std::uint64_t>(g.num_vertices());
    e.kind = serve::UpdateKind::kInsert;
    e.u = static_cast<vidx_t>(rng.uniform(n));
    e.v = static_cast<vidx_t>(rng.uniform(n));
  }
  return e;
}

struct StreamResult {
  FamilyRow row;           // threads_byte_identical left for the caller
  std::string transcript;  // hexfloat BC + modeled seconds per event
};

/// Run the serving stream at the given pool width. With `scratch_check`,
/// every kScratchEvery-th served vector is charged against (and compared
/// bit-for-bit with) a fresh run_exact on the mutated graph; without it
/// only the serve side runs, which is what the width replay needs.
StreamResult run_stream(const std::string& name, const graph::EdgeList& el,
                        int events, std::uint64_t seed, unsigned width,
                        bool scratch_check) {
  sim::ExecutorPool::instance().set_threads(width);
  serve::ServeEngine engine(el);
  StreamResult r;
  r.row.family = name;
  r.row.n = engine.num_vertices();
  r.row.m = engine.num_arcs();
  r.row.events = events;

  serve::QueryStats warm;
  engine.query_bc(&warm);
  r.row.warm_s = warm.device_seconds;

  char buf[48];
  std::uint64_t invalidated = 0;
  int scratch_samples = 0;
  Xoshiro256 rng(0x5e7eULL + seed * 1000003 +
                 static_cast<std::uint64_t>(engine.num_arcs()));
  for (int event = 0; event < events; ++event) {
    const Event e = next_event(rng, engine.graph(), event);
    const serve::UpdateStats u = engine.apply_update(e.kind, e.u, e.v);
    if (u.applied) {
      ++r.row.applied;
      invalidated += u.invalidated;
    }
    serve::QueryStats q;
    const std::vector<bc_t>& served = engine.query_bc(&q);
    r.row.serve_query_s += q.device_seconds;
    for (const bc_t x : served) {
      std::snprintf(buf, sizeof buf, "%a ", x);
      r.transcript += buf;
    }
    std::snprintf(buf, sizeof buf, "| %a\n", q.device_seconds);
    r.transcript += buf;

    if (scratch_check && event % kScratchEvery == kScratchEvery - 1) {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBC scratch(dev, engine.graph(),
                          {.variant = engine.options().variant});
      const bc::BcResult ref = scratch.run_exact();
      r.row.scratch_s += ref.device_seconds;
      ++scratch_samples;
      if (served != ref.bc) r.row.bits_ok = false;
    }
  }
  if (events > 0) r.row.serve_query_s /= events;
  if (scratch_samples > 0) r.row.scratch_s /= scratch_samples;
  if (r.row.applied > 0) {
    r.row.mean_invalidated =
        static_cast<double>(invalidated) / r.row.applied;
  }
  r.row.speedup =
      r.row.serve_query_s > 0.0 ? r.row.scratch_s / r.row.serve_query_s : 0.0;
  return r;
}

void write_serve_json(std::ostream& os, const bench::BenchStamp& stamp,
                      const std::vector<FamilyRow>& rows,
                      int winning_families) {
  os << "{\n";
  bench::write_stamp_json(os, stamp);
  os << ",\n\"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "  {\"family\": \"" << r.family << "\", \"n\": " << r.n
       << ", \"m\": " << r.m << ", \"events\": " << r.events
       << ", \"applied\": " << r.applied
       << ", \"mean_invalidated\": " << r.mean_invalidated
       << ", \"warm_s\": " << r.warm_s
       << ", \"serve_query_s\": " << r.serve_query_s
       << ", \"scratch_s\": " << r.scratch_s << ", \"speedup\": " << r.speedup
       << ", \"bits_ok\": " << (r.bits_ok ? "true" : "false")
       << ", \"threads_byte_identical\": "
       << (r.threads_byte_identical ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  os << "],\n\"acceptance\": {\"speedup_threshold\": " << kSpeedupThreshold
     << ", \"min_winning_families\": " << kMinWinningFamilies
     << ", \"winning_families\": " << winning_families << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbobc;
  using namespace turbobc::bench;

  const CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto threads = static_cast<unsigned>(args.get_count("threads", 0));
  sim::ExecutorPool::instance().set_threads(threads);

  WallTimer run_timer;

  struct Family {
    std::string name;
    int events;
    graph::EdgeList graph;
  };
  std::vector<Family> families;
  std::cerr << "  [serve] generating graphs ..." << std::flush;
  families.push_back(
      {"citation", 16,
       gen::preferential_attachment(
           {.n = 1000, .m_attach = 3, .directed = true, .seed = 3})});
  families.push_back(
      {"frontier", 16,
       gen::erdos_renyi(
           {.n = 1200, .arcs = 900, .directed = true, .seed = 5})});
  families.push_back({"web", 8,
                      gen::web_crawl({.n = 500, .out_degree = 5,
                                      .copy_p = 0.4, .local_p = 0.85,
                                      .window = 60, .seed = 7})});
  families.push_back({"smallworld", 8,
                      gen::small_world({.n = 400, .k = 4, .rewire_p = 0.1,
                                        .seed = 9})});
  std::cerr << " done\n";

  std::vector<FamilyRow> rows;
  for (const Family& fam : families) {
    std::cerr << "  [serve] " << fam.name << " (n "
              << human_count(static_cast<double>(fam.graph.num_vertices()))
              << ", m "
              << human_count(static_cast<double>(fam.graph.num_arcs()))
              << ", " << fam.events << " events)" << std::flush;
    std::cerr << " stream" << std::flush;
    StreamResult wide = run_stream(fam.name, fam.graph, fam.events, seed, 8,
                                   /*scratch_check=*/true);
    std::cerr << " threads" << std::flush;
    const StreamResult serial =
        run_stream(fam.name, fam.graph, fam.events, seed, 1,
                   /*scratch_check=*/false);
    wide.row.threads_byte_identical = serial.transcript == wide.transcript;
    rows.push_back(wide.row);
    std::cerr << " done\n";
  }
  sim::ExecutorPool::instance().set_threads(threads);

  int winning_families = 0;
  for (const FamilyRow& r : rows) {
    if (r.speedup >= kSpeedupThreshold) ++winning_families;
  }

  std::cout << "Dynamic-graph serving: cone-test cache vs full "
               "recompute-per-update\n";
  Table t({"family", "n", "m", "events", "inval/upd", "warm(ms)", "query(ms)",
           "scratch(ms)", "speedup", "bits", "threads 1==8"});
  for (const FamilyRow& r : rows) {
    t.add_row({r.family, std::to_string(r.n), std::to_string(r.m),
               std::to_string(r.events), fixed(r.mean_invalidated, 1),
               fixed(r.warm_s * 1e3, 3), fixed(r.serve_query_s * 1e3, 3),
               fixed(r.scratch_s * 1e3, 3), fixed(r.speedup, 2) + "x",
               r.bits_ok ? "ok" : "DRIFT",
               r.threads_byte_identical ? "ok" : "DRIFT"});
  }
  t.print(std::cout);

  const std::string out_path = args.get("out", "BENCH_serve.json");
  std::ofstream json(out_path);
  write_serve_json(json, make_stamp(seed, run_timer.seconds()), rows,
                   winning_families);
  std::cout << "\nwrote " << out_path << '\n';

  int rc = 0;
  for (const FamilyRow& r : rows) {
    if (!r.bits_ok) {
      std::cerr << "ERROR: " << r.family
                << " served BC drifted from scratch run_exact\n";
      rc = 1;
    }
    if (!r.threads_byte_identical) {
      std::cerr << "ERROR: " << r.family
                << " per-event stream drifted between pool widths 1 and 8\n";
      rc = 1;
    }
  }
  if (winning_families < kMinWinningFamilies) {
    std::cerr << "ERROR: only " << winning_families << " of " << rows.size()
              << " families reached " << kSpeedupThreshold
              << "x over scratch (need >= " << kMinWinningFamilies << ")\n";
    rc = 1;
  }
  return rc;
}
