// Reproduces Figure 6: for the Table 4 big-graph set, (a) speedup over the
// sequential algorithm and (b) MTEPS, each plotted against the BFS depth d.
// The paper's shape claims: the deepest graph (kmer) takes the largest
// speedup, and the highest MTEPS come from the irregular directed graphs
// with d <= 50.
#include <algorithm>
#include <iostream>

#include "bench_support/runner.hpp"
#include "common/format.hpp"
#include "common/table.hpp"

int main() {
  using namespace turbobc;
  using namespace turbobc::bench;

  RunnerConfig cfg;
  cfg.run_gunrock = false;  // the paper's gunrock OOMs here (see table4)
  std::vector<ExperimentRow> rows;
  for (const Workload& w : table4_suite()) {
    rows.push_back(run_single_source_experiment(w, cfg));
    std::cerr << "  [fig6] " << w.name << " done\n";
  }

  Table t({"graph", "d", "speedup(seq)x", "paper(seq)x", "MTEPS",
           "paper MTEPS"});
  for (const auto& r : rows) {
    t.add_row({r.name, std::to_string(r.depth), fixed(r.speedup_seq, 1),
               fixed(r.paper.speedup_seq, 1), fixed(r.mteps, 0),
               fixed(r.paper.mteps, 0)});
  }
  std::cout << "Figure 6 — big-graph set: speedup and MTEPS vs BFS depth\n";
  t.print(std::cout);

  const auto deepest = std::max_element(
      rows.begin(), rows.end(),
      [](const auto& a, const auto& b) { return a.depth < b.depth; });
  const auto fastest = std::max_element(
      rows.begin(), rows.end(),
      [](const auto& a, const auto& b) { return a.speedup_seq < b.speedup_seq; });
  std::cout << "\nShape check (paper: deepest graph has the max speedup): "
            << "deepest = " << deepest->name
            << ", max speedup = " << fastest->name << " -> "
            << (deepest->name == fastest->name ? "MATCHES" : "differs")
            << '\n';
  return 0;
}
