// Bit-parallel multi-source BFS benchmark: BENCH_msbfs.json.
//
// Three families spanning the depth spectrum — a subdivided road network
// (deep, the launch-amortization showcase), a Graph500 Kronecker (shallow,
// hub-heavy), and a Watts–Strogatz small world — each sweeping 64 spread
// sources through the batched engine at three widths:
//
//   per-source   TurboBCBatched k=1 — one lane per mask word, the widened
//                pipeline with none of the bit-parallelism. This is the
//                speedup reference ("what the batched engine costs when the
//                mask carries a single source").
//   k=8          an intermediate width, for the scaling curve.
//   k=64         the full mask word: one frontier/visited word per vertex
//                serves all 64 lanes.
//
// Gates (any failure exits nonzero):
//   * k=64 must clear kSpeedupThreshold (4x) over per-source on at least
//     kMinWinningFamilies (2) families;
//   * every width's BC must be BIT-identical to the per-source TurboBC
//     (kScCSC) run over the same sources — the fixed-fold-order contract;
//   * the k=64 run serialized at pool width 1 and 8 must be byte-identical
//     (values, modeled seconds, peak bytes, word-op traffic);
//   * the k=64 peak must sit within slack of the m + 2n + max(2nk+6n, 5nk)
//     word model of core/footprint.hpp.
//
//   bench_msbfs [--seed 1] [--threads N] [--out BENCH_msbfs.json]
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support/stamp.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/footprint.hpp"
#include "core/turbobc.hpp"
#include "core/turbobc_batched.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"

namespace {

using namespace turbobc;

constexpr double kSpeedupThreshold = 4.0;
constexpr int kMinWinningFamilies = 2;
// Same allocator slack the QA oracle grants the closed-form word model.
constexpr std::uint64_t kPeakSlackBytes = 16 * 256;

struct WidthRow {
  std::string family;
  vidx_t k = 0;
  vidx_t n = 0;
  eidx_t m = 0;
  double modeled_s = 0.0;
  std::size_t peak_bytes = 0;
  std::uint64_t word_ops = 0;
  double speedup_vs_per_source = 0.0;
  bool bits_ok = false;  // BC bit-identical to per-source TurboBC
};

struct FamilyGate {
  std::string family;
  double k64_speedup = 0.0;
  std::uint64_t msbfs_model_bytes = 0;
  std::size_t k64_peak_bytes = 0;
  bool footprint_ok = false;
  bool threads_byte_identical = false;
};

std::vector<vidx_t> spread_sources(vidx_t n, vidx_t want) {
  const vidx_t count = std::min(n, want);
  std::vector<vidx_t> sources;
  for (vidx_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<vidx_t>(
        (static_cast<std::uint64_t>(i) * n) / count));
  }
  return sources;
}

bool bits_equal_bc(const std::vector<bc_t>& a, const std::vector<bc_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

struct BatchedRun {
  bc::BcResult result;
  std::uint64_t word_ops = 0;
};

BatchedRun run_batched(const graph::EdgeList& el,
                       const std::vector<vidx_t>& sources, vidx_t k) {
  sim::Device device;
  device.set_keep_launch_records(false);
  bc::TurboBCBatched batched(device, el, {.batch_size = k});
  BatchedRun run;
  run.result = batched.run_sources(sources);
  for (const auto& [name, agg] : device.kernel_aggregates()) {
    run.word_ops += agg.word_ops;
  }
  return run;
}

/// Everything the determinism contract covers, serialized to bytes: hex-exact
/// BC values plus every modeled counter. Two pool widths must produce the
/// same string, byte for byte.
std::string serialize_run(const BatchedRun& run) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const bc_t v : run.result.bc) os << v << ',';
  os << '|' << run.result.device_seconds << '|'
     << run.result.peak_device_bytes << '|' << run.word_ops;
  return os.str();
}

void write_msbfs_json(std::ostream& os, const bench::BenchStamp& stamp,
                      const std::vector<WidthRow>& rows,
                      const std::vector<FamilyGate>& gates,
                      int winning_families) {
  os << "{\n";
  bench::write_stamp_json(os, stamp);
  os << ",\n\"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "  {\"family\": \"" << r.family << "\", \"k\": " << r.k
       << ", \"n\": " << r.n << ", \"m\": " << r.m
       << ", \"modeled_s\": " << r.modeled_s
       << ", \"peak_bytes\": " << r.peak_bytes
       << ", \"word_ops\": " << r.word_ops
       << ", \"speedup_vs_per_source\": " << r.speedup_vs_per_source
       << ", \"bits_ok\": " << (r.bits_ok ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  os << "],\n\"gates\": [\n";
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const auto& g = gates[i];
    os << "  {\"family\": \"" << g.family
       << "\", \"k64_speedup\": " << g.k64_speedup
       << ", \"msbfs_model_bytes\": " << g.msbfs_model_bytes
       << ", \"k64_peak_bytes\": " << g.k64_peak_bytes
       << ", \"footprint_ok\": " << (g.footprint_ok ? "true" : "false")
       << ", \"threads_byte_identical\": "
       << (g.threads_byte_identical ? "true" : "false") << "}"
       << (i + 1 < gates.size() ? "," : "") << '\n';
  }
  os << "],\n\"acceptance\": {\"speedup_threshold\": " << kSpeedupThreshold
     << ", \"min_winning_families\": " << kMinWinningFamilies
     << ", \"winning_families\": " << winning_families << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbobc;
  using namespace turbobc::bench;

  const CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto threads = static_cast<unsigned>(args.get_count("threads", 0));
  sim::ExecutorPool::instance().set_threads(threads);

  WallTimer run_timer;

  struct Family {
    std::string name;
    graph::EdgeList graph;
  };
  std::vector<Family> families;
  std::cerr << "  [msbfs] generating graphs ..." << std::flush;
  families.push_back({"road-deep",
                      gen::road_network({.grid_rows = 12, .grid_cols = 12,
                                         .keep_p = 0.8, .subdivisions = 6,
                                         .seed = 5})});
  families.push_back(
      {"kron13", gen::kronecker({.scale = 13, .edge_factor = 8, .seed = 7})});
  families.push_back({"smallworld",
                      gen::small_world({.n = 4000, .k = 6, .rewire_p = 0.1,
                                        .seed = 9})});
  std::cerr << " done\n";

  std::vector<WidthRow> rows;
  std::vector<FamilyGate> gates;
  for (const Family& fam : families) {
    const graph::EdgeList& el = fam.graph;
    const auto sources = spread_sources(el.num_vertices(), 64);
    std::cerr << "  [msbfs] " << fam.name << " (n "
              << human_count(static_cast<double>(el.num_vertices())) << ", m "
              << human_count(static_cast<double>(el.num_arcs())) << ", "
              << sources.size() << " sources)" << std::flush;

    std::cerr << " reference" << std::flush;
    std::vector<bc_t> reference;
    {
      sim::Device device;
      device.set_keep_launch_records(false);
      bc::TurboBC plain(device, el, {.variant = bc::Variant::kScCsc});
      reference = plain.run_sources(sources).bc;
    }

    double per_source_s = 0.0;
    FamilyGate gate;
    gate.family = fam.name;
    for (const vidx_t k : {vidx_t{1}, vidx_t{8}, vidx_t{64}}) {
      std::cerr << " k=" << k << std::flush;
      const BatchedRun run = run_batched(el, sources, k);
      WidthRow row;
      row.family = fam.name;
      row.k = k;
      row.n = el.num_vertices();
      row.m = el.num_arcs();
      row.modeled_s = run.result.device_seconds;
      row.peak_bytes = run.result.peak_device_bytes;
      row.word_ops = run.word_ops;
      row.bits_ok = bits_equal_bc(run.result.bc, reference);
      if (k == 1) per_source_s = row.modeled_s;
      row.speedup_vs_per_source =
          row.modeled_s > 0.0 ? per_source_s / row.modeled_s : 0.0;
      if (k == 64) {
        gate.k64_speedup = row.speedup_vs_per_source;
        gate.k64_peak_bytes = row.peak_bytes;
        gate.msbfs_model_bytes = bc::turbobc_msbfs_model_bytes(
            el.num_vertices(), el.num_arcs(),
            static_cast<vidx_t>(std::min<std::size_t>(sources.size(), 64)));
        gate.footprint_ok =
            row.peak_bytes <= gate.msbfs_model_bytes + kPeakSlackBytes;
      }
      rows.push_back(row);
    }

    std::cerr << " threads" << std::flush;
    std::string by_width[2];
    const unsigned widths[2] = {1, 8};
    for (int i = 0; i < 2; ++i) {
      sim::ExecutorPool::instance().set_threads(widths[i]);
      by_width[i] = serialize_run(run_batched(el, sources, 64));
    }
    sim::ExecutorPool::instance().set_threads(threads);
    gate.threads_byte_identical = by_width[0] == by_width[1];
    gates.push_back(gate);
    std::cerr << " done\n";
  }

  int winning_families = 0;
  for (const FamilyGate& g : gates) {
    if (g.k64_speedup >= kSpeedupThreshold) ++winning_families;
  }

  std::cout << "Bit-parallel MS-BFS batched sweep vs the per-source batched "
               "pipeline (64 spread sources)\n";
  Table t({"family", "k", "modeled(ms)", "peak", "word ops",
           "vs per-source", "bits"});
  for (const WidthRow& r : rows) {
    t.add_row({r.family, std::to_string(r.k), fixed(r.modeled_s * 1e3, 3),
               human_bytes(r.peak_bytes),
               human_count(static_cast<double>(r.word_ops)),
               fixed(r.speedup_vs_per_source, 2) + "x",
               r.bits_ok ? "ok" : "DRIFT"});
  }
  t.print(std::cout);
  std::cout << "\nGates (k=64)\n";
  Table g({"family", "speedup", "peak", "m+2n+max(2nk+6n,5nk) model", "fit",
           "threads 1==8"});
  for (const FamilyGate& gate : gates) {
    g.add_row({gate.family, fixed(gate.k64_speedup, 2) + "x",
               human_bytes(gate.k64_peak_bytes),
               human_bytes(gate.msbfs_model_bytes),
               gate.footprint_ok ? "ok" : "OVER",
               gate.threads_byte_identical ? "ok" : "DRIFT"});
  }
  g.print(std::cout);

  const std::string out_path = args.get("out", "BENCH_msbfs.json");
  std::ofstream json(out_path);
  write_msbfs_json(json, make_stamp(seed, run_timer.seconds()), rows, gates,
                   winning_families);
  std::cout << "\nwrote " << out_path << '\n';

  int rc = 0;
  for (const WidthRow& r : rows) {
    if (!r.bits_ok) {
      std::cerr << "ERROR: " << r.family << " k=" << r.k
                << " BC drifted from the per-source TurboBC fold\n";
      rc = 1;
    }
  }
  for (const FamilyGate& gate : gates) {
    if (!gate.footprint_ok) {
      std::cerr << "ERROR: " << gate.family << " k=64 peak "
                << gate.k64_peak_bytes << " B vs model "
                << gate.msbfs_model_bytes << " B\n";
      rc = 1;
    }
    if (!gate.threads_byte_identical) {
      std::cerr << "ERROR: " << gate.family
                << " k=64 run drifted between pool widths 1 and 8\n";
      rc = 1;
    }
  }
  if (winning_families < kMinWinningFamilies) {
    std::cerr << "ERROR: only " << winning_families << " of " << gates.size()
              << " families reached " << kSpeedupThreshold
              << "x over per-source (need >= " << kMinWinningFamilies << ")\n";
    rc = 1;
  }
  return rc;
}
