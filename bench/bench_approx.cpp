// Adaptive approximate-BC benchmark: BENCH_approx.json.
//
// Two rows, one per claim:
//
//  * grounding — a small undirected Erdos-Renyi graph where TRUE exact BC
//    is cheap (TurboBC::run_exact). Checks the statistical contract
//    directly: every vertex's exact BC must lie inside the reported
//    confidence interval. At this size the Hoeffding/Bernstein sample
//    requirement exceeds n, so the run honestly reports converged = false
//    after spending its full pivot budget — the intervals must hold anyway.
//  * acceptance — a scale-free preferential-attachment graph (default
//    n = 50k) at epsilon 0.05 / delta 0.1. Exact cost is projected from
//    --pivots evenly-spread sources run through the SAME batched engine
//    (modeled seconds x n/pivots), so the speedup ratio cancels engine
//    overheads. The row must stop at < 20% of sources with >= 4x modeled
//    speedup; the binary exits nonzero otherwise.
//
//   bench_approx [--n 50000] [--epsilon 0.05] [--delta 0.1] [--seed 1]
//                [--batch 32] [--pivots 256] [--small-n 600] [--threads N]
//                [--out BENCH_approx.json]
#include <cmath>
#include <fstream>
#include <iostream>
#include <vector>

#include "approx/driver.hpp"
#include "bench_support/stamp.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/turbobc.hpp"
#include "core/turbobc_batched.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"

namespace {

using namespace turbobc;

struct ApproxBenchRow {
  std::string name;
  vidx_t n = 0;
  eidx_t m = 0;
  std::string engine;
  std::string sampler;
  double epsilon = 0.0;
  double delta = 0.0;
  vidx_t sources_used = 0;
  vidx_t exact_sources = 0;     // n: what exact BC would have run
  double fraction = 0.0;        // sources_used / n
  bool converged = false;
  double approx_modeled_s = 0.0;
  double exact_modeled_s = 0.0;
  bool exact_projected = false;  // true when exact cost is extrapolated
  double speedup = 0.0;          // exact_modeled_s / approx_modeled_s
  double max_rel_half_width = 0.0;
  bool coverage_checked = false;  // true when exact BC was available
  bool coverage_ok = false;
};

void write_approx_json(std::ostream& os, const bench::BenchStamp& stamp,
                       const std::vector<ApproxBenchRow>& rows) {
  os << "{\n";
  bench::write_stamp_json(os, stamp);
  os << ",\n\"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "  {\"graph\": \"" << r.name << "\", \"n\": " << r.n
       << ", \"m\": " << r.m << ", \"engine\": \"" << r.engine
       << "\", \"sampler\": \"" << r.sampler
       << "\", \"epsilon\": " << r.epsilon << ", \"delta\": " << r.delta
       << ", \"sources_used\": " << r.sources_used
       << ", \"exact_sources\": " << r.exact_sources
       << ", \"fraction\": " << r.fraction << ", \"converged\": "
       << (r.converged ? "true" : "false")
       << ", \"approx_modeled_s\": " << r.approx_modeled_s
       << ", \"exact_modeled_s\": " << r.exact_modeled_s
       << ", \"exact_projected\": " << (r.exact_projected ? "true" : "false")
       << ", \"speedup\": " << r.speedup
       << ", \"max_rel_half_width\": " << r.max_rel_half_width
       << ", \"coverage_checked\": " << (r.coverage_checked ? "true" : "false")
       << ", \"coverage_ok\": " << (r.coverage_ok ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  os << "]\n}\n";
}

void print_rows(std::ostream& os, const std::vector<ApproxBenchRow>& rows) {
  Table t({"graph", "n", "m", "engine", "pivots", "frac", "converged",
           "approx(s)", "exact(s)", "speedup", "rel-hw", "coverage"});
  for (const auto& r : rows) {
    t.add_row({r.name, human_count(static_cast<double>(r.n)),
               human_count(static_cast<double>(r.m)), r.engine,
               std::to_string(r.sources_used), fixed(r.fraction * 100, 1) + "%",
               r.converged ? "yes" : "no", fixed(r.approx_modeled_s, 4),
               fixed(r.exact_modeled_s, 4) + (r.exact_projected ? "*" : ""),
               fixed(r.speedup, 1) + "x", fixed(r.max_rel_half_width, 4),
               !r.coverage_checked ? "-" : (r.coverage_ok ? "yes" : "NO")});
  }
  t.print(os);
  os << "  (* exact cost projected from evenly-spread pivots)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbobc;
  using namespace turbobc::bench;

  const CliArgs args(argc, argv);
  const vidx_t n = static_cast<vidx_t>(args.get_int("n", 50000));
  const double epsilon = args.get_double("epsilon", 0.05);
  const double delta = args.get_double("delta", 0.1);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto batch = static_cast<vidx_t>(args.get_int("batch", 32));
  const auto pivots = static_cast<vidx_t>(args.get_int("pivots", 256));
  const vidx_t small_n = static_cast<vidx_t>(args.get_int("small-n", 600));
  const int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads > 0) {
    sim::ExecutorPool::instance().set_threads(static_cast<unsigned>(threads));
  }

  WallTimer run_timer;
  std::vector<ApproxBenchRow> rows;

  // Row 1: grounding on a graph small enough for true exact BC.
  {
    gen::ErdosRenyiParams er;
    er.n = small_n;
    er.arcs = static_cast<eidx_t>(small_n) * 5;
    er.directed = false;
    er.seed = 3;
    const graph::EdgeList g = gen::erdos_renyi(er);
    std::cerr << "  [approx] er-" << small_n << " exact ..." << std::flush;

    ApproxBenchRow row;
    row.name = "er-" + std::to_string(small_n);
    row.n = g.num_vertices();
    row.m = g.num_arcs();
    row.epsilon = epsilon;
    row.delta = delta;
    row.exact_sources = row.n;

    double exact_s = 0.0;
    std::vector<bc_t> exact_bc;
    {
      sim::Device device;
      device.set_keep_launch_records(false);
      bc::TurboBC turbo(device, g, {.variant = bc::Variant::kScCsc});
      const bc::BcResult r = turbo.run_exact();
      exact_s = r.device_seconds;
      exact_bc = r.bc;
    }
    std::cerr << " approx ..." << std::flush;

    approx::ApproxOptions aopt;
    aopt.epsilon = epsilon;
    aopt.delta = delta;
    aopt.seed = seed;
    aopt.sampler = approx::SamplerKind::kUniform;
    aopt.engine = approx::Engine::kScalar;
    aopt.variant = bc::Variant::kScCsc;
    sim::Device device;
    device.set_keep_launch_records(false);
    const approx::ApproxResult a = approx::run_adaptive(device, g, aopt);

    row.engine = approx::engine_name(aopt.engine);
    row.sampler = approx::sampler_name(aopt.sampler);
    row.sources_used = a.sources_used;
    row.fraction = static_cast<double>(a.sources_used) / row.n;
    row.converged = a.converged;
    row.approx_modeled_s = a.device_seconds;
    row.exact_modeled_s = exact_s;
    row.speedup = a.device_seconds > 0 ? exact_s / a.device_seconds : 0.0;
    row.max_rel_half_width = a.max_half_width / a.norm;
    row.coverage_checked = true;
    row.coverage_ok = true;
    for (vidx_t v = 0; v < row.n; ++v) {
      const double err = std::abs(static_cast<double>(exact_bc[v]) -
                                  static_cast<double>(a.bc[v]));
      if (!(err <= a.half_width[v] + 1e-9 * a.norm)) row.coverage_ok = false;
    }
    std::cerr << " done (" << a.sources_used << " pivots, coverage "
              << (row.coverage_ok ? "ok" : "VIOLATED") << ")\n";
    rows.push_back(row);
  }

  // Row 2: acceptance at scale — scale-free graph, projected exact cost.
  {
    gen::PreferentialParams pa;
    pa.n = n;
    pa.m_attach = 4;
    pa.directed = false;
    pa.seed = 9;
    const graph::EdgeList g = gen::preferential_attachment(pa);

    ApproxBenchRow row;
    row.name = "pref-" + std::to_string(n);
    row.n = g.num_vertices();
    row.m = g.num_arcs();
    row.epsilon = epsilon;
    row.delta = delta;
    row.exact_sources = row.n;

    // Projected exact cost: --pivots evenly-spread sources through the same
    // batched engine, scaled to all n sources.
    std::cerr << "  [approx] " << row.name << " exact projection ("
              << pivots << " pivots) ..." << std::flush;
    std::vector<vidx_t> spread;
    spread.reserve(pivots);
    for (vidx_t i = 0; i < pivots; ++i) {
      spread.push_back(static_cast<vidx_t>(
          static_cast<std::uint64_t>(i) * row.n / pivots));
    }
    double exact_s = 0.0;
    {
      sim::Device device;
      device.set_keep_launch_records(false);
      bc::TurboBCBatched turbo(device, g, {.batch_size = batch});
      const bc::BcResult r = turbo.run_sources(spread);
      exact_s = r.device_seconds * (static_cast<double>(row.n) / pivots);
    }
    std::cerr << " approx ..." << std::flush;

    approx::ApproxOptions aopt;
    aopt.epsilon = epsilon;
    aopt.delta = delta;
    aopt.seed = seed;
    aopt.sampler = approx::SamplerKind::kUniform;
    aopt.engine = approx::Engine::kBatched;
    aopt.variant = bc::Variant::kScCsc;
    aopt.batch_size = batch;
    sim::Device device;
    device.set_keep_launch_records(false);
    const approx::ApproxResult a = approx::run_adaptive(device, g, aopt);

    row.engine = approx::engine_name(aopt.engine);
    row.sampler = approx::sampler_name(aopt.sampler);
    row.sources_used = a.sources_used;
    row.fraction = static_cast<double>(a.sources_used) / row.n;
    row.converged = a.converged;
    row.approx_modeled_s = a.device_seconds;
    row.exact_modeled_s = exact_s;
    row.exact_projected = true;
    row.speedup = a.device_seconds > 0 ? exact_s / a.device_seconds : 0.0;
    row.max_rel_half_width = a.max_half_width / a.norm;
    std::cerr << " done (" << a.sources_used << " pivots, "
              << fixed(row.fraction * 100, 1) << "% of n, speedup "
              << fixed(row.speedup, 1) << "x)\n";
    rows.push_back(row);
  }

  std::cout << "Adaptive approximate BC: epsilon " << epsilon << ", delta "
            << delta << ", seed " << seed << "\n";
  print_rows(std::cout, rows);

  const std::string out_path = args.get("out", "BENCH_approx.json");
  std::ofstream json(out_path);
  write_approx_json(json, make_stamp(seed, run_timer.seconds()), rows);
  std::cout << "\nwrote " << out_path << '\n';

  int rc = 0;
  if (!rows[0].coverage_ok) {
    std::cerr << "ERROR: grounding row violated its confidence intervals\n";
    rc = 1;
  }
  if (rows[1].converged && rows[1].fraction >= 0.20) {
    std::cerr << "ERROR: acceptance row stopped at " << rows[1].fraction * 100
              << "% of sources (need < 20%)\n";
    rc = 1;
  }
  if (!rows[1].converged) {
    std::cerr << "ERROR: acceptance row did not converge within budget\n";
    rc = 1;
  }
  if (rows[1].speedup < 4.0) {
    std::cerr << "ERROR: acceptance row modeled speedup " << rows[1].speedup
              << "x (need >= 4x)\n";
    rc = 1;
  }
  return rc;
}
