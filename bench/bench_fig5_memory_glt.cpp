// Reproduces Figure 5 on the mycielski sweep:
//   (a) GPU memory usage vs n + m — TurboBC-veCSC vs the gunrock-like
//       baseline, with the gunrock/TurboBC ratio (paper: up to ~1.6x);
//   (b) Global-load throughput (GLT) of the most important kernels vs the
//       575 GB/s theoretical line — TurboBC's frontier-dense veCSC SpMV
//       exceeds it via L2 reuse, gunrock's kernels sit below it;
//   (c) MTEPS as a function of GLT for both implementations.
#include <iostream>

#include "baselines/gunrock_like.hpp"
#include "bench_support/mteps.hpp"
#include "bench_support/suite.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/turbobc.hpp"
#include "gpusim/device.hpp"

namespace {

/// Aggregate GLT over the kernels matching a prefix list (GB/s).
double kernel_glt(const turbobc::sim::Device& dev,
                  std::initializer_list<const char*> names) {
  std::uint64_t loads = 0;
  double time = 0.0;
  for (const auto& [name, agg] : dev.kernel_aggregates()) {
    for (const char* want : names) {
      if (name.rfind(want, 0) == 0) {
        loads += agg.load_transactions;
        time += agg.time_s;
      }
    }
  }
  return time > 0.0 ? static_cast<double>(loads) * 32.0 / time / 1e9 : 0.0;
}

}  // namespace

int main() {
  using namespace turbobc;
  using namespace turbobc::bench;

  const double theoretical =
      sim::DeviceProps::titan_xp().theoretical_glt_bps / 1e9;

  Table a({"graph", "n+m", "TurboBC bytes", "gunrock bytes", "ratio"});
  Table b({"graph", "TurboBC SpMV GLT(GB/s)", "TurboBC update GLT",
           "gunrock advance GLT", "gunrock backward GLT",
           "theoretical"});
  Table c({"graph", "TurboBC MTEPS", "TurboBC GLT", "gunrock MTEPS",
           "gunrock GLT"});

  for (const Workload& w : mycielski_sweep()) {
    const vidx_t source = representative_source(w.graph);
    const auto m = w.graph.num_arcs();

    std::size_t turbo_bytes = 0;
    double turbo_mteps = 0, turbo_spmv_glt = 0, turbo_update_glt = 0,
           turbo_glt = 0;
    {
      sim::Device dev;
      bc::TurboBC turbo(dev, w.graph, {.variant = bc::Variant::kVeCsc});
      const auto r = turbo.run_single_source(source);
      turbo_bytes = r.peak_device_bytes;
      turbo_mteps = mteps_single_source(m, r.device_seconds);
      turbo_spmv_glt = kernel_glt(dev, {"bfs_spmv", "dep_spmv"});
      turbo_update_glt = kernel_glt(dev, {"bfs_update", "dep_prepare",
                                          "dep_update"});
      turbo_glt = kernel_glt(dev, {"bfs_", "dep_", "bc_"});
    }
    std::size_t gr_bytes = 0;
    double gr_mteps = 0, gr_adv_glt = 0, gr_back_glt = 0, gr_glt = 0;
    {
      sim::Device dev;
      baseline::GunrockLikeBc g(dev, w.graph);
      const auto r = g.run_single_source(source);
      gr_bytes = r.peak_device_bytes;
      gr_mteps = mteps_single_source(m, r.device_seconds);
      gr_adv_glt = kernel_glt(dev, {"gunrock_advance", "gunrock_lb",
                                    "gunrock_filter"});
      gr_back_glt = kernel_glt(dev, {"gunrock_bc_backward"});
      gr_glt = kernel_glt(dev, {"gunrock_"});
    }

    a.add_row({w.name,
               human_count(static_cast<double>(w.graph.num_vertices()) +
                           static_cast<double>(m)),
               human_bytes(turbo_bytes), human_bytes(gr_bytes),
               fixed(static_cast<double>(gr_bytes) /
                         static_cast<double>(turbo_bytes),
                     2)});
    b.add_row({w.name, fixed(turbo_spmv_glt, 1), fixed(turbo_update_glt, 1),
               fixed(gr_adv_glt, 1), fixed(gr_back_glt, 1),
               fixed(theoretical, 0)});
    c.add_row({w.name, fixed(turbo_mteps, 0), fixed(turbo_glt, 1),
               fixed(gr_mteps, 0), fixed(gr_glt, 1)});
    std::cerr << "  [fig5] " << w.name << " done\n";
  }

  std::cout << "Figure 5a — GPU memory usage vs n+m (mycielski sweep)\n";
  a.print(std::cout);
  std::cout << "\nFigure 5b — Global-load throughput per kernel group "
               "(GB/s); theoretical max "
            << fixed(theoretical, 0)
            << " GB/s. TurboBC's SpMV exceeding it (L2 reuse) reproduces "
               "the paper's observation.\n";
  b.print(std::cout);
  std::cout << "\nFigure 5c — MTEPS as a function of GLT\n";
  c.print(std::cout);
  return 0;
}
