// Reproduces Figure 3: GPU memory upper bounds vs total array size on the
// mycielski sweep, for (a) TurboBC-veCSC and (b) the gunrock-like baseline.
//
// The paper's claim: measured GPU memory usage is linear in the model's
// array-size totals (7n + m for TurboBC, 9n + 2m for gunrock). We run each
// BC, record the simulated peak, and print both series plus the measured /
// model ratio — which must stay near-constant (linearity) across the sweep.
#include <iostream>

#include "baselines/gunrock_like.hpp"
#include "bench_support/suite.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/footprint.hpp"
#include "core/turbobc.hpp"
#include "gpusim/device.hpp"

int main() {
  using namespace turbobc;
  using namespace turbobc::bench;

  Table t({"graph", "n", "m", "TurboBC model(7n+m)w", "TurboBC peak",
           "peak/model", "gunrock model(9n+2m)w", "gunrock peak",
           "peak/model"});

  for (const Workload& w : mycielski_sweep()) {
    const vidx_t n = w.graph.num_vertices();
    const eidx_t m = w.graph.num_arcs();
    const vidx_t source = representative_source(w.graph);

    std::size_t turbo_peak = 0;
    {
      sim::Device dev;
      bc::TurboBC turbo(dev, w.graph, {.variant = bc::Variant::kVeCsc});
      turbo_peak = turbo.run_single_source(source).peak_device_bytes;
    }
    std::size_t gunrock_peak = 0;
    {
      sim::Device dev;
      baseline::GunrockLikeBc g(dev, w.graph);
      gunrock_peak = g.run_single_source(source).peak_device_bytes;
    }

    const double tm = static_cast<double>(bc::turbobc_model_words(n, m));
    const double gm = static_cast<double>(bc::gunrock_model_words(n, m));
    t.add_row({w.name, human_count(static_cast<double>(n)),
               human_count(static_cast<double>(m)),
               human_count(tm), human_bytes(turbo_peak),
               fixed(static_cast<double>(turbo_peak) / (4.0 * tm), 2),
               human_count(gm), human_bytes(gunrock_peak),
               fixed(static_cast<double>(gunrock_peak) / (4.0 * gm), 2)});
    std::cerr << "  [fig3] " << w.name << " done\n";
  }

  std::cout << "Figure 3 — GPU memory upper bounds vs model array totals "
               "(mycielski sweep)\n"
               "Linearity holds when peak/model stays ~constant down each "
               "column; gunrock's ratio exceeding TurboBC's reproduces the "
               "paper's 'up to 60% higher' gap.\n";
  t.print(std::cout);
  return 0;
}
