// Extension ablation: variant selection policies.
//
// The paper selects the best SpMV variant per graph empirically and proposes
// better selection as future work. This bench compares, across the full
// single-source workload suite:
//   * each fixed variant (the cost of committing to one kernel),
//   * the structural heuristic select_variant() (zero probing cost),
//   * empirical autotuning (three probe runs, then the measured best).
// It reports the slowdown of each policy versus the per-graph oracle (best
// fixed variant).
#include <algorithm>
#include <iostream>

#include "bench_support/suite.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/autotune.hpp"
#include "core/turbobc.hpp"
#include "gpusim/device.hpp"

int main() {
  using namespace turbobc;
  using namespace turbobc::bench;

  Table t({"graph", "scCOOC(ms)", "scCSC(ms)", "veCSC(ms)", "oracle",
           "heuristic", "heuristic vs oracle", "autotune pick"});

  double heuristic_total = 0.0;
  double oracle_total = 0.0;

  std::vector<Workload> all;
  for (auto&& suite : {table1_suite(), table2_suite(), table3_suite()}) {
    for (auto&& w : suite) all.push_back(std::move(w));
  }

  for (const Workload& w : all) {
    const vidx_t source = representative_source(w.graph);
    const auto tuned = bc::autotune_variant(w.graph, source);
    const double* sec = tuned.seconds;
    const double oracle = *std::min_element(sec, sec + 3);
    const bc::Variant heuristic = bc::select_variant(w.graph);
    const double heuristic_time = sec[static_cast<int>(heuristic)];
    heuristic_total += heuristic_time;
    oracle_total += oracle;

    t.add_row({w.name,
               fixed(sec[static_cast<int>(bc::Variant::kScCooc)] * 1e3, 3),
               fixed(sec[static_cast<int>(bc::Variant::kScCsc)] * 1e3, 3),
               fixed(sec[static_cast<int>(bc::Variant::kVeCsc)] * 1e3, 3),
               std::string(bc::to_string(tuned.best)),
               std::string(bc::to_string(heuristic)),
               fixed(heuristic_time / oracle, 2) + "x",
               std::string(bc::to_string(tuned.best))});
    std::cerr << "  [autotune] " << w.name << " done\n";
  }

  std::cout << "Extension ablation — variant-selection policies over the "
               "Tables 1-3 suite (single-source, modeled times)\n";
  t.print(std::cout);
  std::cout << "\naggregate: structural heuristic costs "
            << fixed(heuristic_total / oracle_total, 3)
            << "x the per-graph oracle; autotune matches the oracle by "
               "construction at the price of two extra probe runs.\n";
  return 0;
}
