// Extension ablation: multi-source batching (SpMV -> SpMM).
//
// The paper's per-source pipeline pays ~5 kernel launches plus a PCIe flag
// readback per BFS level; on deep graphs that overhead dominates (Table 1's
// road network runs at 0.4 MTEPS). Batching k sources into an n x k
// frontier matrix issues ONE set of per-level kernels for the whole batch.
// This bench sweeps the batch size over a deep and a shallow exact-BC
// workload and reports time, speedup over k=1, and peak device memory (the
// cost axis: per-vertex state grows k-fold).
#include <iostream>

#include "bench_support/mteps.hpp"
#include "bench_support/suite.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "core/turbobc_batched.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"

int main(int argc, char** argv) {
  using namespace turbobc;
  using namespace turbobc::bench;
  const CliArgs args(argc, argv);
  // Host-parallel pool width; modeled numbers are width-invariant.
  sim::ExecutorPool::instance().set_threads(
      static_cast<unsigned>(args.get_int("threads", 1)));

  struct Case {
    const char* name;
    graph::EdgeList g;
  };
  std::vector<Case> cases;
  cases.push_back({"road-like (deep, d~200)",
                   gen::road_network({.grid_rows = 6, .grid_cols = 6,
                                      .keep_p = 0.7, .subdivisions = 10,
                                      .seed = 71})});
  cases.push_back({"markov lattice (d~40)",
                   gen::markov_lattice({.length = 42, .width = 18,
                                        .burst_p = 0.01, .burst_size = 24,
                                        .seed = 72})});
  cases.push_back({"mycielski M9 (d=3)", gen::mycielski(9)});

  Table t({"graph", "batch k", "exact time(s)", "speedup vs k=1", "MTEPS",
           "peak device"});
  for (const Case& c : cases) {
    double base = 0.0;
    for (const vidx_t k : {1, 4, 16, 32}) {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBCBatched turbo(dev, c.g, {.batch_size = k});
      const auto r = turbo.run_exact();
      if (k == 1) base = r.device_seconds;
      t.add_row({c.name, std::to_string(k), fixed(r.device_seconds, 3),
                 fixed(base / r.device_seconds, 2) + "x",
                 fixed(mteps_exact(c.g.num_vertices(), c.g.num_arcs(),
                                   r.device_seconds),
                       0),
                 human_bytes(r.peak_device_bytes)});
      std::cerr << "  [batching] " << c.name << " k=" << k << " done\n";
    }
  }

  std::cout << "Extension ablation — multi-source batching (exact BC): "
               "launch-overhead amortization vs k-fold per-vertex state\n";
  t.print(std::cout);
  return 0;
}
