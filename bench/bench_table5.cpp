// Reproduces Table 5: exact BC (all sources) on six graphs; MTEPS computed
// as n*m / t. The paper's Table 5 compares against the sequential algorithm
// only. `--threads N` picks the host-parallel pool width (modeled numbers
// are bit-identical for any width; default 1 keeps historical wall times).
#include <iostream>

#include "bench_support/runner.hpp"
#include "common/cli.hpp"
#include "gpusim/executor.hpp"

int main(int argc, char** argv) {
  using namespace turbobc::bench;
  const turbobc::CliArgs args(argc, argv);
  turbobc::sim::ExecutorPool::instance().set_threads(
      static_cast<unsigned>(args.get_int("threads", 1)));
  RunnerConfig cfg;
  cfg.run_gunrock = false;
  cfg.run_ligra = false;
  std::vector<ExperimentRow> rows;
  for (const Workload& w : table5_suite()) {
    rows.push_back(run_exact_experiment(w, cfg));
    std::cerr << "  [table5] " << w.name << " done\n";
  }
  print_rows(std::cout,
             "Table 5 — exact BC (all sources), MTEPS = n*m/t "
             "(modeled times; paper columns on the right)",
             rows, /*time_unit_s=*/true, /*exact=*/true);
  return 0;
}
