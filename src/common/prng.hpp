// Deterministic pseudo-random number generation for graph generators and
// property tests.
//
// Two engines: SplitMix64 (seed expansion / cheap streams) and Xoshiro256**
// (main generator). Both are tiny, header-only, and bit-reproducible across
// platforms, which matters because every benchmark workload in this repo is
// synthesized from a fixed seed and the EXPERIMENTS.md numbers must be
// regenerable exactly.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace turbobc {

/// SplitMix64: used to seed Xoshiro and for independent cheap streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// the modulo bias is below 2^-64 * bound which is negligible for graph
  /// synthesis but we still debias with the standard rejection step.
  std::uint64_t uniform(std::uint64_t bound) {
    TBC_CHECK(bound > 0, "uniform() bound must be positive");
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform_real() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) noexcept { return uniform_real() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace turbobc
