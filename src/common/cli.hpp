// Minimal command-line option parser for examples and bench binaries.
//
// Supports "--name value" and "--flag" forms plus positional arguments; it is
// deliberately tiny — the examples only need a handful of knobs (scale, seed,
// source vertex, variant).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace turbobc {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  /// get_int restricted to positive counts (--devices, --threads, --budget,
  /// batch sizes): a present flag with a zero or negative value throws a
  /// prose UsageError (exit 2 in the CLIs) instead of wrapping through an
  /// unsigned conversion or spinning downstream. An absent flag returns
  /// `fallback` unchecked — sentinel fallbacks like 0 ("auto") stay legal.
  std::int64_t get_count(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace turbobc
