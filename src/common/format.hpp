// Human-readable number formatting shared by bench tables and examples.
#pragma once

#include <cstdint>
#include <string>

namespace turbobc {

/// "12.3 MB", "1.19 GB" — powers of 1024.
std::string human_bytes(std::uint64_t bytes);

/// "1.2k", "3.4M", "1.9G" — powers of 1000, used for n/m columns.
std::string human_count(double value);

/// Fixed-point with the given number of decimals, no trailing exponent.
std::string fixed(double value, int decimals);

}  // namespace turbobc
