// Wall-clock timing helper for host-side measurements.
//
// Simulated-GPU times come from the cost model (gpusim/costmodel.hpp), not
// from this timer; WallTimer is used for real host baselines and for test
// bookkeeping only.
#pragma once

#include <chrono>

namespace turbobc {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace turbobc
