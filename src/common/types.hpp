// Fixed-width index types shared by every TurboBC subsystem.
//
// The paper stores graphs as n x n sparse adjacency matrices with m nonzeros.
// Vertex indices fit comfortably in 32 bits for every workload in the paper
// (max n = 214e6); edge *counts* can exceed 2^31 (sk-2005 has 1.95e9 edges),
// so offsets into edge arrays are 64-bit.
#pragma once

#include <cstdint>

namespace turbobc {

/// Vertex index ("row/column" of the adjacency matrix). 0-based internally;
/// the paper's pseudocode is 1-based, IO converts at the boundary.
using vidx_t = std::int32_t;

/// Edge offset (index into row_A/col_A arrays and CSC column pointers).
using eidx_t = std::int64_t;

/// Shortest-path counts. Path counts grow combinatorially — lattice graphs
/// reach ~3^depth distinct shortest paths, overflowing ANY fixed-width
/// integer — so every implementation in this repo counts paths in double,
/// whose 53-bit mantissa degrades by relative rounding instead of wrapping.
/// The GPU cost model still charges integer-atomic rates for the BFS-stage
/// vectors by default (the paper's Section 3.4 datatype choice); see
/// sim::DeviceBuffer::set_modeled_integer.
using sigma_t = double;

/// Dependency / centrality scalar. The paper uses float on device; we keep
/// double on the reference paths and float on the simulated-device paths.
using bc_t = double;

inline constexpr vidx_t kInvalidVertex = -1;

}  // namespace turbobc
