#include "common/error.hpp"

#include <sstream>

namespace turbobc {

ParseError::ParseError(const std::string& what, std::size_t line_number)
    : InvalidArgument([&] {
        if (line_number == 0) return what;
        std::ostringstream os;
        os << what << " (line " << line_number << ")";
        return os.str();
      }()),
      line_(line_number) {}

DeviceOutOfMemory::DeviceOutOfMemory(std::size_t requested, std::size_t live,
                                     std::size_t capacity)
    : Error([&] {
        std::ostringstream os;
        os << "simulated device out of memory: requested " << requested
           << " B with " << live << " B live of " << capacity << " B capacity";
        return os.str();
      }()),
      requested_(requested),
      live_(live),
      capacity_(capacity) {}

namespace detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& message) {
  std::ostringstream os;
  os << message << " [failed check: " << expr << " at " << file << ":" << line
     << "]";
  throw InvalidArgument(os.str());
}

}  // namespace detail
}  // namespace turbobc
