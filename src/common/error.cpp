#include "common/error.hpp"

#include <sstream>

namespace turbobc {

ParseError::ParseError(const std::string& what, std::size_t line_number)
    : InvalidArgument([&] {
        if (line_number == 0) return what;
        std::ostringstream os;
        os << what << " (line " << line_number << ")";
        return os.str();
      }()),
      line_(line_number) {}

namespace {
// Nearest-MB rounding for the human-facing message; exact byte counts stay
// available through the accessors.
std::size_t to_mb(std::size_t bytes) {
  return (bytes + (std::size_t{1} << 19)) >> 20;
}
}  // namespace

DeviceOutOfMemory::DeviceOutOfMemory(std::size_t requested, std::size_t live,
                                     std::size_t capacity, std::string label)
    : Error([&] {
        std::ostringstream os;
        os << "simulated device out of memory: allocation ";
        if (!label.empty()) os << "\"" << label << "\" ";
        os << "of " << requested << " B denied (live " << to_mb(live)
           << " MB of " << to_mb(capacity) << " MB capacity)";
        return os.str();
      }()),
      requested_(requested),
      live_(live),
      capacity_(capacity),
      label_(std::move(label)) {}

namespace detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& message) {
  std::ostringstream os;
  os << message << " [failed check: " << expr << " at " << file << ":" << line
     << "]";
  throw InvalidArgument(os.str());
}

}  // namespace detail
}  // namespace turbobc
