// Error handling for TurboBC.
//
// The library throws exceptions derived from turbobc::Error for unrecoverable
// misuse (bad graph input, simulator misconfiguration) and uses a dedicated
// DeviceOutOfMemory type so callers can reproduce the paper's OOM experiments
// (Table 4: gunrock runs out of device memory, TurboBC does not) by catching
// that specific condition.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace turbobc {

/// Base class for all TurboBC errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid argument / malformed input (bad matrix file, negative vertex id...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Malformed input text (Matrix Market files, qa replay files). Carries the
/// 1-based line number of the offending line so tooling can point at it;
/// 0 means "no specific line" (e.g. an unexpectedly truncated stream).
/// Derives from InvalidArgument so existing catch sites keep working.
class ParseError : public InvalidArgument {
 public:
  ParseError(const std::string& what, std::size_t line_number = 0);

  std::size_t line_number() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Raised by the device memory manager when an allocation would exceed the
/// simulated GPU's global-memory capacity. Carries the requesting buffer's
/// label (empty for raw allocations) so Table-4-style OOM logs name the
/// allocation that hit the wall, and the message rounds live/capacity to MB
/// to keep those logs readable.
class DeviceOutOfMemory : public Error {
 public:
  DeviceOutOfMemory(std::size_t requested, std::size_t live,
                    std::size_t capacity, std::string label = {});

  std::size_t requested_bytes() const noexcept { return requested_; }
  std::size_t live_bytes() const noexcept { return live_; }
  std::size_t capacity_bytes() const noexcept { return capacity_; }
  const std::string& label() const noexcept { return label_; }

 private:
  std::size_t requested_;
  std::size_t live_;
  std::size_t capacity_;
  std::string label_;
};

/// Internal invariant violation; indicates a bug in TurboBC itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Command-line misuse (malformed flag value, unusable combination). CLI
/// entry points catch this separately from Error to print usage and exit 2;
/// the message is plain prose with no source-location decoration, so it is
/// stable for golden tests.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file, int line,
                                      const std::string& message);
}  // namespace detail

}  // namespace turbobc

/// Precondition check: throws InvalidArgument when `expr` is false.
#define TBC_CHECK(expr, message)                                              \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::turbobc::detail::throw_check_failure(#expr, __FILE__, __LINE__,       \
                                             (message));                      \
    }                                                                         \
  } while (false)
