#include "common/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace turbobc {

std::string human_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> units = {"B", "KB", "MB", "GB",
                                                       "TB"};
  double v = static_cast<double>(bytes);
  std::size_t u = 0;
  while (v >= 1024.0 && u + 1 < units.size()) {
    v /= 1024.0;
    ++u;
  }
  char buf[48];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, units[u]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  }
  return buf;
}

std::string human_count(double value) {
  static constexpr std::array<const char*, 4> units = {"", "k", "M", "G"};
  double v = std::abs(value);
  std::size_t u = 0;
  while (v >= 1000.0 && u + 1 < units.size()) {
    v /= 1000.0;
    ++u;
  }
  if (value < 0) v = -v;
  char buf[48];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, units[u]);
  }
  return buf;
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace turbobc
