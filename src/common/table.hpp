// Column-aligned plain-text table printer.
//
// Every bench binary reproduces one of the paper's tables/figure series; this
// printer renders them with the same column headers the paper uses so the
// output can be compared side by side with the published numbers.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace turbobc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment, a header underline, and 2-space gutters.
  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace turbobc
