#include "common/cli.hpp"

#include <cerrno>
#include <cstdlib>

#include "common/error.hpp"

namespace turbobc {

CliArgs::CliArgs(int argc, const char* const* argv) {
  TBC_CHECK(argc >= 1, "argc must be at least 1");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string name = arg.substr(2);
      const auto eq = name.find('=');
      if (eq != std::string::npos) {
        options_[name.substr(0, eq)] = name.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[name] = argv[++i];
      } else {
        options_[name] = "1";  // bare flag
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  // Strict: the whole value must be one integer. Silent garbage-to-zero
  // here once turned "--seed 0x2A" into seed 0.
  errno = 0;
  char* end = nullptr;
  const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (it->second.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    throw UsageError("--" + name + " expects an integer, got '" + it->second +
                     "'");
  }
  return value;
}

std::int64_t CliArgs::get_count(const std::string& name,
                                std::int64_t fallback) const {
  if (!has(name)) return fallback;
  const std::int64_t value = get_int(name, fallback);
  if (value < 1) {
    throw UsageError("--" + name + " expects a positive count, got '" +
                     get(name, "") + "'");
  }
  return value;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (it->second.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    throw UsageError("--" + name + " expects a number, got '" + it->second +
                     "'");
  }
  return value;
}

}  // namespace turbobc
