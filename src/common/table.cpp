#include "common/table.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"

namespace turbobc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TBC_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  TBC_CHECK(cells.size() == headers_.size(),
            "row cell count must match header count");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace turbobc
