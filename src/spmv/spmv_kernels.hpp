// Simulated-GPU SpMV kernels: the three TurboBC variants of Section 3.3.
//
//  * scCOOC — one thread per nonzero (Algorithm 2 parallelized): loads
//    x(row_A(k)) with perfectly coalesced index reads and atomically
//    scatters into y(col_A(k)). Immune to per-vertex degree skew (no thread
//    ever loops), which is why the paper picks it for graphs with
//    mega-degree outliers (mawi-*, Table 2).
//  * scCSC — one thread per column (Algorithm 3 parallelized): the sigma
//    mask skips discovered columns, then the thread serially gathers its
//    column. Fast on regular graphs; degree skew turns into warp-level load
//    imbalance (the thread with the fat column stalls its warp).
//  * veCSC — one warp per column (Algorithm 4): lanes stride the column,
//    a shuffle reduction combines lane sums, lane 0 writes. Coalesced and
//    balanced within the column — the irregular-graph variant.
//
// Forward (BFS) kernels are masked by sigma == 0; backward (dependency)
// kernels are unmasked, and come in gather form (symmetric matrices,
// undirected graphs) and scatter form (directed graphs need out-neighbour
// sums through the same single stored structure — see DESIGN.md).
//
// The batched engine's MS-BFS kernels (spmm_forward_msbfs_*) are the SpGEMM
// view of the forward sweep over a boolean semiring: per-vertex 64-bit
// source-membership masks replace up-to-64 integer frontier vectors, so one
// edge traversal serves every source in the block with AND/OR/popcount word
// ops (DESIGN.md §10).
//
// All kernels are templated on the vector element type: the BFS stage runs
// on integers (sigma_t) and the dependency stage on doubles; the datatype
// ablation bench instantiates the float versions.
#pragma once

#include <bit>
#include <cstdint>

#include "gpusim/kernel.hpp"
#include "spmv/device_graph.hpp"

namespace turbobc::spmv {

/// Grid size for warp-per-column kernels: enough warps to fill the device,
/// columns handled with a grid stride.
inline std::uint64_t vecsc_grid_warps(const sim::Device& device, vidx_t n) {
  const auto full = static_cast<std::uint64_t>(
      device.props().sm_count * device.props().issue_slots_per_sm * 32);
  return std::min<std::uint64_t>(static_cast<std::uint64_t>(n), full);
}

// ---------------------------------------------------------------------------
// Forward (masked) kernels: y(v) = sum_{u in column v} x(u) where sigma(v)==0.
// `y` must be zeroed beforehand.
// ---------------------------------------------------------------------------

template <typename T>
void spmv_forward_sccooc(sim::Device& device, const DeviceCooc& g,
                         const sim::DeviceBuffer<T>& x,
                         sim::DeviceBuffer<T>& y) {
  // Algorithm 2 verbatim: no sigma mask inside the kernel — the paper masks
  // f in a separate step (Algorithm 1 lines 20-22), so on dense frontiers
  // every positive-x edge fires an atomic. That unmasked atomic stream is
  // also why the integer-vs-float datatype choice matters so much on this
  // variant (Section 3.4).
  sim::launch_scalar(
      device, "bfs_spmv_sccooc", static_cast<std::uint64_t>(g.m()),
      [&](sim::ThreadCtx& t) {
        const auto k = static_cast<std::size_t>(t.global_id());
        const vidx_t row = g.row_idx().load(t, k);
        const T xv = x.load(t, static_cast<std::size_t>(row));
        t.count_ops(1);
        if (xv > 0) {
          const vidx_t col = g.col_idx().load(t, k);
          y.atomic_add(t, static_cast<std::size_t>(col), xv);
        }
      });
}

template <typename T, typename M>
void spmv_forward_sccsc(sim::Device& device, const DeviceCsc& g,
                        const sim::DeviceBuffer<T>& x,
                        sim::DeviceBuffer<T>& y,
                        const sim::DeviceBuffer<M>& sigma) {
  sim::launch_scalar(
      device, "bfs_spmv_sccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto i = static_cast<std::size_t>(t.global_id());
        if (sigma.load(t, i) != 0) return;
        const dptr_t begin = g.col_ptr().load(t, i);
        const dptr_t end = g.col_ptr().load(t, i + 1);
        T sum = 0;
        for (dptr_t k = begin; k < end; ++k) {
          const vidx_t row = g.row_idx().load(t, static_cast<std::size_t>(k));
          sum += x.load(t, static_cast<std::size_t>(row));
          t.count_ops(1);
        }
        if (sum > 0) y.store(t, i, sum);
      });
}

template <typename T, typename M>
void spmv_forward_vecsc(sim::Device& device, const DeviceCsc& g,
                        const sim::DeviceBuffer<T>& x,
                        sim::DeviceBuffer<T>& y,
                        const sim::DeviceBuffer<M>& sigma) {
  const vidx_t n = g.n();
  sim::launch_warp(
      device, "bfs_spmv_vecsc", vecsc_grid_warps(device, n),
      [&](sim::WarpCtx& w) {
        for (auto col = static_cast<vidx_t>(w.warp_id()); col < n;
             col = static_cast<vidx_t>(col + w.num_warps())) {
          if (w.broadcast_load(sigma, static_cast<std::size_t>(col)) != 0) {
            continue;
          }
          const dptr_t begin =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col));
          const dptr_t end =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col) + 1);
          std::array<T, sim::kWarpSize> sum{};
          for (dptr_t base = begin; base < end; base += sim::kWarpSize) {
            std::uint32_t mask = 0;
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if (base + lane < end) mask |= 1u << lane;
            }
            const auto rows = w.gather(g.row_idx(), mask, [&](int lane) {
              return static_cast<std::size_t>(base + lane);
            });
            const auto vals = w.gather(x, mask, [&](int lane) {
              return static_cast<std::size_t>(rows[lane]);
            });
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if ((mask >> lane) & 1u) sum[lane] += vals[lane];
            }
            w.count_ops(1);
          }
          const T total = w.reduce_add(sum);
          if (total > 0) {
            w.scatter(y, 0x1u,
                      [&](int) { return static_cast<std::size_t>(col); },
                      [&](int) { return total; });
          }
        }
      });
}

// ---------------------------------------------------------------------------
// Pull (direction-optimizing) forward kernels.
//
// A pull step inverts the frontier test: every UNDISCOVERED column scans its
// own CSC column (its in-neighbours), probes a dense frontier bitmap, and
// folds the frontier values it finds — no atomics, no frontier-sized value
// reads for non-frontier in-neighbours. The bitmap is n/32 words, small
// enough to stay L2-resident, which is where the modeled win on dense
// frontiers comes from.
//
// Bit-identity contract: the push scCSC kernel computes
//   sum over the column, in k order, of f(row_k)
// where f is exactly 0 off the frontier. The pull kernel folds only the
// bitmap-set rows, in the SAME k order — skipping an exact +0 leaves every
// partial sum bit-identical, so f_t (and hence S and sigma) match the push
// sweep bit for bit. The veCSC pair preserves per-lane partial sums the
// same way.
// ---------------------------------------------------------------------------

/// Number of 32-bit words in a dense frontier bitmap over n vertices.
inline std::uint64_t frontier_bitmap_words(vidx_t n) {
  return (static_cast<std::uint64_t>(n) + 31) / 32;
}

/// Rebuild the dense bitmap from the sparse-by-value frontier vector f:
/// one thread per 32-bit word, each reading its 32 consecutive f values
/// (fully coalesced) and composing the word — no atomics, deterministic.
/// This is the bitmap<->sparse conversion pass the cost model charges per
/// pull level.
template <typename T>
void frontier_to_bitmap(sim::Device& device, const sim::DeviceBuffer<T>& f,
                        vidx_t n, sim::DeviceBuffer<std::uint32_t>& bitmap) {
  sim::launch_scalar(
      device, "frontier_to_bitmap", frontier_bitmap_words(n),
      [&](sim::ThreadCtx& t) {
        const auto w = static_cast<std::size_t>(t.global_id());
        const std::size_t base = w * 32;
        std::uint32_t word = 0;
        for (std::size_t b = 0; b < 32; ++b) {
          const std::size_t v = base + b;
          if (v >= static_cast<std::size_t>(n)) break;
          if (f.load(t, v) != 0) word |= 1u << b;
        }
        t.count_ops(1);
        bitmap.store(t, w, word);
      });
}

template <typename T, typename M>
void spmv_forward_pull_sccsc(sim::Device& device, const DeviceCsc& g,
                             const sim::DeviceBuffer<T>& x,
                             const sim::DeviceBuffer<std::uint32_t>& bitmap,
                             sim::DeviceBuffer<T>& y,
                             const sim::DeviceBuffer<M>& sigma) {
  sim::launch_scalar(
      device, "bfs_spmv_pull_sccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto i = static_cast<std::size_t>(t.global_id());
        if (sigma.load(t, i) != 0) return;
        const dptr_t begin = g.col_ptr().load(t, i);
        const dptr_t end = g.col_ptr().load(t, i + 1);
        T sum = 0;
        for (dptr_t k = begin; k < end; ++k) {
          const vidx_t row = g.row_idx().load(t, static_cast<std::size_t>(k));
          const std::uint32_t word =
              bitmap.load(t, static_cast<std::size_t>(row) / 32);
          t.count_ops(1);
          if ((word >> (static_cast<std::uint32_t>(row) & 31u)) & 1u) {
            sum += x.load(t, static_cast<std::size_t>(row));
          }
        }
        if (sum > 0) y.store(t, i, sum);
      });
}

template <typename T, typename M>
void spmv_forward_pull_vecsc(sim::Device& device, const DeviceCsc& g,
                             const sim::DeviceBuffer<T>& x,
                             const sim::DeviceBuffer<std::uint32_t>& bitmap,
                             sim::DeviceBuffer<T>& y,
                             const sim::DeviceBuffer<M>& sigma) {
  const vidx_t n = g.n();
  sim::launch_warp(
      device, "bfs_spmv_pull_vecsc", vecsc_grid_warps(device, n),
      [&](sim::WarpCtx& w) {
        for (auto col = static_cast<vidx_t>(w.warp_id()); col < n;
             col = static_cast<vidx_t>(col + w.num_warps())) {
          if (w.broadcast_load(sigma, static_cast<std::size_t>(col)) != 0) {
            continue;
          }
          const dptr_t begin =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col));
          const dptr_t end =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col) + 1);
          std::array<T, sim::kWarpSize> sum{};
          for (dptr_t base = begin; base < end; base += sim::kWarpSize) {
            std::uint32_t mask = 0;
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if (base + lane < end) mask |= 1u << lane;
            }
            const auto rows = w.gather(g.row_idx(), mask, [&](int lane) {
              return static_cast<std::size_t>(base + lane);
            });
            const auto words = w.gather(bitmap, mask, [&](int lane) {
              return static_cast<std::size_t>(rows[lane]) / 32;
            });
            // Frontier-lane mask: only lanes whose row's bit is set load x.
            std::uint32_t fmask = 0;
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if (((mask >> lane) & 1u) != 0 &&
                  ((words[lane] >>
                    (static_cast<std::uint32_t>(rows[lane]) & 31u)) &
                   1u) != 0) {
                fmask |= 1u << lane;
              }
            }
            const auto vals = w.gather(x, fmask, [&](int lane) {
              return static_cast<std::size_t>(rows[lane]);
            });
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if ((fmask >> lane) & 1u) sum[lane] += vals[lane];
            }
            w.count_ops(1);
          }
          const T total = w.reduce_add(sum);
          if (total > 0) {
            w.scatter(y, 0x1u,
                      [&](int) { return static_cast<std::size_t>(col); },
                      [&](int) { return total; });
          }
        }
      });
}

// ---------------------------------------------------------------------------
// MS-BFS (multi-source) forward kernels for the batched engine.
//
// State per vertex v: one 64-bit frontier word F(v) (bit j set iff v is on
// source j's current frontier), one visited word V(v), and one next-frontier
// word Fn(v). The per-source shortest-path counts live in the interleaved
// sigma matrix (slot v*k + j) — and because a vertex newly discovered at
// this level had sigma == 0 before, sigma doubles as the frontier VALUE
// array: f(u, j) == sigma(u, j) for every frontier bit. The sweep therefore
// needs no f/f_t matrices at all; three n-word mask arrays replace 2nk
// words of per-source frontiers.
//
// One fused kernel per level and column v:
//   w_e = F(row_e) & ~V(v)          one word op per edge, all k sources
//   m   = OR over edges of w_e      new-lane mask for v
//   sums[j] += sigma(row_e, j)      only for set bits j of w_e, in edge
//                                   order — the same nonzero-skipping fold
//                                   as the per-source kernels, so sigma is
//                                   bit-identical per source
//   commit: Fn(v) = m, V(v) |= m, sigma/S/flags stored for bits of m.
//
// Races: thread v is the only writer of row v in Fn/V/sigma/S; flag stores
// are same-value; the degree counters are exact integer atomics. The pull
// variant probes the any-lane n/32 frontier bitmap (bit v iff F(v) != 0)
// before touching F — skipped edges have F == 0 and contribute nothing, so
// push and pull commit identical state level by level.
// ---------------------------------------------------------------------------

/// Rebuild the any-lane frontier bitmap from the packed mask array: bit v
/// set iff F(v) != 0. One thread per 32-bit word, fully coalesced reads.
inline void msbfs_frontier_to_bitmap(
    sim::Device& device, const sim::DeviceBuffer<std::uint64_t>& F, vidx_t n,
    sim::DeviceBuffer<std::uint32_t>& bitmap) {
  sim::launch_scalar(
      device, "msbfs_to_bitmap", frontier_bitmap_words(n),
      [&](sim::ThreadCtx& t) {
        const auto w = static_cast<std::size_t>(t.global_id());
        const std::size_t base = w * 32;
        std::uint32_t word = 0;
        for (std::size_t b = 0; b < 32; ++b) {
          const std::size_t v = base + b;
          if (v >= static_cast<std::size_t>(n)) break;
          if (F.load(t, v) != 0) word |= 1u << b;
        }
        t.count_word_ops(1);
        bitmap.store(t, w, word);
      });
}

/// Shared commit tail of the push and pull MS-BFS kernels: store the new
/// lane mask `m` for column v, mark visited, and write sigma / depth /
/// per-lane convergence flags for each newly set bit. `count_degrees`
/// enables the direction-switch counters cflags[k] (new any-lane vertices)
/// and cflags[k+1] (their in-degrees).
template <typename T>
inline void msbfs_column_commit(
    sim::ThreadCtx& t, std::size_t v, int k, vidx_t depth,
    sim::DeviceBuffer<std::uint64_t>& V, sim::DeviceBuffer<std::uint64_t>& Fn,
    sim::DeviceBuffer<T>& sigma, sim::DeviceBuffer<std::int32_t>& S,
    sim::DeviceBuffer<std::int32_t>& cflags, bool count_degrees,
    std::uint64_t degree, std::uint64_t vis, std::uint64_t m, const T* sums) {
  if (m == 0) return;
  Fn.store(t, v, m);
  V.store(t, v, vis | m);
  t.count_word_ops(2);
  const auto kk = static_cast<std::size_t>(k);
  for (std::uint64_t bits = m; bits != 0; bits &= bits - 1) {
    const auto j = static_cast<std::size_t>(std::countr_zero(bits));
    sigma.store(t, v * kk + j, sums[j]);
    S.store(t, v * kk + j, static_cast<std::int32_t>(depth));
    cflags.store(t, j, 1);
  }
  if (count_degrees) {
    cflags.atomic_add(t, kk, 1);
    cflags.atomic_add(t, kk + 1, static_cast<std::int32_t>(degree));
  }
}

/// Push MS-BFS level: one thread per column v, serial scan of v's in-edges;
/// every edge costs one 8-byte mask load + one word op for all k sources.
template <typename T>
void spmm_forward_msbfs_sccsc(
    sim::Device& device, const DeviceCsc& g, int k, std::uint64_t full,
    vidx_t depth, const sim::DeviceBuffer<std::uint64_t>& F,
    sim::DeviceBuffer<std::uint64_t>& V, sim::DeviceBuffer<std::uint64_t>& Fn,
    sim::DeviceBuffer<T>& sigma, sim::DeviceBuffer<std::int32_t>& S,
    sim::DeviceBuffer<std::int32_t>& cflags, bool count_degrees) {
  const auto kk = static_cast<std::size_t>(k);
  sim::launch_scalar(
      device, "bfs_spmm_msbfs_sccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto v = static_cast<std::size_t>(t.global_id());
        const std::uint64_t vis = V.load(t, v);
        t.count_word_ops(1);
        if ((vis & full) == full) return;  // all lanes already discovered
        const dptr_t begin = g.col_ptr().load(t, v);
        const dptr_t end = g.col_ptr().load(t, v + 1);
        T sums[64] = {};
        std::uint64_t m = 0;
        for (dptr_t e = begin; e < end; ++e) {
          const vidx_t row = g.row_idx().load(t, static_cast<std::size_t>(e));
          const std::uint64_t w =
              F.load(t, static_cast<std::size_t>(row)) & ~vis;
          t.count_word_ops(1);
          if (w == 0) continue;
          m |= w;
          for (std::uint64_t bits = w; bits != 0; bits &= bits - 1) {
            const auto j = static_cast<std::size_t>(
                std::countr_zero(bits));
            sums[j] += sigma.load(
                t, static_cast<std::size_t>(row) * kk + j);
          }
        }
        msbfs_column_commit(t, v, k, depth, V, Fn, sigma, S, cflags,
                            count_degrees,
                            static_cast<std::uint64_t>(end - begin), vis, m,
                            sums);
      });
}

/// Pull MS-BFS level: identical fold, but each edge first probes the
/// any-lane frontier bitmap (4-byte word, L2-resident) and touches the
/// 8-byte mask + sigma values only on a hit — the direction-optimized form
/// for levels where most in-neighbours are off every lane's frontier.
template <typename T>
void spmm_forward_msbfs_pull_sccsc(
    sim::Device& device, const DeviceCsc& g, int k, std::uint64_t full,
    vidx_t depth, const sim::DeviceBuffer<std::uint64_t>& F,
    const sim::DeviceBuffer<std::uint32_t>& bitmap,
    sim::DeviceBuffer<std::uint64_t>& V, sim::DeviceBuffer<std::uint64_t>& Fn,
    sim::DeviceBuffer<T>& sigma, sim::DeviceBuffer<std::int32_t>& S,
    sim::DeviceBuffer<std::int32_t>& cflags, bool count_degrees) {
  const auto kk = static_cast<std::size_t>(k);
  sim::launch_scalar(
      device, "bfs_spmm_msbfs_pull_sccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto v = static_cast<std::size_t>(t.global_id());
        const std::uint64_t vis = V.load(t, v);
        t.count_word_ops(1);
        if ((vis & full) == full) return;
        const dptr_t begin = g.col_ptr().load(t, v);
        const dptr_t end = g.col_ptr().load(t, v + 1);
        T sums[64] = {};
        std::uint64_t m = 0;
        for (dptr_t e = begin; e < end; ++e) {
          const vidx_t row = g.row_idx().load(t, static_cast<std::size_t>(e));
          const std::uint32_t word =
              bitmap.load(t, static_cast<std::size_t>(row) / 32);
          t.count_ops(1);
          if (((word >> (static_cast<std::uint32_t>(row) & 31u)) & 1u) == 0) {
            continue;
          }
          const std::uint64_t w =
              F.load(t, static_cast<std::size_t>(row)) & ~vis;
          t.count_word_ops(1);
          if (w == 0) continue;
          m |= w;
          for (std::uint64_t bits = w; bits != 0; bits &= bits - 1) {
            const auto j = static_cast<std::size_t>(
                std::countr_zero(bits));
            sums[j] += sigma.load(
                t, static_cast<std::size_t>(row) * kk + j);
          }
        }
        msbfs_column_commit(t, v, k, depth, V, Fn, sigma, S, cflags,
                            count_degrees,
                            static_cast<std::uint64_t>(end - begin), vis, m,
                            sums);
      });
}

/// Distributed push MS-BFS level over a column shard: the same fold as
/// spmm_forward_msbfs_sccsc, except the frontier masks (Fx) and the frontier
/// sigma values (Xs, slot row * k + j) are read from the EXCHANGED
/// full-length operands — global row space, assembled by the partitioned
/// engine's per-level all_gather — while visited/next/sigma/S commit to the
/// shard's LOCAL column slice. A frontier vertex's value IS its sigma, so
/// one 8-byte mask word plus the packed new values carry all k lanes across
/// the interconnect per level. Per-column edge order equals the single
/// device's, so the committed sigma matrix is bit-identical shard by shard.
template <typename T>
void spmm_forward_msbfs_exch_sccsc(
    sim::Device& device, const DeviceCsc& g, int k, std::uint64_t full,
    vidx_t depth, const sim::DeviceBuffer<std::uint64_t>& Fx,
    const sim::DeviceBuffer<T>& Xs, sim::DeviceBuffer<std::uint64_t>& V,
    sim::DeviceBuffer<std::uint64_t>& Fn, sim::DeviceBuffer<T>& sigma,
    sim::DeviceBuffer<std::int32_t>& S,
    sim::DeviceBuffer<std::int32_t>& cflags) {
  const auto kk = static_cast<std::size_t>(k);
  sim::launch_scalar(
      device, "bfs_spmm_msbfs_sccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto v = static_cast<std::size_t>(t.global_id());
        const std::uint64_t vis = V.load(t, v);
        t.count_word_ops(1);
        if ((vis & full) == full) return;
        const dptr_t begin = g.col_ptr().load(t, v);
        const dptr_t end = g.col_ptr().load(t, v + 1);
        T sums[64] = {};
        std::uint64_t m = 0;
        for (dptr_t e = begin; e < end; ++e) {
          const vidx_t row = g.row_idx().load(t, static_cast<std::size_t>(e));
          const std::uint64_t w =
              Fx.load(t, static_cast<std::size_t>(row)) & ~vis;
          t.count_word_ops(1);
          if (w == 0) continue;
          m |= w;
          for (std::uint64_t bits = w; bits != 0; bits &= bits - 1) {
            const auto j = static_cast<std::size_t>(
                std::countr_zero(bits));
            sums[j] += Xs.load(t, static_cast<std::size_t>(row) * kk + j);
          }
        }
        msbfs_column_commit(t, v, k, depth, V, Fn, sigma, S, cflags,
                            /*count_degrees=*/false,
                            static_cast<std::uint64_t>(end - begin), vis, m,
                            sums);
      });
}

// ---------------------------------------------------------------------------
// Backward (unmasked) kernels.
// Gather form: y(v) += sum over column v of x(row). Correct out-neighbour
// sum only when the matrix is symmetric (undirected graphs).
// ---------------------------------------------------------------------------

template <typename T>
void spmv_backward_gather_sccsc(sim::Device& device, const DeviceCsc& g,
                                const sim::DeviceBuffer<T>& x,
                                sim::DeviceBuffer<T>& y) {
  sim::launch_scalar(
      device, "dep_spmv_sccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto i = static_cast<std::size_t>(t.global_id());
        const dptr_t begin = g.col_ptr().load(t, i);
        const dptr_t end = g.col_ptr().load(t, i + 1);
        T sum = 0;
        for (dptr_t k = begin; k < end; ++k) {
          const vidx_t row = g.row_idx().load(t, static_cast<std::size_t>(k));
          sum += x.load(t, static_cast<std::size_t>(row));
          t.count_ops(1);
        }
        if (sum != 0) y.store(t, i, sum);
      });
}

template <typename T>
void spmv_backward_gather_vecsc(sim::Device& device, const DeviceCsc& g,
                                const sim::DeviceBuffer<T>& x,
                                sim::DeviceBuffer<T>& y) {
  const vidx_t n = g.n();
  sim::launch_warp(
      device, "dep_spmv_vecsc", vecsc_grid_warps(device, n),
      [&](sim::WarpCtx& w) {
        for (auto col = static_cast<vidx_t>(w.warp_id()); col < n;
             col = static_cast<vidx_t>(col + w.num_warps())) {
          const dptr_t begin =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col));
          const dptr_t end =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col) + 1);
          std::array<T, sim::kWarpSize> sum{};
          for (dptr_t base = begin; base < end; base += sim::kWarpSize) {
            std::uint32_t mask = 0;
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if (base + lane < end) mask |= 1u << lane;
            }
            const auto rows = w.gather(g.row_idx(), mask, [&](int lane) {
              return static_cast<std::size_t>(base + lane);
            });
            const auto vals = w.gather(x, mask, [&](int lane) {
              return static_cast<std::size_t>(rows[lane]);
            });
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if ((mask >> lane) & 1u) sum[lane] += vals[lane];
            }
            w.count_ops(1);
          }
          const T total = w.reduce_add(sum);
          if (total != 0) {
            w.scatter(y, 0x1u,
                      [&](int) { return static_cast<std::size_t>(col); },
                      [&](int) { return total; });
          }
        }
      });
}

template <typename T>
void spmv_backward_gather_sccooc(sim::Device& device, const DeviceCooc& g,
                                 const sim::DeviceBuffer<T>& x,
                                 sim::DeviceBuffer<T>& y) {
  sim::launch_scalar(
      device, "dep_spmv_sccooc", static_cast<std::uint64_t>(g.m()),
      [&](sim::ThreadCtx& t) {
        const auto k = static_cast<std::size_t>(t.global_id());
        const vidx_t row = g.row_idx().load(t, k);
        const T xv = x.load(t, static_cast<std::size_t>(row));
        t.count_ops(1);
        if (xv != 0) {
          const vidx_t col = g.col_idx().load(t, k);
          y.atomic_add(t, static_cast<std::size_t>(col), xv);
        }
      });
}

// ---------------------------------------------------------------------------
// Pulled backward gather: the dependency-stage twin of the pull forward
// kernels. delta_u is nonzero only on the level-d frontier, so each column
// probes the same n/32 dense bitmap (bit v iff delta_u(v) != 0, rebuilt per
// level with frontier_to_bitmap) before loading the 4/8-byte value. The fold
// skips only exact +0 terms in the same edge order as the unmasked gather —
// delta_u >= 0, and x + 0.0 == x bitwise for non-negative x, so delta_ut is
// bit-identical to the push (unmasked) backward sweep.
// ---------------------------------------------------------------------------

template <typename T>
void spmv_backward_pull_sccsc(sim::Device& device, const DeviceCsc& g,
                              const sim::DeviceBuffer<T>& x,
                              const sim::DeviceBuffer<std::uint32_t>& bitmap,
                              sim::DeviceBuffer<T>& y) {
  sim::launch_scalar(
      device, "dep_spmv_pull_sccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto i = static_cast<std::size_t>(t.global_id());
        const dptr_t begin = g.col_ptr().load(t, i);
        const dptr_t end = g.col_ptr().load(t, i + 1);
        T sum = 0;
        for (dptr_t k = begin; k < end; ++k) {
          const vidx_t row = g.row_idx().load(t, static_cast<std::size_t>(k));
          const std::uint32_t word =
              bitmap.load(t, static_cast<std::size_t>(row) / 32);
          t.count_ops(1);
          if ((word >> (static_cast<std::uint32_t>(row) & 31u)) & 1u) {
            sum += x.load(t, static_cast<std::size_t>(row));
          }
        }
        if (sum != 0) y.store(t, i, sum);
      });
}

template <typename T>
void spmv_backward_pull_vecsc(sim::Device& device, const DeviceCsc& g,
                              const sim::DeviceBuffer<T>& x,
                              const sim::DeviceBuffer<std::uint32_t>& bitmap,
                              sim::DeviceBuffer<T>& y) {
  const vidx_t n = g.n();
  sim::launch_warp(
      device, "dep_spmv_pull_vecsc", vecsc_grid_warps(device, n),
      [&](sim::WarpCtx& w) {
        for (auto col = static_cast<vidx_t>(w.warp_id()); col < n;
             col = static_cast<vidx_t>(col + w.num_warps())) {
          const dptr_t begin =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col));
          const dptr_t end =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col) + 1);
          std::array<T, sim::kWarpSize> sum{};
          for (dptr_t base = begin; base < end; base += sim::kWarpSize) {
            std::uint32_t mask = 0;
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if (base + lane < end) mask |= 1u << lane;
            }
            const auto rows = w.gather(g.row_idx(), mask, [&](int lane) {
              return static_cast<std::size_t>(base + lane);
            });
            const auto words = w.gather(bitmap, mask, [&](int lane) {
              return static_cast<std::size_t>(rows[lane]) / 32;
            });
            std::uint32_t fmask = 0;
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if (((mask >> lane) & 1u) != 0 &&
                  ((words[lane] >>
                    (static_cast<std::uint32_t>(rows[lane]) & 31u)) &
                   1u) != 0) {
                fmask |= 1u << lane;
              }
            }
            const auto vals = w.gather(x, fmask, [&](int lane) {
              return static_cast<std::size_t>(rows[lane]);
            });
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if ((fmask >> lane) & 1u) sum[lane] += vals[lane];
            }
            w.count_ops(1);
          }
          const T total = w.reduce_add(sum);
          if (total != 0) {
            w.scatter(y, 0x1u,
                      [&](int) { return static_cast<std::size_t>(col); },
                      [&](int) { return total; });
          }
        }
      });
}

// ---------------------------------------------------------------------------
// Scatter form: y(row) += x(col) through the same stored structure — the
// transposed product, used by the backward stage on directed graphs.
// ---------------------------------------------------------------------------

template <typename T>
void spmv_backward_scatter_sccsc(sim::Device& device, const DeviceCsc& g,
                                 const sim::DeviceBuffer<T>& x,
                                 sim::DeviceBuffer<T>& y) {
  sim::launch_scalar(
      device, "dep_spmv_sccsc_scatter", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto w = static_cast<std::size_t>(t.global_id());
        const T xv = x.load(t, w);
        if (xv == 0) return;
        const dptr_t begin = g.col_ptr().load(t, w);
        const dptr_t end = g.col_ptr().load(t, w + 1);
        for (dptr_t k = begin; k < end; ++k) {
          const vidx_t row = g.row_idx().load(t, static_cast<std::size_t>(k));
          y.atomic_add(t, static_cast<std::size_t>(row), xv);
          t.count_ops(1);
        }
      });
}

template <typename T>
void spmv_backward_scatter_vecsc(sim::Device& device, const DeviceCsc& g,
                                 const sim::DeviceBuffer<T>& x,
                                 sim::DeviceBuffer<T>& y) {
  const vidx_t n = g.n();
  sim::launch_warp(
      device, "dep_spmv_vecsc_scatter", vecsc_grid_warps(device, n),
      [&](sim::WarpCtx& w) {
        for (auto col = static_cast<vidx_t>(w.warp_id()); col < n;
             col = static_cast<vidx_t>(col + w.num_warps())) {
          const T xv = w.broadcast_load(x, static_cast<std::size_t>(col));
          if (xv == 0) continue;
          const dptr_t begin =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col));
          const dptr_t end =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col) + 1);
          for (dptr_t base = begin; base < end; base += sim::kWarpSize) {
            std::uint32_t mask = 0;
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if (base + lane < end) mask |= 1u << lane;
            }
            const auto rows = w.gather(g.row_idx(), mask, [&](int lane) {
              return static_cast<std::size_t>(base + lane);
            });
            w.atomic_add(y, mask,
                         [&](int lane) {
                           return static_cast<std::size_t>(rows[lane]);
                         },
                         [&](int) { return xv; });
          }
        }
      });
}

template <typename T>
void spmv_backward_scatter_sccooc(sim::Device& device, const DeviceCooc& g,
                                  const sim::DeviceBuffer<T>& x,
                                  sim::DeviceBuffer<T>& y) {
  sim::launch_scalar(
      device, "dep_spmv_sccooc_scatter", static_cast<std::uint64_t>(g.m()),
      [&](sim::ThreadCtx& t) {
        const auto k = static_cast<std::size_t>(t.global_id());
        const vidx_t col = g.col_idx().load(t, k);
        const T xv = x.load(t, static_cast<std::size_t>(col));
        t.count_ops(1);
        if (xv != 0) {
          const vidx_t row = g.row_idx().load(t, k);
          y.atomic_add(t, static_cast<std::size_t>(row), xv);
        }
      });
}

}  // namespace turbobc::spmv
