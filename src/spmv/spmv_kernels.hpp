// Simulated-GPU SpMV kernels: the three TurboBC variants of Section 3.3.
//
//  * scCOOC — one thread per nonzero (Algorithm 2 parallelized): loads
//    x(row_A(k)) with perfectly coalesced index reads and atomically
//    scatters into y(col_A(k)). Immune to per-vertex degree skew (no thread
//    ever loops), which is why the paper picks it for graphs with
//    mega-degree outliers (mawi-*, Table 2).
//  * scCSC — one thread per column (Algorithm 3 parallelized): the sigma
//    mask skips discovered columns, then the thread serially gathers its
//    column. Fast on regular graphs; degree skew turns into warp-level load
//    imbalance (the thread with the fat column stalls its warp).
//  * veCSC — one warp per column (Algorithm 4): lanes stride the column,
//    a shuffle reduction combines lane sums, lane 0 writes. Coalesced and
//    balanced within the column — the irregular-graph variant.
//
// Forward (BFS) kernels are masked by sigma == 0; backward (dependency)
// kernels are unmasked, and come in gather form (symmetric matrices,
// undirected graphs) and scatter form (directed graphs need out-neighbour
// sums through the same single stored structure — see DESIGN.md).
//
// All kernels are templated on the vector element type: the BFS stage runs
// on integers (sigma_t) and the dependency stage on doubles; the datatype
// ablation bench instantiates the float versions.
#pragma once

#include <cstdint>

#include "gpusim/kernel.hpp"
#include "spmv/device_graph.hpp"

namespace turbobc::spmv {

/// Grid size for warp-per-column kernels: enough warps to fill the device,
/// columns handled with a grid stride.
inline std::uint64_t vecsc_grid_warps(const sim::Device& device, vidx_t n) {
  const auto full = static_cast<std::uint64_t>(
      device.props().sm_count * device.props().issue_slots_per_sm * 32);
  return std::min<std::uint64_t>(static_cast<std::uint64_t>(n), full);
}

// ---------------------------------------------------------------------------
// Forward (masked) kernels: y(v) = sum_{u in column v} x(u) where sigma(v)==0.
// `y` must be zeroed beforehand.
// ---------------------------------------------------------------------------

template <typename T>
void spmv_forward_sccooc(sim::Device& device, const DeviceCooc& g,
                         const sim::DeviceBuffer<T>& x,
                         sim::DeviceBuffer<T>& y) {
  // Algorithm 2 verbatim: no sigma mask inside the kernel — the paper masks
  // f in a separate step (Algorithm 1 lines 20-22), so on dense frontiers
  // every positive-x edge fires an atomic. That unmasked atomic stream is
  // also why the integer-vs-float datatype choice matters so much on this
  // variant (Section 3.4).
  sim::launch_scalar(
      device, "bfs_spmv_sccooc", static_cast<std::uint64_t>(g.m()),
      [&](sim::ThreadCtx& t) {
        const auto k = static_cast<std::size_t>(t.global_id());
        const vidx_t row = g.row_idx().load(t, k);
        const T xv = x.load(t, static_cast<std::size_t>(row));
        t.count_ops(1);
        if (xv > 0) {
          const vidx_t col = g.col_idx().load(t, k);
          y.atomic_add(t, static_cast<std::size_t>(col), xv);
        }
      });
}

template <typename T, typename M>
void spmv_forward_sccsc(sim::Device& device, const DeviceCsc& g,
                        const sim::DeviceBuffer<T>& x,
                        sim::DeviceBuffer<T>& y,
                        const sim::DeviceBuffer<M>& sigma) {
  sim::launch_scalar(
      device, "bfs_spmv_sccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto i = static_cast<std::size_t>(t.global_id());
        if (sigma.load(t, i) != 0) return;
        const dptr_t begin = g.col_ptr().load(t, i);
        const dptr_t end = g.col_ptr().load(t, i + 1);
        T sum = 0;
        for (dptr_t k = begin; k < end; ++k) {
          const vidx_t row = g.row_idx().load(t, static_cast<std::size_t>(k));
          sum += x.load(t, static_cast<std::size_t>(row));
          t.count_ops(1);
        }
        if (sum > 0) y.store(t, i, sum);
      });
}

template <typename T, typename M>
void spmv_forward_vecsc(sim::Device& device, const DeviceCsc& g,
                        const sim::DeviceBuffer<T>& x,
                        sim::DeviceBuffer<T>& y,
                        const sim::DeviceBuffer<M>& sigma) {
  const vidx_t n = g.n();
  sim::launch_warp(
      device, "bfs_spmv_vecsc", vecsc_grid_warps(device, n),
      [&](sim::WarpCtx& w) {
        for (auto col = static_cast<vidx_t>(w.warp_id()); col < n;
             col = static_cast<vidx_t>(col + w.num_warps())) {
          if (w.broadcast_load(sigma, static_cast<std::size_t>(col)) != 0) {
            continue;
          }
          const dptr_t begin =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col));
          const dptr_t end =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col) + 1);
          std::array<T, sim::kWarpSize> sum{};
          for (dptr_t base = begin; base < end; base += sim::kWarpSize) {
            std::uint32_t mask = 0;
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if (base + lane < end) mask |= 1u << lane;
            }
            const auto rows = w.gather(g.row_idx(), mask, [&](int lane) {
              return static_cast<std::size_t>(base + lane);
            });
            const auto vals = w.gather(x, mask, [&](int lane) {
              return static_cast<std::size_t>(rows[lane]);
            });
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if ((mask >> lane) & 1u) sum[lane] += vals[lane];
            }
            w.count_ops(1);
          }
          const T total = w.reduce_add(sum);
          if (total > 0) {
            w.scatter(y, 0x1u,
                      [&](int) { return static_cast<std::size_t>(col); },
                      [&](int) { return total; });
          }
        }
      });
}

// ---------------------------------------------------------------------------
// Pull (direction-optimizing) forward kernels.
//
// A pull step inverts the frontier test: every UNDISCOVERED column scans its
// own CSC column (its in-neighbours), probes a dense frontier bitmap, and
// folds the frontier values it finds — no atomics, no frontier-sized value
// reads for non-frontier in-neighbours. The bitmap is n/32 words, small
// enough to stay L2-resident, which is where the modeled win on dense
// frontiers comes from.
//
// Bit-identity contract: the push scCSC kernel computes
//   sum over the column, in k order, of f(row_k)
// where f is exactly 0 off the frontier. The pull kernel folds only the
// bitmap-set rows, in the SAME k order — skipping an exact +0 leaves every
// partial sum bit-identical, so f_t (and hence S and sigma) match the push
// sweep bit for bit. The veCSC pair preserves per-lane partial sums the
// same way.
// ---------------------------------------------------------------------------

/// Number of 32-bit words in a dense frontier bitmap over n vertices.
inline std::uint64_t frontier_bitmap_words(vidx_t n) {
  return (static_cast<std::uint64_t>(n) + 31) / 32;
}

/// Rebuild the dense bitmap from the sparse-by-value frontier vector f:
/// one thread per 32-bit word, each reading its 32 consecutive f values
/// (fully coalesced) and composing the word — no atomics, deterministic.
/// This is the bitmap<->sparse conversion pass the cost model charges per
/// pull level.
template <typename T>
void frontier_to_bitmap(sim::Device& device, const sim::DeviceBuffer<T>& f,
                        vidx_t n, sim::DeviceBuffer<std::uint32_t>& bitmap) {
  sim::launch_scalar(
      device, "frontier_to_bitmap", frontier_bitmap_words(n),
      [&](sim::ThreadCtx& t) {
        const auto w = static_cast<std::size_t>(t.global_id());
        const std::size_t base = w * 32;
        std::uint32_t word = 0;
        for (std::size_t b = 0; b < 32; ++b) {
          const std::size_t v = base + b;
          if (v >= static_cast<std::size_t>(n)) break;
          if (f.load(t, v) != 0) word |= 1u << b;
        }
        t.count_ops(1);
        bitmap.store(t, w, word);
      });
}

template <typename T, typename M>
void spmv_forward_pull_sccsc(sim::Device& device, const DeviceCsc& g,
                             const sim::DeviceBuffer<T>& x,
                             const sim::DeviceBuffer<std::uint32_t>& bitmap,
                             sim::DeviceBuffer<T>& y,
                             const sim::DeviceBuffer<M>& sigma) {
  sim::launch_scalar(
      device, "bfs_spmv_pull_sccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto i = static_cast<std::size_t>(t.global_id());
        if (sigma.load(t, i) != 0) return;
        const dptr_t begin = g.col_ptr().load(t, i);
        const dptr_t end = g.col_ptr().load(t, i + 1);
        T sum = 0;
        for (dptr_t k = begin; k < end; ++k) {
          const vidx_t row = g.row_idx().load(t, static_cast<std::size_t>(k));
          const std::uint32_t word =
              bitmap.load(t, static_cast<std::size_t>(row) / 32);
          t.count_ops(1);
          if ((word >> (static_cast<std::uint32_t>(row) & 31u)) & 1u) {
            sum += x.load(t, static_cast<std::size_t>(row));
          }
        }
        if (sum > 0) y.store(t, i, sum);
      });
}

template <typename T, typename M>
void spmv_forward_pull_vecsc(sim::Device& device, const DeviceCsc& g,
                             const sim::DeviceBuffer<T>& x,
                             const sim::DeviceBuffer<std::uint32_t>& bitmap,
                             sim::DeviceBuffer<T>& y,
                             const sim::DeviceBuffer<M>& sigma) {
  const vidx_t n = g.n();
  sim::launch_warp(
      device, "bfs_spmv_pull_vecsc", vecsc_grid_warps(device, n),
      [&](sim::WarpCtx& w) {
        for (auto col = static_cast<vidx_t>(w.warp_id()); col < n;
             col = static_cast<vidx_t>(col + w.num_warps())) {
          if (w.broadcast_load(sigma, static_cast<std::size_t>(col)) != 0) {
            continue;
          }
          const dptr_t begin =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col));
          const dptr_t end =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col) + 1);
          std::array<T, sim::kWarpSize> sum{};
          for (dptr_t base = begin; base < end; base += sim::kWarpSize) {
            std::uint32_t mask = 0;
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if (base + lane < end) mask |= 1u << lane;
            }
            const auto rows = w.gather(g.row_idx(), mask, [&](int lane) {
              return static_cast<std::size_t>(base + lane);
            });
            const auto words = w.gather(bitmap, mask, [&](int lane) {
              return static_cast<std::size_t>(rows[lane]) / 32;
            });
            // Frontier-lane mask: only lanes whose row's bit is set load x.
            std::uint32_t fmask = 0;
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if (((mask >> lane) & 1u) != 0 &&
                  ((words[lane] >>
                    (static_cast<std::uint32_t>(rows[lane]) & 31u)) &
                   1u) != 0) {
                fmask |= 1u << lane;
              }
            }
            const auto vals = w.gather(x, fmask, [&](int lane) {
              return static_cast<std::size_t>(rows[lane]);
            });
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if ((fmask >> lane) & 1u) sum[lane] += vals[lane];
            }
            w.count_ops(1);
          }
          const T total = w.reduce_add(sum);
          if (total > 0) {
            w.scatter(y, 0x1u,
                      [&](int) { return static_cast<std::size_t>(col); },
                      [&](int) { return total; });
          }
        }
      });
}

// ---------------------------------------------------------------------------
// Backward (unmasked) kernels.
// Gather form: y(v) += sum over column v of x(row). Correct out-neighbour
// sum only when the matrix is symmetric (undirected graphs).
// ---------------------------------------------------------------------------

template <typename T>
void spmv_backward_gather_sccsc(sim::Device& device, const DeviceCsc& g,
                                const sim::DeviceBuffer<T>& x,
                                sim::DeviceBuffer<T>& y) {
  sim::launch_scalar(
      device, "dep_spmv_sccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto i = static_cast<std::size_t>(t.global_id());
        const dptr_t begin = g.col_ptr().load(t, i);
        const dptr_t end = g.col_ptr().load(t, i + 1);
        T sum = 0;
        for (dptr_t k = begin; k < end; ++k) {
          const vidx_t row = g.row_idx().load(t, static_cast<std::size_t>(k));
          sum += x.load(t, static_cast<std::size_t>(row));
          t.count_ops(1);
        }
        if (sum != 0) y.store(t, i, sum);
      });
}

template <typename T>
void spmv_backward_gather_vecsc(sim::Device& device, const DeviceCsc& g,
                                const sim::DeviceBuffer<T>& x,
                                sim::DeviceBuffer<T>& y) {
  const vidx_t n = g.n();
  sim::launch_warp(
      device, "dep_spmv_vecsc", vecsc_grid_warps(device, n),
      [&](sim::WarpCtx& w) {
        for (auto col = static_cast<vidx_t>(w.warp_id()); col < n;
             col = static_cast<vidx_t>(col + w.num_warps())) {
          const dptr_t begin =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col));
          const dptr_t end =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col) + 1);
          std::array<T, sim::kWarpSize> sum{};
          for (dptr_t base = begin; base < end; base += sim::kWarpSize) {
            std::uint32_t mask = 0;
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if (base + lane < end) mask |= 1u << lane;
            }
            const auto rows = w.gather(g.row_idx(), mask, [&](int lane) {
              return static_cast<std::size_t>(base + lane);
            });
            const auto vals = w.gather(x, mask, [&](int lane) {
              return static_cast<std::size_t>(rows[lane]);
            });
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if ((mask >> lane) & 1u) sum[lane] += vals[lane];
            }
            w.count_ops(1);
          }
          const T total = w.reduce_add(sum);
          if (total != 0) {
            w.scatter(y, 0x1u,
                      [&](int) { return static_cast<std::size_t>(col); },
                      [&](int) { return total; });
          }
        }
      });
}

template <typename T>
void spmv_backward_gather_sccooc(sim::Device& device, const DeviceCooc& g,
                                 const sim::DeviceBuffer<T>& x,
                                 sim::DeviceBuffer<T>& y) {
  sim::launch_scalar(
      device, "dep_spmv_sccooc", static_cast<std::uint64_t>(g.m()),
      [&](sim::ThreadCtx& t) {
        const auto k = static_cast<std::size_t>(t.global_id());
        const vidx_t row = g.row_idx().load(t, k);
        const T xv = x.load(t, static_cast<std::size_t>(row));
        t.count_ops(1);
        if (xv != 0) {
          const vidx_t col = g.col_idx().load(t, k);
          y.atomic_add(t, static_cast<std::size_t>(col), xv);
        }
      });
}

// ---------------------------------------------------------------------------
// Scatter form: y(row) += x(col) through the same stored structure — the
// transposed product, used by the backward stage on directed graphs.
// ---------------------------------------------------------------------------

template <typename T>
void spmv_backward_scatter_sccsc(sim::Device& device, const DeviceCsc& g,
                                 const sim::DeviceBuffer<T>& x,
                                 sim::DeviceBuffer<T>& y) {
  sim::launch_scalar(
      device, "dep_spmv_sccsc_scatter", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto w = static_cast<std::size_t>(t.global_id());
        const T xv = x.load(t, w);
        if (xv == 0) return;
        const dptr_t begin = g.col_ptr().load(t, w);
        const dptr_t end = g.col_ptr().load(t, w + 1);
        for (dptr_t k = begin; k < end; ++k) {
          const vidx_t row = g.row_idx().load(t, static_cast<std::size_t>(k));
          y.atomic_add(t, static_cast<std::size_t>(row), xv);
          t.count_ops(1);
        }
      });
}

template <typename T>
void spmv_backward_scatter_vecsc(sim::Device& device, const DeviceCsc& g,
                                 const sim::DeviceBuffer<T>& x,
                                 sim::DeviceBuffer<T>& y) {
  const vidx_t n = g.n();
  sim::launch_warp(
      device, "dep_spmv_vecsc_scatter", vecsc_grid_warps(device, n),
      [&](sim::WarpCtx& w) {
        for (auto col = static_cast<vidx_t>(w.warp_id()); col < n;
             col = static_cast<vidx_t>(col + w.num_warps())) {
          const T xv = w.broadcast_load(x, static_cast<std::size_t>(col));
          if (xv == 0) continue;
          const dptr_t begin =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col));
          const dptr_t end =
              w.broadcast_load(g.col_ptr(), static_cast<std::size_t>(col) + 1);
          for (dptr_t base = begin; base < end; base += sim::kWarpSize) {
            std::uint32_t mask = 0;
            for (int lane = 0; lane < sim::kWarpSize; ++lane) {
              if (base + lane < end) mask |= 1u << lane;
            }
            const auto rows = w.gather(g.row_idx(), mask, [&](int lane) {
              return static_cast<std::size_t>(base + lane);
            });
            w.atomic_add(y, mask,
                         [&](int lane) {
                           return static_cast<std::size_t>(rows[lane]);
                         },
                         [&](int) { return xv; });
          }
        }
      });
}

template <typename T>
void spmv_backward_scatter_sccooc(sim::Device& device, const DeviceCooc& g,
                                  const sim::DeviceBuffer<T>& x,
                                  sim::DeviceBuffer<T>& y) {
  sim::launch_scalar(
      device, "dep_spmv_sccooc_scatter", static_cast<std::uint64_t>(g.m()),
      [&](sim::ThreadCtx& t) {
        const auto k = static_cast<std::size_t>(t.global_id());
        const vidx_t col = g.col_idx().load(t, k);
        const T xv = x.load(t, static_cast<std::size_t>(col));
        t.count_ops(1);
        if (xv != 0) {
          const vidx_t row = g.row_idx().load(t, k);
          y.atomic_add(t, static_cast<std::size_t>(row), xv);
        }
      });
}

}  // namespace turbobc::spmv
