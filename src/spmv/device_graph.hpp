// Device-resident sparse adjacency structures.
//
// Matching the paper's memory strategy, exactly ONE storage format is
// uploaded per BC computation, the value array of the binary matrix is never
// materialized, and the index arrays are 32-bit words — so the device-side
// inventory is (n+1) + m words for CSC and 2m words for COOC (Figure 4).
#pragma once

#include <limits>

#include "common/error.hpp"
#include "common/types.hpp"
#include "gpusim/buffer.hpp"
#include "graph/cooc.hpp"
#include "graph/csc.hpp"

namespace turbobc::spmv {

/// 32-bit device edge offset (the paper's CP_A entries). All workloads in
/// this repo keep m below 2^31; construction checks.
using dptr_t = std::int32_t;

class DeviceCsc {
 public:
  DeviceCsc(sim::Device& device, const graph::CscGraph& g)
      : n_(g.num_vertices()),
        m_(g.num_arcs()),
        col_ptr_(device, static_cast<std::size_t>(n_) + 1, "CP_A"),
        row_idx_(device, static_cast<std::size_t>(m_), "row_A") {
    TBC_CHECK(m_ <= std::numeric_limits<dptr_t>::max(),
              "graph too large for 32-bit device column pointers");
    std::vector<dptr_t> cp(g.col_ptr().size());
    for (std::size_t i = 0; i < cp.size(); ++i) {
      cp[i] = static_cast<dptr_t>(g.col_ptr()[i]);
    }
    col_ptr_.copy_from_host(cp);
    row_idx_.copy_from_host(g.row_idx());
  }

  /// Upload a raw shard: `n_cols` local columns whose pointer array indexes
  /// into `rows`. Used by the 1D-partitioned engine, whose column blocks keep
  /// GLOBAL row ids (the SpMV kernels then gather from a full-length operand
  /// vector while writing a local-length result).
  DeviceCsc(sim::Device& device, vidx_t n_cols, std::vector<dptr_t> cp,
            std::vector<vidx_t> rows)
      : n_(n_cols),
        m_(static_cast<eidx_t>(rows.size())),
        col_ptr_(device, static_cast<std::size_t>(n_cols) + 1, "CP_A"),
        row_idx_(device, rows.size(), "row_A") {
    TBC_CHECK(cp.size() == static_cast<std::size_t>(n_cols) + 1,
              "shard column pointer array has wrong length");
    col_ptr_.copy_from_host(cp);
    row_idx_.copy_from_host(rows);
  }

  /// Clone an already-uploaded structure onto another device (used by the
  /// parallel source fan-out's replica devices: same arrays, same modeled
  /// widths, so replica memory accounting matches the original exactly).
  DeviceCsc(sim::Device& device, const DeviceCsc& other)
      : n_(other.n_),
        m_(other.m_),
        col_ptr_(device, other.col_ptr_.size(), "CP_A"),
        row_idx_(device, other.row_idx_.size(), "row_A") {
    col_ptr_.copy_from_host(other.col_ptr_.host());
    row_idx_.copy_from_host(other.row_idx_.host());
  }

  vidx_t n() const noexcept { return n_; }
  eidx_t m() const noexcept { return m_; }
  const sim::DeviceBuffer<dptr_t>& col_ptr() const noexcept { return col_ptr_; }
  const sim::DeviceBuffer<vidx_t>& row_idx() const noexcept { return row_idx_; }

 private:
  vidx_t n_;
  eidx_t m_;
  sim::DeviceBuffer<dptr_t> col_ptr_;
  sim::DeviceBuffer<vidx_t> row_idx_;
};

class DeviceCooc {
 public:
  DeviceCooc(sim::Device& device, const graph::CoocGraph& g)
      : n_(g.num_vertices()),
        m_(g.num_arcs()),
        row_idx_(device, static_cast<std::size_t>(m_), "row_A"),
        col_idx_(device, static_cast<std::size_t>(m_), "col_A") {
    row_idx_.copy_from_host(g.row_idx());
    col_idx_.copy_from_host(g.col_idx());
  }

  /// Upload a raw shard of `n_cols` local columns; `rows` keeps global row
  /// ids while `cols` is rebased to the local column range (see DeviceCsc's
  /// shard constructor).
  DeviceCooc(sim::Device& device, vidx_t n_cols, std::vector<vidx_t> rows,
             std::vector<vidx_t> cols)
      : n_(n_cols),
        m_(static_cast<eidx_t>(rows.size())),
        row_idx_(device, rows.size(), "row_A"),
        col_idx_(device, cols.size(), "col_A") {
    TBC_CHECK(rows.size() == cols.size(),
              "shard COOC index arrays have mismatched lengths");
    row_idx_.copy_from_host(rows);
    col_idx_.copy_from_host(cols);
  }

  /// Clone an already-uploaded structure onto another device (see
  /// DeviceCsc's clone constructor).
  DeviceCooc(sim::Device& device, const DeviceCooc& other)
      : n_(other.n_),
        m_(other.m_),
        row_idx_(device, other.row_idx_.size(), "row_A"),
        col_idx_(device, other.col_idx_.size(), "col_A") {
    row_idx_.copy_from_host(other.row_idx_.host());
    col_idx_.copy_from_host(other.col_idx_.host());
  }

  vidx_t n() const noexcept { return n_; }
  eidx_t m() const noexcept { return m_; }
  const sim::DeviceBuffer<vidx_t>& row_idx() const noexcept { return row_idx_; }
  const sim::DeviceBuffer<vidx_t>& col_idx() const noexcept { return col_idx_; }

 private:
  vidx_t n_;
  eidx_t m_;
  sim::DeviceBuffer<vidx_t> row_idx_;
  sim::DeviceBuffer<vidx_t> col_idx_;
};

}  // namespace turbobc::spmv
