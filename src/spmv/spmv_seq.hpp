// Sequential reference SpMV: the paper's Algorithm 2 (COOC) and Algorithm 3
// (CSC), on host graph structures. These are the oracles the simulated
// kernels are tested against, and the building blocks of the sequential
// BC-LA baseline.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/cooc.hpp"
#include "graph/csc.hpp"

namespace turbobc::spmv {

/// Algorithm 2: y(col_A(k)) += x(row_A(k)) for every nonzero k with
/// x(row_A(k)) > 0. `y` must be zero-initialized by the caller.
template <typename T>
void seq_spmv_cooc(const graph::CoocGraph& g, std::span<const T> x,
                   std::span<T> y) {
  const auto& rows = g.row_idx();
  const auto& cols = g.col_idx();
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const T xv = x[static_cast<std::size_t>(rows[k])];
    if (xv > 0) y[static_cast<std::size_t>(cols[k])] += xv;
  }
}

/// Algorithm 3: for every column i with sigma(i) == 0, y(i) = sum of x over
/// the column's rows (when positive). The sigma mask makes this the fused
/// masked SpMV of the BFS stage.
template <typename T, typename M>
void seq_spmv_csc_masked(const graph::CscGraph& g, std::span<const T> x,
                         std::span<const M> sigma, std::span<T> y) {
  const vidx_t n = g.num_vertices();
  for (vidx_t i = 0; i < n; ++i) {
    if (sigma[static_cast<std::size_t>(i)] != 0) continue;
    const auto [begin, end] = g.column_range(i);
    T sum = 0;
    for (eidx_t k = begin; k < end; ++k) {
      sum += x[static_cast<std::size_t>(g.row_idx()[static_cast<std::size_t>(k)])];
    }
    if (sum > 0) y[static_cast<std::size_t>(i)] = sum;
  }
}

/// Unmasked per-column gather (backward stage on symmetric matrices).
template <typename T>
void seq_spmv_csc(const graph::CscGraph& g, std::span<const T> x,
                  std::span<T> y) {
  const vidx_t n = g.num_vertices();
  for (vidx_t i = 0; i < n; ++i) {
    const auto [begin, end] = g.column_range(i);
    T sum = 0;
    for (eidx_t k = begin; k < end; ++k) {
      sum += x[static_cast<std::size_t>(g.row_idx()[static_cast<std::size_t>(k)])];
    }
    if (sum != 0) y[static_cast<std::size_t>(i)] += sum;
  }
}

/// Transposed product y += A x through the same CSC structure (per-column
/// scatter): y(row_A(k)) += x(col). This is the out-neighbour sum needed by
/// the backward stage on directed graphs.
template <typename T>
void seq_spmv_csc_scatter(const graph::CscGraph& g, std::span<const T> x,
                          std::span<T> y) {
  const vidx_t n = g.num_vertices();
  for (vidx_t w = 0; w < n; ++w) {
    const T xv = x[static_cast<std::size_t>(w)];
    if (xv == 0) continue;
    const auto [begin, end] = g.column_range(w);
    for (eidx_t k = begin; k < end; ++k) {
      y[static_cast<std::size_t>(g.row_idx()[static_cast<std::size_t>(k)])] += xv;
    }
  }
}

}  // namespace turbobc::spmv
