// Shared experiment executor for the table benches.
//
// One call runs a workload through TurboBC (the paper-pinned variant) and
// all three comparators, verifies every BC vector against queue-based
// Brandes, and assembles a row with the paper's columns. Runtime columns
// are modeled machine times (DESIGN.md §1).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bench_support/stamp.hpp"
#include "bench_support/suite.hpp"
#include "gpusim/device_props.hpp"
#include "graph/stats.hpp"

namespace turbobc::bench {

struct ExperimentRow {
  std::string name;
  vidx_t n = 0;
  eidx_t m = 0;
  graph::DegreeStats degrees;
  vidx_t depth = 0;      // BFS tree height from the chosen source
  double scf = 0.0;      // normalized scale-free index
  std::string variant;

  double turbo_ms = 0.0;
  double mteps = 0.0;
  double seq_ms = 0.0;
  double gunrock_ms = 0.0;  // 0 when OOM
  double ligra_ms = 0.0;
  bool gunrock_oom = false;

  double speedup_seq = 0.0;
  double speedup_gunrock = 0.0;
  double speedup_ligra = 0.0;

  std::size_t turbo_peak_bytes = 0;
  std::size_t gunrock_peak_bytes = 0;

  bool verified = false;  // TurboBC (and gunrock, if run) match Brandes
  PaperRow paper;
};

struct RunnerConfig {
  sim::DeviceProps device_props = sim::DeviceProps::titan_xp();
  bool run_gunrock = true;
  bool run_ligra = true;
  bool run_sequential = true;
};

/// Single-source (BC/vertex) experiment: the Tables 1-4 protocol.
ExperimentRow run_single_source_experiment(const Workload& w,
                                           const RunnerConfig& cfg = {});

/// Exact (all-sources) experiment: the Table 5 protocol. Comparator columns
/// hold sequential exact BC; gunrock/ligra columns are left zero unless
/// enabled (the paper's Table 5 only compares against sequential).
ExperimentRow run_exact_experiment(const Workload& w,
                                   const RunnerConfig& cfg = {});

/// Render rows with the paper's columns plus paper-reported speedups for
/// side-by-side comparison. `time_unit_s` selects seconds (Table 4/5) vs
/// milliseconds.
void print_rows(std::ostream& os, const std::string& title,
                const std::vector<ExperimentRow>& rows, bool time_unit_s,
                bool exact);

/// Relative max-norm difference between two BC vectors.
double bc_max_rel_error(const std::vector<bc_t>& a, const std::vector<bc_t>& b);

// ---------------------------------------------------------------------------
// Host-parallel engine benchmark (ExecutorPool): wall-clock columns.
// ---------------------------------------------------------------------------

/// One graph measured twice through the multi-source fan-out — pool width 1
/// vs `threads` — with real host wall clocks. The modeled results must be
/// bit-identical across widths (the engine's core contract); `bit_identical`
/// records whether they were.
struct HostParallelRow {
  std::string name;
  vidx_t n = 0;
  eidx_t m = 0;
  std::string variant;
  vidx_t sources = 0;        // sources actually run (0 < sources <= n)
  unsigned threads = 0;      // pool width of the parallel run
  double serial_wall_s = 0.0;
  double parallel_wall_s = 0.0;
  double speedup = 0.0;      // serial_wall_s / parallel_wall_s
  double modeled_s = 0.0;    // device_seconds (same for both widths)
  bool bit_identical = false;
};

struct HostParallelConfig {
  sim::DeviceProps device_props = sim::DeviceProps::titan_xp();
  unsigned threads = 0;     // 0 = hardware concurrency
  vidx_t max_sources = 0;   // 0 = exact (every vertex); else evenly spread
};

/// Runs the workload's exact/multi-source BC at width 1 and width
/// cfg.threads, wall-clocked. Leaves the process pool back at width 1.
HostParallelRow run_host_parallel_experiment(const Workload& w,
                                             const HostParallelConfig& cfg);

void print_parallel_rows(std::ostream& os,
                         const std::vector<HostParallelRow>& rows);

/// Machine-readable dump (BENCH_parallel.json): {"stamp": {...}, "rows":
/// [...]} with one object per row, fields matching HostParallelRow (see
/// bench_support/stamp.hpp for the provenance stamp).
void write_parallel_json(std::ostream& os, const BenchStamp& stamp,
                         const std::vector<HostParallelRow>& rows);

}  // namespace turbobc::bench
