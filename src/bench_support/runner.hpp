// Shared experiment executor for the table benches.
//
// One call runs a workload through TurboBC (the paper-pinned variant) and
// all three comparators, verifies every BC vector against queue-based
// Brandes, and assembles a row with the paper's columns. Runtime columns
// are modeled machine times (DESIGN.md §1).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bench_support/suite.hpp"
#include "gpusim/device_props.hpp"
#include "graph/stats.hpp"

namespace turbobc::bench {

struct ExperimentRow {
  std::string name;
  vidx_t n = 0;
  eidx_t m = 0;
  graph::DegreeStats degrees;
  vidx_t depth = 0;      // BFS tree height from the chosen source
  double scf = 0.0;      // normalized scale-free index
  std::string variant;

  double turbo_ms = 0.0;
  double mteps = 0.0;
  double seq_ms = 0.0;
  double gunrock_ms = 0.0;  // 0 when OOM
  double ligra_ms = 0.0;
  bool gunrock_oom = false;

  double speedup_seq = 0.0;
  double speedup_gunrock = 0.0;
  double speedup_ligra = 0.0;

  std::size_t turbo_peak_bytes = 0;
  std::size_t gunrock_peak_bytes = 0;

  bool verified = false;  // TurboBC (and gunrock, if run) match Brandes
  PaperRow paper;
};

struct RunnerConfig {
  sim::DeviceProps device_props = sim::DeviceProps::titan_xp();
  bool run_gunrock = true;
  bool run_ligra = true;
  bool run_sequential = true;
};

/// Single-source (BC/vertex) experiment: the Tables 1-4 protocol.
ExperimentRow run_single_source_experiment(const Workload& w,
                                           const RunnerConfig& cfg = {});

/// Exact (all-sources) experiment: the Table 5 protocol. Comparator columns
/// hold sequential exact BC; gunrock/ligra columns are left zero unless
/// enabled (the paper's Table 5 only compares against sequential).
ExperimentRow run_exact_experiment(const Workload& w,
                                   const RunnerConfig& cfg = {});

/// Render rows with the paper's columns plus paper-reported speedups for
/// side-by-side comparison. `time_unit_s` selects seconds (Table 4/5) vs
/// milliseconds.
void print_rows(std::ostream& os, const std::string& title,
                const std::vector<ExperimentRow>& rows, bool time_unit_s,
                bool exact);

/// Relative max-norm difference between two BC vectors.
double bc_max_rel_error(const std::vector<bc_t>& a, const std::vector<bc_t>& b);

}  // namespace turbobc::bench
