#include "bench_support/runner.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "baselines/bc_la_seq.hpp"
#include "baselines/brandes.hpp"
#include "baselines/gunrock_like.hpp"
#include "baselines/ligra_like.hpp"
#include "bench_support/mteps.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/turbobc.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"

namespace turbobc::bench {

namespace {

constexpr double kVerifyTolerance = 1e-6;

std::string fmt_speedup(double s) {
  return s > 0.0 ? fixed(s, 1) + "x" : std::string("-");
}

}  // namespace

double bc_max_rel_error(const std::vector<bc_t>& a,
                        const std::vector<bc_t>& b) {
  double worst = a.size() == b.size() ? 0.0 : 1e9;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1.0});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

ExperimentRow run_single_source_experiment(const Workload& w,
                                           const RunnerConfig& cfg) {
  ExperimentRow row;
  row.name = w.name;
  row.paper = w.paper;
  row.variant = std::string(bc::to_string(w.variant));
  row.n = w.graph.num_vertices();
  row.m = w.graph.num_arcs();
  row.degrees = graph::degree_stats(w.graph);
  row.scf = graph::scf_index(w.graph);

  const vidx_t source = representative_source(w.graph);
  const std::vector<bc_t> golden = baseline::brandes_delta(w.graph, source);

  // TurboBC on the simulated device.
  {
    sim::Device device(cfg.device_props);
    bc::TurboBC turbo(device, w.graph, {.variant = w.variant});
    const bc::BcResult r = turbo.run_single_source(source);
    row.depth = r.last_source.bfs_depth;
    row.turbo_ms = r.device_seconds * 1e3;
    row.mteps = mteps_single_source(row.m, r.device_seconds);
    row.turbo_peak_bytes = r.peak_device_bytes;
    row.verified = bc_max_rel_error(r.bc, golden) < kVerifyTolerance;
  }

  if (cfg.run_sequential) {
    const baseline::SequentialBcLa seq(w.graph);
    const auto r = seq.run_single_source(source);
    row.seq_ms = r.modeled_seconds * 1e3;
    row.speedup_seq = row.turbo_ms > 0 ? row.seq_ms / row.turbo_ms : 0.0;
    row.verified =
        row.verified && bc_max_rel_error(r.bc, golden) < kVerifyTolerance;
  }

  if (cfg.run_gunrock) {
    try {
      sim::Device device(cfg.device_props);
      baseline::GunrockLikeBc gunrock(device, w.graph);
      const auto r = gunrock.run_single_source(source);
      row.gunrock_ms = r.device_seconds * 1e3;
      row.gunrock_peak_bytes = r.peak_device_bytes;
      row.speedup_gunrock =
          row.turbo_ms > 0 ? row.gunrock_ms / row.turbo_ms : 0.0;
      row.verified =
          row.verified && bc_max_rel_error(r.bc, golden) < kVerifyTolerance;
    } catch (const DeviceOutOfMemory&) {
      row.gunrock_oom = true;
    }
  }

  if (cfg.run_ligra) {
    const baseline::LigraLikeBc ligra(w.graph);
    const auto r = ligra.run_single_source(source);
    row.ligra_ms = r.modeled_seconds * 1e3;
    row.speedup_ligra = row.turbo_ms > 0 ? row.ligra_ms / row.turbo_ms : 0.0;
    row.verified =
        row.verified && bc_max_rel_error(r.bc, golden) < kVerifyTolerance;
  }

  return row;
}

ExperimentRow run_exact_experiment(const Workload& w,
                                   const RunnerConfig& cfg) {
  ExperimentRow row;
  row.name = w.name;
  row.paper = w.paper;
  row.variant = std::string(bc::to_string(w.variant));
  row.n = w.graph.num_vertices();
  row.m = w.graph.num_arcs();
  row.degrees = graph::degree_stats(w.graph);
  row.scf = graph::scf_index(w.graph);

  const std::vector<bc_t> golden = baseline::brandes_bc(w.graph);

  {
    sim::Device device(cfg.device_props);
    device.set_keep_launch_records(false);  // O(n*d) launches in exact runs
    bc::TurboBC turbo(device, w.graph, {.variant = w.variant});
    const bc::BcResult r = turbo.run_exact();
    row.depth = r.last_source.bfs_depth;
    row.turbo_ms = r.device_seconds * 1e3;
    row.mteps = mteps_exact(row.n, row.m, r.device_seconds);
    row.turbo_peak_bytes = r.peak_device_bytes;
    row.verified = bc_max_rel_error(r.bc, golden) < kVerifyTolerance;
  }

  if (cfg.run_sequential) {
    const baseline::SequentialBcLa seq(w.graph);
    const auto r = seq.run_exact();
    row.seq_ms = r.modeled_seconds * 1e3;
    row.speedup_seq = row.turbo_ms > 0 ? row.seq_ms / row.turbo_ms : 0.0;
    row.verified =
        row.verified && bc_max_rel_error(r.bc, golden) < kVerifyTolerance;
  }

  return row;
}

HostParallelRow run_host_parallel_experiment(const Workload& w,
                                             const HostParallelConfig& cfg) {
  HostParallelRow row;
  row.name = w.name;
  row.n = w.graph.num_vertices();
  row.m = w.graph.num_arcs();
  row.variant = std::string(bc::to_string(w.variant));
  row.threads = sim::ExecutorPool::instance().set_threads(cfg.threads);

  // Source set: every vertex (exact) or max_sources spread evenly.
  std::vector<vidx_t> sources;
  const vidx_t n = row.n;
  const vidx_t count =
      cfg.max_sources > 0 ? std::min(cfg.max_sources, n) : n;
  sources.reserve(count);
  for (vidx_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<vidx_t>(
        static_cast<std::uint64_t>(i) * n / count));
  }
  row.sources = count;

  const auto run_width = [&](unsigned width, double* wall_s) {
    sim::ExecutorPool::instance().set_threads(width);
    sim::Device device(cfg.device_props);
    device.set_keep_launch_records(false);  // O(sources * d) launches
    bc::TurboBC turbo(device, w.graph, {.variant = w.variant});
    WallTimer timer;
    bc::BcResult r = turbo.run_sources(sources);
    *wall_s = timer.seconds();
    return r;
  };

  const bc::BcResult serial = run_width(1, &row.serial_wall_s);
  const bc::BcResult parallel = run_width(row.threads, &row.parallel_wall_s);
  sim::ExecutorPool::instance().set_threads(1);

  row.modeled_s = serial.device_seconds;
  row.speedup = row.parallel_wall_s > 0.0
                    ? row.serial_wall_s / row.parallel_wall_s
                    : 0.0;
  row.bit_identical =
      serial.bc == parallel.bc &&
      serial.device_seconds == parallel.device_seconds &&
      serial.peak_device_bytes == parallel.peak_device_bytes;
  return row;
}

void print_parallel_rows(std::ostream& os,
                         const std::vector<HostParallelRow>& rows) {
  Table t({"graph", "n", "m", "variant", "sources", "threads", "serial(s)",
           "parallel(s)", "host speedup", "modeled(s)", "bit-identical"});
  for (const auto& r : rows) {
    t.add_row({r.name, human_count(static_cast<double>(r.n)),
               human_count(static_cast<double>(r.m)), r.variant,
               std::to_string(r.sources), std::to_string(r.threads),
               fixed(r.serial_wall_s, 3), fixed(r.parallel_wall_s, 3),
               fmt_speedup(r.speedup), fixed(r.modeled_s, 4),
               r.bit_identical ? "yes" : "NO"});
  }
  t.print(os);
}

void write_parallel_json(std::ostream& os, const BenchStamp& stamp,
                         const std::vector<HostParallelRow>& rows) {
  os << "{\n";
  write_stamp_json(os, stamp);
  os << ",\n\"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << "  {\"graph\": \"" << r.name << "\", \"n\": " << r.n
       << ", \"m\": " << r.m << ", \"variant\": \"" << r.variant
       << "\", \"sources\": " << r.sources << ", \"threads\": " << r.threads
       << ", \"serial_wall_s\": " << r.serial_wall_s
       << ", \"parallel_wall_s\": " << r.parallel_wall_s
       << ", \"host_speedup\": " << r.speedup
       << ", \"modeled_s\": " << r.modeled_s << ", \"bit_identical\": "
       << (r.bit_identical ? "true" : "false") << "}"
       << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  os << "]\n}\n";
}

void print_rows(std::ostream& os, const std::string& title,
                const std::vector<ExperimentRow>& rows, bool time_unit_s,
                bool exact) {
  os << title << '\n';
  std::vector<std::string> headers = {
      "File",      "n",        "m",       "deg(max/mu/sd)", "d",
      "scf",       "variant",  time_unit_s ? "runtime(s)" : "runtime(ms)",
      "MTEPS",     "(seq)x",   "(gunrock)x", "(ligra)x",
      "paper(seq)x", "paper(gr)x", "paper(ligra)x", "ok"};
  Table table(headers);
  for (const auto& r : rows) {
    const double t = time_unit_s ? r.turbo_ms / 1e3 : r.turbo_ms;
    table.add_row({
        r.name,
        human_count(static_cast<double>(r.n)),
        human_count(static_cast<double>(r.m)),
        human_count(static_cast<double>(r.degrees.max)) + "/" +
            fixed(r.degrees.mean, 0) + "/" + fixed(r.degrees.stddev, 0),
        std::to_string(r.depth),
        fixed(r.scf, 1),
        r.variant,
        fixed(t, t < 10 ? 3 : 1),
        fixed(r.mteps, r.mteps < 10 ? 1 : 0),
        fmt_speedup(r.speedup_seq),
        r.gunrock_oom ? "OOM" : fmt_speedup(r.speedup_gunrock),
        fmt_speedup(r.speedup_ligra),
        fmt_speedup(r.paper.speedup_seq),
        r.paper.speedup_gunrock > 0 ? fmt_speedup(r.paper.speedup_gunrock)
                                    : std::string(exact ? "-" : "OOM"),
        fmt_speedup(r.paper.speedup_ligra),
        r.verified ? "yes" : "NO",
    });
  }
  table.print(os);
  os << '\n';
}

}  // namespace turbobc::bench
