#include "bench_support/suite.hpp"

#include <algorithm>

#include "generators/generators.hpp"
#include "graph/bfs_probe.hpp"
#include "graph/stats.hpp"

namespace turbobc::bench {

namespace {

using bc::Variant;
using graph::EdgeList;

/// Re-tag an undirected edge list as a directed graph with symmetric arcs
/// (AS-style "directed" networks whose links are bidirectional).
EdgeList as_directed(const EdgeList& el) {
  EdgeList out(el.num_vertices(), /*directed=*/true);
  for (const graph::Edge& e : el.edges()) out.add_edge(e.u, e.v);
  out.canonicalize();
  return out;
}

Workload make(std::string name, std::string family, EdgeList g, Variant v,
              PaperRow paper) {
  return Workload{std::move(name), std::move(family), std::move(g), v, paper};
}

}  // namespace

std::vector<Workload> table1_suite() {
  std::vector<Workload> w;
  // mark3j*sc: Markov-chain lattices; depth grows with the length dimension.
  w.push_back(make("mark3j060sc(D)", "markov_lattice",
                   gen::markov_lattice({.length = 42, .width = 80,
                                        .burst_p = 0.01, .burst_size = 24,
                                        .extra_stencil = 0, .seed = 11}),
                   Variant::kScCsc, {2.1, 82, 11.5, 2.7, 2.2}));
  w.push_back(make("mark3j080sc(D)", "markov_lattice",
                   gen::markov_lattice({.length = 52, .width = 80,
                                        .burst_p = 0.01, .burst_size = 24,
                                        .extra_stencil = 0, .seed = 12}),
                   Variant::kScCsc, {2.8, 82, 9.8, 2.5, 1.5}));
  w.push_back(make("mark3j100sc(D)", "markov_lattice",
                   gen::markov_lattice({.length = 62, .width = 80,
                                        .burst_p = 0.01, .burst_size = 24,
                                        .extra_stencil = 0, .seed = 13}),
                   Variant::kScCsc, {3.5, 82, 11.4, 2.4, 1.5}));
  w.push_back(make("mark3j120sc(D)", "markov_lattice",
                   gen::markov_lattice({.length = 72, .width = 80,
                                        .burst_p = 0.01, .burst_size = 24,
                                        .extra_stencil = 0, .seed = 14}),
                   Variant::kScCsc, {4.4, 78, 12.9, 2.2, 1.6}));
  // g7j*sc: denser Markov matrices, shallow BFS, lognormal-ish out-degrees.
  w.push_back(make("g7j140sc(D)", "random_local_digraph",
                   gen::random_local_digraph({.n = 4200,
                                              .mean_out_degree = 14,
                                              .degree_dispersion = 1.0,
                                              .max_out_degree = 153,
                                              .window = 300,
                                              .global_p = 0.01,
                                              .seed = 15}),
                   Variant::kScCsc, {1.2, 472, 12.5, 1.9, 2.3}));
  w.push_back(make("g7j160sc(D)", "random_local_digraph",
                   gen::random_local_digraph({.n = 4700,
                                              .mean_out_degree = 14,
                                              .degree_dispersion = 1.0,
                                              .max_out_degree = 153,
                                              .window = 320,
                                              .global_p = 0.01,
                                              .seed = 16}),
                   Variant::kScCsc, {1.4, 469, 13.3, 1.8, 2.6}));
  // delaunay_n*: planar triangular meshes, mean degree 6.
  w.push_back(make("delaunayn15(U)", "triangulated_grid",
                   gen::triangulated_grid(60, 55), Variant::kScCsc,
                   {4.7, 42, 14.4, 2.4, 1.2}));
  w.push_back(make("delaunayn16(U)", "triangulated_grid",
                   gen::triangulated_grid(85, 78), Variant::kScCsc,
                   {7.1, 55, 25.3, 2.2, 1.9}));
  // luxembourg-osm: road network, mean degree 2, enormous BFS depth.
  w.push_back(make("luxemb-osm(U)", "road_network",
                   gen::road_network({.grid_rows = 10, .grid_cols = 10,
                                      .keep_p = 0.7, .subdivisions = 30,
                                      .seed = 17}),
                   Variant::kScCsc, {50.0, 5, 24.7, 2.3, 1.0}));
  // internet: AS-style topology, symmetric directed links, hubby.
  w.push_back(make("internet(D)", "preferential_attachment",
                   as_directed(gen::preferential_attachment(
                       {.n = 6000, .m_attach = 1, .directed = false,
                        .seed = 18})),
                   Variant::kScCsc, {1.5, 138, 37.8, 1.9, 2.0}));
  return w;
}

std::vector<Workload> table2_suite() {
  std::vector<Workload> w;
  w.push_back(make("g7j180sc(D)", "random_local_digraph",
                   gen::random_local_digraph({.n = 5300,
                                              .mean_out_degree = 14,
                                              .degree_dispersion = 1.0,
                                              .max_out_degree = 153,
                                              .window = 340,
                                              .global_p = 0.01,
                                              .seed = 21}),
                   Variant::kScCooc, {1.6, 467, 13.9, 1.7, 1.7}));
  w.push_back(make("g7j200sc(D)", "random_local_digraph",
                   gen::random_local_digraph({.n = 5900,
                                              .mean_out_degree = 14,
                                              .degree_dispersion = 1.0,
                                              .max_out_degree = 153,
                                              .window = 360,
                                              .global_p = 0.01,
                                              .seed = 22}),
                   Variant::kScCooc, {1.7, 493, 14.6, 1.7, 1.8}));
  w.push_back(make("mark3j140sc(D)", "markov_lattice",
                   gen::markov_lattice({.length = 82, .width = 78,
                                        .burst_p = 0.01, .burst_size = 24,
                                        .extra_stencil = 0, .seed = 23}),
                   Variant::kScCooc, {5.3, 76, 13.2, 2.1, 1.2}));
  w.push_back(make("smallworld(U)", "small_world",
                   gen::small_world({.n = 10000, .k = 10, .rewire_p = 0.1,
                                     .seed = 24}),
                   Variant::kScCooc, {1.0, 1000, 27.6, 1.5, 1.5}));
  w.push_back(make("ASIC-100ks(D)", "random_local_digraph",
                   gen::random_local_digraph({.n = 9900,
                                              .mean_out_degree = 6,
                                              .degree_dispersion = 0.8,
                                              .max_out_degree = 206,
                                              .window = 330,
                                              .global_p = 0.01,
                                              .seed = 25}),
                   Variant::kScCooc, {2.7, 215, 25.7, 1.6, 1.7}));
  w.push_back(make("ASIC-680ks(D)", "random_local_digraph",
                   gen::random_local_digraph({.n = 20000,
                                              .mean_out_degree = 3,
                                              .degree_dispersion = 0.8,
                                              .max_out_degree = 210,
                                              .window = 700,
                                              .global_p = 0.01,
                                              .seed = 26}),
                   Variant::kScCooc, {6.6, 353, 43.9, 1.0, 1.5}));
  w.push_back(make("com-Youtube(U)", "preferential_attachment",
                   gen::preferential_attachment({.n = 12000, .m_attach = 2,
                                                 .directed = false,
                                                 .seed = 27}),
                   Variant::kScCooc, {9.7, 616, 48.4, 1.0, 2.8}));
  // mawi-*: traffic traces with one dominating collector hub.
  w.push_back(make("mawi-12345(U)", "traffic_trace",
                   gen::traffic_trace({.n = 15000, .hubs = 10, .decay = 0.45,
                                       .seed = 28}),
                   Variant::kScCooc, {74.8, 509, 33.6, 1.0, 3.6}));
  w.push_back(make("mawi-20000(U)", "traffic_trace",
                   gen::traffic_trace({.n = 20000, .hubs = 11, .decay = 0.45,
                                       .seed = 29}),
                   Variant::kScCooc, {143.0, 521, 33.9, 1.0, 3.4}));
  w.push_back(make("mawi-20030(U)", "traffic_trace",
                   gen::traffic_trace({.n = 25000, .hubs = 12, .decay = 0.45,
                                       .seed = 30}),
                   Variant::kScCooc, {261.4, 549, 32.3, 1.0, 3.2}));
  return w;
}

std::vector<Workload> table3_suite() {
  std::vector<Workload> w;
  const double paper_rt[5] = {1.7, 3.4, 7.9, 18.5, 48.9};
  const double paper_mteps[5] = {6536, 9819, 12689, 16267, 18470};
  const double paper_sseq[5] = {17.4, 26.6, 34.6, 45.8, 53.1};
  const double paper_sgun[5] = {1.2, 1.5, 1.7, 2.1, 2.7};
  const double paper_slig[5] = {2.3, 3.4, 4.4, 5.1, 5.2};
  for (int i = 0; i < 5; ++i) {
    const int order = 9 + i;  // scaled stand-ins for mycielski15..19
    w.push_back(make("mycielski" + std::to_string(15 + i) + "(U)",
                     "mycielski", gen::mycielski(order), Variant::kVeCsc,
                     {paper_rt[i], paper_mteps[i], paper_sseq[i],
                      paper_sgun[i], paper_slig[i]}));
  }
  const double krt[4] = {8.7, 17.4, 58.4, 193.2};
  const double kmt[4] = {2433, 2504, 1528, 943};
  const double kss[4] = {31.6, 44.7, 34.0, 24.5};
  const double ksg[4] = {0.9, 1.0, 1.3, 1.1};
  const double ksl[4] = {1.1, 0.9, 1.0, 1.0};
  for (int i = 0; i < 4; ++i) {
    const int scale = 11 + i;  // scaled stand-ins for kron-logn18..21
    w.push_back(make("kron-logn" + std::to_string(18 + i) + "(U)",
                     "kronecker",
                     gen::kronecker({.scale = scale, .edge_factor = 40,
                                     .a = 0.57, .b = 0.19, .c = 0.19,
                                     .seed = static_cast<std::uint64_t>(
                                         100 + i)}),
                     Variant::kVeCsc,
                     {krt[i], kmt[i], kss[i], ksg[i], ksl[i]}));
  }
  return w;
}

std::vector<Workload> table4_suite() {
  std::vector<Workload> w;
  // Paper runtimes for Table 4 are seconds; stored in runtime_ms as-is and
  // labeled by the bench. speedup_gunrock = 0 encodes the paper's OOM.
  w.push_back(make("kmer-V1r(U)", "kmer_like",
                   gen::kmer_like({.chains = 256, .chain_len = 60,
                                   .branching = 4, .seed = 41}),
                   Variant::kScCsc, {14.3, 33, 94.5, 0.0, 0.9}));
  w.push_back(make("it-2004(D)", "web_crawl",
                   gen::web_crawl({.n = 40000, .out_degree = 20,
                                   .copy_p = 0.5, .local_p = 0.85,
                                   .window = 800, .seed = 42}),
                   Variant::kScCooc, {3.1, 371, 39.5, 0.0, 0.8}));
  w.push_back(make("GAP-twitter(D)", "superhub_social",
                   gen::superhub_social({.n = 50000, .out_degree = 24,
                                         .celebrities = 8,
                                         .celebrity_p = 0.3, .seed = 43}),
                   Variant::kVeCsc, {7.3, 201, 50.4, 0.0, 0.8}));
  w.push_back(make("sk-2005(D)", "web_crawl",
                   gen::web_crawl({.n = 50000, .out_degree = 28,
                                   .copy_p = 0.5, .local_p = 0.85,
                                   .window = 900, .seed = 44}),
                   Variant::kVeCsc, {6.8, 287, 30.5, 0.0, 0.7}));
  return w;
}

std::vector<Workload> table5_suite() {
  std::vector<Workload> w;
  // Table 5 reports exact BC: runtime in seconds, MTEPS = n*m/t.
  w.push_back(make("mark3j60sc(D)", "markov_lattice",
                   gen::markov_lattice({.length = 42, .width = 18,
                                        .burst_p = 0.01, .burst_size = 24,
                                        .extra_stencil = 0, .seed = 51}),
                   Variant::kScCsc, {49.3, 95, 8.2, 0.0, 0.0}));
  w.push_back(make("mark3j80sc(D)", "markov_lattice",
                   gen::markov_lattice({.length = 52, .width = 18,
                                        .burst_p = 0.01, .burst_size = 24,
                                        .extra_stencil = 0, .seed = 52}),
                   Variant::kScCsc, {90.8, 92, 9.2, 0.0, 0.0}));
  w.push_back(make("g7j180sc(D)", "random_local_digraph",
                   gen::random_local_digraph({.n = 900,
                                              .mean_out_degree = 14,
                                              .degree_dispersion = 1.0,
                                              .max_out_degree = 153,
                                              .window = 60,
                                              .global_p = 0.01,
                                              .seed = 53}),
                   Variant::kScCooc, {105.9, 377, 13.4, 0.0, 0.0}));
  w.push_back(make("g7j200sc(D)", "random_local_digraph",
                   gen::random_local_digraph({.n = 1000,
                                              .mean_out_degree = 14,
                                              .degree_dispersion = 1.0,
                                              .max_out_degree = 153,
                                              .window = 66,
                                              .global_p = 0.01,
                                              .seed = 54}),
                   Variant::kScCooc, {129.7, 383, 14.3, 0.0, 0.0}));
  w.push_back(make("mycielski16(U)", "mycielski", gen::mycielski(9),
                   Variant::kVeCsc, {159.8, 10257, 27.5, 0.0, 0.0}));
  w.push_back(make("mycielski17(U)", "mycielski", gen::mycielski(10),
                   Variant::kVeCsc, {715.2, 13778, 38.0, 0.0, 0.0}));
  return w;
}

std::vector<Workload> mycielski_sweep() {
  std::vector<Workload> w;
  for (int order = 7; order <= 13; ++order) {
    w.push_back(make("mycielski-M" + std::to_string(order), "mycielski",
                     gen::mycielski(order), Variant::kVeCsc, {}));
  }
  return w;
}

vidx_t representative_source(const graph::EdgeList& graph) {
  const vidx_t n = graph.num_vertices();
  if (n == 0) return 0;
  const auto deg = graph.out_degrees();
  vidx_t max_deg_vertex = 0;
  for (vidx_t v = 1; v < n; ++v) {
    if (deg[static_cast<std::size_t>(v)] >
        deg[static_cast<std::size_t>(max_deg_vertex)]) {
      max_deg_vertex = v;
    }
  }
  const graph::CscGraph csc = graph::CscGraph::from_edges(graph);
  const vidx_t candidates[4] = {0, static_cast<vidx_t>(n / 2),
                                static_cast<vidx_t>(n - 1), max_deg_vertex};
  vidx_t best = 0;
  vidx_t best_reached = -1;
  for (const vidx_t c : candidates) {
    const auto r = graph::bfs_reference(csc, c);
    if (r.reached > best_reached) {
      best_reached = r.reached;
      best = c;
    }
  }
  return best;
}

}  // namespace turbobc::bench
