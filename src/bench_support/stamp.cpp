#include "bench_support/stamp.hpp"

#include <cstdio>
#include <ctime>
#include <ostream>

#include "gpusim/executor.hpp"

namespace turbobc::bench {

std::string current_git_commit() {
  FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {};
  const std::size_t got = ::fread(buf, 1, sizeof(buf) - 1, pipe);
  const int status = ::pclose(pipe);
  if (status != 0 || got == 0) return "unknown";
  std::string commit(buf, got);
  while (!commit.empty() &&
         (commit.back() == '\n' || commit.back() == '\r')) {
    commit.pop_back();
  }
  return commit.empty() ? "unknown" : commit;
}

BenchStamp make_stamp(std::uint64_t seed, double host_wall_s) {
  BenchStamp stamp;
  stamp.seed = seed;
  stamp.git_commit = current_git_commit();
  stamp.threads = sim::ExecutorPool::instance().threads();
  stamp.host_wall_s = host_wall_s;
  const std::time_t now = std::time(nullptr);
  std::tm utc = {};
  if (gmtime_r(&now, &utc) != nullptr) {
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &utc);
    stamp.generated_utc = buf;
  }
  return stamp;
}

void write_stamp_json(std::ostream& os, const BenchStamp& stamp) {
  os << "\"stamp\": {\"seed\": " << stamp.seed << ", \"git_commit\": \""
     << stamp.git_commit << "\", \"threads\": " << stamp.threads
     << ", \"host_wall_s\": " << stamp.host_wall_s
     << ", \"generated_utc\": \"" << stamp.generated_utc << "\"}";
}

}  // namespace turbobc::bench
