// Provenance stamp for BENCH_*.json artifacts.
//
// Every bench JSON carries a "stamp" object next to its "rows" so the bench
// trajectory stays comparable across PRs: the workload seed, the git commit
// the binary was built from, the ExecutorPool width, and the run's host
// wall-clock (modeled device time is per-row; the wall clock is what the
// simulation itself cost). Shape:
//
//   { "stamp": { "seed": ..., "git_commit": "...", "threads": ...,
//                "host_wall_s": ..., "generated_utc": "..." },
//     "rows": [ ... ] }
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace turbobc::bench {

struct BenchStamp {
  std::uint64_t seed = 0;
  std::string git_commit = "unknown";
  unsigned threads = 0;
  /// Host wall-clock seconds the whole bench run took.
  double host_wall_s = 0.0;
  /// UTC timestamp of the run, "YYYY-MM-DD HH:MM:SS".
  std::string generated_utc;
};

/// Assemble a stamp: resolves the git commit and the current UTC time,
/// reads the pool width from the ExecutorPool.
BenchStamp make_stamp(std::uint64_t seed, double host_wall_s);

/// Short git commit hash of the working tree ("unknown" when git or the
/// repository is unavailable — never throws).
std::string current_git_commit();

/// The "stamp" JSON object (no trailing newline or comma).
void write_stamp_json(std::ostream& os, const BenchStamp& stamp);

}  // namespace turbobc::bench
