// Traversed-edges-per-second metrics, defined exactly as the paper does.
#pragma once

#include "common/types.hpp"

namespace turbobc::bench {

/// Per-vertex (single-source) BC: MTEPS = m / t with m in thousands of
/// edges and t in milliseconds — i.e. edges / seconds / 1e6.
inline double mteps_single_source(eidx_t m, double seconds) {
  return seconds > 0.0
             ? static_cast<double>(m) / seconds / 1e6
             : 0.0;
}

/// Exact BC (all sources): MTEPS = n*m / t with n*m in millions and t in
/// seconds.
inline double mteps_exact(vidx_t n, eidx_t m, double seconds) {
  return seconds > 0.0 ? static_cast<double>(n) * static_cast<double>(m) /
                             seconds / 1e6
                       : 0.0;
}

}  // namespace turbobc::bench
