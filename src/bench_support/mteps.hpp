// Traversed-edges-per-second metrics, defined exactly as the paper does.
//
// A non-positive runtime is an accounting bug in the caller (every modeled
// kernel charges time), so both helpers throw instead of silently reporting
// 0.0 MTEPS — a zero used to slip into BENCH_*.json rows looking like a
// measured value.
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"

namespace turbobc::bench {

/// Per-vertex (single-source) BC: MTEPS = m / t with m in thousands of
/// edges and t in milliseconds — i.e. edges / seconds / 1e6.
inline double mteps_single_source(eidx_t m, double seconds) {
  TBC_CHECK(seconds > 0.0,
            "MTEPS is undefined for a non-positive runtime — the caller's "
            "timing accounting is broken");
  return static_cast<double>(m) / seconds / 1e6;
}

/// Exact BC (all sources): MTEPS = n*m / t with n*m in millions and t in
/// seconds.
inline double mteps_exact(vidx_t n, eidx_t m, double seconds) {
  TBC_CHECK(seconds > 0.0,
            "MTEPS is undefined for a non-positive runtime — the caller's "
            "timing accounting is broken");
  return static_cast<double>(n) * static_cast<double>(m) / seconds / 1e6;
}

}  // namespace turbobc::bench
