// Benchmark workload suite: scaled-down structural replicas of the paper's
// 33 SuiteSparse/SNAP graphs (DESIGN.md §1 documents the substitution).
//
// Every workload names the paper graph it replicates, carries the paper's
// reported numbers for side-by-side printing, and pins the TurboBC variant
// the paper found best for that graph — so each table bench exercises the
// same variant the paper's corresponding table does.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/variant.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::bench {

/// Paper-reported row values (for the reproduction report; absolute numbers
/// are not expected to match a simulated device — shapes are).
struct PaperRow {
  double runtime_ms = 0.0;       // paper runtime (ms; seconds for Table 4/5)
  double mteps = 0.0;
  double speedup_seq = 0.0;      // (sequential)x
  double speedup_gunrock = 0.0;  // (gunrock)x; 0 = OOM in the paper
  double speedup_ligra = 0.0;    // (ligra)x
};

struct Workload {
  std::string name;    // paper graph name, e.g. "mark3j060sc(D)"
  std::string family;  // generator family
  graph::EdgeList graph;
  bc::Variant variant;  // variant the paper reports as best for this graph
  PaperRow paper;
};

/// Table 1: ten regular graphs, TurboBC-scCSC.
std::vector<Workload> table1_suite();

/// Table 2: ten regular graphs, TurboBC-scCOOC.
std::vector<Workload> table2_suite();

/// Table 3: nine irregular graphs, TurboBC-veCSC.
std::vector<Workload> table3_suite();

/// Table 4: four big graphs (gunrock OOM set); the `variant` field holds the
/// per-graph winner the paper reports.
std::vector<Workload> table4_suite();

/// Table 5: six exact-BC graphs (subset of Tables 2/3 families, smaller).
std::vector<Workload> table5_suite();

/// Mycielski sweep for Figures 3 and 5 (orders small..large).
std::vector<Workload> mycielski_sweep();

/// Pick a representative, well-connected source vertex: the candidate (0,
/// n/2, n-1, max-out-degree vertex) reaching the most vertices.
vidx_t representative_source(const graph::EdgeList& graph);

}  // namespace turbobc::bench
