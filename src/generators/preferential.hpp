// Preferential-attachment generators for the paper's social / internet
// benchmark families.
//
//  * preferential_attachment — Barabási–Albert. Undirected with m_attach ~ 2-3
//    stands in for com-Youtube (Table 2: mean degree 5, max degree ~25k);
//    with m_attach = 1-2 and directed arcs it stands in for `internet`
//    (Table 1: mean out-degree 2, max 138, BFS depth ~ 21).
//  * superhub_social — directed preferential attachment where a handful of
//    celebrity vertices absorb a fixed share of all arcs: the GAP-twitter
//    stand-in (Table 4: mean degree 24, max degree ~ 5% of n).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace turbobc::gen {

struct PreferentialParams {
  vidx_t n = 10000;
  int m_attach = 2;       // arcs added per new vertex
  bool directed = false;  // directed: new -> chosen (web/AS-link direction)
  std::uint64_t seed = 1;
};

graph::EdgeList preferential_attachment(const PreferentialParams& params);

struct SuperhubParams {
  vidx_t n = 10000;
  int out_degree = 24;     // mean arcs per vertex
  int celebrities = 8;     // superhub count
  double celebrity_p = 0.3;  // probability an arc targets a celebrity
  std::uint64_t seed = 1;
};

graph::EdgeList superhub_social(const SuperhubParams& params);

}  // namespace turbobc::gen
