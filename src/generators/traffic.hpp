// Traffic-trace generator: stand-in for the mawi-* graphs (Table 2) —
// packet-trace graphs from the MAWI archive where a handful of monitoring
// points see nearly all flows: mean degree 2, maximum degree close to n,
// shallow BFS (d ~ 10).
//
// Construction: a short backbone path of collector hubs; every other vertex
// (an endpoint) hangs off one hub, with hub population decaying
// geometrically so the first hub dominates (the paper's mawi graphs have a
// single vertex of degree 0.86n).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace turbobc::gen {

struct TrafficParams {
  vidx_t n = 20000;
  int hubs = 10;           // backbone length; BFS depth ~ hubs
  double decay = 0.45;     // hub h receives ~ decay^h of the endpoints
  std::uint64_t seed = 1;
};

graph::EdgeList traffic_trace(const TrafficParams& params);

}  // namespace turbobc::gen
