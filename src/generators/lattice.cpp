#include "generators/lattice.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace turbobc::gen {

using graph::EdgeList;

EdgeList triangulated_grid(vidx_t rows, vidx_t cols) {
  TBC_CHECK(rows >= 2 && cols >= 2, "grid needs at least 2x2 vertices");
  const vidx_t n = rows * cols;
  EdgeList el(n, /*directed=*/false);
  const auto id = [cols](vidx_t r, vidx_t c) { return r * cols + c; };
  for (vidx_t r = 0; r < rows; ++r) {
    for (vidx_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) el.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) el.add_edge(id(r, c), id(r + 1, c));
      // One diagonal per cell triangulates the mesh: internal degree 6.
      if (r + 1 < rows && c + 1 < cols) el.add_edge(id(r, c), id(r + 1, c + 1));
    }
  }
  el.symmetrize();
  return el;
}

EdgeList markov_lattice(const MarkovLatticeParams& p) {
  TBC_CHECK(p.length >= 2 && p.width >= 2, "lattice needs at least 2x2 states");
  TBC_CHECK(p.burst_p >= 0.0 && p.burst_p <= 1.0, "burst_p must be in [0,1]");

  Xoshiro256 rng(p.seed);
  const vidx_t n = p.length * p.width;
  EdgeList el(n, /*directed=*/true);
  const auto id = [&](vidx_t x, vidx_t y) { return x * p.width + y; };

  for (vidx_t x = 0; x < p.length; ++x) {
    for (vidx_t y = 0; y < p.width; ++y) {
      const vidx_t u = id(x, y);
      // Forward transitions (advance the chain) and local backward/side
      // transitions; ~6 per interior state.
      if (x + 1 < p.length) {
        el.add_edge(u, id(x + 1, y));
        if (y + 1 < p.width) el.add_edge(u, id(x + 1, y + 1));
        if (y > 0) el.add_edge(u, id(x + 1, y - 1));
      }
      if (x > 0) el.add_edge(u, id(x - 1, y));
      if (y + 1 < p.width) el.add_edge(u, id(x, y + 1));
      if (y > 0) el.add_edge(u, id(x, y - 1));

      // Denser stencil for the g7j-like variant: additional transitions two
      // steps ahead across the width.
      for (int s = 0; s < p.extra_stencil; ++s) {
        const vidx_t xt = x + 2 < p.length ? x + 2 : x;
        const auto yt = static_cast<vidx_t>(
            rng.uniform(static_cast<std::uint64_t>(p.width)));
        const vidx_t v = id(xt, yt);
        if (v != u) el.add_edge(u, v);
      }

      // Occasional burst states with many outgoing transitions (bounded
      // max-degree outliers, like the mark3j/g7j matrices). Bursts stay on
      // the next lattice level so they widen the fan-out without creating
      // depth shortcuts — the BFS depth must keep tracking `length`.
      if (rng.bernoulli(p.burst_p) && x + 1 < p.length) {
        for (int s = 0; s < p.burst_size; ++s) {
          const auto yt = static_cast<vidx_t>(
              rng.uniform(static_cast<std::uint64_t>(p.width)));
          const vidx_t v = id(x + 1, yt);
          if (v != u) el.add_edge(u, v);
        }
      }
    }
  }
  el.canonicalize();
  return el;
}

}  // namespace turbobc::gen
