// Road-network generator: stand-in for luxembourg-osm (Table 1) — mean
// degree ~2, enormous BFS depth (the paper reports d = 1035 on 115k
// vertices), planar-ish.
//
// Construction: a sparse random planar-like mesh of intersections, with
// every mesh edge subdivided into a chain of degree-2 road vertices. Depth
// scales as (mesh diameter) x (chain length).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace turbobc::gen {

struct RoadParams {
  vidx_t grid_rows = 20;
  vidx_t grid_cols = 20;
  /// Fraction of mesh edges kept (sparsifies the grid like a road map).
  double keep_p = 0.75;
  /// Road vertices inserted per kept mesh edge.
  int subdivisions = 8;
  std::uint64_t seed = 1;
};

graph::EdgeList road_network(const RoadParams& params);

}  // namespace turbobc::gen
