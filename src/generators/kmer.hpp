// De Bruijn-like assembly-graph generator: stand-in for kmer_V1r (Table 4) —
// mean degree ~2, maximum degree 8, very deep BFS trees (the paper reports
// d = 324 on 214M vertices). Genome-assembly k-mer graphs are unions of long
// unitig paths joined at low-degree branch vertices; we build exactly that:
// a tree of chains.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace turbobc::gen {

struct KmerParams {
  /// Number of chains (unitigs).
  vidx_t chains = 64;
  /// Vertices per chain.
  vidx_t chain_len = 200;
  /// Maximum chains meeting at a branch vertex (degree <= 2*branching).
  int branching = 4;
  std::uint64_t seed = 1;
};

graph::EdgeList kmer_like(const KmerParams& params);

}  // namespace turbobc::gen
