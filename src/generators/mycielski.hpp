// Mycielski graphs: the paper's flagship irregular family (Table 3,
// Figures 3 and 5).
//
// The Mycielskian M(G) of G=(V,E) adds a shadow vertex u_i per v_i and an
// apex z: u_i connects to every neighbour of v_i, and z connects to every
// u_i. Starting from M2 = K2, iterating k-2 times yields "mycielskiK" with
//   n_k = 3 * 2^(k-2) - 1   and   m_{k+1} = 3 m_k + n_k  (undirected edges).
// These graphs are triangle-free with growing chromatic number, have BFS
// depth 3 from any vertex once k >= 4 (apex chains), and an extremely
// hub-concentrated degree distribution — which is exactly why the paper uses
// them to stress warp-level (veCSC) SpMV.
#pragma once

#include "graph/edge_list.hpp"

namespace turbobc::gen {

/// Build mycielski<k>, k >= 2. k=15..19 are the paper's sizes; the scaled
/// reproduction uses k in [7, 13].
graph::EdgeList mycielski(int k);

/// Closed-form vertex count 3 * 2^(k-2) - 1 (k >= 2).
vidx_t mycielski_vertices(int k);

}  // namespace turbobc::gen
