#include "generators/small_world.hpp"

#include "common/error.hpp"
#include "common/prng.hpp"

namespace turbobc::gen {

using graph::EdgeList;

EdgeList small_world(const SmallWorldParams& params) {
  TBC_CHECK(params.n >= 3, "small_world needs at least 3 vertices");
  TBC_CHECK(params.k >= 2 && params.k < params.n,
            "ring degree k must be in [2, n)");
  TBC_CHECK(params.rewire_p >= 0.0 && params.rewire_p <= 1.0,
            "rewire probability must be in [0, 1]");

  Xoshiro256 rng(params.seed);
  const vidx_t n = params.n;
  EdgeList el(n, /*directed=*/false);

  // Ring lattice with k/2 neighbours on each side; each lattice edge is
  // rewired to a uniform random endpoint with probability p (Watts-Strogatz).
  for (vidx_t u = 0; u < n; ++u) {
    for (int j = 1; j <= params.k / 2; ++j) {
      vidx_t v = static_cast<vidx_t>((u + j) % n);
      if (rng.bernoulli(params.rewire_p)) {
        v = static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(n)));
        if (v == u) v = static_cast<vidx_t>((u + j) % n);
      }
      el.add_edge(u, v);
    }
  }
  el.symmetrize();
  return el;
}

}  // namespace turbobc::gen
