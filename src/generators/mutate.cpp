#include "generators/mutate.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace turbobc::gen {

namespace {

using graph::Edge;
using graph::EdgeList;

/// Rebuild an EdgeList from raw parts (EdgeList::add_edge range-checks, so
/// the mutations below can manipulate plain vectors and convert once).
EdgeList from_parts(vidx_t n, bool directed, const std::vector<Edge>& edges) {
  EdgeList out(n, directed);
  for (const Edge& e : edges) out.add_edge(e.u, e.v);
  return out;
}

EdgeList add_edges(const EdgeList& g, std::uint64_t seed, vidx_t count) {
  const vidx_t n = g.num_vertices();
  if (n == 0) return g;
  Xoshiro256 rng(seed);
  std::vector<Edge> edges = g.edges();
  for (vidx_t i = 0; i < count; ++i) {
    const auto u = static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(n)));
    edges.push_back({u, v});
    if (!g.directed() && u != v) edges.push_back({v, u});
  }
  return from_parts(n, g.directed(), edges);
}

EdgeList drop_edges(const EdgeList& g, std::uint64_t seed, vidx_t count) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges = g.edges();
  for (vidx_t i = 0; i < count && !edges.empty(); ++i) {
    const auto k = static_cast<std::size_t>(
        rng.uniform(static_cast<std::uint64_t>(edges.size())));
    const Edge victim = edges[k];
    if (!g.directed() && victim.u != victim.v) {
      // Keep the both-arcs invariant under ANY trace: earlier mutations may
      // have left unbalanced duplicate copies (duplicate_edges copies one
      // arc of a pair), so dropping one copy each way is not enough — erase
      // every copy of the undirected edge.
      std::erase_if(edges, [&](const Edge& e) {
        return (e == victim) || (e == Edge{victim.v, victim.u});
      });
    } else {
      edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(k));
    }
  }
  return from_parts(g.num_vertices(), g.directed(), edges);
}

EdgeList add_self_loops(const EdgeList& g, std::uint64_t seed, vidx_t count) {
  const vidx_t n = g.num_vertices();
  if (n == 0) return g;
  Xoshiro256 rng(seed);
  std::vector<Edge> edges = g.edges();
  for (vidx_t i = 0; i < count; ++i) {
    const auto v = static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(n)));
    edges.push_back({v, v});
  }
  return from_parts(n, g.directed(), edges);
}

EdgeList duplicate_edges(const EdgeList& g, std::uint64_t seed, vidx_t count) {
  if (g.edges().empty()) return g;
  Xoshiro256 rng(seed);
  std::vector<Edge> edges = g.edges();
  const std::size_t original = edges.size();
  for (vidx_t i = 0; i < count; ++i) {
    const auto k = static_cast<std::size_t>(
        rng.uniform(static_cast<std::uint64_t>(original)));
    const Edge e = edges[k];
    edges.push_back(e);
    // Duplicate the whole undirected edge so the arc multiset stays
    // symmetric for later mutations.
    if (!g.directed() && e.u != e.v) edges.push_back({e.v, e.u});
  }
  return from_parts(g.num_vertices(), g.directed(), edges);
}

EdgeList add_isolated(const EdgeList& g, vidx_t count) {
  return from_parts(static_cast<vidx_t>(g.num_vertices() + count),
                    g.directed(), g.edges());
}

EdgeList disconnected_union(const EdgeList& g, std::uint64_t seed,
                            vidx_t count) {
  const vidx_t k = std::max<vidx_t>(count, 1);
  const vidx_t base = g.num_vertices();
  std::vector<Edge> edges = g.edges();
  Xoshiro256 rng(seed);
  // Alternate between a path component (deep BFS) and a small clique
  // (dense frontier); both stay disjoint from the base graph.
  const bool clique = rng.uniform(2) == 1 && k <= 8;
  for (vidx_t i = 0; i + 1 < k; ++i) {
    const vidx_t a = static_cast<vidx_t>(base + i);
    if (clique) {
      for (vidx_t j = static_cast<vidx_t>(i + 1); j < k; ++j) {
        const vidx_t b = static_cast<vidx_t>(base + j);
        edges.push_back({a, b});
        if (!g.directed()) edges.push_back({b, a});
      }
    } else {
      const vidx_t b = static_cast<vidx_t>(a + 1);
      edges.push_back({a, b});
      if (!g.directed()) edges.push_back({b, a});
    }
  }
  return from_parts(static_cast<vidx_t>(base + k), g.directed(), edges);
}

EdgeList skew_degrees(const EdgeList& g, std::uint64_t seed, vidx_t count) {
  const vidx_t n = g.num_vertices();
  if (n == 0) return g;
  Xoshiro256 rng(seed);
  std::vector<Edge> edges = g.edges();
  const auto hub =
      static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(n)));
  for (vidx_t i = 0; i < count; ++i) {
    const auto v = static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (v == hub) continue;
    if (g.directed()) {
      // Either direction: in-hubs stress CSC columns, out-hubs CSR rows.
      if (rng.uniform(2) == 0) {
        edges.push_back({v, hub});
      } else {
        edges.push_back({hub, v});
      }
    } else {
      edges.push_back({v, hub});
      edges.push_back({hub, v});
    }
  }
  return from_parts(n, g.directed(), edges);
}

}  // namespace

EdgeList apply_mutation(const EdgeList& graph, const Mutation& mutation) {
  TBC_CHECK(mutation.count >= 0, "mutation count must be non-negative");
  switch (mutation.kind) {
    case MutationKind::kAddEdges:
      return add_edges(graph, mutation.seed, mutation.count);
    case MutationKind::kDropEdges:
      return drop_edges(graph, mutation.seed, mutation.count);
    case MutationKind::kAddSelfLoops:
      return add_self_loops(graph, mutation.seed, mutation.count);
    case MutationKind::kDuplicateEdges:
      return duplicate_edges(graph, mutation.seed, mutation.count);
    case MutationKind::kAddIsolated:
      return add_isolated(graph, mutation.count);
    case MutationKind::kDisconnectedUnion:
      return disconnected_union(graph, mutation.seed, mutation.count);
    case MutationKind::kSkewDegrees:
      return skew_degrees(graph, mutation.seed, mutation.count);
  }
  throw InternalError("unhandled mutation kind");
}

EdgeList apply_mutations(const EdgeList& graph,
                         std::span<const Mutation> trace) {
  EdgeList out = graph;
  for (const Mutation& m : trace) out = apply_mutation(out, m);
  return out;
}

std::string_view to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::kAddEdges: return "add_edges";
    case MutationKind::kDropEdges: return "drop_edges";
    case MutationKind::kAddSelfLoops: return "add_self_loops";
    case MutationKind::kDuplicateEdges: return "duplicate_edges";
    case MutationKind::kAddIsolated: return "add_isolated";
    case MutationKind::kDisconnectedUnion: return "disconnected_union";
    case MutationKind::kSkewDegrees: return "skew_degrees";
  }
  return "unknown";
}

std::optional<MutationKind> mutation_kind_from_string(std::string_view token) {
  for (const MutationKind kind : kAllMutationKinds) {
    if (to_string(kind) == token) return kind;
  }
  return std::nullopt;
}

}  // namespace turbobc::gen
