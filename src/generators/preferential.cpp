#include "generators/preferential.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace turbobc::gen {

using graph::EdgeList;

EdgeList preferential_attachment(const PreferentialParams& p) {
  TBC_CHECK(p.n >= 2, "preferential attachment needs at least 2 vertices");
  TBC_CHECK(p.m_attach >= 1, "m_attach must be at least 1");

  Xoshiro256 rng(p.seed);
  EdgeList el(p.n, p.directed);

  // Endpoint repetition list: choosing a uniform element is choosing a
  // vertex with probability proportional to its degree (the classic BA
  // implementation trick).
  std::vector<vidx_t> endpoints;
  endpoints.reserve(static_cast<std::size_t>(p.n) * p.m_attach * 2);
  endpoints.push_back(0);

  for (vidx_t u = 1; u < p.n; ++u) {
    const int attach = std::min<int>(p.m_attach, u);
    for (int j = 0; j < attach; ++j) {
      const vidx_t v = endpoints[rng.uniform(endpoints.size())];
      if (v == u) continue;
      el.add_edge(u, v);
      endpoints.push_back(v);
    }
    endpoints.push_back(u);
  }

  if (p.directed) {
    el.canonicalize();
  } else {
    el.symmetrize();
  }
  return el;
}

EdgeList superhub_social(const SuperhubParams& p) {
  TBC_CHECK(p.n >= 2, "superhub graph needs at least 2 vertices");
  TBC_CHECK(p.celebrities >= 1 && p.celebrities < p.n,
            "celebrity count out of range");
  TBC_CHECK(p.celebrity_p >= 0.0 && p.celebrity_p <= 1.0,
            "celebrity_p must be in [0, 1]");

  Xoshiro256 rng(p.seed);
  EdgeList el(p.n, /*directed=*/true);
  std::vector<vidx_t> endpoints = {0};

  for (vidx_t u = 1; u < p.n; ++u) {
    const int arcs = std::min<int>(p.out_degree, u);
    for (int j = 0; j < arcs; ++j) {
      vidx_t v;
      if (rng.bernoulli(p.celebrity_p)) {
        v = static_cast<vidx_t>(
            rng.uniform(static_cast<std::uint64_t>(p.celebrities)));
      } else {
        v = endpoints[rng.uniform(endpoints.size())];
      }
      if (v == u) continue;
      el.add_edge(u, v);
      endpoints.push_back(v);
    }
    endpoints.push_back(u);
  }
  el.canonicalize();
  return el;
}

}  // namespace turbobc::gen
