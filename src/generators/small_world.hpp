// Watts-Strogatz small-world generator: the paper's `smallworld` graph
// (Table 2; n = 100k, mean degree 10, BFS depth 9).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace turbobc::gen {

struct SmallWorldParams {
  vidx_t n = 10000;
  int k = 10;              // ring neighbours (k/2 each side); mean degree ~ k
  double rewire_p = 0.1;   // rewiring probability
  std::uint64_t seed = 1;
};

graph::EdgeList small_world(const SmallWorldParams& params);

}  // namespace turbobc::gen
