#include "generators/traffic.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace turbobc::gen {

using graph::EdgeList;

EdgeList traffic_trace(const TrafficParams& p) {
  TBC_CHECK(p.hubs >= 2, "traffic trace needs at least 2 hubs");
  TBC_CHECK(p.n > static_cast<vidx_t>(p.hubs) * 2, "traffic trace too small");
  TBC_CHECK(p.decay > 0.0 && p.decay < 1.0, "decay must be in (0, 1)");

  Xoshiro256 rng(p.seed);
  EdgeList el(p.n, /*directed=*/false);

  // Backbone of collector hubs: vertices [0, hubs).
  for (int h = 0; h + 1 < p.hubs; ++h) {
    el.add_edge(static_cast<vidx_t>(h), static_cast<vidx_t>(h + 1));
  }

  // Geometric hub weights.
  std::vector<double> cdf(static_cast<std::size_t>(p.hubs));
  double acc = 0.0;
  for (int h = 0; h < p.hubs; ++h) {
    acc += std::pow(p.decay, h);
    cdf[static_cast<std::size_t>(h)] = acc;
  }
  for (auto& c : cdf) c /= acc;

  for (vidx_t v = static_cast<vidx_t>(p.hubs); v < p.n; ++v) {
    const double r = rng.uniform_real();
    int h = 0;
    while (h + 1 < p.hubs && cdf[static_cast<std::size_t>(h)] < r) ++h;
    el.add_edge(static_cast<vidx_t>(h), v);
    // A second flow for a minority of endpoints nudges the mean degree
    // toward the mawi value of ~2 (each endpoint contributes 2 arcs after
    // symmetrization already; this adds cross-hub flows).
    if (rng.bernoulli(0.05)) {
      const auto h2 = static_cast<vidx_t>(rng.uniform(
          static_cast<std::uint64_t>(p.hubs)));
      if (h2 != static_cast<vidx_t>(h)) el.add_edge(h2, v);
    }
  }
  el.symmetrize();
  return el;
}

}  // namespace turbobc::gen
