// Generic random-graph generators.
//
//  * erdos_renyi — G(n, m)-style uniform random graph; the workhorse of the
//    property-test suites (not a paper workload).
//  * random_local_digraph — directed graph with a clipped-lognormal
//    out-degree distribution and window-local targets. With (mean 14, hi
//    dispersion, window n/15) it reproduces the g7j*sc signature (Table 1/2:
//    degree 153/14/24, d ~ 15); with (mean 6, window n/32) the ASIC-*ks
//    circuit signature (Table 2: degree ~206/6/6, d ~ 31) — circuit netlists
//    are mostly local with rare global nets, which `global_p` provides.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace turbobc::gen {

struct ErdosRenyiParams {
  vidx_t n = 1000;
  eidx_t arcs = 5000;     // target arc count before dedup
  bool directed = true;
  std::uint64_t seed = 1;
};

graph::EdgeList erdos_renyi(const ErdosRenyiParams& params);

struct LocalDigraphParams {
  vidx_t n = 10000;
  double mean_out_degree = 14.0;
  double degree_dispersion = 1.0;  // lognormal sigma; higher -> heavier tail
  eidx_t max_out_degree = 153;
  vidx_t window = 700;     // targets land within +-window (BFS depth ~ n/window)
  double global_p = 0.02;  // rare long-range targets (global nets / jumps)
  std::uint64_t seed = 1;
};

graph::EdgeList random_local_digraph(const LocalDigraphParams& params);

}  // namespace turbobc::gen
