// R-MAT / stochastic Kronecker generator: the paper's kron-logn* family
// (Table 3), i.e. Graph500-style scale-free graphs.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace turbobc::gen {

struct KroneckerParams {
  int scale = 10;           // n = 2^scale
  double edge_factor = 16;  // directed arcs per vertex before symmetrizing
  // Graph500 quadrant probabilities.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  std::uint64_t seed = 1;
};

/// Undirected (symmetrized) Kronecker graph. The paper's kron-logn18..21
/// use edge_factor ~ 80; the scaled reproduction uses 40.
graph::EdgeList kronecker(const KroneckerParams& params);

}  // namespace turbobc::gen
