#include "generators/kronecker.hpp"

#include "common/error.hpp"
#include "common/prng.hpp"

namespace turbobc::gen {

using graph::EdgeList;

EdgeList kronecker(const KroneckerParams& params) {
  TBC_CHECK(params.scale >= 1 && params.scale <= 26,
            "kronecker scale out of supported range");
  TBC_CHECK(params.edge_factor > 0, "edge_factor must be positive");
  const double d = 1.0 - params.a - params.b - params.c;
  TBC_CHECK(d > 0.0, "RMAT quadrant probabilities must sum below 1");

  const vidx_t n = static_cast<vidx_t>(1) << params.scale;
  const auto arcs =
      static_cast<eidx_t>(params.edge_factor * static_cast<double>(n));

  Xoshiro256 rng(params.seed);
  EdgeList el(n, /*directed=*/false);
  for (eidx_t e = 0; e < arcs; ++e) {
    vidx_t u = 0;
    vidx_t v = 0;
    for (int bit = 0; bit < params.scale; ++bit) {
      const double r = rng.uniform_real();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left: neither bit set
      } else if (r < params.a + params.b) {
        v |= 1;
      } else if (r < params.a + params.b + params.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) el.add_edge(u, v);
  }
  el.symmetrize();
  return el;
}

}  // namespace turbobc::gen
