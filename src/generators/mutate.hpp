// Structured graph mutations for the fuzzing subsystem (src/qa).
//
// Each mutation is a small, deterministic, seed-driven perturbation of an
// EdgeList, chosen to reach the shapes where frontier/atomics bugs hide:
// duplicate arcs and self-loops (canonicalization paths), isolated vertices
// and disconnected unions (unreachable-vertex handling), degree-skew boosts
// (warp-imbalance paths) and plain random edge churn. A mutation trace — the
// ordered list of (kind, seed, count) records — fully determines the output
// graph, which is what makes the qa replay files self-contained.
//
// Undirected graphs stay structurally undirected: mutations that add or drop
// arcs always do so in (u,v)/(v,u) pairs, so the implicit both-arcs-present
// invariant of EdgeList::symmetrize survives any trace.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "graph/edge_list.hpp"

namespace turbobc::gen {

enum class MutationKind {
  kAddEdges,           // random new arcs (pairs when undirected)
  kDropEdges,          // remove random arcs (pairs when undirected)
  kAddSelfLoops,       // arcs (v, v); canonicalize() must drop them
  kDuplicateEdges,     // repeat existing arcs; canonicalize() must dedup
  kAddIsolated,        // grow n by vertices with no arcs
  kDisconnectedUnion,  // disjoint union with a small path/clique component
  kSkewDegrees,        // wire many vertices to one hub (degree-skew boost)
};

struct Mutation {
  MutationKind kind = MutationKind::kAddEdges;
  /// Seed for the mutation's private PRNG stream; independent of the base
  /// graph's generator seed.
  std::uint64_t seed = 1;
  /// Magnitude: edges added/dropped/duplicated, vertices appended, size of
  /// the unioned component, or spokes wired to the hub.
  vidx_t count = 1;

  friend bool operator==(const Mutation&, const Mutation&) = default;
};

/// Apply one mutation; the input is not modified. Counts larger than the
/// graph allows (e.g. dropping more arcs than exist) saturate harmlessly.
graph::EdgeList apply_mutation(const graph::EdgeList& graph,
                               const Mutation& mutation);

/// Left-to-right fold of apply_mutation over a trace.
graph::EdgeList apply_mutations(const graph::EdgeList& graph,
                                std::span<const Mutation> trace);

/// Stable token used by the qa replay-file format ("add_edges", ...).
std::string_view to_string(MutationKind kind);

/// Inverse of to_string; nullopt for unknown tokens.
std::optional<MutationKind> mutation_kind_from_string(std::string_view token);

/// All kinds, for fuzzers and property tests that enumerate them.
inline constexpr MutationKind kAllMutationKinds[] = {
    MutationKind::kAddEdges,          MutationKind::kDropEdges,
    MutationKind::kAddSelfLoops,      MutationKind::kDuplicateEdges,
    MutationKind::kAddIsolated,       MutationKind::kDisconnectedUnion,
    MutationKind::kSkewDegrees,
};

}  // namespace turbobc::gen
