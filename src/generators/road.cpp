#include "generators/road.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace turbobc::gen {

using graph::EdgeList;

EdgeList road_network(const RoadParams& p) {
  TBC_CHECK(p.grid_rows >= 2 && p.grid_cols >= 2, "road grid too small");
  TBC_CHECK(p.subdivisions >= 0, "subdivisions must be non-negative");
  TBC_CHECK(p.keep_p > 0.0 && p.keep_p <= 1.0, "keep_p must be in (0, 1]");

  Xoshiro256 rng(p.seed);
  const vidx_t n_int = p.grid_rows * p.grid_cols;
  const auto id = [&](vidx_t r, vidx_t c) { return r * p.grid_cols + c; };

  // Mesh edges between intersections. Each intersection keeps its "left"
  // and "up" grid edges with probability keep_p; when both dice fail, one is
  // forced so every intersection stays connected toward the origin (road
  // maps are sparse but connected).
  std::vector<std::pair<vidx_t, vidx_t>> mesh;
  for (vidx_t r = 0; r < p.grid_rows; ++r) {
    for (vidx_t c = 0; c < p.grid_cols; ++c) {
      if (r == 0 && c == 0) continue;
      const bool has_left = c > 0;
      const bool has_up = r > 0;
      bool keep_left = has_left && rng.bernoulli(p.keep_p);
      bool keep_up = has_up && rng.bernoulli(p.keep_p);
      if (!keep_left && !keep_up) {
        if (has_up) {
          keep_up = true;
        } else {
          keep_left = true;
        }
      }
      if (keep_left) mesh.emplace_back(id(r, c - 1), id(r, c));
      if (keep_up) mesh.emplace_back(id(r - 1, c), id(r, c));
    }
  }

  const auto n_total =
      static_cast<vidx_t>(n_int + mesh.size() * static_cast<std::size_t>(
                                                    p.subdivisions));
  EdgeList el(n_total, /*directed=*/false);
  vidx_t next = n_int;
  for (const auto& [a, b] : mesh) {
    vidx_t prev = a;
    for (int s = 0; s < p.subdivisions; ++s) {
      el.add_edge(prev, next);
      prev = next++;
    }
    el.add_edge(prev, b);
  }
  el.symmetrize();
  return el;
}

}  // namespace turbobc::gen
