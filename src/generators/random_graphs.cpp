#include "generators/random_graphs.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace turbobc::gen {

using graph::EdgeList;

EdgeList erdos_renyi(const ErdosRenyiParams& p) {
  TBC_CHECK(p.n >= 2, "erdos_renyi needs at least 2 vertices");
  TBC_CHECK(p.arcs >= 0, "arc count must be non-negative");

  Xoshiro256 rng(p.seed);
  EdgeList el(p.n, p.directed);
  for (eidx_t e = 0; e < p.arcs; ++e) {
    const auto u = static_cast<vidx_t>(
        rng.uniform(static_cast<std::uint64_t>(p.n)));
    const auto v = static_cast<vidx_t>(
        rng.uniform(static_cast<std::uint64_t>(p.n)));
    if (u != v) el.add_edge(u, v);
  }
  if (p.directed) {
    el.canonicalize();
  } else {
    el.symmetrize();
  }
  return el;
}

EdgeList random_local_digraph(const LocalDigraphParams& p) {
  TBC_CHECK(p.n >= 3, "random_local_digraph needs at least 3 vertices");
  TBC_CHECK(p.mean_out_degree > 0, "mean_out_degree must be positive");
  TBC_CHECK(p.window >= 1, "window must be at least 1");

  Xoshiro256 rng(p.seed);
  EdgeList el(p.n, /*directed=*/true);

  // Clipped lognormal out-degrees with the requested mean. For lognormal,
  // mean = exp(mu + sigma^2 / 2) => mu = ln(mean) - sigma^2 / 2.
  const double sigma = p.degree_dispersion;
  const double mu = std::log(p.mean_out_degree) - sigma * sigma / 2.0;

  const auto normal = [&rng]() {
    // Box-Muller; both uniforms strictly in (0, 1).
    const double u1 = 1.0 - rng.uniform_real();
    const double u2 = rng.uniform_real();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  };

  // A forward backbone keeps the graph weakly connected and the BFS depth
  // governed by the window size.
  for (vidx_t u = 0; u + 1 < p.n; ++u) el.add_edge(u, u + 1);

  for (vidx_t u = 0; u < p.n; ++u) {
    const double draw = std::exp(mu + sigma * normal());
    const auto degree = static_cast<eidx_t>(std::min<double>(
        static_cast<double>(p.max_out_degree), std::max(1.0, draw)));
    for (eidx_t j = 0; j < degree; ++j) {
      vidx_t v;
      if (rng.bernoulli(p.global_p)) {
        v = static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(p.n)));
      } else {
        const auto span = static_cast<std::uint64_t>(p.window) * 2 + 1;
        const auto off = static_cast<std::int64_t>(rng.uniform(span)) -
                         static_cast<std::int64_t>(p.window);
        v = static_cast<vidx_t>(std::clamp<std::int64_t>(
            static_cast<std::int64_t>(u) + off, 0, p.n - 1));
      }
      if (v != u) el.add_edge(u, v);
    }
  }
  el.canonicalize();
  return el;
}

}  // namespace turbobc::gen
