#include "generators/web.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace turbobc::gen {

using graph::EdgeList;

EdgeList web_crawl(const WebParams& p) {
  TBC_CHECK(p.n >= 3, "web crawl needs at least 3 pages");
  TBC_CHECK(p.out_degree >= 1, "out_degree must be at least 1");
  TBC_CHECK(p.window >= 1, "window must be at least 1");

  Xoshiro256 rng(p.seed);
  EdgeList el(p.n, /*directed=*/true);

  // adj[u] kept for the copy step. Memory is O(m), same as the result.
  std::vector<std::vector<vidx_t>> adj(static_cast<std::size_t>(p.n));

  // A backbone path guarantees every page is reachable and sets the floor of
  // the BFS depth (crawl frontier ordering).
  for (vidx_t u = 0; u + 1 < p.n; ++u) {
    adj[u].push_back(u + 1);
    el.add_edge(u, u + 1);
  }

  for (vidx_t u = 1; u < p.n; ++u) {
    const int links = 1 + static_cast<int>(rng.uniform(
                              static_cast<std::uint64_t>(p.out_degree) * 2));
    for (int j = 0; j < links; ++j) {
      vidx_t v;
      if (rng.bernoulli(p.copy_p) && u > 1) {
        // Copy a link of a nearby reference page.
        const auto lo = static_cast<vidx_t>(
            u > p.window ? u - p.window : 0);
        const auto ref = static_cast<vidx_t>(
            lo + rng.uniform(static_cast<std::uint64_t>(u - lo)));
        const auto& ref_links = adj[ref];
        if (ref_links.empty()) continue;
        v = ref_links[rng.uniform(ref_links.size())];
      } else if (rng.bernoulli(p.local_p)) {
        // Host-local target within the window (either direction).
        const auto span = static_cast<std::uint64_t>(p.window) * 2 + 1;
        const auto off = static_cast<std::int64_t>(rng.uniform(span)) -
                         static_cast<std::int64_t>(p.window);
        const auto t = std::clamp<std::int64_t>(
            static_cast<std::int64_t>(u) + off, 0, p.n - 1);
        v = static_cast<vidx_t>(t);
      } else {
        // Global links point to already-crawled (earlier) pages — real web
        // pages link to established popular pages. Keeping them backward
        // preserves the crawl's moderate BFS depth (~ n / window): forward
        // shortcuts would collapse it to log n.
        v = static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(u)));
      }
      if (v == u) continue;
      el.add_edge(u, v);
      adj[u].push_back(v);
    }
  }
  el.canonicalize();
  return el;
}

}  // namespace turbobc::gen
