#include "generators/mycielski.hpp"

#include "common/error.hpp"

namespace turbobc::gen {

using graph::Edge;
using graph::EdgeList;

vidx_t mycielski_vertices(int k) {
  TBC_CHECK(k >= 2 && k <= 24, "mycielski order out of supported range");
  return static_cast<vidx_t>(3 * (1 << (k - 2)) - 1);
}

EdgeList mycielski(int k) {
  TBC_CHECK(k >= 2 && k <= 24, "mycielski order out of supported range");

  // Undirected edges kept once; symmetrized at the end.
  std::vector<Edge> edges = {{0, 1}};  // M2 = K2
  vidx_t n = 2;

  for (int step = 2; step < k; ++step) {
    // Vertices: originals [0, n), shadows [n, 2n), apex 2n.
    std::vector<Edge> next;
    next.reserve(edges.size() * 3 + static_cast<std::size_t>(n));
    const vidx_t apex = 2 * n;
    for (const Edge& e : edges) {
      next.push_back(e);                                   // v_i - v_j
      next.push_back(Edge{static_cast<vidx_t>(e.u + n), e.v});  // u_i - v_j
      next.push_back(Edge{e.u, static_cast<vidx_t>(e.v + n)});  // v_i - u_j
    }
    for (vidx_t i = 0; i < n; ++i) {
      next.push_back(Edge{static_cast<vidx_t>(i + n), apex});  // u_i - z
    }
    edges = std::move(next);
    n = 2 * n + 1;
  }

  EdgeList el(n, /*directed=*/false);
  for (const Edge& e : edges) el.add_edge(e.u, e.v);
  el.symmetrize();
  return el;
}

}  // namespace turbobc::gen
