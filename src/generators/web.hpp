// Copy-model web-crawl generator: stand-in for it-2004 / sk-2005 (Table 4) —
// directed, mean out-degree ~28-39, bounded hub degrees (~10k), BFS depth
// ~50 from host-level locality.
//
// Kumar et al.'s copy model: each new page either copies an out-link from a
// reference page or links uniformly at random. We add host locality — most
// targets fall within a nearby index window — which is what gives web crawls
// their moderate (tens, not log n) BFS depth.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace turbobc::gen {

struct WebParams {
  vidx_t n = 20000;
  int out_degree = 20;
  double copy_p = 0.5;     // copy an existing page's link
  double local_p = 0.85;   // otherwise: target within the locality window
  vidx_t window = 400;     // host-locality window (controls BFS depth ~ n/window)
  std::uint64_t seed = 1;
};

graph::EdgeList web_crawl(const WebParams& params);

}  // namespace turbobc::gen
