#include "generators/kmer.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace turbobc::gen {

using graph::EdgeList;

EdgeList kmer_like(const KmerParams& p) {
  TBC_CHECK(p.chains >= 1 && p.chain_len >= 2, "kmer graph too small");
  TBC_CHECK(p.branching >= 1, "branching must be at least 1");

  Xoshiro256 rng(p.seed);
  const vidx_t n = p.chains * p.chain_len;
  EdgeList el(n, /*directed=*/false);

  // Each chain is a path; chain c covers [c*L, (c+1)*L).
  const vidx_t L = p.chain_len;
  for (vidx_t c = 0; c < p.chains; ++c) {
    for (vidx_t i = 0; i + 1 < L; ++i) {
      el.add_edge(c * L + i, c * L + i + 1);
    }
  }

  // Join the chains into one connected assembly graph: chain c's head
  // attaches to an endpoint of an earlier chain, at most `branching` chains
  // per attachment point (keeps max degree at 2*branching like real k-mer
  // graphs, whose degree is bounded by the alphabet).
  std::vector<int> junction_uses(static_cast<std::size_t>(p.chains) * 2, 0);
  for (vidx_t c = 1; c < p.chains; ++c) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto target_chain =
          static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(c)));
      const bool tail = rng.bernoulli(0.5);
      const std::size_t slot = static_cast<std::size_t>(target_chain) * 2 +
                               (tail ? 1u : 0u);
      if (junction_uses[slot] >= p.branching - 1) continue;
      ++junction_uses[slot];
      const vidx_t endpoint = tail ? target_chain * L + (L - 1)
                                   : target_chain * L;
      el.add_edge(endpoint, c * L);
      break;
    }
  }
  el.symmetrize();
  return el;
}

}  // namespace turbobc::gen
