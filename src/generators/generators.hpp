// Umbrella header: all synthetic graph generators.
#pragma once

#include "generators/kmer.hpp"          // IWYU pragma: export
#include "generators/kronecker.hpp"     // IWYU pragma: export
#include "generators/lattice.hpp"       // IWYU pragma: export
#include "generators/mutate.hpp"        // IWYU pragma: export
#include "generators/mycielski.hpp"     // IWYU pragma: export
#include "generators/preferential.hpp"  // IWYU pragma: export
#include "generators/random_graphs.hpp" // IWYU pragma: export
#include "generators/road.hpp"          // IWYU pragma: export
#include "generators/small_world.hpp"   // IWYU pragma: export
#include "generators/traffic.hpp"       // IWYU pragma: export
#include "generators/web.hpp"           // IWYU pragma: export
