// Lattice-structured generators for the paper's "regular" graph families.
//
//  * triangulated_grid — planar triangular mesh, internal degree 6: the
//    structural stand-in for the delaunay_n* graphs of Table 1 (mean degree
//    6, stddev ~1, BFS depth ~ sqrt(n)).
//  * markov_lattice — directed local-transition lattice standing in for the
//    mark3j*sc / g7j*sc Markov-chain matrices of Tables 1, 2 and 5: a
//    length x width grid whose states step to a small forward/backward
//    stencil, giving mean out-degree ~6, BFS depth ~ length, plus a sprinkle
//    of longer transitions that raises the max degree without changing the
//    regular character (scf stays small).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace turbobc::gen {

/// rows x cols triangular mesh (undirected).
graph::EdgeList triangulated_grid(vidx_t rows, vidx_t cols);

struct MarkovLatticeParams {
  vidx_t length = 100;  // BFS depth scales with this dimension
  vidx_t width = 50;
  /// Probability that a state gets a burst of extra local transitions; used
  /// to reproduce the mark3j max-degree ~44 and g7j max-degree ~153 columns.
  double burst_p = 0.01;
  int burst_size = 16;
  /// Extra dense local stencil (g7j-style, mean degree ~14) when > 0.
  int extra_stencil = 0;
  std::uint64_t seed = 1;
};

graph::EdgeList markov_lattice(const MarkovLatticeParams& params);

}  // namespace turbobc::gen
