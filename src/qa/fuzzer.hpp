// The fuzz loop: seeded, budgeted differential testing of the whole BC
// stack against the invariant oracle.
//
// Each case derives deterministically from (seed, case index): a generator
// family, its parameter seed, a size class biased towards tiny graphs, and
// a short structured-mutation trace (generators/mutate.hpp). The oracle
// (qa/oracle.hpp) then runs every implementation on the resulting graph;
// the expensive stages (exact all-sources, thread determinism, edge BC)
// cycle on fixed cadences so a budget of N cases still exercises all of
// them hundreds of times without N times the cost.
//
// On a violation the case is delta-debugged to a minimal explicit graph
// (qa/minimize.hpp) and written as a self-contained `.fuzz` replay file;
// `turbobc_fuzz --replay <file>` re-runs the oracle on it deterministically.
// Everything here is pure w.r.t. (options) — same options, same verdicts,
// same minimized graphs, at any host thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "qa/fuzz_case.hpp"
#include "qa/oracle.hpp"

namespace turbobc::qa {

struct FuzzerOptions {
  std::uint64_t seed = 1;
  /// Number of cases to run.
  int budget = 1000;
  /// Largest size class drawn (see FuzzCase::size_class).
  int max_size_class = kMaxSizeClass;
  /// Cap on mutations appended per case.
  int max_mutations = 3;
  /// Base oracle configuration; the per-case cadences below override the
  /// check_* toggles case by case.
  OracleOptions oracle;
  /// Run the exact all-sources stage on every k-th case (0 disables).
  int exact_every = 7;
  /// Run the thread-determinism stage on every k-th case (0 disables).
  int determinism_every = 5;
  /// Run the edge-BC stage on every k-th case (0 disables).
  int edge_bc_every = 3;
  /// Run the approx-engine stage (coverage, engine agreement, accounting,
  /// pool-width determinism — see oracle.hpp) on every k-th case
  /// (0 disables).
  int approx_every = 6;
  /// Run the distributed-engine stage (dist-vs-single bit agreement, shard
  /// inventory, comm conservation — see oracle.hpp) on every k-th case
  /// (0 disables). Phase-shifted from approx_every so the two six-cycles
  /// never land on the same case.
  int dist_every = 6;
  /// Run the MS-BFS batched stage (per-source bit-identity, push/pull/auto
  /// mask-sweep agreement, word-op accounting, footprint model — see
  /// oracle.hpp) on every k-th case (0 disables). Phase-shifted so the
  /// three six-cycles (approx, dist, msbfs) never coincide.
  int msbfs_every = 6;
  /// Run the serving-engine stage (scratch-vs-incremental BC bit-identity
  /// over a random update stream, session-transcript pool-width
  /// byte-identity — see oracle.hpp) on every k-th case (0 disables).
  /// Phase 2 of the six-cycle, so the four six-cycles stay disjoint.
  int serve_every = 6;
  /// Run the out-of-core storage stage (codec round-trip, compressed and
  /// streamed BC bit-identity, fetch-free ledger, compressed inventory —
  /// see oracle.hpp) on every k-th case (0 disables). Phase 0 of the
  /// six-cycle — the slot the other six-cycles leave free.
  int ooc_every = 6;
  /// Run the serve-daemon stage (socket transcript byte-identity, concurrent
  /// (epoch, digest) pairs vs a scratch replay of the update log — see
  /// oracle.hpp) on every k-th case (0 disables). Twelve-cycle at phase 3 —
  /// the six-cycle slot the other stages leave free — because each run
  /// spawns a real server plus client threads.
  int daemon_every = 12;
  /// Run the hybrid co-execution stage (co-executed-vs-single bit identity,
  /// probe acceptance, ledger accounting, full-report pool-width
  /// determinism — see oracle.hpp) on every k-th case (0 disables).
  /// Twelve-cycle at phase 6: the other half of the twelve-cycle from the
  /// daemon stage, so the two heavyweight stages never share a case.
  int hybrid_every = 12;
  /// Stop early after this many distinct failures (each one costs a
  /// minimization run).
  int max_failures = 8;
  /// Directory for minimized reproducer files; empty = do not write.
  std::string corpus_dir;
  /// Progress/diagnostic stream (null = silent).
  std::ostream* log = nullptr;
};

struct FuzzFailure {
  FuzzCase original;       ///< the case as drawn (family + seed + mutations)
  FuzzCase minimized;      ///< explicit minimized reproducer
  OracleReport report;     ///< oracle report on the ORIGINAL graph
  std::string replay_path; ///< file written under corpus_dir ("" if not)
};

struct FuzzSummary {
  int cases_run = 0;
  std::int64_t vertices_checked = 0;
  std::int64_t arcs_checked = 0;
  std::vector<FuzzFailure> failures;

  bool ok() const noexcept { return failures.empty(); }
};

/// Derive case number `index` of a fuzz run (exposed for tests; the loop
/// calls this for indices [0, budget)).
FuzzCase draw_case(const FuzzerOptions& options, int index);

/// Run the loop. Deterministic in `options`.
FuzzSummary run_fuzzer(const FuzzerOptions& options);

struct ReplayResult {
  FuzzCase replayed;
  OracleReport report;
  /// Minimized reproducer, present only when the oracle failed.
  FuzzCase minimized;
  bool failed = false;
};

/// Re-run the oracle on a stored case (the `--replay` path). Violations are
/// minimized again so a replay reports the same minimal graph the original
/// fuzz run found.
ReplayResult replay_case(const FuzzCase& c, const OracleOptions& oracle = {});
ReplayResult replay_file(const std::string& path,
                         const OracleOptions& oracle = {});

}  // namespace turbobc::qa
