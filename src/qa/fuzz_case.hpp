// Fuzz-case specification and the `.fuzz` replay-file format.
//
// A FuzzCase is a self-contained, deterministic recipe for a test graph:
// either a generator family plus a parameter seed and size class (the
// family's concrete parameters are derived from the seed inside
// build_graph, so one u64 reproduces the whole graph), or an explicit edge
// list (the form minimized reproducers take). A mutation trace
// (generators/mutate.hpp) is applied on top in order.
//
// The text format is line-based:
//
//   turbobc.fuzz.v1
//   # free-form comments
//   name star-shape
//   family erdos_renyi          | family explicit
//   seed 42                     | directed 1
//   size 1                      | vertices 5
//   mutation add_edges 7 5      | arc 0 1      (num_arcs() "arc" lines)
//   ...                         | ...
//   end
//
// Parsing reports turbobc::ParseError with the offending line number;
// writing then re-reading any case reproduces it exactly, which is what
// makes `turbobc_fuzz --replay` deterministic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "generators/mutate.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::qa {

/// Generator families the fuzzer draws from — every entry point in
/// turbobc::gen — plus kExplicit for literal graphs.
enum class Family {
  kErdosRenyi,
  kKronecker,
  kSmallWorld,
  kMycielski,
  kGrid,
  kMarkovLattice,
  kRoad,
  kKmer,
  kPreferential,
  kSuperhub,
  kTraffic,
  kWeb,
  kLocalDigraph,
  kExplicit,
};

/// Families eligible for random drawing (kExplicit excluded).
inline constexpr Family kGeneratorFamilies[] = {
    Family::kErdosRenyi,  Family::kKronecker,  Family::kSmallWorld,
    Family::kMycielski,   Family::kGrid,       Family::kMarkovLattice,
    Family::kRoad,        Family::kKmer,       Family::kPreferential,
    Family::kSuperhub,    Family::kTraffic,    Family::kWeb,
    Family::kLocalDigraph,
};

struct FuzzCase {
  std::string name;  // optional label (token, no whitespace)
  Family family = Family::kErdosRenyi;
  /// Parameter seed for generator families (ignored for kExplicit).
  std::uint64_t seed = 1;
  /// 0 = tiny (n <~ 40), 1 = small (n <~ 140), 2 = medium (n <~ 400).
  int size_class = 0;
  std::vector<gen::Mutation> mutations;

  // kExplicit payload.
  vidx_t explicit_n = 0;
  bool explicit_directed = true;
  std::vector<graph::Edge> explicit_edges;

  friend bool operator==(const FuzzCase&, const FuzzCase&) = default;
};

inline constexpr int kMaxSizeClass = 2;

/// Materialize the case's graph (family parameters derived from the seed,
/// then the mutation trace applied). Deterministic.
graph::EdgeList build_graph(const FuzzCase& c);

/// Wrap a literal graph as an explicit case (used by the minimizer).
FuzzCase explicit_case(const graph::EdgeList& graph, std::string name);

void write_fuzz_case(std::ostream& out, const FuzzCase& c);
FuzzCase read_fuzz_case(std::istream& in);

/// File wrappers; throw InvalidArgument / ParseError on bad paths or input.
void write_fuzz_case_file(const std::string& path, const FuzzCase& c);
FuzzCase read_fuzz_case_file(const std::string& path);

std::string_view to_string(Family family);
std::optional<Family> family_from_string(std::string_view token);

}  // namespace turbobc::qa
