#include "qa/fuzz_case.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "generators/generators.hpp"

namespace turbobc::qa {

namespace {

using graph::EdgeList;

/// Uniform integer in [lo, hi] drawn from a SplitMix64 stream.
std::int64_t pick(SplitMix64& sm, std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo + 1);
  return lo + static_cast<std::int64_t>(sm.next() % span);
}

double pick_real(SplitMix64& sm, double lo, double hi) {
  const double u =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;  // [0, 1)
  return lo + u * (hi - lo);
}

/// Target vertex budget per size class; families aim at or below it.
vidx_t size_budget(int size_class) {
  switch (size_class) {
    case 0: return 40;
    case 1: return 140;
    default: return 400;
  }
}

EdgeList build_family_graph(const FuzzCase& c) {
  // Every family derives its concrete parameters from the case seed via an
  // independent SplitMix64 stream, clamped inside each generator's accepted
  // range, so any (family, seed, size) triple is valid by construction.
  SplitMix64 sm(c.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(c.family));
  const vidx_t budget = size_budget(c.size_class);
  switch (c.family) {
    case Family::kErdosRenyi: {
      const auto n = static_cast<vidx_t>(pick(sm, 2, budget));
      return gen::erdos_renyi(
          {.n = n,
           .arcs = static_cast<eidx_t>(pick(sm, 0, 4 * n)),
           .directed = sm.next() % 2 == 0,
           .seed = sm.next()});
    }
    case Family::kKronecker: {
      const int max_scale = c.size_class == 0 ? 5 : (c.size_class == 1 ? 7 : 8);
      return gen::kronecker(
          {.scale = static_cast<int>(pick(sm, 2, max_scale)),
           .edge_factor = pick_real(sm, 1.0, 8.0),
           .seed = sm.next()});
    }
    case Family::kSmallWorld: {
      const auto n = static_cast<vidx_t>(pick(sm, 4, budget));
      return gen::small_world(
          {.n = n,
           .k = static_cast<int>(pick(sm, 2, std::min<vidx_t>(8, n - 1))),
           .rewire_p = pick_real(sm, 0.0, 0.6),
           .seed = sm.next()});
    }
    case Family::kMycielski: {
      const int max_order = c.size_class == 0 ? 6 : (c.size_class == 1 ? 8 : 9);
      return gen::mycielski(static_cast<int>(pick(sm, 2, max_order)));
    }
    case Family::kGrid: {
      const auto side = static_cast<vidx_t>(
          pick(sm, 2, std::max<vidx_t>(2, budget / 8)));
      const auto cols = static_cast<vidx_t>(pick(sm, 2, 8));
      return gen::triangulated_grid(side, cols);
    }
    case Family::kMarkovLattice: {
      const auto length = static_cast<vidx_t>(
          pick(sm, 2, std::max<vidx_t>(2, budget / 6)));
      return gen::markov_lattice(
          {.length = length,
           .width = static_cast<vidx_t>(pick(sm, 2, 6)),
           .burst_p = pick_real(sm, 0.0, 0.2),
           .burst_size = static_cast<int>(pick(sm, 1, 8)),
           .extra_stencil = static_cast<int>(pick(sm, 0, 2)),
           .seed = sm.next()});
    }
    case Family::kRoad: {
      return gen::road_network(
          {.grid_rows = static_cast<vidx_t>(pick(sm, 2, 4)),
           .grid_cols = static_cast<vidx_t>(pick(sm, 2, 4)),
           .keep_p = pick_real(sm, 0.4, 1.0),
           .subdivisions =
               static_cast<int>(pick(sm, 0, c.size_class == 0 ? 2 : 6)),
           .seed = sm.next()});
    }
    case Family::kKmer: {
      return gen::kmer_like(
          {.chains = static_cast<vidx_t>(pick(sm, 1, 6)),
           .chain_len = static_cast<vidx_t>(pick(sm, 2, budget / 8 + 2)),
           .branching = static_cast<int>(pick(sm, 1, 4)),
           .seed = sm.next()});
    }
    case Family::kPreferential: {
      return gen::preferential_attachment(
          {.n = static_cast<vidx_t>(pick(sm, 2, budget)),
           .m_attach = static_cast<int>(pick(sm, 1, 3)),
           .directed = sm.next() % 2 == 0,
           .seed = sm.next()});
    }
    case Family::kSuperhub: {
      const auto n = static_cast<vidx_t>(pick(sm, 4, budget));
      return gen::superhub_social(
          {.n = n,
           .out_degree = static_cast<int>(pick(sm, 1, 6)),
           .celebrities = static_cast<int>(pick(sm, 1, std::min<vidx_t>(4, n - 1))),
           .celebrity_p = pick_real(sm, 0.0, 0.8),
           .seed = sm.next()});
    }
    case Family::kTraffic: {
      const auto hubs = static_cast<int>(pick(sm, 2, 6));
      const auto n = static_cast<vidx_t>(pick(sm, 2 * hubs + 1, budget + 2 * hubs + 1));
      return gen::traffic_trace({.n = n,
                                 .hubs = hubs,
                                 .decay = pick_real(sm, 0.1, 0.9),
                                 .seed = sm.next()});
    }
    case Family::kWeb: {
      const auto n = static_cast<vidx_t>(pick(sm, 3, budget));
      return gen::web_crawl(
          {.n = n,
           .out_degree = static_cast<int>(pick(sm, 1, 6)),
           .copy_p = pick_real(sm, 0.0, 0.9),
           .local_p = pick_real(sm, 0.0, 1.0),
           .window = static_cast<vidx_t>(pick(sm, 1, std::max<vidx_t>(1, n / 2))),
           .seed = sm.next()});
    }
    case Family::kLocalDigraph: {
      const auto n = static_cast<vidx_t>(pick(sm, 3, budget));
      return gen::random_local_digraph(
          {.n = n,
           .mean_out_degree = pick_real(sm, 0.5, 6.0),
           .degree_dispersion = pick_real(sm, 0.2, 1.5),
           .max_out_degree = static_cast<eidx_t>(pick(sm, 2, 32)),
           .window = static_cast<vidx_t>(pick(sm, 1, std::max<vidx_t>(1, n / 2))),
           .global_p = pick_real(sm, 0.0, 0.2),
           .seed = sm.next()});
    }
    case Family::kExplicit:
      break;  // handled by the caller
  }
  throw InternalError("unhandled fuzz family");
}

}  // namespace

EdgeList build_graph(const FuzzCase& c) {
  EdgeList base(0, true);
  if (c.family == Family::kExplicit) {
    base = EdgeList(c.explicit_n, c.explicit_directed);
    for (const graph::Edge& e : c.explicit_edges) base.add_edge(e.u, e.v);
  } else {
    base = build_family_graph(c);
  }
  return gen::apply_mutations(base, c.mutations);
}

FuzzCase explicit_case(const EdgeList& graph, std::string name) {
  FuzzCase c;
  c.name = std::move(name);
  c.family = Family::kExplicit;
  c.explicit_n = graph.num_vertices();
  c.explicit_directed = graph.directed();
  c.explicit_edges = graph.edges();
  return c;
}

void write_fuzz_case(std::ostream& out, const FuzzCase& c) {
  out << "turbobc.fuzz.v1\n";
  if (!c.name.empty()) out << "name " << c.name << '\n';
  out << "family " << to_string(c.family) << '\n';
  if (c.family == Family::kExplicit) {
    out << "directed " << (c.explicit_directed ? 1 : 0) << '\n';
    out << "vertices " << c.explicit_n << '\n';
    for (const graph::Edge& e : c.explicit_edges) {
      out << "arc " << e.u << ' ' << e.v << '\n';
    }
  } else {
    out << "seed " << c.seed << '\n';
    out << "size " << c.size_class << '\n';
  }
  for (const gen::Mutation& m : c.mutations) {
    out << "mutation " << gen::to_string(m.kind) << ' ' << m.seed << ' '
        << m.count << '\n';
  }
  out << "end\n";
}

FuzzCase read_fuzz_case(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  const auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      return true;
    }
    return false;
  };

  if (!next_line() || line != "turbobc.fuzz.v1") {
    throw ParseError("missing turbobc.fuzz.v1 header", line_no);
  }

  FuzzCase c;
  bool have_family = false;
  bool have_end = false;
  while (next_line()) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      have_end = true;
      break;
    } else if (key == "name") {
      fields >> c.name;
    } else if (key == "family") {
      std::string token;
      fields >> token;
      const auto family = family_from_string(token);
      if (!family) throw ParseError("unknown family '" + token + "'", line_no);
      c.family = *family;
      have_family = true;
    } else if (key == "seed") {
      fields >> c.seed;
    } else if (key == "size") {
      fields >> c.size_class;
      if (fields.fail() || c.size_class < 0 || c.size_class > kMaxSizeClass) {
        throw ParseError("size class out of range", line_no);
      }
    } else if (key == "directed") {
      int flag = 0;
      fields >> flag;
      c.explicit_directed = flag != 0;
    } else if (key == "vertices") {
      fields >> c.explicit_n;
      if (fields.fail() || c.explicit_n < 0) {
        throw ParseError("bad vertex count", line_no);
      }
    } else if (key == "arc") {
      graph::Edge e;
      fields >> e.u >> e.v;
      if (fields.fail() || e.u < 0 || e.v < 0 || e.u >= c.explicit_n ||
          e.v >= c.explicit_n) {
        throw ParseError("arc endpoints out of range: " + line, line_no);
      }
      c.explicit_edges.push_back(e);
    } else if (key == "mutation") {
      std::string token;
      gen::Mutation m;
      fields >> token >> m.seed >> m.count;
      const auto kind = gen::mutation_kind_from_string(token);
      if (fields.fail() || !kind || m.count < 0) {
        throw ParseError("malformed mutation record: " + line, line_no);
      }
      m.kind = *kind;
      c.mutations.push_back(m);
    } else {
      throw ParseError("unknown fuzz-case key '" + key + "'", line_no);
    }
    if (fields.fail()) {
      throw ParseError("malformed fuzz-case line: " + line, line_no);
    }
  }
  if (!have_end) throw ParseError("fuzz case ended without 'end'", line_no);
  if (!have_family) throw ParseError("fuzz case is missing 'family'", line_no);
  return c;
}

void write_fuzz_case_file(const std::string& path, const FuzzCase& c) {
  std::ofstream out(path);
  TBC_CHECK(out.good(), "cannot open fuzz case for writing: " + path);
  write_fuzz_case(out, c);
}

FuzzCase read_fuzz_case_file(const std::string& path) {
  std::ifstream in(path);
  TBC_CHECK(in.good(), "cannot open fuzz case: " + path);
  return read_fuzz_case(in);
}

std::string_view to_string(Family family) {
  switch (family) {
    case Family::kErdosRenyi: return "erdos_renyi";
    case Family::kKronecker: return "kronecker";
    case Family::kSmallWorld: return "small_world";
    case Family::kMycielski: return "mycielski";
    case Family::kGrid: return "grid";
    case Family::kMarkovLattice: return "markov_lattice";
    case Family::kRoad: return "road";
    case Family::kKmer: return "kmer";
    case Family::kPreferential: return "preferential";
    case Family::kSuperhub: return "superhub";
    case Family::kTraffic: return "traffic";
    case Family::kWeb: return "web";
    case Family::kLocalDigraph: return "local_digraph";
    case Family::kExplicit: return "explicit";
  }
  return "unknown";
}

std::optional<Family> family_from_string(std::string_view token) {
  for (const Family f : kGeneratorFamilies) {
    if (to_string(f) == token) return f;
  }
  if (token == to_string(Family::kExplicit)) return Family::kExplicit;
  return std::nullopt;
}

}  // namespace turbobc::qa
