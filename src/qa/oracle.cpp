#include "qa/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "approx/driver.hpp"
#include "baselines/bc_la_seq.hpp"
#include "baselines/brandes.hpp"
#include "baselines/gunrock_like.hpp"
#include "baselines/ligra_like.hpp"
#include "common/error.hpp"
#include "core/footprint.hpp"
#include "core/turbobc.hpp"
#include "core/turbobc_batched.hpp"
#include "core/turbobfs.hpp"
#include "daemon/client.hpp"
#include "daemon/server.hpp"
#include "dist/dist_turbobc.hpp"
#include "dist/partition.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "common/prng.hpp"
#include "graph/bfs_probe.hpp"
#include "graph/components.hpp"
#include "graph/csc.hpp"
#include "graph/mtx_io.hpp"
#include "hybrid/hybrid_bc.hpp"
#include "serve/protocol.hpp"
#include "serve/serve_engine.hpp"
#include "serve/session.hpp"
#include "storage/compressed_csc.hpp"
#include "storage/streaming_bc.hpp"

namespace turbobc::qa {

namespace {

using graph::EdgeList;

/// Shortest-path counts are integers, and every implementation accumulates
/// them in double — so they must agree EXACTLY while they fit a double's
/// 53-bit mantissa. Beyond 2^53 (deep lattices reach sigma ~ 1e17) exact
/// integer arithmetic is impossible and correct implementations summing in
/// different orders drift by ulps; there a tight relative tolerance is the
/// strongest checkable contract.
bool sigma_matches(sigma_t actual, sigma_t expected) {
  if (actual == expected) return true;
  constexpr double kExactLimit = 9007199254740992.0;  // 2^53
  if (std::abs(actual) <= kExactLimit && std::abs(expected) <= kExactLimit) {
    return false;
  }
  const double err = std::abs(actual - expected) /
                     std::max(std::abs(actual), std::abs(expected));
  return err <= 1e-9;
}

/// RAII save/restore of the process-wide pool width: the determinism check
/// flips it, and the oracle must leave the caller's configuration intact.
struct PoolWidthGuard {
  unsigned saved = sim::ExecutorPool::instance().threads();
  ~PoolWidthGuard() { sim::ExecutorPool::instance().set_threads(saved); }
};

struct Checker {
  const EdgeList& graph;     // raw input (implementations canonicalize)
  const EdgeList& canon;     // canonical form (reference structure)
  const OracleOptions& opt;
  OracleReport& report;

  void fail(const std::string& invariant, const std::string& detail) {
    report.violations.push_back({invariant, detail});
  }

  /// Relative comparison of a BC-like vector against the Brandes values.
  void compare_bc(const std::string& impl, const std::vector<bc_t>& expected,
                  const std::vector<bc_t>& actual) {
    if (expected.size() != actual.size()) {
      std::ostringstream os;
      os << impl << ": size " << actual.size() << " vs reference "
         << expected.size();
      fail("bc_agreement", os.str());
      return;
    }
    for (std::size_t v = 0; v < expected.size(); ++v) {
      const double err = std::abs(actual[v] - expected[v]) /
                         std::max(1.0, std::abs(expected[v]));
      if (!(err <= opt.tolerance)) {  // negated: catches NaN too
        std::ostringstream os;
        os << impl << ": bc[" << v << "] = " << actual[v] << " vs reference "
           << expected[v] << " (rel err " << err << ")";
        fail("bc_agreement", os.str());
        return;  // one sample per implementation is enough to key on
      }
    }
  }

  /// Deterministic spread of up to max_sources sources over [0, n).
  std::vector<vidx_t> pick_sources() const {
    const vidx_t n = canon.num_vertices();
    const auto want = static_cast<vidx_t>(
        std::min<std::int64_t>(opt.max_sources, n));
    std::vector<vidx_t> sources;
    for (vidx_t i = 0; i < want; ++i) {
      sources.push_back(static_cast<vidx_t>(
          static_cast<std::uint64_t>(i) * n / want));
    }
    return sources;
  }

  // ------------------------------------------------------------ invariants

  void check_mtx_roundtrip() {
    std::ostringstream out;
    graph::write_matrix_market(out, canon);
    std::istringstream in(out.str());
    EdgeList back = graph::read_matrix_market(in);
    back.canonicalize();
    if (back.num_vertices() != canon.num_vertices() ||
        back.directed() != canon.directed() ||
        !(back.edges() == canon.edges())) {
      std::ostringstream os;
      os << "write+reread changed the graph: n " << canon.num_vertices()
         << " -> " << back.num_vertices() << ", m " << canon.num_arcs()
         << " -> " << back.num_arcs();
      fail("mtx_roundtrip", os.str());
    }
  }

  void check_bfs_and_sigma(const graph::CscGraph& csc, vidx_t source,
                           const graph::BfsResult& ref,
                           const std::vector<sigma_t>& ref_sigma) {
    // Brandes' sigma counts must match the reference BFS reachability.
    for (std::size_t v = 0; v < ref_sigma.size(); ++v) {
      const bool reachable = ref.depth[v] >= 0;
      if (reachable != (ref_sigma[v] != 0)) {
        std::ostringstream os;
        os << "source " << source << ": vertex " << v << " depth "
           << ref.depth[v] << " but sigma " << ref_sigma[v];
        fail("sigma_agreement", os.str());
        break;
      }
    }

    // TurboBFS on the simulated device, every variant.
    for (const bc::Variant variant :
         {bc::Variant::kScCsc, bc::Variant::kScCooc, bc::Variant::kVeCsc}) {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBfs bfs(dev, graph, variant);
      const auto r = bfs.run(source);
      if (r.height != ref.height || r.reached != ref.reached ||
          !(r.depth == ref.depth)) {
        std::ostringstream os;
        os << "TurboBFS " << bc::to_string(variant) << " source " << source
           << ": height " << r.height << "/" << ref.height << ", reached "
           << r.reached << "/" << ref.reached;
        fail("bfs_agreement", os.str());
      }
      for (std::size_t v = 0; v < ref_sigma.size(); ++v) {
        if (!sigma_matches(r.sigma[v], ref_sigma[v])) {
          std::ostringstream os;
          os << "TurboBFS " << bc::to_string(variant) << " source " << source
             << ": sigma[" << v << "] = " << r.sigma[v] << " vs Brandes "
             << ref_sigma[v];
          fail("sigma_agreement", os.str());
          break;
        }
      }
    }
    (void)csc;
  }

  void check_dependency_conservation(vidx_t source,
                                     const graph::BfsResult& ref,
                                     const std::vector<bc_t>& delta) {
    // Brandes pair dependencies telescoped over interior vertices: the sum
    // of delta_s over all v equals sum over reachable t != s of
    // (depth(t) - 1), because a random shortest s->t path has depth(t) - 1
    // interior vertices. Halving (undirected) is undone first.
    double lhs = 0.0;
    for (const bc_t d : delta) lhs += d;
    if (!canon.directed()) lhs *= 2.0;
    double rhs = 0.0;
    for (std::size_t v = 0; v < ref.depth.size(); ++v) {
      if (static_cast<vidx_t>(v) != source && ref.depth[v] > 0) {
        rhs += static_cast<double>(ref.depth[v] - 1);
      }
    }
    const double err = std::abs(lhs - rhs) / std::max(1.0, rhs);
    if (!(err <= 1e-9)) {
      std::ostringstream os;
      os << "source " << source << ": sum(delta) = " << lhs
         << " but sum(depth - 1) over reachable targets = " << rhs;
      fail("dependency_conservation", os.str());
    }
  }

  /// One TurboBC single-source run with full ledger checks; returns the BC
  /// vector (empty if construction legitimately failed).
  std::vector<bc_t> run_turbobc_checked(bc::Variant variant, vidx_t source,
                                        bool edge_bc,
                                        std::vector<bc_t>* edge_out) {
    sim::Device dev;
    dev.set_keep_launch_records(false);
    const sim::LedgerSnapshot before = dev.memory().snapshot();
    std::vector<bc_t> bc;
    {
      bc::TurboBC algo(dev, graph, {.variant = variant, .edge_bc = edge_bc});
      auto r = algo.run_single_source(source);
      bc = std::move(r.bc);
      if (edge_out != nullptr) *edge_out = std::move(r.edge_bc);

      const std::size_t expected = expected_turbobc_peak_bytes(
          variant, canon.num_vertices(), canon.num_arcs(), edge_bc);
      if (r.peak_device_bytes != expected) {
        std::ostringstream os;
        os << bc::to_string(variant) << " source " << source
           << ": simulated peak " << r.peak_device_bytes
           << " B != analytic inventory " << expected << " B (n = "
           << canon.num_vertices() << ", m = " << canon.num_arcs() << ")";
        fail("footprint_ledger", os.str());
      }
    }
    // Everything the run allocated must have been freed, and the ledger's
    // alloc/free counters must balance.
    const sim::LedgerSnapshot after = dev.memory().snapshot();
    if (after.live_bytes != 0) {
      std::ostringstream os;
      os << bc::to_string(variant) << ": " << after.live_bytes
         << " B still live after destruction";
      fail("alloc_free_ledger", os.str());
    }
    if (after.alloc_count - before.alloc_count !=
        after.free_count - before.free_count) {
      std::ostringstream os;
      os << bc::to_string(variant) << ": "
         << (after.alloc_count - before.alloc_count) << " allocs vs "
         << (after.free_count - before.free_count) << " frees";
      fail("alloc_free_ledger", os.str());
    }
    return bc;
  }

  void check_single_source(vidx_t source, bool all_variants) {
    const auto ref_delta = baseline::brandes_delta(canon, source);

    // TurboBC: all variants on the primary source, the heuristic's pick on
    // the rest (keeps the per-case budget flat while every variant still
    // sees every graph family over the fuzz run).
    std::vector<bc::Variant> variants;
    if (all_variants) {
      variants = {bc::Variant::kScCsc, bc::Variant::kScCooc,
                  bc::Variant::kVeCsc};
    } else {
      variants = {bc::select_variant(canon)};
    }
    for (const bc::Variant variant : variants) {
      const auto bc_vec = run_turbobc_checked(variant, source,
                                              /*edge_bc=*/false, nullptr);
      compare_bc(std::string("TurboBC-") + std::string(bc::to_string(variant)),
                 ref_delta, bc_vec);
    }

    // Host baselines.
    compare_bc("bc_la_seq",
               ref_delta,
               baseline::SequentialBcLa(canon).run_single_source(source).bc);
    compare_bc("ligra_like",
               ref_delta,
               baseline::LigraLikeBc(canon).run_single_source(source).bc);
    {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      baseline::GunrockLikeBc gunrock(dev, graph);
      compare_bc("gunrock_like", ref_delta,
                 gunrock.run_single_source(source).bc);
      const std::size_t expected = expected_gunrock_inventory_bytes(
          canon.num_vertices(), canon.num_arcs());
      if (gunrock.inventory_bytes() != expected ||
          gunrock.inventory_bytes() <
              bc::gunrock_model_bytes(canon.num_vertices(),
                                      canon.num_arcs())) {
        std::ostringstream os;
        os << "inventory " << gunrock.inventory_bytes()
           << " B vs analytic " << expected << " B (paper floor "
           << bc::gunrock_model_bytes(canon.num_vertices(), canon.num_arcs())
           << " B)";
        fail("gunrock_inventory", os.str());
      }
    }

    check_dependency_conservation(
        source, graph::bfs_reference(graph::CscGraph::from_edges(canon),
                                     source),
        ref_delta);
  }

  void check_edge_bc(vidx_t source) {
    const auto ref = baseline::brandes_edge_delta(canon, source);
    std::vector<bc_t> edge_vec;
    const auto bc_vec =
        run_turbobc_checked(bc::select_variant(canon), source,
                            /*edge_bc=*/true, &edge_vec);
    (void)bc_vec;
    if (edge_vec.size() != ref.size()) {
      std::ostringstream os;
      os << "edge vector size " << edge_vec.size() << " vs " << ref.size();
      fail("edge_bc_agreement", os.str());
      return;
    }
    for (std::size_t a = 0; a < ref.size(); ++a) {
      const double err = std::abs(edge_vec[a] - ref[a]) /
                         std::max(1.0, std::abs(ref[a]));
      if (!(err <= opt.tolerance)) {
        std::ostringstream os;
        os << "source " << source << ": edge_bc[" << a << "] = "
           << edge_vec[a] << " vs Brandes " << ref[a];
        fail("edge_bc_agreement", os.str());
        return;
      }
    }
  }

  void check_exact() {
    const auto ref = baseline::brandes_bc(canon);
    {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBC algo(dev, graph, {.variant = bc::select_variant(canon)});
      compare_bc("TurboBC-exact", ref, algo.run_exact().bc);
    }
    {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      const auto batch = static_cast<vidx_t>(
          std::clamp<vidx_t>(canon.num_vertices() / 4, 1, 8));
      bc::TurboBCBatched batched(dev, graph, {.batch_size = batch});
      compare_bc("TurboBC-batched", ref, batched.run_exact().bc);
    }
  }

  void check_thread_determinism() {
    const auto sources = pick_sources();
    struct Run {
      std::vector<bc_t> bc;
      double seconds = 0.0;
      std::size_t peak = 0;
      std::map<std::string, sim::KernelAggregate, std::less<>> aggregates;
    };
    const auto run_at = [&](unsigned width) {
      sim::ExecutorPool::instance().set_threads(width);
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBC algo(dev, graph, {.variant = bc::select_variant(canon)});
      auto r = algo.run_sources(sources);
      Run out;
      out.bc = std::move(r.bc);
      out.seconds = r.device_seconds;
      out.peak = r.peak_device_bytes;
      out.aggregates = dev.kernel_aggregates();
      return out;
    };
    PoolWidthGuard guard;
    const Run serial = run_at(1);
    const Run parallel = run_at(opt.det_threads);

    const auto mismatch = [&](const std::string& what) {
      fail("thread_determinism",
           "threads=1 vs threads=" + std::to_string(opt.det_threads) +
               " differ in " + what);
    };
    if (serial.bc != parallel.bc) {
      mismatch("BC vector");
      return;
    }
    if (serial.seconds != parallel.seconds) {
      mismatch("modeled seconds");
    }
    if (serial.peak != parallel.peak) {
      mismatch("peak device bytes");
    }
    if (serial.aggregates.size() != parallel.aggregates.size()) {
      mismatch("kernel aggregate set");
      return;
    }
    auto ita = serial.aggregates.begin();
    auto itb = parallel.aggregates.begin();
    for (; ita != serial.aggregates.end(); ++ita, ++itb) {
      const auto& a = ita->second;
      const auto& b = itb->second;
      if (ita->first != itb->first || a.launches != b.launches ||
          a.load_transactions != b.load_transactions ||
          a.store_transactions != b.store_transactions ||
          a.l2_hit_transactions != b.l2_hit_transactions ||
          a.dram_transactions != b.dram_transactions ||
          a.word_ops != b.word_ops || a.time_s != b.time_s) {
        mismatch("kernel aggregate " + ita->first);
        return;
      }
    }
  }

  /// Run the adaptive approx driver at a fixed small budget and return the
  /// full result (the budget keeps a fuzz case cheap; the confidence
  /// intervals it reports are valid at any stopping point). `comps` feeds
  /// the component sampler's cached map so the oracle's three runs on the
  /// same graph share one label sweep.
  approx::ApproxResult run_approx(approx::Engine engine, unsigned width,
                                  const graph::Components* comps) {
    PoolWidthGuard guard;
    sim::ExecutorPool::instance().set_threads(width);
    sim::Device dev;
    dev.set_keep_launch_records(false);
    approx::ApproxOptions aopt;
    aopt.epsilon = 0.05;
    aopt.delta = 0.1;
    aopt.seed = 42;
    // Rotate the sampler by graph size so the whole corpus exercises all
    // three draw distributions while each case stays deterministic.
    const auto n = canon.num_vertices();
    aopt.sampler = n % 3 == 0   ? approx::SamplerKind::kUniform
                   : n % 3 == 1 ? approx::SamplerKind::kDegree
                                : approx::SamplerKind::kComponent;
    aopt.engine = engine;
    aopt.variant = bc::select_variant(canon);
    aopt.max_sources = std::min<vidx_t>(opt.approx_budget, n);
    aopt.components = comps;
    return approx::run_adaptive(dev, canon, aopt);
  }

  void check_approx() {
    // One component sweep shared by every run below (only the kComponent
    // rotation slot actually reads it).
    std::optional<graph::Components> comps;
    if (canon.num_vertices() % 3 == 2) {
      comps.emplace(graph::weakly_connected_components(canon));
    }
    const graph::Components* comps_ptr = comps ? &*comps : nullptr;
    const approx::ApproxResult r =
        run_approx(approx::Engine::kScalar, 1, comps_ptr);
    const vidx_t n = canon.num_vertices();

    // Coverage: with probability >= 1 - delta ALL exact values lie inside
    // the reported intervals; the bounds are conservative enough (union
    // bound + delta schedule) that a genuine miss at fuzz sizes signals a
    // math bug, not bad luck.
    const auto exact = baseline::brandes_bc(canon);
    for (std::size_t v = 0; v < exact.size(); ++v) {
      const double err = std::abs(exact[v] - r.bc[v]);
      const double slack = r.half_width[v] + 1e-9 * r.norm;
      if (!(err <= slack)) {  // negated: catches NaN too
        std::ostringstream os;
        os << "vertex " << v << ": exact " << exact[v] << " outside "
           << r.bc[v] << " +/- " << r.half_width[v] << " (" << r.sources_used
           << " pivots)";
        fail("approx_coverage", os.str());
        break;
      }
    }

    // Accounting: totals must be the exact fold of the per-wave stats, and
    // the scalar engine's peak must equal the 9n + m inventory.
    double wave_seconds = 0.0;
    std::size_t wave_peak = 0;
    vidx_t wave_sources = 0;
    for (const approx::WaveStats& w : r.waves) {
      wave_seconds += w.device_seconds;
      wave_peak = std::max(wave_peak, w.peak_device_bytes);
      wave_sources += w.sources;
    }
    if (r.device_seconds != wave_seconds || r.peak_device_bytes != wave_peak ||
        r.sources_used != wave_sources) {
      std::ostringstream os;
      os << "totals (" << r.device_seconds << " s, " << r.peak_device_bytes
         << " B, " << r.sources_used << " pivots) != wave fold ("
         << wave_seconds << " s, " << wave_peak << " B, " << wave_sources
         << " pivots)";
      fail("approx_accounting", os.str());
    }
    const std::size_t expected = expected_approx_peak_bytes(
        bc::select_variant(canon), n, canon.num_arcs());
    if (r.peak_device_bytes != expected) {
      std::ostringstream os;
      os << "simulated peak " << r.peak_device_bytes
         << " B != analytic 9n+m inventory " << expected << " B (n = " << n
         << ", m = " << canon.num_arcs() << ")";
      fail("approx_accounting", os.str());
    }

    // Engine agreement: the batched SpMM engine sees the SAME pivot
    // sequence (same seed) so its estimates must match the scalar engine's
    // up to float-order effects.
    if (n > 1) {
      const approx::ApproxResult rb =
          run_approx(approx::Engine::kBatched, 1, comps_ptr);
      if (rb.sources_used != r.sources_used) {
        std::ostringstream os;
        os << "batched engine ran " << rb.sources_used << " pivots vs scalar "
           << r.sources_used;
        fail("approx_engine_agreement", os.str());
      } else {
        for (std::size_t v = 0; v < r.bc.size(); ++v) {
          const double err = std::abs(rb.bc[v] - r.bc[v]) /
                             std::max(1.0, std::abs(r.bc[v]));
          if (!(err <= opt.tolerance)) {
            std::ostringstream os;
            os << "vertex " << v << ": batched " << rb.bc[v] << " vs scalar "
               << r.bc[v] << " (rel err " << err << ")";
            fail("approx_engine_agreement", os.str());
            break;
          }
        }
      }
    }

    // Determinism: the whole result object must be bit-identical across
    // pool widths (PR 1's standard extended to the approx stack).
    if (opt.check_determinism && n > 1) {
      const approx::ApproxResult rp =
          run_approx(approx::Engine::kScalar, opt.det_threads, comps_ptr);
      const auto mismatch = [&](const std::string& what) {
        fail("approx_determinism",
             "threads=1 vs threads=" + std::to_string(opt.det_threads) +
                 " differ in " + what);
      };
      if (rp.bc != r.bc) mismatch("estimates");
      if (rp.half_width != r.half_width) mismatch("half-widths");
      if (rp.sources_used != r.sources_used || rp.converged != r.converged) {
        mismatch("stopping decision");
      }
      if (rp.device_seconds != r.device_seconds ||
          rp.peak_device_bytes != r.peak_device_bytes) {
        mismatch("modeled totals");
      }
      if (rp.waves.size() != r.waves.size()) {
        mismatch("wave count");
      } else {
        for (std::size_t w = 0; w < r.waves.size(); ++w) {
          if (rp.waves[w].sources != r.waves[w].sources ||
              rp.waves[w].device_seconds != r.waves[w].device_seconds ||
              rp.waves[w].peak_device_bytes != r.waves[w].peak_device_bytes ||
              rp.waves[w].max_half_width != r.waves[w].max_half_width ||
              rp.waves[w].converged != r.waves[w].converged) {
            mismatch("wave " + std::to_string(w) + " stats");
            break;
          }
        }
      }
    }
  }

  /// Distributed engine (src/dist/): one single-source run per strategy on
  /// an opt.dist_devices node, against the single-device engine with the
  /// SAME pinned variant — the replicated strategy shares its block runner
  /// and the partitioned fold replays its atomic order, so the BC vectors
  /// must match bit-for-bit. Also checks each partitioned shard's simulated
  /// peak against the analytic sharded inventory and the interconnect
  /// ledger's byte conservation.
  void check_dist() {
    const vidx_t n = canon.num_vertices();
    const bc::Variant variant = bc::select_variant(canon);
    const vidx_t source = pick_sources().front();

    sim::Device dev;
    bc::TurboBC single(dev, canon, {.variant = variant});
    const bc::BcResult ref = single.run_single_source(source);

    for (const dist::Strategy strategy :
         {dist::Strategy::kReplicate, dist::Strategy::kPartition}) {
      sim::TopologyProps props;
      props.num_devices = opt.dist_devices;
      sim::Topology topo(props);
      dist::DistTurboBC engine(topo, canon,
                               {.strategy = strategy, .variant = variant});
      const dist::DistResult r = engine.run_single_source(source);
      const std::string name = dist::to_string(strategy);

      if (r.bc.size() != ref.bc.size()) {
        std::ostringstream os;
        os << name << ": bc size " << r.bc.size() << " vs single-device "
           << ref.bc.size();
        fail("dist_bc_agreement", os.str());
      } else {
        for (std::size_t v = 0; v < ref.bc.size(); ++v) {
          if (r.bc[v] != ref.bc[v]) {
            std::ostringstream os;
            os << name << ": bc[" << v << "] = " << r.bc[v]
               << " != single-device " << ref.bc[v] << " (source " << source
               << ", " << opt.dist_devices << " devices)";
            fail("dist_bc_agreement", os.str());
            break;
          }
        }
      }

      // Interconnect ledger: logical payloads conserve across the node, and
      // the topology total equals the per-device fold.
      std::uint64_t sent = 0;
      std::uint64_t received = 0;
      for (const dist::ShardInfo& s : r.shards) {
        sent += s.comm_bytes_sent;
        received += s.comm_bytes_received;
      }
      if (sent != received || sent != r.comm_bytes) {
        std::ostringstream os;
        os << name << ": " << sent << " B sent vs " << received
           << " B received (ledger total " << r.comm_bytes << " B)";
        fail("dist_comm_conservation", os.str());
      }

      // Partitioned shard peaks vs the analytic inventory. The simulator
      // pads allocations to 256-byte granules, so each of the ~10 arrays
      // may round up by at most one granule.
      if (strategy == dist::Strategy::kPartition) {
        for (const dist::ShardInfo& s : r.shards) {
          const std::uint64_t model = dist::partitioned_device_bytes(
              s.variant, n, s.col_end - s.col_begin,
              static_cast<std::uint64_t>(s.arcs));
          const std::uint64_t peak = s.peak_bytes;
          if (peak < model || peak > model + 10 * 256) {
            std::ostringstream os;
            os << "device " << s.device << ": simulated peak " << peak
               << " B outside analytic inventory " << model << " B (+2560 B "
               << "granule slack; cols [" << s.col_begin << ", " << s.col_end
               << "), " << s.arcs << " arcs)";
            fail("dist_inventory", os.str());
            break;
          }
        }
      }
    }
  }

  /// Direction-optimizing engine: pull and auto forward sweeps against push.
  /// The contract (spmv_kernels.hpp): levels bit-identical by construction
  /// (the pull fold skips exact zeros only), so depths / sigma / bc are
  /// checked as hard as the rest of the oracle allows; each mode must also
  /// be bit-identical across pool widths, and the DO peak must match its
  /// analytic inventory while staying at 7n + m + ceil(n/32) words — below
  /// gunrock's resident set.
  void check_dobfs() {
    const vidx_t n = canon.num_vertices();
    const eidx_t m = canon.num_arcs();
    const vidx_t source = pick_sources().front();
    const bc::Variant variant = bc::select_variant(canon);

    const auto run_bfs = [&](bc::Advance adv) {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBfs bfs(dev, graph, variant, adv);
      return bfs.run(source);
    };
    const auto run_bc = [&](bc::Advance adv) {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBC algo(dev, graph, {.variant = variant, .advance = adv});
      return algo.run_single_source(source);
    };

    const bc::TurboBfsResult push_bfs = run_bfs(bc::Advance::kPush);
    const bc::BcResult push_bc = run_bc(bc::Advance::kPush);

    for (const bc::Advance adv : {bc::Advance::kPull, bc::Advance::kAuto}) {
      const std::string mode(bc::to_string(adv));

      const bc::TurboBfsResult r = run_bfs(adv);
      if (r.depth != push_bfs.depth || r.height != push_bfs.height ||
          r.reached != push_bfs.reached) {
        std::ostringstream os;
        os << mode << " source " << source << ": levels differ from push ("
           << "height " << r.height << "/" << push_bfs.height << ", reached "
           << r.reached << "/" << push_bfs.reached << ")";
        fail("dobfs_agreement", os.str());
      }
      for (std::size_t v = 0; v < push_bfs.sigma.size(); ++v) {
        if (!sigma_matches(r.sigma[v], push_bfs.sigma[v])) {
          std::ostringstream os;
          os << mode << " source " << source << ": sigma[" << v << "] = "
             << r.sigma[v] << " vs push " << push_bfs.sigma[v];
          fail("dobfs_agreement", os.str());
          break;
        }
      }

      const bc::BcResult rb = run_bc(adv);
      for (std::size_t v = 0; v < push_bc.bc.size(); ++v) {
        const double err = std::abs(rb.bc[v] - push_bc.bc[v]) /
                           std::max(1.0, std::abs(push_bc.bc[v]));
        if (!(err <= opt.tolerance)) {
          std::ostringstream os;
          os << mode << " source " << source << ": bc[" << v << "] = "
             << rb.bc[v] << " vs push " << push_bc.bc[v];
          fail("dobfs_agreement", os.str());
          break;
        }
      }

      // Footprint: the byte-exact DO inventory, and the paper-scale bound
      // 7n + m + ceil(n/32) words (+16 B slack: the CP_A tail entry and the
      // tiny-n case where the widened forward stage outgrows the triple).
      const std::size_t expected = expected_turbobc_peak_bytes(
          variant, n, m, /*edge_bc=*/false, adv, canon.directed());
      if (rb.peak_device_bytes != expected) {
        std::ostringstream os;
        os << mode << ": simulated peak " << rb.peak_device_bytes
           << " B != analytic DO inventory " << expected << " B (n = " << n
           << ", m = " << m << ")";
        fail("dobfs_agreement", os.str());
      }
      if (rb.peak_device_bytes > bc::turbobc_dobfs_model_bytes(n, m) + 16) {
        std::ostringstream os;
        os << mode << ": simulated peak " << rb.peak_device_bytes
           << " B above the 7n + m + ceil(n/32) model "
           << bc::turbobc_dobfs_model_bytes(n, m) << " B";
        fail("dobfs_agreement", os.str());
      }
    }
    if (bc::turbobc_dobfs_model_bytes(n, m) >=
        expected_gunrock_inventory_bytes(n, m)) {
      std::ostringstream os;
      os << "DO model " << bc::turbobc_dobfs_model_bytes(n, m)
         << " B not below the gunrock inventory "
         << expected_gunrock_inventory_bytes(n, m) << " B";
      fail("dobfs_agreement", os.str());
    }

    // Per-mode pool-width determinism, same standard as thread_determinism.
    if (opt.check_determinism && n > 1) {
      const auto sources = pick_sources();
      for (const bc::Advance adv : {bc::Advance::kPull, bc::Advance::kAuto}) {
        const auto run_at = [&](unsigned width) {
          PoolWidthGuard guard;
          sim::ExecutorPool::instance().set_threads(width);
          sim::Device dev;
          dev.set_keep_launch_records(false);
          bc::TurboBC algo(dev, graph,
                           {.variant = variant, .advance = adv});
          return algo.run_sources(sources);
        };
        const bc::BcResult a = run_at(1);
        const bc::BcResult b = run_at(opt.det_threads);
        if (a.bc != b.bc || a.device_seconds != b.device_seconds ||
            a.peak_device_bytes != b.peak_device_bytes) {
          fail("dobfs_agreement",
               std::string(bc::to_string(adv)) + ": threads=1 vs threads=" +
                   std::to_string(opt.det_threads) +
                   " modeled results differ");
        }
      }
    }
  }

  /// MS-BFS batched engine (core/turbobc_batched.*): the packed-mask SpMM
  /// sweep must reproduce the per-source engine's BC vector BIT-for-bit
  /// over any block of <= 64 sources — the fold-order contract documented
  /// in turbobc_batched.cpp (strict per-lane left folds over exact-zero
  /// skips) — in push, pull, and auto mode alike, at any pool width, with
  /// the new word-op traffic accounted and the peak inside the MS-BFS
  /// footprint model.
  void check_msbfs() {
    const vidx_t n = canon.num_vertices();
    const eidx_t m = canon.num_arcs();
    // Up to 16 sources spread over [0, n): enough lanes to exercise a
    // partial final mask word while a fuzz case stays cheap (the reference
    // runs one full per-source BC per lane); <= 64 keeps the per-source
    // engine's fold in singleton blocks — the scope of the bit-identity
    // contract.
    const auto want = static_cast<vidx_t>(std::min<std::int64_t>(16, n));
    std::vector<vidx_t> sources;
    for (vidx_t i = 0; i < want; ++i) {
      sources.push_back(static_cast<vidx_t>(
          static_cast<std::uint64_t>(i) * n / want));
    }
    const auto k = static_cast<vidx_t>(sources.size());

    // Per-source reference: the scalar engine on the same sources and the
    // same layout the batched engine hard-codes (CSC, scalar kernels).
    bc::BcResult ref;
    {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBC algo(dev, graph, {.variant = bc::Variant::kScCsc});
      ref = algo.run_sources(sources);
    }

    const auto run_batched = [&](bc::Advance adv, unsigned width) {
      PoolWidthGuard guard;
      sim::ExecutorPool::instance().set_threads(width);
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBCBatched batched(dev, graph,
                                 {.batch_size = k, .advance = adv});
      bc::BcResult r = batched.run_sources(sources);
      std::uint64_t words = 0;
      for (const auto& [name, agg] : dev.kernel_aggregates()) {
        words += agg.word_ops;
      }
      return std::make_pair(std::move(r), words);
    };

    const auto compare_bits = [&](const std::string& what,
                                  const std::vector<bc_t>& a,
                                  const std::vector<bc_t>& b) {
      if (a.size() != b.size()) {
        fail("msbfs_agreement", what + ": size " + std::to_string(a.size()) +
                                    " vs " + std::to_string(b.size()));
        return;
      }
      for (std::size_t v = 0; v < a.size(); ++v) {
        if (a[v] != b[v]) {
          std::ostringstream os;
          os << what << ": bc[" << v << "] = " << a[v] << " vs " << b[v]
             << " (" << k << " sources)";
          fail("msbfs_agreement", os.str());
          return;
        }
      }
    };

    const auto [push, push_words] = run_batched(bc::Advance::kPush, 1);
    compare_bits("batched-push vs per-source", push.bc, ref.bc);
    // The mask kernels issue word ops on every traversed edge; a zero total
    // on a non-trivial graph means the accounting got disconnected.
    if (m > 0 && push_words == 0) {
      fail("msbfs_agreement",
           "batched push run reported zero word ops on a non-empty graph");
    }
    // Footprint: the simulated peak must sit inside the MS-BFS model
    // (allocation-granule + O(k) flag slack on either side).
    const std::uint64_t model = bc::turbobc_msbfs_model_bytes(n, m, k);
    constexpr std::uint64_t kSlack = 16 * 256;
    if (push.peak_device_bytes > model + kSlack ||
        push.peak_device_bytes + kSlack < model) {
      std::ostringstream os;
      os << "batched peak " << push.peak_device_bytes
         << " B outside MS-BFS model " << model << " B (+/- " << kSlack
         << " B; n = " << n << ", m = " << m << ", k = " << k << ")";
      fail("msbfs_agreement", os.str());
    }

    for (const bc::Advance adv : {bc::Advance::kPull, bc::Advance::kAuto}) {
      const auto [r, words] = run_batched(adv, 1);
      (void)words;
      compare_bits(std::string("batched-") + std::string(bc::to_string(adv)) +
                       " vs batched-push",
                   r.bc, push.bc);
    }

    // Pool-width determinism, the PR 1 standard: the whole modeled result
    // (values, clock, peak, word-op ledger) is bit-identical at any width.
    if (opt.check_determinism && n > 1) {
      const auto [rp, wp] = run_batched(bc::Advance::kPush, opt.det_threads);
      if (rp.bc != push.bc || rp.device_seconds != push.device_seconds ||
          rp.peak_device_bytes != push.peak_device_bytes ||
          wp != push_words) {
        fail("msbfs_agreement",
             "batched push: threads=1 vs threads=" +
                 std::to_string(opt.det_threads) +
                 " modeled results differ");
      }
    }
  }

  void check_serve() {
    const vidx_t n = canon.num_vertices();
    serve::ServeOptions sopt;  // kScCsc / push / component sampler, seed 1
    serve::ServeEngine engine(canon, sopt);

    // Scratch-vs-incremental bit-identity: the served full-BC vector must
    // equal a from-scratch run_exact on the engine's CURRENT graph, bit for
    // bit (shared fold order — see TurboBC::fold_source_blocks).
    const auto scratch_compare = [&](int event) {
      const std::vector<bc_t>& served = engine.query_bc();
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBC algo(dev, engine.graph(), {.variant = sopt.variant});
      const bc::BcResult ref = algo.run_exact();
      if (served == ref.bc) return;
      for (std::size_t v = 0; v < served.size(); ++v) {
        if (served[v] != ref.bc[v]) {
          std::ostringstream os;
          os << "after event " << event << ": served bc[" << v << "] = "
             << served[v] << " vs scratch " << ref.bc[v] << " (epoch "
             << engine.counters().epoch << ")";
          fail("serve_agreement", os.str());
          return;
        }
      }
      fail("serve_agreement", "served bc size mismatch vs scratch");
    };

    scratch_compare(0);
    Xoshiro256 rng(0x5e2e0000ULL + static_cast<std::uint64_t>(n) * 1000003 +
                   static_cast<std::uint64_t>(canon.num_arcs()));
    const auto rand_vertex = [&] {
      return static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(n)));
    };
    for (int event = 1; event <= opt.serve_updates; ++event) {
      // Odd events delete an existing arc (when there is one) so the stream
      // exercises real deletions, not just absent-edge no-ops.
      if (event % 2 == 1 && engine.graph().num_arcs() > 0) {
        const auto& edges = engine.graph().edges();
        const graph::Edge e = edges[static_cast<std::size_t>(
            rng.uniform(static_cast<std::uint64_t>(edges.size())))];
        engine.remove_edge(e.u, e.v);
      } else {
        engine.insert_edge(rand_vertex(), rand_vertex());
      }
      scratch_compare(event);
      if (!report.violations.empty() &&
          report.violations.back().invariant == "serve_agreement") {
        return;  // one failing event is enough to key on
      }
    }

    // Transcript determinism: the same scripted session must produce a
    // byte-identical transcript at pool widths 1 and N — queries, updates,
    // approx waves, modeled stats and all.
    if (opt.check_determinism && n > 1) {
      std::ostringstream script;
      script << "bc 3\n"
             << "insert " << rand_vertex() << ' ' << rand_vertex() << "\n"
             << "top 3\n"
             << "approx 0.5\n"
             << "delete " << rand_vertex() << ' ' << rand_vertex() << "\n"
             << "bc 3\n"
             << "stats\n";
      const auto transcript = [&](unsigned width) {
        PoolWidthGuard guard;
        sim::ExecutorPool::instance().set_threads(width);
        std::istringstream in(script.str());
        std::ostringstream out;
        serve::run_session(canon, {.json = false, .top = 3, .engine = sopt},
                           in, out);
        return out.str();
      };
      if (transcript(1) != transcript(opt.det_threads)) {
        fail("serve_agreement",
             "session transcript differs between pool widths 1 and " +
                 std::to_string(opt.det_threads));
      }
    }
  }

  /// Serve daemon (src/daemon/): the socket front-end must add nothing and
  /// lose nothing. A single connection replaying a script over a real
  /// loopback socket produces a transcript byte-identical to run_session in
  /// wire mode (text and JSON); under concurrent connections, every bc
  /// response's (epoch, digest) pair must match a serial from-scratch
  /// replay of the scheduler's epoch-ordered update log — the wire response
  /// is a pure function of (command, epoch) whatever the interleaving.
  void check_daemon() {
    const vidx_t n = canon.num_vertices();
    Xoshiro256 rng(0xdae30000ULL + static_cast<std::uint64_t>(n) * 1000003 +
                   static_cast<std::uint64_t>(canon.num_arcs()));
    const auto rand_vertex = [&] {
      return static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(n)));
    };
    // Runs inside raw std::threads below, so failures must not escape.
    const auto client_run = [](const daemon::SocketAddr& addr,
                               const std::string& script) -> std::string {
      try {
        std::istringstream in(script);
        std::ostringstream out;
        daemon::ClientOptions copt;
        copt.connect = addr.display();
        daemon::run_client(copt, in, out);
        return out.str();
      } catch (const std::exception& e) {
        return std::string("<client threw: ") + e.what() + ">";
      }
    };

    // Single-connection transcript byte-identity vs run_session (wire mode).
    std::ostringstream script;
    script << "bc 3\n"
           << "insert " << rand_vertex() << ' ' << rand_vertex() << "\n"
           << "top 3\n"
           << "delete " << rand_vertex() << ' ' << rand_vertex() << "\n"
           << "bc 3\n"
           << "stats\n";
    for (const bool json : {false, true}) {
      daemon::DaemonOptions dopt;
      dopt.listen = "127.0.0.1:0";
      dopt.json = json;
      dopt.top = 3;
      daemon::DaemonServer server(canon, dopt);
      server.start();
      const std::string daemon_out = client_run(server.bound(), script.str());
      server.stop();

      std::istringstream in(script.str());
      std::ostringstream session_out;
      serve::SessionOptions sopt;
      sopt.json = json;
      sopt.wire = true;
      sopt.top = 3;
      serve::run_session(canon, sopt, in, session_out);
      if (daemon_out != session_out.str()) {
        fail("daemon_agreement",
             std::string("single-connection transcript differs from ") +
                 "run_session wire mode (json=" + (json ? "1" : "0") + ")");
        return;
      }
    }

    // Concurrent clients: three readers and one updating writer race over
    // real sockets; afterwards every served (epoch, digest) pair must equal
    // the scratch replay of the update log at that epoch.
    daemon::DaemonOptions dopt;
    dopt.listen = "127.0.0.1:0";
    dopt.top = 3;
    daemon::DaemonServer server(canon, dopt);
    server.start();

    std::ostringstream writer;
    for (int event = 1; event <= opt.serve_updates; ++event) {
      writer << (event % 2 == 1 ? "insert " : "delete ") << rand_vertex()
             << ' ' << rand_vertex() << "\n";
    }
    std::vector<std::string> transcripts(4);
    {
      std::vector<std::thread> clients;
      for (std::size_t i = 0; i < 3; ++i) {
        clients.emplace_back([&, i] {
          transcripts[i] = client_run(server.bound(), "bc 2\nbc 2\n");
        });
      }
      clients.emplace_back([&] {
        transcripts[3] = client_run(server.bound(), writer.str());
      });
      for (std::thread& t : clients) t.join();
    }
    const auto log = server.scheduler().update_log();
    server.stop();

    // Serial scratch replay: epoch -> digest of run_exact on the graph
    // state after that epoch's update (the serve engine pins kScCsc).
    const auto digest_of = [&](const EdgeList& state) {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBC algo(dev, state,
                       {.variant = serve::ServeOptions{}.variant});
      return serve::bc_digest(algo.run_exact().bc);
    };
    std::map<std::uint64_t, std::uint64_t> expected;
    EdgeList state = canon;
    expected[0] = digest_of(state);
    for (const auto& rec : log) {
      if (!rec.applied) continue;
      if (rec.kind == serve::UpdateKind::kInsert) {
        state.add_edge(rec.u, rec.v);
        if (!canon.directed()) state.add_edge(rec.v, rec.u);
      } else {
        state.remove_edge(rec.u, rec.v);
        if (!canon.directed()) state.remove_edge(rec.v, rec.u);
      }
      state.canonicalize();
      expected[rec.epoch] = digest_of(state);
    }

    std::size_t bc_lines = 0;
    for (const std::string& transcript : transcripts) {
      std::istringstream lines(transcript);
      std::string line;
      while (std::getline(lines, line)) {
        unsigned long long epoch = 0;
        char digest[17] = {};
        if (std::sscanf(line.c_str(), "bc: epoch=%llu digest=%16s", &epoch,
                        digest) != 2) {
          continue;
        }
        ++bc_lines;
        const auto it = expected.find(epoch);
        if (it == expected.end() ||
            serve::digest_hex(it->second) != digest) {
          std::ostringstream os;
          os << "served digest " << digest << " at epoch " << epoch
             << " != scratch replay "
             << (it == expected.end() ? std::string("<unknown epoch>")
                                      : serve::digest_hex(it->second));
          fail("daemon_agreement", os.str());
          return;
        }
      }
    }
    if (bc_lines != 6) {
      fail("daemon_agreement",
           "concurrent readers answered " + std::to_string(bc_lines) +
               " bc responses, expected 6");
    }
  }

  /// Out-of-core storage stack (src/storage/): the delta-varint codec must
  /// round-trip the canonical CSC bit-exactly; the compressed kernels must
  /// reproduce the uncompressed kScCsc engine's BC bit-for-bit in push /
  /// pull / auto at any pool width (the demotion contract: compress pins
  /// the layout to kScCsc whatever variant was asked for); StreamingTurboBC
  /// must equal the resident compressed engine both under a window that
  /// forces eviction and on the fetch-free fast path, whose ledger must
  /// stay refetch- and eviction-free; and the compressed image's device
  /// bytes must be byte-exact against the analytic model.
  void check_ooc() {
    const vidx_t n = canon.num_vertices();
    const eidx_t m = canon.num_arcs();
    const auto csc = graph::CscGraph::from_edges(canon);
    const storage::CompressedCsc cgraph = storage::encode_csc(csc);

    if (!storage::round_trips(cgraph, csc)) {
      fail("ooc_agreement",
           "delta-varint codec does not round-trip the canonical CSC");
      return;  // every engine below decodes this stream
    }

    const auto sources = pick_sources();
    const auto run_engine = [&](bool compress, bc::Advance adv,
                                unsigned width) {
      PoolWidthGuard guard;
      sim::ExecutorPool::instance().set_threads(width);
      sim::Device dev;
      dev.set_keep_launch_records(false);
      // The uncompressed reference is pinned to kScCsc — the layout the
      // compressed engine demotes to — so agreement is bit-exact, not
      // tolerance-based. The compressed run asks for the auto-selected
      // variant to exercise the demotion path itself.
      bc::TurboBC algo(dev, graph,
                       {.variant = compress ? bc::select_variant(canon)
                                            : bc::Variant::kScCsc,
                        .advance = adv,
                        .compress = compress});
      return algo.run_sources(sources);
    };
    const auto compare_bits = [&](const std::string& what,
                                  const std::vector<bc_t>& actual,
                                  const std::vector<bc_t>& expected) {
      if (actual.size() != expected.size()) {
        fail("ooc_agreement",
             what + ": size " + std::to_string(actual.size()) + " vs " +
                 std::to_string(expected.size()));
        return;
      }
      for (std::size_t v = 0; v < actual.size(); ++v) {
        if (actual[v] != expected[v]) {
          std::ostringstream os;
          os << what << ": bc[" << v << "] = " << actual[v] << " vs "
             << expected[v];
          fail("ooc_agreement", os.str());
          return;
        }
      }
    };

    bc::BcResult packed_push;
    for (const bc::Advance adv :
         {bc::Advance::kPush, bc::Advance::kPull, bc::Advance::kAuto}) {
      const std::string mode(bc::to_string(adv));
      const bc::BcResult plain = run_engine(false, adv, 1);
      const bc::BcResult packed = run_engine(true, adv, 1);
      compare_bits(mode + ": compressed vs uncompressed", packed.bc,
                   plain.bc);
      if (adv == bc::Advance::kPush) packed_push = packed;
    }

    // ooc_inventory: the resident compressed image is byte-exact against
    // the codec's model, and the engine's simulated peak is the analytic
    // kScCsc inventory with the graph term swapped for that image.
    {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBC algo(dev, graph, {.compress = true});
      if (algo.graph_device_bytes() != cgraph.model_bytes()) {
        std::ostringstream os;
        os << "compressed device image " << algo.graph_device_bytes()
           << " B != model " << cgraph.model_bytes() << " B";
        fail("ooc_inventory", os.str());
      }
      const bc::BcResult r = algo.run_sources(sources);
      const std::size_t csc_bytes =
          4 * (static_cast<std::size_t>(n) + 1) +
          4 * static_cast<std::size_t>(m);
      const std::size_t expected =
          expected_turbobc_peak_bytes(bc::Variant::kScCsc, n, m,
                                      /*edge_bc=*/false) -
          csc_bytes + cgraph.model_bytes();
      if (r.peak_device_bytes != expected) {
        std::ostringstream os;
        os << "compressed peak " << r.peak_device_bytes
           << " B != analytic inventory " << expected << " B (n = " << n
           << ", m = " << m << ")";
        fail("ooc_inventory", os.str());
      }
    }

    // Streamed == resident: a window of 1 over >= 2 shards forces LRU
    // eviction and refetch every sweep; the BC must still be bit-identical.
    {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      storage::StreamingTurboBC streamed(dev, cgraph,
                                         {.num_shards = 3, .window = 1});
      compare_bits("streamed(window=1) vs resident compressed",
                   streamed.run_sources(sources).bc, packed_push.bc);
    }

    // Fetch-free fast path: window >= shards means every shard uploads
    // once and the ledger stays refetch- and eviction-free.
    {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      storage::StreamingTurboBC fast(dev, cgraph,
                                     {.num_shards = 2, .window = 4});
      compare_bits("streamed(fetch-free) vs resident compressed",
                   fast.run_sources(sources).bc, packed_push.bc);
      if (!fast.fetch_free()) {
        fail("ooc_agreement",
             "window >= num_shards but engine does not report fetch_free");
      }
      if (fast.ledger().refetch_bytes != 0 || fast.ledger().evictions != 0) {
        std::ostringstream os;
        os << "fetch-free window reported refetch traffic ("
           << fast.ledger().refetch_bytes << " B, "
           << fast.ledger().evictions << " evictions)";
        fail("ooc_agreement", os.str());
      }
    }

    // Pool-width determinism, the PR 1 standard: compressed modeled results
    // are bit-identical at any width (sources run serially, so this must
    // hold for the streamed engine's values too).
    if (opt.check_determinism && n > 1) {
      const bc::BcResult wide = run_engine(true, bc::Advance::kPush,
                                           opt.det_threads);
      if (wide.bc != packed_push.bc ||
          wide.device_seconds != packed_push.device_seconds ||
          wide.peak_device_bytes != packed_push.peak_device_bytes) {
        fail("ooc_agreement",
             "compressed push: threads=1 vs threads=" +
                 std::to_string(opt.det_threads) +
                 " modeled results differ");
      }
    }
  }

  // See oracle.hpp: hybrid CPU-GPU co-execution (src/hybrid/).
  void check_hybrid() {
    const vidx_t n = canon.num_vertices();

    const auto same_bits = [](const std::vector<bc_t>& a,
                              const std::vector<bc_t>& b) {
      return a.size() == b.size() &&
             (a.empty() ||
              std::memcmp(a.data(), b.data(), a.size() * sizeof(bc_t)) == 0);
    };

    const auto run_hybrid = [&](unsigned width) {
      PoolWidthGuard guard;
      sim::ExecutorPool::instance().set_threads(width);
      sim::Device dev;
      dev.set_keep_launch_records(false);
      hybrid::HybridTurboBC engine(dev, graph, {}, {.devices = 2});
      return engine.run_exact();
    };

    hybrid::HybridResult serial;
    try {
      serial = run_hybrid(1);
    } catch (const InternalError& e) {
      // The engine's own runtime probe (heaviest block co-run on both
      // processor classes, compared bitwise) throws on disagreement —
      // that IS the invariant under test, so report it rather than
      // letting it surface as unexpected_throw.
      fail("hybrid_agreement",
           std::string("co-execution probe rejected the run: ") + e.what());
      return;
    }

    // Bit-identity against the single-engine run with the same pinned
    // variant — the contract that makes co-execution transparent.
    {
      sim::Device dev;
      dev.set_keep_launch_records(false);
      bc::TurboBC algo(dev, graph, {.variant = bc::Variant::kScCsc});
      const bc::BcResult want = algo.run_exact();
      if (!same_bits(serial.result.bc, want.bc)) {
        fail("hybrid_agreement",
             "hybrid run_exact BC differs bitwise from the single-engine "
             "kScCsc run_exact");
      }
    }

    // Ledger sanity: the per-processor accounting must fold back to the
    // whole run. Every block lands on exactly one processor; sources sum
    // to n (the empty tail block contributes none); no lane can be busier
    // than the makespan; the probe's host co-run is the one extra charge
    // on top of busy_seconds.
    {
      std::size_t blocks = 0;
      std::size_t src = 0;
      double lane_busy_total = 0.0;
      for (const hybrid::ProcessorStat& p : serial.processors) {
        blocks += p.blocks;
        src += p.sources;
        lane_busy_total += p.busy_seconds;
        if (p.utilization > 1.0 + 1e-12) {
          std::ostringstream os;
          os << p.name << " utilization " << p.utilization
             << " exceeds 1 (busy " << p.busy_seconds << " s, makespan "
             << serial.makespan_seconds << " s)";
          fail("hybrid_agreement", os.str());
        }
      }
      if (blocks != serial.num_blocks ||
          src != static_cast<std::size_t>(n)) {
        std::ostringstream os;
        os << "processor accounting: " << blocks << " blocks / " << src
           << " sources vs " << serial.num_blocks << " blocks / " << n
           << " sources run";
        fail("hybrid_agreement", os.str());
      }
      if (serial.makespan_seconds > lane_busy_total ||
          serial.busy_seconds > lane_busy_total) {
        std::ostringstream os;
        os << "makespan " << serial.makespan_seconds << " s / busy "
           << serial.busy_seconds
           << " s exceed the per-lane fold " << lane_busy_total << " s";
        fail("hybrid_agreement", os.str());
      }
    }

    // Pool-width determinism of the FULL report: the schedule is computed
    // serially from the probe, actual times are charged in block order, so
    // every modeled number — not just the BC — must be bit-identical at
    // any width.
    if (opt.check_determinism && n > 1) {
      const hybrid::HybridResult wide = run_hybrid(opt.det_threads);
      bool same = same_bits(wide.result.bc, serial.result.bc) &&
                  wide.makespan_seconds == serial.makespan_seconds &&
                  wide.busy_seconds == serial.busy_seconds &&
                  wide.probe_block == serial.probe_block &&
                  wide.num_blocks == serial.num_blocks &&
                  wide.result.peak_device_bytes ==
                      serial.result.peak_device_bytes &&
                  wide.processors.size() == serial.processors.size();
      for (std::size_t p = 0; same && p < serial.processors.size(); ++p) {
        const hybrid::ProcessorStat& a = serial.processors[p];
        const hybrid::ProcessorStat& b = wide.processors[p];
        same = a.name == b.name && a.blocks == b.blocks &&
               a.sources == b.sources && a.rate == b.rate &&
               a.busy_seconds == b.busy_seconds &&
               a.utilization == b.utilization;
      }
      if (!same) {
        fail("hybrid_agreement",
             "threads=1 vs threads=" + std::to_string(opt.det_threads) +
                 " hybrid reports differ (schedule, makespan, or stats)");
      }
    }
  }

  void run() {
    check_mtx_roundtrip();
    if (canon.num_vertices() == 0) return;  // nothing else is defined

    const auto sources = pick_sources();
    const auto csc = graph::CscGraph::from_edges(canon);
    bool first = true;
    for (const vidx_t source : sources) {
      const auto ref_bfs = graph::bfs_reference(csc, source);
      const auto ref_sigma = baseline::brandes_sigma(canon, source);
      check_bfs_and_sigma(csc, source, ref_bfs, ref_sigma);
      check_single_source(source, /*all_variants=*/first);
      first = false;
    }

    if (opt.check_edge_bc && !sources.empty()) {
      check_edge_bc(sources.front());
    }
    if (opt.check_exact && canon.num_vertices() <= opt.exact_max_vertices) {
      check_exact();
    }
    if (opt.check_determinism && canon.num_vertices() > 1) {
      check_thread_determinism();
    }
    if (opt.check_approx && canon.num_vertices() > 0) {
      check_approx();
    }
    if (opt.check_dist && canon.num_vertices() > 0) {
      check_dist();
    }
    if (opt.check_dobfs && canon.num_vertices() > 0) {
      check_dobfs();
    }
    if (opt.check_msbfs && canon.num_vertices() > 0 &&
        canon.num_vertices() <= opt.msbfs_max_vertices) {
      check_msbfs();
    }
    if (opt.check_serve && canon.num_vertices() > 0 &&
        canon.num_vertices() <= opt.serve_max_vertices) {
      check_serve();
    }
    if (opt.check_daemon && canon.num_vertices() > 0 &&
        canon.num_vertices() <= opt.daemon_max_vertices) {
      check_daemon();
    }
    if (opt.check_ooc && canon.num_vertices() > 0 &&
        canon.num_vertices() <= opt.ooc_max_vertices) {
      check_ooc();
    }
    if (opt.check_hybrid && canon.num_vertices() > 0 &&
        canon.num_vertices() <= opt.hybrid_max_vertices) {
      check_hybrid();
    }
  }
};

}  // namespace

std::string OracleReport::summary() const {
  std::ostringstream os;
  os << "n = " << vertices << ", m = " << arcs << ": ";
  if (ok()) {
    os << "all invariants hold";
    return os.str();
  }
  os << violations.size() << " violation(s)";
  for (const Violation& v : violations) {
    os << "\n  [" << v.invariant << "] " << v.detail;
  }
  return os.str();
}

OracleReport check_graph(const EdgeList& graph, const OracleOptions& options) {
  OracleReport report;
  EdgeList canon = graph;
  canon.canonicalize();
  report.vertices = canon.num_vertices();
  report.arcs = canon.num_arcs();

  Checker checker{graph, canon, options, report};
  try {
    checker.run();
  } catch (const std::exception& e) {
    report.violations.push_back({"unexpected_throw", e.what()});
  }
  return report;
}

std::size_t expected_turbobc_peak_bytes(bc::Variant variant, vidx_t n,
                                        eidx_t m, bool edge_bc,
                                        bc::Advance advance, bool directed) {
  const auto un = static_cast<std::size_t>(n);
  const auto um = static_cast<std::size_t>(m);
  const bool dob = advance != bc::Advance::kPush;
  // The engine demotes kScCooc to kVeCsc in direction-optimizing mode (pull
  // needs column pointers); the inventory must mirror that.
  if (dob && variant == bc::Variant::kScCooc) variant = bc::Variant::kVeCsc;
  // Graph structure: one resident format (device_graph.hpp, 4-byte words).
  const std::size_t graph_bytes = variant == bc::Variant::kScCooc
                                      ? 8 * um           // row_A + col_A
                                      : 4 * (un + 1) + 4 * um;  // CP_A + row_A
  const std::size_t bitmap_bytes = 4 * ((un + 31) / 32);
  // bc accumulator + persistent S/sigma + the wider of the two stages:
  // forward f/f_t/c-flag (8n + 4) vs dependency triple (12n). The paper's
  // f/f_t free trick is exactly why the forward stage never dominates.
  // Direction-optimizing mode widens the forward stage — three-counter flag
  // block (12 B) plus the ceil(n/32)-word frontier bitmap — which the
  // triple still dominates for n >= 4; the UNDIRECTED backward stage grows
  // its own bitmap too (the pulled dependency gather rebuilds it from
  // delta_u each level), so both stage terms carry it symmetrically.
  const std::size_t forward = dob ? 8 * un + 12 + bitmap_bytes : 8 * un + 4;
  const std::size_t backward =
      12 * un + (dob && !directed ? bitmap_bytes : 0);
  const std::size_t stages = 4 * un + 8 * un + std::max(forward, backward);
  return graph_bytes + stages + (edge_bc ? 4 * um : 0);
}

std::size_t expected_approx_peak_bytes(bc::Variant variant, vidx_t n,
                                       eidx_t m) {
  // The TurboBC inventory plus the two n-word moment accumulators that ride
  // along on every device (main and replicas alike).
  return expected_turbobc_peak_bytes(variant, n, m, /*edge_bc=*/false) +
         8 * static_cast<std::size_t>(n);
}

std::size_t expected_gunrock_inventory_bytes(vidx_t n, eidx_t m) {
  const auto un = static_cast<std::size_t>(n);
  const auto um = static_cast<std::size_t>(m);
  // CSR + CSC offsets/indices, 8 n-sized bookkeeping arrays, the queue
  // counter, and the m-word load-balancing scratch — all 4-byte words.
  return 4 * (2 * (un + 1) + 8 * un + 1 + 3 * um);
}

}  // namespace turbobc::qa
