// Delta-debugging minimizer for oracle failures.
//
// Given a graph on which the oracle reports a violation, shrink it to a
// (locally) minimal explicit graph that still violates the SAME primary
// invariant. The reduction is the classic ddmin loop over the arc list
// (drop chunks, halve the chunk size when stuck) followed by a vertex
// compaction pass that removes isolated vertices and renumbers — so the
// reproducer a failing fuzz run writes to disk is usually a handful of arcs
// instead of a few hundred.
//
// The predicate is injectable for tests; production use closes over
// check_graph and the original report's primary_invariant().
#pragma once

#include <functional>

#include "graph/edge_list.hpp"
#include "qa/oracle.hpp"

namespace turbobc::qa {

/// Returns true when `candidate` still exhibits the failure being chased.
using FailurePredicate = std::function<bool(const graph::EdgeList&)>;

struct MinimizeOptions {
  /// Cap on predicate evaluations; the loop stops reducing (keeping the best
  /// graph so far) once spent. ddmin is O(m log m) probes in the typical
  /// case, so the default is generous for fuzz-sized graphs.
  int max_evaluations = 2000;
};

struct MinimizeResult {
  graph::EdgeList graph;     // smallest failing graph found
  int evaluations = 0;       // predicate calls spent
  eidx_t original_arcs = 0;  // shape before reduction, for reporting
  vidx_t original_vertices = 0;
};

/// ddmin over `graph`'s arcs with respect to `still_fails`. `graph` must
/// satisfy the predicate on entry (TBC_CHECK enforced) — a minimizer seeded
/// with a passing graph would "minimize" to garbage.
MinimizeResult minimize_graph(const graph::EdgeList& graph,
                              const FailurePredicate& still_fails,
                              const MinimizeOptions& options = {});

/// Convenience wrapper: minimize while the oracle still reports
/// `invariant` as its primary violation.
MinimizeResult minimize_for_invariant(const graph::EdgeList& graph,
                                      const std::string& invariant,
                                      const OracleOptions& oracle_options = {},
                                      const MinimizeOptions& options = {});

}  // namespace turbobc::qa
