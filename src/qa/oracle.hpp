// The shared invariant oracle: every checkable property of the BC stack,
// evaluated on one graph.
//
// The oracle runs every implementation (TurboBC in all three SpMV variants,
// the batched SpMM pipeline, the sequential linear-algebra baseline, the
// gunrock- and ligra-style baselines) against the queue-based Brandes
// reference and checks:
//
//   bc_agreement          cross-implementation BC values within tolerance
//   bfs_agreement         per-source depth/height/reached vs reference BFS
//   sigma_agreement       per-source shortest-path counts vs Brandes
//   dependency_conservation  sum_v delta_s(v) == sum_t (depth(t) - 1) over
//                         reachable t != s — the Brandes pair-dependency
//                         sum telescoped over interior vertices
//   footprint_ledger      TurboBC's simulated peak equals the analytic
//                         inventory (the paper's 7n + m trick, in bytes)
//   gunrock_inventory     gunrock's resident bytes equal its analytic
//                         inventory and dominate the paper's 9n + 2m floor
//   alloc_free_ledger     device alloc/free counts and live bytes balance
//                         after every run
//   thread_determinism    threads=1 vs threads=N modeled results are
//                         bit-identical (BC vectors, seconds, peak,
//                         per-kernel aggregates)
//   mtx_roundtrip         write+reread through Matrix Market preserves the
//                         canonical graph
//   edge_bc_agreement     per-arc edge BC vs the Brandes edge oracle
//   approx_coverage       every exact BC value lies inside the approx
//                         engine's reported confidence interval
//   approx_engine_agreement  scalar vs batched approx engines agree on the
//                         estimates for the same pivot sequence
//   approx_accounting     the approx run's modeled seconds / peak bytes /
//                         pivot count equal the fold of its per-wave stats,
//                         and the peak matches the analytic 9n + m inventory
//   approx_determinism    approx results (estimates, half-widths, waves,
//                         modeled numbers) bit-identical across pool widths
//   dist_bc_agreement     replicated and partitioned multi-GPU BC
//                         bit-identical to the single-device engine (same
//                         pinned variant)
//   dist_inventory        each partitioned shard's simulated peak matches
//                         the analytic "7 n_local + m_local + n exchange"
//                         inventory (src/dist/partition.hpp)
//   dist_comm_conservation  interconnect ledger: sum of logical bytes sent
//                         equals sum received, and the topology total
//                         equals the per-device fold
//   dobfs_agreement       direction-optimizing forward sweep: pull/auto
//                         reproduce push's levels S bit-identically, sigma
//                         and bc within oracle tolerance, each mode is
//                         bit-identical at any --threads, and the DO peak
//                         matches its analytic inventory and stays at
//                         7n + m + ceil(n/32) words, below gunrock's
//   msbfs_agreement       packed-mask batched engine: BC over <= 64 sources
//                         bit-identical to the per-source kScCsc engine,
//                         pull/auto sweeps bit-identical to push, results
//                         bit-identical across pool widths, word-op traffic
//                         accounted, and the batched peak within the
//                         MS-BFS footprint model (core/footprint.hpp)
//   serve_agreement       dynamic-graph serving engine (src/serve/): after
//                         every event of a random insert/delete stream the
//                         incrementally-maintained BC is bit-identical to a
//                         scratch run_exact on the mutated graph, and a
//                         scripted session's whole transcript (queries,
//                         updates, approx, stats) is byte-identical at
//                         pool widths 1 and N
//   ooc_agreement         out-of-core storage (src/storage/): the codec
//                         round-trips the CSC bit-exactly, the compressed
//                         kernels reproduce the uncompressed engine's BC
//                         bit-for-bit in push/pull/auto at any pool width,
//                         and StreamingTurboBC (including the fetch-free
//                         window, whose ledger must show zero refetch
//                         bytes) equals the resident compressed engine
//   daemon_agreement      serve daemon (src/daemon/): a single connection
//                         replaying a script over a real loopback socket
//                         produces a transcript byte-identical to
//                         run_session in wire mode (text and JSON), and
//                         under concurrent client connections every bc
//                         response's (epoch, digest) pair matches a serial
//                         from-scratch replay of the scheduler's
//                         epoch-ordered update log
//   ooc_inventory         the compressed graph's simulated device bytes
//                         match CompressedCsc::model_bytes exactly, and
//                         the compressed engine's simulated peak equals
//                         the analytic TurboBC inventory with the graph
//                         term swapped for the compressed image
//   hybrid_agreement      hybrid CPU-GPU co-execution (src/hybrid/): the
//                         co-executed run_exact BC is bit-identical to the
//                         single-engine kScCsc run_exact, the runtime
//                         calibration probe accepts the run, the
//                         per-processor block/source/busy accounting folds
//                         back to the whole run with every utilization
//                         <= 1, and the FULL report (BC, makespan, busy,
//                         schedule, per-processor stats) is bit-identical
//                         at pool widths 1 and N
//
// Each failed check appends a Violation naming the invariant; the fuzz loop
// and the delta-debugging minimizer key on those names.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/variant.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::qa {

struct OracleOptions {
  /// Relative tolerance for cross-implementation BC agreement (float-order
  /// effects only: all implementations accumulate in double).
  double tolerance = 1e-7;
  /// Sources probed per graph (spread deterministically over [0, n)).
  int max_sources = 2;
  /// Pool width compared against serial in the determinism check.
  unsigned det_threads = 4;
  /// Exact all-sources cross-check (Brandes vs run_exact vs batched); the
  /// costliest stage — the fuzzer enables it on a subset of cases and the
  /// oracle skips it for graphs above exact_max_vertices regardless.
  bool check_exact = true;
  vidx_t exact_max_vertices = 64;
  /// threads=1 vs threads=N bit-identical modeled results.
  bool check_determinism = true;
  /// Per-arc edge BC vs the Brandes edge oracle.
  bool check_edge_bc = true;
  /// Approx engine (src/approx/): interval coverage of the exact values,
  /// scalar/batched agreement, wave accounting, and pool-width determinism.
  bool check_approx = true;
  /// Pivot budget of the oracle's approx runs (capped at n). Small keeps a
  /// fuzz case cheap; the intervals it checks are valid at ANY budget.
  vidx_t approx_budget = 96;
  /// Distributed engine (src/dist/): both strategies bit-identical to the
  /// single-device engine, shard peaks vs the analytic inventory, and
  /// comm-byte conservation.
  bool check_dist = true;
  /// Modeled device count of the oracle's topology. 3 makes the last column
  /// shard uneven (and often empty on tiny graphs) — the interesting case.
  int dist_devices = 3;
  /// Direction-optimizing forward sweep: push-vs-pull/auto agreement,
  /// per-mode thread determinism, and the DO footprint inventory.
  bool check_dobfs = true;
  /// MS-BFS batched engine: bit-identity against the per-source engine,
  /// push/pull/auto mask-sweep agreement, word-op accounting, and the
  /// batched footprint model. The check runs a per-source reference BC per
  /// lane, so (like check_exact) it is skipped above msbfs_max_vertices —
  /// larger shapes are covered by tests/core/test_msbfs.cpp and bench_msbfs.
  bool check_msbfs = true;
  vidx_t msbfs_max_vertices = 220;
  /// Serving engine (src/serve/): incremental-vs-scratch BC bit-identity
  /// after every event of a random update stream, plus byte-identity of a
  /// scripted session transcript across pool widths. Each scratch compare
  /// is a full run_exact, so (like check_exact) the check is skipped above
  /// serve_max_vertices.
  bool check_serve = true;
  vidx_t serve_max_vertices = 72;
  /// Edge updates in the oracle's stream (the standalone agreement test
  /// runs >= 50; a fuzz case keeps it short).
  int serve_updates = 3;
  /// Serve daemon (src/daemon/): single-connection transcript byte-identity
  /// against run_session in wire mode, and concurrent clients' (epoch,
  /// digest) pairs against a serial scratch replay of the update log. Spawns
  /// a real socket server plus client threads and several full run_exact
  /// replays, so (like check_exact) it is skipped above daemon_max_vertices.
  bool check_daemon = true;
  vidx_t daemon_max_vertices = 48;
  /// Out-of-core storage (src/storage/): codec round-trip, compressed-vs-
  /// uncompressed BC bit-identity across advance modes and pool widths,
  /// streamed-vs-resident bit-identity, the zero-refetch fast-path ledger,
  /// and the compressed device-byte inventory. Runs several full BC passes,
  /// so (like check_exact) it is skipped above ooc_max_vertices.
  bool check_ooc = true;
  vidx_t ooc_max_vertices = 100;
  /// Hybrid CPU-GPU co-execution (src/hybrid/): BC bit-identity against
  /// the single-engine scCSC run_exact, pool-width determinism of the full
  /// report (schedule, makespan, per-processor stats), and ledger sanity
  /// (utilization <= 1, block/source accounting). Runs two full exact
  /// passes plus a host replay, so (like check_exact) it is skipped above
  /// hybrid_max_vertices.
  bool check_hybrid = true;
  vidx_t hybrid_max_vertices = 64;
};

struct Violation {
  std::string invariant;  // stable name, e.g. "bc_agreement"
  std::string detail;     // human-readable specifics
};

struct OracleReport {
  std::vector<Violation> violations;
  /// Canonical shape of the graph the checks ran on.
  vidx_t vertices = 0;
  eidx_t arcs = 0;

  bool ok() const noexcept { return violations.empty(); }
  /// First violated invariant name ("" when ok) — the minimizer's key.
  std::string primary_invariant() const {
    return violations.empty() ? std::string() : violations.front().invariant;
  }
  std::string summary() const;
};

/// Run every applicable invariant on `graph`. Never throws for graph
/// shapes the library is specified to handle; an unexpected exception from
/// an implementation is itself reported as an "unexpected_throw" violation.
OracleReport check_graph(const graph::EdgeList& graph,
                         const OracleOptions& options = {});

/// Analytic TurboBC peak-footprint inventory in simulated device bytes:
/// graph structure + bc accumulator (+ edge-BC array) + the dependency-stage
/// maximum of per-source arrays. For the CSC layouts this equals the paper's
/// 7n + m words (bc::turbobc_model_bytes) plus the one extra CP_A entry.
/// A direction-optimizing `advance` widens the forward term: the 1-element
/// frontier flag becomes 3 counters and the ceil(n/32)-word frontier bitmap
/// joins f/f_t — still dominated by the dependency triple for n >= 4. On
/// UNDIRECTED graphs the pulled dependency gather adds the same bitmap to
/// the backward stage (rebuilt from delta_u per level), so `directed` picks
/// which backward term applies; push mode ignores it.
std::size_t expected_turbobc_peak_bytes(
    bc::Variant variant, vidx_t n, eidx_t m, bool edge_bc,
    bc::Advance advance = bc::Advance::kPush, bool directed = false);

/// Analytic gunrock-baseline inventory in simulated device bytes
/// (CSR + CSC + 8 n-arrays + queue counter + m-word LB scratch).
std::size_t expected_gunrock_inventory_bytes(vidx_t n, eidx_t m);

/// Analytic peak of a scalar-engine approx wave: the TurboBC inventory plus
/// the two n-word moment accumulators ("approx_sum"/"approx_sumsq") — the
/// paper's 7n + m words grown to 9n + m.
std::size_t expected_approx_peak_bytes(bc::Variant variant, vidx_t n,
                                       eidx_t m);

}  // namespace turbobc::qa
