#include "qa/fuzzer.hpp"

#include <algorithm>
#include <filesystem>
#include <iterator>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "qa/minimize.hpp"

namespace turbobc::qa {

namespace {

/// Per-case oracle configuration: the expensive stages cycle on the
/// configured cadences so every stage runs throughout the fuzz run without
/// every case paying for all of them.
OracleOptions case_oracle(const FuzzerOptions& options, int index) {
  OracleOptions oracle = options.oracle;
  const auto on_cadence = [index](int every, int phase) {
    return every > 0 && index % every == phase % every;
  };
  oracle.check_exact = on_cadence(options.exact_every, 3);
  oracle.check_determinism = on_cadence(options.determinism_every, 2);
  oracle.check_edge_bc = on_cadence(options.edge_bc_every, 0);
  oracle.check_approx = on_cadence(options.approx_every, 1);
  oracle.check_dist = on_cadence(options.dist_every, 4);
  oracle.check_msbfs = on_cadence(options.msbfs_every, 5);
  oracle.check_serve = on_cadence(options.serve_every, 2);
  oracle.check_ooc = on_cadence(options.ooc_every, 0);
  oracle.check_daemon = on_cadence(options.daemon_every, 3);
  oracle.check_hybrid = on_cadence(options.hybrid_every, 6);
  return oracle;
}

std::string case_label(const FuzzCase& c, int index) {
  std::ostringstream os;
  os << "case " << index << " [" << to_string(c.family) << " seed " << c.seed
     << " size " << c.size_class << " +" << c.mutations.size() << "mut]";
  return os.str();
}

}  // namespace

FuzzCase draw_case(const FuzzerOptions& options, int index) {
  // One independent Xoshiro stream per case: a budget change never shifts
  // the cases drawn for earlier indices.
  SplitMix64 sm(options.seed);
  const std::uint64_t run_key = sm.next();
  Xoshiro256 rng(run_key ^
                 (static_cast<std::uint64_t>(index) * 0x9e3779b97f4a7c15ULL));

  FuzzCase c;
  c.family = kGeneratorFamilies[rng.uniform(std::size(kGeneratorFamilies))];
  c.seed = rng();
  // Heavily biased towards tiny graphs: the oracle's cost is superlinear in
  // n (exact stage, three variants), and small graphs hit edge cases at
  // least as often as big ones.
  const int max_size =
      std::clamp(options.max_size_class, 0, kMaxSizeClass);
  const std::uint64_t u = rng.uniform(16);
  int size_class = 0;
  if (u >= 13) size_class = 1;
  if (u >= 15) size_class = 2;
  c.size_class = std::min(size_class, max_size);

  const auto num_mut = static_cast<int>(
      rng.uniform(static_cast<std::uint64_t>(options.max_mutations) + 1));
  for (int i = 0; i < num_mut; ++i) {
    gen::Mutation m;
    m.kind = gen::kAllMutationKinds[rng.uniform(
        std::size(gen::kAllMutationKinds))];
    m.seed = rng();
    m.count = static_cast<vidx_t>(1 + rng.uniform(5));
    c.mutations.push_back(m);
  }

  std::ostringstream name;
  name << "fuzz-" << options.seed << "-" << index;
  c.name = name.str();
  return c;
}

FuzzSummary run_fuzzer(const FuzzerOptions& options) {
  TBC_CHECK(options.budget >= 0, "fuzz budget must be non-negative");
  FuzzSummary summary;
  for (int index = 0; index < options.budget; ++index) {
    const FuzzCase c = draw_case(options, index);
    const OracleOptions oracle = case_oracle(options, index);

    graph::EdgeList g;
    try {
      g = build_graph(c);
    } catch (const std::exception& e) {
      // A generator family rejecting its own derived parameters is a fuzzer
      // bug, not a library bug — surface it as a failure with no graph.
      FuzzFailure failure;
      failure.original = c;
      failure.report.violations.push_back(
          {"unexpected_throw", std::string("build_graph: ") + e.what()});
      summary.failures.push_back(std::move(failure));
      ++summary.cases_run;
      continue;
    }

    const OracleReport report = check_graph(g, oracle);
    ++summary.cases_run;
    summary.vertices_checked += report.vertices;
    summary.arcs_checked += report.arcs;

    if (!report.ok()) {
      FuzzFailure failure;
      failure.original = c;
      failure.report = report;

      const MinimizeResult minimized =
          minimize_for_invariant(g, report.primary_invariant(), oracle);
      failure.minimized =
          explicit_case(minimized.graph, c.name + "-min");

      if (!options.corpus_dir.empty()) {
        std::filesystem::create_directories(options.corpus_dir);
        std::ostringstream path;
        path << options.corpus_dir << "/fail-" << report.primary_invariant()
             << "-" << options.seed << "-" << index << ".fuzz";
        failure.replay_path = path.str();
        write_fuzz_case_file(failure.replay_path, failure.minimized);
      }
      if (options.log != nullptr) {
        *options.log << "FAIL " << case_label(c, index) << ": "
                     << report.summary() << "\n  minimized to n = "
                     << minimized.graph.num_vertices() << ", m = "
                     << minimized.graph.num_arcs() << " ("
                     << minimized.evaluations << " oracle calls)";
        if (!failure.replay_path.empty()) {
          *options.log << "\n  replay: " << failure.replay_path;
        }
        *options.log << std::endl;
      }
      summary.failures.push_back(std::move(failure));
      if (static_cast<int>(summary.failures.size()) >= options.max_failures) {
        if (options.log != nullptr) {
          *options.log << "stopping after " << summary.failures.size()
                       << " failures" << std::endl;
        }
        break;
      }
    } else if (options.log != nullptr && options.budget >= 10 &&
               (index + 1) % std::max(options.budget / 10, 1) == 0) {
      *options.log << "fuzz progress: " << (index + 1) << "/"
                   << options.budget << " cases, "
                   << summary.failures.size() << " failures" << std::endl;
    }
  }
  return summary;
}

ReplayResult replay_case(const FuzzCase& c, const OracleOptions& oracle) {
  ReplayResult result;
  result.replayed = c;
  const graph::EdgeList g = build_graph(c);
  result.report = check_graph(g, oracle);
  result.failed = !result.report.ok();
  if (result.failed) {
    const MinimizeResult minimized =
        minimize_for_invariant(g, result.report.primary_invariant(), oracle);
    result.minimized = explicit_case(
        minimized.graph,
        (c.name.empty() ? std::string("replay") : c.name) + "-min");
  }
  return result;
}

ReplayResult replay_file(const std::string& path,
                         const OracleOptions& oracle) {
  return replay_case(read_fuzz_case_file(path), oracle);
}

}  // namespace turbobc::qa
