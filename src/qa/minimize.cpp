#include "qa/minimize.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace turbobc::qa {

namespace {

using graph::Edge;
using graph::EdgeList;

EdgeList from_arcs(vidx_t n, bool directed, const std::vector<Edge>& arcs) {
  EdgeList out(n, directed);
  for (const Edge& e : arcs) out.add_edge(e.u, e.v);
  return out;
}

/// Removable unit for ddmin: a single arc on directed graphs; on undirected
/// graphs the whole unordered edge (every copy of both arcs), so candidates
/// never violate the both-arcs-present invariant of undirected EdgeLists.
using Unit = std::vector<Edge>;

std::vector<Unit> make_units(const EdgeList& g) {
  std::vector<Unit> units;
  if (g.directed()) {
    units.reserve(g.edges().size());
    for (const Edge& e : g.edges()) units.push_back({e});
    return units;
  }
  std::map<std::pair<vidx_t, vidx_t>, Unit> grouped;
  for (const Edge& e : g.edges()) {
    grouped[{std::min(e.u, e.v), std::max(e.u, e.v)}].push_back(e);
  }
  units.reserve(grouped.size());
  for (auto& [key, unit] : grouped) units.push_back(std::move(unit));
  return units;
}

EdgeList from_units(vidx_t n, bool directed, const std::vector<Unit>& units) {
  std::vector<Edge> arcs;
  for (const Unit& unit : units) {
    arcs.insert(arcs.end(), unit.begin(), unit.end());
  }
  return from_arcs(n, directed, arcs);
}

/// Drop vertices no arc touches and renumber the rest densely. Always keeps
/// at least one vertex so the result stays a valid graph.
EdgeList compact_vertices(const EdgeList& g) {
  const vidx_t n = g.num_vertices();
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  for (const Edge& e : g.edges()) {
    used[static_cast<std::size_t>(e.u)] = 1;
    used[static_cast<std::size_t>(e.v)] = 1;
  }
  std::vector<vidx_t> remap(static_cast<std::size_t>(n), -1);
  vidx_t next = 0;
  for (vidx_t v = 0; v < n; ++v) {
    if (used[static_cast<std::size_t>(v)]) remap[static_cast<std::size_t>(v)] = next++;
  }
  if (next == 0) return EdgeList(std::min<vidx_t>(n, 1), g.directed());
  std::vector<Edge> arcs;
  arcs.reserve(g.edges().size());
  for (const Edge& e : g.edges()) {
    arcs.push_back({remap[static_cast<std::size_t>(e.u)],
                    remap[static_cast<std::size_t>(e.v)]});
  }
  return from_arcs(next, g.directed(), arcs);
}

}  // namespace

MinimizeResult minimize_graph(const EdgeList& graph,
                              const FailurePredicate& still_fails,
                              const MinimizeOptions& options) {
  TBC_CHECK(still_fails(graph),
            "minimize_graph requires a graph that fails the predicate");

  MinimizeResult result;
  result.original_arcs = graph.num_arcs();
  result.original_vertices = graph.num_vertices();
  result.evaluations = 1;  // the entry check above

  EdgeList best = graph;
  const auto budget_left = [&] {
    return result.evaluations < options.max_evaluations;
  };
  const auto try_candidate = [&](const EdgeList& candidate) {
    ++result.evaluations;
    if (still_fails(candidate)) {
      best = candidate;
      return true;
    }
    return false;
  };

  // ddmin over removable units: try removing chunks of shrinking size.
  // Chunk size restarts at half the current unit count after every
  // successful removal (standard ddmin "reduce to complement" schedule).
  std::vector<Unit> units = make_units(best);
  std::size_t chunk = std::max<std::size_t>(units.size() / 2, 1);
  while (!units.empty() && budget_left()) {
    bool removed_any = false;
    for (std::size_t start = 0; start < units.size() && budget_left();
         start += chunk) {
      const std::size_t stop = std::min(start + chunk, units.size());
      std::vector<Unit> candidate;
      candidate.reserve(units.size() - (stop - start));
      candidate.insert(candidate.end(), units.begin(),
                       units.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       units.begin() + static_cast<std::ptrdiff_t>(stop),
                       units.end());
      if (try_candidate(
              from_units(best.num_vertices(), best.directed(), candidate))) {
        units = std::move(candidate);
        removed_any = true;
        chunk = std::max<std::size_t>(units.size() / 2, 1);
        break;  // restart the sweep on the reduced list
      }
    }
    if (!removed_any) {
      if (chunk == 1) break;
      chunk = std::max<std::size_t>(chunk / 2, 1);
    }
  }

  // Vertex compaction: isolated vertices rarely carry the failure, and the
  // renumbered graph is what gets committed as a corpus reproducer. Keep it
  // only if the failure survives the renumbering.
  if (budget_left()) {
    const EdgeList compacted = compact_vertices(best);
    if (compacted.num_vertices() < best.num_vertices()) {
      try_candidate(compacted);
    }
  }

  result.graph = std::move(best);
  return result;
}

MinimizeResult minimize_for_invariant(const EdgeList& graph,
                                      const std::string& invariant,
                                      const OracleOptions& oracle_options,
                                      const MinimizeOptions& options) {
  return minimize_graph(
      graph,
      [&](const EdgeList& candidate) {
        return check_graph(candidate, oracle_options).primary_invariant() ==
               invariant;
      },
      options);
}

}  // namespace turbobc::qa
