// TurboBC SpMV variants and the regular/irregular selection heuristic
// (paper Section 3.1).
#pragma once

#include <string_view>

#include "graph/edge_list.hpp"
#include "graph/stats.hpp"

namespace turbobc::bc {

enum class Variant {
  kScCooc,  // one thread per nonzero (TurboBC-scCOOC)
  kScCsc,   // one thread per column  (TurboBC-scCSC)
  kVeCsc,   // one warp per column    (TurboBC-veCSC)
};

constexpr std::string_view to_string(Variant v) {
  switch (v) {
    case Variant::kScCooc: return "scCOOC";
    case Variant::kScCsc: return "scCSC";
    case Variant::kVeCsc: return "veCSC";
  }
  return "?";
}

/// Forward-sweep frontier advance mode (Beamer-style direction
/// optimization). kPush is the paper's Algorithm 1 SpMV; kPull scans CSC
/// columns of undiscovered vertices against a dense frontier bitmap; kAuto
/// switches per level on modeled frontier/unvisited edge counts (the α/β
/// thresholds in core/autotune.hpp).
enum class Advance {
  kPush,
  kPull,
  kAuto,
};

constexpr std::string_view to_string(Advance a) {
  switch (a) {
    case Advance::kPush: return "push";
    case Advance::kPull: return "pull";
    case Advance::kAuto: return "auto";
  }
  return "?";
}

/// Pick a variant from graph structure, mirroring the paper's empirical
/// rules: irregular graphs (high scale-free index) take the warp-per-column
/// kernel; regular graphs with extreme max/mean degree skew (the mawi
/// traces) take the skew-immune edge-parallel kernel; everything else takes
/// the cheap thread-per-column kernel.
///
/// The skew test uses IN-degree stats: the scCSC/veCSC kernels parallelize
/// over CSC columns, so the hub that starves them is a high in-degree
/// column. (Out-degree hubs cost nothing extra there — their arcs are
/// spread across many columns.) The scale-free index itself stays
/// out-degree, matching the paper's Eq. 5.
inline Variant select_variant(const graph::EdgeList& graph) {
  const auto stats = graph::in_degree_stats(graph);
  if (graph::is_irregular(graph)) return Variant::kVeCsc;
  if (stats.mean > 0.0 &&
      static_cast<double>(stats.max) > 50.0 * stats.mean) {
    return Variant::kScCooc;
  }
  return Variant::kScCsc;
}

}  // namespace turbobc::bc
