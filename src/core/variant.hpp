// TurboBC SpMV variants and the regular/irregular selection heuristic
// (paper Section 3.1).
#pragma once

#include <string_view>

#include "graph/edge_list.hpp"
#include "graph/stats.hpp"

namespace turbobc::bc {

enum class Variant {
  kScCooc,  // one thread per nonzero (TurboBC-scCOOC)
  kScCsc,   // one thread per column  (TurboBC-scCSC)
  kVeCsc,   // one warp per column    (TurboBC-veCSC)
};

constexpr std::string_view to_string(Variant v) {
  switch (v) {
    case Variant::kScCooc: return "scCOOC";
    case Variant::kScCsc: return "scCSC";
    case Variant::kVeCsc: return "veCSC";
  }
  return "?";
}

/// Pick a variant from graph structure, mirroring the paper's empirical
/// rules: irregular graphs (high scale-free index) take the warp-per-column
/// kernel; regular graphs with extreme max/mean degree skew (the mawi
/// traces) take the skew-immune edge-parallel kernel; everything else takes
/// the cheap thread-per-column kernel.
inline Variant select_variant(const graph::EdgeList& graph) {
  const auto stats = graph::degree_stats(graph);
  if (graph::is_irregular(graph)) return Variant::kVeCsc;
  if (stats.mean > 0.0 &&
      static_cast<double>(stats.max) > 50.0 * stats.mean) {
    return Variant::kScCooc;
  }
  return Variant::kScCsc;
}

}  // namespace turbobc::bc
