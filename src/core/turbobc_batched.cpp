#include "core/turbobc_batched.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "gpusim/kernel.hpp"
#include "spmv/spmv_kernels.hpp"
#include "storage/ccsc_kernels.hpp"

namespace turbobc::bc {

namespace {

double device_clock(const sim::Device& d) {
  return d.kernel_seconds() + d.transfer_seconds() + d.overhead_seconds();
}

}  // namespace

TurboBCBatched::TurboBCBatched(sim::Device& device,
                               const graph::EdgeList& graph,
                               BatchedOptions options)
    : device_(device), options_(options) {
  TBC_CHECK(options_.batch_size >= 1 && options_.batch_size <= 64,
            "batch size must be in [1, 64]");
  graph::EdgeList canon = graph;
  canon.canonicalize();
  n_ = canon.num_vertices();
  m_ = canon.num_arcs();
  directed_ = canon.directed();
  TBC_CHECK(n_ > 0, "batched TurboBC needs a non-empty graph");
  if (options_.compress) {
    ccsc_.emplace(device_,
                  storage::encode_csc(graph::CscGraph::from_edges(canon)));
  } else {
    csc_.emplace(device_, graph::CscGraph::from_edges(canon));
  }
}

void TurboBCBatched::run_batch(const std::vector<vidx_t>& batch,
                               sim::DeviceBuffer<bc_t>& bc_dev,
                               const BatchMoments* moments) {
  sim::Device& dev = device_;
  const auto k = static_cast<std::size_t>(batch.size());
  const auto n = static_cast<std::size_t>(n_);
  const auto nk = n * k;
  const auto slot = [k](std::size_t v, std::size_t j) { return v * k + j; };

  // Per-batch device state: the vector arrays of Algorithm 1, widened to k
  // columns (4-byte modeled words, as in the single-source pipeline).
  sim::DeviceBuffer<std::int32_t> S(dev, nk, "S.k");
  sim::DeviceBuffer<sigma_t> sigma(dev, nk, "sigma.k", 4);
  sim::DeviceBuffer<vidx_t> sources(dev, k, "sources.k");
  sigma.set_modeled_integer(true);
  S.device_fill(0);
  sigma.device_fill(0);
  sources.copy_from_host(batch);

  std::vector<vidx_t> heights(k, 0);
  vidx_t max_height = 0;
  {
    // MS-BFS forward sweep (DESIGN.md §10): per-vertex packed 64-bit
    // source-membership masks — F (current frontier), V (visited), Fn
    // (next) — replace the n x k integer frontier matrices entirely. The
    // frontier VALUE of a newly set bit is its new sigma, so the fused
    // kernel accumulates straight into the sigma matrix and the whole
    // forward state is 3 mask words per vertex (modeled at 8 bytes each)
    // plus S/sigma.
    const bool dob = options_.advance != Advance::kPush;
    const auto kc = static_cast<std::size_t>(dob ? k + 2 : k);
    sim::DeviceBuffer<std::uint64_t> fmask(dev, n, "F.mask", 8);
    sim::DeviceBuffer<std::uint64_t> vmask(dev, n, "V.mask", 8);
    sim::DeviceBuffer<std::uint64_t> nmask(dev, n, "Fn.mask", 8);
    // Per-lane convergence flags; in direction-optimizing mode two extra
    // counters ([k] = new any-lane vertices, [k + 1] = their in-edges) feed
    // the Beamer switch — the batched widening of the single engine's
    // 3-word flag.
    sim::DeviceBuffer<std::int32_t> cflags(dev, kc, "c.k");
    std::optional<sim::DeviceBuffer<std::uint32_t>> bitmap;
    if (dob) {
      bitmap.emplace(dev,
                     static_cast<std::size_t>(spmv::frontier_bitmap_words(n_)),
                     "frontier_bitmap");
    }
    fmask.device_fill(0);
    vmask.device_fill(0);
    const std::uint64_t full =
        k == 64 ? ~0ull : ((1ull << k) - 1);

    // Seed the masks: lane j's thread composes the FULL membership word of
    // its own source (duplicate sources in a batch collapse onto one
    // vertex), so same-address stores are same-value — no atomics needed.
    sim::launch_scalar(dev, "bfs_init_msbfs", k, [&](sim::ThreadCtx& t) {
      const auto j = static_cast<std::size_t>(t.global_id());
      const auto s = static_cast<std::size_t>(sources.load(t, j));
      std::uint64_t mask = 0;
      for (std::size_t i = 0; i < k; ++i) {
        if (static_cast<std::size_t>(sources.load(t, i)) == s) {
          mask |= 1ull << i;
        }
      }
      t.count_word_ops(1);
      fmask.store(t, s, mask);
      vmask.store(t, s, mask);
      sigma.store(t, slot(s, j), 1);
    });

    // Direction-switch state over the ANY-LANE frontier, mirroring the
    // single engine: nf / mf from the widened flag readback, mu decremented
    // as levels consume edges.
    std::uint64_t nf = 0, mf = 0;
    std::uint64_t mu = static_cast<std::uint64_t>(m_);
    if (dob) {
      std::vector<vidx_t> distinct(batch);
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      nf = distinct.size();
      const auto& cp =
          ccsc_ ? ccsc_->col_ptr().host() : csc_->col_ptr().host();
      for (const vidx_t s : distinct) {
        mf += static_cast<std::uint64_t>(
            cp[static_cast<std::size_t>(s) + 1] -
            cp[static_cast<std::size_t>(s)]);
      }
      mu -= mf;
    }
    bool pulling = false;

    sim::DeviceBuffer<std::uint64_t>* cur = &fmask;
    sim::DeviceBuffer<std::uint64_t>* nxt = &nmask;
    vidx_t d = 0;
    while (true) {
      ++d;
      nxt->device_fill(0);
      cflags.device_fill(0);
      if (dob) {
        if (options_.advance == Advance::kPull) {
          pulling = true;
        } else if (pulling) {
          pulling = !switch_to_push(nf, static_cast<std::uint64_t>(n_),
                                    options_.thresholds);
        } else {
          pulling = switch_to_pull(mf, mu, options_.thresholds);
        }
      }
      if (pulling) {
        spmv::msbfs_frontier_to_bitmap(dev, *cur, n_, *bitmap);
        if (ccsc_) {
          storage::spmm_forward_msbfs_pull_ccsc(
              dev, *ccsc_, static_cast<int>(k), full, d, *cur, *bitmap, vmask,
              *nxt, sigma, S, cflags, dob);
        } else {
          spmv::spmm_forward_msbfs_pull_sccsc(
              dev, *csc_, static_cast<int>(k), full, d, *cur, *bitmap, vmask,
              *nxt, sigma, S, cflags, dob);
        }
      } else if (ccsc_) {
        storage::spmm_forward_msbfs_ccsc(dev, *ccsc_, static_cast<int>(k),
                                         full, d, *cur, vmask, *nxt, sigma, S,
                                         cflags, dob);
      } else {
        spmv::spmm_forward_msbfs_sccsc(dev, *csc_, static_cast<int>(k), full,
                                       d, *cur, vmask, *nxt, sigma, S, cflags,
                                       dob);
      }
      // ONE readback of k flags per level (vs one 4-byte readback per
      // source-level in the unbatched pipeline).
      const auto flags = cflags.copy_to_host();
      bool any = false;
      for (std::size_t j = 0; j < k; ++j) {
        if (flags[j] != 0) {
          heights[j] = d;
          any = true;
        }
      }
      if (!any) break;
      if (dob) {
        nf = static_cast<std::uint64_t>(flags[k]);
        mf = static_cast<std::uint64_t>(flags[k + 1]);
        mu -= mf;
      }
      std::swap(cur, nxt);
    }
    max_height = *std::max_element(heights.begin(), heights.end());
  }

  // Backward stage, k dependency columns at once.
  sim::DeviceBuffer<bc_t> delta(dev, nk, "delta.k", 4);
  sim::DeviceBuffer<bc_t> delta_u(dev, nk, "delta_u.k", 4);
  sim::DeviceBuffer<bc_t> delta_ut(dev, nk, "delta_ut.k", 4);
  delta.device_fill(0.0);

  for (vidx_t d = max_height; d >= 2; --d) {
    sim::launch_scalar(
        dev, "dep_prepare_batched", static_cast<std::uint64_t>(n_),
        [&](sim::ThreadCtx& t) {
          const auto v = static_cast<std::size_t>(t.global_id());
          for (std::size_t j = 0; j < k; ++j) {
            bc_t out = 0.0;
            if (S.load(t, slot(v, j)) == d) {
              const sigma_t sg = sigma.load(t, slot(v, j));
              if (sg > 0) {
                out = (1.0 + delta.load(t, slot(v, j))) /
                      static_cast<bc_t>(sg);
              }
            }
            delta_u.store(t, slot(v, j), out);
            t.count_ops(1);
          }
        });

    delta_ut.device_fill(0.0);
    if (ccsc_) {
      // Compressed twins of the two inline loops below, decoding rows from
      // the varint stream (storage/ccsc_kernels.hpp).
      if (!directed_) {
        storage::dep_spmm_gather_ccsc(dev, *ccsc_, k, delta_u, delta_ut);
      } else {
        storage::dep_spmm_scatter_ccsc(dev, *ccsc_, k, delta_u, delta_ut);
      }
    } else if (!directed_) {
      sim::launch_scalar(
          dev, "dep_spmm_sccsc", static_cast<std::uint64_t>(n_),
          [&](sim::ThreadCtx& t) {
            const auto v = static_cast<std::size_t>(t.global_id());
            const spmv::dptr_t begin = csc_->col_ptr().load(t, v);
            const spmv::dptr_t end = csc_->col_ptr().load(t, v + 1);
            bc_t sums[64] = {};
            for (spmv::dptr_t e = begin; e < end; ++e) {
              const auto u = static_cast<std::size_t>(
                  csc_->row_idx().load(t, static_cast<std::size_t>(e)));
              t.count_ops(1);
              for (std::size_t j = 0; j < k; ++j) {
                sums[j] += delta_u.load(t, slot(u, j));
              }
            }
            for (std::size_t j = 0; j < k; ++j) {
              if (sums[j] != 0.0) delta_ut.store(t, slot(v, j), sums[j]);
            }
          });
    } else {
      // Directed: out-neighbour sums via scatter (see DESIGN.md).
      sim::launch_scalar(
          dev, "dep_spmm_sccsc_scatter", static_cast<std::uint64_t>(n_),
          [&](sim::ThreadCtx& t) {
            const auto w = static_cast<std::size_t>(t.global_id());
            std::uint64_t live = 0;
            for (std::size_t j = 0; j < k; ++j) {
              if (delta_u.load(t, slot(w, j)) != 0.0) live |= 1ull << j;
            }
            if (live == 0) return;
            const spmv::dptr_t begin = csc_->col_ptr().load(t, w);
            const spmv::dptr_t end = csc_->col_ptr().load(t, w + 1);
            for (spmv::dptr_t e = begin; e < end; ++e) {
              const auto u = static_cast<std::size_t>(
                  csc_->row_idx().load(t, static_cast<std::size_t>(e)));
              t.count_ops(1);
              for (std::size_t j = 0; j < k; ++j) {
                if ((live >> j) & 1ull) {
                  delta_ut.atomic_add(t, slot(u, j),
                                      delta_u.load(t, slot(w, j)));
                }
              }
            }
          });
    }

    sim::launch_scalar(
        dev, "dep_update_batched", static_cast<std::uint64_t>(n_),
        [&](sim::ThreadCtx& t) {
          const auto v = static_cast<std::size_t>(t.global_id());
          for (std::size_t j = 0; j < k; ++j) {
            t.count_ops(1);
            if (S.load(t, slot(v, j)) == d - 1) {
              const bc_t du = delta_ut.load(t, slot(v, j));
              if (du != 0.0) {
                const sigma_t sg = sigma.load(t, slot(v, j));
                delta.store(t, slot(v, j),
                            delta.load(t, slot(v, j)) +
                                du * static_cast<bc_t>(sg));
              }
            }
          }
        });
  }

  // Strict per-lane LEFT fold into the running accumulator — the exact
  // float grouping of the per-source engine's block merge (singleton blocks
  // for <= 64 sources): bc(v) gains each lane's dl * scale one add at a
  // time, in source order, skipping only exact zeros. This is what makes
  // batched BC bit-identical to per-source TurboBC on any <= 64-source set.
  const bc_t scale = directed_ ? 1.0 : 0.5;
  sim::launch_scalar(
      dev, "bc_accum_batched", static_cast<std::uint64_t>(n_),
      [&](sim::ThreadCtx& t) {
        const auto v = static_cast<std::size_t>(t.global_id());
        bc_t acc = bc_dev.load(t, v);
        bool touched = false;
        for (std::size_t j = 0; j < k; ++j) {
          if (static_cast<vidx_t>(v) == batch[j]) continue;
          const bc_t dl = delta.load(t, slot(v, j));
          if (dl != 0.0) {
            acc += dl * scale;
            touched = true;
          }
          t.count_ops(1);
        }
        if (touched) bc_dev.store(t, v, acc);
      });

  if (moments != nullptr) {
    sim::DeviceBuffer<bc_t>& msum = *moments->sum;
    sim::DeviceBuffer<bc_t>& msumsq = *moments->sumsq;
    const double* w = moments->weights;
    sim::launch_scalar(
        dev, "approx_moment_batched", static_cast<std::uint64_t>(n_),
        [&](sim::ThreadCtx& t) {
          const auto v = static_cast<std::size_t>(t.global_id());
          // Same per-lane left fold as bc_accum_batched, for the moment
          // accumulators — bit-identical to the scalar engine's per-source
          // "approx_moment" sequence.
          bc_t s = msum.load(t, v);
          bc_t s2 = msumsq.load(t, v);
          bool touched = false;
          for (std::size_t j = 0; j < k; ++j) {
            if (static_cast<vidx_t>(v) == batch[j]) continue;
            const bc_t dl = delta.load(t, slot(v, j));
            t.count_ops(2);
            if (dl != 0.0) {
              const bc_t x = dl * scale * w[j];
              s += x;
              s2 += x * x;
              touched = true;
            }
          }
          if (touched) {
            msum.store(t, v, s);
            msumsq.store(t, v, s2);
          }
        });
  }
}

BcResult TurboBCBatched::run_sources(const std::vector<vidx_t>& sources) {
  for (const vidx_t s : sources) {
    TBC_CHECK(s >= 0 && s < n_, "batched BC source out of range");
  }
  device_.memory().reset_peak();
  const double start = device_clock(device_);

  sim::DeviceBuffer<bc_t> bc_dev(device_, static_cast<std::size_t>(n_),
                                 "bc", 4);
  bc_dev.device_fill(0.0);

  const auto k = static_cast<std::size_t>(options_.batch_size);
  for (std::size_t begin = 0; begin < sources.size(); begin += k) {
    const std::size_t end = std::min(sources.size(), begin + k);
    run_batch(std::vector<vidx_t>(sources.begin() + static_cast<std::ptrdiff_t>(begin),
                                  sources.begin() + static_cast<std::ptrdiff_t>(end)),
              bc_dev);
  }

  BcResult result;
  result.sources = static_cast<vidx_t>(sources.size());
  result.device_seconds = device_clock(device_) - start;
  result.peak_device_bytes = device_.memory().peak_bytes();
  result.bc = bc_dev.copy_to_host();
  return result;
}

BcResult TurboBCBatched::run_sources_moments(
    const std::vector<vidx_t>& sources, const std::vector<double>& weights,
    TurboBC::MomentResult& moments) {
  TBC_CHECK(weights.size() == sources.size(),
            "moment run needs one weight per source");
  for (const vidx_t s : sources) {
    TBC_CHECK(s >= 0 && s < n_, "batched BC source out of range");
  }
  device_.memory().reset_peak();
  const double start = device_clock(device_);

  sim::DeviceBuffer<bc_t> bc_dev(device_, static_cast<std::size_t>(n_),
                                 "bc", 4);
  bc_dev.device_fill(0.0);
  sim::DeviceBuffer<bc_t> msum(device_, static_cast<std::size_t>(n_),
                               "approx_sum", 4);
  sim::DeviceBuffer<bc_t> msumsq(device_, static_cast<std::size_t>(n_),
                                 "approx_sumsq", 4);
  msum.device_fill(0.0);
  msumsq.device_fill(0.0);

  const auto k = static_cast<std::size_t>(options_.batch_size);
  for (std::size_t begin = 0; begin < sources.size(); begin += k) {
    const std::size_t end = std::min(sources.size(), begin + k);
    const BatchMoments bm{&msum, &msumsq, weights.data() + begin};
    run_batch(std::vector<vidx_t>(sources.begin() + static_cast<std::ptrdiff_t>(begin),
                                  sources.begin() + static_cast<std::ptrdiff_t>(end)),
              bc_dev, &bm);
  }

  // Downloaded inside the modeled clock — the adaptive driver reads the
  // moments between waves (see TurboBC::run_sources_moments).
  moments.sum = msum.copy_to_host();
  moments.sumsq = msumsq.copy_to_host();

  BcResult result;
  result.sources = static_cast<vidx_t>(sources.size());
  result.device_seconds = device_clock(device_) - start;
  result.peak_device_bytes = device_.memory().peak_bytes();
  result.bc = bc_dev.copy_to_host();
  return result;
}

BcResult TurboBCBatched::run_exact() {
  std::vector<vidx_t> sources(static_cast<std::size_t>(n_));
  for (vidx_t v = 0; v < n_; ++v) sources[static_cast<std::size_t>(v)] = v;
  return run_sources(sources);
}

}  // namespace turbobc::bc
