// TurboBC: the paper's Algorithm 1 — linear-algebraic betweenness
// centrality — running on the simulated GPU.
//
// Pipeline per source (paper Section 3.4, Figure 2):
//   forward (BFS) stage, integer vectors:
//     d=1: init kernel (f(s)=1, sigma(s)=1), then per level:
//       f_t <- 0;  f_t <- masked SpMV(A^T, f);  update kernel (f <- f_t,
//       S <- d, sigma += f, frontier flag), flag copied back to the host.
//   f and f_t are then FREED and the float dependency triple delta /
//   delta_u / delta_ut allocated in their place — the paper's
//   memory-footprint trick that keeps the peak at ~7n + m words.
//   backward (dependency) stage, for d = height .. 2:
//     delta_u <- (1 + delta)/sigma on the depth-d slice;  delta_ut <-
//     SpMV;  delta += delta_ut * sigma on the depth-(d-1) slice.
//   bc accumulation kernel adds delta into bc (halved for undirected
//   graphs, Brandes' double-counting compensation).
//
// The published pseudocode has two quirks this implementation resolves
// (documented in DESIGN.md): the frontier must be zeroed where sigma != 0
// (otherwise the source re-accumulates every level), and on directed graphs
// the backward SpMV needs out-neighbour sums, realized as a scatter through
// the same single stored structure.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/autotune.hpp"
#include "core/variant.hpp"
#include "gpusim/device.hpp"
#include "graph/edge_list.hpp"
#include "spmv/device_graph.hpp"
#include "storage/device_ccsc.hpp"

namespace turbobc::bc {

struct BcOptions {
  Variant variant = Variant::kScCsc;
  /// Datatype ablation (paper Section 3.4): model the BFS-stage vectors
  /// (f, f_t, sigma) as floating-point device arrays instead of integers.
  /// Functionally identical (path counts are always computed in double —
  /// see common/types.hpp); the cost model charges float-atomic rates,
  /// which is what makes it slower. Only the ablation bench sets this.
  bool float_bfs = false;
  /// Extension (beyond the paper; its Eq. 1 defines BC for edges too):
  /// accumulate per-arc edge betweenness during the backward stage into an
  /// additional m-word device array. Costs one more kernel per level and
  /// raises the footprint from 7n + m to 7n + 2m words.
  bool edge_bc = false;
  /// Forward-sweep frontier advance. kPush is the paper's Algorithm 1
  /// pipeline, byte-for-byte. kPull / kAuto enable the direction-optimizing
  /// engine: undiscovered columns scan their CSC in-neighbours against a
  /// dense n/32-word frontier bitmap (footprint 7n + m + ceil(n/32) words),
  /// with kAuto switching per level on the thresholds below. Needs CSC:
  /// when combined with Variant::kScCooc the constructor falls back to
  /// kVeCsc (only one sparse format may stay resident, CSC is never larger
  /// than COOC for the same arcs, and warp-per-column stays balanced on the
  /// in-degree skew COOC is picked for). The S / sigma / bc results are
  /// bit-identical to push — the pull fold skips exact zeros only.
  Advance advance = Advance::kPush;
  /// Per-level push<->pull switch thresholds (kAuto only).
  DirectionThresholds thresholds = {};
  /// Out-of-core extension (DESIGN.md §12): keep the graph resident as a
  /// delta-varint compressed CSC (storage::CompressedCsc) and decode row
  /// ids inside the gather loops. The varint chain is sequential per
  /// column, so any variant demotes to the thread-per-column kScCsc layout
  /// (mirroring the COOC demotion under pull); results are bit-identical
  /// to the uncompressed kernels — same rows, same fold order, same
  /// arithmetic. Incompatible with edge_bc (the edge accumulator indexes
  /// the per-arc array by raw nonzero position).
  bool compress = false;
};

/// Statistics of one source's traversal.
struct SourceStats {
  vidx_t bfs_depth = 0;  // height of the BFS tree (the paper's d)
  vidx_t reached = 0;    // vertices discovered, including the source
};

struct BcResult {
  /// Per-vertex centrality. For a single-source run this is the dependency
  /// contribution delta_s (what the paper's "BC/vertex" experiments time);
  /// for run_exact it is the full betweenness centrality.
  std::vector<bc_t> bc;
  /// Per-arc edge betweenness in canonical arc order (see
  /// baseline::brandes_edge_bc for the indexing contract). Empty unless
  /// BcOptions::edge_bc was set.
  std::vector<bc_t> edge_bc;
  SourceStats last_source;
  /// Modeled device seconds spent in kernels for this call.
  double device_seconds = 0.0;
  /// Peak simulated device bytes live during this call.
  std::size_t peak_device_bytes = 0;
  /// Sources processed (1 for single-source, n for exact).
  vidx_t sources = 0;
};

class TurboBC {
 public:
  /// Uploads exactly one sparse format (chosen by options.variant) to the
  /// device. Throws DeviceOutOfMemory if the graph alone does not fit.
  TurboBC(sim::Device& device, const graph::EdgeList& graph,
          BcOptions options = {});

  /// Dependency accumulation from one source (the paper's per-vertex BC).
  BcResult run_single_source(vidx_t source);

  /// Exact BC: every vertex as source (paper Table 5).
  BcResult run_exact();

  /// BC restricted to the given sources (sampling-style approximations).
  ///
  /// Multi-source runs fan the sources out across the ExecutorPool: the
  /// source list is split into blocks (block structure depends only on the
  /// source count, never on the thread count), each block runs on a fresh
  /// replica device, and block partials — bc/edge_bc vectors, kernel
  /// aggregates, modeled seconds, peak bytes — are merged on the main
  /// device in fixed block order. Every modeled number and BC value is
  /// therefore bit-identical for any pool width, including width 1.
  BcResult run_sources(const std::vector<vidx_t>& sources);

  /// First and second moments of per-source importance-weighted dependency
  /// samples, as needed by the approx estimator (src/approx/estimator.hpp):
  /// for each vertex v,
  ///   sum(v)   = sum_s  w_s * c_s(v)
  ///   sumsq(v) = sum_s (w_s * c_s(v))^2
  /// where c_s(v) is source s's dependency contribution (already halved on
  /// undirected graphs, zero at v == s) and w_s the caller's importance
  /// weight (1 / p_s for a source drawn with probability p_s).
  struct MomentResult {
    std::vector<bc_t> sum;
    std::vector<bc_t> sumsq;
  };

  /// run_sources plus on-device moment accumulation: two extra n-word float
  /// arrays ("approx_sum"/"approx_sumsq") ride along on every device
  /// (raising the modeled footprint from 7n + m to 9n + m words), an
  /// "approx_moment" kernel folds each source's dependency vector into them,
  /// and the wave's moments are downloaded inside the modeled clock (the
  /// adaptive driver must read them between waves to evaluate its stopping
  /// rule). Same block fan-out and fixed-order merge as run_sources, so the
  /// moments — like everything else — are bit-identical at any pool width.
  /// `weights` must be parallel to `sources`. Incompatible with edge_bc.
  BcResult run_sources_moments(const std::vector<vidx_t>& sources,
                               const std::vector<double>& weights,
                               MomentResult& moments);

  /// Approximate BC by uniform source sampling (Brandes & Pich style):
  /// num_sources sources drawn without replacement, results scaled by
  /// n / num_sources — an unbiased estimator of exact BC. Extension beyond
  /// the paper, enabled by the same run_sources machinery.
  struct ApproxOptions {
    vidx_t num_sources = 32;
    std::uint64_t seed = 1;
  };
  BcResult run_approximate(const ApproxOptions& options);

  const BcOptions& options() const noexcept { return options_; }
  vidx_t num_vertices() const noexcept { return n_; }
  eidx_t num_arcs() const noexcept { return m_; }
  bool directed() const noexcept { return directed_; }

  /// Device bytes held by the uploaded graph structure.
  std::size_t graph_device_bytes() const noexcept;

  /// Fixed fan-out structure of a multi-source run: `count` sources split
  /// into min(count, 64) contiguous blocks of ceil(count / blocks) sources.
  /// A pure function of the source count — never of the pool width or any
  /// device count — so every consumer (run_sources here, the replicated
  /// strategy in src/dist/) folds the same block partials in the same order.
  struct BlockPlan {
    std::size_t num_blocks = 0;
    std::size_t block_len = 0;
    std::size_t begin(std::size_t b) const noexcept { return b * block_len; }
    std::size_t end(std::size_t b, std::size_t count) const noexcept {
      const std::size_t e = (b + 1) * block_len;
      return e < count ? e : count;
    }
  };
  static BlockPlan block_plan(std::size_t count);

  /// Host-side replay of the run_sources merge over per-source contribution
  /// vectors (each as returned by run_single_source for the source at that
  /// position): sources grouped by block_plan(count), a zero-initialized
  /// per-block partial left-folded source by source, then the block partials
  /// left-folded in block order — plain double adds throughout, exactly the
  /// adds the device accumulator and the block merge perform. Because the
  /// bc-accumulation kernel only ever ADDS terms (skipping exact zeros,
  /// which is bitwise neutral on the non-negative partial sums), the result
  /// is bit-identical to run_sources over the same source order at any pool
  /// width. The serving layer (src/serve/) folds its cached blocks through
  /// this to reproduce run_exact byte for byte.
  static std::vector<bc_t> fold_source_blocks(
      const std::vector<const std::vector<bc_t>*>& contributions,
      std::size_t n);

  /// Partials of one source block, run on a fresh replica device: the
  /// replica's timeline (setup charges stripped — only per-source work),
  /// raw bc / edge-bc (device nonzero order) / moment vectors, and the
  /// replica's peak bytes including graph + accumulator footprint.
  struct BlockPartial {
    std::unique_ptr<sim::Device> dev;
    std::vector<bc_t> bc;
    std::vector<bc_t> ebc;
    std::vector<bc_t> sum;
    std::vector<bc_t> sumsq;
    SourceStats last;
    std::size_t peak_bytes = 0;
  };

  /// Run sources [begin, end) of `sources` on a fresh replica built from
  /// `props`. Thread-safe (const; the replica is private to the call) — this
  /// is the unit both the ExecutorPool fan-out and the distributed
  /// replicated strategy schedule, which is what makes their BC folds
  /// bit-identical. `weights` (nullable) and `with_moments` mirror
  /// run_sources_moments.
  BlockPartial run_source_block(const sim::DeviceProps& props,
                                const std::vector<vidx_t>& sources,
                                std::size_t begin, std::size_t end,
                                const std::vector<double>* weights,
                                bool with_moments) const;

  /// Permutation from device nonzero order (column-major) to canonical arc
  /// order; empty unless options.edge_bc. The dist driver applies it to its
  /// own merged edge-bc partials.
  const std::vector<eidx_t>& nz_to_canonical() const noexcept {
    return nz_to_canonical_;
  }

 private:
  /// Per-source moment sink: the device arrays the "approx_moment" kernel
  /// accumulates into, plus the source's importance weight.
  struct MomentSink {
    sim::DeviceBuffer<bc_t>* sum = nullptr;
    sim::DeviceBuffer<bc_t>* sumsq = nullptr;
    double weight = 1.0;
  };

  /// One source's full pipeline against an explicit device and graph
  /// structure. `dev` is either the main device (serial / single-source) or
  /// a per-block replica of it (parallel fan-out — see run_sources); exactly
  /// one of `csc` / `cooc` / `ccsc` is non-null, matching options_.variant
  /// and options_.compress.
  SourceStats run_source_on(sim::Device& dev, const spmv::DeviceCsc* csc,
                            const spmv::DeviceCooc* cooc,
                            const storage::DeviceCompressedCsc* ccsc,
                            vidx_t source, sim::DeviceBuffer<bc_t>& bc_dev,
                            sim::DeviceBuffer<bc_t>* ebc_dev,
                            const MomentSink* moments = nullptr) const;

  /// Shared body of run_sources / run_sources_moments. `weights` is null
  /// for plain runs; otherwise parallel to `sources`, with the per-block
  /// moment partials merged into `moments` in fixed block order.
  BcResult run_sources_impl(const std::vector<vidx_t>& sources,
                            const std::vector<double>* weights,
                            MomentResult* moments);

  sim::Device& device_;
  BcOptions options_;
  vidx_t n_ = 0;
  eidx_t m_ = 0;
  bool directed_ = false;
  std::optional<spmv::DeviceCsc> csc_;
  std::optional<spmv::DeviceCooc> cooc_;
  std::optional<storage::DeviceCompressedCsc> ccsc_;
  /// Permutation from device nonzero order (column-major) to canonical arc
  /// order; built only when options.edge_bc is set.
  std::vector<eidx_t> nz_to_canonical_;
};

}  // namespace turbobc::bc
