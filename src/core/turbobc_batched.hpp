// Batched multi-source TurboBC: the frontier as an n x k MATRIX.
//
// Algorithm 1 is a sequence of matrix-vector products; the natural
// linear-algebra extension (and the standard GraphBLAS idiom for exact BC)
// replaces the frontier vector f with an n x k matrix F holding k
// independent BFS fronts, turning every SpMV into an SpMM. Two costs
// amortize across the batch:
//
//   * per-level kernel launches and the frontier-flag readback: ONE set per
//     level instead of one per source-level — decisive on deep graphs,
//     where the paper's own pipeline is launch-overhead-bound (road
//     networks: ~5 launches x 3.5 us + an 8 us PCIe readback per level);
//   * the graph structure streams from memory once per level for all k
//     sources instead of once per source-level.
//
// The price is k x the per-vertex state (the footprint becomes ~(7n)k + m
// words), so the batch size trades memory for launch amortization — the
// same footprint-vs-speed axis the paper's design walks.
// bench_ablation_batching measures the trade; tests verify every batch size
// against Brandes.
//
// Implemented for the CSC layout with scalar (thread-per-column) kernels —
// the batched analogue of TurboBC-scCSC. Column-major per-vertex batch
// storage (index v * k + j) keeps one source's lanes adjacent.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/turbobc.hpp"
#include "gpusim/device.hpp"
#include "graph/edge_list.hpp"
#include "spmv/device_graph.hpp"

namespace turbobc::bc {

struct BatchedOptions {
  /// Sources processed simultaneously per pass, in [1, 32]. 1 degenerates to
  /// the paper's pipeline (modulo kernel fusion details).
  vidx_t batch_size = 8;
  /// Forward-sweep advance. kPush is the plain batched SpMM. kPull probes an
  /// ANY-LANE frontier bitmap (bit set when some lane of the batch has the
  /// vertex on its front) before touching a row's k frontier slots, skipping
  /// the k loads when every lane would contribute an exact zero — so sums
  /// and results stay bit-identical to push. There is no per-level heuristic
  /// for a batch (the k fronts disagree about direction), so kAuto behaves
  /// as kPull here.
  Advance advance = Advance::kPush;
};

class TurboBCBatched {
 public:
  TurboBCBatched(sim::Device& device, const graph::EdgeList& graph,
                 BatchedOptions options = {});

  /// Exact BC over all sources, k at a time.
  BcResult run_exact();

  /// BC over the given sources, k at a time.
  BcResult run_sources(const std::vector<vidx_t>& sources);

  /// run_sources plus on-device moment accumulation — the batched analogue
  /// of TurboBC::run_sources_moments: an "approx_moment_batched" kernel
  /// folds each batch's k dependency lanes into the same two extra n-word
  /// arrays ("approx_sum"/"approx_sumsq"), and the moments are downloaded
  /// inside the modeled clock. `weights` must be parallel to `sources`.
  BcResult run_sources_moments(const std::vector<vidx_t>& sources,
                               const std::vector<double>& weights,
                               TurboBC::MomentResult& moments);

  vidx_t num_vertices() const noexcept { return n_; }
  eidx_t num_arcs() const noexcept { return m_; }
  const BatchedOptions& options() const noexcept { return options_; }

 private:
  /// Per-batch moment sink: the whole-run accumulator arrays plus the k
  /// importance weights of this batch's lanes.
  struct BatchMoments {
    sim::DeviceBuffer<bc_t>* sum = nullptr;
    sim::DeviceBuffer<bc_t>* sumsq = nullptr;
    const double* weights = nullptr;  // k entries, parallel to the batch
  };

  /// One batch of up to batch_size sources accumulated into bc_dev.
  void run_batch(const std::vector<vidx_t>& batch,
                 sim::DeviceBuffer<bc_t>& bc_dev,
                 const BatchMoments* moments = nullptr);

  sim::Device& device_;
  BatchedOptions options_;
  vidx_t n_ = 0;
  eidx_t m_ = 0;
  bool directed_ = false;
  std::optional<spmv::DeviceCsc> csc_;
};

}  // namespace turbobc::bc
