// Batched multi-source TurboBC: the frontier as packed 64-bit masks.
//
// Algorithm 1 is a sequence of matrix-vector products; the natural
// linear-algebra extension (and the standard GraphBLAS idiom for exact BC)
// replaces the frontier vector f with an n x k matrix F holding k
// independent BFS fronts, turning every SpMV into an SpMM. This engine
// stores that boolean matrix the MS-BFS way: per vertex one 64-bit
// FRONTIER word, one VISITED word, one NEXT word (bit j = source j), so a
// single edge traversal advances every source in the block with word ops —
// see spmv/spmv_kernels.hpp and DESIGN.md §10. Three costs amortize:
//
//   * per-level kernel launches and the frontier-flag readback: ONE set per
//     level instead of one per source-level — decisive on deep graphs,
//     where the paper's own pipeline is launch-overhead-bound (road
//     networks: ~5 launches x 3.5 us + an 8 us PCIe readback per level);
//   * the graph structure streams from memory once per level for all k
//     sources instead of once per source-level;
//   * the k per-source frontier values collapse into sigma itself (a newly
//     discovered vertex had sigma == 0, so its frontier value IS its new
//     sigma): the forward state is 2nk + 6n words instead of 4nk.
//
// The backward stage keeps k interleaved dependency columns (the paper's
// float pipeline does not pack), so the footprint is ~(5n)k + 6n + m words
// and the batch size still trades memory for amortization — the same
// footprint-vs-speed axis the paper's design walks. bench_ablation_batching
// and bench_msbfs measure the trade; tests verify every batch size against
// Brandes and pin bit-identity against the per-source engine.
//
// Implemented for the CSC layout with scalar (thread-per-column) kernels —
// the batched analogue of TurboBC-scCSC. Column-major per-vertex batch
// storage (index v * k + j) keeps one source's lanes adjacent.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/autotune.hpp"
#include "core/turbobc.hpp"
#include "gpusim/device.hpp"
#include "graph/edge_list.hpp"
#include "spmv/device_graph.hpp"
#include "storage/device_ccsc.hpp"

namespace turbobc::bc {

struct BatchedOptions {
  /// Sources processed simultaneously per pass, in [1, 64] — one bit of the
  /// packed masks per source. 1 degenerates to the paper's pipeline (modulo
  /// kernel fusion details).
  vidx_t batch_size = 8;
  /// Forward-sweep advance. kPush scans every unfinished column's in-edges
  /// loading the 8-byte frontier word each. kPull probes the ANY-LANE n/32
  /// frontier bitmap (bit set when some lane has the vertex on its front)
  /// first, touching the word only on a hit — sums and results stay
  /// bit-identical to push. kAuto applies the Beamer heuristic per level to
  /// the any-lane frontier (new-vertex / new-edge counters widened onto the
  /// flag array), switching between the two kernels like the single-source
  /// engine does.
  Advance advance = Advance::kPush;
  /// Switch points for kAuto (same defaults as the single-source engine).
  DirectionThresholds thresholds = {};
  /// Keep the graph resident as a delta-varint compressed CSC and decode
  /// row ids inside the SpMM loops (storage/ccsc_kernels.hpp). Same masks,
  /// same per-column edge order, same fold arithmetic — sigma and bc stay
  /// bit-identical to the uncompressed batched engine and hence to the
  /// per-source engine. See BcOptions::compress.
  bool compress = false;
};

class TurboBCBatched {
 public:
  TurboBCBatched(sim::Device& device, const graph::EdgeList& graph,
                 BatchedOptions options = {});

  /// Exact BC over all sources, k at a time.
  BcResult run_exact();

  /// BC over the given sources, k at a time.
  BcResult run_sources(const std::vector<vidx_t>& sources);

  /// run_sources plus on-device moment accumulation — the batched analogue
  /// of TurboBC::run_sources_moments: an "approx_moment_batched" kernel
  /// folds each batch's k dependency lanes into the same two extra n-word
  /// arrays ("approx_sum"/"approx_sumsq"), and the moments are downloaded
  /// inside the modeled clock. `weights` must be parallel to `sources`.
  BcResult run_sources_moments(const std::vector<vidx_t>& sources,
                               const std::vector<double>& weights,
                               TurboBC::MomentResult& moments);

  vidx_t num_vertices() const noexcept { return n_; }
  eidx_t num_arcs() const noexcept { return m_; }
  const BatchedOptions& options() const noexcept { return options_; }

 private:
  /// Per-batch moment sink: the whole-run accumulator arrays plus the k
  /// importance weights of this batch's lanes.
  struct BatchMoments {
    sim::DeviceBuffer<bc_t>* sum = nullptr;
    sim::DeviceBuffer<bc_t>* sumsq = nullptr;
    const double* weights = nullptr;  // k entries, parallel to the batch
  };

  /// One batch of up to batch_size sources accumulated into bc_dev.
  void run_batch(const std::vector<vidx_t>& batch,
                 sim::DeviceBuffer<bc_t>& bc_dev,
                 const BatchMoments* moments = nullptr);

  sim::Device& device_;
  BatchedOptions options_;
  vidx_t n_ = 0;
  eidx_t m_ = 0;
  bool directed_ = false;
  std::optional<spmv::DeviceCsc> csc_;
  std::optional<storage::DeviceCompressedCsc> ccsc_;
};

}  // namespace turbobc::bc
