// Empirical variant auto-tuning.
//
// The paper's variant selection is ultimately empirical: "for all the
// results presented in this section, we chose the TurboBC algorithm which
// showed the best performance for each graph". This module packages that
// methodology as an API (and addresses the paper's future-work direction of
// better SpMV selection): probe each variant with one single-source run on
// a scratch device and return the fastest. The heuristic
// bc::select_variant() is the zero-cost alternative; autotune_variant() is
// the ground truth it approximates.
#pragma once

#include "core/variant.hpp"
#include "gpusim/device_props.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::bc {

struct AutotuneResult {
  Variant best = Variant::kScCsc;
  /// Modeled single-source seconds per variant, indexed by
  /// static_cast<int>(Variant).
  double seconds[3] = {0.0, 0.0, 0.0};
};

/// Run one BC source with each of the three variants on scratch devices and
/// return the fastest. `probe_source` should be a well-connected vertex
/// (bench::representative_source provides one).
AutotuneResult autotune_variant(
    const graph::EdgeList& graph, vidx_t probe_source,
    const sim::DeviceProps& props = sim::DeviceProps::titan_xp());

}  // namespace turbobc::bc
