// Empirical variant auto-tuning.
//
// The paper's variant selection is ultimately empirical: "for all the
// results presented in this section, we chose the TurboBC algorithm which
// showed the best performance for each graph". This module packages that
// methodology as an API (and addresses the paper's future-work direction of
// better SpMV selection): probe each variant with one single-source run on
// a scratch device and return the fastest. The heuristic
// bc::select_variant() is the zero-cost alternative; autotune_variant() is
// the ground truth it approximates.
#pragma once

#include "core/variant.hpp"
#include "gpusim/device_props.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::bc {

/// Beamer-style direction-switch thresholds for the kAuto advance mode.
/// The per-level decision uses modeled edge/vertex counts the update kernel
/// accumulates on-device (see core/turbobc.cpp):
///   mf — in-edges of the new frontier, mu — in-edges of still-unvisited
///   vertices, nf — new-frontier vertex count.
/// Push switches to pull when the frontier's edge work approaches the
/// unvisited side's (mf * alpha > mu); pull returns to push when the
/// frontier thins out (nf * beta < n). Defaults are Beamer's published
/// alpha = 14, beta = 24, which hold up on the modeled device too.
struct DirectionThresholds {
  double alpha = 14.0;
  double beta = 24.0;
};

inline bool switch_to_pull(std::uint64_t mf, std::uint64_t mu,
                           const DirectionThresholds& t) {
  return static_cast<double>(mf) * t.alpha > static_cast<double>(mu);
}

inline bool switch_to_push(std::uint64_t nf, std::uint64_t n,
                           const DirectionThresholds& t) {
  return static_cast<double>(nf) * t.beta < static_cast<double>(n);
}

struct AutotuneResult {
  Variant best = Variant::kScCsc;
  /// Modeled single-source seconds per variant, indexed by
  /// static_cast<int>(Variant).
  double seconds[3] = {0.0, 0.0, 0.0};
};

/// Run one BC source with each of the three variants on scratch devices and
/// return the fastest. `probe_source` should be a well-connected vertex
/// (bench::representative_source provides one).
AutotuneResult autotune_variant(
    const graph::EdgeList& graph, vidx_t probe_source,
    const sim::DeviceProps& props = sim::DeviceProps::titan_xp());

}  // namespace turbobc::bc
