// TurboBFS: standalone linear-algebraic breadth-first search.
//
// The forward stage of TurboBC is itself a published contribution (Artiles &
// Saeed, "TurboBFS: GPU Based Breadth-First Search (BFS) Algorithms in the
// Language of Linear Algebra", IPDPSW 2021 — the paper's reference [1]).
// This class exposes it as a public API: per level, f_t <- A^T f through the
// selected SpMV variant, masked by the undiscovered set, accumulating
// per-vertex depths and shortest-path counts. Useful on its own for
// reachability, level structure, and path counting — and it is what the
// sigma/S columns of the BC pipeline are made of.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/autotune.hpp"
#include "core/variant.hpp"
#include "gpusim/device.hpp"
#include "graph/edge_list.hpp"
#include "spmv/device_graph.hpp"
#include "storage/device_ccsc.hpp"

namespace turbobc::bc {

struct TurboBfsResult {
  /// depth[v]: hops from the source, -1 when unreachable.
  std::vector<vidx_t> depth;
  /// sigma[v]: number of shortest paths from the source (0 when unreachable,
  /// 1 for the source itself).
  std::vector<sigma_t> sigma;
  vidx_t height = 0;   // BFS tree height
  vidx_t reached = 0;  // vertices discovered, including the source
  double device_seconds = 0.0;
  std::size_t peak_device_bytes = 0;
};

class TurboBfs {
 public:
  /// `advance` selects the forward-sweep engine; kPull / kAuto need CSC, so
  /// kScCooc is demoted to kVeCsc exactly as in TurboBC. Depths, sigmas, and
  /// heights are bit-identical across modes (the pull fold skips exact
  /// zeros only) — the qa oracle enforces this.
  /// `compress` keeps the graph resident as a delta-varint compressed CSC
  /// and decodes rows inside the gather loops; the sequential decode demotes
  /// any variant to kScCsc (see BcOptions::compress). Depths / sigmas are
  /// bit-identical to the uncompressed run.
  TurboBfs(sim::Device& device, const graph::EdgeList& graph,
           Variant variant = Variant::kScCsc,
           Advance advance = Advance::kPush,
           DirectionThresholds thresholds = {}, bool compress = false);

  TurboBfsResult run(vidx_t source);

  vidx_t num_vertices() const noexcept { return n_; }
  eidx_t num_arcs() const noexcept { return m_; }

 private:
  sim::Device& device_;
  Variant variant_;
  Advance advance_;
  DirectionThresholds thresholds_;
  vidx_t n_ = 0;
  eidx_t m_ = 0;
  std::optional<spmv::DeviceCsc> csc_;
  std::optional<spmv::DeviceCooc> cooc_;
  std::optional<storage::DeviceCompressedCsc> ccsc_;
};

}  // namespace turbobc::bc
