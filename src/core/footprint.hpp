// Device-memory footprint model (paper Figure 4).
//
// The paper bounds GPU memory demand by the total size of the resident
// arrays, in 4-byte words:
//   gunrock BC:  9n + 2m   (CSR and CSC both resident, plus the push-pull
//                           bookkeeping arrays: labels, preds, sigmas,
//                           deltas, bc, and frontier queues)
//   TurboBC:     7n + m    (one sparse format, S, sigma, bc, and the
//                           dependency-stage triple delta/delta_u/delta_ut —
//                           f and f_t are freed before those are allocated)
// These closed forms drive the Figure 3 / Figure 5a reproductions and the
// Table 4 OOM analysis; the simulator's MemoryManager independently tracks
// the bytes actually allocated, so model and measurement can be compared.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace turbobc::bc {

inline constexpr std::uint64_t kPaperWordBytes = 4;

/// TurboBC resident words during the dependency stage (the peak).
inline std::uint64_t turbobc_model_words(vidx_t n, eidx_t m) {
  return 7ull * static_cast<std::uint64_t>(n) + static_cast<std::uint64_t>(m);
}

/// TurboBC resident words with the direction-optimizing forward sweep
/// enabled (--advance pull|auto): the push inventory plus the n/32-word
/// dense frontier bitmap. Still strictly below gunrock's 9n + 2m for every
/// non-empty graph — the whole point of pulling over the SAME CSC instead
/// of keeping a second (CSR) structure resident the way gunrock does.
inline std::uint64_t turbobc_dobfs_model_words(vidx_t n, eidx_t m) {
  return turbobc_model_words(n, m) +
         (static_cast<std::uint64_t>(n) + 31) / 32;
}

inline std::uint64_t turbobc_dobfs_model_bytes(vidx_t n, eidx_t m) {
  return turbobc_dobfs_model_words(n, m) * kPaperWordBytes;
}

/// MS-BFS batched-engine resident words for a k-source block (k <= 64).
/// Forward stage: S + sigma (2nk) + the three packed mask arrays F/V/Fn —
/// one 8-byte word per vertex each, i.e. 2 paper words, 6n total — plus the
/// per-lane flag word(s) and source list. Backward stage: S + sigma + the
/// dependency triple (5nk). The peak is whichever stage is larger:
///   graph(m + n) + bc(n) + max(2nk + 6n, 5nk) words (+ small O(k) terms)
/// For k = 1 the packed forward (8n) exceeds the scalar engine's 7n + m
/// forward term by n — the masks don't amortize a singleton batch — but
/// from k >= 2 on the backward triple dominates and the MS-BFS sweep is
/// memory-free relative to the old 4nk frontier matrices: 2nk + 6n < 4nk
/// for every k >= 4, and the old engine's peak is matched or beaten at
/// every batch size while the sweep runs ~k sources per edge word-op.
inline std::uint64_t turbobc_msbfs_model_words(vidx_t n, eidx_t m, vidx_t k) {
  const auto nn = static_cast<std::uint64_t>(n);
  const auto kk = static_cast<std::uint64_t>(k);
  const std::uint64_t forward = 2 * nn * kk + 6 * nn;
  const std::uint64_t backward = 5 * nn * kk;
  return static_cast<std::uint64_t>(m) + nn + nn +  // graph + bc
         (forward > backward ? forward : backward);
}

inline std::uint64_t turbobc_msbfs_model_bytes(vidx_t n, eidx_t m, vidx_t k) {
  return turbobc_msbfs_model_words(n, m, k) * kPaperWordBytes;
}

/// Out-of-core (compressed) resident bytes: the 7n working vectors — and the
/// n/32-word frontier bitmap when the direction-optimizing sweep is on —
/// plus the delta-varint compressed graph structure
/// (storage::CompressedCsc::model_bytes(): two (n+1)-word offset arrays and
/// the varint stream). The graph term replaces the CSC's (n+1) + m words;
/// at ~1-2 bytes per arc the compressed stream undercuts the m-word row
/// array by 2-4x, which is what moves the Table-4-style OOM wall.
inline std::uint64_t turbobc_ooc_model_bytes(
    vidx_t n, std::uint64_t compressed_graph_bytes, bool dobfs = false) {
  std::uint64_t words = 7ull * static_cast<std::uint64_t>(n);
  if (dobfs) words += (static_cast<std::uint64_t>(n) + 31) / 32;
  return words * kPaperWordBytes + compressed_graph_bytes;
}

/// gunrock-style resident words — the paper's Figure 4 lower bound.
inline std::uint64_t gunrock_model_words(vidx_t n, eidx_t m) {
  return 9ull * static_cast<std::uint64_t>(n) +
         2ull * static_cast<std::uint64_t>(m);
}

/// gunrock's *runtime* footprint: the lower bound plus the load-balanced
/// advance's edge-frontier scratch (~m words). The paper's own Figure 5a
/// shows gunrock's measured usage running up to 60% above TurboBC's, well
/// over the 9n + 2m floor — and it is this scratch that pushes gunrock past
/// the 12196 MB device on every Table 4 graph even where 9n + 2m would fit
/// (it-2004: 9n + 2m = 10.7 GB, but + m = 15.3 GB).
inline std::uint64_t gunrock_runtime_words(vidx_t n, eidx_t m) {
  return gunrock_model_words(n, m) + static_cast<std::uint64_t>(m);
}

inline std::uint64_t turbobc_model_bytes(vidx_t n, eidx_t m) {
  return turbobc_model_words(n, m) * kPaperWordBytes;
}

inline std::uint64_t gunrock_model_bytes(vidx_t n, eidx_t m) {
  return gunrock_model_words(n, m) * kPaperWordBytes;
}

/// Would a BC run fit in `capacity_bytes` of device memory, under each
/// model? Used by the Table 4 bench to print the paper-scale analysis next
/// to the simulated-allocation outcome.
inline bool turbobc_fits(vidx_t n, eidx_t m, std::uint64_t capacity_bytes) {
  return turbobc_model_bytes(n, m) <= capacity_bytes;
}

inline bool gunrock_fits(vidx_t n, eidx_t m, std::uint64_t capacity_bytes) {
  return gunrock_runtime_words(n, m) * kPaperWordBytes <= capacity_bytes;
}

}  // namespace turbobc::bc
