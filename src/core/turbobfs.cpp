#include "core/turbobfs.hpp"

#include "common/error.hpp"
#include "gpusim/kernel.hpp"
#include "spmv/spmv_kernels.hpp"
#include "storage/ccsc_kernels.hpp"

namespace turbobc::bc {

TurboBfs::TurboBfs(sim::Device& device, const graph::EdgeList& graph,
                   Variant variant, Advance advance,
                   DirectionThresholds thresholds, bool compress)
    : device_(device),
      variant_(variant),
      advance_(advance),
      thresholds_(thresholds) {
  // Pull folds CSC columns — same kScCooc-to-veCSC demotion as TurboBC
  // (warp-per-column stays balanced on the in-degree skew COOC was picked
  // for; same CSC byte inventory).
  if (advance_ != Advance::kPush && variant_ == Variant::kScCooc) {
    variant_ = Variant::kVeCsc;
  }
  // The varint decode is sequential per column: compressed runs demote to
  // the thread-per-column scCSC layout (see BcOptions::compress).
  if (compress) variant_ = Variant::kScCsc;
  graph::EdgeList canon = graph;
  canon.canonicalize();
  n_ = canon.num_vertices();
  m_ = canon.num_arcs();
  TBC_CHECK(n_ > 0, "TurboBFS needs a non-empty graph");
  if (compress) {
    ccsc_.emplace(device_,
                  storage::encode_csc(graph::CscGraph::from_edges(canon)));
  } else if (variant_ == Variant::kScCooc) {
    cooc_.emplace(device_, graph::CoocGraph::from_edges(canon));
  } else {
    csc_.emplace(device_, graph::CscGraph::from_edges(canon));
  }
}

TurboBfsResult TurboBfs::run(vidx_t source) {
  TBC_CHECK(source >= 0 && source < n_, "BFS source vertex out of range");
  sim::Device& dev = device_;
  dev.memory().reset_peak();
  const double start =
      dev.kernel_seconds() + dev.transfer_seconds() + dev.overhead_seconds();
  const auto n = static_cast<std::size_t>(n_);

  sim::DeviceBuffer<std::int32_t> S(dev, n, "S");
  sim::DeviceBuffer<sigma_t> sigma(dev, n, "sigma", 4);
  sim::DeviceBuffer<sigma_t> f(dev, n, "f", 4);
  sim::DeviceBuffer<sigma_t> ft(dev, n, "f_t", 4);
  const bool dob = advance_ != Advance::kPush;
  sim::DeviceBuffer<std::int32_t> cflag(dev, dob ? 3 : 1, "c");
  std::optional<sim::DeviceBuffer<std::uint32_t>> bitmap;
  if (dob) {
    bitmap.emplace(dev,
                   static_cast<std::size_t>(spmv::frontier_bitmap_words(n_)),
                   "frontier_bitmap");
  }
  sigma.set_modeled_integer(true);
  f.set_modeled_integer(true);
  ft.set_modeled_integer(true);
  S.device_fill(0);
  sigma.device_fill(0);
  f.device_fill(0);

  sim::launch_scalar(dev, "bfs_init", 1, [&](sim::ThreadCtx& t) {
    f.store(t, static_cast<std::size_t>(source), 1);
    sigma.store(t, static_cast<std::size_t>(source), 1);
  });

  // Direction-switch state — same model as TurboBC::run_source_on.
  std::uint64_t nf = 1, mf = 0;
  std::uint64_t mu = static_cast<std::uint64_t>(m_);
  if (dob) {
    const auto& cp = ccsc_ ? ccsc_->col_ptr().host() : csc_->col_ptr().host();
    mf = static_cast<std::uint64_t>(cp[static_cast<std::size_t>(source) + 1] -
                                    cp[static_cast<std::size_t>(source)]);
    mu -= mf;
  }
  bool pulling = false;

  vidx_t d = 0;
  while (true) {
    ++d;
    if (dob) {
      if (advance_ == Advance::kPull) {
        pulling = true;
      } else if (pulling) {
        pulling =
            !switch_to_push(nf, static_cast<std::uint64_t>(n_), thresholds_);
      } else {
        pulling = switch_to_pull(mf, mu, thresholds_);
      }
    }
    ft.device_fill(0);
    if (pulling) {
      spmv::frontier_to_bitmap(dev, f, n_, *bitmap);
      if (ccsc_) {
        storage::spmv_forward_pull_ccsc(dev, *ccsc_, f, *bitmap, ft, sigma);
      } else if (variant_ == Variant::kVeCsc) {
        spmv::spmv_forward_pull_vecsc(dev, *csc_, f, *bitmap, ft, sigma);
      } else {
        spmv::spmv_forward_pull_sccsc(dev, *csc_, f, *bitmap, ft, sigma);
      }
    } else if (ccsc_) {
      storage::spmv_forward_push_ccsc(dev, *ccsc_, f, ft, sigma);
    } else {
      switch (variant_) {
        case Variant::kScCooc:
          spmv::spmv_forward_sccooc(dev, *cooc_, f, ft);
          break;
        case Variant::kScCsc:
          spmv::spmv_forward_sccsc(dev, *csc_, f, ft, sigma);
          break;
        case Variant::kVeCsc:
          spmv::spmv_forward_vecsc(dev, *csc_, f, ft, sigma);
          break;
      }
    }
    cflag.device_fill(0);
    const bool mask_in_update = variant_ == Variant::kScCooc;
    sim::launch_scalar(dev, "bfs_update", static_cast<std::uint64_t>(n_),
                       [&](sim::ThreadCtx& t) {
                         const auto i = static_cast<std::size_t>(t.global_id());
                         sigma_t v = ft.load(t, i);
                         t.count_ops(1);
                         if (mask_in_update && v != 0 &&
                             sigma.load(t, i) != 0) {
                           v = 0;
                         }
                         f.store(t, i, v);
                         if (v != 0) {
                           S.store(t, i, d);
                           sigma.store(t, i, sigma.load(t, i) + v);
                           cflag.store(t, 0, 1);
                           if (dob) {
                             const auto& cp = ccsc_ ? ccsc_->col_ptr()
                                                    : csc_->col_ptr();
                             cflag.atomic_add(t, 1, 1);
                             cflag.atomic_add(
                                 t, 2,
                                 static_cast<std::int32_t>(
                                     cp.load(t, i + 1) - cp.load(t, i)));
                           }
                         }
                       });
    const auto c_host = cflag.copy_to_host();
    if (c_host[0] == 0) break;
    if (dob) {
      nf = static_cast<std::uint64_t>(c_host[1]);
      mf = static_cast<std::uint64_t>(c_host[2]);
      mu -= mf;
    }
  }

  TurboBfsResult r;
  r.height = d - 1;
  r.device_seconds = dev.kernel_seconds() + dev.transfer_seconds() +
                     dev.overhead_seconds() - start;
  r.peak_device_bytes = dev.memory().peak_bytes();
  r.sigma = sigma.copy_to_host();
  r.depth.assign(n, kInvalidVertex);
  r.depth[static_cast<std::size_t>(source)] = 0;
  r.reached = 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<vidx_t>(i) != source && r.sigma[i] != 0) {
      r.depth[i] = S.host()[i];
      ++r.reached;
    }
  }
  return r;
}

}  // namespace turbobc::bc
