#include "core/turbobc.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/kernel.hpp"
#include "spmv/spmv_kernels.hpp"
#include "storage/ccsc_kernels.hpp"

namespace turbobc::bc {

namespace {

/// Sum of every modeled time component the BC computation pays while
/// running (kernels, per-level flag readbacks, alloc/free overheads).
double device_clock(const sim::Device& d) {
  return d.kernel_seconds() + d.transfer_seconds() + d.overhead_seconds();
}

/// Upper bound on source-fan-out blocks. Enough blocks that the dynamic
/// task queue load-balances well past any realistic core count, few enough
/// that at most pool-width replica devices (graph clone + bc partial each)
/// are ever live at once without excessive cloning overhead.
constexpr std::size_t kMaxSourceBlocks = 64;

}  // namespace

TurboBC::TurboBC(sim::Device& device, const graph::EdgeList& graph,
                 BcOptions options)
    : device_(device), options_(options) {
  // The pull sweep folds CSC columns; COOC carries no column pointers, and
  // only one sparse format may stay resident (paper Section 3.4). A
  // direction-optimizing run therefore demotes kScCooc to a CSC layout —
  // never larger for the same arcs (4(n+1) + 4m vs 8m words when m >= n+1).
  // The target is veCSC, not scCSC: COOC is selected for extreme in-degree
  // skew, exactly the shape where a thread-per-column scan serializes its
  // warp on the hub column; the warp-per-column kernel stays balanced.
  if (options_.advance != Advance::kPush &&
      options_.variant == Variant::kScCooc) {
    options_.variant = Variant::kVeCsc;
  }
  // Compressed storage decodes each column's varint chain sequentially —
  // a warp cannot stride the byte stream — so any variant demotes to the
  // thread-per-column scCSC layout (the same precedent as the COOC
  // demotion above).
  if (options_.compress) {
    TBC_CHECK(!options_.edge_bc,
              "compressed storage does not support edge BC (the edge "
              "accumulator indexes arcs by raw nonzero position)");
    options_.variant = Variant::kScCsc;
  }
  graph::EdgeList canon = graph;
  canon.canonicalize();
  n_ = canon.num_vertices();
  m_ = canon.num_arcs();
  directed_ = canon.directed();
  TBC_CHECK(n_ > 0, "TurboBC needs a non-empty graph");

  // Exactly one sparse format resides on the device (paper Section 3.4).
  if (options_.compress) {
    ccsc_.emplace(device_,
                  storage::encode_csc(graph::CscGraph::from_edges(canon)));
  } else if (options_.variant == Variant::kScCooc) {
    cooc_.emplace(device_, graph::CoocGraph::from_edges(canon));
  } else {
    csc_.emplace(device_, graph::CscGraph::from_edges(canon));
  }

  if (options_.edge_bc) {
    // Both device formats store nonzeros in column-major order; replay the
    // column fill over the canonical (row-major) arc list to build the
    // nonzero -> canonical-arc permutation used when results are returned.
    std::vector<eidx_t> cursor(static_cast<std::size_t>(n_) + 1, 0);
    for (const graph::Edge& e : canon.edges()) {
      ++cursor[static_cast<std::size_t>(e.v) + 1];
    }
    for (std::size_t v = 0; v < static_cast<std::size_t>(n_); ++v) {
      cursor[v + 1] += cursor[v];
    }
    nz_to_canonical_.resize(canon.edges().size());
    for (std::size_t j = 0; j < canon.edges().size(); ++j) {
      const auto v = static_cast<std::size_t>(canon.edges()[j].v);
      nz_to_canonical_[static_cast<std::size_t>(cursor[v]++)] =
          static_cast<eidx_t>(j);
    }
  }
}

std::size_t TurboBC::graph_device_bytes() const noexcept {
  if (ccsc_) return ccsc_->device_bytes();
  if (cooc_) {
    return (cooc_->row_idx().bytes() + cooc_->col_idx().bytes());
  }
  return csc_ ? csc_->col_ptr().bytes() + csc_->row_idx().bytes() : 0;
}

SourceStats TurboBC::run_source_on(sim::Device& dev,
                                   const spmv::DeviceCsc* csc,
                                   const spmv::DeviceCooc* cooc,
                                   const storage::DeviceCompressedCsc* ccsc,
                                   vidx_t source,
                                   sim::DeviceBuffer<bc_t>& bc_dev,
                                   sim::DeviceBuffer<bc_t>* ebc_dev,
                                   const MomentSink* moments) const {
  using T = sigma_t;  // double: path counts overflow any integer width
  TBC_CHECK(source >= 0 && source < n_, "BC source vertex out of range");
  const auto n = static_cast<std::size_t>(n_);
  const bool dob = options_.advance != Advance::kPush;

  // All per-vertex device arrays are modeled at the paper's 4-byte width
  // (int32 S/f/f_t, float32 sigma/delta/bc — Figure 4); host-side values
  // stay double for exact verification.
  sim::DeviceBuffer<std::int32_t> S(dev, n, "S");
  sim::DeviceBuffer<T> sigma(dev, n, "sigma", 4);
  // Paper Section 3.4: the BFS stage runs on integer-typed device arrays
  // unless the datatype ablation asks for float costing.
  sigma.set_modeled_integer(!options_.float_bfs);
  S.device_fill(0);
  sigma.device_fill(0);

  vidx_t height = 0;
  // Per-level forward direction decisions, kept for the backward stage:
  // pulled_level[d] records whether depth d was DISCOVERED in pull mode.
  // delta_u at backward level d is nonzero exactly on the depth-d frontier,
  // so a level sparse enough to pull forward is sparse enough to pull the
  // dependency gather too — the switch state is computed once and reused.
  std::vector<char> pulled_level;
  {
    // Forward (BFS) stage. f and f_t live only inside this scope: the
    // closing brace is the paper's cudaFree that makes room for the
    // dependency-stage triple.
    sim::DeviceBuffer<T> f(dev, n, "f", 4);
    sim::DeviceBuffer<T> ft(dev, n, "f_t", 4);
    f.set_modeled_integer(!options_.float_bfs);
    ft.set_modeled_integer(!options_.float_bfs);
    // Push mode: the paper's 1-element frontier flag. Direction-optimizing
    // mode widens it to three int32 counters — [0] flag, [1] nf (new-frontier
    // vertices), [2] mf (their in-edges) — accumulated with exact integer
    // atomics, so the switch inputs are deterministic at any pool width and
    // the per-level readback stays one small copy.
    sim::DeviceBuffer<std::int32_t> cflag(dev, dob ? 3 : 1, "c");
    std::optional<sim::DeviceBuffer<std::uint32_t>> bitmap;
    if (dob) {
      bitmap.emplace(
          dev, static_cast<std::size_t>(spmv::frontier_bitmap_words(n_)),
          "frontier_bitmap");
    }
    f.device_fill(0);

    sim::launch_scalar(dev, "bfs_init", 1, [&](sim::ThreadCtx& t) {
      f.store(t, static_cast<std::size_t>(source), T{1});
      sigma.store(t, static_cast<std::size_t>(source), T{1});
    });

    // Direction-switch state (kAuto). The frontier about to be advanced
    // starts as {source}: nf = 1, mf = its in-degree; mu tracks in-edges of
    // the still-undiscovered side. The host mirror of col_ptr is free to
    // read — only the per-level counters ride the modeled readback.
    std::uint64_t nf = 1, mf = 0;
    std::uint64_t mu = static_cast<std::uint64_t>(m_);
    if (dob) {
      const auto& cp = ccsc ? ccsc->col_ptr().host() : csc->col_ptr().host();
      mf = static_cast<std::uint64_t>(
          cp[static_cast<std::size_t>(source) + 1] -
          cp[static_cast<std::size_t>(source)]);
      mu -= mf;
    }
    bool pulling = false;

    vidx_t d = 0;
    while (true) {
      ++d;
      if (dob) {
        if (options_.advance == Advance::kPull) {
          pulling = true;
        } else if (pulling) {
          pulling = !switch_to_push(nf, static_cast<std::uint64_t>(n_),
                                    options_.thresholds);
        } else {
          pulling = switch_to_pull(mf, mu, options_.thresholds);
        }
        pulled_level.push_back(pulling ? 1 : 0);  // decision for depth d
      }
      ft.device_fill(T{0});
      if (pulling) {
        spmv::frontier_to_bitmap(dev, f, n_, *bitmap);
        if (ccsc != nullptr) {
          storage::spmv_forward_pull_ccsc(dev, *ccsc, f, *bitmap, ft, sigma);
        } else if (options_.variant == Variant::kVeCsc) {
          spmv::spmv_forward_pull_vecsc(dev, *csc, f, *bitmap, ft, sigma);
        } else {
          spmv::spmv_forward_pull_sccsc(dev, *csc, f, *bitmap, ft, sigma);
        }
      } else if (ccsc != nullptr) {
        storage::spmv_forward_push_ccsc(dev, *ccsc, f, ft, sigma);
      } else {
        switch (options_.variant) {
          case Variant::kScCooc:
            spmv::spmv_forward_sccooc(dev, *cooc, f, ft);
            break;
          case Variant::kScCsc:
            spmv::spmv_forward_sccsc(dev, *csc, f, ft, sigma);
            break;
          case Variant::kVeCsc:
            spmv::spmv_forward_vecsc(dev, *csc, f, ft, sigma);
            break;
        }
      }
      cflag.device_fill(0);
      // The CSC kernels fuse the sigma mask into the SpMV (Algorithm 3); the
      // COOC pipeline applies it here instead (Algorithm 1 lines 20-22).
      const bool mask_in_update = options_.variant == Variant::kScCooc;
      sim::launch_scalar(dev, "bfs_update", static_cast<std::uint64_t>(n_),
                         [&](sim::ThreadCtx& t) {
                           const auto i = static_cast<std::size_t>(t.global_id());
                           T v = ft.load(t, i);
                           t.count_ops(1);
                           if (mask_in_update && v != 0 &&
                               sigma.load(t, i) != 0) {
                             v = 0;
                           }
                           f.store(t, i, v);
                           if (v != 0) {
                             S.store(t, i, d);
                             sigma.store(t, i,
                                         static_cast<T>(sigma.load(t, i) + v));
                             cflag.store(t, 0, 1);
                             if (dob) {
                               const auto& cp = ccsc != nullptr
                                                    ? ccsc->col_ptr()
                                                    : csc->col_ptr();
                               cflag.atomic_add(t, 1, 1);
                               cflag.atomic_add(
                                   t, 2,
                                   static_cast<std::int32_t>(
                                       cp.load(t, i + 1) - cp.load(t, i)));
                             }
                           }
                         });
      // Host reads the frontier flag each level (one 4-byte cudaMemcpy; 12
      // bytes in direction-optimizing mode, which also carries nf / mf).
      const auto c_host = cflag.copy_to_host();
      if (c_host[0] == 0) break;
      if (dob) {
        nf = static_cast<std::uint64_t>(c_host[1]);
        mf = static_cast<std::uint64_t>(c_host[2]);
        mu -= mf;
      }
    }
    height = d - 1;
  }

  // Backward (dependency) stage: float vectors in the bytes just freed.
  sim::DeviceBuffer<bc_t> delta(dev, n, "delta", 4);
  sim::DeviceBuffer<bc_t> delta_u(dev, n, "delta_u", 4);
  sim::DeviceBuffer<bc_t> delta_ut(dev, n, "delta_ut", 4);
  delta.device_fill(0.0);
  // Pulled dependency gather: under --advance pull|auto the undirected
  // backward sweep reuses the forward sweep's per-level switch decisions.
  // delta_u at level d is nonzero exactly on the depth-d frontier, so a
  // level the forward sweep pulled is worth pulling here too — rebuild the
  // n/32 bitmap from delta_u and probe it per edge instead of loading the
  // 4-byte operand. Skipped terms are exact zeros and delta_u >= 0, so the
  // gathered sums are bit-identical to the unmasked kernels. The directed
  // scatter already skips zero columns at the source end; it needs no map.
  std::optional<sim::DeviceBuffer<std::uint32_t>> bbitmap;
  if (dob && !directed_) {
    bbitmap.emplace(dev,
                    static_cast<std::size_t>(spmv::frontier_bitmap_words(n_)),
                    "frontier_bitmap");
  }

  // Per-level building blocks; edge accumulation also runs at d = 1 (the
  // vertex recursion stops at d = 2, but depth-0 -> depth-1 arcs carry
  // dependency too).
  const auto dep_prepare = [&](vidx_t d) {
    sim::launch_scalar(dev, "dep_prepare", static_cast<std::uint64_t>(n_),
                       [&](sim::ThreadCtx& t) {
                         const auto i = static_cast<std::size_t>(t.global_id());
                         bc_t out = 0.0;
                         if (S.load(t, i) == d) {
                           const T sg = sigma.load(t, i);
                           if (sg > 0) {
                             out = (1.0 + delta.load(t, i)) /
                                   static_cast<bc_t>(sg);
                           }
                         }
                         delta_u.store(t, i, out);
                         t.count_ops(1);
                       });
  };

  const auto edge_accum = [&](vidx_t d) {
      // Edge-BC extension: the Brandes arc term sigma(i)/sigma(w)(1+delta(w))
      // equals sigma(i) * delta_u(w); arcs i -> w from depth d-1 into depth d
      // accumulate it. One thread per column (CSC) / per nonzero (COOC);
      // each arc is touched by exactly one thread, so plain read-modify-
      // write suffices.
      const bc_t escale = directed_ ? 1.0 : 0.5;
      if (cooc != nullptr) {
        sim::launch_scalar(
            dev, "edge_bc_accum", static_cast<std::uint64_t>(m_),
            [&](sim::ThreadCtx& t) {
              const auto k = static_cast<std::size_t>(t.global_id());
              const vidx_t w = cooc->col_idx().load(t, k);
              if (S.load(t, static_cast<std::size_t>(w)) != d) return;
              const vidx_t i = cooc->row_idx().load(t, k);
              if (S.load(t, static_cast<std::size_t>(i)) != d - 1) return;
              const bc_t du = delta_u.load(t, static_cast<std::size_t>(w));
              if (du == 0.0) return;
              const T sg = sigma.load(t, static_cast<std::size_t>(i));
              ebc_dev->store(t, k,
                             ebc_dev->load(t, k) +
                                 du * static_cast<bc_t>(sg) * escale);
              t.count_ops(1);
            });
      } else {
        sim::launch_scalar(
            dev, "edge_bc_accum", static_cast<std::uint64_t>(n_),
            [&](sim::ThreadCtx& t) {
              const auto w = static_cast<std::size_t>(t.global_id());
              if (S.load(t, w) != d) return;
              const bc_t du = delta_u.load(t, w);
              if (du == 0.0) return;
              const spmv::dptr_t begin = csc->col_ptr().load(t, w);
              const spmv::dptr_t end = csc->col_ptr().load(t, w + 1);
              for (spmv::dptr_t k = begin; k < end; ++k) {
                const vidx_t i =
                    csc->row_idx().load(t, static_cast<std::size_t>(k));
                t.count_ops(1);
                if (S.load(t, static_cast<std::size_t>(i)) == d - 1) {
                  const T sg = sigma.load(t, static_cast<std::size_t>(i));
                  const auto kk = static_cast<std::size_t>(k);
                  ebc_dev->store(t, kk,
                                 ebc_dev->load(t, kk) +
                                     du * static_cast<bc_t>(sg) * escale);
                }
              }
            });
      }
  };

  for (vidx_t d = height; d >= 2; --d) {
    dep_prepare(d);
    delta_ut.device_fill(0.0);
    const bool pull_dep = bbitmap.has_value() &&
                          static_cast<std::size_t>(d) <= pulled_level.size() &&
                          pulled_level[static_cast<std::size_t>(d) - 1] != 0;
    if (pull_dep) {
      spmv::frontier_to_bitmap(dev, delta_u, n_, *bbitmap);
      if (ccsc != nullptr) {
        storage::spmv_backward_pull_ccsc(dev, *ccsc, delta_u, *bbitmap,
                                         delta_ut);
      } else if (options_.variant == Variant::kVeCsc) {
        spmv::spmv_backward_pull_vecsc(dev, *csc, delta_u, *bbitmap, delta_ut);
      } else {
        spmv::spmv_backward_pull_sccsc(dev, *csc, delta_u, *bbitmap, delta_ut);
      }
    } else if (!directed_) {
      if (ccsc != nullptr) {
        storage::spmv_backward_gather_ccsc(dev, *ccsc, delta_u, delta_ut);
      } else {
        switch (options_.variant) {
          case Variant::kScCooc:
            spmv::spmv_backward_gather_sccooc(dev, *cooc, delta_u, delta_ut);
            break;
          case Variant::kScCsc:
            spmv::spmv_backward_gather_sccsc(dev, *csc, delta_u, delta_ut);
            break;
          case Variant::kVeCsc:
            spmv::spmv_backward_gather_vecsc(dev, *csc, delta_u, delta_ut);
            break;
        }
      }
    } else {
      if (ccsc != nullptr) {
        storage::spmv_backward_scatter_ccsc(dev, *ccsc, delta_u, delta_ut);
      } else {
        switch (options_.variant) {
          case Variant::kScCooc:
            spmv::spmv_backward_scatter_sccooc(dev, *cooc, delta_u, delta_ut);
            break;
          case Variant::kScCsc:
            spmv::spmv_backward_scatter_sccsc(dev, *csc, delta_u, delta_ut);
            break;
          case Variant::kVeCsc:
            spmv::spmv_backward_scatter_vecsc(dev, *csc, delta_u, delta_ut);
            break;
        }
      }
    }

    if (ebc_dev != nullptr) edge_accum(d);

    sim::launch_scalar(dev, "dep_update", static_cast<std::uint64_t>(n_),
                       [&](sim::ThreadCtx& t) {
                         const auto i = static_cast<std::size_t>(t.global_id());
                         if (S.load(t, i) == d - 1) {
                           const bc_t du = delta_ut.load(t, i);
                           if (du != 0.0) {
                             const T sg = sigma.load(t, i);
                             delta.store(t, i,
                                         delta.load(t, i) +
                                             du * static_cast<bc_t>(sg));
                           }
                         }
                         t.count_ops(1);
                       });
  }


  if (ebc_dev != nullptr && height >= 1) {
    dep_prepare(1);
    edge_accum(1);
  }

  // Accumulate into bc (Eq. 3); undirected graphs halve (Brandes).
  const bc_t scale = directed_ ? 1.0 : 0.5;
  sim::launch_scalar(dev, "bc_accum", static_cast<std::uint64_t>(n_),
                     [&](sim::ThreadCtx& t) {
                       const auto i = static_cast<std::size_t>(t.global_id());
                       if (static_cast<vidx_t>(i) == source) return;
                       const bc_t dl = delta.load(t, i);
                       if (dl != 0.0) {
                         bc_dev.store(t, i, bc_dev.load(t, i) + dl * scale);
                       }
                       t.count_ops(1);
                     });

  // Approx-estimator moment fold: the per-source weighted dependency sample
  // x = w_s * delta(v) * scale and its square, accumulated into the two
  // extra per-device float arrays. One thread per vertex; the source's own
  // lane is skipped, matching the bc accumulation above.
  if (moments != nullptr) {
    const double weight = moments->weight;
    sim::DeviceBuffer<bc_t>& msum = *moments->sum;
    sim::DeviceBuffer<bc_t>& msumsq = *moments->sumsq;
    sim::launch_scalar(dev, "approx_moment", static_cast<std::uint64_t>(n_),
                       [&](sim::ThreadCtx& t) {
                         const auto i = static_cast<std::size_t>(t.global_id());
                         if (static_cast<vidx_t>(i) == source) return;
                         const bc_t dl = delta.load(t, i);
                         t.count_ops(2);
                         if (dl != 0.0) {
                           const bc_t x = dl * scale * weight;
                           msum.store(t, i, msum.load(t, i) + x);
                           msumsq.store(t, i, msumsq.load(t, i) + x * x);
                         }
                       });
  }

  SourceStats stats;
  stats.bfs_depth = height;
  vidx_t reached = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sigma.host()[i] != 0) ++reached;
  }
  stats.reached = reached;
  return stats;
}

TurboBC::BlockPlan TurboBC::block_plan(std::size_t count) {
  BlockPlan plan;
  plan.num_blocks = std::min(count, kMaxSourceBlocks);
  plan.block_len =
      plan.num_blocks > 0 ? (count + plan.num_blocks - 1) / plan.num_blocks
                          : 0;
  return plan;
}

std::vector<bc_t> TurboBC::fold_source_blocks(
    const std::vector<const std::vector<bc_t>*>& contributions,
    std::size_t n) {
  std::vector<bc_t> bc(n, 0.0);
  const std::size_t count = contributions.size();
  if (count == 0) return bc;
  const BlockPlan plan = block_plan(count);
  std::vector<bc_t> partial(n);
  for (std::size_t b = 0; b < plan.num_blocks; ++b) {
    std::fill(partial.begin(), partial.end(), 0.0);
    for (std::size_t i = plan.begin(b); i < plan.end(b, count); ++i) {
      const std::vector<bc_t>& c = *contributions[i];
      for (std::size_t v = 0; v < n; ++v) partial[v] += c[v];
    }
    for (std::size_t v = 0; v < n; ++v) bc[v] += partial[v];
  }
  return bc;
}

TurboBC::BlockPartial TurboBC::run_source_block(
    const sim::DeviceProps& props, const std::vector<vidx_t>& sources,
    std::size_t begin, std::size_t end, const std::vector<double>* weights,
    bool with_moments) const {
  BlockPartial out;
  out.dev = std::make_unique<sim::Device>(props);
  sim::Device& rdev = *out.dev;
  rdev.set_keep_launch_records(device_.keep_launch_records());

  std::optional<spmv::DeviceCsc> rcsc;
  std::optional<spmv::DeviceCooc> rcooc;
  std::optional<storage::DeviceCompressedCsc> rccsc;
  if (ccsc_) {
    rccsc.emplace(rdev, *ccsc_);
  } else if (cooc_) {
    rcooc.emplace(rdev, *cooc_);
  } else {
    rcsc.emplace(rdev, *csc_);
  }
  sim::DeviceBuffer<bc_t> rbc(rdev, static_cast<std::size_t>(n_), "bc", 4);
  rbc.device_fill(0.0);
  std::optional<sim::DeviceBuffer<bc_t>> rebc;
  if (options_.edge_bc) {
    rebc.emplace(rdev, static_cast<std::size_t>(m_), "edge_bc", 4);
    rebc->device_fill(0.0);
  }
  std::optional<sim::DeviceBuffer<bc_t>> rsum, rsumsq;
  if (with_moments) {
    rsum.emplace(rdev, static_cast<std::size_t>(n_), "approx_sum", 4);
    rsumsq.emplace(rdev, static_cast<std::size_t>(n_), "approx_sumsq", 4);
    rsum->device_fill(0.0);
    rsumsq->device_fill(0.0);
  }
  // The main device already paid for the graph upload (at construction) and
  // the bc alloc/fill (run_sources_impl); drop the replica's duplicate setup
  // charges so the block timeline holds only per-source work. The peak keeps
  // the full replica footprint (graph + bc + per-source arrays), matching
  // serial accounting.
  rdev.reset_timeline();
  rdev.memory().reset_peak();

  for (std::size_t i = begin; i < end; ++i) {
    MomentSink sink{rsum ? &*rsum : nullptr, rsumsq ? &*rsumsq : nullptr,
                    weights != nullptr ? (*weights)[i] : 1.0};
    out.last = run_source_on(rdev, rcsc ? &*rcsc : nullptr,
                             rcooc ? &*rcooc : nullptr,
                             rccsc ? &*rccsc : nullptr, sources[i], rbc,
                             rebc ? &*rebc : nullptr,
                             with_moments ? &sink : nullptr);
  }
  out.bc = rbc.host();
  if (rebc) out.ebc = rebc->host();
  if (rsum) out.sum = rsum->host();
  if (rsumsq) out.sumsq = rsumsq->host();
  out.peak_bytes = rdev.memory().peak_bytes();
  return out;
}

BcResult TurboBC::run_sources(const std::vector<vidx_t>& sources) {
  return run_sources_impl(sources, nullptr, nullptr);
}

BcResult TurboBC::run_sources_moments(const std::vector<vidx_t>& sources,
                                      const std::vector<double>& weights,
                                      MomentResult& moments) {
  TBC_CHECK(weights.size() == sources.size(),
            "run_sources_moments needs one weight per source");
  TBC_CHECK(!options_.edge_bc,
            "moment accumulation is not supported together with edge BC");
  return run_sources_impl(sources, &weights, &moments);
}

BcResult TurboBC::run_sources_impl(const std::vector<vidx_t>& sources,
                                   const std::vector<double>* weights,
                                   MomentResult* moments) {
  device_.memory().reset_peak();
  const double start = device_clock(device_);

  sim::DeviceBuffer<bc_t> bc_dev(device_, static_cast<std::size_t>(n_), "bc",
                                 4);
  bc_dev.device_fill(0.0);
  std::optional<sim::DeviceBuffer<bc_t>> ebc_dev;
  if (options_.edge_bc) {
    ebc_dev.emplace(device_, static_cast<std::size_t>(m_), "edge_bc", 4);
    ebc_dev->device_fill(0.0);
  }
  // Moment arrays live for the whole call on the main device (merge target);
  // replicas carry their own pair, so the wave footprint is 9n + m words on
  // every device.
  std::optional<sim::DeviceBuffer<bc_t>> msum, msumsq;
  if (moments != nullptr) {
    msum.emplace(device_, static_cast<std::size_t>(n_), "approx_sum", 4);
    msumsq.emplace(device_, static_cast<std::size_t>(n_), "approx_sumsq", 4);
    msum->device_fill(0.0);
    msumsq->device_fill(0.0);
  }

  BcResult result;
  if (sources.size() <= 1) {
    // Single source: run directly on the main device so callers inspecting
    // its launch records see the per-source kernel stream in place.
    for (std::size_t i = 0; i < sources.size(); ++i) {
      MomentSink sink{msum ? &*msum : nullptr, msumsq ? &*msumsq : nullptr,
                      weights != nullptr ? (*weights)[i] : 1.0};
      result.last_source =
          run_source_on(device_, csc_ ? &*csc_ : nullptr,
                        cooc_ ? &*cooc_ : nullptr, ccsc_ ? &*ccsc_ : nullptr,
                        sources[i], bc_dev, ebc_dev ? &*ebc_dev : nullptr,
                        moments != nullptr ? &sink : nullptr);
    }
  } else {
    // Parallel source fan-out. Sources are split into contiguous blocks —
    // the block structure depends only on the source count, never on the
    // pool width — and each block runs on a FRESH replica device: the
    // replica's bump allocator and L2 start identically for every block, so
    // each block's modeled numbers are a pure function of its sources.
    // Block partials are merged on the main device in block order, making
    // every float fold (bc values, modeled seconds) a fixed-order reduction.
    // Width 1 executes the same blocks in the same order inline, so any
    // --threads N reproduces --threads 1 bit-for-bit.
    const std::size_t count = sources.size();
    const BlockPlan plan = block_plan(count);
    std::vector<BlockPartial> blocks(plan.num_blocks);

    sim::ExecutorPool::instance().for_tasks(
        plan.num_blocks, [&](std::size_t b, unsigned) {
          blocks[b] =
              run_source_block(device_.props(), sources, plan.begin(b),
                               plan.end(b, count), weights,
                               moments != nullptr);
        });

    // Deterministic merge: block order, left fold.
    for (BlockPartial& blk : blocks) {
      device_.absorb_timeline(*blk.dev);
      device_.memory().note_peak(blk.peak_bytes);
      auto& bc_host = bc_dev.host();
      for (std::size_t i = 0; i < bc_host.size(); ++i) {
        bc_host[i] += blk.bc[i];
      }
      if (ebc_dev) {
        auto& ebc_host = ebc_dev->host();
        for (std::size_t i = 0; i < ebc_host.size(); ++i) {
          ebc_host[i] += blk.ebc[i];
        }
      }
      if (msum) {
        auto& sum_host = msum->host();
        auto& sumsq_host = msumsq->host();
        for (std::size_t i = 0; i < sum_host.size(); ++i) {
          sum_host[i] += blk.sum[i];
          sumsq_host[i] += blk.sumsq[i];
        }
      }
    }
    result.last_source = blocks.back().last;
  }
  // The adaptive driver reads the moments between waves to evaluate its
  // stopping rule, so their download is part of the modeled wave time —
  // unlike the final bc download below, which models reading results back
  // after the experiment.
  if (moments != nullptr) {
    moments->sum = msum->copy_to_host();
    moments->sumsq = msumsq->copy_to_host();
  }
  result.sources = static_cast<vidx_t>(sources.size());
  result.device_seconds = device_clock(device_) - start;
  result.peak_device_bytes = device_.memory().peak_bytes();
  result.bc = bc_dev.copy_to_host();  // result download, outside the clock
  if (ebc_dev) {
    // Download and permute from device nonzero order to canonical arc order.
    const auto raw = ebc_dev->copy_to_host();
    result.edge_bc.assign(raw.size(), 0.0);
    for (std::size_t nz = 0; nz < raw.size(); ++nz) {
      result.edge_bc[static_cast<std::size_t>(nz_to_canonical_[nz])] = raw[nz];
    }
  }
  return result;
}

BcResult TurboBC::run_approximate(const ApproxOptions& options) {
  TBC_CHECK(options.num_sources > 0, "need at least one sampled source");
  const vidx_t k = std::min(options.num_sources, n_);
  Xoshiro256 rng(options.seed);
  std::vector<char> chosen(static_cast<std::size_t>(n_), 0);
  std::vector<vidx_t> sources;
  sources.reserve(static_cast<std::size_t>(k));
  while (static_cast<vidx_t>(sources.size()) < k) {
    const auto v =
        static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(n_)));
    if (!chosen[static_cast<std::size_t>(v)]) {
      chosen[static_cast<std::size_t>(v)] = 1;
      sources.push_back(v);
    }
  }
  BcResult result = run_sources(sources);
  const bc_t scale = static_cast<bc_t>(n_) / static_cast<bc_t>(k);
  for (bc_t& v : result.bc) v *= scale;
  for (bc_t& v : result.edge_bc) v *= scale;
  return result;
}

BcResult TurboBC::run_single_source(vidx_t source) {
  return run_sources({source});
}

BcResult TurboBC::run_exact() {
  std::vector<vidx_t> sources(static_cast<std::size_t>(n_));
  for (vidx_t v = 0; v < n_; ++v) sources[static_cast<std::size_t>(v)] = v;
  return run_sources(sources);
}

}  // namespace turbobc::bc
