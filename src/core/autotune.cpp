#include "core/autotune.hpp"

#include "core/turbobc.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"

namespace turbobc::bc {

AutotuneResult autotune_variant(const graph::EdgeList& graph,
                                vidx_t probe_source,
                                const sim::DeviceProps& props) {
  AutotuneResult result;
  constexpr Variant kVariants[] = {Variant::kScCooc, Variant::kScCsc,
                                   Variant::kVeCsc};

  // The three probes are independent scratch-device runs, so they fan out
  // as tasks on the shared ExecutorPool (one pool for the whole process —
  // probes never spawn their own threads). Inside a pool job nested
  // launches run inline, so each probe is the plain serial pipeline and its
  // modeled seconds are the same whether probes run concurrently or not.
  sim::ExecutorPool::instance().for_tasks(3, [&](std::size_t i, unsigned) {
    const Variant v = kVariants[i];
    sim::Device device(props);
    device.set_keep_launch_records(false);
    TurboBC turbo(device, graph, {.variant = v});
    result.seconds[static_cast<int>(v)] =
        turbo.run_single_source(probe_source).device_seconds;
  });

  // Pick the winner in fixed variant order (ties resolve identically no
  // matter which probe finished first).
  double best = -1.0;
  for (const Variant v : kVariants) {
    const double t = result.seconds[static_cast<int>(v)];
    if (best < 0.0 || t < best) {
      best = t;
      result.best = v;
    }
  }
  return result;
}

}  // namespace turbobc::bc
