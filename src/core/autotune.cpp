#include "core/autotune.hpp"

#include "core/turbobc.hpp"
#include "gpusim/device.hpp"

namespace turbobc::bc {

AutotuneResult autotune_variant(const graph::EdgeList& graph,
                                vidx_t probe_source,
                                const sim::DeviceProps& props) {
  AutotuneResult result;
  double best = -1.0;
  for (const Variant v :
       {Variant::kScCooc, Variant::kScCsc, Variant::kVeCsc}) {
    sim::Device device(props);
    device.set_keep_launch_records(false);
    TurboBC turbo(device, graph, {.variant = v});
    const double t = turbo.run_single_source(probe_source).device_seconds;
    result.seconds[static_cast<int>(v)] = t;
    if (best < 0.0 || t < best) {
      best = t;
      result.best = v;
    }
  }
  return result;
}

}  // namespace turbobc::bc
