#include "graph/stats.hpp"

#include <algorithm>
#include <cmath>

namespace turbobc::graph {

namespace {

DegreeStats stats_of(const std::vector<eidx_t>& deg) {
  DegreeStats s;
  if (deg.empty()) return s;
  double sum = 0.0;
  double sumsq = 0.0;
  for (const eidx_t d : deg) {
    s.max = std::max(s.max, d);
    const auto dd = static_cast<double>(d);
    sum += dd;
    sumsq += dd * dd;
  }
  const auto n = static_cast<double>(deg.size());
  s.mean = sum / n;
  const double var = std::max(0.0, sumsq / n - s.mean * s.mean);
  s.stddev = std::sqrt(var);
  return s;
}

}  // namespace

DegreeStats degree_stats(const EdgeList& el) {
  return stats_of(el.out_degrees());
}

DegreeStats in_degree_stats(const EdgeList& el) {
  return stats_of(el.in_degrees());
}

double scf_raw(const EdgeList& el) {
  const auto deg = el.out_degrees();
  double s = 0.0;
  for (const Edge& e : el.edges()) {
    s += static_cast<double>(deg[e.u]) * static_cast<double>(deg[e.v]);
  }
  return s;
}

double scf_index(const EdgeList& el) {
  if (el.num_arcs() == 0) return 0.0;
  const auto deg = el.out_degrees();
  double second_moment = 0.0;
  for (const eidx_t d : deg) {
    second_moment += static_cast<double>(d) * static_cast<double>(d);
  }
  if (second_moment <= 0.0) return 0.0;
  return scf_raw(el) / second_moment;
}

bool is_irregular(const EdgeList& el) {
  return scf_index(el) > kIrregularScfThreshold;
}

}  // namespace turbobc::graph
