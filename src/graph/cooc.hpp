// COOC sparse format: the transpose-ordered coordinate format of the paper.
//
// Two parallel arrays of length m: row_idx (the paper's row_A, arc sources)
// and col_idx (the paper's col_A, arc destinations), sorted by (column, row)
// — i.e. the same nonzero order as the CSC expansion, which is what "the
// transpose of the COO format" means. The scCOOC SpMV (Algorithm 2) assigns
// one GPU thread per nonzero.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::graph {

class CoocGraph {
 public:
  CoocGraph() = default;

  static CoocGraph from_edges(const EdgeList& el);

  vidx_t num_vertices() const noexcept { return n_; }
  eidx_t num_arcs() const noexcept {
    return static_cast<eidx_t>(row_idx_.size());
  }
  bool directed() const noexcept { return directed_; }

  const std::vector<vidx_t>& row_idx() const noexcept { return row_idx_; }
  const std::vector<vidx_t>& col_idx() const noexcept { return col_idx_; }

  /// Device-resident bytes: two m-element index arrays.
  std::size_t storage_bytes() const noexcept {
    return (row_idx_.size() + col_idx_.size()) * sizeof(vidx_t);
  }

 private:
  vidx_t n_ = 0;
  bool directed_ = true;
  std::vector<vidx_t> row_idx_;
  std::vector<vidx_t> col_idx_;
};

}  // namespace turbobc::graph
