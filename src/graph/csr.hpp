// Compressed Sparse Row adjacency: out-neighbour lists.
//
// The row-major dual of CscGraph: row_ptr (size n+1) delimits, for each
// vertex u, the range of its out-neighbours in col_idx (size m). TurboBC
// itself never stores CSR (its memory story is one column-format per run),
// but every traversal baseline needs out-adjacency — Brandes, the ligra-like
// frontier framework, and the gunrock-like push advance all build it, so it
// lives here once.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::graph {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Out-adjacency of the edge list (need not be canonical).
  static CsrGraph from_edges(const EdgeList& el);

  /// In-adjacency (the transpose), same layout.
  static CsrGraph from_edges_transposed(const EdgeList& el);

  vidx_t num_vertices() const noexcept { return n_; }
  eidx_t num_arcs() const noexcept {
    return static_cast<eidx_t>(col_idx_.size());
  }
  bool directed() const noexcept { return directed_; }

  const std::vector<eidx_t>& row_ptr() const noexcept { return row_ptr_; }
  const std::vector<vidx_t>& col_idx() const noexcept { return col_idx_; }

  std::pair<eidx_t, eidx_t> row_range(vidx_t u) const {
    return {row_ptr_[u], row_ptr_[u + 1]};
  }

  eidx_t out_degree(vidx_t u) const { return row_ptr_[u + 1] - row_ptr_[u]; }

 private:
  static CsrGraph build(const EdgeList& canon, bool transposed);

  vidx_t n_ = 0;
  bool directed_ = true;
  std::vector<eidx_t> row_ptr_;
  std::vector<vidx_t> col_idx_;
};

}  // namespace turbobc::graph
