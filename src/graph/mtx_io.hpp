// Matrix Market IO.
//
// The paper's benchmark graphs come from the SuiteSparse Matrix Collection
// and SNAP, distributed as Matrix Market (.mtx) files. This reader accepts
// the subset that occurs there for adjacency matrices:
//   %%MatrixMarket matrix coordinate {pattern|real|integer} {general|symmetric}
// Weights are discarded ("the weighted graphs were considered unweighted
// graphs for all the experiments"), symmetric storage is expanded to both
// arcs, 1-based indices become 0-based, and self-loops/duplicates are left
// to EdgeList::canonicalize().
#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.hpp"

namespace turbobc::graph {

/// Parse a Matrix Market stream into an EdgeList. Malformed input of any
/// kind — unsupported headers, non-square or negative/overflowing
/// dimensions, truncated or out-of-range entries — throws turbobc::ParseError
/// (derived from InvalidArgument) carrying the offending 1-based line number.
EdgeList read_matrix_market(std::istream& in);

/// Convenience file wrapper; throws on unreadable paths.
EdgeList read_matrix_market_file(const std::string& path);

/// Write an EdgeList as 1-based "coordinate pattern general" (directed) or
/// "coordinate pattern symmetric" (undirected; lower-triangular entries).
void write_matrix_market(std::ostream& out, const EdgeList& el);

void write_matrix_market_file(const std::string& path, const EdgeList& el);

}  // namespace turbobc::graph
