#include "graph/components.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "graph/csr.hpp"

namespace turbobc::graph {

vidx_t Components::largest() const {
  TBC_CHECK(count > 0, "no components in an empty graph");
  return static_cast<vidx_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

Components weakly_connected_components(const EdgeList& graph) {
  const vidx_t n = graph.num_vertices();
  Components c;
  c.component.assign(static_cast<std::size_t>(n), kInvalidVertex);

  // Symmetrized adjacency for weak connectivity.
  EdgeList undirected = graph;
  undirected.symmetrize();
  const CsrGraph adj = CsrGraph::from_edges(undirected);

  for (vidx_t start = 0; start < n; ++start) {
    if (c.component[static_cast<std::size_t>(start)] != kInvalidVertex) {
      continue;
    }
    const vidx_t id = c.count++;
    c.sizes.push_back(0);
    std::queue<vidx_t> q;
    c.component[static_cast<std::size_t>(start)] = id;
    q.push(start);
    while (!q.empty()) {
      const vidx_t v = q.front();
      q.pop();
      ++c.sizes[static_cast<std::size_t>(id)];
      const auto [b, e] = adj.row_range(v);
      for (eidx_t k = b; k < e; ++k) {
        const vidx_t w = adj.col_idx()[static_cast<std::size_t>(k)];
        if (c.component[static_cast<std::size_t>(w)] == kInvalidVertex) {
          c.component[static_cast<std::size_t>(w)] = id;
          q.push(w);
        }
      }
    }
  }
  return c;
}

const Components& ComponentCache::get(const EdgeList& graph) {
  if (!cached_.has_value()) {
    cached_.emplace(weakly_connected_components(graph));
    ++recomputes_;
  }
  return *cached_;
}

EdgeList extract_component(const EdgeList& graph, const Components& comps,
                           vidx_t component_id,
                           std::vector<vidx_t>* mapping) {
  TBC_CHECK(component_id >= 0 && component_id < comps.count,
            "component id out of range");
  const vidx_t n = graph.num_vertices();
  std::vector<vidx_t> map(static_cast<std::size_t>(n), kInvalidVertex);
  vidx_t next = 0;
  for (vidx_t v = 0; v < n; ++v) {
    if (comps.component[static_cast<std::size_t>(v)] == component_id) {
      map[static_cast<std::size_t>(v)] = next++;
    }
  }

  EdgeList sub(next, graph.directed());
  for (const Edge& e : graph.edges()) {
    const vidx_t u = map[static_cast<std::size_t>(e.u)];
    const vidx_t v = map[static_cast<std::size_t>(e.v)];
    if (u != kInvalidVertex && v != kInvalidVertex) sub.add_edge(u, v);
  }
  sub.canonicalize();
  if (mapping != nullptr) *mapping = std::move(map);
  return sub;
}

}  // namespace turbobc::graph
