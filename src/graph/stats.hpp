// Structural graph statistics: the parameter columns of the paper's tables
// (degree max/mean/std, BFS depth d) and the scale-free metric scf used to
// classify graphs as regular or irregular (Section 3.1).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::graph {

struct DegreeStats {
  eidx_t max = 0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Out-degree statistics (the paper uses out-degree for directed graphs).
DegreeStats degree_stats(const EdgeList& el);

/// In-degree statistics. The CSC-based kernels parallelize over columns, so
/// their load balance is governed by in-degree: the column-skew test in
/// bc::select_variant must look at these, not at the out-degree stats (on
/// undirected graphs the two coincide — both arcs are present).
DegreeStats in_degree_stats(const EdgeList& el);

/// Raw scale-free metric of Li et al. (the paper's Eq. 5):
///   s(G) = sum over arcs (u,v) of degree(u) * degree(v)
/// with degree = out-degree for directed graphs. Returned as double: on
/// hub-heavy graphs the sum overflows 64-bit integers.
double scf_raw(const EdgeList& el);

/// Normalized scale-free index reported in our tables:
///   scf = s(G) / sum_u degree(u)^2
/// i.e. Eq. 5 normalized by the second degree moment. This reproduces the
/// paper's (unspecified) normalization remarkably well on its own families:
/// star-like traces (mawi) and paths/roads score ~2 (the paper reports 2),
/// lattices score ~mean degree (paper: 10-13), while hub-assortative graphs
/// (mycielski, kronecker) score in the thousands (paper: 5846-651837).
/// Thresholds are calibrated on the same graph families
/// (bench_ablation_scf prints the measured values per family).
double scf_index(const EdgeList& el);

/// Classification used by turbobc::bc::select_variant. Graphs whose scf
/// index exceeds this are treated as irregular (use veCSC). The index grows
/// with graph size for hub-assortative families (the paper's full-size
/// irregular graphs score 5846-651837; its regular ones <= 224); at this
/// repo's scaled benchmark sizes the measured boundary sits between ~21
/// (regular families) and ~46 (mycielski/kronecker) — see
/// bench_ablation_scf for the measured values.
inline constexpr double kIrregularScfThreshold = 30.0;

bool is_irregular(const EdgeList& el);

}  // namespace turbobc::graph
