// Reference sequential BFS used for the `d` (BFS tree depth) columns of the
// paper's tables and as the golden check for the simulated BFS stage.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/csc.hpp"

namespace turbobc::graph {

struct BfsResult {
  /// depth[v] = shortest hop count from the source; -1 if unreachable.
  std::vector<vidx_t> depth;
  /// Height of the BFS tree (max finite depth).
  vidx_t height = 0;
  /// Number of vertices reachable from the source (including it).
  vidx_t reached = 0;
};

/// BFS along arcs u -> v. `g` is the CSC of the adjacency matrix (column v
/// holds in-neighbours), so traversal expands a frontier by scanning, for
/// every v, whether some in-neighbour is in the frontier — functionally the
/// same f_t = A^T f product the paper's Algorithm 1 performs. A conventional
/// queue implementation over the reversed structure gives identical depths;
/// this one exists to be *obviously* aligned with the linear-algebra
/// formulation it validates.
BfsResult bfs_reference(const CscGraph& g, vidx_t source);

}  // namespace turbobc::graph
