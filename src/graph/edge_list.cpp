#include "graph/edge_list.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace turbobc::graph {

EdgeList::EdgeList(vidx_t n, bool directed) : n_(n), directed_(directed) {
  TBC_CHECK(n >= 0, "vertex count must be non-negative");
}

void EdgeList::add_edge(vidx_t u, vidx_t v) {
  TBC_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_,
            "edge endpoint out of range");
  edges_.push_back(Edge{u, v});
}

bool EdgeList::has_edge(vidx_t u, vidx_t v) const {
  return std::find(edges_.begin(), edges_.end(), Edge{u, v}) != edges_.end();
}

std::size_t EdgeList::remove_edge(vidx_t u, vidx_t v) {
  TBC_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_,
            "edge endpoint out of range");
  const std::size_t before = edges_.size();
  std::erase(edges_, Edge{u, v});
  return before - edges_.size();
}

void EdgeList::canonicalize() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  std::erase_if(edges_, [](const Edge& e) { return e.u == e.v; });
}

void EdgeList::symmetrize() {
  const std::size_t original = edges_.size();
  edges_.reserve(original * 2);
  for (std::size_t i = 0; i < original; ++i) {
    edges_.push_back(Edge{edges_[i].v, edges_[i].u});
  }
  canonicalize();
  directed_ = false;
}

std::vector<eidx_t> EdgeList::out_degrees() const {
  std::vector<eidx_t> deg(static_cast<std::size_t>(n_), 0);
  for (const Edge& e : edges_) ++deg[e.u];
  return deg;
}

std::vector<eidx_t> EdgeList::in_degrees() const {
  std::vector<eidx_t> deg(static_cast<std::size_t>(n_), 0);
  for (const Edge& e : edges_) ++deg[e.v];
  return deg;
}

EdgeList EdgeList::reversed() const {
  EdgeList rev(n_, directed_);
  rev.edges_.reserve(edges_.size());
  for (const Edge& e : edges_) rev.edges_.push_back(Edge{e.v, e.u});
  return rev;
}

}  // namespace turbobc::graph
