#include "graph/bfs_probe.hpp"

#include "common/error.hpp"

namespace turbobc::graph {

BfsResult bfs_reference(const CscGraph& g, vidx_t source) {
  const vidx_t n = g.num_vertices();
  TBC_CHECK(source >= 0 && source < n, "BFS source out of range");

  BfsResult r;
  r.depth.assign(static_cast<std::size_t>(n), kInvalidVertex);
  r.depth[source] = 0;
  r.reached = 1;

  // Level-synchronous sweep: a vertex v joins level d+1 when it is still
  // undiscovered and has an in-neighbour at level <= d in the frontier set.
  std::vector<char> in_frontier(static_cast<std::size_t>(n), 0);
  in_frontier[source] = 1;
  bool any = true;
  vidx_t d = 0;
  while (any) {
    any = false;
    std::vector<char> next(static_cast<std::size_t>(n), 0);
    for (vidx_t v = 0; v < n; ++v) {
      if (r.depth[v] != kInvalidVertex) continue;
      const auto [begin, end] = g.column_range(v);
      for (eidx_t k = begin; k < end; ++k) {
        if (in_frontier[g.row_idx()[static_cast<std::size_t>(k)]]) {
          next[v] = 1;
          break;
        }
      }
    }
    ++d;
    for (vidx_t v = 0; v < n; ++v) {
      if (next[v]) {
        r.depth[v] = d;
        ++r.reached;
        any = true;
      }
    }
    in_frontier = std::move(next);
  }
  r.height = d - 1;
  return r;
}

}  // namespace turbobc::graph
