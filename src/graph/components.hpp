// Connected components.
//
// BC treats disconnected graphs correctly by definition (unreachable pairs
// contribute nothing), but pipelines around it want component structure: a
// representative source per component, the giant component's share, or a
// pruned graph. Weak connectivity (edge direction ignored) is the relevant
// notion for source selection.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::graph {

struct Components {
  /// component[v] in [0, count); components are numbered by discovery order
  /// from vertex 0 upward.
  std::vector<vidx_t> component;
  vidx_t count = 0;
  /// Vertices per component.
  std::vector<vidx_t> sizes;

  /// Id of the largest component (lowest id wins ties).
  vidx_t largest() const;
};

/// Weakly connected components (direction ignored), by BFS.
Components weakly_connected_components(const EdgeList& graph);

/// The subgraph induced by one component, with vertices renumbered densely
/// in ascending original order. `mapping` (optional out) receives
/// old-vertex -> new-vertex (kInvalidVertex for dropped vertices).
EdgeList extract_component(const EdgeList& graph, const Components& comps,
                           vidx_t component_id,
                           std::vector<vidx_t>* mapping = nullptr);

}  // namespace turbobc::graph
