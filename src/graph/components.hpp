// Connected components.
//
// BC treats disconnected graphs correctly by definition (unreachable pairs
// contribute nothing), but pipelines around it want component structure: a
// representative source per component, the giant component's share, or a
// pruned graph. Weak connectivity (edge direction ignored) is the relevant
// notion for source selection.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::graph {

struct Components {
  /// component[v] in [0, count); components are numbered by discovery order
  /// from vertex 0 upward.
  std::vector<vidx_t> component;
  vidx_t count = 0;
  /// Vertices per component.
  std::vector<vidx_t> sizes;

  /// Id of the largest component (lowest id wins ties).
  vidx_t largest() const;
};

/// Weakly connected components (direction ignored), by BFS.
Components weakly_connected_components(const EdgeList& graph);

/// The subgraph induced by one component, with vertices renumbered densely
/// in ascending original order. `mapping` (optional out) receives
/// old-vertex -> new-vertex (kInvalidVertex for dropped vertices).
EdgeList extract_component(const EdgeList& graph, const Components& comps,
                           vidx_t component_id,
                           std::vector<vidx_t>* mapping = nullptr);

/// Memoized component map for callers that sample the same graph repeatedly
/// (the approx driver's ApproxOptions::components contract). get() runs the
/// label sweep once and returns the cached map on every later call; a caller
/// that MUTATES its graph must call invalidate() before the next get(), or
/// the stale map silently mis-stratifies the component sampler (component
/// ids, counts and sizes all go wrong the moment an edge update merges or
/// splits a component). The serving engine (src/serve/) invalidates on every
/// edge update; recomputes() exposes the sweep count so tests can pin both
/// the memoization and the invalidation.
class ComponentCache {
 public:
  /// The component map of `graph`: cached copy if valid, else a fresh
  /// weakly_connected_components sweep (cached for later calls). The
  /// reference stays stable until the next invalidate().
  const Components& get(const EdgeList& graph);

  /// Drop the cached map. MUST be called between mutating the graph and the
  /// next get().
  void invalidate() noexcept { cached_.reset(); }

  bool valid() const noexcept { return cached_.has_value(); }

  /// Number of label sweeps run so far (cache misses).
  std::size_t recomputes() const noexcept { return recomputes_; }

 private:
  std::optional<Components> cached_;
  std::size_t recomputes_ = 0;
};

}  // namespace turbobc::graph
