#include "graph/csc.hpp"

#include <algorithm>

namespace turbobc::graph {

CscGraph CscGraph::from_edges(const EdgeList& el) {
  EdgeList canon = el;
  canon.canonicalize();

  CscGraph g;
  g.n_ = canon.num_vertices();
  g.directed_ = canon.directed();
  const auto n = static_cast<std::size_t>(g.n_);
  const auto& edges = canon.edges();

  g.col_ptr_.assign(n + 1, 0);
  for (const Edge& e : edges) ++g.col_ptr_[static_cast<std::size_t>(e.v) + 1];
  for (std::size_t v = 0; v < n; ++v) g.col_ptr_[v + 1] += g.col_ptr_[v];

  g.row_idx_.resize(edges.size());
  std::vector<eidx_t> cursor(g.col_ptr_.begin(), g.col_ptr_.end() - 1);
  for (const Edge& e : edges) {
    g.row_idx_[static_cast<std::size_t>(cursor[e.v]++)] = e.u;
  }
  // Rows within each column ascend because the canonical edge order is
  // (u, v) and the counting fill preserves it per column.
  return g;
}

}  // namespace turbobc::graph
