// Compressed Sparse Column adjacency matrix (the paper's CSC format).
//
// For an n x n binary adjacency matrix A with A(u,v) = 1 iff arc u -> v:
//   * col_ptr (the paper's CP_A, size n+1) gives, for each column v, the
//     range [col_ptr[v], col_ptr[v+1]) in row_idx;
//   * row_idx (the paper's row_A, size m) stores the row indices u of the
//     nonzeros of column v — i.e. the in-neighbours of v.
//
// Indices are 0-based (the paper's pseudocode is 1-based; IO converts).
// Matching the paper's memory-footprint optimization, no value array exists:
// the matrix is binary by construction (unweighted graphs).
//
// The forward SpMV f_t = A^T f of Algorithm 1 is a per-column gather over
// this structure: f_t(v) = sum of f(u) over u in column v.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::graph {

class CscGraph {
 public:
  CscGraph() = default;

  /// Build from an edge list (need not be canonical; duplicates and
  /// self-loops are dropped).
  static CscGraph from_edges(const EdgeList& el);

  vidx_t num_vertices() const noexcept { return n_; }
  eidx_t num_arcs() const noexcept {
    return static_cast<eidx_t>(row_idx_.size());
  }
  bool directed() const noexcept { return directed_; }

  const std::vector<eidx_t>& col_ptr() const noexcept { return col_ptr_; }
  const std::vector<vidx_t>& row_idx() const noexcept { return row_idx_; }

  /// In-neighbours of v (the nonzero rows of column v).
  std::pair<eidx_t, eidx_t> column_range(vidx_t v) const {
    return {col_ptr_[v], col_ptr_[v + 1]};
  }

  eidx_t in_degree(vidx_t v) const { return col_ptr_[v + 1] - col_ptr_[v]; }

  /// Device-resident bytes for this structure: (n+1) column pointers plus m
  /// row indices. With 32-bit row indices and 64-bit pointers this is what
  /// the TurboBC host transfers to the GPU.
  std::size_t storage_bytes() const noexcept {
    return col_ptr_.size() * sizeof(eidx_t) + row_idx_.size() * sizeof(vidx_t);
  }

 private:
  vidx_t n_ = 0;
  bool directed_ = true;
  std::vector<eidx_t> col_ptr_;
  std::vector<vidx_t> row_idx_;
};

}  // namespace turbobc::graph
