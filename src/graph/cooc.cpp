#include "graph/cooc.hpp"

#include <algorithm>

namespace turbobc::graph {

CoocGraph CoocGraph::from_edges(const EdgeList& el) {
  EdgeList canon = el;
  canon.canonicalize();

  CoocGraph g;
  g.n_ = canon.num_vertices();
  g.directed_ = canon.directed();

  std::vector<Edge> edges = canon.edges();
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.v != b.v ? a.v < b.v : a.u < b.u;
  });

  g.row_idx_.reserve(edges.size());
  g.col_idx_.reserve(edges.size());
  for (const Edge& e : edges) {
    g.row_idx_.push_back(e.u);
    g.col_idx_.push_back(e.v);
  }
  return g;
}

}  // namespace turbobc::graph
