#include "graph/csr.hpp"

namespace turbobc::graph {

CsrGraph CsrGraph::build(const EdgeList& canon, bool transposed) {
  CsrGraph g;
  g.n_ = canon.num_vertices();
  g.directed_ = canon.directed();
  const auto n = static_cast<std::size_t>(g.n_);
  const auto& edges = canon.edges();

  g.row_ptr_.assign(n + 1, 0);
  for (const Edge& e : edges) {
    ++g.row_ptr_[static_cast<std::size_t>(transposed ? e.v : e.u) + 1];
  }
  for (std::size_t u = 0; u < n; ++u) g.row_ptr_[u + 1] += g.row_ptr_[u];

  g.col_idx_.resize(edges.size());
  std::vector<eidx_t> cursor(g.row_ptr_.begin(), g.row_ptr_.end() - 1);
  for (const Edge& e : edges) {
    const auto key = static_cast<std::size_t>(transposed ? e.v : e.u);
    g.col_idx_[static_cast<std::size_t>(cursor[key]++)] =
        transposed ? e.u : e.v;
  }
  return g;
}

CsrGraph CsrGraph::from_edges(const EdgeList& el) {
  EdgeList canon = el;
  canon.canonicalize();
  return build(canon, /*transposed=*/false);
}

CsrGraph CsrGraph::from_edges_transposed(const EdgeList& el) {
  EdgeList canon = el;
  canon.canonicalize();
  return build(canon, /*transposed=*/true);
}

}  // namespace turbobc::graph
