// Vertex reordering for memory locality.
//
// The simulated device charges real coalescing costs, so vertex ordering is
// measurable: the scalar CSC kernels gather x(row_A(k)) — when a column's
// in-neighbours have nearby ids, those gathers hit adjacent sectors and the
// L2. Reverse Cuthill-McKee (RCM) minimizes exactly that spread (the matrix
// bandwidth). Betweenness centrality itself is invariant under relabeling
// (tests pin this), so reordering is a pure locality optimization — the
// classic preprocessing step real SpMV pipelines apply, and a natural
// companion to the paper's memory-efficiency theme.
// bench_ablation_reordering measures the effect.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::graph {

/// Reverse Cuthill-McKee ordering, per weakly-connected component (BFS from
/// a minimum-degree peripheral vertex, neighbours visited by ascending
/// degree, order reversed). Returns new_id[old_id].
std::vector<vidx_t> rcm_order(const EdgeList& graph);

/// Random permutation (the worst case, for ablation baselines).
std::vector<vidx_t> random_order(vidx_t n, std::uint64_t seed);

/// Relabel every vertex: edge (u, v) becomes (new_id[u], new_id[v]).
EdgeList apply_order(const EdgeList& graph, const std::vector<vidx_t>& new_id);

/// Matrix bandwidth: max |u - v| over arcs. RCM exists to shrink this.
vidx_t bandwidth(const EdgeList& graph);

}  // namespace turbobc::graph
