#include "graph/mtx_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace turbobc::graph {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// getline keeps the '\r' of CRLF files; SuiteSparse archives contain both
/// encodings, so every line is stripped before parsing.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

EdgeList read_matrix_market(std::istream& in) {
  // All rejection paths throw ParseError with the 1-based line number, so a
  // malformed SuiteSparse download (or fuzz input) points at its own defect
  // instead of producing UB or a silently wrong graph.
  std::size_t lineno = 0;
  std::string line;
  const auto next_line = [&]() -> bool {
    if (!std::getline(in, line)) return false;
    ++lineno;
    strip_cr(line);
    return true;
  };

  if (!next_line()) throw ParseError("empty Matrix Market stream");

  std::istringstream header(line);
  std::string banner, object, fmt, field, symmetry;
  header >> banner >> object >> fmt >> field >> symmetry;
  if (banner != "%%MatrixMarket") {
    throw ParseError("missing %%MatrixMarket banner", lineno);
  }
  if (to_lower(object) != "matrix") {
    throw ParseError("only matrix objects are supported", lineno);
  }
  if (to_lower(fmt) != "coordinate") {
    throw ParseError("only coordinate (sparse) format is supported", lineno);
  }
  field = to_lower(field);
  symmetry = to_lower(symmetry);
  if (field != "pattern" && field != "real" && field != "integer") {
    throw ParseError("unsupported Matrix Market field type: " + field,
                     lineno);
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    throw ParseError("unsupported Matrix Market symmetry: " + symmetry,
                     lineno);
  }
  const bool has_value = field != "pattern";
  const bool symmetric = symmetry == "symmetric";

  // Skip comments, read the size line.
  do {
    if (!next_line()) {
      throw ParseError("Matrix Market stream ended before size line", lineno);
    }
  } while (!line.empty() && line[0] == '%');

  long long rows = 0, cols = 0, nnz = 0;
  {
    // istream extraction sets failbit on values outside long long, so
    // absurdly large dimension tokens land here rather than wrapping.
    std::istringstream size_line(line);
    size_line >> rows >> cols >> nnz;
    if (size_line.fail()) {
      throw ParseError("malformed Matrix Market size line: " + line, lineno);
    }
  }
  if (rows != cols) {
    throw ParseError("adjacency matrices must be square", lineno);
  }
  if (rows < 0 || nnz < 0) {
    throw ParseError("negative Matrix Market dimensions", lineno);
  }
  if (rows > static_cast<long long>(std::numeric_limits<vidx_t>::max())) {
    throw ParseError("Matrix Market dimension overflows 32-bit vertex index",
                     lineno);
  }

  EdgeList el(static_cast<vidx_t>(rows), !symmetric);
  long long seen = 0;
  while (seen < nnz && next_line()) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    long long r = 0, c = 0;
    entry >> r >> c;
    if (entry.fail()) {
      throw ParseError("malformed Matrix Market entry: " + line, lineno);
    }
    if (has_value) {
      double value = 0.0;
      entry >> value;  // discarded: graphs are treated as unweighted
      if (entry.fail()) {
        throw ParseError("Matrix Market entry missing its value: " + line,
                         lineno);
      }
    }
    if (r < 1 || r > rows || c < 1 || c > cols) {
      throw ParseError("Matrix Market entry out of range: " + line, lineno);
    }
    // Matrix entry A(r, c) is the arc r -> c.
    el.add_edge(static_cast<vidx_t>(r - 1), static_cast<vidx_t>(c - 1));
    ++seen;
  }
  if (seen != nnz) {
    throw ParseError("Matrix Market stream ended before all entries (got " +
                         std::to_string(seen) + " of " + std::to_string(nnz) +
                         ")",
                     lineno);
  }

  if (symmetric) {
    el.symmetrize();
  } else {
    el.canonicalize();
  }
  return el;
}

EdgeList read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  TBC_CHECK(in.good(), "cannot open Matrix Market file: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const EdgeList& el) {
  const bool symmetric = !el.directed();
  out << "%%MatrixMarket matrix coordinate pattern "
      << (symmetric ? "symmetric" : "general") << '\n';
  out << "% written by TurboBC\n";

  if (symmetric) {
    // Symmetric storage keeps one triangle; emit arcs with u >= v.
    eidx_t kept = 0;
    for (const Edge& e : el.edges()) {
      if (e.u >= e.v) ++kept;
    }
    out << el.num_vertices() << ' ' << el.num_vertices() << ' ' << kept
        << '\n';
    for (const Edge& e : el.edges()) {
      if (e.u >= e.v) out << (e.u + 1) << ' ' << (e.v + 1) << '\n';
    }
  } else {
    out << el.num_vertices() << ' ' << el.num_vertices() << ' '
        << el.num_arcs() << '\n';
    for (const Edge& e : el.edges()) {
      out << (e.u + 1) << ' ' << (e.v + 1) << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const EdgeList& el) {
  std::ofstream out(path);
  TBC_CHECK(out.good(), "cannot open file for writing: " + path);
  write_matrix_market(out, el);
}

}  // namespace turbobc::graph
