#include "graph/mtx_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace turbobc::graph {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// getline keeps the '\r' of CRLF files; SuiteSparse archives contain both
/// encodings, so every line is stripped before parsing.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

EdgeList read_matrix_market(std::istream& in) {
  std::string line;
  TBC_CHECK(static_cast<bool>(std::getline(in, line)),
            "empty Matrix Market stream");
  strip_cr(line);

  std::istringstream header(line);
  std::string banner, object, fmt, field, symmetry;
  header >> banner >> object >> fmt >> field >> symmetry;
  TBC_CHECK(banner == "%%MatrixMarket", "missing %%MatrixMarket banner");
  TBC_CHECK(to_lower(object) == "matrix", "only matrix objects are supported");
  TBC_CHECK(to_lower(fmt) == "coordinate",
            "only coordinate (sparse) format is supported");
  field = to_lower(field);
  symmetry = to_lower(symmetry);
  TBC_CHECK(field == "pattern" || field == "real" || field == "integer",
            "unsupported Matrix Market field type: " + field);
  TBC_CHECK(symmetry == "general" || symmetry == "symmetric",
            "unsupported Matrix Market symmetry: " + symmetry);
  const bool has_value = field != "pattern";
  const bool symmetric = symmetry == "symmetric";

  // Skip comments, read the size line.
  do {
    TBC_CHECK(static_cast<bool>(std::getline(in, line)),
              "Matrix Market stream ended before size line");
    strip_cr(line);
  } while (!line.empty() && line[0] == '%');

  long long rows = 0, cols = 0, nnz = 0;
  {
    std::istringstream size_line(line);
    size_line >> rows >> cols >> nnz;
    TBC_CHECK(!size_line.fail(), "malformed Matrix Market size line");
  }
  TBC_CHECK(rows == cols, "adjacency matrices must be square");
  TBC_CHECK(rows >= 0 && nnz >= 0, "negative Matrix Market dimensions");

  EdgeList el(static_cast<vidx_t>(rows), !symmetric);
  long long seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    strip_cr(line);
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    long long r = 0, c = 0;
    entry >> r >> c;
    TBC_CHECK(!entry.fail(), "malformed Matrix Market entry: " + line);
    if (has_value) {
      double value = 0.0;
      entry >> value;  // discarded: graphs are treated as unweighted
    }
    TBC_CHECK(r >= 1 && r <= rows && c >= 1 && c <= cols,
              "Matrix Market entry out of range: " + line);
    // Matrix entry A(r, c) is the arc r -> c.
    el.add_edge(static_cast<vidx_t>(r - 1), static_cast<vidx_t>(c - 1));
    ++seen;
  }
  TBC_CHECK(seen == nnz, "Matrix Market stream ended before all entries");

  if (symmetric) {
    el.symmetrize();
  } else {
    el.canonicalize();
  }
  return el;
}

EdgeList read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  TBC_CHECK(in.good(), "cannot open Matrix Market file: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const EdgeList& el) {
  const bool symmetric = !el.directed();
  out << "%%MatrixMarket matrix coordinate pattern "
      << (symmetric ? "symmetric" : "general") << '\n';
  out << "% written by TurboBC\n";

  if (symmetric) {
    // Symmetric storage keeps one triangle; emit arcs with u >= v.
    eidx_t kept = 0;
    for (const Edge& e : el.edges()) {
      if (e.u >= e.v) ++kept;
    }
    out << el.num_vertices() << ' ' << el.num_vertices() << ' ' << kept
        << '\n';
    for (const Edge& e : el.edges()) {
      if (e.u >= e.v) out << (e.u + 1) << ' ' << (e.v + 1) << '\n';
    }
  } else {
    out << el.num_vertices() << ' ' << el.num_vertices() << ' '
        << el.num_arcs() << '\n';
    for (const Edge& e : el.edges()) {
      out << (e.u + 1) << ' ' << (e.v + 1) << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const EdgeList& el) {
  std::ofstream out(path);
  TBC_CHECK(out.good(), "cannot open file for writing: " + path);
  write_matrix_market(out, el);
}

}  // namespace turbobc::graph
