#include "graph/reorder.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "graph/csr.hpp"

namespace turbobc::graph {

std::vector<vidx_t> rcm_order(const EdgeList& graph) {
  const vidx_t n = graph.num_vertices();

  // Work on the symmetrized structure: locality matters for both the
  // forward (in-neighbour) and backward (out-neighbour) passes.
  EdgeList sym = graph;
  sym.symmetrize();
  const CsrGraph adj = CsrGraph::from_edges(sym);

  std::vector<vidx_t> degree(static_cast<std::size_t>(n));
  for (vidx_t v = 0; v < n; ++v) {
    degree[static_cast<std::size_t>(v)] = static_cast<vidx_t>(adj.out_degree(v));
  }

  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<vidx_t> cm_order;  // Cuthill-McKee order (reversed at the end)
  cm_order.reserve(static_cast<std::size_t>(n));

  // Process vertices in ascending-degree order as component seeds: a
  // minimum-degree start vertex approximates a peripheral vertex.
  std::vector<vidx_t> seeds(static_cast<std::size_t>(n));
  for (vidx_t v = 0; v < n; ++v) seeds[static_cast<std::size_t>(v)] = v;
  std::sort(seeds.begin(), seeds.end(), [&](vidx_t a, vidx_t b) {
    return degree[static_cast<std::size_t>(a)] <
           degree[static_cast<std::size_t>(b)];
  });

  std::vector<vidx_t> nbrs;
  for (const vidx_t seed : seeds) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    std::queue<vidx_t> q;
    visited[static_cast<std::size_t>(seed)] = 1;
    q.push(seed);
    while (!q.empty()) {
      const vidx_t v = q.front();
      q.pop();
      cm_order.push_back(v);
      // Enqueue unvisited neighbours by ascending degree (the CM rule).
      nbrs.clear();
      const auto [b, e] = adj.row_range(v);
      for (eidx_t k = b; k < e; ++k) {
        const vidx_t w = adj.col_idx()[static_cast<std::size_t>(k)];
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = 1;
          nbrs.push_back(w);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](vidx_t a, vidx_t b2) {
        return degree[static_cast<std::size_t>(a)] <
               degree[static_cast<std::size_t>(b2)];
      });
      for (const vidx_t w : nbrs) q.push(w);
    }
  }

  // Reverse (the "R" in RCM) and invert into new_id[old_id].
  std::vector<vidx_t> new_id(static_cast<std::size_t>(n));
  for (std::size_t pos = 0; pos < cm_order.size(); ++pos) {
    new_id[static_cast<std::size_t>(cm_order[pos])] =
        static_cast<vidx_t>(cm_order.size() - 1 - pos);
  }
  return new_id;
}

std::vector<vidx_t> random_order(vidx_t n, std::uint64_t seed) {
  std::vector<vidx_t> new_id(static_cast<std::size_t>(n));
  for (vidx_t v = 0; v < n; ++v) new_id[static_cast<std::size_t>(v)] = v;
  Xoshiro256 rng(seed);
  for (std::size_t i = new_id.size(); i > 1; --i) {
    std::swap(new_id[i - 1], new_id[rng.uniform(i)]);
  }
  return new_id;
}

EdgeList apply_order(const EdgeList& graph, const std::vector<vidx_t>& new_id) {
  TBC_CHECK(new_id.size() == static_cast<std::size_t>(graph.num_vertices()),
            "permutation size must equal vertex count");
  // Validate it is a permutation.
  std::vector<char> seen(new_id.size(), 0);
  for (const vidx_t id : new_id) {
    TBC_CHECK(id >= 0 && static_cast<std::size_t>(id) < new_id.size() &&
                  !seen[static_cast<std::size_t>(id)],
              "new_id is not a permutation");
    seen[static_cast<std::size_t>(id)] = 1;
  }

  EdgeList out(graph.num_vertices(), graph.directed());
  for (const Edge& e : graph.edges()) {
    out.add_edge(new_id[static_cast<std::size_t>(e.u)],
                 new_id[static_cast<std::size_t>(e.v)]);
  }
  out.canonicalize();
  return out;
}

vidx_t bandwidth(const EdgeList& graph) {
  vidx_t bw = 0;
  for (const Edge& e : graph.edges()) {
    bw = std::max(bw, static_cast<vidx_t>(std::abs(e.u - e.v)));
  }
  return bw;
}

}  // namespace turbobc::graph
