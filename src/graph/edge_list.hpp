// Edge-list graph representation: the construction/interchange format.
//
// An EdgeList is a list of directed arcs (u -> v) over vertices [0, n).
// Undirected graphs are represented with both arcs present (after
// symmetrize()), matching the paper's convention where `m` counts the
// nonzeros of the adjacency matrix — e.g. the `smallworld` graph has mean
// degree 10 and m = 10n. Sparse formats (CSC, COOC) are built from a
// canonicalized EdgeList.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace turbobc::graph {

struct Edge {
  vidx_t u = 0;  // source (row of the adjacency matrix)
  vidx_t v = 0;  // destination (column)

  friend bool operator==(const Edge&, const Edge&) = default;
};

class EdgeList {
 public:
  EdgeList() = default;
  /// `directed` records intent: BC on undirected graphs halves the
  /// accumulated dependencies (Brandes' double-counting compensation).
  EdgeList(vidx_t n, bool directed);

  vidx_t num_vertices() const noexcept { return n_; }
  bool directed() const noexcept { return directed_; }
  /// Number of arcs == adjacency-matrix nonzeros (the paper's m).
  eidx_t num_arcs() const noexcept { return static_cast<eidx_t>(edges_.size()); }

  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Append one arc; vertices must be in [0, n).
  void add_edge(vidx_t u, vidx_t v);

  /// Whether the arc (u, v) is present (linear scan; the edge list is the
  /// interchange format — sparse structures answer this in O(deg)).
  bool has_edge(vidx_t u, vidx_t v) const;

  /// Remove every copy of the arc (u, v); returns the number removed (0 or,
  /// after canonicalize(), at most 1). Undirected callers remove both
  /// orientations to keep the both-arcs-present invariant.
  std::size_t remove_edge(vidx_t u, vidx_t v);

  /// Sort by (u, v), drop duplicate arcs and self-loops. Idempotent.
  void canonicalize();

  /// Ensure both (u,v) and (v,u) are present, canonicalize, and mark the
  /// graph undirected.
  void symmetrize();

  /// Out-degree of every vertex (the degree used by the scf metric:
  /// "for directed graphs degree(u) = out.degree(u)").
  std::vector<eidx_t> out_degrees() const;

  /// In-degree of every vertex.
  std::vector<eidx_t> in_degrees() const;

  /// The transpose graph (every arc reversed).
  EdgeList reversed() const;

 private:
  vidx_t n_ = 0;
  bool directed_ = true;
  std::vector<Edge> edges_;
};

}  // namespace turbobc::graph
