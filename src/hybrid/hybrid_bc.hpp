// Hybrid CPU-GPU co-execution for exact BC (DESIGN.md §14).
//
// The host baseline and the modeled devices previously competed for the
// same work; here they share it. One work queue holds TurboBC::block_plan's
// 64-source blocks, and two kinds of processors drain it:
//
//   * modeled GPU workers — each block runs through the existing
//     TurboBC::run_source_block on a fresh replica device (exactly the unit
//     the ExecutorPool fan-out and the dist replicated strategy schedule);
//   * the host — blocks run through baseline::SequentialBcLa's per-source
//     accumulate, the CPU implementation of the same Algorithm 1 in the
//     same CSC column fold order, timed by CpuModel::seconds_parallel (the
//     22-core ligra-style currency, rounds = BFS sweeps).
//
// Bit-identity: the host arithmetic IS the scCSC device arithmetic — same
// masked column gathers, same skip-exact-zero stores, same left folds — so
// a block's partial BC vector is byte-identical whichever processor ran it,
// and the engine proves it at runtime by running the heaviest block on BOTH
// processors (the calibration probe) and checking the two partials bitwise.
// Completed blocks then merge in ORIGINAL block order — the same rule
// TurboBC::run_sources and the dist engine use — so hybrid BC is
// bit-identical to single-engine run_exact (kScCsc pinned) at any
// --threads N and any device count.
//
// Split heuristic (Mishra-style coarse source splitting): blocks are
// weighted by sum(1 + stored in-degree) over their sources and visited
// heavy-first; the probe's two times calibrate a seconds-per-weight rate
// per processor class, and each block goes to the processor with the
// earliest estimated finish (devices win ties) — so high-degree-source
// blocks land on devices and the tail backfills the host, classic
// list-scheduling work stealing played out on the modeled clock. The
// estimated schedule is computed serially from the probe alone; actual
// per-block modeled times are charged to a MakespanLedger afterwards, in
// block order, so the reported makespan and per-processor utilization are
// bit-identical at any pool width too.
#pragma once

#include <string>
#include <vector>

#include "baselines/bc_la_seq.hpp"
#include "core/turbobc.hpp"
#include "gpusim/cpumodel.hpp"
#include "gpusim/device.hpp"
#include "graph/edge_list.hpp"
#include "hybrid/ledger.hpp"

namespace turbobc::hybrid {

struct HybridOptions {
  /// Modeled GPU workers draining the block queue (>= 1). Replica devices
  /// built from the main device's props, like the dist replicate strategy.
  int devices = 1;
  /// Host processor model (rate calibration + block timing).
  sim::CpuModel cpu = sim::CpuModel{};
};

/// One queue consumer's share of the run.
struct ProcessorStat {
  std::string name;  ///< "gpu0".."gpuK", "host"
  std::size_t blocks = 0;
  std::size_t sources = 0;
  /// Calibrated seconds per unit block weight (the schedule's estimate).
  double rate = 0.0;
  /// Sum of actual modeled seconds of this processor's blocks (the probe
  /// block is charged to BOTH gpu0 and the host — co-run calibration).
  double busy_seconds = 0.0;
  double utilization = 0.0;  ///< busy_seconds / makespan
};

struct HybridResult {
  /// BC (bit-identical to TurboBC{kScCsc}::run_exact over the same
  /// sources), with device_seconds set to the modeled makespan.
  bc::BcResult result;
  std::vector<ProcessorStat> processors;
  double makespan_seconds = 0.0;
  /// Serial sum of every block's modeled seconds on its own processor.
  double busy_seconds = 0.0;
  /// Index of the calibration block in the original block order.
  std::size_t probe_block = 0;
  std::size_t num_blocks = 0;
  /// Host work counters (every host-run block plus the probe).
  sim::CpuOpCounts host_ops;
};

class HybridTurboBC {
 public:
  /// Pins options.variant to kScCsc (the host path's fold order — the same
  /// demotion rule the compressed engine applies) and rejects edge_bc /
  /// compress, which the host path does not accumulate.
  HybridTurboBC(sim::Device& device, const graph::EdgeList& graph,
                bc::BcOptions options = {}, HybridOptions hybrid = {});

  /// Exact BC: every vertex as source, co-executed.
  HybridResult run_exact();

  /// BC restricted to `sources`, co-executed. Bit-identical to
  /// TurboBC::run_sources(sources) with the pinned variant.
  HybridResult run_sources(const std::vector<vidx_t>& sources);

  vidx_t num_vertices() const noexcept { return algo_.num_vertices(); }
  const bc::BcOptions& options() const noexcept { return algo_.options(); }
  const HybridOptions& hybrid_options() const noexcept { return hybrid_; }

 private:
  sim::Device& device_;
  HybridOptions hybrid_;
  bc::TurboBC algo_;
  baseline::SequentialBcLa host_;
  /// Stored-column degree per vertex (block weight input).
  std::vector<eidx_t> degree_;
};

}  // namespace turbobc::hybrid
