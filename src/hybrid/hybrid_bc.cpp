#include "hybrid/hybrid_bc.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <sstream>

#include "common/error.hpp"
#include "gpusim/executor.hpp"

namespace turbobc::hybrid {

namespace {

double device_clock(const sim::Device& d) {
  return d.kernel_seconds() + d.transfer_seconds() + d.overhead_seconds();
}

/// Pin the variant the host arithmetic reproduces fold for fold. Mirrors
/// the compressed engine's demotion rule: callers may ask for any variant,
/// the co-executed run always uses the thread-per-column layout.
bc::BcOptions pinned(bc::BcOptions options) {
  TBC_CHECK(!options.edge_bc,
            "hybrid co-execution does not accumulate edge BC");
  TBC_CHECK(!options.compress,
            "hybrid co-execution runs on the uncompressed resident graph");
  options.variant = bc::Variant::kScCsc;
  return options;
}

/// One completed block, whichever processor ran it.
struct DoneBlock {
  std::optional<bc::TurboBC::BlockPartial> dev;  // device-run blocks
  std::vector<bc_t> host_bc;                     // host-run blocks
  sim::CpuOpCounts ops;
  bc::SourceStats last;
  double seconds = 0.0;
};

}  // namespace

HybridTurboBC::HybridTurboBC(sim::Device& device,
                             const graph::EdgeList& graph,
                             bc::BcOptions options, HybridOptions hybrid)
    : device_(device),
      hybrid_(hybrid),
      algo_(device, graph, pinned(options)),
      host_(graph, hybrid.cpu) {
  TBC_CHECK(hybrid_.devices >= 1,
            "hybrid co-execution needs at least one modeled device");
  const auto& cp = host_.csc().col_ptr();
  degree_.resize(static_cast<std::size_t>(host_.csc().num_vertices()));
  for (std::size_t v = 0; v < degree_.size(); ++v) {
    degree_[v] = cp[v + 1] - cp[v];
  }
}

HybridResult HybridTurboBC::run_exact() {
  std::vector<vidx_t> sources(static_cast<std::size_t>(num_vertices()));
  std::iota(sources.begin(), sources.end(), 0);
  return run_sources(sources);
}

HybridResult HybridTurboBC::run_sources(const std::vector<vidx_t>& sources) {
  TBC_CHECK(!sources.empty(), "hybrid run needs at least one source");
  const std::size_t count = sources.size();
  const bc::TurboBC::BlockPlan plan = bc::TurboBC::block_plan(count);
  const std::size_t nb = plan.num_blocks;
  const auto num_devices = static_cast<std::size_t>(hybrid_.devices);
  const std::size_t host_lane = num_devices;  // lanes [0, D) gpu, D host

  // Block weights: sum of (1 + stored column degree) over the block's
  // sources — the Mishra-style proxy for per-source sweep cost that routes
  // high-degree-source blocks to the devices.
  std::vector<double> weight(nb, 0.0);
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::size_t i = plan.begin(b); i < plan.end(b, count); ++i) {
      weight[b] +=
          1.0 + static_cast<double>(
                    degree_[static_cast<std::size_t>(sources[i])]);
    }
  }

  // Heavy-first queue order; ties keep the lower block index so the
  // schedule is a pure function of the weights.
  std::vector<std::size_t> order(nb);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return weight[a] > weight[b];
                   });

  // Calibration probe: the heaviest block runs on BOTH processor classes.
  // The two partials must agree bitwise (the co-execution correctness
  // claim, checked on every run), and the two times calibrate the
  // seconds-per-weight rate each class is scheduled with.
  const std::size_t probe = order[0];
  DoneBlock probe_done;
  probe_done.dev = algo_.run_source_block(device_.props(), sources,
                                          plan.begin(probe),
                                          plan.end(probe, count), nullptr,
                                          false);
  probe_done.seconds = device_clock(*probe_done.dev->dev);
  probe_done.last = probe_done.dev->last;

  std::vector<bc_t> probe_host_bc(probe_done.dev->bc.size(), 0.0);
  sim::CpuOpCounts probe_ops;
  double probe_host_seconds = 0.0;
  const auto run_host_block = [&](std::size_t b, std::vector<bc_t>& bc,
                                  sim::CpuOpCounts& ops) {
    bc.assign(static_cast<std::size_t>(num_vertices()), 0.0);
    baseline::SourceTraversal trav;
    for (std::size_t i = plan.begin(b); i < plan.end(b, count); ++i) {
      trav = host_.accumulate_source(sources[i], bc, ops);
      // Ligra-style round accounting: one parallel sweep per forward level
      // (height + 1 counting the empty last one), one per backward level,
      // one final accumulation.
      ops.rounds += static_cast<std::uint64_t>(trav.height) + 1 +
                    (trav.height >= 1
                         ? static_cast<std::uint64_t>(trav.height) - 1
                         : 0) +
                    1;
    }
    return bc::SourceStats{trav.height, trav.reached};
  };
  run_host_block(probe, probe_host_bc, probe_ops);
  probe_host_seconds = hybrid_.cpu.seconds_parallel(probe_ops);
  for (std::size_t v = 0; v < probe_host_bc.size(); ++v) {
    if (probe_host_bc[v] != probe_done.dev->bc[v]) {
      std::ostringstream os;
      os << "hybrid probe disagreement at vertex " << v << ": host "
         << probe_host_bc[v] << " vs device " << probe_done.dev->bc[v];
      throw InternalError(os.str());
    }
  }

  const double rate_dev = probe_done.seconds / weight[probe];
  const double rate_host = probe_host_seconds / weight[probe];

  // Greedy earliest-estimated-finish assignment over the remaining queue,
  // simulated serially with the calibrated rates: each block goes to the
  // processor that would finish it first (devices win ties, lower id
  // first), which hands the heavy head to the devices and lets the host
  // steal the tail. Purely a function of (weights, rates), so the split —
  // and hence every modeled number downstream — is identical at any pool
  // width and any thread interleaving.
  std::vector<double> est(num_devices + 1, 0.0);
  est[0] = probe_done.seconds;
  est[host_lane] = probe_host_seconds;
  std::vector<std::size_t> assign(nb, 0);
  assign[probe] = 0;
  for (std::size_t k = 1; k < nb; ++k) {
    const std::size_t b = order[k];
    std::size_t best = 0;
    double best_finish = est[0] + rate_dev * weight[b];
    for (std::size_t p = 1; p < num_devices; ++p) {
      const double f = est[p] + rate_dev * weight[b];
      if (f < best_finish) {
        best = p;
        best_finish = f;
      }
    }
    if (est[host_lane] + rate_host * weight[b] < best_finish) {
      best = host_lane;
      best_finish = est[host_lane] + rate_host * weight[b];
    }
    assign[b] = best;
    est[best] = best_finish;
  }

  // Drain the queue: every block runs independently (fresh replica device
  // or private host accumulator), fanned across the ExecutorPool.
  std::vector<DoneBlock> done(nb);
  done[probe] = std::move(probe_done);
  sim::ExecutorPool::instance().for_tasks(nb, [&](std::size_t b, unsigned) {
    if (b == probe) return;
    DoneBlock& out = done[b];
    if (assign[b] < num_devices) {
      out.dev = algo_.run_source_block(device_.props(), sources,
                                       plan.begin(b), plan.end(b, count),
                                       nullptr, false);
      out.seconds = device_clock(*out.dev->dev);
      out.last = out.dev->last;
    } else {
      out.last = run_host_block(b, out.host_bc, out.ops);
      out.seconds = hybrid_.cpu.seconds_parallel(out.ops);
    }
  });

  // Deterministic merge: ORIGINAL block order, left fold — the rule every
  // engine shares, and the reason the co-executed BC is bit-identical to
  // run_exact whatever the split.
  HybridResult hr;
  hr.num_blocks = nb;
  hr.probe_block = probe;
  hr.processors.resize(num_devices + 1);
  for (std::size_t p = 0; p < num_devices; ++p) {
    hr.processors[p].name = "gpu" + std::to_string(p);
    hr.processors[p].rate = rate_dev;
  }
  hr.processors[host_lane].name = "host";
  hr.processors[host_lane].rate = rate_host;

  MakespanLedger ledger(num_devices + 1);
  // The probe co-ran on the host; charge that lane its calibration time.
  ledger.charge(host_lane, probe_host_seconds);
  hr.processors[host_lane].busy_seconds += probe_host_seconds;
  hr.host_ops += probe_ops;

  device_.memory().reset_peak();
  hr.result.bc.assign(static_cast<std::size_t>(num_vertices()), 0.0);
  for (std::size_t b = 0; b < nb; ++b) {
    DoneBlock& blk = done[b];
    const std::vector<bc_t>& partial =
        blk.dev ? blk.dev->bc : blk.host_bc;
    for (std::size_t v = 0; v < hr.result.bc.size(); ++v) {
      hr.result.bc[v] += partial[v];
    }
    if (blk.dev) {
      device_.absorb_timeline(*blk.dev->dev);
      device_.memory().note_peak(blk.dev->peak_bytes);
    } else if (b != probe) {
      hr.host_ops += blk.ops;
    }
    ledger.charge(assign[b], blk.seconds);
    ProcessorStat& stat = hr.processors[assign[b]];
    stat.blocks += 1;
    // The tail block can be empty (begin past count) when count is not a
    // multiple of the block length; clamp instead of underflowing.
    if (plan.end(b, count) > plan.begin(b)) {
      stat.sources += plan.end(b, count) - plan.begin(b);
    }
    stat.busy_seconds += blk.seconds;
    hr.busy_seconds += blk.seconds;
  }
  hr.result.last_source = done[nb - 1].last;
  hr.result.sources = static_cast<vidx_t>(count);
  hr.makespan_seconds = ledger.makespan();
  hr.result.device_seconds = hr.makespan_seconds;
  hr.result.peak_device_bytes = device_.memory().peak_bytes();
  for (ProcessorStat& stat : hr.processors) {
    stat.utilization =
        hr.makespan_seconds > 0.0 ? stat.busy_seconds / hr.makespan_seconds
                                  : 0.0;
  }
  return hr;
}

}  // namespace turbobc::hybrid
