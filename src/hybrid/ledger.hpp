// MakespanLedger: the modeled multi-lane serving clock shared by the hybrid
// co-execution scheduler (src/hybrid/hybrid_bc.cpp) and the daemon's
// metrics-plane reader-lane clock (src/daemon/scheduler.cpp).
//
// A ledger holds one monotone clock per lane plus a barrier clock. Work is
// charged to a lane starting at max(lane clock, barrier clock); a barrier
// raises every lane (and the barrier clock) to the current makespan. The
// makespan — the max over all lane clocks and the barrier — is the modeled
// completion time of everything charged so far, the number every
// throughput-scaling gate in this repo compares across lane counts.
//
// The ledger is deliberately dumb: no synchronization (callers lock), no
// floating-point cleverness (plain double adds in call order, so two runs
// charging the same costs in the same order produce bit-identical clocks —
// the property the hybrid engine's thread-determinism contract leans on).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace turbobc::hybrid {

class MakespanLedger {
 public:
  explicit MakespanLedger(std::size_t lanes) : lane_clock_(lanes, 0.0) {
    TBC_CHECK(lanes > 0, "MakespanLedger needs at least one lane");
  }

  std::size_t lanes() const noexcept { return lane_clock_.size(); }
  double lane_clock(std::size_t lane) const { return lane_clock_.at(lane); }
  double barrier_clock() const noexcept { return barrier_clock_; }

  /// Lane with the lowest clock; the first such lane wins ties, so the
  /// assignment is deterministic.
  std::size_t least_busy() const noexcept {
    std::size_t best = 0;
    for (std::size_t i = 1; i < lane_clock_.size(); ++i) {
      if (lane_clock_[i] < lane_clock_[best]) best = i;
    }
    return best;
  }

  /// Charge `seconds` of work to `lane`, starting no earlier than the
  /// barrier clock. Returns the lane's new finish time.
  double charge(std::size_t lane, double seconds) {
    double& clock = lane_clock_.at(lane);
    clock = std::max(clock, barrier_clock_) + seconds;
    return clock;
  }

  /// Raise every lane and the barrier clock to the current makespan: work
  /// charged after this cannot start before everything charged so far ends.
  void barrier() {
    const double t = makespan();
    barrier_clock_ = t;
    std::fill(lane_clock_.begin(), lane_clock_.end(), t);
  }

  double makespan() const noexcept {
    double t = barrier_clock_;
    for (const double l : lane_clock_) t = std::max(t, l);
    return t;
  }

 private:
  std::vector<double> lane_clock_;
  double barrier_clock_ = 0.0;
};

}  // namespace turbobc::hybrid
