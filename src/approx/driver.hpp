// Adaptive wave driver: pivots in geometric waves until the estimator's
// stopping rule fires.
//
// Loop per wave:
//   1. the sampler draws the wave's pivots (+ importance weights);
//   2. the engine runs them with on-device moment accumulation —
//      TurboBC::run_sources_moments fans the wave across the ExecutorPool
//      with the PR-1 fixed-order merge, or TurboBCBatched processes it k
//      lanes at a time on the main device;
//   3. the estimator folds the wave's moments and evaluates the stopping
//      rule (spending its next delta slice — see estimator.hpp).
// Wave sizes double from initial_wave, so at most O(log n) checks happen
// and the total work overshoots the oracle-optimal sample count by at most
// 2x. Each wave's modeled seconds (moment download included) and peak
// bytes are recorded; the run's totals are the left-fold sum / running max
// over waves in order, so the oracle can recompute them exactly.
//
// Determinism: the pivot sequence is a pure function of (seed, graph,
// sampler); the engine is bit-identical at any pool width; the estimator
// is sequential host math. Hence the WHOLE ApproxResult is bit-identical
// for a fixed seed at any --threads N.
#pragma once

#include <cstdint>
#include <vector>

#include "approx/estimator.hpp"
#include "approx/sampler.hpp"
#include "common/types.hpp"
#include "core/turbobc.hpp"
#include "core/variant.hpp"
#include "gpusim/device.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::dist {
class DistTurboBC;
}

namespace turbobc::approx {

enum class Engine {
  kScalar,   // TurboBC::run_sources_moments (pool-parallel fan-out)
  kBatched,  // TurboBCBatched::run_sources_moments (SpMM lanes)
};

/// "scalar" / "batched". Throws UsageError otherwise.
Engine parse_engine(const std::string& name);
const char* engine_name(Engine engine);

struct ApproxOptions {
  double epsilon = 0.05;
  double delta = 0.1;
  /// 0: per-vertex epsilon target; otherwise top-k rank stability.
  vidx_t top_k = 0;
  std::uint64_t seed = 1;
  SamplerKind sampler = SamplerKind::kUniform;
  Engine engine = Engine::kScalar;
  bc::Variant variant = bc::Variant::kScCsc;
  /// Forward-sweep advance, forwarded to the wave engine (scalar or
  /// batched). Estimates are unaffected — the pull sweep is bit-identical —
  /// only the modeled wave seconds and peak bytes change.
  bc::Advance advance = bc::Advance::kPush;
  vidx_t batch_size = 8;  // kBatched only
  /// First wave's pivot count; 0 picks max(8, min(n, 32)).
  vidx_t initial_wave = 0;
  /// Hard pivot budget; 0 means n (the exact-BC source count). When the
  /// budget runs out before the rule fires the result reports
  /// converged = false with the intervals reached so far.
  vidx_t max_sources = 0;
  /// Optional precomputed weakly-connected component map for the component
  /// sampler, cached ACROSS the run's waves (the sampler is built once per
  /// run and keeps it) and reusable across runs on the same graph — the qa
  /// oracle's scalar/batched/determinism trio shares one sweep this way.
  /// Must outlive the run and MATCH `graph`: a map computed before an edge
  /// update silently mis-stratifies the sampler afterwards. Callers that
  /// mutate between runs should hold the map in a graph::ComponentCache and
  /// call its invalidate() on every mutation (the src/serve/ engine does
  /// exactly that). Ignored by the other samplers.
  const graph::Components* components = nullptr;
};

struct WaveStats {
  vidx_t sources = 0;             // pivots in this wave
  double device_seconds = 0.0;    // modeled seconds of this wave alone
  std::size_t peak_device_bytes = 0;
  double max_half_width = 0.0;    // after folding this wave
  bool converged = false;         // stopping rule state after this wave
};

struct ApproxResult {
  /// Per-vertex BC estimates (sum of weighted samples / sample count).
  std::vector<bc_t> bc;
  /// Per-vertex confidence half-widths; |BC_exact(v) - bc[v]| <=
  /// half_width[v] for all v simultaneously with probability >= 1 - delta.
  std::vector<double> half_width;
  std::vector<WaveStats> waves;
  /// Total pivots run (counts repeats: sampling is with replacement).
  vidx_t sources_used = 0;
  bool converged = false;
  /// Left-fold sum of the waves' modeled seconds, in wave order.
  double device_seconds = 0.0;
  /// Max over waves' peak bytes.
  std::size_t peak_device_bytes = 0;
  /// The epsilon scale (see estimator.hpp).
  double norm = 0.0;
  double max_half_width = 0.0;
};

/// Estimate BC on `graph` to the configured target, running waves on
/// `device` (graph uploaded once, at the first wave).
ApproxResult run_adaptive(sim::Device& device, const graph::EdgeList& graph,
                          const ApproxOptions& options);

/// Same adaptive loop with every wave fanned across a modeled multi-GPU node
/// via DistTurboBC::run_sources_moments. `engine` must have resolved to the
/// replicated strategy (moment waves need the whole graph per device);
/// options.engine / batch_size are ignored — the distributed path is
/// scalar-engine only. Estimates, half-widths and the pivot sequence are
/// bit-identical to the single-device run for the same seed (shared block
/// runner + fixed-order merge); per-wave modeled seconds additionally
/// include the interconnect time of the wave's bc/moment all_reduces.
ApproxResult run_adaptive(dist::DistTurboBC& engine,
                          const graph::EdgeList& graph,
                          const ApproxOptions& options);

}  // namespace turbobc::approx
