// Incremental BC estimator with anytime-valid confidence half-widths.
//
// Each pivot draw s contributes, per vertex v, one i.i.d. sample
//   x_s(v) = w_s * c_s(v)   with   E[x_s(v)] = BC(v)
// (see sampler.hpp). The engine's moment runs deliver sum(v) = sum x_s(v)
// and sumsq(v) = sum x_s(v)^2 per wave; this class folds waves into running
// totals and, between waves, turns them into per-vertex confidence
// intervals two ways, keeping the tighter:
//
//   Hoeffding            h = R * sqrt(ln(2/d'') / (2k))
//   empirical Bernstein  h = sqrt(2 V ln(4/d'') / k)
//                            + 7 R ln(4/d'') / (3 (k-1))
//     (Maurer & Pontil 2009, Thm 4; V is the unbiased sample variance)
//
// where R bounds one sample's range: a dependency contribution is at most
// cscale * (n-2) (every other vertex's pair-dependency is <= 1; halved on
// undirected graphs), so R = max_weight * cscale * (n-2).
//
// The stopping rule is checked AFTER EVERY WAVE, i.e. at a data-dependent
// time, so a fixed-delta bound would be invalid under optional stopping.
// Standard fix: the j-th check spends delta_j = delta / 2^j (sum over all
// checks < delta), split evenly between the two bound families and
// union-bounded over the n vertices, giving d'' = delta_j / (2n) per
// vertex per family. Whenever the rule fires, ALL per-vertex intervals
// hold simultaneously with probability >= 1 - delta.
//
// Two stopping modes, both scaled by norm = max(1, cscale*(n-1)*(n-2))
// (the largest BC any vertex can have, so epsilon is a relative error):
//   epsilon mode (top_k == 0):  max_v halfwidth(v) <= epsilon * norm
//   top-k mode:  the k-th ranked vertex's lower bound separates from the
//     best excluded vertex's upper bound up to epsilon * norm slack —
//     i.e. the reported top-k set is stable at the target confidence.
//
// Everything here is sequential host double arithmetic over bit-identical
// engine moments, so estimates and half-widths are bit-identical at any
// --threads width.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "core/turbobc.hpp"

namespace turbobc::approx {

struct EstimatorOptions {
  double epsilon = 0.05;
  double delta = 0.1;
  /// 0: per-vertex epsilon mode. Otherwise: top-k rank-stability mode.
  vidx_t top_k = 0;
  vidx_t num_vertices = 0;
  bool directed = false;
  /// sup_s w_s from the sampler; scales the sample range R.
  double max_weight = 0.0;
};

class IncrementalEstimator {
 public:
  explicit IncrementalEstimator(const EstimatorOptions& options);

  /// Fold one wave's moments (wave_samples pivots) into the running totals.
  void fold_wave(const bc::TurboBC::MomentResult& wave,
                 std::size_t wave_samples);

  /// Evaluate the stopping rule; spends the next slice of the delta
  /// schedule (so call exactly once per wave) and refreshes half_widths().
  /// Returns true when the configured target is met.
  bool check_stop();

  /// Current BC estimates: sum(v) / k.
  std::vector<bc_t> estimates() const;
  /// Per-vertex confidence half-widths from the latest check_stop().
  const std::vector<double>& half_widths() const noexcept {
    return half_width_;
  }

  std::size_t samples() const noexcept { return samples_; }
  std::size_t checks() const noexcept { return checks_; }
  /// max_v half_width(v) from the latest check_stop().
  double max_half_width() const noexcept { return max_half_width_; }
  /// The epsilon scale: max(1, cscale*(n-1)*(n-2)).
  double norm() const noexcept { return norm_; }
  /// One sample's range bound R.
  double sample_range() const noexcept { return range_; }

 private:
  EstimatorOptions options_;
  double norm_ = 1.0;
  double range_ = 0.0;
  std::size_t samples_ = 0;
  std::size_t checks_ = 0;
  double max_half_width_ = 0.0;
  std::vector<double> sum_;
  std::vector<double> sumsq_;
  std::vector<double> half_width_;
};

}  // namespace turbobc::approx
