#include "approx/sampler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "graph/components.hpp"

namespace turbobc::approx {

SamplerKind parse_sampler(const std::string& name) {
  if (name == "uniform") return SamplerKind::kUniform;
  if (name == "degree") return SamplerKind::kDegree;
  if (name == "component") return SamplerKind::kComponent;
  throw UsageError("unknown sampler '" + name +
                   "' (expected uniform, degree, or component)");
}

const char* sampler_name(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kUniform: return "uniform";
    case SamplerKind::kDegree: return "degree";
    case SamplerKind::kComponent: return "component";
  }
  return "?";
}

PivotSampler::PivotSampler(const graph::EdgeList& graph, SamplerKind kind,
                           std::uint64_t seed,
                           const graph::Components* components)
    : kind_(kind), rng_(seed), n_(graph.num_vertices()) {
  TBC_CHECK(n_ > 0, "pivot sampler needs a non-empty graph");
  switch (kind_) {
    case SamplerKind::kUniform:
      max_weight_ = static_cast<double>(n_);
      break;
    case SamplerKind::kDegree: {
      const std::vector<eidx_t> deg = graph.out_degrees();
      cum_.resize(static_cast<std::size_t>(n_));
      std::uint64_t total = 0;
      for (std::size_t v = 0; v < cum_.size(); ++v) {
        total += static_cast<std::uint64_t>(deg[v]) + 1;
        cum_[v] = total;
      }
      // w_s = total / (deg_s + 1); the minimum-degree vertex carries the
      // largest weight.
      std::uint64_t min_mass = cum_[0];
      for (std::size_t v = 1; v < cum_.size(); ++v) {
        min_mass = std::min(min_mass, cum_[v] - cum_[v - 1]);
      }
      max_weight_ =
          static_cast<double>(total) / static_cast<double>(min_mass);
      break;
    }
    case SamplerKind::kComponent: {
      // A caller-supplied map skips the label sweep; it must describe this
      // graph exactly.
      graph::Components local;
      if (components == nullptr) {
        local = weakly_connected_components(graph);
      } else {
        TBC_CHECK(components->component.size() ==
                      static_cast<std::size_t>(n_),
                  "cached component map does not match the graph");
      }
      const graph::Components& comps =
          components != nullptr ? *components : local;
      comp_vertices_.resize(static_cast<std::size_t>(comps.count));
      for (vidx_t v = 0; v < n_; ++v) {
        comp_vertices_[static_cast<std::size_t>(
                           comps.component[static_cast<std::size_t>(v)])]
            .push_back(v);
      }
      std::size_t largest = 0;
      for (const auto& cv : comp_vertices_) {
        largest = std::max(largest, cv.size());
      }
      max_weight_ = static_cast<double>(comps.count) *
                    static_cast<double>(largest);
      break;
    }
  }
}

void PivotSampler::draw(std::size_t count, std::vector<vidx_t>& sources,
                        std::vector<double>& weights) {
  for (std::size_t i = 0; i < count; ++i) {
    switch (kind_) {
      case SamplerKind::kUniform: {
        sources.push_back(static_cast<vidx_t>(
            rng_.uniform(static_cast<std::uint64_t>(n_))));
        weights.push_back(static_cast<double>(n_));
        break;
      }
      case SamplerKind::kDegree: {
        const std::uint64_t x = rng_.uniform(cum_.back());
        const auto it = std::upper_bound(cum_.begin(), cum_.end(), x);
        const auto v = static_cast<std::size_t>(it - cum_.begin());
        const std::uint64_t mass =
            v == 0 ? cum_[0] : cum_[v] - cum_[v - 1];
        sources.push_back(static_cast<vidx_t>(v));
        weights.push_back(static_cast<double>(cum_.back()) /
                          static_cast<double>(mass));
        break;
      }
      case SamplerKind::kComponent: {
        const auto c = static_cast<std::size_t>(
            rng_.uniform(comp_vertices_.size()));
        const auto& cv = comp_vertices_[c];
        sources.push_back(cv[static_cast<std::size_t>(rng_.uniform(cv.size()))]);
        weights.push_back(static_cast<double>(comp_vertices_.size()) *
                          static_cast<double>(cv.size()));
        break;
      }
    }
  }
}

}  // namespace turbobc::approx
