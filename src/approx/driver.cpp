#include "approx/driver.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"
#include "core/turbobc_batched.hpp"
#include "dist/dist_turbobc.hpp"

namespace turbobc::approx {

Engine parse_engine(const std::string& name) {
  if (name == "scalar") return Engine::kScalar;
  if (name == "batched") return Engine::kBatched;
  throw UsageError("unknown engine '" + name +
                   "' (expected scalar or batched)");
}

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kScalar: return "scalar";
    case Engine::kBatched: return "batched";
  }
  return "?";
}

namespace {

/// What one wave cost, whichever engine ran it.
struct WaveRun {
  double device_seconds = 0.0;
  std::size_t peak_device_bytes = 0;
};

/// The engine-agnostic adaptive loop: `run_wave(sources, weights, moments)`
/// executes one wave and reports its modeled cost; everything else
/// (sampling, folding, the stopping rule, the left-fold accounting) is
/// shared between the single-device and distributed drivers.
template <typename RunWave>
ApproxResult adaptive_loop(const graph::EdgeList& graph,
                           const ApproxOptions& options, RunWave&& run_wave) {
  const vidx_t n = graph.num_vertices();
  TBC_CHECK(n > 0, "approx BC needs a non-empty graph");

  PivotSampler sampler(graph, options.sampler, options.seed,
                       options.components);

  EstimatorOptions eopt;
  eopt.epsilon = options.epsilon;
  eopt.delta = options.delta;
  eopt.top_k = options.top_k;
  eopt.num_vertices = n;
  eopt.directed = graph.directed();
  eopt.max_weight = sampler.max_weight();
  IncrementalEstimator estimator(eopt);

  const vidx_t budget = options.max_sources > 0 ? options.max_sources : n;
  vidx_t wave_size = options.initial_wave > 0
                         ? options.initial_wave
                         : std::max<vidx_t>(8, std::min<vidx_t>(n, 32));

  ApproxResult result;
  std::vector<vidx_t> sources;
  std::vector<double> weights;
  while (result.sources_used < budget && !result.converged) {
    const vidx_t this_wave =
        std::min<vidx_t>(wave_size, budget - result.sources_used);
    sources.clear();
    weights.clear();
    sampler.draw(static_cast<std::size_t>(this_wave), sources, weights);

    bc::TurboBC::MomentResult moments;
    const WaveRun run = run_wave(sources, weights, moments);
    estimator.fold_wave(moments, sources.size());
    const bool converged = estimator.check_stop();

    WaveStats wave;
    wave.sources = this_wave;
    wave.device_seconds = run.device_seconds;
    wave.peak_device_bytes = run.peak_device_bytes;
    wave.max_half_width = estimator.max_half_width();
    wave.converged = converged;
    result.waves.push_back(wave);

    // Left fold in wave order — the accounting the oracle recomputes.
    result.device_seconds += run.device_seconds;
    result.peak_device_bytes =
        std::max(result.peak_device_bytes, run.peak_device_bytes);
    result.sources_used += this_wave;
    result.converged = converged;

    wave_size = std::min<vidx_t>(wave_size * 2, budget);
  }

  result.bc = estimator.estimates();
  result.half_width = estimator.half_widths();
  result.norm = estimator.norm();
  result.max_half_width = estimator.max_half_width();
  return result;
}

}  // namespace

ApproxResult run_adaptive(sim::Device& device, const graph::EdgeList& graph,
                          const ApproxOptions& options) {
  // Graph upload happens once, here — waves only pay per-source work.
  std::optional<bc::TurboBC> scalar;
  std::optional<bc::TurboBCBatched> batched;
  if (options.engine == Engine::kScalar) {
    bc::BcOptions bopt;
    bopt.variant = options.variant;
    bopt.advance = options.advance;
    scalar.emplace(device, graph, bopt);
  } else {
    bc::BatchedOptions bopt;
    bopt.batch_size = options.batch_size;
    bopt.advance = options.advance;
    batched.emplace(device, graph, bopt);
  }

  return adaptive_loop(
      graph, options,
      [&](const std::vector<vidx_t>& sources,
          const std::vector<double>& weights,
          bc::TurboBC::MomentResult& moments) {
        const bc::BcResult run =
            scalar ? scalar->run_sources_moments(sources, weights, moments)
                   : batched->run_sources_moments(sources, weights, moments);
        return WaveRun{run.device_seconds, run.peak_device_bytes};
      });
}

ApproxResult run_adaptive(dist::DistTurboBC& engine,
                          const graph::EdgeList& graph,
                          const ApproxOptions& options) {
  TBC_CHECK(engine.strategy() == dist::Strategy::kReplicate,
            "distributed approx waves need the replicated strategy");
  return adaptive_loop(
      graph, options,
      [&](const std::vector<vidx_t>& sources,
          const std::vector<double>& weights,
          bc::TurboBC::MomentResult& moments) {
        const dist::DistResult run =
            engine.run_sources_moments(sources, weights, moments);
        return WaveRun{run.device_seconds, run.max_peak_bytes};
      });
}

}  // namespace turbobc::approx
