#include "approx/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace turbobc::approx {

IncrementalEstimator::IncrementalEstimator(const EstimatorOptions& options)
    : options_(options) {
  TBC_CHECK(options_.num_vertices > 0, "estimator needs num_vertices");
  TBC_CHECK(options_.epsilon > 0.0, "epsilon must be positive");
  TBC_CHECK(options_.delta > 0.0 && options_.delta < 1.0,
            "delta must be in (0, 1)");
  TBC_CHECK(options_.max_weight > 0.0, "max_weight must be positive");
  TBC_CHECK(options_.top_k >= 0 && options_.top_k <= options_.num_vertices,
            "top_k must be in [0, n]");
  const auto n = static_cast<double>(options_.num_vertices);
  const double cscale = options_.directed ? 1.0 : 0.5;
  norm_ = std::max(1.0, cscale * (n - 1.0) * (n - 2.0));
  range_ = options_.max_weight * cscale * std::max(n - 2.0, 0.0);
  const auto nsz = static_cast<std::size_t>(options_.num_vertices);
  sum_.assign(nsz, 0.0);
  sumsq_.assign(nsz, 0.0);
  half_width_.assign(nsz, range_ > 0.0 ? range_ : 0.0);
  max_half_width_ = half_width_.empty() ? 0.0 : half_width_[0];
}

void IncrementalEstimator::fold_wave(const bc::TurboBC::MomentResult& wave,
                                     std::size_t wave_samples) {
  TBC_CHECK(wave.sum.size() == sum_.size() &&
                wave.sumsq.size() == sumsq_.size(),
            "wave moment size mismatch");
  TBC_CHECK(wave_samples > 0, "wave must contain at least one pivot");
  for (std::size_t v = 0; v < sum_.size(); ++v) {
    sum_[v] += wave.sum[v];
    sumsq_[v] += wave.sumsq[v];
  }
  samples_ += wave_samples;
}

std::vector<bc_t> IncrementalEstimator::estimates() const {
  std::vector<bc_t> est(sum_.size(), 0.0);
  if (samples_ == 0) return est;
  const auto k = static_cast<double>(samples_);
  for (std::size_t v = 0; v < sum_.size(); ++v) {
    est[v] = sum_[v] / k;
  }
  return est;
}

bool IncrementalEstimator::check_stop() {
  ++checks_;
  if (samples_ < 2) return false;  // EB needs k >= 2; keep prior widths
  const auto k = static_cast<double>(samples_);
  const auto n = static_cast<double>(options_.num_vertices);

  // Optional-stopping delta schedule: this check spends delta / 2^j, split
  // between the two bound families and union-bounded over vertices.
  const double delta_j =
      options_.delta / std::ldexp(1.0, static_cast<int>(
                                           std::min<std::size_t>(checks_, 960)));
  const double dpp = delta_j / (2.0 * n);

  const double hoeffding =
      range_ * std::sqrt(std::log(2.0 / dpp) / (2.0 * k));
  const double log_eb = std::log(4.0 / dpp);
  const double eb_tail = 7.0 * range_ * log_eb / (3.0 * (k - 1.0));

  max_half_width_ = 0.0;
  for (std::size_t v = 0; v < sum_.size(); ++v) {
    const double mean = sum_[v] / k;
    // Unbiased sample variance from the raw moments, clamped against
    // cancellation.
    const double var =
        std::max(0.0, (sumsq_[v] / k - mean * mean) * (k / (k - 1.0)));
    const double bernstein =
        std::sqrt(2.0 * var * log_eb / k) + eb_tail;
    const double h = std::min(hoeffding, bernstein);
    half_width_[v] = h;
    max_half_width_ = std::max(max_half_width_, h);
  }

  const double target = options_.epsilon * norm_;
  if (options_.top_k == 0) {
    return max_half_width_ <= target;
  }

  // Top-k rank stability: order vertices by estimate (ties by index, so the
  // ranking is deterministic) and require the best EXCLUDED vertex's upper
  // bound to clear the k-th INCLUDED vertex's lower bound up to the slack.
  const auto kk = static_cast<std::size_t>(options_.top_k);
  if (kk >= sum_.size()) return max_half_width_ <= target;
  std::vector<std::size_t> order(sum_.size());
  for (std::size_t v = 0; v < order.size(); ++v) order[v] = v;
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(kk - 1),
                   order.end(), [&](std::size_t a, std::size_t b) {
                     if (sum_[a] != sum_[b]) return sum_[a] > sum_[b];
                     return a < b;
                   });
  const std::size_t kth = order[kk - 1];
  const double kth_lower = sum_[kth] / k - half_width_[kth];
  double excluded_upper = -1.0;
  for (std::size_t i = kk; i < order.size(); ++i) {
    const std::size_t v = order[i];
    excluded_upper = std::max(excluded_upper, sum_[v] / k + half_width_[v]);
  }
  return excluded_upper - kth_lower <= target;
}

}  // namespace turbobc::approx
