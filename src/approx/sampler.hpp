// Pivot samplers for approximate BC (the sampling side of src/approx/).
//
// Approximate BC estimates the exact sum over all n sources from a random
// subset of "pivot" sources (Brandes & Pich 2007; Bader et al. 2007). This
// sampler draws pivots i.i.d. WITH replacement so each draw is an
// independent sample of the same random variable — exactly what the
// Hoeffding / empirical-Bernstein bounds in estimator.hpp assume — and
// attaches the importance weight w_s = 1 / p_s to every draw, making
//   x_s(v) = w_s * c_s(v)
// an unbiased per-draw sample of BC(v) for ANY draw distribution p
// (c_s(v) is source s's dependency contribution). Three distributions:
//
//   uniform    p_s = 1/n                       (the classical estimator)
//   degree     p_s = (out_deg(s)+1) / (m+n)    (hubs first: high-degree
//              sources tend to reach more of the graph per wave; the +1
//              keeps isolated vertices reachable so p is a distribution)
//   component  p_s = 1 / (n_comp * |C(s)|)     (component uniform, then
//              vertex uniform inside it: small components are not starved
//              the way size-proportional sampling starves them)
//
// All draws use integer-only Xoshiro256 arithmetic (Lemire reduction), so
// the pivot sequence is bit-reproducible from the seed alone, on every
// platform, at every --threads width.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "common/types.hpp"
#include "graph/components.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::approx {

enum class SamplerKind {
  kUniform,
  kDegree,
  kComponent,
};

/// "uniform" / "degree" / "component". Throws UsageError otherwise.
SamplerKind parse_sampler(const std::string& name);
const char* sampler_name(SamplerKind kind);

class PivotSampler {
 public:
  /// `components` optionally supplies a precomputed weakly-connected
  /// component map for the kComponent sampler (must match `graph`; ignored
  /// by the other kinds). When null the sampler runs its own label sweep —
  /// passing a cached map lets a caller that samples the same graph
  /// repeatedly (the adaptive driver, the qa oracle's engine-agreement
  /// runs) pay for the sweep once. The sampled distribution is identical
  /// either way.
  PivotSampler(const graph::EdgeList& graph, SamplerKind kind,
               std::uint64_t seed,
               const graph::Components* components = nullptr);

  /// Draw `count` pivots, appending to both vectors (kept parallel).
  void draw(std::size_t count, std::vector<vidx_t>& sources,
            std::vector<double>& weights);

  SamplerKind kind() const noexcept { return kind_; }
  /// sup_s w_s — the scale factor of the per-draw sample range, needed by
  /// the estimator's Hoeffding bound.
  double max_weight() const noexcept { return max_weight_; }

 private:
  SamplerKind kind_;
  Xoshiro256 rng_;
  vidx_t n_ = 0;
  double max_weight_ = 0.0;
  /// Degree sampler: cum_[v] = sum_{u <= v} (out_deg(u)+1), searched by
  /// upper_bound on a uniform draw in [0, cum_.back()).
  std::vector<std::uint64_t> cum_;
  /// Component sampler: vertices grouped by component, plus per-component
  /// weight n_comp * |C|.
  std::vector<std::vector<vidx_t>> comp_vertices_;
};

}  // namespace turbobc::approx
