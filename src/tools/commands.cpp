#include "tools/commands.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <optional>
#include <ostream>

#include "approx/driver.hpp"
#include "baselines/brandes.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "core/autotune.hpp"
#include "core/footprint.hpp"
#include "core/turbobc.hpp"
#include "core/turbobc_batched.hpp"
#include "core/turbobfs.hpp"
#include "dist/dist_turbobc.hpp"
#include "generators/generators.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/topology.hpp"
#include "gpusim/trace.hpp"
#include "graph/bfs_probe.hpp"
#include "graph/mtx_io.hpp"
#include "graph/stats.hpp"
#include "hybrid/hybrid_bc.hpp"
#include "daemon/client.hpp"
#include "daemon/server.hpp"
#include "serve/session.hpp"
#include "storage/mtx_stream.hpp"
#include "storage/streaming_bc.hpp"

namespace turbobc::tools {

namespace {

graph::EdgeList load_graph(const CliArgs& args, std::size_t positional_index) {
  TBC_CHECK(args.positional().size() > positional_index,
            "missing graph file argument");
  return graph::read_matrix_market_file(args.positional()[positional_index]);
}

/// --compress ingests through the chunked out-of-core loader instead of the
/// whole-file reader; the compressed image is kept for the streaming engine
/// and inflated for everything that takes an EdgeList. Returns the edge
/// list; `cgraph` receives the compressed image only under --compress.
graph::EdgeList load_graph_maybe_compressed(
    const CliArgs& args, std::size_t positional_index,
    std::optional<storage::CompressedCsc>& cgraph) {
  if (!args.has("compress")) return load_graph(args, positional_index);
  TBC_CHECK(args.positional().size() > positional_index,
            "missing graph file argument");
  cgraph = storage::read_matrix_market_compressed_file(
      args.positional()[positional_index]);
  return storage::to_edge_list(*cgraph);
}

bc::Variant parse_variant(const CliArgs& args, const graph::EdgeList& g) {
  const std::string v = args.get("variant", "auto");
  if (v == "sccooc") return bc::Variant::kScCooc;
  if (v == "sccsc") return bc::Variant::kScCsc;
  if (v == "vecsc") return bc::Variant::kVeCsc;
  if (v == "autotune") {
    return bc::autotune_variant(g, 0).best;
  }
  if (v != "auto") {
    throw UsageError("unknown variant '" + v +
                     "' (expected auto|autotune|sccooc|sccsc|vecsc)");
  }
  return bc::select_variant(g);
}

bc::Advance parse_advance(const CliArgs& args) {
  const std::string a = args.get("advance", "push");
  if (a == "push") return bc::Advance::kPush;
  if (a == "pull") return bc::Advance::kPull;
  if (a == "auto") return bc::Advance::kAuto;
  throw UsageError("unknown --advance '" + a + "' (expected push|pull|auto)");
}

std::vector<vidx_t> top_order(const std::vector<bc_t>& bc, int k) {
  std::vector<vidx_t> order(bc.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](vidx_t a, vidx_t b) {
    return bc[static_cast<std::size_t>(a)] > bc[static_cast<std::size_t>(b)];
  });
  order.resize(std::min<std::size_t>(order.size(),
                                     static_cast<std::size_t>(std::max(k, 0))));
  return order;
}

void print_top_vertices(std::ostream& out, const std::vector<bc_t>& bc,
                        int k) {
  Table t({"rank", "vertex", "bc"});
  int rank = 0;
  for (const vidx_t v : top_order(bc, k)) {
    t.add_row({std::to_string(++rank), std::to_string(v),
               fixed(bc[static_cast<std::size_t>(v)], 3)});
  }
  t.print(out);
}

/// --devices / --nvlink into a modeled node description.
sim::TopologyProps topology_props(const CliArgs& args, int default_devices) {
  sim::TopologyProps props;
  props.num_devices =
      static_cast<int>(args.get_count("devices", default_devices));
  props.nvlink = args.has("nvlink");
  return props;
}

/// The same without-replacement uniform draw as TurboBC::run_approximate, so
/// `bc --approx K --devices D` estimates from the identical pivot set (and
/// hence, replicated, the identical scaled BC values) as one device.
std::vector<vidx_t> sample_uniform_sources(vidx_t n, vidx_t k,
                                           std::uint64_t seed) {
  TBC_CHECK(k > 0, "need at least one sampled source");
  k = std::min(k, n);
  Xoshiro256 rng(seed);
  std::vector<char> chosen(static_cast<std::size_t>(n), 0);
  std::vector<vidx_t> sources;
  sources.reserve(static_cast<std::size_t>(k));
  while (static_cast<vidx_t>(sources.size()) < k) {
    const auto v =
        static_cast<vidx_t>(rng.uniform(static_cast<std::uint64_t>(n)));
    if (!chosen[static_cast<std::size_t>(v)]) {
      chosen[static_cast<std::size_t>(v)] = 1;
      sources.push_back(v);
    }
  }
  return sources;
}

}  // namespace

std::string cli_usage() {
  return
      "turbobc_cli — linear-algebraic betweenness centrality toolkit\n"
      "\n"
      "usage:\n"
      "  turbobc_cli info [--devices 4] [--nvlink] [--json]\n"
      "      modeled hardware: per-device resources (SMs, clock, memory,\n"
      "      bandwidth) and the interconnect cost model behind --devices\n"
      "  turbobc_cli generate --family F --out g.mtx [family options]\n"
      "      families: mycielski (--order), kronecker (--scale\n"
      "      --edge-factor), smallworld (--n --k --p), grid (--rows --cols),\n"
      "      road (--rows --cols --subdiv), erdos-renyi (--n --arcs\n"
      "      [--undirected]), preferential (--n --m-attach [--directed]);\n"
      "      all accept --seed\n"
      "  turbobc_cli stats g.mtx [--json]\n"
      "  turbobc_cli bfs g.mtx [--source 0] [--variant auto]\n"
      "      [--advance push|pull|auto] [--compress]\n"
      "  turbobc_cli bc g.mtx [--source S | --exact [--batch K] | --approx K]\n"
      "      [--variant auto|autotune|sccooc|sccsc|vecsc] [--edge-bc]\n"
      "      [--advance push|pull|auto] [--top 10] [--verify] [--json]\n"
      "      [--trace out.json]\n"
      "      [--devices K] [--dist auto|replicate|partition] [--nvlink]\n"
      "      [--compress] [--stream-window W [--stream-shards K]]\n"
      "      [--hybrid]\n"
      "      --advance picks the forward sweep: 'push' expands the frontier\n"
      "      (the paper's SpMV), 'pull' has undiscovered columns probe a\n"
      "      frontier bitmap, 'auto' switches per level by the Beamer\n"
      "      alpha/beta rule at 7n + m + ceil(n/32) words; every mode's\n"
      "      modeled results are bit-identical to push\n"
      "      --devices > 1 scales out over a modeled multi-GPU node:\n"
      "      'replicate' fans source blocks across whole-graph replicas,\n"
      "      'partition' shards CSC column blocks so graphs past one\n"
      "      device's memory wall still run; 'auto' picks by footprint\n"
      "      --hybrid (with --exact) co-executes the 64-source blocks on\n"
      "      the host CPU model AND --devices K modeled GPUs from one work\n"
      "      queue — heavy blocks go to the devices, the tail backfills the\n"
      "      host — reporting the co-execution makespan and per-processor\n"
      "      utilization; BC stays bit-identical to the single-device run\n"
      "      --batch with --dist partition packs each source block into\n"
      "      per-vertex 64-bit masks (MS-BFS) so one mask word per vertex\n"
      "      per level crosses the interconnect for all lanes (push only)\n"
      "      --compress ingests the file through the chunked out-of-core\n"
      "      loader and keeps the graph as a delta-varint compressed CSC,\n"
      "      decoded inside the kernels; results stay bit-identical.\n"
      "      --stream-window W additionally leaves the compressed column\n"
      "      shards (--stream-shards, default 4) on the host and keeps only\n"
      "      W device-resident, fetching over the modeled PCIe link — how a\n"
      "      graph past one device's memory still completes (push only)\n"
      "  turbobc_cli approx g.mtx [--epsilon 0.05] [--delta 0.1] [--topk K]\n"
      "      [--seed 1] [--sampler uniform|degree|component]\n"
      "      [--engine scalar|batched] [--batch 8] [--max-sources N]\n"
      "      [--variant auto|autotune|sccooc|sccsc|vecsc]\n"
      "      [--advance push|pull|auto] [--top 10] [--json]\n"
      "      [--devices K] [--nvlink]\n"
      "      adaptive sampling until every vertex's confidence half-width\n"
      "      (or, with --topk, the top-k ranking) meets the target; same\n"
      "      seed => bit-identical output at every --threads\n"
      "  turbobc_cli serve g.mtx [--script session.txt] [--json] [--top 5]\n"
      "      [--variant auto|autotune|sccooc|sccsc|vecsc]\n"
      "      [--advance push|pull|auto]\n"
      "      [--sampler uniform|degree|component] [--seed 1]\n"
      "      dynamic-graph serving session: one command per line from\n"
      "      --script (or stdin) — 'bc [K]', 'top K', 'approx EPS [DELTA]',\n"
      "      'insert U V', 'delete U V', 'stats'; '#' starts a comment.\n"
      "      Edge updates invalidate only the sources whose BFS cone the\n"
      "      edge touches; queries recompute just those, and full-BC\n"
      "      answers stay bit-identical to `bc --exact` on the mutated\n"
      "      graph at every --threads\n"
      "      --wire switches to the daemon wire schema: every event is\n"
      "      stamped with the graph epoch and 'bc' carries a 64-bit FNV-1a\n"
      "      digest of the full BC vector's raw bytes; a daemon connection\n"
      "      replaying the same script produces the identical transcript\n"
      "  turbobc_cli daemon g.mtx --listen HOST:PORT|unix:PATH [--json]\n"
      "      [--top 5] [--queue-limit 8] [--readers 1] [--max-line 4096]\n"
      "      [--variant ...] [--advance ...] [--sampler ...] [--seed 1]\n"
      "      socket front-end for the serve session language, newline-\n"
      "      delimited, one thread per connection: queries (bc/top/approx/\n"
      "      stats) run concurrently under a shared lock, insert/delete\n"
      "      serialize under an exclusive lock with a bounded admission\n"
      "      queue (over-limit updates get an explicit 'busy' response);\n"
      "      every response is epoch-stamped (--wire schema). Extra wire\n"
      "      commands: 'metrics' (live counters: latency quantiles, cache\n"
      "      hit ratio, queue depth, modeled reader-lane clock) and\n"
      "      'shutdown' (graceful drain). --listen HOST:0 binds an\n"
      "      ephemeral port and prints it on the 'listening' line\n"
      "  turbobc_cli client --connect HOST:PORT|unix:PATH [--script f]\n"
      "      loopback client: stream commands from --script (or stdin) to\n"
      "      a daemon and copy responses to stdout until the server closes\n"
      "\n"
      "global options:\n"
      "  --threads N   host threads simulating the device (default: hardware\n"
      "                concurrency; 1 = serial). Modeled results are\n"
      "                bit-identical for every N.\n";
}

int cmd_info(const CliArgs& args, std::ostream& out, std::ostream& /*err*/) {
  const sim::TopologyProps props = topology_props(args, 4);
  const sim::DeviceProps& d = props.device;
  const sim::LinkProps& link = props.active_link();

  if (args.has("json")) {
    out << "{\n"
        << "  \"devices\": " << props.num_devices << ",\n"
        << "  \"device\": {\n"
        << "    \"name\": \"" << d.name << "\",\n"
        << "    \"sm_count\": " << d.sm_count << ",\n"
        << "    \"cores_per_sm\": " << d.cores_per_sm << ",\n"
        << "    \"issue_slots_per_sm\": " << d.issue_slots_per_sm << ",\n"
        << "    \"clock_ghz\": " << fixed(d.clock_hz / 1e9, 2) << ",\n"
        << "    \"global_mem_bytes\": " << d.global_mem_bytes << ",\n"
        << "    \"dram_bandwidth_gbps\": " << fixed(d.dram_bandwidth_bps / 1e9, 1)
        << ",\n"
        << "    \"peak_glt_gbps\": " << fixed(d.theoretical_glt_bps / 1e9, 1)
        << "\n"
        << "  },\n"
        << "  \"interconnect\": {\n"
        << "    \"name\": \"" << props.interconnect_name() << "\",\n"
        << "    \"bandwidth_gbps\": " << fixed(link.bandwidth_bps / 1e9, 1)
        << ",\n"
        << "    \"latency_us\": " << fixed(link.latency_s * 1e6, 1) << ",\n"
        << "    \"default_algo\": \""
        << sim::to_string(props.default_algo()) << "\"\n"
        << "  }\n"
        << "}\n";
    return 0;
  }

  Table t({"property", "value"});
  t.add_row({"device", d.name});
  t.add_row({"modeled devices", std::to_string(props.num_devices)});
  t.add_row({"SMs x cores/SM", std::to_string(d.sm_count) + " x " +
                                   std::to_string(d.cores_per_sm)});
  t.add_row({"issue slots / SM", std::to_string(d.issue_slots_per_sm)});
  t.add_row({"clock", fixed(d.clock_hz / 1e9, 2) + " GHz"});
  t.add_row({"global memory", human_bytes(d.global_mem_bytes)});
  t.add_row({"DRAM bandwidth", fixed(d.dram_bandwidth_bps / 1e9, 1) + " GB/s"});
  t.add_row({"peak GLT", fixed(d.theoretical_glt_bps / 1e9, 1) + " GB/s"});
  t.add_row({"interconnect", props.interconnect_name()});
  t.add_row({"link bandwidth", fixed(link.bandwidth_bps / 1e9, 1) + " GB/s"});
  t.add_row({"link latency", fixed(link.latency_s * 1e6, 1) + " us"});
  t.add_row({"collective schedule",
             std::string(sim::to_string(props.default_algo()))});
  t.print(out);
  return 0;
}

int cmd_generate(const CliArgs& args, std::ostream& out, std::ostream& err) {
  const std::string family = args.get("family", "");
  const std::string path = args.get("out", "");
  if (family.empty() || path.empty()) {
    err << "generate: --family and --out are required\n" << cli_usage();
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  graph::EdgeList g(0, true);
  if (family == "mycielski") {
    g = gen::mycielski(static_cast<int>(args.get_int("order", 10)));
  } else if (family == "kronecker") {
    g = gen::kronecker({.scale = static_cast<int>(args.get_int("scale", 12)),
                        .edge_factor =
                            args.get_double("edge-factor", 16.0),
                        .seed = seed});
  } else if (family == "smallworld") {
    g = gen::small_world({.n = static_cast<vidx_t>(args.get_int("n", 10000)),
                          .k = static_cast<int>(args.get_int("k", 10)),
                          .rewire_p = args.get_double("p", 0.1),
                          .seed = seed});
  } else if (family == "grid") {
    g = gen::triangulated_grid(
        static_cast<vidx_t>(args.get_int("rows", 100)),
        static_cast<vidx_t>(args.get_int("cols", 100)));
  } else if (family == "road") {
    g = gen::road_network(
        {.grid_rows = static_cast<vidx_t>(args.get_int("rows", 10)),
         .grid_cols = static_cast<vidx_t>(args.get_int("cols", 10)),
         .keep_p = args.get_double("keep", 0.7),
         .subdivisions = static_cast<int>(args.get_int("subdiv", 10)),
         .seed = seed});
  } else if (family == "erdos-renyi") {
    g = gen::erdos_renyi({.n = static_cast<vidx_t>(args.get_int("n", 1000)),
                          .arcs = args.get_int("arcs", 5000),
                          .directed = !args.has("undirected"),
                          .seed = seed});
  } else if (family == "preferential") {
    g = gen::preferential_attachment(
        {.n = static_cast<vidx_t>(args.get_int("n", 10000)),
         .m_attach = static_cast<int>(args.get_int("m-attach", 2)),
         .directed = args.has("directed"),
         .seed = seed});
  } else {
    err << "generate: unknown family '" << family << "'\n" << cli_usage();
    return 2;
  }

  graph::write_matrix_market_file(path, g);
  out << "wrote " << path << ": n = " << g.num_vertices()
      << ", arcs = " << g.num_arcs()
      << (g.directed() ? " (directed)" : " (undirected)") << '\n';
  return 0;
}

int cmd_stats(const CliArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional().size() < 2) {
    err << "stats: missing graph file\n" << cli_usage();
    return 2;
  }
  const auto g = load_graph(args, 1);
  const auto deg = graph::degree_stats(g);
  const double scf = graph::scf_index(g);
  const auto probe = graph::bfs_reference(
      graph::CscGraph::from_edges(g), 0);

  if (args.has("json")) {
    out << "{\n"
        << "  \"vertices\": " << g.num_vertices() << ",\n"
        << "  \"arcs\": " << g.num_arcs() << ",\n"
        << "  \"directed\": " << (g.directed() ? "true" : "false") << ",\n"
        << "  \"degree\": {\"max\": " << deg.max << ", \"mean\": "
        << fixed(deg.mean, 4) << ", \"stddev\": " << fixed(deg.stddev, 4)
        << "},\n"
        << "  \"scf_index\": " << fixed(scf, 4) << ",\n"
        << "  \"irregular\": " << (graph::is_irregular(g) ? "true" : "false")
        << ",\n"
        << "  \"suggested_variant\": \""
        << bc::to_string(bc::select_variant(g)) << "\",\n"
        << "  \"bfs_height\": " << probe.height << ",\n"
        << "  \"bfs_reached\": " << probe.reached << ",\n"
        << "  \"model_bytes\": "
        << bc::turbobc_model_bytes(g.num_vertices(), g.num_arcs()) << "\n"
        << "}\n";
    return 0;
  }

  Table t({"property", "value"});
  t.add_row({"vertices", human_count(static_cast<double>(g.num_vertices()))});
  t.add_row({"arcs", human_count(static_cast<double>(g.num_arcs()))});
  t.add_row({"directed", g.directed() ? "yes" : "no"});
  t.add_row({"degree max/mean/std",
             human_count(static_cast<double>(deg.max)) + " / " +
                 fixed(deg.mean, 2) + " / " + fixed(deg.stddev, 2)});
  t.add_row({"scf index", fixed(scf, 1)});
  t.add_row({"class", graph::is_irregular(g) ? "irregular" : "regular"});
  t.add_row({"suggested variant",
             std::string(bc::to_string(bc::select_variant(g)))});
  t.add_row({"BFS depth from 0", std::to_string(probe.height)});
  t.add_row({"reached from 0", std::to_string(probe.reached)});
  t.add_row({"TurboBC footprint (7n+m)",
             human_bytes(bc::turbobc_model_bytes(g.num_vertices(),
                                                 g.num_arcs()))});
  t.print(out);
  return 0;
}

int cmd_bfs(const CliArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional().size() < 2) {
    err << "bfs: missing graph file\n" << cli_usage();
    return 2;
  }
  std::optional<storage::CompressedCsc> cgraph;
  const auto g = load_graph_maybe_compressed(args, 1, cgraph);
  const auto source = static_cast<vidx_t>(args.get_int("source", 0));
  const bc::Variant variant = parse_variant(args, g);
  const bc::Advance advance = parse_advance(args);

  sim::Device device;
  bc::TurboBfs bfs(device, g, variant, advance, {}, args.has("compress"));
  const auto r = bfs.run(source);

  out << "BFS from " << source << " ("
      << (args.has("compress") ? "compressed " : "") << bc::to_string(variant)
      << (advance != bc::Advance::kPush
              ? "/" + std::string(bc::to_string(advance))
              : "")
      << "): reached " << r.reached << "/" << g.num_vertices()
      << ", tree height " << r.height << ", modeled "
      << fixed(r.device_seconds * 1e3, 3) << " ms\n";

  // Depth histogram.
  std::vector<vidx_t> counts(static_cast<std::size_t>(r.height) + 1, 0);
  for (const vidx_t d : r.depth) {
    if (d >= 0) ++counts[static_cast<std::size_t>(d)];
  }
  Table t({"depth", "vertices"});
  for (std::size_t d = 0; d < counts.size(); ++d) {
    t.add_row({std::to_string(d), std::to_string(counts[d])});
  }
  t.print(out);
  return 0;
}

int cmd_bc(const CliArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional().size() < 2) {
    err << "bc: missing graph file\n" << cli_usage();
    return 2;
  }
  std::optional<storage::CompressedCsc> cgraph;
  const auto g = load_graph_maybe_compressed(args, 1, cgraph);
  bc::Variant variant = parse_variant(args, g);
  const bc::Advance advance = parse_advance(args);

  const auto devices = static_cast<int>(args.get_count("devices", 1));
  const bool hybrid_mode = args.has("hybrid");
  // --hybrid reinterprets --devices as its modeled GPU worker count, so it
  // never routes through the dist engine.
  const bool use_dist = !hybrid_mode && (devices > 1 || args.has("dist"));
  const bool want_trace = args.has("trace");
  const bool compress = args.has("compress");
  const bool streaming = args.has("stream-window");
  if (hybrid_mode) {
    if (!args.has("exact")) {
      throw UsageError("--hybrid needs --exact (co-execution splits the "
                       "all-sources block queue)");
    }
    if (args.has("dist")) {
      throw UsageError("--hybrid schedules its own devices (drop --dist; "
                       "--devices K sets the hybrid GPU worker count)");
    }
    if (args.has("edge-bc")) {
      throw UsageError("--hybrid does not support --edge-bc (the host path "
                       "accumulates vertex BC only)");
    }
    if (compress || streaming) {
      throw UsageError("--hybrid runs on the uncompressed resident graph "
                       "(drop --compress/--stream-window)");
    }
    if (args.has("batch")) {
      throw UsageError("--hybrid does not support --batch (blocks are the "
                       "scheduling unit already)");
    }
    if (advance != bc::Advance::kPush) {
      throw UsageError("--hybrid is push-only (the host path mirrors the "
                       "push sweep's arithmetic)");
    }
    if (want_trace) {
      throw UsageError("--trace is single-engine only (drop --hybrid)");
    }
  }
  if (compress && args.has("edge-bc")) {
    throw UsageError(
        "--compress does not support --edge-bc (the edge accumulator indexes "
        "arcs by raw nonzero position)");
  }
  if (compress && use_dist) {
    throw UsageError(
        "--compress is single-device (use --stream-window for graphs past "
        "one device's memory)");
  }
  if (streaming && !compress) {
    throw UsageError("--stream-window needs --compress");
  }
  if (streaming && advance != bc::Advance::kPush) {
    throw UsageError(
        "--stream-window is push-only (a direction-optimized sweep would "
        "re-fetch the shard window per level)");
  }
  if (streaming && args.has("batch")) {
    throw UsageError("--stream-window does not support --batch");
  }

  // Streamed out-of-core run: the compressed column shards stay on the host
  // and only --stream-window of them are device-resident at a time.
  std::optional<storage::StreamingLedger> sledger;
  int stream_shards = 0;
  bool stream_fetch_free = false;

  bc::BcResult r;
  std::string mode;
  std::optional<dist::DistResult> dres;  // multi-GPU extras for reporting
  std::optional<hybrid::HybridResult> hres;  // co-execution extras
  dist::Strategy strategy_used = dist::Strategy::kReplicate;
  std::unique_ptr<sim::Device> device;  // single-device path; kept for --trace
  if (hybrid_mode) {
    device = std::make_unique<sim::Device>();
    device->set_keep_launch_records(false);
    hybrid::HybridTurboBC engine(*device, g, {.variant = variant},
                                 {.devices = devices});
    variant = engine.options().variant;  // pinned to sccsc
    hres = engine.run_exact();
    r = std::move(hres->result);
    mode = "exact, hybrid";
  } else if (use_dist) {
    const auto strategy = dist::parse_strategy(args.get("dist", "auto"));
    if (!strategy) {
      throw UsageError("unknown --dist '" + args.get("dist", "auto") +
                       "' (expected auto|replicate|partition)");
    }
    if (args.has("batch") && *strategy != dist::Strategy::kPartition) {
      throw UsageError(
          "--batch with --devices needs --dist partition (replicated blocks "
          "already ride the single-device engine)");
    }
    if (args.has("batch") && advance != bc::Advance::kPush) {
      throw UsageError(
          "--dist partition --batch is push-only (masks are exchanged, not "
          "bitmaps)");
    }
    if (want_trace) {
      throw UsageError("--trace is single-device only (drop --devices)");
    }
    if (args.has("edge-bc") && *strategy == dist::Strategy::kPartition) {
      throw UsageError(
          "--edge-bc needs the replicated strategy (column shards do not own "
          "whole arcs)");
    }
    sim::Topology topo(topology_props(args, devices));
    const auto dist_batch =
        args.has("batch") ? static_cast<vidx_t>(args.get_count("batch", 8))
                          : 0;
    dist::DistTurboBC engine(topo, g,
                             {.strategy = *strategy,
                              .variant = variant,
                              .edge_bc = args.has("edge-bc"),
                              .advance = advance,
                              .batch_size = dist_batch});
    strategy_used = engine.strategy();
    const std::string batch_tag =
        dist_batch > 0 ? ", batched x" + std::to_string(dist_batch) : "";
    if (args.has("exact")) {
      dres = engine.run_exact();
      mode = "exact" + batch_tag;
    } else if (args.has("approx")) {
      const auto sources = sample_uniform_sources(
          g.num_vertices(), static_cast<vidx_t>(args.get_count("approx", 32)),
          static_cast<std::uint64_t>(args.get_int("seed", 1)));
      dres = engine.run_sources(sources);
      const bc_t scale = static_cast<bc_t>(g.num_vertices()) /
                         static_cast<bc_t>(sources.size());
      for (bc_t& v : dres->bc) v *= scale;
      for (bc_t& v : dres->edge_bc) v *= scale;
      mode = "approximate (" + std::to_string(dres->sources) + " sources)" +
             batch_tag;
    } else {
      dres = engine.run_single_source(
          static_cast<vidx_t>(args.get_int("source", 0)));
      mode = "single-source" + batch_tag;
    }
    r.bc = dres->bc;
    r.edge_bc = dres->edge_bc;
    r.sources = dres->sources;
    r.device_seconds = dres->device_seconds;
    r.peak_device_bytes = dres->max_peak_bytes;
  } else if (streaming) {
    device = std::make_unique<sim::Device>();
    device->set_keep_launch_records(want_trace);
    storage::StreamingTurboBC streng(
        *device, *cgraph,
        {.num_shards = static_cast<int>(args.get_count("stream-shards", 4)),
         .window = static_cast<int>(args.get_count("stream-window", 2))});
    if (args.has("exact")) {
      r = streng.run_exact();
      mode = "exact, streamed";
    } else if (args.has("approx")) {
      const auto sources = sample_uniform_sources(
          g.num_vertices(), static_cast<vidx_t>(args.get_count("approx", 32)),
          static_cast<std::uint64_t>(args.get_int("seed", 1)));
      r = streng.run_sources(sources);
      const bc_t scale = static_cast<bc_t>(g.num_vertices()) /
                         static_cast<bc_t>(sources.size());
      for (bc_t& v : r.bc) v *= scale;
      mode = "approximate (" + std::to_string(r.sources) +
             " sources), streamed";
    } else {
      r = streng.run_single_source(
          static_cast<vidx_t>(args.get_int("source", 0)));
      mode = "single-source, streamed";
    }
    sledger = streng.ledger();
    stream_shards = streng.num_shards();
    stream_fetch_free = streng.fetch_free();
  } else {
    device = std::make_unique<sim::Device>();
    device->set_keep_launch_records(want_trace);
    bc::TurboBC turbo(*device, g,
                      {.variant = variant,
                       .edge_bc = args.has("edge-bc"),
                       .advance = advance,
                       .compress = compress});

    if (args.has("exact") && args.has("batch")) {
      // Multi-source batched pipeline (scCSC-based SpMM; see
      // core/turbobc_batched.hpp).
      bc::TurboBCBatched batched(
          *device, g,
          {.batch_size = static_cast<vidx_t>(args.get_count("batch", 8)),
           .advance = advance,
           .compress = compress});
      r = batched.run_exact();
      mode = "exact, batched x" + std::to_string(args.get_count("batch", 8));
    } else if (args.has("exact")) {
      r = turbo.run_exact();
      mode = "exact";
    } else if (args.has("approx")) {
      r = turbo.run_approximate(
          {.num_sources = static_cast<vidx_t>(args.get_count("approx", 32)),
           .seed = static_cast<std::uint64_t>(args.get_int("seed", 1))});
      mode = "approximate (" + std::to_string(r.sources) + " sources)";
    } else {
      r = turbo.run_single_source(
          static_cast<vidx_t>(args.get_int("source", 0)));
      mode = "single-source";
    }
  }

  // Brandes verification, shared by the text and JSON paths: worst relative
  // error, or unset when the mode has no exact oracle.
  std::optional<double> verify_err;
  if (args.has("verify")) {
    std::vector<bc_t> golden;
    if (args.has("exact")) {
      golden = baseline::brandes_bc(g);
    } else if (!args.has("approx")) {
      golden = baseline::brandes_delta(
          g, static_cast<vidx_t>(args.get_int("source", 0)));
    }
    if (!golden.empty()) {
      double worst = 0.0;
      for (std::size_t v = 0; v < golden.size(); ++v) {
        worst = std::max(worst, std::abs(r.bc[v] - golden[v]) /
                                    std::max(1.0, std::abs(golden[v])));
      }
      verify_err = worst;
    }
  }

  const int top_k = static_cast<int>(args.get_int("top", 10));
  if (args.has("json")) {
    out << "{\n"
        << "  \"mode\": \"" << mode << "\",\n"
        << "  \"variant\": \"" << bc::to_string(variant) << "\",\n";
    if (advance != bc::Advance::kPush) {
      out << "  \"advance\": \"" << bc::to_string(advance) << "\",\n";
    }
    if (compress) {
      out << "  \"compress\": true,\n"
          << "  \"compressed_graph_bytes\": " << cgraph->model_bytes()
          << ",\n"
          << "  \"compression_ratio\": "
          << fixed(cgraph->compression_ratio(), 4) << ",\n";
    }
    if (sledger) {
      out << "  \"stream\": {\"window\": " << args.get_count("stream-window", 2)
          << ", \"shards\": " << stream_shards
          << ", \"fetch_free\": " << (stream_fetch_free ? "true" : "false")
          << ", \"uploads\": " << sledger->shard_uploads
          << ", \"upload_bytes\": " << sledger->upload_bytes
          << ", \"refetch_bytes\": " << sledger->refetch_bytes
          << ", \"evictions\": " << sledger->evictions << "},\n";
    }
    out << "  \"modeled_ms\": " << fixed(r.device_seconds * 1e3, 6) << ",\n"
        << "  \"peak_bytes\": " << r.peak_device_bytes << ",\n";
    if (dres) {
      out << "  \"devices\": " << devices << ",\n"
          << "  \"strategy\": \"" << dist::to_string(strategy_used) << "\",\n"
          << "  \"comm_ms\": " << fixed(dres->comm_seconds * 1e3, 6) << ",\n"
          << "  \"comm_bytes\": " << dres->comm_bytes << ",\n"
          << "  \"shards\": [";
      bool sfirst = true;
      for (const dist::ShardInfo& s : dres->shards) {
        out << (sfirst ? "" : ", ") << "{\"device\": " << s.device
            << ", \"variant\": \"" << bc::to_string(s.variant) << "\""
            << ", \"cols\": [" << s.col_begin << ", " << s.col_end << "]"
            << ", \"arcs\": " << s.arcs
            << ", \"peak_bytes\": " << s.peak_bytes
            << ", \"modeled_ms\": " << fixed(s.device_seconds * 1e3, 6)
            << ", \"sent_bytes\": " << s.comm_bytes_sent
            << ", \"received_bytes\": " << s.comm_bytes_received << "}";
        sfirst = false;
      }
      out << "],\n";
    }
    if (hres) {
      out << "  \"hybrid\": {\"devices\": " << devices
          << ", \"blocks\": " << hres->num_blocks
          << ", \"probe_block\": " << hres->probe_block
          << ", \"makespan_ms\": " << fixed(hres->makespan_seconds * 1e3, 6)
          << ", \"busy_ms\": " << fixed(hres->busy_seconds * 1e3, 6)
          << ", \"processors\": [";
      bool pfirst = true;
      for (const hybrid::ProcessorStat& p : hres->processors) {
        out << (pfirst ? "" : ", ") << "{\"name\": \"" << p.name
            << "\", \"blocks\": " << p.blocks
            << ", \"sources\": " << p.sources
            << ", \"busy_ms\": " << fixed(p.busy_seconds * 1e3, 6)
            << ", \"utilization\": " << fixed(p.utilization, 4) << "}";
        pfirst = false;
      }
      out << "]},\n";
    }
    out << "  \"top\": [";
    bool first = true;
    for (const vidx_t v : top_order(r.bc, top_k)) {
      out << (first ? "" : ", ") << "{\"vertex\": " << v << ", \"bc\": "
          << fixed(r.bc[static_cast<std::size_t>(v)], 6) << "}";
      first = false;
    }
    out << "]";
    if (args.has("edge-bc")) {
      bc_t top_edge = 0.0;
      for (const bc_t v : r.edge_bc) top_edge = std::max(top_edge, v);
      out << ",\n  \"edge_bc\": {\"arcs\": " << r.edge_bc.size()
          << ", \"max\": " << fixed(top_edge, 6) << "}";
    }
    if (verify_err) {
      out << ",\n  \"verify_max_rel_err\": " << fixed(*verify_err, 9);
    }
    out << "\n}\n";
  } else {
    out << mode << " BC via " << (compress ? "compressed " : "")
        << bc::to_string(variant)
        << (advance != bc::Advance::kPush
                ? "/" + std::string(bc::to_string(advance))
                : "")
        << ": "
        << fixed(r.device_seconds * 1e3, 3) << " ms modeled, peak "
        << human_bytes(r.peak_device_bytes) << '\n';
    if (compress) {
      out << "compressed graph: " << human_bytes(cgraph->model_bytes())
          << " (ratio " << fixed(cgraph->compression_ratio(), 2)
          << "x vs raw CSC)\n";
    }
    if (sledger) {
      out << "streamed " << stream_shards << " shards through a window of "
          << args.get_count("stream-window", 2) << ": "
          << sledger->shard_uploads << " uploads, "
          << human_bytes(sledger->upload_bytes) << " fetched ("
          << human_bytes(sledger->refetch_bytes) << " refetched, "
          << sledger->evictions << " evictions"
          << (stream_fetch_free ? ", fetch-free fast path" : "") << ")\n";
    }
    if (dres) {
      out << devices << " modeled devices, "
          << dist::to_string(strategy_used) << " strategy: comm "
          << fixed(dres->comm_seconds * 1e3, 3) << " ms, "
          << human_bytes(dres->comm_bytes) << " exchanged\n";
      Table st({"device", "variant", "cols", "arcs", "peak", "modeled ms",
                "sent", "received"});
      for (const dist::ShardInfo& s : dres->shards) {
        st.add_row({std::to_string(s.device),
                    std::string(bc::to_string(s.variant)),
                    "[" + std::to_string(s.col_begin) + ", " +
                        std::to_string(s.col_end) + ")",
                    std::to_string(s.arcs), human_bytes(s.peak_bytes),
                    fixed(s.device_seconds * 1e3, 3),
                    human_bytes(s.comm_bytes_sent),
                    human_bytes(s.comm_bytes_received)});
      }
      st.print(out);
    }
    if (hres) {
      out << "hybrid co-execution: " << devices
          << " modeled device(s) + host, " << hres->num_blocks
          << " blocks, makespan " << fixed(hres->makespan_seconds * 1e3, 3)
          << " ms (serial busy " << fixed(hres->busy_seconds * 1e3, 3)
          << " ms)\n";
      Table ht({"processor", "blocks", "sources", "busy ms", "util"});
      for (const hybrid::ProcessorStat& p : hres->processors) {
        ht.add_row({p.name, std::to_string(p.blocks),
                    std::to_string(p.sources),
                    fixed(p.busy_seconds * 1e3, 3),
                    fixed(p.utilization, 3)});
      }
      ht.print(out);
    }
    print_top_vertices(out, r.bc, top_k);

    if (args.has("edge-bc")) {
      bc_t top_edge = 0.0;
      for (const bc_t v : r.edge_bc) top_edge = std::max(top_edge, v);
      out << "edge BC computed for " << r.edge_bc.size()
          << " arcs (max arc value " << fixed(top_edge, 3) << ")\n";
    }

    if (args.has("verify") && verify_err) {
      out << "verification vs Brandes: max rel err " << fixed(*verify_err, 9)
          << (*verify_err < 1e-6 ? " (OK)" : " (MISMATCH)") << '\n';
    } else if (args.has("verify")) {
      out << "verification: skipped (approximate mode has no exact oracle)\n";
    }
  }
  if (verify_err && *verify_err >= 1e-6) return 1;

  if (want_trace) {
    const std::string path = args.get("trace", "trace.json");
    std::ofstream f(path);
    sim::write_chrome_trace(f, *device);
    out << "kernel timeline written to " << path << '\n';
  }
  return 0;
}

int cmd_approx(const CliArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional().size() < 2) {
    err << "approx: missing graph file\n" << cli_usage();
    return 2;
  }
  const auto g = load_graph(args, 1);

  approx::ApproxOptions opt;
  opt.epsilon = args.get_double("epsilon", 0.05);
  opt.delta = args.get_double("delta", 0.1);
  opt.top_k = static_cast<vidx_t>(args.get_int("topk", 0));
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  opt.sampler = approx::parse_sampler(args.get("sampler", "uniform"));
  opt.engine = approx::parse_engine(args.get("engine", "scalar"));
  opt.variant = parse_variant(args, g);
  opt.advance = parse_advance(args);
  opt.batch_size = static_cast<vidx_t>(args.get_count("batch", 8));
  opt.max_sources = static_cast<vidx_t>(args.get_int("max-sources", 0));
  opt.initial_wave = static_cast<vidx_t>(args.get_int("initial-wave", 0));
  if (opt.epsilon <= 0.0) throw UsageError("--epsilon must be positive");
  if (opt.delta <= 0.0 || opt.delta >= 1.0) {
    throw UsageError("--delta must be in (0, 1)");
  }
  if (opt.top_k < 0 || opt.top_k > g.num_vertices()) {
    throw UsageError("--topk must be in [0, n]");
  }

  const auto devices = static_cast<int>(args.get_count("devices", 1));
  approx::ApproxResult r;
  if (devices > 1 || args.has("dist")) {
    if (opt.engine == approx::Engine::kBatched) {
      throw UsageError("--engine batched is single-device only");
    }
    const auto strategy = dist::parse_strategy(args.get("dist", "replicate"));
    if (!strategy) {
      throw UsageError("unknown --dist '" + args.get("dist", "replicate") +
                       "' (expected auto|replicate|partition)");
    }
    if (*strategy == dist::Strategy::kPartition) {
      throw UsageError(
          "approx: moment waves need whole-graph replicas (--dist replicate)");
    }
    sim::Topology topo(topology_props(args, devices));
    dist::DistTurboBC engine(
        topo, g, {.strategy = dist::Strategy::kReplicate,
                  .variant = opt.variant,
                  .advance = opt.advance});
    r = approx::run_adaptive(engine, g, opt);
  } else {
    sim::Device device;
    r = approx::run_adaptive(device, g, opt);
  }

  const int top_k = static_cast<int>(
      args.get_int("top", opt.top_k > 0 ? opt.top_k : 10));
  if (args.has("json")) {
    out << "{\n"
        << "  \"mode\": \"approx\",\n"
        << "  \"sampler\": \"" << approx::sampler_name(opt.sampler) << "\",\n"
        << "  \"engine\": \"" << approx::engine_name(opt.engine) << "\",\n"
        << "  \"variant\": \"" << bc::to_string(opt.variant) << "\",\n"
        << "  \"epsilon\": " << fixed(opt.epsilon, 6) << ",\n"
        << "  \"delta\": " << fixed(opt.delta, 6) << ",\n"
        << "  \"topk\": " << opt.top_k << ",\n"
        << "  \"seed\": " << opt.seed << ",\n";
    if (devices > 1) out << "  \"devices\": " << devices << ",\n";
    out << "  \"vertices\": " << g.num_vertices() << ",\n"
        << "  \"sources_used\": " << r.sources_used << ",\n"
        << "  \"exact_sources\": " << g.num_vertices() << ",\n"
        << "  \"converged\": " << (r.converged ? "true" : "false") << ",\n"
        << "  \"modeled_ms\": " << fixed(r.device_seconds * 1e3, 6) << ",\n"
        << "  \"peak_bytes\": " << r.peak_device_bytes << ",\n"
        << "  \"norm\": " << fixed(r.norm, 6) << ",\n"
        << "  \"max_half_width\": " << fixed(r.max_half_width, 6) << ",\n"
        << "  \"max_rel_half_width\": "
        << fixed(r.max_half_width / r.norm, 9) << ",\n"
        << "  \"waves\": [";
    bool first = true;
    for (const approx::WaveStats& w : r.waves) {
      out << (first ? "" : ", ") << "{\"sources\": " << w.sources
          << ", \"modeled_ms\": " << fixed(w.device_seconds * 1e3, 6)
          << ", \"max_half_width\": " << fixed(w.max_half_width, 6)
          << ", \"converged\": " << (w.converged ? "true" : "false") << "}";
      first = false;
    }
    out << "],\n  \"top\": [";
    first = true;
    for (const vidx_t v : top_order(r.bc, top_k)) {
      out << (first ? "" : ", ") << "{\"vertex\": " << v << ", \"bc\": "
          << fixed(r.bc[static_cast<std::size_t>(v)], 6)
          << ", \"half_width\": "
          << fixed(r.half_width[static_cast<std::size_t>(v)], 6) << "}";
      first = false;
    }
    out << "]\n}\n";
  } else {
    out << "approx BC (" << approx::sampler_name(opt.sampler) << " pivots, "
        << approx::engine_name(opt.engine) << " engine, "
        << (devices > 1 ? std::to_string(devices) + " devices, " : "")
        << bc::to_string(opt.variant) << "): " << r.sources_used << "/"
        << g.num_vertices() << " sources, "
        << (r.converged ? "converged" : "budget exhausted") << ", "
        << fixed(r.device_seconds * 1e3, 3) << " ms modeled, peak "
        << human_bytes(r.peak_device_bytes) << '\n'
        << "max half-width " << fixed(r.max_half_width, 3) << " ("
        << fixed(100.0 * r.max_half_width / r.norm, 4)
        << "% of max possible BC) at confidence "
        << fixed(100.0 * (1.0 - opt.delta), 1) << "%\n";

    Table waves({"wave", "sources", "modeled ms", "max half-width"});
    int wave_no = 0;
    for (const approx::WaveStats& w : r.waves) {
      waves.add_row({std::to_string(++wave_no), std::to_string(w.sources),
                     fixed(w.device_seconds * 1e3, 3),
                     fixed(w.max_half_width, 3)});
    }
    waves.print(out);

    Table t({"rank", "vertex", "bc", "±"});
    int rank = 0;
    for (const vidx_t v : top_order(r.bc, top_k)) {
      t.add_row({std::to_string(++rank), std::to_string(v),
                 fixed(r.bc[static_cast<std::size_t>(v)], 3),
                 fixed(r.half_width[static_cast<std::size_t>(v)], 3)});
    }
    t.print(out);
  }
  return 0;
}

/// --variant/--advance/--sampler/--seed into serve-engine options (shared by
/// serve and daemon).
serve::ServeOptions parse_serve_engine_options(const CliArgs& args,
                                               const graph::EdgeList& g) {
  serve::ServeOptions opt;
  opt.variant = parse_variant(args, g);
  opt.advance = parse_advance(args);
  opt.sampler = approx::parse_sampler(args.get("sampler", "component"));
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  return opt;
}

int cmd_serve(const CliArgs& args, std::ostream& out, std::ostream& /*err*/) {
  graph::EdgeList g = load_graph(args, 1);
  serve::SessionOptions opt;
  opt.json = args.has("json");
  opt.wire = args.has("wire");
  const std::int64_t top = args.get_int("top", 5);
  if (top < 0) throw UsageError("--top must be >= 0");
  opt.top = static_cast<vidx_t>(top);
  opt.engine = parse_serve_engine_options(args, g);

  const std::string script = args.get("script", "");
  if (script.empty()) {
    serve::run_session(std::move(g), opt, std::cin, out);
  } else {
    std::ifstream in(script);
    if (!in) throw Error("serve: cannot open script '" + script + "'");
    serve::run_session(std::move(g), opt, in, out);
  }
  return 0;
}

int cmd_daemon(const CliArgs& args, std::ostream& out, std::ostream& /*err*/) {
  graph::EdgeList g = load_graph(args, 1);
  daemon::DaemonOptions opt;
  opt.listen = args.get("listen", "");
  if (opt.listen.empty()) {
    throw UsageError("daemon: --listen HOST:PORT or --listen unix:PATH is "
                     "required");
  }
  opt.json = args.has("json");
  const std::int64_t top = args.get_int("top", 5);
  if (top < 0) throw UsageError("--top must be >= 0");
  opt.top = static_cast<vidx_t>(top);
  // Counted flags go through get_count so zero, negatives, garbage, and
  // overflow all get the same prose usage error (exit 2) — the Scheduler
  // ctor no longer coerces zeros for callers that skip the CLI.
  opt.sched.update_queue_limit =
      static_cast<std::size_t>(args.get_count("queue-limit", 8));
  opt.sched.reader_lanes =
      static_cast<unsigned>(args.get_count("readers", 1));
  const std::int64_t max_line = args.get_int("max-line", 4096);
  if (max_line < 64) throw UsageError("--max-line must be >= 64");
  opt.max_line = static_cast<std::size_t>(max_line);
  opt.engine = parse_serve_engine_options(args, g);

  daemon::DaemonServer server(std::move(g), opt);
  server.start();
  // Scripts (CI's daemon-smoke) parse this line for the resolved ephemeral
  // port, so it must come out before the first connection is served.
  out << "daemon: listening on " << server.bound().display() << '\n';
  out.flush();
  server.wait();
  const daemon::Scheduler::Metrics m = server.scheduler().metrics();
  out << "daemon: stopped after " << server.connections_accepted()
      << " connection(s), " << m.queries << " queries, " << m.updates
      << " updates (epoch " << m.epoch << ")\n";
  return 0;
}

int cmd_client(const CliArgs& args, std::ostream& out, std::ostream& /*err*/) {
  daemon::ClientOptions opt;
  opt.connect = args.get("connect", "");
  if (opt.connect.empty()) {
    throw UsageError("client: --connect HOST:PORT or --connect unix:PATH is "
                     "required");
  }
  const std::string script = args.get("script", "");
  if (script.empty()) {
    return daemon::run_client(opt, std::cin, out);
  }
  std::ifstream in(script);
  if (!in) throw Error("client: cannot open script '" + script + "'");
  return daemon::run_client(opt, in, out);
}

int run_cli(const CliArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional().empty()) {
    err << cli_usage();
    return 2;
  }
  const std::string& cmd = args.positional()[0];
  try {
    // Pool width for the host-parallel simulation engine; every modeled
    // number is bit-identical for any width, so this is purely a wall-clock
    // knob. 0 = hardware concurrency.
    sim::ExecutorPool::instance().set_threads(
        static_cast<unsigned>(args.get_count("threads", 0)));
    if (cmd == "info") return cmd_info(args, out, err);
    if (cmd == "generate") return cmd_generate(args, out, err);
    if (cmd == "stats") return cmd_stats(args, out, err);
    if (cmd == "bfs") return cmd_bfs(args, out, err);
    if (cmd == "bc") return cmd_bc(args, out, err);
    if (cmd == "approx") return cmd_approx(args, out, err);
    if (cmd == "serve") return cmd_serve(args, out, err);
    if (cmd == "daemon") return cmd_daemon(args, out, err);
    if (cmd == "client") return cmd_client(args, out, err);
  } catch (const UsageError& e) {
    err << "error: " << e.what() << '\n' << cli_usage();
    return 2;
  } catch (const Error& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
  err << "unknown command '" << cmd << "'\n" << cli_usage();
  return 2;
}

}  // namespace turbobc::tools
