// turbobc_cli: command-line frontend. All logic lives in tools/commands.*
// so it can be unit-tested; this file only parses argv and dispatches.
#include <iostream>

#include "common/cli.hpp"
#include "tools/commands.hpp"

int main(int argc, char** argv) {
  const turbobc::CliArgs args(argc, argv);
  return turbobc::tools::run_cli(args, std::cout, std::cerr);
}
