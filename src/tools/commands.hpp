// Implementation of the turbobc_cli subcommands, as a library so tests can
// drive them directly. Each command reads options from CliArgs and writes
// human-readable output to a stream; the thin main() in tools/ dispatches.
//
// Subcommands:
//   info      — modeled hardware: device table plus interconnect cost model
//   generate  — synthesize a benchmark-family graph and write Matrix Market
//   stats     — structural profile of a .mtx graph (degrees, scf, class)
//   bfs       — TurboBFS from a source: depth histogram, reach, timing
//   bc        — betweenness centrality: single-source, exact, or sampled
//               approximate; optional edge BC; optional verification;
//               --devices K scales out over a modeled multi-GPU node
//   approx    — adaptive approximate BC to an (epsilon, delta) target or
//               stable top-k ranking (src/approx/ wave driver); --devices K
//               runs the waves on the replicated multi-GPU engine
//   serve     — long-running dynamic-graph session: load once, then run a
//               command script (bc / top / approx / insert / delete /
//               stats) against the incrementally-maintained cache
//               (src/serve/), from --script FILE or stdin; --wire renders
//               the daemon's epoch-stamped schema
//   daemon    — socket front-end (TCP or unix) for the serve session
//               language with concurrent readers, serialized updates under
//               a bounded admission queue, and a live metrics plane
//               (src/daemon/)
//   client    — loopback client driving a daemon from --script FILE or
//               stdin, printing responses verbatim
#pragma once

#include <iosfwd>
#include <string>

#include "common/cli.hpp"

namespace turbobc::tools {

/// Dispatch `args.positional()[0]` to a subcommand. Returns a process exit
/// code (0 on success); usage problems print help and return 2.
int run_cli(const CliArgs& args, std::ostream& out, std::ostream& err);

int cmd_info(const CliArgs& args, std::ostream& out, std::ostream& err);
int cmd_generate(const CliArgs& args, std::ostream& out, std::ostream& err);
int cmd_stats(const CliArgs& args, std::ostream& out, std::ostream& err);
int cmd_bfs(const CliArgs& args, std::ostream& out, std::ostream& err);
int cmd_bc(const CliArgs& args, std::ostream& out, std::ostream& err);
int cmd_approx(const CliArgs& args, std::ostream& out, std::ostream& err);
int cmd_serve(const CliArgs& args, std::ostream& out, std::ostream& err);
int cmd_daemon(const CliArgs& args, std::ostream& out, std::ostream& err);
int cmd_client(const CliArgs& args, std::ostream& out, std::ostream& err);

/// The help text (also printed on usage errors).
std::string cli_usage();

}  // namespace turbobc::tools
