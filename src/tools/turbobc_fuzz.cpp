// turbobc_fuzz: differential fuzzing of the BC stack against the invariant
// oracle (see src/qa/). Two modes:
//
//   turbobc_fuzz --seed S --budget N [--corpus-dir DIR] [--threads T]
//       run N seeded cases; exit 1 if any oracle violation was found
//       (minimized reproducers are written under --corpus-dir when given).
//
//   turbobc_fuzz --replay FILE [FILE...]
//       re-run the oracle on stored .fuzz cases; exit 1 if any fails.
//       Deterministic: same verdict and same minimized graph every run and
//       at every --threads width.
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "gpusim/executor.hpp"
#include "qa/fuzzer.hpp"

namespace {

void print_usage(std::ostream& out) {
  out << "usage: turbobc_fuzz [options]\n"
         "  --seed S          fuzz run seed (default 1)\n"
         "  --budget N        number of cases (default 1000)\n"
         "  --max-size K      largest size class 0..2 (default 2)\n"
         "  --corpus-dir DIR  write minimized reproducers here\n"
         "  --tolerance X     BC agreement tolerance (default 1e-7)\n"
         "  --threads T       host pool width (default: hardware)\n"
         "  --quiet           suppress progress output\n"
         "  --replay FILE...  replay stored .fuzz cases instead of fuzzing\n";
}

int run_replay(const std::vector<std::string>& files,
               const turbobc::qa::OracleOptions& oracle, bool quiet) {
  int failures = 0;
  for (const std::string& path : files) {
    const auto result = turbobc::qa::replay_file(path, oracle);
    if (result.failed) {
      ++failures;
      std::cout << path << ": FAIL — " << result.report.summary() << "\n";
      std::cout << "  minimized reproducer: n = "
                << result.minimized.explicit_n << ", "
                << result.minimized.explicit_edges.size() << " arcs\n";
      for (const auto& e : result.minimized.explicit_edges) {
        std::cout << "    arc " << e.u << " " << e.v << "\n";
      }
    } else if (!quiet) {
      std::cout << path << ": ok (" << result.report.summary() << ")\n";
    }
  }
  std::cout << files.size() << " case(s) replayed, " << failures
            << " failing\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const turbobc::CliArgs args(argc, argv);
  if (args.has("help")) {
    print_usage(std::cout);
    return 0;
  }

  try {
    // Count flags must be positive; absent --threads falls back to 0
    // ("hardware concurrency"). Parsing stays inside the try so a garbage
    // value is a prose exit-2 error, not an uncaught exception.
    turbobc::sim::ExecutorPool::instance().set_threads(
        static_cast<unsigned>(args.get_count("threads", 0)));

    turbobc::qa::OracleOptions oracle;
    oracle.tolerance = args.get_double("tolerance", oracle.tolerance);
    const bool quiet = args.has("quiet");

    if (args.has("replay")) {
      std::vector<std::string> files;
      files.push_back(args.get("replay", ""));
      files.insert(files.end(), args.positional().begin(),
                   args.positional().end());
      if (files.front().empty()) {
        print_usage(std::cerr);
        return 2;
      }
      return run_replay(files, oracle, quiet);
    }

    turbobc::qa::FuzzerOptions options;
    options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    options.budget = static_cast<int>(args.get_count("budget", 1000));
    options.max_size_class =
        static_cast<int>(args.get_int("max-size", turbobc::qa::kMaxSizeClass));
    options.corpus_dir = args.get("corpus-dir", "");
    options.oracle = oracle;
    options.log = quiet ? nullptr : &std::cerr;

    const auto summary = turbobc::qa::run_fuzzer(options);
    std::cout << "fuzz: " << summary.cases_run << " cases, "
              << summary.vertices_checked << " vertices / "
              << summary.arcs_checked << " arcs checked, "
              << summary.failures.size() << " oracle violation(s)\n";
    for (const auto& failure : summary.failures) {
      std::cout << "  " << failure.original.name << ": "
                << failure.report.primary_invariant();
      if (!failure.replay_path.empty()) {
        std::cout << " -> " << failure.replay_path;
      }
      std::cout << "\n";
    }
    return summary.ok() ? 0 : 1;
  } catch (const turbobc::Error& e) {
    std::cerr << "turbobc_fuzz: " << e.what() << "\n";
    return 2;
  }
}
