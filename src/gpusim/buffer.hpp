// RAII device-memory buffer for the simulated GPU.
//
// A DeviceBuffer owns host-side backing storage (the functional value of the
// device array) plus a registration with the device's MemoryManager (the
// byte-accounting value). Construction performs the simulated cudaMalloc —
// including the capacity check that produces DeviceOutOfMemory — and
// destruction the cudaFree. Kernel code accesses elements through the
// context-mediated load/store/atomic methods so every access is visible to
// the cost model; tests and verification code may use host() directly, which
// is free (it models reading results back after the experiment).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "gpusim/costmodel.hpp"
#include "gpusim/device.hpp"

namespace turbobc::sim {

namespace detail {

/// Element access for kernel code. In serial launches these are plain
/// reads/writes. During host-parallel launches (`concurrent == true`) they
/// go through relaxed std::atomic_ref so that the benign races the kernels
/// do have — distinct-index scatters from different warps, and same-value
/// flag stores (e.g. the BFS convergence flag, where every warp writes 1) —
/// are well-defined and TSan-clean. Relaxed ordering is sufficient: the
/// pool's job hand-off provides the acquire/release edges between the
/// launch and the merge.
template <typename T>
T read_elem(const T& slot, bool concurrent) {
  if (concurrent) {
    return std::atomic_ref<T>(const_cast<T&>(slot))
        .load(std::memory_order_relaxed);
  }
  return slot;
}

template <typename T>
void write_elem(T& slot, T value, bool concurrent) {
  if (concurrent) {
    std::atomic_ref<T>(slot).store(value, std::memory_order_relaxed);
  } else {
    slot = value;
  }
}

}  // namespace detail

template <typename T>
class DeviceBuffer {
 public:
  /// `modeled_elem_bytes` is the element width the *device* stores — what
  /// the memory accounting, address arithmetic and traffic model use. It
  /// defaults to sizeof(T) but is narrower wherever the paper's
  /// implementation uses a narrower type: TurboBC computes path counts and
  /// dependencies in host double for exactness, while the device arrays it
  /// models are the paper's 4-byte int/float words (Figure 4).
  DeviceBuffer(Device& device, std::size_t size, std::string name,
               std::size_t modeled_elem_bytes = sizeof(T))
      : device_(&device),
        name_(std::move(name)),
        data_(size),
        modeled_elem_bytes_(modeled_elem_bytes) {
    TBC_CHECK(modeled_elem_bytes_ >= 1 && modeled_elem_bytes_ <= 16,
              "modeled element width out of range for buffer " + name_);
    base_addr_ = device_->memory().allocate(bytes(), name_);
    device_->charge_alloc_overhead();
  }

  ~DeviceBuffer() { release(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& other) noexcept
      : device_(std::exchange(other.device_, nullptr)),
        name_(std::move(other.name_)),
        data_(std::move(other.data_)),
        base_addr_(other.base_addr_),
        modeled_integer_(other.modeled_integer_),
        modeled_elem_bytes_(other.modeled_elem_bytes_) {}

  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      device_ = std::exchange(other.device_, nullptr);
      name_ = std::move(other.name_);
      data_ = std::move(other.data_);
      base_addr_ = other.base_addr_;
      modeled_integer_ = other.modeled_integer_;
      modeled_elem_bytes_ = other.modeled_elem_bytes_;
    }
    return *this;
  }

  std::size_t size() const noexcept { return data_.size(); }
  /// Modeled device bytes (element count x modeled width).
  std::size_t bytes() const noexcept {
    return data_.size() * modeled_elem_bytes_;
  }
  std::size_t modeled_elem_bytes() const noexcept {
    return modeled_elem_bytes_;
  }
  const std::string& name() const noexcept { return name_; }
  std::uint64_t base_addr() const noexcept { return base_addr_; }

  std::uint64_t addr_of(std::size_t i) const noexcept {
    return base_addr_ + i * modeled_elem_bytes_;
  }

  // ---- Host-visible staging (free; setup and result verification). ----
  std::vector<T>& host() noexcept { return data_; }
  const std::vector<T>& host() const noexcept { return data_; }

  // ---- Charged bulk operations. ----

  /// Simulated cudaMemcpy HostToDevice.
  void copy_from_host(std::span<const T> src) {
    TBC_CHECK(src.size() == data_.size(),
              "copy_from_host size mismatch for buffer " + name_);
    std::copy(src.begin(), src.end(), data_.begin());
    device_->charge_transfer(bytes());
  }

  /// Simulated cudaMemcpy DeviceToHost.
  std::vector<T> copy_to_host() const {
    device_->charge_transfer(bytes());
    return data_;
  }

  /// Simulated cudaMemset / fill kernel.
  void device_fill(T value) {
    std::fill(data_.begin(), data_.end(), value);
    device_->charge_memset(bytes());
  }

  // ---- Kernel-side element access (context-mediated, cost-modeled). ----

  template <typename Ctx>
  T load(Ctx& ctx, std::size_t i) const {
    ctx.record(Access{addr_of(i),
                      static_cast<std::uint8_t>(modeled_elem_bytes_),
                      MemOp::kLoad});
    return detail::read_elem(data_[i], ctx.concurrent());
  }

  /// Vectorized load: `count` consecutive elements fetched as ONE modeled
  /// access of width count * modeled_elem_bytes (e.g. an aligned 4-byte word
  /// read from a byte stream — the compressed CSC's raw-column path). The
  /// combined width must fit one 16-byte vector lane, like CUDA's widest
  /// ld.v4 / uint4 load.
  template <typename Ctx>
  void load_span(Ctx& ctx, std::size_t i, std::size_t count, T* out) const {
    const std::size_t width = count * modeled_elem_bytes_;
    TBC_CHECK(width >= 1 && width <= 16,
              "load_span width out of vector-lane range for buffer " + name_);
    ctx.record(Access{addr_of(i), static_cast<std::uint8_t>(width),
                      MemOp::kLoad});
    for (std::size_t k = 0; k < count; ++k) {
      out[k] = detail::read_elem(data_[i + k], ctx.concurrent());
    }
  }

  template <typename Ctx>
  void store(Ctx& ctx, std::size_t i, T value) {
    ctx.record(Access{addr_of(i),
                      static_cast<std::uint8_t>(modeled_elem_bytes_),
                      MemOp::kStore});
    detail::write_elem(data_[i], value, ctx.concurrent());
  }

  /// Atomic add. The cost model charges atomic issue/serialization costs;
  /// integer and floating-point atomics are charged differently (see
  /// CostModel) and which rate applies is the buffer's *modeled* element
  /// kind, not the C++ type — see set_modeled_integer.
  ///
  /// Functionally: serial launches apply the add in place. Host-parallel
  /// launches apply integer adds eagerly (std::atomic_ref::fetch_add — sums
  /// are exact under any order) and *defer* floating-point adds to the
  /// shard merge, where they replay in warp order so the non-associative
  /// float accumulation matches serial execution bit-for-bit. The returned
  /// "old" value is exact in serial launches; kernels whose result depends
  /// on it (e.g. queue-slot allocation) must launch with
  /// LaunchPolicy::kSerialOnly. For deferred float adds the return value is
  /// the not-yet-merged element value, which no kernel relies on.
  template <typename Ctx>
  T atomic_add(Ctx& ctx, std::size_t i, T value) {
    ctx.record(Access{addr_of(i),
                      static_cast<std::uint8_t>(modeled_elem_bytes_),
                      atomic_op()});
    if (!ctx.concurrent()) {
      const T old = data_[i];
      data_[i] = static_cast<T>(old + value);
      return old;
    }
    if constexpr (std::is_integral_v<T>) {
      return std::atomic_ref<T>(data_[i]).fetch_add(value,
                                                    std::memory_order_relaxed);
    } else {
      ctx.defer_add(&data_[i], value);
      return detail::read_elem(data_[i], true);
    }
  }

  /// Override the datatype the cost model assumes for this array. TurboBC's
  /// BFS vectors are *functionally* double (path counts overflow integers)
  /// but are *modeled* as the integer arrays the paper's implementation uses
  /// (Section 3.4: int SpMV up to 2.7x faster) — unless the datatype
  /// ablation asks for float costing.
  void set_modeled_integer(bool modeled_integer) noexcept {
    modeled_integer_ = modeled_integer;
  }

  bool modeled_integer() const noexcept { return modeled_integer_; }

  MemOp atomic_op() const noexcept {
    return modeled_integer_ ? MemOp::kAtomic : MemOp::kAtomicFloat;
  }

 private:
  void release() noexcept {
    if (device_ != nullptr) {
      device_->memory().release(bytes());
      device_->charge_alloc_overhead();
      device_ = nullptr;
    }
  }

  Device* device_ = nullptr;
  std::string name_;
  std::vector<T> data_;
  std::uint64_t base_addr_ = 0;
  bool modeled_integer_ = std::is_integral_v<T>;
  std::size_t modeled_elem_bytes_ = sizeof(T);
};

}  // namespace turbobc::sim
