// The simulated GPU: execution resources, global memory, cost model, and the
// timeline of everything that ran on it.
//
// A Device accumulates *modeled* time: kernel launches (through the cost
// model), device-side memsets, cudaMalloc/cudaFree overheads and PCIe
// transfers. Benchmarks read the timeline instead of wall clocks so that the
// numbers are deterministic and comparable with the CPU machine model.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "gpusim/costmodel.hpp"
#include "gpusim/device_props.hpp"
#include "gpusim/memory.hpp"

namespace turbobc::sim {

/// Per-kernel-name aggregate over a timeline (the unit of the paper's
/// Figure 5b, which reports GLT for "the most important kernels").
struct KernelAggregate {
  std::uint64_t launches = 0;
  std::uint64_t load_transactions = 0;
  std::uint64_t store_transactions = 0;
  std::uint64_t l2_hit_transactions = 0;
  std::uint64_t dram_transactions = 0;
  /// 64-bit mask instructions (MS-BFS kernels only; see LaunchRecord).
  std::uint64_t word_ops = 0;
  double time_s = 0.0;

  double glt_bps(int sector_bytes) const {
    return time_s > 0.0 ? static_cast<double>(load_transactions) *
                              static_cast<double>(sector_bytes) / time_s
                        : 0.0;
  }
};

class Device {
 public:
  explicit Device(DeviceProps props = DeviceProps::titan_xp())
      : props_(props), memory_(props.global_mem_bytes), cost_(props) {}

  const DeviceProps& props() const noexcept { return props_; }
  MemoryManager& memory() noexcept { return memory_; }
  const MemoryManager& memory() const noexcept { return memory_; }
  CostModel& cost_model() noexcept { return cost_; }

  /// Record a finished launch (time must already be finalized).
  void commit_launch(LaunchRecord rec) {
    kernel_seconds_ += rec.time_s;
    auto it = aggregates_.find(rec.kernel);
    if (it == aggregates_.end()) {
      it = aggregates_.emplace(std::string(rec.kernel), KernelAggregate{})
               .first;
    }
    auto& agg = it->second;
    ++agg.launches;
    agg.load_transactions += rec.load_transactions;
    agg.store_transactions += rec.store_transactions;
    agg.l2_hit_transactions += rec.l2_hit_transactions;
    agg.dram_transactions += rec.dram_transactions;
    agg.word_ops += rec.word_ops;
    agg.time_s += rec.time_s;
    if (keep_launch_records_) launches_.push_back(std::move(rec));
  }

  void charge_memset(std::uint64_t bytes) {
    kernel_seconds_ += cost_.memset_time(bytes);
  }

  void charge_transfer(std::uint64_t bytes) {
    transfer_seconds_ += cost_.transfer_time(bytes);
  }

  void charge_alloc_overhead() { overhead_seconds_ += props_.alloc_overhead_s; }

  /// Record a modeled interconnect operation this device took part in (see
  /// gpusim/topology.hpp). Comm time is tracked separately from the three
  /// on-device clocks — total_seconds() stays "what this GPU did alone";
  /// the distributed driver folds comm into its critical-path clock once,
  /// at the topology level.
  void charge_comm(double seconds, std::uint64_t bytes_sent,
                   std::uint64_t bytes_received) {
    comm_seconds_ += seconds;
    comm_bytes_sent_ += bytes_sent;
    comm_bytes_received_ += bytes_received;
  }

  double comm_seconds() const noexcept { return comm_seconds_; }
  std::uint64_t comm_bytes_sent() const noexcept { return comm_bytes_sent_; }
  std::uint64_t comm_bytes_received() const noexcept {
    return comm_bytes_received_;
  }

  /// Modeled seconds spent in kernels (what the paper's runtime columns
  /// measure: BC computation time, transfers excluded).
  double kernel_seconds() const noexcept { return kernel_seconds_; }
  double transfer_seconds() const noexcept { return transfer_seconds_; }
  double overhead_seconds() const noexcept { return overhead_seconds_; }
  double total_seconds() const noexcept {
    return kernel_seconds_ + transfer_seconds_ + overhead_seconds_;
  }

  const std::vector<LaunchRecord>& launches() const noexcept {
    return launches_;
  }
  const std::map<std::string, KernelAggregate, std::less<>>&
  kernel_aggregates() const {
    return aggregates_;
  }

  /// Keep per-launch records (default). Exact-BC sweeps launch O(n * d)
  /// kernels; turn this off there and rely on the per-name aggregates.
  void set_keep_launch_records(bool keep) { keep_launch_records_ = keep; }
  bool keep_launch_records() const noexcept { return keep_launch_records_; }

  /// Fold another device's timeline into this one: launch records are
  /// appended in the other device's order, aggregates and clocks summed.
  /// The parallel source fan-out runs blocks of sources on replica devices
  /// and absorbs each replica in block order, so the merged timeline (and
  /// every float fold inside it) is identical for any host thread count.
  void absorb_timeline(const Device& other) {
    if (keep_launch_records_) {
      launches_.insert(launches_.end(), other.launches_.begin(),
                       other.launches_.end());
    }
    for (const auto& [name, agg] : other.aggregates_) {
      auto it = aggregates_.find(name);
      if (it == aggregates_.end()) {
        it = aggregates_.emplace(name, KernelAggregate{}).first;
      }
      auto& mine = it->second;
      mine.launches += agg.launches;
      mine.load_transactions += agg.load_transactions;
      mine.store_transactions += agg.store_transactions;
      mine.l2_hit_transactions += agg.l2_hit_transactions;
      mine.dram_transactions += agg.dram_transactions;
      mine.word_ops += agg.word_ops;
      mine.time_s += agg.time_s;
    }
    kernel_seconds_ += other.kernel_seconds_;
    transfer_seconds_ += other.transfer_seconds_;
    overhead_seconds_ += other.overhead_seconds_;
    comm_seconds_ += other.comm_seconds_;
    comm_bytes_sent_ += other.comm_bytes_sent_;
    comm_bytes_received_ += other.comm_bytes_received_;
  }

  /// Clear the timeline (records, aggregates, accumulated time) and the L2
  /// model. Live memory and the peak watermark are left untouched.
  void reset_timeline() {
    launches_.clear();
    aggregates_.clear();
    kernel_seconds_ = transfer_seconds_ = overhead_seconds_ = 0.0;
    comm_seconds_ = 0.0;
    comm_bytes_sent_ = comm_bytes_received_ = 0;
    cost_.reset_l2();
  }

 private:
  DeviceProps props_;
  MemoryManager memory_;
  CostModel cost_;
  std::vector<LaunchRecord> launches_;
  std::map<std::string, KernelAggregate, std::less<>> aggregates_;
  double kernel_seconds_ = 0.0;
  double transfer_seconds_ = 0.0;
  double overhead_seconds_ = 0.0;
  double comm_seconds_ = 0.0;
  std::uint64_t comm_bytes_sent_ = 0;
  std::uint64_t comm_bytes_received_ = 0;
  bool keep_launch_records_ = true;
};

}  // namespace turbobc::sim
