#include "gpusim/trace.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "common/format.hpp"
#include "common/table.hpp"

namespace turbobc::sim {

void print_kernel_profile(std::ostream& os, const Device& device) {
  struct Row {
    std::string name;
    const KernelAggregate* agg;
  };
  std::vector<Row> rows;
  for (const auto& [name, agg] : device.kernel_aggregates()) {
    rows.push_back({name, &agg});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.agg->time_s > b.agg->time_s;
  });

  const int sector = device.props().sector_bytes;
  Table t({"kernel", "launches", "total(ms)", "avg(us)", "ld tx", "st tx",
           "L2 hit", "GLT(GB/s)"});
  for (const Row& r : rows) {
    const auto& a = *r.agg;
    const auto total_tx = a.l2_hit_transactions + a.dram_transactions;
    t.add_row({r.name, std::to_string(a.launches),
               fixed(a.time_s * 1e3, 3),
               fixed(a.time_s * 1e6 / static_cast<double>(a.launches), 1),
               human_count(static_cast<double>(a.load_transactions)),
               human_count(static_cast<double>(a.store_transactions)),
               total_tx > 0
                   ? fixed(100.0 * static_cast<double>(a.l2_hit_transactions) /
                               static_cast<double>(total_tx),
                           0) + "%"
                   : "-",
               fixed(a.glt_bps(sector) / 1e9, 1)});
  }
  t.print(os);
}

void write_chrome_trace(std::ostream& os, const Device& device) {
  os << "{\"traceEvents\":[";
  double cursor_us = 0.0;
  bool first = true;
  for (const LaunchRecord& rec : device.launches()) {
    const double dur_us = rec.time_s * 1e6;
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << rec.kernel << "\",\"ph\":\"X\",\"pid\":1,"
       << "\"tid\":1,\"ts\":" << fixed(cursor_us, 3)
       << ",\"dur\":" << fixed(dur_us, 3) << ",\"args\":{"
       << "\"warps\":" << rec.warps
       << ",\"issue_slots\":" << rec.issue_slots
       << ",\"load_transactions\":" << rec.load_transactions
       << ",\"store_transactions\":" << rec.store_transactions
       << ",\"l2_hits\":" << rec.l2_hit_transactions
       << ",\"dram\":" << rec.dram_transactions
       << ",\"glt_gbps\":"
       << fixed(rec.glt_bps(device.props().sector_bytes) / 1e9, 2) << "}}";
    cursor_us += dur_us;
  }
  os << "]}";
}

}  // namespace turbobc::sim
