// Analytic machine model for host (CPU) algorithms.
//
// The paper compares its GPU kernels against a sequential BC implementation
// and the ligra shared-memory library, both run on a dual-socket Xeon Gold
// 6152 host. Because the GPU side of this repo is cost-modeled rather than
// wall-clocked, the CPU side must be modeled in the same currency or the
// speedup ratios would compare simulated seconds against real seconds of a
// different machine. CPU algorithms therefore count their work (ALU ops,
// streaming bytes, dependent random-access bytes, parallel rounds) while
// executing for real, and this model converts the counts to modeled seconds.
#pragma once

#include <cstdint>
#include <string>

namespace turbobc::sim {

struct CpuProps {
  std::string name = "Modeled 22-core Xeon Gold 6152 @ 2.1 GHz";
  double clock_hz = 2.1e9;
  /// Effective IPC of branchy pointer-chasing graph code (not peak issue).
  double ipc = 1.2;
  int cores = 22;
  /// Fraction of linear scaling a well-tuned frontier framework achieves.
  double parallel_efficiency = 0.65;
  /// Single-core streaming bandwidth achieved by scalar traversal loops
  /// (well below STREAM peak: short runs, branchy strides).
  double seq_bandwidth_bps = 5e9;
  /// Single-core dependent random-access bandwidth (pointer-chasing loads of
  /// 4-8 B each; dominated by memory latency, ~70 ns per line on a
  /// dual-socket machine).
  double rand_bandwidth_bps = 0.35e9;
  /// All-core aggregates (random accesses overlap across cores via MLP).
  double parallel_seq_bandwidth_bps = 85e9;
  double parallel_rand_bandwidth_bps = 9e9;
  /// Fork-join cost per parallel round (one edgeMap/vertexMap): barrier +
  /// work distribution across 22 cores / 2 sockets.
  double round_sync_s = 25e-6;

  static CpuProps xeon_gold_6152() { return CpuProps{}; }
};

/// Work counted by an instrumented CPU algorithm.
struct CpuOpCounts {
  std::uint64_t alu_ops = 0;
  std::uint64_t seq_bytes = 0;   // streaming/sequential traffic
  std::uint64_t rand_bytes = 0;  // latency-bound random traffic
  std::uint64_t rounds = 0;      // parallel rounds (BFS levels etc.)

  CpuOpCounts& operator+=(const CpuOpCounts& o) {
    alu_ops += o.alu_ops;
    seq_bytes += o.seq_bytes;
    rand_bytes += o.rand_bytes;
    rounds += o.rounds;
    return *this;
  }
};

class CpuModel {
 public:
  explicit CpuModel(CpuProps props = CpuProps::xeon_gold_6152())
      : props_(props) {}

  const CpuProps& props() const noexcept { return props_; }

  /// Modeled single-thread execution time. Additive: dependent random loads
  /// do not overlap with much else on one core.
  double seconds_sequential(const CpuOpCounts& c) const {
    return static_cast<double>(c.alu_ops) / (props_.ipc * props_.clock_hz) +
           static_cast<double>(c.seq_bytes) / props_.seq_bandwidth_bps +
           static_cast<double>(c.rand_bytes) / props_.rand_bandwidth_bps;
  }

  /// Modeled all-core execution time for a round-synchronous frontier
  /// framework (the ligra-style baseline).
  double seconds_parallel(const CpuOpCounts& c) const {
    const double compute =
        static_cast<double>(c.alu_ops) /
        (props_.ipc * props_.clock_hz * props_.cores * props_.parallel_efficiency);
    const double mem =
        static_cast<double>(c.seq_bytes) / props_.parallel_seq_bandwidth_bps +
        static_cast<double>(c.rand_bytes) / props_.parallel_rand_bandwidth_bps;
    return compute + mem + static_cast<double>(c.rounds) * props_.round_sync_s;
  }

 private:
  CpuProps props_;
};

}  // namespace turbobc::sim
