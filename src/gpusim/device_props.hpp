// Device description for the simulated GPU.
//
// Defaults reproduce the paper's evaluation hardware, an NVIDIA Titan Xp:
// 30 SMs x 128 cores, 1.58 GHz max clock, 12196 MB global memory, and a
// theoretical peak global-load throughput of 575 GB/s (the horizontal line
// in the paper's Figure 5b).
#pragma once

#include <cstddef>
#include <string>

namespace turbobc::sim {

struct DeviceProps {
  std::string name = "Simulated NVIDIA TITAN Xp";

  // Execution resources.
  int sm_count = 30;
  int cores_per_sm = 128;
  int warp_size = 32;
  /// Warp-instruction issue slots per SM per cycle (4 schedulers / SM on
  /// Pascal GP102).
  int issue_slots_per_sm = 4;
  double clock_hz = 1.58e9;
  /// Average pipeline cycles between dependent issues of a single warp;
  /// bounds the critical path of the longest-running warp in a launch and is
  /// what makes load imbalance (one mega-degree vertex in a scalar kernel)
  /// expensive, exactly as the paper describes for scCSC on skewed graphs.
  double cycles_per_dependent_slot = 6.0;

  // Memory system.
  std::size_t global_mem_bytes = 12196ull * 1024 * 1024;
  std::size_t l2_bytes = 3ull * 1024 * 1024;  // GP102 L2
  int sector_bytes = 32;                      // L2/DRAM transaction granularity
  double dram_bandwidth_bps = 480e9;          // sustainable DRAM bandwidth
  double l2_bandwidth_bps = 1.6e12;           // aggregate L2 hit bandwidth
  /// Global-atomic throughput of the L2 atomic units. Float atomics run at
  /// roughly a quarter of the integer rate on Pascal — the hardware fact
  /// behind the paper's "int SpMV up to 2.7x faster" (Section 3.4).
  double atomic_int_ops_per_s = 64e9;
  double atomic_float_ops_per_s = 8e9;
  /// Peak theoretical global-load throughput reported by the vendor; used
  /// only as the reference line when reporting GLT (Figure 5b).
  double theoretical_glt_bps = 575e9;
  double pcie_bandwidth_bps = 12e9;
  /// Fixed cudaMemcpy round-trip latency; charged per transfer. Dominates
  /// the per-BFS-level frontier-flag readback on deep graphs.
  double pcie_latency_s = 8.0e-6;

  // Driver overheads.
  double kernel_launch_overhead_s = 3.5e-6;
  double alloc_overhead_s = 2.0e-6;  // cudaMalloc/cudaFree, per call

  /// The paper's device.
  static DeviceProps titan_xp() { return DeviceProps{}; }

  /// Same device with global memory scaled by `factor` in (0, 1]. Used by the
  /// Table 4 reproduction: workloads are scaled down ~1000x from the paper's
  /// billion-edge graphs, so the capacity is scaled identically to preserve
  /// the OOM crossover between the gunrock-style array inventory (9n + 2m)
  /// and TurboBC's (7n + m).
  static DeviceProps titan_xp_scaled_memory(double factor) {
    DeviceProps p;
    p.global_mem_bytes =
        static_cast<std::size_t>(static_cast<double>(p.global_mem_bytes) * factor);
    p.name += " (memory x" + std::to_string(factor) + ")";
    return p;
  }

  int total_warp_issue_slots_per_cycle() const {
    return sm_count * issue_slots_per_sm;
  }
};

}  // namespace turbobc::sim
