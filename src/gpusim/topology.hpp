// Modeled multi-GPU topology: K simulated devices plus an interconnect cost
// model for the collectives the distributed engine needs.
//
// The paper evaluates on a single Titan Xp; the dist layer (src/dist/) scales
// the same kernels out over a modeled node of K such cards. Two link flavors
// are modeled:
//
//  * PCIe 3.0 x16 (~12 GB/s, host-staged) — the default. Peer traffic is
//    bounced through host memory, which the star collectives reflect.
//  * NVLink-style peer links (optional) — direct all-to-all device links,
//    which make ring collectives the natural schedule.
//
// Every primitive (device_to_device_copy / all_gather / all_reduce) has a
// closed-form modeled time and a logical payload byte count, both accounted
// in the participating devices' comm ledgers (Device::charge_comm) the same
// way kernel launches land in their timelines. Byte counters record the
// *logical* device-to-device payload (what a device contributes and what it
// learns), so for every operation the sum of bytes sent equals the sum of
// bytes received — the conservation invariant the QA oracle checks — while
// the time formulas reflect the physical schedule (host staging for PCIe,
// ring steps for NVLink).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/device_props.hpp"

namespace turbobc::sim {

/// A modeled point-to-point link.
struct LinkProps {
  double bandwidth_bps = 12e9;
  double latency_s = 8.0e-6;
};

/// Collective schedule. Ring pipelines blocks around direct peer links;
/// star stages everything through host memory (the only option on PCIe
/// without peer access).
enum class CollectiveAlgo : std::uint8_t { kRing, kStar };

const char* to_string(CollectiveAlgo algo);

struct TopologyProps {
  int num_devices = 4;
  DeviceProps device = DeviceProps::titan_xp();
  /// Host-staged PCIe 3.0 x16 path between any two devices.
  LinkProps pcie{12e9, 8.0e-6};
  /// When true, devices also have direct NVLink-style peer links and
  /// collectives default to ring schedules over them.
  bool nvlink = false;
  LinkProps peer{25e9, 2.0e-6};

  /// The default modeled node: four Titan Xps on a PCIe switch.
  static TopologyProps quad_titan_xp() { return TopologyProps{}; }

  const LinkProps& active_link() const noexcept {
    return nvlink ? peer : pcie;
  }
  CollectiveAlgo default_algo() const noexcept {
    return nvlink ? CollectiveAlgo::kRing : CollectiveAlgo::kStar;
  }
  std::string interconnect_name() const {
    return nvlink ? "NVLink-style peer links" : "PCIe 3.0 x16 (host-staged)";
  }
};

/// One finished interconnect operation, recorded in execution order.
struct CommOp {
  enum class Kind : std::uint8_t { kCopy, kAllGather, kAllReduce };
  Kind kind;
  CollectiveAlgo algo;
  double time_s = 0.0;
  /// Logical payload: sum over devices of bytes sent (== bytes received).
  std::uint64_t total_bytes = 0;
};

const char* to_string(CommOp::Kind kind);

/// K simulated devices plus the interconnect ledger. Devices are owned here
/// so shard engines can hold stable references for the whole run.
class Topology {
 public:
  explicit Topology(TopologyProps props = TopologyProps::quad_titan_xp());

  const TopologyProps& props() const noexcept { return props_; }
  int num_devices() const noexcept { return props_.num_devices; }
  Device& device(int k) { return *devices_[static_cast<std::size_t>(k)]; }
  const Device& device(int k) const {
    return *devices_[static_cast<std::size_t>(k)];
  }

  // ---- Primitives. Each returns its modeled time, appends a CommOp, and
  // ---- charges every participating device's comm ledger.

  /// Point-to-point copy of `bytes` from device `src` to device `dst`.
  /// src == dst is a free no-op.
  double device_to_device_copy(int src, int dst, std::uint64_t bytes);

  /// Every device contributes a `bytes_per_rank` block; afterwards every
  /// device holds all K blocks. K == 1 is a free no-op.
  double all_gather(std::uint64_t bytes_per_rank,
                    std::optional<CollectiveAlgo> algo = std::nullopt);

  /// Element-wise reduction of a `bytes`-sized vector replicated on every
  /// device; afterwards every device holds the reduced vector. K == 1 is a
  /// free no-op.
  double all_reduce(std::uint64_t bytes,
                    std::optional<CollectiveAlgo> algo = std::nullopt);

  // ---- Ledger.

  double comm_seconds() const noexcept { return comm_seconds_; }
  std::uint64_t comm_bytes_total() const noexcept { return comm_bytes_; }
  const std::vector<CommOp>& ops() const noexcept { return ops_; }

  /// Clear the interconnect ledger (not the devices' own ledgers).
  void reset_comm();

  // ---- Closed-form cost model, pinned by tests/gpusim/test_topology.cpp.

  static double copy_time(const LinkProps& link, std::uint64_t bytes);
  static double all_gather_time(const LinkProps& link, CollectiveAlgo algo,
                                int k, std::uint64_t bytes_per_rank);
  static double all_reduce_time(const LinkProps& link, CollectiveAlgo algo,
                                int k, std::uint64_t bytes);
  /// Logical payload per device (sent == received) for each collective.
  static std::uint64_t all_gather_bytes_per_device(CollectiveAlgo algo, int k,
                                                   std::uint64_t bytes_per_rank);
  static std::uint64_t all_reduce_bytes_per_device(CollectiveAlgo algo, int k,
                                                   std::uint64_t bytes);

 private:
  double record(CommOp::Kind kind, CollectiveAlgo algo, double time_s,
                std::uint64_t per_device_bytes);

  TopologyProps props_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<CommOp> ops_;
  double comm_seconds_ = 0.0;
  std::uint64_t comm_bytes_ = 0;
};

}  // namespace turbobc::sim
