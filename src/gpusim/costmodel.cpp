#include "gpusim/costmodel.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <mutex>
#include <string>

namespace turbobc::sim {

namespace {
constexpr std::uint64_t kInvalidTag = ~0ULL;
}

std::string_view intern_kernel_name(std::string_view name) {
  static std::mutex mutex;
  static std::deque<std::string> table;  // deque: stable element addresses
  std::lock_guard<std::mutex> g(mutex);
  for (const std::string& s : table) {
    if (s == name) return s;
  }
  return table.emplace_back(name);
}

CostModel::CostModel(const DeviceProps& props) : props_(props) {
  const std::size_t lines =
      std::max<std::size_t>(1, props_.l2_bytes / props_.sector_bytes);
  l2_tags_.assign(lines, kInvalidTag);
}

void CostModel::reset_l2() {
  std::fill(l2_tags_.begin(), l2_tags_.end(), kInvalidTag);
}

bool CostModel::l2_probe_and_fill(std::uint64_t sector) {
  const std::size_t line = sector % l2_tags_.size();
  if (l2_tags_[line] == sector) return true;
  l2_tags_[line] = sector;
  return false;
}

std::uint64_t CostModel::process_slot(LaunchRecord& rec, const Access* accesses,
                                      int count) {
  thread_local std::vector<std::uint64_t> sectors;
  sectors.clear();
  const std::uint64_t slots =
      coalesce_slot(props_, rec, accesses, count, sectors);
  replay_sectors(rec, sectors.data(), sectors.size());
  return slots;
}

void CostModel::replay_sectors(LaunchRecord& rec, const std::uint64_t* sectors,
                               std::size_t count) {
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (l2_probe_and_fill(sectors[i])) ++hits;
  }
  rec.l2_hit_transactions += hits;
  rec.dram_transactions += count - hits;
}

std::uint64_t CostModel::coalesce_slot(const DeviceProps& props,
                                       LaunchRecord& rec,
                                       const Access* accesses, int count,
                                       std::vector<std::uint64_t>& sectors_out) {
  if (count <= 0) return 0;

  // Collect the touched sectors of the warp's active lanes. A lane request
  // can straddle a sector boundary (16 B loads), hence up to 2 sectors each.
  std::array<std::uint64_t, 64> sectors;
  int n_sectors = 0;
  std::array<std::uint64_t, 32> addrs;  // for atomic contention analysis
  int n_atomics = 0;
  bool has_float_atomic = false;
  bool is_store = false;

  const auto sector_of = [&](std::uint64_t a) {
    return a / static_cast<std::uint64_t>(props.sector_bytes);
  };

  for (int i = 0; i < count; ++i) {
    const Access& a = accesses[i];
    const std::uint64_t first = sector_of(a.addr);
    const std::uint64_t last = sector_of(a.addr + (a.size ? a.size - 1 : 0));
    sectors[n_sectors++] = first;
    if (last != first) sectors[n_sectors++] = last;
    switch (a.op) {
      case MemOp::kLoad:
        ++rec.load_requests;
        break;
      case MemOp::kStore:
        ++rec.store_requests;
        is_store = true;
        break;
      case MemOp::kAtomicFloat:
        has_float_atomic = true;
        ++rec.atomic_float_requests;
        [[fallthrough]];
      case MemOp::kAtomic:
        ++rec.atomic_requests;
        is_store = true;  // atomics produce read-modify-write traffic
        addrs[n_atomics++] = a.addr;
        break;
    }
  }

  std::sort(sectors.begin(), sectors.begin() + n_sectors);
  const auto uniq_end = std::unique(sectors.begin(), sectors.begin() + n_sectors);
  const auto unique_sectors =
      static_cast<std::uint64_t>(uniq_end - sectors.begin());

  sectors_out.insert(sectors_out.end(), sectors.begin(), uniq_end);
  if (is_store) {
    rec.store_transactions += unique_sectors;
  } else {
    rec.load_transactions += unique_sectors;
  }

  // Issue cost: one issue plus a replay per extra transaction; contended
  // atomics additionally serialize per conflicting lane.
  std::uint64_t slots = std::max<std::uint64_t>(1, unique_sectors);
  if (n_atomics > 0) {
    std::sort(addrs.begin(), addrs.begin() + n_atomics);
    const auto distinct = static_cast<std::uint64_t>(
        std::unique(addrs.begin(), addrs.begin() + n_atomics) - addrs.begin());
    slots += static_cast<std::uint64_t>(n_atomics) - distinct;
    if (has_float_atomic) slots *= kFloatAtomicPenalty;
  }
  rec.issue_slots += slots;
  return slots;
}

double CostModel::finalize(LaunchRecord& rec) const {
  const double issue_rate =
      static_cast<double>(props_.total_warp_issue_slots_per_cycle()) *
      props_.clock_hz;
  const double throughput_bound =
      static_cast<double>(rec.issue_slots) / issue_rate;
  const double critical_path = static_cast<double>(rec.max_warp_slots) *
                               props_.cycles_per_dependent_slot /
                               props_.clock_hz;
  const double compute_time = std::max(throughput_bound, critical_path);

  const double sector = static_cast<double>(props_.sector_bytes);
  const double dram_time =
      static_cast<double>(rec.dram_transactions) * sector /
      props_.dram_bandwidth_bps;
  const double l2_time = static_cast<double>(rec.l2_hit_transactions) * sector /
                         props_.l2_bandwidth_bps;
  // Atomics funnel through the L2 atomic units at a fixed op rate; float
  // atomics run ~4x slower than integer ones (see DeviceProps).
  const std::uint64_t int_atomics =
      rec.atomic_requests - rec.atomic_float_requests;
  const double atomic_time =
      static_cast<double>(int_atomics) / props_.atomic_int_ops_per_s +
      static_cast<double>(rec.atomic_float_requests) /
          props_.atomic_float_ops_per_s;
  const double mem_time = dram_time + l2_time + atomic_time;

  rec.time_s =
      props_.kernel_launch_overhead_s + std::max(compute_time, mem_time);
  return rec.time_s;
}

double CostModel::memset_time(std::uint64_t bytes) const {
  return props_.kernel_launch_overhead_s +
         static_cast<double>(bytes) / props_.dram_bandwidth_bps;
}

double CostModel::transfer_time(std::uint64_t bytes) const {
  return props_.pcie_latency_s +
         static_cast<double>(bytes) / props_.pcie_bandwidth_bps;
}

}  // namespace turbobc::sim
