#include "gpusim/executor.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace turbobc::sim {
namespace {

thread_local bool tls_on_worker = false;
thread_local bool tls_in_job = false;

}  // namespace

struct ExecutorPool::Impl {
  // One job occupies the pool at a time. External submitters (the daemon's
  // concurrent query threads) serialize here; nested launches never reach
  // this lock (they run inline via the in_pool_job() check in run_job).
  std::mutex submit_mutex;
  std::mutex mutex;
  std::condition_variable job_cv;    // workers wait here for a job
  std::condition_variable done_cv;   // run_job waits here for completion
  std::vector<std::thread> workers;  // width - 1 threads; caller is slot 0

  // Job state, all guarded by `mutex` except the claim/finish counters.
  const std::function<void(unsigned)>* job = nullptr;
  std::uint64_t job_seq = 0;       // bumped per job; workers watch for change
  unsigned pending = 0;            // workers still running the current job
  bool stopping = false;

  std::exception_ptr first_error;  // first exception thrown by any slot

  void worker_main(unsigned slot) {
    tls_on_worker = true;
    std::uint64_t seen_seq = 0;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      job_cv.wait(lock, [&] { return stopping || job_seq != seen_seq; });
      if (stopping) return;
      seen_seq = job_seq;
      const auto* fn = job;
      lock.unlock();
      try {
        (*fn)(slot);
      } catch (...) {
        std::lock_guard<std::mutex> g(mutex);
        if (!first_error) first_error = std::current_exception();
      }
      lock.lock();
      if (--pending == 0) done_cv.notify_all();
    }
  }
};

ExecutorPool& ExecutorPool::instance() {
  static ExecutorPool pool;
  return pool;
}

bool ExecutorPool::on_worker_thread() noexcept { return tls_on_worker; }

bool ExecutorPool::in_pool_job() noexcept {
  return tls_on_worker || tls_in_job;
}

unsigned ExecutorPool::set_threads(unsigned n) {
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  // Hard cap. More slots than this never helps (chunks go empty) and an
  // absurd width — e.g. a negative CLI value wrapped through unsigned —
  // must not translate into millions of std::thread spawns.
  if (n > kMaxPoolWidth) n = kMaxPoolWidth;
  if (n == width_ && (impl_ || n == 1)) return width_;
  stop_workers();
  width_ = n;
  ensure_workers();
  return width_;
}

void ExecutorPool::ensure_workers() {
  if (width_ == 0) set_threads(0);
  if (width_ <= 1 || impl_) return;
  impl_ = new Impl();
  impl_->workers.reserve(width_ - 1);
  for (unsigned slot = 1; slot < width_; ++slot) {
    impl_->workers.emplace_back(
        [impl = impl_, slot] { impl->worker_main(slot); });
  }
}

void ExecutorPool::stop_workers() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> g(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->job_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
  impl_ = nullptr;
}

ExecutorPool::~ExecutorPool() { stop_workers(); }

void ExecutorPool::run_job(const std::function<void(unsigned)>& slot_fn) {
  ensure_workers();
  if (width_ <= 1 || in_pool_job()) {
    // Serial width, or nested use from inside a job: run every slot inline.
    for (unsigned slot = 0; slot < (width_ == 0 ? 1u : width_); ++slot) {
      slot_fn(slot);
    }
    return;
  }
  std::lock_guard<std::mutex> submit(impl_->submit_mutex);
  {
    std::lock_guard<std::mutex> g(impl_->mutex);
    impl_->job = &slot_fn;
    impl_->pending = width_ - 1;
    impl_->first_error = nullptr;
    ++impl_->job_seq;
  }
  impl_->job_cv.notify_all();
  // The caller participates as slot 0 while workers run slots 1..width-1.
  tls_in_job = true;
  try {
    slot_fn(0);
  } catch (...) {
    std::lock_guard<std::mutex> g(impl_->mutex);
    if (!impl_->first_error) impl_->first_error = std::current_exception();
  }
  tls_in_job = false;
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->done_cv.wait(lock, [&] { return impl_->pending == 0; });
  impl_->job = nullptr;
  if (impl_->first_error) {
    std::exception_ptr err = impl_->first_error;
    impl_->first_error = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ExecutorPool::for_chunks(
    std::uint64_t total,
    const std::function<void(std::uint64_t, std::uint64_t, unsigned)>& fn) {
  ensure_workers();
  const unsigned width = width_ == 0 ? 1u : width_;
  if (total == 0) return;
  // Chunk boundaries depend only on (total, width): slot k owns
  // [k*chunk, min(total, (k+1)*chunk)).
  const std::uint64_t chunk = (total + width - 1) / width;
  run_job([&](unsigned slot) {
    const std::uint64_t begin = static_cast<std::uint64_t>(slot) * chunk;
    if (begin >= total) return;
    const std::uint64_t end = std::min(total, begin + chunk);
    fn(begin, end, slot);
  });
}

void ExecutorPool::for_tasks(
    std::size_t count, const std::function<void(std::size_t, unsigned)>& fn) {
  ensure_workers();
  if (count == 0) return;
  std::atomic<std::size_t> cursor{0};
  run_job([&](unsigned slot) {
    for (;;) {
      const std::size_t task = cursor.fetch_add(1, std::memory_order_relaxed);
      if (task >= count) return;
      fn(task, slot);
    }
  });
}

}  // namespace turbobc::sim
