#include "gpusim/topology.hpp"

#include "common/error.hpp"

namespace turbobc::sim {

const char* to_string(CollectiveAlgo algo) {
  switch (algo) {
    case CollectiveAlgo::kRing:
      return "ring";
    case CollectiveAlgo::kStar:
      return "star";
  }
  return "?";
}

const char* to_string(CommOp::Kind kind) {
  switch (kind) {
    case CommOp::Kind::kCopy:
      return "copy";
    case CommOp::Kind::kAllGather:
      return "all_gather";
    case CommOp::Kind::kAllReduce:
      return "all_reduce";
  }
  return "?";
}

Topology::Topology(TopologyProps props) : props_(props) {
  TBC_CHECK(props_.num_devices >= 1, "topology needs at least one device");
  devices_.reserve(static_cast<std::size_t>(props_.num_devices));
  for (int k = 0; k < props_.num_devices; ++k) {
    devices_.push_back(std::make_unique<Device>(props_.device));
  }
}

double Topology::copy_time(const LinkProps& link, std::uint64_t bytes) {
  return link.latency_s + static_cast<double>(bytes) / link.bandwidth_bps;
}

double Topology::all_gather_time(const LinkProps& link, CollectiveAlgo algo,
                                 int k, std::uint64_t bytes_per_rank) {
  if (k <= 1) return 0.0;
  const double steps = static_cast<double>(k - 1);
  if (algo == CollectiveAlgo::kRing) {
    // K-1 pipeline steps, each moving one rank's block per device.
    return steps * copy_time(link, bytes_per_rank);
  }
  // Host-staged star: every device uploads its block, then downloads the
  // K-1 blocks it is missing, both phases serialized over the shared link.
  return static_cast<double>(k) * copy_time(link, bytes_per_rank) +
         static_cast<double>(k) *
             copy_time(link, static_cast<std::uint64_t>(k - 1) * bytes_per_rank);
}

double Topology::all_reduce_time(const LinkProps& link, CollectiveAlgo algo,
                                 int k, std::uint64_t bytes) {
  if (k <= 1) return 0.0;
  if (algo == CollectiveAlgo::kRing) {
    // Chunked reduce-scatter + all-gather: 2(K-1) steps of B/K-byte chunks.
    const std::uint64_t chunk =
        (bytes + static_cast<std::uint64_t>(k) - 1) /
        static_cast<std::uint64_t>(k);
    return 2.0 * static_cast<double>(k - 1) * copy_time(link, chunk);
  }
  // Host-staged star: every device uploads its full vector (host reduces),
  // then downloads the result.
  return 2.0 * static_cast<double>(k) * copy_time(link, bytes);
}

std::uint64_t Topology::all_gather_bytes_per_device(
    CollectiveAlgo /*algo*/, int k, std::uint64_t bytes_per_rank) {
  if (k <= 1) return 0;
  // Logical payload: a device's block reaches K-1 peers and it learns K-1
  // foreign blocks, independent of the physical schedule.
  return static_cast<std::uint64_t>(k - 1) * bytes_per_rank;
}

std::uint64_t Topology::all_reduce_bytes_per_device(CollectiveAlgo algo, int k,
                                                    std::uint64_t bytes) {
  if (k <= 1) return 0;
  if (algo == CollectiveAlgo::kRing) {
    const std::uint64_t chunk =
        (bytes + static_cast<std::uint64_t>(k) - 1) /
        static_cast<std::uint64_t>(k);
    return 2 * static_cast<std::uint64_t>(k - 1) * chunk;
  }
  // Star: one upload + one download of the full vector.
  return bytes;
}

double Topology::record(CommOp::Kind kind, CollectiveAlgo algo, double time_s,
                        std::uint64_t per_device_bytes) {
  for (auto& dev : devices_) {
    dev->charge_comm(time_s, per_device_bytes, per_device_bytes);
  }
  const std::uint64_t total =
      static_cast<std::uint64_t>(props_.num_devices) * per_device_bytes;
  ops_.push_back(CommOp{kind, algo, time_s, total});
  comm_seconds_ += time_s;
  comm_bytes_ += total;
  return time_s;
}

double Topology::device_to_device_copy(int src, int dst, std::uint64_t bytes) {
  TBC_CHECK(src >= 0 && src < props_.num_devices && dst >= 0 &&
                dst < props_.num_devices,
            "device_to_device_copy endpoint out of range");
  if (src == dst || bytes == 0) return 0.0;
  const double t = copy_time(props_.active_link(), bytes);
  devices_[static_cast<std::size_t>(src)]->charge_comm(t, bytes, 0);
  devices_[static_cast<std::size_t>(dst)]->charge_comm(t, 0, bytes);
  ops_.push_back(
      CommOp{CommOp::Kind::kCopy, props_.default_algo(), t, bytes});
  comm_seconds_ += t;
  comm_bytes_ += bytes;
  return t;
}

double Topology::all_gather(std::uint64_t bytes_per_rank,
                            std::optional<CollectiveAlgo> algo) {
  const int k = props_.num_devices;
  if (k <= 1 || bytes_per_rank == 0) return 0.0;
  const CollectiveAlgo a = algo.value_or(props_.default_algo());
  return record(CommOp::Kind::kAllGather, a,
                all_gather_time(props_.active_link(), a, k, bytes_per_rank),
                all_gather_bytes_per_device(a, k, bytes_per_rank));
}

double Topology::all_reduce(std::uint64_t bytes,
                            std::optional<CollectiveAlgo> algo) {
  const int k = props_.num_devices;
  if (k <= 1 || bytes == 0) return 0.0;
  const CollectiveAlgo a = algo.value_or(props_.default_algo());
  return record(CommOp::Kind::kAllReduce, a,
                all_reduce_time(props_.active_link(), a, k, bytes),
                all_reduce_bytes_per_device(a, k, bytes));
}

void Topology::reset_comm() {
  ops_.clear();
  comm_seconds_ = 0.0;
  comm_bytes_ = 0;
}

}  // namespace turbobc::sim
