// Host-side execution engine for the simulated GPU.
//
// ExecutorPool is a persistent pool of worker threads that the kernel
// launchers (gpusim/kernel.hpp) and the exact-BC source fan-out
// (core/turbobc.cpp) use to spread *host* work across cores. It changes
// nothing about the modeled machine: every modeled number (transactions,
// GLT, slots, seconds, peak bytes) is produced by a deterministic
// fixed-order merge of per-worker shards, so a run with N threads is
// bit-identical to a run with 1 thread (see DESIGN.md §6, "Host-parallel
// execution engine").
//
// Width policy:
//  * set_threads(0) — default — sizes the pool to hardware concurrency.
//  * set_threads(1) forces the legacy serial paths everywhere (no worker
//    threads exist; launchers and drivers run inline).
//  * The pool is a process-wide singleton: spawning threads per launch (or
//    per autotune probe) would dominate small kernels, so workers persist
//    and sleep on a condition variable between jobs.
//
// Nesting: jobs never use the pool recursively. Code that may run on a
// worker thread (e.g. a kernel launch inside a fan-out block) checks
// on_worker_thread() and executes inline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace turbobc::sim {

class ExecutorPool {
 public:
  /// The process-wide pool. First use spawns workers lazily.
  static ExecutorPool& instance();

  /// Resize the pool to `n` execution slots (including the caller's);
  /// 0 means std::thread::hardware_concurrency(); values above
  /// kMaxPoolWidth clamp to it. Not safe to call while a job is in flight.
  /// Returns the resulting width.
  unsigned set_threads(unsigned n);

  /// Configured width (>= 1). Width 1 means fully serial execution.
  unsigned threads() const noexcept { return width_; }

  /// True when the calling thread is one of the pool's workers. Used to
  /// keep nested work (kernel launches inside fan-out tasks) inline.
  static bool on_worker_thread() noexcept;

  /// True while the calling thread is executing inside a pool job — either
  /// as a worker or as the participating caller. Launchers check this so a
  /// kernel launch nested inside a fan-out task runs inline instead of
  /// re-entering the busy pool.
  static bool in_pool_job() noexcept;

  /// Split [0, total) into threads() contiguous chunks; slot k runs
  /// fn(begin_k, end_k, k). The caller executes slot 0; workers run the
  /// rest. Blocks until every chunk finished; rethrows the first worker
  /// exception. Chunk boundaries depend only on `total` and the width.
  void for_chunks(std::uint64_t total,
                  const std::function<void(std::uint64_t, std::uint64_t,
                                           unsigned)>& fn);

  /// Dynamic task queue: tasks [0, count) are claimed through an atomic
  /// cursor and run as fn(task, slot). Which slot runs which task is
  /// scheduling-dependent, so fn must write results indexed by `task` —
  /// merged results then do not depend on the schedule. Blocks until all
  /// tasks finished; rethrows the first exception.
  void for_tasks(std::size_t count,
                 const std::function<void(std::size_t, unsigned)>& fn);

  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

 private:
  ExecutorPool() = default;
  struct Impl;
  void run_job(const std::function<void(unsigned)>& slot_fn);
  void ensure_workers();
  void stop_workers();

  Impl* impl_ = nullptr;
  unsigned width_ = 0;  // 0 until first use / set_threads
};

/// Minimum warps in a launch before the launchers bother fanning the warp
/// loop out (tiny launches are cheaper inline than a pool wake-up).
inline constexpr std::uint64_t kMinWarpsForParallelLaunch = 64;

/// Hard cap on the pool width; set_threads clamps to it.
inline constexpr unsigned kMaxPoolWidth = 256;

}  // namespace turbobc::sim
