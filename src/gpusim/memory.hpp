// Simulated device global-memory manager.
//
// Tracks live and peak allocation against the device capacity and assigns
// each buffer a distinct simulated base address so the cost model can do
// realistic sector/coalescing arithmetic. Allocation beyond capacity throws
// DeviceOutOfMemory — this is what makes the paper's Table 4 "gunrock OOM"
// experiments reproducible instead of anecdotal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace turbobc::sim {

/// Point-in-time copy of the allocation ledger. The QA oracle snapshots the
/// ledger around a run and checks that it balances (every alloc freed, zero
/// live bytes) — see qa/oracle.hpp, invariant "alloc_free_ledger".
struct LedgerSnapshot {
  std::size_t live_bytes = 0;
  std::size_t peak_bytes = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t free_count = 0;

  friend bool operator==(const LedgerSnapshot&,
                         const LedgerSnapshot&) = default;
};

class MemoryManager {
 public:
  explicit MemoryManager(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Reserve `bytes`; returns the simulated base address (256-byte aligned).
  /// Throws turbobc::DeviceOutOfMemory when the allocation would not fit;
  /// `label` (usually the requesting DeviceBuffer's name) rides along on the
  /// exception so OOM logs name the allocation that hit the wall.
  std::uint64_t allocate(std::size_t bytes, std::string_view label = {}) {
    if (live_ + bytes > capacity_) {
      throw DeviceOutOfMemory(bytes, live_, capacity_, std::string(label));
    }
    live_ += bytes;
    peak_ = live_ > peak_ ? live_ : peak_;
    ++alloc_count_;
    const std::uint64_t base = next_addr_;
    next_addr_ += round_up(bytes, 256);
    return base;
  }

  void release(std::size_t bytes) noexcept {
    live_ = bytes > live_ ? 0 : live_ - bytes;
    ++free_count_;
  }

  std::size_t live_bytes() const noexcept { return live_; }
  std::size_t peak_bytes() const noexcept { return peak_; }
  std::size_t capacity_bytes() const noexcept { return capacity_; }
  std::uint64_t alloc_count() const noexcept { return alloc_count_; }
  std::uint64_t free_count() const noexcept { return free_count_; }

  LedgerSnapshot snapshot() const noexcept {
    return {live_, peak_, alloc_count_, free_count_};
  }

  /// Forget the high-water mark (not the live allocations); used between
  /// benchmark phases.
  void reset_peak() noexcept { peak_ = live_; }

  /// Raise the high-water mark to at least `bytes`. The parallel source
  /// fan-out runs on replica devices and propagates each replica's peak back
  /// to the main device so peak accounting matches the serial engine.
  void note_peak(std::size_t bytes) noexcept {
    peak_ = bytes > peak_ ? bytes : peak_;
  }

 private:
  static std::size_t round_up(std::size_t v, std::size_t a) {
    return (v + a - 1) / a * a;
  }

  std::size_t capacity_;
  std::size_t live_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t alloc_count_ = 0;
  std::uint64_t free_count_ = 0;
  std::uint64_t next_addr_ = 0x1000;
};

}  // namespace turbobc::sim
