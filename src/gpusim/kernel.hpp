// Kernel launchers for the simulated GPU.
//
// Two execution styles mirror the paper's two kernel families (Section 3.1):
//
//  * launch_scalar — "scalar" kernels assigning one thread per vertex (scCSC)
//    or one thread per edge (scCOOC). The body runs once per thread with a
//    ThreadCtx; each thread's global accesses are logged and then zipped
//    lane-by-lane into warp slots, so coalescing across the 32 lanes of each
//    warp is analyzed exactly and divergence shows up as ragged lane logs.
//
//  * launch_warp — "vector" kernels assigning one warp per vertex (veCSC,
//    Algorithm 4). The body runs once per warp with a WarpCtx that exposes
//    explicit SIMT operations: gather/scatter/atomic slots over active-lane
//    masks, broadcast loads, shfl_down for the warp shuffle reduction, and
//    plain ALU slots.
//
// Execution is single-threaded and deterministic; parallel speed comes from
// the cost model, not the host.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "gpusim/buffer.hpp"
#include "gpusim/costmodel.hpp"
#include "gpusim/device.hpp"

namespace turbobc::sim {

inline constexpr int kWarpSize = 32;
inline constexpr std::uint32_t kFullMask = 0xffffffffu;

/// Per-thread context for scalar kernels.
class ThreadCtx {
 public:
  ThreadCtx(std::uint64_t global_id, std::vector<Access>& log,
            std::uint64_t& alu_ops)
      : global_id_(global_id), log_(&log), alu_ops_(&alu_ops) {}

  std::uint64_t global_id() const noexcept { return global_id_; }

  /// Called by DeviceBuffer accessors.
  void record(Access a) { log_->push_back(a); }

  /// Charge `n` ALU instructions on this lane (index arithmetic, compares).
  void count_ops(std::uint64_t n) { *alu_ops_ += n; }

 private:
  std::uint64_t global_id_;
  std::vector<Access>* log_;
  std::uint64_t* alu_ops_;
};

/// Run `body(ThreadCtx&)` for thread ids [0, n_threads).
template <typename Body>
void launch_scalar(Device& device, std::string_view name,
                   std::uint64_t n_threads, Body&& body) {
  LaunchRecord rec;
  rec.kernel = std::string(name);
  if (n_threads == 0) {
    device.cost_model().finalize(rec);
    device.commit_launch(std::move(rec));
    return;
  }
  rec.warps = (n_threads + kWarpSize - 1) / kWarpSize;

  CostModel& cost = device.cost_model();
  std::array<std::vector<Access>, kWarpSize> logs;
  std::array<std::uint64_t, kWarpSize> alu{};
  std::array<Access, kWarpSize> slot_buf;

  for (std::uint64_t w = 0; w < rec.warps; ++w) {
    std::size_t max_len = 0;
    std::uint64_t max_alu = 0;
    const int lanes = static_cast<int>(
        std::min<std::uint64_t>(kWarpSize, n_threads - w * kWarpSize));
    for (int lane = 0; lane < lanes; ++lane) {
      logs[lane].clear();
      alu[lane] = 0;
      ThreadCtx ctx(w * kWarpSize + lane, logs[lane], alu[lane]);
      body(ctx);
      max_len = std::max(max_len, logs[lane].size());
      max_alu = std::max(max_alu, alu[lane]);
    }

    // Zip lane logs into warp slots: slot i groups the i-th access of every
    // lane that issued at least i+1 accesses (lockstep approximation).
    std::uint64_t warp_slots = 0;
    for (std::size_t s = 0; s < max_len; ++s) {
      int cnt = 0;
      for (int lane = 0; lane < lanes; ++lane) {
        if (s < logs[lane].size()) slot_buf[cnt++] = logs[lane][s];
      }
      warp_slots += cost.process_slot(rec, slot_buf.data(), cnt);
    }
    // Divergent ALU work executes in lockstep: the warp pays the longest
    // lane's instruction count.
    rec.issue_slots += max_alu;
    warp_slots += max_alu;
    rec.max_warp_slots = std::max(rec.max_warp_slots, warp_slots);
  }

  cost.finalize(rec);
  device.commit_launch(std::move(rec));
}

/// Per-warp SIMT context for vector kernels.
class WarpCtx {
 public:
  WarpCtx(CostModel& cost, LaunchRecord& rec, std::uint64_t warp_id,
          std::uint64_t num_warps)
      : cost_(&cost), rec_(&rec), warp_id_(warp_id), num_warps_(num_warps) {}

  std::uint64_t warp_id() const noexcept { return warp_id_; }
  std::uint64_t num_warps() const noexcept { return num_warps_; }
  std::uint64_t slots() const noexcept { return slots_; }

  /// One gather slot: active lanes load buf[idx_fn(lane)].
  template <typename T, typename IdxFn>
  std::array<T, kWarpSize> gather(const DeviceBuffer<T>& buf,
                                  std::uint32_t mask, IdxFn&& idx_fn) {
    std::array<Access, kWarpSize> acc;
    std::array<T, kWarpSize> out{};
    int cnt = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if ((mask >> lane) & 1u) {
        const std::size_t i = idx_fn(lane);
        acc[cnt++] = Access{buf.addr_of(i), sizeof(T), MemOp::kLoad};
        out[lane] = buf.host()[i];
      }
    }
    slots_ += cost_->process_slot(*rec_, acc.data(), cnt);
    return out;
  }

  /// One scatter slot: active lanes store val_fn(lane) to buf[idx_fn(lane)].
  /// Lanes must target distinct indices (CUDA semantics leave same-address
  /// plain stores undefined); use atomic_add for conflicting writes.
  template <typename T, typename IdxFn, typename ValFn>
  void scatter(DeviceBuffer<T>& buf, std::uint32_t mask, IdxFn&& idx_fn,
               ValFn&& val_fn) {
    std::array<Access, kWarpSize> acc;
    int cnt = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if ((mask >> lane) & 1u) {
        const std::size_t i = idx_fn(lane);
        acc[cnt++] = Access{buf.addr_of(i), sizeof(T), MemOp::kStore};
        buf.host()[i] = val_fn(lane);
      }
    }
    slots_ += cost_->process_slot(*rec_, acc.data(), cnt);
  }

  /// One atomic slot: active lanes atomically add val_fn(lane) into
  /// buf[idx_fn(lane)]; contended addresses serialize in the cost model.
  template <typename T, typename IdxFn, typename ValFn>
  void atomic_add(DeviceBuffer<T>& buf, std::uint32_t mask, IdxFn&& idx_fn,
                  ValFn&& val_fn) {
    std::array<Access, kWarpSize> acc;
    const MemOp op = buf.atomic_op();
    int cnt = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if ((mask >> lane) & 1u) {
        const std::size_t i = idx_fn(lane);
        acc[cnt++] = Access{buf.addr_of(i), sizeof(T), op};
        buf.host()[i] = static_cast<T>(buf.host()[i] + val_fn(lane));
      }
    }
    slots_ += cost_->process_slot(*rec_, acc.data(), cnt);
  }

  /// All 32 lanes read the same element (e.g. the column pointer pair in
  /// Algorithm 4): one slot, one transaction.
  template <typename T>
  T broadcast_load(const DeviceBuffer<T>& buf, std::size_t i) {
    Access a{buf.addr_of(i), sizeof(T), MemOp::kLoad};
    slots_ += cost_->process_slot(*rec_, &a, 1);
    return buf.host()[i];
  }

  /// __shfl_down_sync: lane L receives v[L + offset] (lanes past the end keep
  /// their value, matching CUDA's behaviour within a full mask). One slot.
  template <typename T>
  std::array<T, kWarpSize> shfl_down(const std::array<T, kWarpSize>& v,
                                     int offset) {
    std::array<T, kWarpSize> out = v;
    for (int lane = 0; lane + offset < kWarpSize; ++lane) {
      out[lane] = v[lane + offset];
    }
    count_ops(1);
    return out;
  }

  /// Full warp shuffle reduction (Algorithm 4, lines 17-21): log2(32) = 5
  /// shfl_down + add slots; returns the total in lane 0's position.
  template <typename T>
  T reduce_add(std::array<T, kWarpSize> v) {
    for (int offset = kWarpSize / 2; offset > 0; offset /= 2) {
      const auto shifted = shfl_down(v, offset);
      for (int lane = 0; lane < kWarpSize; ++lane) {
        v[lane] = static_cast<T>(v[lane] + shifted[lane]);
      }
      count_ops(1);  // the add
    }
    return v[0];
  }

  /// Charge `n` ALU warp instructions.
  void count_ops(std::uint64_t n) {
    rec_->issue_slots += n;
    slots_ += n;
  }

 private:
  CostModel* cost_;
  LaunchRecord* rec_;
  std::uint64_t warp_id_;
  std::uint64_t num_warps_;
  std::uint64_t slots_ = 0;
};

/// Run `body(WarpCtx&)` for warp ids [0, n_warps).
template <typename Body>
void launch_warp(Device& device, std::string_view name, std::uint64_t n_warps,
                 Body&& body) {
  LaunchRecord rec;
  rec.kernel = std::string(name);
  rec.warps = n_warps;
  CostModel& cost = device.cost_model();
  for (std::uint64_t w = 0; w < n_warps; ++w) {
    WarpCtx ctx(cost, rec, w, n_warps);
    body(ctx);
    rec.max_warp_slots = std::max(rec.max_warp_slots, ctx.slots());
  }
  cost.finalize(rec);
  device.commit_launch(std::move(rec));
}

}  // namespace turbobc::sim
