// Kernel launchers for the simulated GPU.
//
// Two execution styles mirror the paper's two kernel families (Section 3.1):
//
//  * launch_scalar — "scalar" kernels assigning one thread per vertex (scCSC)
//    or one thread per edge (scCOOC). The body runs once per thread with a
//    ThreadCtx; each thread's global accesses are logged and then zipped
//    lane-by-lane into warp slots, so coalescing across the 32 lanes of each
//    warp is analyzed exactly and divergence shows up as ragged lane logs.
//
//  * launch_warp — "vector" kernels assigning one warp per vertex (veCSC,
//    Algorithm 4). The body runs once per warp with a WarpCtx that exposes
//    explicit SIMT operations: gather/scatter/atomic slots over active-lane
//    masks, broadcast loads, shfl_down for the warp shuffle reduction, and
//    plain ALU slots.
//
// Host-parallel execution (ExecutorPool width > 1): warp ids are split into
// contiguous chunks, one per pool slot. Each slot runs its warps against a
// private LaunchRecord shard using the *pure* half of the cost pipeline
// (CostModel::coalesce_slot), recording the slot's unique-sector stream and
// deferring floating-point atomic adds. Shards are then merged on the
// calling thread in slot (= warp) order: counters summed, sector streams
// replayed through the stateful L2 (CostModel::replay_sectors) in exactly
// the order the serial engine would have probed, and deferred float adds
// applied in warp order (float addition is not associative, so eager
// concurrent adds would drift). The committed LaunchRecord and every buffer
// value are therefore bit-identical to serial execution. Integer atomic adds
// are exact under any order and run eagerly via std::atomic_ref; plain
// scatters keep their distinct-index contract and run eagerly with relaxed
// atomic accesses (same-address same-value stores, e.g. convergence flags,
// stay benign under TSan).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "gpusim/buffer.hpp"
#include "gpusim/costmodel.hpp"
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"

namespace turbobc::sim {

inline constexpr int kWarpSize = 32;
inline constexpr std::uint32_t kFullMask = 0xffffffffu;

/// Whether a launch may use the host-parallel engine. Kernels whose
/// *functional* result depends on cross-warp execution order — e.g. the
/// Gunrock baseline allocating frontier slots from an atomic counter's
/// return value — must pass kSerialOnly.
enum class LaunchPolicy : std::uint8_t { kParallelOk, kSerialOnly };

namespace detail {

/// Per-worker shard of a parallel launch: counters (everything except the
/// L2 split), the slot's unique-sector stream in warp order, deferred float
/// adds in program order, and the chunk's busiest warp.
struct LaunchShard {
  LaunchRecord rec;
  std::vector<std::uint64_t> sectors;
  std::vector<DeferredAdd> deferred;
  std::uint64_t max_warp_slots = 0;

  void reset() {
    rec = LaunchRecord{};
    sectors.clear();
    deferred.clear();
    max_warp_slots = 0;
  }
};

/// Merge shards into `rec` in slot order (slots own ascending warp ranges,
/// so this is global warp order): sum counters, replay the L2 stream, apply
/// deferred float adds.
inline void merge_shards(CostModel& cost, LaunchRecord& rec,
                         std::vector<LaunchShard>& shards) {
  for (LaunchShard& sh : shards) {
    rec.issue_slots += sh.rec.issue_slots;
    rec.load_requests += sh.rec.load_requests;
    rec.store_requests += sh.rec.store_requests;
    rec.atomic_requests += sh.rec.atomic_requests;
    rec.atomic_float_requests += sh.rec.atomic_float_requests;
    rec.load_transactions += sh.rec.load_transactions;
    rec.store_transactions += sh.rec.store_transactions;
    rec.word_ops += sh.rec.word_ops;
    rec.max_warp_slots = std::max(rec.max_warp_slots, sh.max_warp_slots);
    cost.replay_sectors(rec, sh.sectors.data(), sh.sectors.size());
    for (const DeferredAdd& d : sh.deferred) d.apply();
  }
}

/// Reusable per-thread scratch for the scalar launcher's lane logs; hoisted
/// out of the launch loop so the per-warp vectors are allocated once per
/// host thread instead of churning the heap on every launch.
struct ScalarScratch {
  std::array<std::vector<Access>, 32> logs;
  std::array<std::uint64_t, 32> alu{};
  std::array<Access, 32> slot_buf;

  ScalarScratch() {
    for (auto& log : logs) log.reserve(64);
  }
};

inline ScalarScratch& scalar_scratch() {
  thread_local ScalarScratch scratch;
  return scratch;
}

inline bool use_parallel_engine(LaunchPolicy policy, std::uint64_t warps) {
  return policy == LaunchPolicy::kParallelOk &&
         warps >= kMinWarpsForParallelLaunch && !ExecutorPool::in_pool_job() &&
         ExecutorPool::instance().threads() > 1;
}

}  // namespace detail

/// Per-thread context for scalar kernels.
class ThreadCtx {
 public:
  ThreadCtx(std::uint64_t global_id, std::vector<Access>& log,
            std::uint64_t& alu_ops,
            std::vector<DeferredAdd>* deferred = nullptr,
            std::uint64_t* word_ops = nullptr)
      : global_id_(global_id),
        log_(&log),
        alu_ops_(&alu_ops),
        deferred_(deferred),
        word_ops_(word_ops) {}

  std::uint64_t global_id() const noexcept { return global_id_; }

  /// True when the launch runs on the host-parallel engine: buffer element
  /// accesses must then go through relaxed atomics / deferral (see
  /// DeviceBuffer).
  bool concurrent() const noexcept { return deferred_ != nullptr; }

  /// Queue a floating-point add for ordered application at shard merge.
  void defer_add(double* target, double value) {
    deferred_->push_back(DeferredAdd{target, value, true});
  }
  void defer_add(float* target, float value) {
    deferred_->push_back(
        DeferredAdd{target, static_cast<double>(value), false});
  }

  /// Called by DeviceBuffer accessors.
  void record(Access a) { log_->push_back(a); }

  /// Charge `n` ALU instructions on this lane (index arithmetic, compares).
  void count_ops(std::uint64_t n) { *alu_ops_ += n; }

  /// Charge `n` 64-bit mask instructions (MS-BFS AND/OR/popcount): normal
  /// ALU cost for timing, plus the launch-wide word-op traffic counter. The
  /// counter target is the (per-shard) LaunchRecord, written single-threaded
  /// within each shard, so the sum is exact under any pool width.
  void count_word_ops(std::uint64_t n) {
    *alu_ops_ += n;
    if (word_ops_ != nullptr) *word_ops_ += n;
  }

 private:
  std::uint64_t global_id_;
  std::vector<Access>* log_;
  std::uint64_t* alu_ops_;
  std::vector<DeferredAdd>* deferred_;
  std::uint64_t* word_ops_ = nullptr;
};

namespace detail {

/// Run scalar-kernel warps [warp_begin, warp_end) against `rec`. In serial
/// mode (`sectors == nullptr`) slots go through the full stateful pipeline
/// via `cost`; in shard mode the pure half runs, the sector stream is
/// recorded, and `cost` is not touched (it is shared across shards).
template <typename Body>
std::uint64_t run_scalar_warps(const DeviceProps& props, CostModel* cost,
                               LaunchRecord& rec, std::uint64_t warp_begin,
                               std::uint64_t warp_end, std::uint64_t n_threads,
                               std::vector<std::uint64_t>* sectors,
                               std::vector<DeferredAdd>* deferred,
                               Body&& body) {
  ScalarScratch& scratch = scalar_scratch();
  std::uint64_t max_warp_slots = 0;
  for (std::uint64_t w = warp_begin; w < warp_end; ++w) {
    std::size_t max_len = 0;
    std::uint64_t max_alu = 0;
    const int lanes = static_cast<int>(
        std::min<std::uint64_t>(32, n_threads - w * 32));
    for (int lane = 0; lane < lanes; ++lane) {
      scratch.logs[lane].clear();
      scratch.alu[lane] = 0;
      ThreadCtx ctx(w * 32 + lane, scratch.logs[lane], scratch.alu[lane],
                    deferred, &rec.word_ops);
      body(ctx);
      max_len = std::max(max_len, scratch.logs[lane].size());
      max_alu = std::max(max_alu, scratch.alu[lane]);
    }

    // Zip lane logs into warp slots: slot i groups the i-th access of every
    // lane that issued at least i+1 accesses (lockstep approximation).
    std::uint64_t warp_slots = 0;
    for (std::size_t s = 0; s < max_len; ++s) {
      int cnt = 0;
      for (int lane = 0; lane < lanes; ++lane) {
        if (s < scratch.logs[lane].size()) {
          scratch.slot_buf[cnt++] = scratch.logs[lane][s];
        }
      }
      if (sectors != nullptr) {
        warp_slots += CostModel::coalesce_slot(
            props, rec, scratch.slot_buf.data(), cnt, *sectors);
      } else {
        warp_slots += cost->process_slot(rec, scratch.slot_buf.data(), cnt);
      }
    }
    // Divergent ALU work executes in lockstep: the warp pays the longest
    // lane's instruction count.
    rec.issue_slots += max_alu;
    warp_slots += max_alu;
    max_warp_slots = std::max(max_warp_slots, warp_slots);
  }
  return max_warp_slots;
}

}  // namespace detail

/// Run `body(ThreadCtx&)` for thread ids [0, n_threads).
template <typename Body>
void launch_scalar(Device& device, std::string_view name,
                   std::uint64_t n_threads, Body&& body,
                   LaunchPolicy policy = LaunchPolicy::kParallelOk) {
  LaunchRecord rec;
  rec.kernel = intern_kernel_name(name);
  CostModel& cost = device.cost_model();
  if (n_threads == 0) {
    cost.finalize(rec);
    device.commit_launch(std::move(rec));
    return;
  }
  rec.warps = (n_threads + kWarpSize - 1) / kWarpSize;

  if (!detail::use_parallel_engine(policy, rec.warps)) {
    rec.max_warp_slots = std::max(
        rec.max_warp_slots,
        detail::run_scalar_warps(device.props(), &cost, rec, 0, rec.warps,
                                 n_threads, nullptr, nullptr, body));
  } else {
    ExecutorPool& pool = ExecutorPool::instance();
    std::vector<detail::LaunchShard> shards(pool.threads());
    pool.for_chunks(rec.warps, [&](std::uint64_t wb, std::uint64_t we,
                                   unsigned slot) {
      detail::LaunchShard& sh = shards[slot];
      sh.max_warp_slots = detail::run_scalar_warps(
          device.props(), &cost, sh.rec, wb, we, n_threads, &sh.sectors,
          &sh.deferred, body);
    });
    detail::merge_shards(cost, rec, shards);
  }

  cost.finalize(rec);
  device.commit_launch(std::move(rec));
}

/// Per-warp SIMT context for vector kernels.
class WarpCtx {
 public:
  /// Serial-mode context: slots go through the full stateful cost pipeline.
  WarpCtx(CostModel& cost, LaunchRecord& rec, std::uint64_t warp_id,
          std::uint64_t num_warps)
      : cost_(&cost),
        props_(&cost.props()),
        rec_(&rec),
        warp_id_(warp_id),
        num_warps_(num_warps) {}

  /// Shard-mode context for the host-parallel engine: pure coalescing only;
  /// the sector stream and float adds are replayed at merge.
  WarpCtx(const DeviceProps& props, LaunchRecord& rec,
          std::vector<std::uint64_t>& sectors,
          std::vector<DeferredAdd>& deferred, std::uint64_t warp_id,
          std::uint64_t num_warps)
      : props_(&props),
        rec_(&rec),
        sectors_(&sectors),
        deferred_(&deferred),
        warp_id_(warp_id),
        num_warps_(num_warps) {}

  std::uint64_t warp_id() const noexcept { return warp_id_; }
  std::uint64_t num_warps() const noexcept { return num_warps_; }
  std::uint64_t slots() const noexcept { return slots_; }
  bool concurrent() const noexcept { return cost_ == nullptr; }

  /// One gather slot: active lanes load buf[idx_fn(lane)].
  template <typename T, typename IdxFn>
  std::array<T, kWarpSize> gather(const DeviceBuffer<T>& buf,
                                  std::uint32_t mask, IdxFn&& idx_fn) {
    std::array<Access, kWarpSize> acc;
    std::array<T, kWarpSize> out{};
    int cnt = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if ((mask >> lane) & 1u) {
        const std::size_t i = idx_fn(lane);
        acc[cnt++] = Access{buf.addr_of(i), sizeof(T), MemOp::kLoad};
        out[lane] = detail::read_elem(buf.host()[i], concurrent());
      }
    }
    slots_ += account_slot(acc.data(), cnt);
    return out;
  }

  /// One scatter slot: active lanes store val_fn(lane) to buf[idx_fn(lane)].
  /// Lanes must target distinct indices (CUDA semantics leave same-address
  /// plain stores undefined); use atomic_add for conflicting writes.
  template <typename T, typename IdxFn, typename ValFn>
  void scatter(DeviceBuffer<T>& buf, std::uint32_t mask, IdxFn&& idx_fn,
               ValFn&& val_fn) {
    std::array<Access, kWarpSize> acc;
    int cnt = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if ((mask >> lane) & 1u) {
        const std::size_t i = idx_fn(lane);
        acc[cnt++] = Access{buf.addr_of(i), sizeof(T), MemOp::kStore};
        detail::write_elem(buf.host()[i], static_cast<T>(val_fn(lane)),
                           concurrent());
      }
    }
    slots_ += account_slot(acc.data(), cnt);
  }

  /// One atomic slot: active lanes atomically add val_fn(lane) into
  /// buf[idx_fn(lane)]; contended addresses serialize in the cost model.
  template <typename T, typename IdxFn, typename ValFn>
  void atomic_add(DeviceBuffer<T>& buf, std::uint32_t mask, IdxFn&& idx_fn,
                  ValFn&& val_fn) {
    std::array<Access, kWarpSize> acc;
    const MemOp op = buf.atomic_op();
    int cnt = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if ((mask >> lane) & 1u) {
        const std::size_t i = idx_fn(lane);
        acc[cnt++] = Access{buf.addr_of(i), sizeof(T), op};
        const T val = static_cast<T>(val_fn(lane));
        T& slot = buf.host()[i];
        if (!concurrent()) {
          slot = static_cast<T>(slot + val);
        } else if constexpr (std::is_integral_v<T>) {
          std::atomic_ref<T>(slot).fetch_add(val, std::memory_order_relaxed);
        } else {
          deferred_->push_back(DeferredAdd{&slot, static_cast<double>(val),
                                           std::is_same_v<T, double>});
        }
      }
    }
    slots_ += account_slot(acc.data(), cnt);
  }

  /// All 32 lanes read the same element (e.g. the column pointer pair in
  /// Algorithm 4): one slot, one transaction.
  template <typename T>
  T broadcast_load(const DeviceBuffer<T>& buf, std::size_t i) {
    Access a{buf.addr_of(i), sizeof(T), MemOp::kLoad};
    slots_ += account_slot(&a, 1);
    return detail::read_elem(buf.host()[i], concurrent());
  }

  /// __shfl_down_sync: lane L receives v[L + offset] (lanes past the end keep
  /// their value, matching CUDA's behaviour within a full mask). One slot.
  template <typename T>
  std::array<T, kWarpSize> shfl_down(const std::array<T, kWarpSize>& v,
                                     int offset) {
    std::array<T, kWarpSize> out = v;
    for (int lane = 0; lane + offset < kWarpSize; ++lane) {
      out[lane] = v[lane + offset];
    }
    count_ops(1);
    return out;
  }

  /// Full warp shuffle reduction (Algorithm 4, lines 17-21): log2(32) = 5
  /// shfl_down + add slots; returns the total in lane 0's position.
  template <typename T>
  T reduce_add(std::array<T, kWarpSize> v) {
    for (int offset = kWarpSize / 2; offset > 0; offset /= 2) {
      const auto shifted = shfl_down(v, offset);
      for (int lane = 0; lane < kWarpSize; ++lane) {
        v[lane] = static_cast<T>(v[lane] + shifted[lane]);
      }
      count_ops(1);  // the add
    }
    return v[0];
  }

  /// Charge `n` ALU warp instructions.
  void count_ops(std::uint64_t n) {
    rec_->issue_slots += n;
    slots_ += n;
  }

  /// Charge `n` 64-bit mask warp instructions: ALU cost plus the launch's
  /// word-op traffic counter (see ThreadCtx::count_word_ops).
  void count_word_ops(std::uint64_t n) {
    rec_->word_ops += n;
    count_ops(n);
  }

 private:
  std::uint64_t account_slot(const Access* acc, int cnt) {
    if (cost_ != nullptr) return cost_->process_slot(*rec_, acc, cnt);
    return CostModel::coalesce_slot(*props_, *rec_, acc, cnt, *sectors_);
  }

  CostModel* cost_ = nullptr;
  const DeviceProps* props_;
  LaunchRecord* rec_;
  std::vector<std::uint64_t>* sectors_ = nullptr;
  std::vector<DeferredAdd>* deferred_ = nullptr;
  std::uint64_t warp_id_;
  std::uint64_t num_warps_;
  std::uint64_t slots_ = 0;
};

/// Run `body(WarpCtx&)` for warp ids [0, n_warps).
template <typename Body>
void launch_warp(Device& device, std::string_view name, std::uint64_t n_warps,
                 Body&& body, LaunchPolicy policy = LaunchPolicy::kParallelOk) {
  LaunchRecord rec;
  rec.kernel = intern_kernel_name(name);
  rec.warps = n_warps;
  CostModel& cost = device.cost_model();

  if (!detail::use_parallel_engine(policy, n_warps)) {
    for (std::uint64_t w = 0; w < n_warps; ++w) {
      WarpCtx ctx(cost, rec, w, n_warps);
      body(ctx);
      rec.max_warp_slots = std::max(rec.max_warp_slots, ctx.slots());
    }
  } else {
    ExecutorPool& pool = ExecutorPool::instance();
    std::vector<detail::LaunchShard> shards(pool.threads());
    pool.for_chunks(n_warps, [&](std::uint64_t wb, std::uint64_t we,
                                 unsigned slot) {
      detail::LaunchShard& sh = shards[slot];
      for (std::uint64_t w = wb; w < we; ++w) {
        WarpCtx ctx(device.props(), sh.rec, sh.sectors, sh.deferred, w,
                    n_warps);
        body(ctx);
        sh.max_warp_slots = std::max(sh.max_warp_slots, ctx.slots());
      }
    });
    detail::merge_shards(cost, rec, shards);
  }

  cost.finalize(rec);
  device.commit_launch(std::move(rec));
}

}  // namespace turbobc::sim
