// Analytic performance model for simulated kernel launches.
//
// The model is deliberately simple and fully documented, because its job is
// to reproduce the *shape* of the paper's results, not absolute nanoseconds:
//
//  * Global memory accesses are grouped per warp "slot" (one memory
//    instruction issued by a warp). The active lanes' addresses are mapped to
//    32-byte sectors; the number of unique sectors is the transaction count,
//    which is what coalescing is: 32 adjacent 4-byte loads -> 4 transactions,
//    32 scattered loads -> up to 32 transactions.
//  * Transactions probe a direct-mapped L2 model (3 MB, persisting across
//    launches). Hits cost L2 bandwidth, misses cost DRAM bandwidth. This is
//    why frontier-dense kernels (veCSC on mycielski graphs, BFS depth 3) can
//    report global-load throughput above the DRAM peak, exactly as the
//    paper's Figure 5b shows for TurboBC kernels.
//  * Each slot costs issue cycles; uncoalesced slots replay once per
//    transaction. Warp divergence in scalar kernels appears naturally as
//    longer per-lane access sequences that cannot share slots.
//  * Kernel time = launch overhead + max(compute time, memory time), where
//    compute time is itself the max of a throughput bound (total slots over
//    all SMs) and a critical-path bound (slots of the busiest warp). The
//    critical-path bound is what penalizes load imbalance from mega-degree
//    vertices, the paper's motivation for the COOC and veCSC variants.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "gpusim/device_props.hpp"

namespace turbobc::sim {

enum class MemOp : std::uint8_t { kLoad, kStore, kAtomic, kAtomicFloat };

/// One global-memory access by one lane.
struct Access {
  std::uint64_t addr = 0;
  std::uint8_t size = 0;  // bytes, <= 16
  MemOp op = MemOp::kLoad;
};

/// Interns a kernel name into a process-lifetime table and returns a stable
/// view. Launch sites pass string literals or short-lived strings; interning
/// means LaunchRecord carries a cheap view instead of allocating a
/// std::string per launch (the launchers sit on the hot path of every test
/// and bench).
std::string_view intern_kernel_name(std::string_view name);

/// A floating-point atomic add captured during a host-parallel launch.
/// Float addition is not associative, so concurrent eager adds would make
/// results depend on the host schedule; instead each worker logs its adds in
/// program order and the launcher applies all logs in warp order at shard
/// merge — reproducing the serial engine's accumulation order exactly.
/// (Integer adds are exact under any order and run eagerly.)
struct DeferredAdd {
  void* target = nullptr;
  double value = 0.0;    // holds any float value exactly
  bool is_double = true;  // else the target is a float

  void apply() const {
    if (is_double) {
      *static_cast<double*>(target) += value;
    } else {
      *static_cast<float*>(target) += static_cast<float>(value);
    }
  }
};

/// Statistics for a single kernel launch (the simulator's analogue of an
/// nvprof row). `kernel` points into the intern table (or a string literal)
/// and is valid for the life of the process.
struct LaunchRecord {
  std::string_view kernel;
  std::uint64_t warps = 0;
  std::uint64_t issue_slots = 0;      // total warp instruction issues
  std::uint64_t max_warp_slots = 0;   // busiest warp (critical path)
  std::uint64_t load_requests = 0;    // per-lane requests
  std::uint64_t store_requests = 0;
  std::uint64_t atomic_requests = 0;
  std::uint64_t atomic_float_requests = 0;  // subset of atomic_requests
  std::uint64_t load_transactions = 0;   // 32 B sectors
  std::uint64_t store_transactions = 0;
  std::uint64_t l2_hit_transactions = 0;
  std::uint64_t dram_transactions = 0;
  /// 64-bit mask instructions (AND/OR/shift/popcount) issued by MS-BFS
  /// kernels. A subset of issue_slots: each word op is charged as a normal
  /// ALU instruction for timing AND counted here, so benches can report how
  /// much of a sweep's work ran 64 sources wide. Zero for scalar kernels.
  std::uint64_t word_ops = 0;
  double time_s = 0.0;

  std::uint64_t transaction_bytes(int sector_bytes) const {
    return (load_transactions + store_transactions) *
           static_cast<std::uint64_t>(sector_bytes);
  }

  /// Global-load throughput: bytes of load transactions served (from L2 or
  /// DRAM) per second of kernel time. Comparable to the paper's GLT metric.
  double glt_bps(int sector_bytes) const {
    return time_s > 0.0 ? static_cast<double>(load_transactions) *
                              static_cast<double>(sector_bytes) / time_s
                        : 0.0;
  }
};

/// Transaction-level memory and timing model. Owns the L2 tag state, which
/// persists across launches like a real cache.
class CostModel {
 public:
  explicit CostModel(const DeviceProps& props);

  /// Account one warp memory slot. `accesses` holds the active lanes'
  /// requests (inactive lanes simply absent). Returns the number of issue
  /// slots consumed (>= 1; replays for uncoalesced transactions, plus
  /// serialization for contended atomics).
  std::uint64_t process_slot(LaunchRecord& rec, const Access* accesses,
                             int count);

  /// The slot pipeline is split in two so the parallel launch engine can run
  /// the pure part concurrently and the L2-stateful part serially:
  ///
  ///  * coalesce_slot — pure function of the accesses: bumps the request and
  ///    transaction counters and issue slots on `rec`, and appends the
  ///    slot's unique sectors (ascending) to `sectors_out`. Touches no L2
  ///    state, so per-warp results are identical no matter which host thread
  ///    or order computes them.
  ///  * replay_sectors — probes the direct-mapped L2 with a sector stream in
  ///    order, splitting transactions into l2_hit/dram on `rec`. Must be
  ///    called in global warp order (warp 0's slots first, then warp 1's, …)
  ///    to reproduce the serial engine's cache timeline bit-for-bit.
  ///
  /// process_slot == coalesce_slot + replay_sectors on the same record.
  static std::uint64_t coalesce_slot(const DeviceProps& props,
                                     LaunchRecord& rec, const Access* accesses,
                                     int count,
                                     std::vector<std::uint64_t>& sectors_out);
  void replay_sectors(LaunchRecord& rec, const std::uint64_t* sectors,
                      std::size_t count);

  /// Account `n` pure-ALU warp instructions.
  static std::uint64_t alu_slots(std::uint64_t n) { return n; }

  /// Final time for a finished launch; also fills rec.time_s.
  double finalize(LaunchRecord& rec) const;

  /// Timing for a bulk device-side memset of `bytes` (modeled as a
  /// store-only, perfectly coalesced kernel).
  double memset_time(std::uint64_t bytes) const;

  /// Host<->device transfer time over the simulated PCIe link.
  double transfer_time(std::uint64_t bytes) const;

  /// Extra issue-slot multiplier for floating-point atomics relative to
  /// integer atomics. Pascal implements fp32 global atomics natively but at
  /// a lower rate than int32; the paper exploits this by running the BFS
  /// stage on integer vectors (Section 3.4, "up to 2.7x faster").
  static constexpr std::uint64_t kFloatAtomicPenalty = 4;

  void reset_l2();

  const DeviceProps& props() const noexcept { return props_; }

 private:
  bool l2_probe_and_fill(std::uint64_t sector);

  DeviceProps props_;
  std::vector<std::uint64_t> l2_tags_;  // direct-mapped, one tag per line
};

}  // namespace turbobc::sim
