// Observability for the simulated device: a per-kernel profile report (the
// text analogue of an nvprof summary) and a Chrome trace-event export of the
// launch timeline (open chrome://tracing or https://ui.perfetto.dev and load
// the JSON to see the kernels the way you would a real GPU capture).
#pragma once

#include <iosfwd>

#include "gpusim/device.hpp"

namespace turbobc::sim {

/// Per-kernel-name summary: launches, total modeled time, average time,
/// transactions, L2 hit rate and GLT — sorted by total time, descending.
void print_kernel_profile(std::ostream& os, const Device& device);

/// Chrome trace-event JSON ("traceEvents" array of complete events, one per
/// launch, on a single simulated-GPU track; microsecond timestamps laid out
/// back to back in launch order). Requires launch records
/// (Device::set_keep_launch_records(true), the default).
void write_chrome_trace(std::ostream& os, const Device& device);

}  // namespace turbobc::sim
