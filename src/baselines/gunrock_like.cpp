#include "baselines/gunrock_like.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "gpusim/kernel.hpp"

namespace turbobc::baseline {

namespace {

double device_clock(const sim::Device& d) {
  return d.kernel_seconds() + d.transfer_seconds() + d.overhead_seconds();
}

struct HostCsr {
  std::vector<std::int32_t> off;
  std::vector<vidx_t> idx;
};

/// offsets by key(edge); `by_source` selects CSR (out) vs CSC (in).
HostCsr build(const graph::EdgeList& canon, bool by_source) {
  const auto n = static_cast<std::size_t>(canon.num_vertices());
  HostCsr h;
  h.off.assign(n + 1, 0);
  for (const graph::Edge& e : canon.edges()) {
    ++h.off[static_cast<std::size_t>(by_source ? e.u : e.v) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) h.off[v + 1] += h.off[v];
  h.idx.resize(canon.edges().size());
  std::vector<std::int32_t> cursor(h.off.begin(), h.off.end() - 1);
  for (const graph::Edge& e : canon.edges()) {
    const auto key = static_cast<std::size_t>(by_source ? e.u : e.v);
    h.idx[static_cast<std::size_t>(cursor[key]++)] = by_source ? e.v : e.u;
  }
  return h;
}

graph::EdgeList canonical(const graph::EdgeList& g) {
  graph::EdgeList c = g;
  c.canonicalize();
  return c;
}

}  // namespace

GunrockLikeBc::GunrockLikeBc(sim::Device& device, const graph::EdgeList& graph)
    : GunrockLikeBc(device, canonical(graph), 0) {}

// Private-ish delegating pattern avoided: do the work directly.
// (The public constructor canonicalizes; this one consumes the result.)
GunrockLikeBc::GunrockLikeBc(sim::Device& device, const graph::EdgeList& canon,
                             int)
    : device_(device),
      n_(canon.num_vertices()),
      m_(canon.num_arcs()),
      directed_(canon.directed()),
      csr_off_(device, static_cast<std::size_t>(n_) + 1, "gr_csr_off"),
      csr_col_(device, static_cast<std::size_t>(m_), "gr_csr_col"),
      csc_off_(device, static_cast<std::size_t>(n_) + 1, "gr_csc_off"),
      csc_row_(device, static_cast<std::size_t>(m_), "gr_csc_row"),
      labels_(device, static_cast<std::size_t>(n_), "gr_labels"),
      preds_(device, static_cast<std::size_t>(n_), "gr_preds"),
      visited_(device, static_cast<std::size_t>(n_), "gr_visited"),
      sigma_(device, static_cast<std::size_t>(n_), "gr_sigma", 4),
      delta_(device, static_cast<std::size_t>(n_), "gr_delta", 4),
      bc_(device, static_cast<std::size_t>(n_), "gr_bc", 4),
      queue_a_(device, static_cast<std::size_t>(n_), "gr_queue_a"),
      queue_b_(device, static_cast<std::size_t>(n_), "gr_queue_b"),
      qcount_(device, 1, "gr_qcount"),
      lb_scratch_(device, static_cast<std::size_t>(m_), "gr_lb_scratch") {
  TBC_CHECK(n_ > 0, "gunrock baseline needs a non-empty graph");
  const HostCsr csr = build(canon, /*by_source=*/true);
  const HostCsr csc = build(canon, /*by_source=*/false);
  csr_off_.copy_from_host(csr.off);
  csr_col_.copy_from_host(csr.idx);
  csc_off_.copy_from_host(csc.off);
  csc_row_.copy_from_host(csc.idx);
  bc_.device_fill(0.0);
}

std::size_t GunrockLikeBc::inventory_bytes() const {
  return csr_off_.bytes() + csr_col_.bytes() + csc_off_.bytes() +
         csc_row_.bytes() + labels_.bytes() + preds_.bytes() +
         visited_.bytes() + sigma_.bytes() + delta_.bytes() + bc_.bytes() +
         queue_a_.bytes() + queue_b_.bytes() + qcount_.bytes() +
         lb_scratch_.bytes();
}

GunrockBcResult GunrockLikeBc::run_single_source(vidx_t source) {
  TBC_CHECK(source >= 0 && source < n_, "source out of range");
  sim::Device& dev = device_;
  dev.memory().reset_peak();
  const double start = device_clock(dev);

  labels_.device_fill(-1);
  sigma_.device_fill(0.0);
  delta_.device_fill(0.0);
  bc_.device_fill(0.0);

  sim::launch_scalar(dev, "gunrock_init", 1, [&](sim::ThreadCtx& t) {
    labels_.store(t, static_cast<std::size_t>(source), 0);
    sigma_.store(t, static_cast<std::size_t>(source), 1.0);
    queue_a_.store(t, 0, source);
  });

  sim::DeviceBuffer<vidx_t>* frontier = &queue_a_;
  sim::DeviceBuffer<vidx_t>* next = &queue_b_;
  std::int32_t fsize = 1;
  std::int32_t level = 0;
  const auto pull_threshold = std::max<std::int32_t>(1, n_ / 20);

  while (fsize > 0) {
    qcount_.device_fill(0);
    if (fsize >= pull_threshold) {
      // Pull advance: undiscovered vertices scan their in-neighbours.
      sim::launch_scalar(
          dev, "gunrock_advance_pull", static_cast<std::uint64_t>(n_),
          [&](sim::ThreadCtx& t) {
            const auto i = static_cast<std::size_t>(t.global_id());
            if (labels_.load(t, i) != -1) return;
            const std::int32_t begin = csc_off_.load(t, i);
            const std::int32_t end = csc_off_.load(t, i + 1);
            bc_t sum = 0.0;
            for (std::int32_t k = begin; k < end; ++k) {
              const vidx_t u = csc_row_.load(t, static_cast<std::size_t>(k));
              t.count_ops(1);
              if (labels_.load(t, static_cast<std::size_t>(u)) == level) {
                sum += sigma_.load(t, static_cast<std::size_t>(u));
              }
            }
            if (sum > 0.0) {
              labels_.store(t, i, level + 1);
              sigma_.store(t, i, sum);
            }
          });
      // Frontier bitmap <-> queue conversion pass (direction-optimized
      // BFS keeps a dense bitmap during pull rounds).
      sim::launch_scalar(
          dev, "gunrock_bitmap_convert", static_cast<std::uint64_t>(n_),
          [&](sim::ThreadCtx& t) {
            const auto i = static_cast<std::size_t>(t.global_id());
            const bool in_next = labels_.load(t, i) == level + 1;
            visited_.store(t, i, in_next ? 1 : 0);
            t.count_ops(1);
          });
      // Filter rebuilds the vertex queue from the label array. Queue slots
      // come from the atomic counter's return value, so thread order decides
      // queue layout: serial-only under the host-parallel engine.
      sim::launch_scalar(
          dev, "gunrock_filter", static_cast<std::uint64_t>(n_),
          [&](sim::ThreadCtx& t) {
            const auto i = static_cast<std::size_t>(t.global_id());
            if (labels_.load(t, i) == level + 1) {
              const std::int32_t slot = qcount_.atomic_add(t, 0, 1);
              next->store(t, static_cast<std::size_t>(slot),
                          static_cast<vidx_t>(i));
            }
          },
          sim::LaunchPolicy::kSerialOnly);
    } else {
      // Load-balanced push advance: one thread per frontier edge. The LB
      // partition pass (gunrock's per-block scan over the frontier's degree
      // prefix sums) is charged first.
      const auto& q = frontier->host();
      const auto& off = csr_off_.host();
      std::vector<std::pair<vidx_t, std::int32_t>> fedges;  // (src, csr slot)
      for (std::int32_t i = 0; i < fsize; ++i) {
        const vidx_t u = q[static_cast<std::size_t>(i)];
        for (std::int32_t k = off[static_cast<std::size_t>(u)];
             k < off[static_cast<std::size_t>(u) + 1]; ++k) {
          fedges.emplace_back(u, k);
        }
      }
      // The partition kernel expands the frontier's source ids into the
      // edge-frontier scratch (one slot per frontier edge).
      sim::launch_scalar(
          dev, "gunrock_lb_partition", static_cast<std::uint64_t>(fsize),
          [&, base = std::size_t{0}](sim::ThreadCtx& t) mutable {
            const auto i = static_cast<std::size_t>(t.global_id());
            const vidx_t u = frontier->load(t, i);
            const std::int32_t b = csr_off_.load(t, static_cast<std::size_t>(u));
            const std::int32_t e =
                csr_off_.load(t, static_cast<std::size_t>(u) + 1);
            for (std::int32_t k = b; k < e; ++k) {
              lb_scratch_.store(t, base++, u);
            }
            t.count_ops(2);
          },
          // `base` is shared mutable lambda state advanced in thread order.
          sim::LaunchPolicy::kSerialOnly);
      // gunrock's TWC load balancing dispatches the frontier's degree
      // classes to separate sub-kernels; the small/medium class launches are
      // charged here (the bulk class is the main advance below).
      sim::launch_scalar(dev, "gunrock_advance_twc_small",
                         static_cast<std::uint64_t>(std::min<std::int32_t>(
                             fsize, 32)),
                         [&](sim::ThreadCtx& t) { t.count_ops(1); });
      sim::launch_scalar(dev, "gunrock_advance_twc_medium",
                         static_cast<std::uint64_t>(std::min<std::int32_t>(
                             fsize, 32)),
                         [&](sim::ThreadCtx& t) { t.count_ops(1); });
      sim::launch_scalar(
          dev, "gunrock_advance_push", fedges.size(), [&](sim::ThreadCtx& t) {
            const auto idx = static_cast<std::size_t>(t.global_id());
            const vidx_t u = lb_scratch_.load(t, idx);
            const std::int32_t k = fedges[idx].second;
            const vidx_t w = csr_col_.load(t, static_cast<std::size_t>(k));
            const bc_t su = sigma_.load(t, static_cast<std::size_t>(u));
            const std::int32_t lw =
                labels_.load(t, static_cast<std::size_t>(w));
            t.count_ops(2);
            if (lw == -1) {
              labels_.store(t, static_cast<std::size_t>(w), level + 1);
              preds_.store(t, static_cast<std::size_t>(w), u);
              sigma_.atomic_add(t, static_cast<std::size_t>(w), su);
              const std::int32_t slot = qcount_.atomic_add(t, 0, 1);
              next->store(t, static_cast<std::size_t>(slot), w);
            } else if (lw == level + 1) {
              sigma_.atomic_add(t, static_cast<std::size_t>(w), su);
            }
          },
          // Queue slots come from the atomic counter's return value.
          sim::LaunchPolicy::kSerialOnly);
    }
    // gunrock's oprtr pipeline runs a filter/uniquify pass over the raw
    // output queue and synchronizes with the host after BOTH the advance and
    // the filter — one of the framework overheads the paper's "simpler,
    // hence less overhead" design avoids.
    {
      const std::int32_t raw = qcount_.host()[0];
      sim::launch_scalar(dev, "gunrock_filter_uniquify",
                         static_cast<std::uint64_t>(raw),
                         [&](sim::ThreadCtx& t) {
                           const auto i = static_cast<std::size_t>(t.global_id());
                           const vidx_t v = next->load(t, i);
                           labels_.load(t, static_cast<std::size_t>(v));
                           t.count_ops(2);
                         });
      dev.charge_transfer(4);  // post-advance sync
    }
    fsize = qcount_.copy_to_host()[0];  // post-filter sync
    std::swap(frontier, next);
    ++level;
  }
  const vidx_t height = level - 1;

  // Backward: per level, vertices accumulate dependency from their
  // out-neighbours one level deeper. gunrock drives this phase through the
  // same advance/filter operator pipeline, so each level pays a frontier
  // setup kernel and a host synchronization on top of the accumulation.
  std::vector<std::int32_t> level_counts(static_cast<std::size_t>(height) + 1,
                                         0);
  for (const std::int32_t l : labels_.host()) {
    if (l >= 0) ++level_counts[static_cast<std::size_t>(l)];
  }
  for (std::int32_t lev = height - 1; lev >= 0; --lev) {
    sim::launch_scalar(dev, "gunrock_bc_setup",
                       static_cast<std::uint64_t>(
                           level_counts[static_cast<std::size_t>(lev)]),
                       [&](sim::ThreadCtx& t) {
                         queue_a_.load(t, static_cast<std::size_t>(
                                              t.global_id()));
                         t.count_ops(2);
                       });
    dev.charge_transfer(4);  // per-iteration sync
    sim::launch_scalar(
        dev, "gunrock_bc_backward", static_cast<std::uint64_t>(n_),
        [&](sim::ThreadCtx& t) {
          const auto i = static_cast<std::size_t>(t.global_id());
          if (labels_.load(t, i) != lev) return;
          const std::int32_t begin = csr_off_.load(t, i);
          const std::int32_t end = csr_off_.load(t, i + 1);
          bc_t acc = 0.0;
          for (std::int32_t k = begin; k < end; ++k) {
            const vidx_t w = csr_col_.load(t, static_cast<std::size_t>(k));
            t.count_ops(1);
            if (labels_.load(t, static_cast<std::size_t>(w)) == lev + 1) {
              const bc_t sw = sigma_.load(t, static_cast<std::size_t>(w));
              const bc_t dw = delta_.load(t, static_cast<std::size_t>(w));
              acc += (1.0 + dw) / sw;
            }
          }
          if (acc != 0.0) {
            const bc_t si = sigma_.load(t, i);
            delta_.store(t, i, si * acc);
          }
        });
  }

  const bc_t scale = directed_ ? 1.0 : 0.5;
  sim::launch_scalar(dev, "gunrock_bc_accum", static_cast<std::uint64_t>(n_),
                     [&](sim::ThreadCtx& t) {
                       const auto i = static_cast<std::size_t>(t.global_id());
                       if (static_cast<vidx_t>(i) == source) return;
                       const bc_t dl = delta_.load(t, i);
                       if (dl != 0.0) {
                         bc_.store(t, i, bc_.load(t, i) + dl * scale);
                       }
                     });

  GunrockBcResult r;
  r.bfs_depth = height;
  r.device_seconds = device_clock(dev) - start;
  r.peak_device_bytes = dev.memory().peak_bytes();
  r.bc = bc_.copy_to_host();
  return r;
}

}  // namespace turbobc::baseline
