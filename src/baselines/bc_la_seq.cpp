#include "baselines/bc_la_seq.hpp"

#include "common/error.hpp"

namespace turbobc::baseline {

namespace {
constexpr std::uint64_t kIdx = sizeof(vidx_t);    // 4
constexpr std::uint64_t kWord = sizeof(sigma_t);  // 8
}  // namespace

SequentialBcLa::SequentialBcLa(const graph::EdgeList& graph,
                               sim::CpuModel model)
    : model_(model) {
  graph::EdgeList canon = graph;
  canon.canonicalize();
  directed_ = canon.directed();
  csc_ = graph::CscGraph::from_edges(canon);
  TBC_CHECK(csc_.num_vertices() > 0, "sequential BC needs a non-empty graph");
}

SourceTraversal SequentialBcLa::run_source_into(vidx_t source,
                                                std::vector<bc_t>& bc,
                                                sim::CpuOpCounts& ops) const {
  const auto n = static_cast<std::size_t>(csc_.num_vertices());
  const auto& cp = csc_.col_ptr();
  const auto& rows = csc_.row_idx();

  std::vector<sigma_t> sigma(n, 0), f(n, 0), ft(n, 0);
  std::vector<vidx_t> S(n, 0);
  f[static_cast<std::size_t>(source)] = 1;
  sigma[static_cast<std::size_t>(source)] = 1;
  vidx_t reached = 1;

  // Forward stage: per level, Algorithm 3's masked column gather followed by
  // the frontier/sigma/S update sweep.
  vidx_t d = 0;
  bool frontier_nonempty = true;
  while (frontier_nonempty) {
    ++d;
    frontier_nonempty = false;
    std::fill(ft.begin(), ft.end(), 0);
    ops.seq_bytes += n * kWord;  // f_t <- 0

    for (std::size_t i = 0; i < n; ++i) {
      ops.seq_bytes += kWord;  // sigma(i)
      if (sigma[i] != 0) continue;
      const eidx_t begin = cp[i];
      const eidx_t end = cp[i + 1];
      ops.seq_bytes += 2 * kIdx;
      sigma_t sum = 0;
      for (eidx_t k = begin; k < end; ++k) {
        const auto r = static_cast<std::size_t>(
            rows[static_cast<std::size_t>(k)]);
        sum += f[r];
        ops.seq_bytes += kIdx;   // row_A(k), streamed
        ops.rand_bytes += kWord; // f(row), dependent random load
        ops.alu_ops += 1;
      }
      if (sum > 0) {
        ft[i] = sum;
        ops.seq_bytes += kWord;
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      const sigma_t v = ft[i];
      f[i] = v;
      ops.seq_bytes += 2 * kWord;  // read f_t, write f
      ops.alu_ops += 1;
      if (v != 0) {
        S[i] = d;
        sigma[i] += v;
        ops.seq_bytes += kIdx + kWord;
        frontier_nonempty = true;
        ++reached;
      }
    }
  }
  const vidx_t height = d - 1;

  // Backward stage.
  std::vector<bc_t> delta(n, 0.0), delta_u(n, 0.0), delta_ut(n, 0.0);
  for (vidx_t dd = height; dd >= 2; --dd) {
    for (std::size_t i = 0; i < n; ++i) {
      bc_t out = 0.0;
      ops.seq_bytes += kIdx;  // S(i)
      if (S[i] == dd && sigma[i] > 0) {
        out = (1.0 + delta[i]) / static_cast<bc_t>(sigma[i]);
        ops.seq_bytes += 2 * kWord;
        ops.alu_ops += 2;
      }
      delta_u[i] = out;
      ops.seq_bytes += kWord;
    }

    std::fill(delta_ut.begin(), delta_ut.end(), 0.0);
    ops.seq_bytes += n * kWord;
    if (!directed_) {
      // Symmetric matrix: per-column gather (Algorithm 3 without the mask).
      for (std::size_t i = 0; i < n; ++i) {
        const eidx_t begin = cp[i];
        const eidx_t end = cp[i + 1];
        ops.seq_bytes += 2 * kIdx;
        bc_t sum = 0.0;
        for (eidx_t k = begin; k < end; ++k) {
          const auto r = static_cast<std::size_t>(
              rows[static_cast<std::size_t>(k)]);
          sum += delta_u[r];
          ops.seq_bytes += kIdx;
          ops.rand_bytes += kWord;
          ops.alu_ops += 1;
        }
        if (sum != 0.0) {
          delta_ut[i] = sum;
          ops.seq_bytes += kWord;
        }
      }
    } else {
      // Directed: out-neighbour sums via scatter through the same structure.
      for (std::size_t w = 0; w < n; ++w) {
        const bc_t xv = delta_u[w];
        ops.seq_bytes += kWord;
        if (xv == 0.0) continue;
        const eidx_t begin = cp[w];
        const eidx_t end = cp[w + 1];
        ops.seq_bytes += 2 * kIdx;
        for (eidx_t k = begin; k < end; ++k) {
          const auto r = static_cast<std::size_t>(
              rows[static_cast<std::size_t>(k)]);
          delta_ut[r] += xv;
          ops.seq_bytes += kIdx;
          ops.rand_bytes += kWord;
          ops.alu_ops += 1;
        }
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      ops.seq_bytes += kIdx;  // S(i)
      if (S[i] == dd - 1 && delta_ut[i] != 0.0) {
        delta[i] += delta_ut[i] * static_cast<bc_t>(sigma[i]);
        ops.seq_bytes += 3 * kWord;
        ops.alu_ops += 2;
      }
    }
  }

  const bc_t scale = directed_ ? 1.0 : 0.5;
  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<vidx_t>(v) != source && delta[v] != 0.0) {
      bc[v] += delta[v] * scale;
    }
    ops.seq_bytes += kWord;
    ops.alu_ops += 1;
  }
  return {height, reached};
}

SourceTraversal SequentialBcLa::accumulate_source(vidx_t source,
                                                  std::vector<bc_t>& bc,
                                                  sim::CpuOpCounts& ops) const {
  TBC_CHECK(source >= 0 && source < csc_.num_vertices(),
            "source out of range");
  TBC_CHECK(bc.size() == static_cast<std::size_t>(csc_.num_vertices()),
            "accumulator length must match the vertex count");
  return run_source_into(source, bc, ops);
}

SeqBcLaResult SequentialBcLa::run_single_source(vidx_t source) const {
  TBC_CHECK(source >= 0 && source < csc_.num_vertices(),
            "source out of range");
  SeqBcLaResult r;
  r.bc.assign(static_cast<std::size_t>(csc_.num_vertices()), 0.0);
  r.bfs_depth = run_source_into(source, r.bc, r.ops).height;
  r.modeled_seconds = model_.seconds_sequential(r.ops);
  return r;
}

SeqBcLaResult SequentialBcLa::run_exact() const {
  SeqBcLaResult r;
  const vidx_t n = csc_.num_vertices();
  r.bc.assign(static_cast<std::size_t>(n), 0.0);
  for (vidx_t s = 0; s < n; ++s) {
    r.bfs_depth = run_source_into(s, r.bc, r.ops).height;
  }
  r.modeled_seconds = model_.seconds_sequential(r.ops);
  return r;
}

}  // namespace turbobc::baseline
