// Sequential linear-algebra BC: the paper's "(sequential)x" baseline.
//
// This is Algorithm 1 executed on the host with the Algorithm 3 (CSC,
// sigma-masked) SpMV — the paper's own sequential comparator ("our
// implementation of the sequential version of Algorithm 1 with the sparse
// adjacency matrix in the CSC format"). Note its per-level cost is
// O(n + touched edges), so deep BFS trees (road networks) are punished by
// the d*n column scans — which is precisely why the paper's speedups are
// largest on deep graphs.
//
// The implementation counts its work (ALU ops, streaming bytes, dependent
// random-access bytes) and reports modeled single-core seconds via CpuModel,
// the same currency as the simulated GPU timeline (see DESIGN.md §1).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "gpusim/cpumodel.hpp"
#include "graph/csc.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::baseline {

struct SeqBcLaResult {
  std::vector<bc_t> bc;
  vidx_t bfs_depth = 0;
  sim::CpuOpCounts ops;
  double modeled_seconds = 0.0;
};

/// Shape of one source's traversal (the host-side twin of bc::SourceStats).
struct SourceTraversal {
  vidx_t height = 0;   ///< BFS tree height (the paper's d)
  vidx_t reached = 0;  ///< vertices discovered, including the source
};

class SequentialBcLa {
 public:
  explicit SequentialBcLa(const graph::EdgeList& graph,
                          sim::CpuModel model = sim::CpuModel{});

  /// Single-source dependency contribution (halved when undirected).
  SeqBcLaResult run_single_source(vidx_t source) const;

  /// Exact BC over all sources.
  SeqBcLaResult run_exact() const;

  /// Accumulate one source's dependency contribution into `bc`, counting
  /// work into `ops` — the scheduling unit of the hybrid co-execution
  /// engine (src/hybrid/). The arithmetic is the scCSC device pipeline's,
  /// fold for fold: masked column gathers in storage order, skip-exact-zero
  /// stores, `bc[v] += delta[v] * scale` skipping the source and zeros — so
  /// a block of sources accumulated into a zeroed vector is bit-identical
  /// to TurboBC::run_source_block's downloaded partial for the same block.
  /// Thread-safe (const; all state is the caller's).
  SourceTraversal accumulate_source(vidx_t source, std::vector<bc_t>& bc,
                                    sim::CpuOpCounts& ops) const;

  vidx_t num_vertices() const noexcept { return csc_.num_vertices(); }

  /// The canonical CSC the arithmetic runs over (hybrid block weights read
  /// its stored column degrees).
  const graph::CscGraph& csc() const noexcept { return csc_; }

 private:
  SourceTraversal run_source_into(vidx_t source, std::vector<bc_t>& bc,
                                  sim::CpuOpCounts& ops) const;

  graph::CscGraph csc_;
  bool directed_ = false;
  sim::CpuModel model_;
};

}  // namespace turbobc::baseline
