// Sequential linear-algebra BC: the paper's "(sequential)x" baseline.
//
// This is Algorithm 1 executed on the host with the Algorithm 3 (CSC,
// sigma-masked) SpMV — the paper's own sequential comparator ("our
// implementation of the sequential version of Algorithm 1 with the sparse
// adjacency matrix in the CSC format"). Note its per-level cost is
// O(n + touched edges), so deep BFS trees (road networks) are punished by
// the d*n column scans — which is precisely why the paper's speedups are
// largest on deep graphs.
//
// The implementation counts its work (ALU ops, streaming bytes, dependent
// random-access bytes) and reports modeled single-core seconds via CpuModel,
// the same currency as the simulated GPU timeline (see DESIGN.md §1).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "gpusim/cpumodel.hpp"
#include "graph/csc.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::baseline {

struct SeqBcLaResult {
  std::vector<bc_t> bc;
  vidx_t bfs_depth = 0;
  sim::CpuOpCounts ops;
  double modeled_seconds = 0.0;
};

class SequentialBcLa {
 public:
  explicit SequentialBcLa(const graph::EdgeList& graph,
                          sim::CpuModel model = sim::CpuModel{});

  /// Single-source dependency contribution (halved when undirected).
  SeqBcLaResult run_single_source(vidx_t source) const;

  /// Exact BC over all sources.
  SeqBcLaResult run_exact() const;

  vidx_t num_vertices() const noexcept { return csc_.num_vertices(); }

 private:
  vidx_t run_source_into(vidx_t source, std::vector<bc_t>& bc,
                         sim::CpuOpCounts& ops) const;

  graph::CscGraph csc_;
  bool directed_ = false;
  sim::CpuModel model_;
};

}  // namespace turbobc::baseline
