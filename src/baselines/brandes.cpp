#include "baselines/brandes.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "graph/csr.hpp"

namespace turbobc::baseline {

namespace {

struct SourcePass {
  std::vector<vidx_t> order;  // vertices in BFS-visit order
  std::vector<vidx_t> dist;
  std::vector<sigma_t> sigma;
  /// Predecessors stored as CSR arc ids so edge dependencies can be
  /// accumulated on the arc itself.
  std::vector<std::vector<eidx_t>> pred_arcs;
};

SourcePass forward_pass(const graph::CsrGraph& adj, vidx_t source) {
  const vidx_t n = adj.num_vertices();
  SourcePass p;
  const auto un = static_cast<std::size_t>(n);
  p.dist.assign(un, kInvalidVertex);
  p.sigma.assign(un, 0);
  p.pred_arcs.assign(un, {});
  p.order.reserve(un);

  std::queue<vidx_t> q;
  p.dist[static_cast<std::size_t>(source)] = 0;
  p.sigma[static_cast<std::size_t>(source)] = 1;
  q.push(source);
  while (!q.empty()) {
    const vidx_t v = q.front();
    q.pop();
    p.order.push_back(v);
    const auto [begin, end] = adj.row_range(v);
    for (eidx_t k = begin; k < end; ++k) {
      const vidx_t w = adj.col_idx()[static_cast<std::size_t>(k)];
      auto& dw = p.dist[static_cast<std::size_t>(w)];
      if (dw == kInvalidVertex) {
        dw = p.dist[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
      if (dw == p.dist[static_cast<std::size_t>(v)] + 1) {
        p.sigma[static_cast<std::size_t>(w)] +=
            p.sigma[static_cast<std::size_t>(v)];
        p.pred_arcs[static_cast<std::size_t>(w)].push_back(k);
      }
    }
  }
  return p;
}

/// Dependency accumulation in reverse BFS order. Adds the per-vertex
/// dependencies into `vertex_out` (unless null) and per-arc dependencies
/// into `edge_out` (unless null), both scaled by `scale`.
void accumulate(const graph::CsrGraph& adj, const SourcePass& p,
                vidx_t source, bc_t scale, std::vector<bc_t>* vertex_out,
                std::vector<bc_t>* edge_out) {
  std::vector<bc_t> delta(p.sigma.size(), 0.0);
  for (auto it = p.order.rbegin(); it != p.order.rend(); ++it) {
    const auto w = static_cast<std::size_t>(*it);
    for (const eidx_t arc : p.pred_arcs[w]) {
      // Recover the arc's source: arcs of vertex v live in v's row range;
      // binary-search the row_ptr for the owner.
      const auto& rp = adj.row_ptr();
      const auto owner_it =
          std::upper_bound(rp.begin(), rp.end(), arc) - rp.begin() - 1;
      const auto v = static_cast<std::size_t>(owner_it);
      const bc_t contribution =
          static_cast<bc_t>(p.sigma[v]) / static_cast<bc_t>(p.sigma[w]) *
          (1.0 + delta[w]);
      delta[v] += contribution;
      if (edge_out != nullptr) {
        (*edge_out)[static_cast<std::size_t>(arc)] += contribution * scale;
      }
    }
    if (vertex_out != nullptr && *it != source) {
      (*vertex_out)[w] += delta[w] * scale;
    }
  }
}

graph::CsrGraph make_adj(const graph::EdgeList& graph) {
  return graph::CsrGraph::from_edges(graph);
}

}  // namespace

std::vector<bc_t> brandes_bc(const graph::EdgeList& graph) {
  const graph::CsrGraph adj = make_adj(graph);
  const bc_t scale = graph.directed() ? 1.0 : 0.5;
  std::vector<bc_t> bc(static_cast<std::size_t>(adj.num_vertices()), 0.0);
  for (vidx_t s = 0; s < adj.num_vertices(); ++s) {
    const SourcePass p = forward_pass(adj, s);
    accumulate(adj, p, s, scale, &bc, nullptr);
  }
  return bc;
}

std::vector<bc_t> brandes_delta(const graph::EdgeList& graph, vidx_t source) {
  const graph::CsrGraph adj = make_adj(graph);
  TBC_CHECK(source >= 0 && source < adj.num_vertices(),
            "Brandes source out of range");
  const bc_t scale = graph.directed() ? 1.0 : 0.5;
  std::vector<bc_t> bc(static_cast<std::size_t>(adj.num_vertices()), 0.0);
  const SourcePass p = forward_pass(adj, source);
  accumulate(adj, p, source, scale, &bc, nullptr);
  return bc;
}

std::vector<sigma_t> brandes_sigma(const graph::EdgeList& graph,
                                   vidx_t source) {
  const graph::CsrGraph adj = make_adj(graph);
  TBC_CHECK(source >= 0 && source < adj.num_vertices(),
            "Brandes source out of range");
  return forward_pass(adj, source).sigma;
}

std::vector<bc_t> brandes_edge_bc(const graph::EdgeList& graph) {
  const graph::CsrGraph adj = make_adj(graph);
  const bc_t scale = graph.directed() ? 1.0 : 0.5;
  std::vector<bc_t> ebc(static_cast<std::size_t>(adj.num_arcs()), 0.0);
  for (vidx_t s = 0; s < adj.num_vertices(); ++s) {
    const SourcePass p = forward_pass(adj, s);
    accumulate(adj, p, s, scale, nullptr, &ebc);
  }
  return ebc;
}

std::vector<bc_t> brandes_edge_delta(const graph::EdgeList& graph,
                                     vidx_t source) {
  const graph::CsrGraph adj = make_adj(graph);
  TBC_CHECK(source >= 0 && source < adj.num_vertices(),
            "Brandes source out of range");
  const bc_t scale = graph.directed() ? 1.0 : 0.5;
  std::vector<bc_t> ebc(static_cast<std::size_t>(adj.num_arcs()), 0.0);
  const SourcePass p = forward_pass(adj, source);
  accumulate(adj, p, source, scale, nullptr, &ebc);
  return ebc;
}

}  // namespace turbobc::baseline
