// Gunrock-style GPU betweenness centrality baseline.
//
// A from-scratch reimplementation of the *relevant* characteristics of the
// gunrock BC app the paper compares against (Wang et al., PPoPP'16):
//
//  * direction-optimizing (push-pull) BFS with frontier queues, a
//    load-balanced edge-parallel push advance, a pull advance that scans
//    undiscovered vertices, and a filter kernel rebuilding the queue after
//    pull rounds;
//  * BOTH sparse formats resident on the device (CSR for push and the
//    backward pass, CSC for pull) plus persistent per-vertex bookkeeping —
//    the paper's Figure 4 inventory of 9n + 2m words. Nothing is freed
//    mid-run, so the footprint stays high: this is what makes it OOM on the
//    Table 4 graphs while TurboBC (7n + m, with the f/f_t free trick) fits;
//  * per-level dependency accumulation over out-edges in the backward pass.
//
// It runs on the same simulated device and cost model as TurboBC, so the
// runtime and GLT comparisons (Tables 1-3, Figure 5) are apples to apples.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "gpusim/buffer.hpp"
#include "gpusim/device.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::baseline {

struct GunrockBcResult {
  std::vector<bc_t> bc;  // single-source dependency contribution
  vidx_t bfs_depth = 0;
  double device_seconds = 0.0;
  std::size_t peak_device_bytes = 0;
};

class GunrockLikeBc {
 public:
  /// Uploads CSR + CSC and allocates all persistent arrays. Throws
  /// turbobc::DeviceOutOfMemory when the inventory does not fit — the
  /// Table 4 "OOM" outcome.
  GunrockLikeBc(sim::Device& device, const graph::EdgeList& graph);

  GunrockBcResult run_single_source(vidx_t source);

  vidx_t num_vertices() const noexcept { return n_; }
  eidx_t num_arcs() const noexcept { return m_; }

  /// Device bytes of the persistent inventory (graph + bookkeeping).
  std::size_t inventory_bytes() const;

 private:
  /// Consumes an already-canonicalized edge list (tag-dispatched from the
  /// public constructor so the member initializer list can size buffers).
  GunrockLikeBc(sim::Device& device, const graph::EdgeList& canon, int);

  sim::Device& device_;
  vidx_t n_ = 0;
  eidx_t m_ = 0;
  bool directed_ = false;

  // CSR (out-edges, push + backward) and CSC (in-edges, pull).
  sim::DeviceBuffer<std::int32_t> csr_off_;
  sim::DeviceBuffer<vidx_t> csr_col_;
  sim::DeviceBuffer<std::int32_t> csc_off_;
  sim::DeviceBuffer<vidx_t> csc_row_;

  // Persistent bookkeeping (gunrock problem data): the paper's 9 n-sized
  // arrays (labels, preds, visited bitmap, sigma, delta, bc, two frontier
  // queues, plus the counter).
  sim::DeviceBuffer<std::int32_t> labels_;
  sim::DeviceBuffer<vidx_t> preds_;
  sim::DeviceBuffer<std::int32_t> visited_;
  sim::DeviceBuffer<bc_t> sigma_;
  sim::DeviceBuffer<bc_t> delta_;
  sim::DeviceBuffer<bc_t> bc_;
  sim::DeviceBuffer<vidx_t> queue_a_;
  sim::DeviceBuffer<vidx_t> queue_b_;
  sim::DeviceBuffer<std::int32_t> qcount_;
  /// Edge-frontier workspace for the load-balanced advance (gunrock's TWC
  /// partitioning). Sized m: this is the allocation that pushes gunrock past
  /// the paper's 9n + 2m lower bound and over the device capacity on the
  /// Table 4 graphs.
  sim::DeviceBuffer<vidx_t> lb_scratch_;
};

}  // namespace turbobc::baseline
