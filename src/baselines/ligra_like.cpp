#include "baselines/ligra_like.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace turbobc::baseline {

namespace {
constexpr std::uint64_t kIdx = sizeof(vidx_t);
constexpr std::uint64_t kWord = sizeof(bc_t);
}  // namespace

LigraLikeBc::LigraLikeBc(const graph::EdgeList& graph, sim::CpuModel model)
    : model_(model) {
  graph::EdgeList canon = graph;
  canon.canonicalize();
  n_ = canon.num_vertices();
  m_ = canon.num_arcs();
  directed_ = canon.directed();
  TBC_CHECK(n_ > 0, "ligra baseline needs a non-empty graph");

  out_ = graph::CsrGraph::from_edges(canon);
  in_ = graph::CsrGraph::from_edges_transposed(canon);
}

vidx_t LigraLikeBc::run_source_into(vidx_t source, std::vector<bc_t>& bc,
                                    sim::CpuOpCounts& ops) const {
  const auto n = static_cast<std::size_t>(n_);
  std::vector<vidx_t> level(n, kInvalidVertex);
  std::vector<bc_t> sigma(n, 0.0), delta(n, 0.0);
  std::vector<std::vector<vidx_t>> levels;  // frontier history for backward

  level[static_cast<std::size_t>(source)] = 0;
  sigma[static_cast<std::size_t>(source)] = 1.0;
  levels.push_back({source});

  // edgeMap threshold: ligra switches to the dense (pull) representation
  // when |frontier| + frontier out-degree exceeds m / 20.
  const auto dense_threshold = static_cast<eidx_t>(m_ / 20 + 1);

  vidx_t d = 0;
  while (!levels.back().empty()) {
    const auto& frontier = levels.back();
    eidx_t frontier_work = static_cast<eidx_t>(frontier.size());
    for (const vidx_t u : frontier) {
      frontier_work += out_.out_degree(u);
    }
    // Two parallel rounds per level: the edgeMap plus the vertexMap that
    // resets/compacts the frontier (ligra's nextFrontier handling).
    ops.rounds += 2;

    std::vector<vidx_t> nextf;
    if (frontier_work < dense_threshold) {
      // Sparse push: scan the frontier's out-edges.
      for (const vidx_t u : frontier) {
        const auto [ubeg, uend] = out_.row_range(u);
        ops.seq_bytes += 2 * kIdx;
        for (eidx_t k = ubeg; k < uend; ++k) {
          const vidx_t w = out_.col_idx()[static_cast<std::size_t>(k)];
          ops.seq_bytes += kIdx;
          ops.rand_bytes += kIdx;  // level[w]
          ops.alu_ops += 2;        // CAS + compare
          auto& lw = level[static_cast<std::size_t>(w)];
          if (lw == kInvalidVertex) {
            lw = d + 1;
            nextf.push_back(w);
            ops.rand_bytes += kIdx + kWord;  // write level, enqueue
          }
          if (lw == d + 1) {
            sigma[static_cast<std::size_t>(w)] +=
                sigma[static_cast<std::size_t>(u)];
            ops.rand_bytes += 2 * kWord;  // fetch-add sigma
          }
        }
      }
    } else {
      // Dense pull: every undiscovered vertex scans its in-edges.
      for (std::size_t w = 0; w < n; ++w) {
        ops.seq_bytes += kIdx;  // level[w]
        if (level[w] != kInvalidVertex) continue;
        const auto [wbeg, wend] = in_.row_range(static_cast<vidx_t>(w));
        ops.seq_bytes += 2 * kIdx;
        bc_t sum = 0.0;
        for (eidx_t k = wbeg; k < wend; ++k) {
          const vidx_t u = in_.col_idx()[static_cast<std::size_t>(k)];
          ops.seq_bytes += kIdx;
          ops.rand_bytes += kIdx;  // level[u]
          ops.alu_ops += 1;
          if (level[static_cast<std::size_t>(u)] == d) {
            sum += sigma[static_cast<std::size_t>(u)];
            ops.rand_bytes += kWord;
          }
        }
        if (sum > 0.0) {
          level[w] = d + 1;
          sigma[w] = sum;
          nextf.push_back(static_cast<vidx_t>(w));
          ops.seq_bytes += kIdx + 2 * kWord;
        }
      }
    }
    levels.push_back(std::move(nextf));
    ++d;
  }
  const vidx_t height = d - 1;

  // Backward: process the stored frontiers in reverse; each vertex pulls
  // dependency from its out-neighbours one level deeper (one edgeMap round
  // per level, as in ligra's BC application's transpose phase).
  for (vidx_t lev = height; lev-- > 0;) {
    ops.rounds += 2;  // backward edgeMap + the per-level frontier vertexMap
    for (const vidx_t v : levels[static_cast<std::size_t>(lev)]) {
      const auto [vbeg, vend] = out_.row_range(v);
      ops.seq_bytes += 2 * kIdx;
      bc_t acc = 0.0;
      for (eidx_t k = vbeg; k < vend; ++k) {
        const vidx_t w = out_.col_idx()[static_cast<std::size_t>(k)];
        ops.seq_bytes += kIdx;
        ops.rand_bytes += kIdx;  // level[w]
        ops.alu_ops += 1;
        if (level[static_cast<std::size_t>(w)] == lev + 1) {
          acc += (1.0 + delta[static_cast<std::size_t>(w)]) /
                 sigma[static_cast<std::size_t>(w)];
          ops.rand_bytes += 2 * kWord;
          ops.alu_ops += 2;
        }
      }
      if (acc != 0.0) {
        delta[static_cast<std::size_t>(v)] =
            sigma[static_cast<std::size_t>(v)] * acc;
        ops.seq_bytes += 2 * kWord;
      }
    }
  }

  const bc_t scale = directed_ ? 1.0 : 0.5;
  ops.rounds += 1;
  for (std::size_t v = 0; v < n; ++v) {
    ops.seq_bytes += kWord;
    if (static_cast<vidx_t>(v) != source && delta[v] != 0.0) {
      bc[v] += delta[v] * scale;
      ops.alu_ops += 1;
    }
  }
  return height;
}

LigraBcResult LigraLikeBc::run_single_source(vidx_t source) const {
  TBC_CHECK(source >= 0 && source < n_, "source out of range");
  LigraBcResult r;
  r.bc.assign(static_cast<std::size_t>(n_), 0.0);
  r.bfs_depth = run_source_into(source, r.bc, r.ops);
  r.modeled_seconds = model_.seconds_parallel(r.ops);
  return r;
}

LigraBcResult LigraLikeBc::run_exact() const {
  LigraBcResult r;
  r.bc.assign(static_cast<std::size_t>(n_), 0.0);
  for (vidx_t s = 0; s < n_; ++s) {
    r.bfs_depth = run_source_into(s, r.bc, r.ops);
  }
  r.modeled_seconds = model_.seconds_parallel(r.ops);
  return r;
}

}  // namespace turbobc::baseline
