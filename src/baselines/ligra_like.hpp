// Ligra-style shared-memory CPU betweenness centrality baseline.
//
// Reimplements the structure of the ligra BC application (Shun & Blelloch,
// PPoPP'13) the paper compares against: frontier-based processing with
// edgeMap/vertexMap semantics and the sparse<->dense representation switch
// (push over a sparse frontier list when the frontier is small, pull over a
// dense bitmap when large). Unlike the sequential linear-algebra baseline,
// its per-source work is O(n + m), not O(d*n + m) — which is why the paper's
// ligra numbers beat TurboBC on the huge Table 4 graphs yet lose on the
// smaller ones.
//
// Like every CPU algorithm in this repo it executes functionally while
// counting its work, then reports modeled 22-core seconds via CpuModel
// (DESIGN.md §1): the counted rounds capture ligra's per-level fork-join
// barriers.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "gpusim/cpumodel.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::baseline {

struct LigraBcResult {
  std::vector<bc_t> bc;
  vidx_t bfs_depth = 0;
  sim::CpuOpCounts ops;
  double modeled_seconds = 0.0;
};

class LigraLikeBc {
 public:
  explicit LigraLikeBc(const graph::EdgeList& graph,
                       sim::CpuModel model = sim::CpuModel{});

  LigraBcResult run_single_source(vidx_t source) const;
  LigraBcResult run_exact() const;

  vidx_t num_vertices() const noexcept { return n_; }

 private:
  vidx_t run_source_into(vidx_t source, std::vector<bc_t>& bc,
                         sim::CpuOpCounts& ops) const;

  vidx_t n_ = 0;
  eidx_t m_ = 0;
  bool directed_ = false;
  graph::CsrGraph out_;
  graph::CsrGraph in_;
  sim::CpuModel model_;
};

}  // namespace turbobc::baseline
