// Queue-based sequential Brandes betweenness centrality.
//
// This is the repo's golden correctness reference: the textbook algorithm
// (Brandes 2001/2008), with explicit predecessor lists and a stack-ordered
// dependency accumulation — structurally independent from the
// linear-algebra formulation it validates. Every TurboBC result in tests
// and benches is checked against it, mirroring the paper's protocol ("we
// used the sequential version of the BC algorithm to verify the results...
// only the correct results were accepted").
//
// Besides vertex BC it provides the shortest-path counts and *edge*
// betweenness (the paper's Eq. 1 defines BC for vertices or edges; the edge
// variant is the oracle for TurboBC's edge-BC extension).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::baseline {

/// Exact BC for all vertices (halved for undirected graphs).
std::vector<bc_t> brandes_bc(const graph::EdgeList& graph);

/// Single-source dependency contribution delta_s (halved for undirected
/// graphs) — comparable to TurboBC::run_single_source.
std::vector<bc_t> brandes_delta(const graph::EdgeList& graph, vidx_t source);

/// Shortest-path counts sigma_s(v) from one source (0 for unreachable).
std::vector<sigma_t> brandes_sigma(const graph::EdgeList& graph,
                                   vidx_t source);

/// Exact per-arc edge betweenness, indexed in the *canonical* arc order of
/// the edge list (EdgeList::canonicalize ordering — the same nonzero order
/// CSR uses). For undirected graphs the values are halved like vertex BC;
/// the undirected edge's BC is the sum of its two arc entries.
std::vector<bc_t> brandes_edge_bc(const graph::EdgeList& graph);

/// Single-source per-arc dependency (same indexing and halving).
std::vector<bc_t> brandes_edge_delta(const graph::EdgeList& graph,
                                     vidx_t source);

}  // namespace turbobc::baseline
