#include "dist/dist_turbobc.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <numeric>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/kernel.hpp"
#include "graph/csc.hpp"
#include "spmv/spmv_kernels.hpp"

namespace turbobc::dist {

namespace {

/// Sum of every modeled on-device time component (kernels, flag readbacks,
/// alloc/free overheads). Interconnect time is tracked separately in the
/// topology ledger and folded into the critical path once, at the end.
double device_clock(const sim::Device& d) {
  return d.kernel_seconds() + d.transfer_seconds() + d.overhead_seconds();
}

/// Baselines for delta accounting: distributed runs share long-lived
/// topology devices (graph/shard uploads stay live across runs), so every
/// per-run figure is "now minus the value at run entry".
struct RunBaseline {
  std::vector<double> clock;
  std::vector<std::uint64_t> sent;
  std::vector<std::uint64_t> received;
  double comm_seconds = 0.0;
  std::uint64_t comm_bytes = 0;

  static RunBaseline capture(sim::Topology& topo) {
    RunBaseline b;
    const int k_devices = topo.num_devices();
    b.clock.resize(static_cast<std::size_t>(k_devices));
    b.sent.resize(static_cast<std::size_t>(k_devices));
    b.received.resize(static_cast<std::size_t>(k_devices));
    for (int k = 0; k < k_devices; ++k) {
      sim::Device& d = topo.device(k);
      b.clock[static_cast<std::size_t>(k)] = device_clock(d);
      b.sent[static_cast<std::size_t>(k)] = d.comm_bytes_sent();
      b.received[static_cast<std::size_t>(k)] = d.comm_bytes_received();
      d.memory().reset_peak();
    }
    b.comm_seconds = topo.comm_seconds();
    b.comm_bytes = topo.comm_bytes_total();
    return b;
  }
};

/// Fill the per-device ShardInfo rows and the aggregate clocks of `result`
/// from the deltas since `base`. `device_seconds` is the bulk-synchronous
/// critical path: the slowest device's own work plus every interconnect
/// operation once (collectives synchronize all devices; the ring copies are
/// serialized by their data dependency).
void finish_accounting(sim::Topology& topo, const RunBaseline& base,
                       DistResult& result) {
  const int k_devices = topo.num_devices();
  result.comm_seconds = topo.comm_seconds() - base.comm_seconds;
  result.comm_bytes = topo.comm_bytes_total() - base.comm_bytes;
  double max_device = 0.0;
  for (int k = 0; k < k_devices; ++k) {
    sim::Device& d = topo.device(k);
    ShardInfo& si = result.shards[static_cast<std::size_t>(k)];
    si.device = k;
    si.peak_bytes = d.memory().peak_bytes();
    si.device_seconds =
        device_clock(d) - base.clock[static_cast<std::size_t>(k)];
    si.comm_bytes_sent =
        d.comm_bytes_sent() - base.sent[static_cast<std::size_t>(k)];
    si.comm_bytes_received =
        d.comm_bytes_received() - base.received[static_cast<std::size_t>(k)];
    max_device = std::max(max_device, si.device_seconds);
    result.max_peak_bytes = std::max(result.max_peak_bytes, si.peak_bytes);
  }
  result.device_seconds = max_device + result.comm_seconds;
}

}  // namespace

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kAuto: return "auto";
    case Strategy::kReplicate: return "replicate";
    case Strategy::kPartition: return "partition";
  }
  return "?";
}

std::optional<Strategy> parse_strategy(std::string_view name) {
  if (name == "auto") return Strategy::kAuto;
  if (name == "replicate") return Strategy::kReplicate;
  if (name == "partition") return Strategy::kPartition;
  return std::nullopt;
}

DistTurboBC::DistTurboBC(sim::Topology& topology, const graph::EdgeList& graph,
                         DistOptions options)
    : topo_(topology), options_(options) {
  graph::EdgeList canon = graph;
  canon.canonicalize();
  n_ = canon.num_vertices();
  m_ = canon.num_arcs();
  directed_ = canon.directed();
  TBC_CHECK(n_ > 0, "DistTurboBC needs a non-empty graph");

  const bc::Variant global_variant =
      options_.variant ? *options_.variant : bc::select_variant(canon);
  const std::uint64_t capacity = topo_.props().device.global_mem_bytes;
  const std::uint64_t single_footprint = replicated_device_bytes(
      global_variant, n_, static_cast<std::uint64_t>(m_), options_.edge_bc);

  strategy_ = options_.strategy;
  if (strategy_ == Strategy::kAuto) {
    strategy_ = single_footprint <= capacity ? Strategy::kReplicate
                                             : Strategy::kPartition;
  }
  TBC_CHECK(!(strategy_ == Strategy::kPartition && options_.edge_bc),
            "edge BC needs the replicated strategy (whole graph on one "
            "device)");
  TBC_CHECK(options_.batch_size >= 0 && options_.batch_size <= 64,
            "dist batch size must be in [0, 64]");
  TBC_CHECK(!(strategy_ == Strategy::kPartition && options_.batch_size > 0 &&
              options_.advance != bc::Advance::kPush),
            "the batched partitioned sweep is push-only (masks are "
            "exchanged, not bitmaps)");

  if (strategy_ == Strategy::kReplicate) {
    plan_ = ShardPlan::make(n_, 1);
    engine_.emplace(topo_.device(0), canon,
                    bc::BcOptions{global_variant, false, options_.edge_bc,
                                  options_.advance, options_.thresholds});
    return;
  }

  const int k_devices = topo_.num_devices();
  plan_ = ShardPlan::make(n_, k_devices);
  const graph::CscGraph csc = graph::CscGraph::from_edges(canon);
  std::vector<HostShard> host_shards = make_host_shards(csc, plan_);
  shards_.reserve(static_cast<std::size_t>(k_devices));
  for (int k = 0; k < k_devices; ++k) {
    HostShard& hs = host_shards[static_cast<std::size_t>(k)];
    Shard sh;
    sh.col_begin = hs.col_begin;
    sh.col_end = hs.col_end;
    if (options_.batch_size > 0) {
      // The MS-BFS block sweep is implemented for the scalar CSC layout
      // only (like TurboBCBatched); every shard is pinned to it.
      sh.variant = bc::Variant::kScCsc;
    } else if (options_.variant) {
      sh.variant = *options_.variant;
    } else {
      // The paper's selection heuristic applied to the shard's own degree
      // structure: a column block of an irregular graph can be regular and
      // vice versa.
      graph::EdgeList local(n_, directed_);
      for (vidx_t c = 0; c < hs.n_local(); ++c) {
        const auto begin = static_cast<std::size_t>(
            hs.col_ptr[static_cast<std::size_t>(c)]);
        const auto end = static_cast<std::size_t>(
            hs.col_ptr[static_cast<std::size_t>(c) + 1]);
        for (std::size_t j = begin; j < end; ++j) {
          local.add_edge(hs.rows[j], hs.col_begin + c);
        }
      }
      sh.variant = bc::select_variant(local);
    }
    // Pull folds CSC columns — same kScCooc-to-veCSC demotion as the single
    // engine (balanced on in-degree skew, same CSC byte inventory).
    if (options_.advance != bc::Advance::kPush &&
        sh.variant == bc::Variant::kScCooc) {
      sh.variant = bc::Variant::kVeCsc;
    }
    if (sh.variant == bc::Variant::kScCooc) {
      std::vector<vidx_t> cols;
      cols.reserve(hs.rows.size());
      for (vidx_t c = 0; c < hs.n_local(); ++c) {
        const auto begin = static_cast<std::size_t>(
            hs.col_ptr[static_cast<std::size_t>(c)]);
        const auto end = static_cast<std::size_t>(
            hs.col_ptr[static_cast<std::size_t>(c) + 1]);
        cols.insert(cols.end(), end - begin, c);
      }
      sh.cooc.emplace(topo_.device(k), hs.n_local(), std::move(hs.rows),
                      std::move(cols));
    } else {
      sh.csc.emplace(topo_.device(k), hs.n_local(), std::move(hs.col_ptr),
                     std::move(hs.rows));
    }
    shards_.push_back(std::move(sh));
  }
}

DistResult DistTurboBC::run_single_source(vidx_t source) {
  const std::vector<vidx_t> sources{source};
  return run_impl(sources, nullptr, nullptr);
}

DistResult DistTurboBC::run_exact() {
  std::vector<vidx_t> sources(static_cast<std::size_t>(n_));
  std::iota(sources.begin(), sources.end(), vidx_t{0});
  return run_impl(sources, nullptr, nullptr);
}

DistResult DistTurboBC::run_sources(const std::vector<vidx_t>& sources) {
  return run_impl(sources, nullptr, nullptr);
}

DistResult DistTurboBC::run_sources_moments(
    const std::vector<vidx_t>& sources, const std::vector<double>& weights,
    bc::TurboBC::MomentResult& moments) {
  TBC_CHECK(strategy_ == Strategy::kReplicate,
            "moment accumulation needs the replicated strategy");
  TBC_CHECK(weights.size() == sources.size(),
            "run_sources_moments needs one weight per source");
  return run_impl(sources, &weights, &moments);
}

DistResult DistTurboBC::run_impl(const std::vector<vidx_t>& sources,
                                 const std::vector<double>* weights,
                                 bc::TurboBC::MomentResult* moments) {
  for (const vidx_t s : sources) {
    TBC_CHECK(s >= 0 && s < n_, "BC source vertex out of range");
  }
  if (strategy_ == Strategy::kReplicate) {
    return run_replicated(sources, weights, moments);
  }
  TBC_CHECK(weights == nullptr && moments == nullptr,
            "moment accumulation needs the replicated strategy");
  if (options_.batch_size > 0) return run_partitioned_batched(sources);
  return run_partitioned(sources);
}

DistResult DistTurboBC::run_replicated(const std::vector<vidx_t>& sources,
                                       const std::vector<double>* weights,
                                       bc::TurboBC::MomentResult* moments) {
  const int k_devices = topo_.num_devices();
  const auto nn = static_cast<std::size_t>(n_);
  const RunBaseline base = RunBaseline::capture(topo_);

  // Exactly the single-device fan-out (same block plan, same block runner,
  // same fixed-order merge), with contiguous block ranges owned by devices.
  const std::size_t count = sources.size();
  const bc::TurboBC::BlockPlan plan = bc::TurboBC::block_plan(count);
  const std::size_t per_device = std::max<std::size_t>(
      1, (plan.num_blocks + static_cast<std::size_t>(k_devices) - 1) /
             static_cast<std::size_t>(k_devices));
  std::vector<bc::TurboBC::BlockPartial> blocks(plan.num_blocks);
  sim::ExecutorPool::instance().for_tasks(
      plan.num_blocks, [&](std::size_t b, unsigned) {
        blocks[b] = engine_->run_source_block(topo_.props().device, sources,
                                              plan.begin(b),
                                              plan.end(b, count), weights,
                                              moments != nullptr);
      });

  DistResult result;
  result.strategy_used = Strategy::kReplicate;
  result.bc.assign(nn, 0.0);
  std::vector<bc_t> raw_ebc;
  if (options_.edge_bc) raw_ebc.assign(static_cast<std::size_t>(m_), 0.0);
  std::vector<bc_t> sum, sumsq;
  if (moments != nullptr) {
    sum.assign(nn, 0.0);
    sumsq.assign(nn, 0.0);
  }

  // Deterministic merge: global block order, left fold — the same order
  // TurboBC::run_sources_impl uses, so the bc values are bit-identical to
  // the single-device engine for any device count and thread width.
  for (std::size_t b = 0; b < plan.num_blocks; ++b) {
    bc::TurboBC::BlockPartial& blk = blocks[b];
    const int owner = static_cast<int>(
        std::min(b / per_device, static_cast<std::size_t>(k_devices - 1)));
    sim::Device& dev = topo_.device(owner);
    dev.absorb_timeline(*blk.dev);
    dev.memory().note_peak(blk.peak_bytes);
    for (std::size_t i = 0; i < nn; ++i) result.bc[i] += blk.bc[i];
    if (options_.edge_bc) {
      for (std::size_t i = 0; i < raw_ebc.size(); ++i) {
        raw_ebc[i] += blk.ebc[i];
      }
    }
    if (moments != nullptr) {
      for (std::size_t i = 0; i < nn; ++i) {
        sum[i] += blk.sum[i];
        sumsq[i] += blk.sumsq[i];
      }
    }
  }
  if (!blocks.empty()) result.last_source = blocks.back().last;

  // Each device holds a partial bc array; one modeled all-reduce leaves the
  // reduced array everywhere (the functional fold above already produced its
  // value).
  topo_.all_reduce(4ull * nn);
  if (options_.edge_bc) {
    topo_.all_reduce(4ull * static_cast<std::uint64_t>(m_));
    const std::vector<eidx_t>& perm = engine_->nz_to_canonical();
    result.edge_bc.assign(raw_ebc.size(), 0.0);
    for (std::size_t nz = 0; nz < raw_ebc.size(); ++nz) {
      result.edge_bc[static_cast<std::size_t>(perm[nz])] = raw_ebc[nz];
    }
  }
  if (moments != nullptr) {
    topo_.all_reduce(4ull * nn);
    topo_.all_reduce(4ull * nn);
    // The adaptive driver reads the moments between waves, so their download
    // is part of the modeled wave time — mirroring the single-device engine.
    topo_.device(0).charge_transfer(4ull * nn);
    topo_.device(0).charge_transfer(4ull * nn);
    moments->sum = std::move(sum);
    moments->sumsq = std::move(sumsq);
  }

  result.sources = static_cast<vidx_t>(count);
  result.shards.resize(static_cast<std::size_t>(k_devices));
  for (int k = 0; k < k_devices; ++k) {
    ShardInfo& si = result.shards[static_cast<std::size_t>(k)];
    si.variant = engine_->options().variant;
    si.col_begin = 0;
    si.col_end = n_;
    si.arcs = m_;
  }
  finish_accounting(topo_, base, result);
  return result;
}

DistResult DistTurboBC::run_partitioned(const std::vector<vidx_t>& sources) {
  using T = sigma_t;
  const int k_devices = topo_.num_devices();
  const auto nn = static_cast<std::size_t>(n_);
  const RunBaseline base = RunBaseline::capture(topo_);

  // Per-device bc accumulators live for the whole call (like the single
  // engine's "bc" array), zeroed per source block.
  std::vector<sim::DeviceBuffer<bc_t>> bck;
  bck.reserve(static_cast<std::size_t>(k_devices));
  for (int k = 0; k < k_devices; ++k) {
    bck.emplace_back(topo_.device(k),
                     static_cast<std::size_t>(shards_[static_cast<std::size_t>(
                                                          k)].n_local()),
                     "bc", 4);
  }

  // One source's whole pipeline, every shard stepping in lock-step in device
  // order. Mirrors TurboBC::run_source_on stage for stage; the differences
  // are the exchange buffer and the collectives around each SpMV.
  const auto run_one = [&](vidx_t source) -> bc::SourceStats {
    std::vector<sim::DeviceBuffer<std::int32_t>> S;
    std::vector<sim::DeviceBuffer<T>> sigma;
    S.reserve(static_cast<std::size_t>(k_devices));
    sigma.reserve(static_cast<std::size_t>(k_devices));
    for (int k = 0; k < k_devices; ++k) {
      sim::Device& dev = topo_.device(k);
      const auto nl =
          static_cast<std::size_t>(shards_[static_cast<std::size_t>(k)]
                                       .n_local());
      S.emplace_back(dev, nl, "S");
      sigma.emplace_back(dev, nl, "sigma", 4);
      sigma.back().set_modeled_integer(true);
      S.back().device_fill(0);
      sigma.back().device_fill(0);
    }

    vidx_t height = 0;
    {
      // Forward (BFS) stage; f / f_t / exchange freed at scope end to make
      // room for the dependency triple, like the single engine.
      const bool dob = options_.advance != bc::Advance::kPush;
      std::vector<sim::DeviceBuffer<T>> f, ft, xf;
      std::vector<sim::DeviceBuffer<std::int32_t>> cflag;
      std::vector<sim::DeviceBuffer<std::uint32_t>> fbm;
      f.reserve(static_cast<std::size_t>(k_devices));
      ft.reserve(static_cast<std::size_t>(k_devices));
      xf.reserve(static_cast<std::size_t>(k_devices));
      cflag.reserve(static_cast<std::size_t>(k_devices));
      if (dob) fbm.reserve(static_cast<std::size_t>(k_devices));
      for (int k = 0; k < k_devices; ++k) {
        sim::Device& dev = topo_.device(k);
        const auto nl =
            static_cast<std::size_t>(shards_[static_cast<std::size_t>(k)]
                                         .n_local());
        f.emplace_back(dev, nl, "f", 4);
        f.back().set_modeled_integer(true);
        ft.emplace_back(dev, nl, "f_t", 4);
        ft.back().set_modeled_integer(true);
        xf.emplace_back(dev, nn, "exchange", 4);
        xf.back().set_modeled_integer(true);
        // Same 3-counter widening as the single engine in DO mode.
        cflag.emplace_back(dev, dob ? 3 : 1, "c");
        if (dob) {
          fbm.emplace_back(
              dev, static_cast<std::size_t>(spmv::frontier_bitmap_words(n_)),
              "frontier_bitmap");
        }
        f.back().device_fill(T{0});
      }

      const int src_owner = plan_.owner(source);
      const auto src_local = static_cast<std::size_t>(
          source - plan_.col_begin(src_owner));
      sim::launch_scalar(topo_.device(src_owner), "bfs_init", 1,
                         [&](sim::ThreadCtx& t) {
                           f[static_cast<std::size_t>(src_owner)].store(
                               t, src_local, T{1});
                           sigma[static_cast<std::size_t>(src_owner)].store(
                               t, src_local, T{1});
                         });

      // Direction-switch state — same model as TurboBC::run_source_on; nf
      // and mf are summed over shards from the widened flag readbacks.
      std::uint64_t nf = 1, mf = 0;
      std::uint64_t mu = static_cast<std::uint64_t>(m_);
      if (dob) {
        // The source's column is wholly owned by one shard, so the local
        // pointer delta IS its global in-degree.
        const auto& cp = shards_[static_cast<std::size_t>(src_owner)]
                             .csc->col_ptr()
                             .host();
        mf = static_cast<std::uint64_t>(cp[src_local + 1] - cp[src_local]);
        mu -= mf;
      }
      bool pulling = false;

      vidx_t d = 0;
      while (true) {
        ++d;
        // Frontier exchange: one modeled all_gather; the payload copy itself
        // is free host work (buffer host() staging), like copy_from_host's
        // functional half. Direction-optimizing runs gather the dense
        // bitmap (ceil(block_len/32) words per rank) plus one packed block
        // of the level's new frontier values, padded to the largest rank so
        // the collective stays rank-uniform.
        if (dob) {
          topo_.all_gather(plan_.rank_bitmap_bytes());
          std::uint64_t max_nf = 0;
          for (int k = 0; k < k_devices; ++k) {
            std::uint64_t c = 0;
            for (const T v : f[static_cast<std::size_t>(k)].host()) {
              if (v != 0) ++c;
            }
            max_nf = std::max(max_nf, c);
          }
          if (max_nf > 0) topo_.all_gather(4ull * max_nf);
        } else {
          topo_.all_gather(plan_.rank_bytes());
        }
        std::vector<T> frontier(nn, T{0});
        for (int k = 0; k < k_devices; ++k) {
          const auto& fk = f[static_cast<std::size_t>(k)].host();
          std::copy(fk.begin(), fk.end(),
                    frontier.begin() + plan_.col_begin(k));
        }
        for (int k = 0; k < k_devices; ++k) {
          xf[static_cast<std::size_t>(k)].host() = frontier;
        }

        if (dob) {
          if (options_.advance == bc::Advance::kPull) {
            pulling = true;
          } else if (pulling) {
            pulling = !bc::switch_to_push(nf, static_cast<std::uint64_t>(n_),
                                          options_.thresholds);
          } else {
            pulling = bc::switch_to_pull(mf, mu, options_.thresholds);
          }
        }

        bool any_frontier = false;
        std::uint64_t level_nf = 0, level_mf = 0;
        for (int k = 0; k < k_devices; ++k) {
          sim::Device& dev = topo_.device(k);
          const auto kk = static_cast<std::size_t>(k);
          const Shard& sh = shards_[kk];
          ft[kk].device_fill(T{0});
          if (pulling) {
            // Local columns, global rows: the bitmap spans the full vertex
            // range, the fold reads the exchanged full-length operand.
            spmv::frontier_to_bitmap(dev, xf[kk], n_, fbm[kk]);
            if (sh.variant == bc::Variant::kVeCsc) {
              spmv::spmv_forward_pull_vecsc(dev, *sh.csc, xf[kk], fbm[kk],
                                            ft[kk], sigma[kk]);
            } else {
              spmv::spmv_forward_pull_sccsc(dev, *sh.csc, xf[kk], fbm[kk],
                                            ft[kk], sigma[kk]);
            }
          } else {
            switch (sh.variant) {
              case bc::Variant::kScCooc:
                spmv::spmv_forward_sccooc(dev, *sh.cooc, xf[kk], ft[kk]);
                break;
              case bc::Variant::kScCsc:
                spmv::spmv_forward_sccsc(dev, *sh.csc, xf[kk], ft[kk],
                                         sigma[kk]);
                break;
              case bc::Variant::kVeCsc:
                spmv::spmv_forward_vecsc(dev, *sh.csc, xf[kk], ft[kk],
                                         sigma[kk]);
                break;
            }
          }
          cflag[kk].device_fill(0);
          const bool mask_in_update = sh.variant == bc::Variant::kScCooc;
          sim::launch_scalar(
              dev, "bfs_update", static_cast<std::uint64_t>(sh.n_local()),
              [&](sim::ThreadCtx& t) {
                const auto i = static_cast<std::size_t>(t.global_id());
                T v = ft[kk].load(t, i);
                t.count_ops(1);
                if (mask_in_update && v != 0 && sigma[kk].load(t, i) != 0) {
                  v = 0;
                }
                f[kk].store(t, i, v);
                if (v != 0) {
                  S[kk].store(t, i, d);
                  sigma[kk].store(
                      t, i, static_cast<T>(sigma[kk].load(t, i) + v));
                  cflag[kk].store(t, 0, 1);
                  if (dob) {
                    cflag[kk].atomic_add(t, 1, 1);
                    cflag[kk].atomic_add(
                        t, 2,
                        static_cast<std::int32_t>(
                            sh.csc->col_ptr().load(t, i + 1) -
                            sh.csc->col_ptr().load(t, i)));
                  }
                }
              });
          // Every device's frontier flag is read back each level (K 4-byte
          // copies — the distributed version of the single readback; 12
          // bytes each in direction-optimizing mode).
          const auto c_host = cflag[kk].copy_to_host();
          if (c_host[0] != 0) any_frontier = true;
          if (dob) {
            level_nf += static_cast<std::uint64_t>(c_host[1]);
            level_mf += static_cast<std::uint64_t>(c_host[2]);
          }
        }
        if (!any_frontier) break;
        if (dob) {
          nf = level_nf;
          mf = level_mf;
          mu -= mf;
        }
      }
      height = d - 1;
    }

    // Backward (dependency) stage in the bytes just freed.
    std::vector<sim::DeviceBuffer<bc_t>> delta, delta_u, delta_ut, xb;
    delta.reserve(static_cast<std::size_t>(k_devices));
    delta_u.reserve(static_cast<std::size_t>(k_devices));
    delta_ut.reserve(static_cast<std::size_t>(k_devices));
    xb.reserve(static_cast<std::size_t>(k_devices));
    for (int k = 0; k < k_devices; ++k) {
      sim::Device& dev = topo_.device(k);
      const auto nl =
          static_cast<std::size_t>(shards_[static_cast<std::size_t>(k)]
                                       .n_local());
      delta.emplace_back(dev, nl, "delta", 4);
      delta_u.emplace_back(dev, nl, "delta_u", 4);
      delta_ut.emplace_back(dev, nl, "delta_ut", 4);
      xb.emplace_back(dev, nn, "exchange", 4);
      delta.back().device_fill(0.0);
    }

    for (vidx_t d = height; d >= 2; --d) {
      for (int k = 0; k < k_devices; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        sim::launch_scalar(
            topo_.device(k), "dep_prepare",
            static_cast<std::uint64_t>(shards_[kk].n_local()),
            [&](sim::ThreadCtx& t) {
              const auto i = static_cast<std::size_t>(t.global_id());
              bc_t out = 0.0;
              if (S[kk].load(t, i) == d) {
                const T sg = sigma[kk].load(t, i);
                if (sg > 0) {
                  out = (1.0 + delta[kk].load(t, i)) / static_cast<bc_t>(sg);
                }
              }
              delta_u[kk].store(t, i, out);
              t.count_ops(1);
            });
      }

      if (!directed_) {
        // Symmetric matrix: exchange delta_u, then each shard gathers its
        // own columns. Per-column serial sums read the same rows in the same
        // order as the single device — bit-identical.
        topo_.all_gather(plan_.rank_bytes());
        std::vector<bc_t> global_du(nn, 0.0);
        for (int k = 0; k < k_devices; ++k) {
          const auto& duk = delta_u[static_cast<std::size_t>(k)].host();
          std::copy(duk.begin(), duk.end(),
                    global_du.begin() + plan_.col_begin(k));
        }
        for (int k = 0; k < k_devices; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          sim::Device& dev = topo_.device(k);
          xb[kk].host() = global_du;
          delta_ut[kk].device_fill(0.0);
          const Shard& sh = shards_[kk];
          switch (sh.variant) {
            case bc::Variant::kScCooc:
              spmv::spmv_backward_gather_sccooc(dev, *sh.cooc, xb[kk],
                                                delta_ut[kk]);
              break;
            case bc::Variant::kScCsc:
              spmv::spmv_backward_gather_sccsc(dev, *sh.csc, xb[kk],
                                               delta_ut[kk]);
              break;
            case bc::Variant::kVeCsc:
              spmv::spmv_backward_gather_vecsc(dev, *sh.csc, xb[kk],
                                               delta_ut[kk]);
              break;
          }
        }
      } else {
        // Directed: out-neighbour sums need the transposed product, a
        // scatter into a full-length vector. The partial vector travels a
        // modeled ring in device order, each shard scattering on top — the
        // float adds land in global column order, the exact order the single
        // device's one scatter kernel commits them in.
        for (int k = 0; k < k_devices; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          sim::Device& dev = topo_.device(k);
          if (k == 0) {
            xb[kk].device_fill(0.0);
          } else {
            topo_.device_to_device_copy(k - 1, k, 4ull * nn);
            xb[kk].host() = xb[kk - 1].host();
          }
          const Shard& sh = shards_[kk];
          switch (sh.variant) {
            case bc::Variant::kScCooc:
              spmv::spmv_backward_scatter_sccooc(dev, *sh.cooc, delta_u[kk],
                                                 xb[kk]);
              break;
            case bc::Variant::kScCsc:
              spmv::spmv_backward_scatter_sccsc(dev, *sh.csc, delta_u[kk],
                                                xb[kk]);
              break;
            case bc::Variant::kVeCsc:
              spmv::spmv_backward_scatter_vecsc(dev, *sh.csc, delta_u[kk],
                                                xb[kk]);
              break;
          }
        }
        // The last device holds the full product; every shard receives its
        // own slice.
        const int tail = k_devices - 1;
        const auto& full = xb[static_cast<std::size_t>(tail)].host();
        for (int k = 0; k < k_devices; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          if (k != tail) {
            topo_.device_to_device_copy(
                tail, k,
                4ull * static_cast<std::uint64_t>(shards_[kk].n_local()));
          }
          auto& dst = delta_ut[kk].host();
          std::copy(full.begin() + plan_.col_begin(k),
                    full.begin() + plan_.col_end(k), dst.begin());
        }
      }

      for (int k = 0; k < k_devices; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        sim::launch_scalar(
            topo_.device(k), "dep_update",
            static_cast<std::uint64_t>(shards_[kk].n_local()),
            [&](sim::ThreadCtx& t) {
              const auto i = static_cast<std::size_t>(t.global_id());
              if (S[kk].load(t, i) == d - 1) {
                const bc_t du = delta_ut[kk].load(t, i);
                if (du != 0.0) {
                  const T sg = sigma[kk].load(t, i);
                  delta[kk].store(
                      t, i, delta[kk].load(t, i) + du * static_cast<bc_t>(sg));
                }
              }
              t.count_ops(1);
            });
      }
    }

    const bc_t scale = directed_ ? 1.0 : 0.5;
    for (int k = 0; k < k_devices; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      const vidx_t col_begin = plan_.col_begin(k);
      sim::launch_scalar(
          topo_.device(k), "bc_accum",
          static_cast<std::uint64_t>(shards_[kk].n_local()),
          [&](sim::ThreadCtx& t) {
            const auto i = static_cast<std::size_t>(t.global_id());
            if (col_begin + static_cast<vidx_t>(i) == source) return;
            const bc_t dl = delta[kk].load(t, i);
            if (dl != 0.0) {
              bck[kk].store(t, i, bck[kk].load(t, i) + dl * scale);
            }
            t.count_ops(1);
          });
    }

    bc::SourceStats stats;
    stats.bfs_depth = height;
    vidx_t reached = 0;
    for (int k = 0; k < k_devices; ++k) {
      for (const T s : sigma[static_cast<std::size_t>(k)].host()) {
        if (s != 0) ++reached;
      }
    }
    stats.reached = reached;
    return stats;
  };

  // Same fixed source-block grouping as the single engine: per block the
  // per-device bc arrays restart from zero and the block's contribution is
  // folded on the host, so the float grouping matches the single engine's
  // per-block partials exactly.
  const std::size_t count = sources.size();
  const bc::TurboBC::BlockPlan plan = bc::TurboBC::block_plan(count);
  std::vector<std::vector<bc_t>> acc(static_cast<std::size_t>(k_devices));
  for (int k = 0; k < k_devices; ++k) {
    acc[static_cast<std::size_t>(k)].assign(
        static_cast<std::size_t>(shards_[static_cast<std::size_t>(k)]
                                     .n_local()),
        0.0);
  }
  DistResult result;
  result.strategy_used = Strategy::kPartition;
  for (std::size_t b = 0; b < plan.num_blocks; ++b) {
    for (int k = 0; k < k_devices; ++k) {
      bck[static_cast<std::size_t>(k)].device_fill(0.0);
    }
    for (std::size_t i = plan.begin(b); i < plan.end(b, count); ++i) {
      result.last_source = run_one(sources[i]);
    }
    for (int k = 0; k < k_devices; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      const auto& partial = bck[kk].host();
      for (std::size_t i = 0; i < partial.size(); ++i) {
        acc[kk][i] += partial[i];
      }
    }
  }

  result.bc.assign(nn, 0.0);
  for (int k = 0; k < k_devices; ++k) {
    const auto& slice = acc[static_cast<std::size_t>(k)];
    std::copy(slice.begin(), slice.end(),
              result.bc.begin() + plan_.col_begin(k));
  }
  result.sources = static_cast<vidx_t>(count);
  result.shards.resize(static_cast<std::size_t>(k_devices));
  for (int k = 0; k < k_devices; ++k) {
    const auto kk = static_cast<std::size_t>(k);
    ShardInfo& si = result.shards[kk];
    si.variant = shards_[kk].variant;
    si.col_begin = shards_[kk].col_begin;
    si.col_end = shards_[kk].col_end;
    si.arcs = shards_[kk].cooc ? shards_[kk].cooc->m() : shards_[kk].csc->m();
  }
  finish_accounting(topo_, base, result);
  return result;
}

DistResult DistTurboBC::run_partitioned_batched(
    const std::vector<vidx_t>& sources) {
  using T = sigma_t;
  const int k_devices = topo_.num_devices();
  const auto nn = static_cast<std::size_t>(n_);
  const RunBaseline base = RunBaseline::capture(topo_);

  // Per-device bc accumulators live for the whole call and accumulate every
  // block on-device via the strict per-lane fold — the same float grouping
  // as TurboBCBatched::run_sources, which never folds blocks on the host.
  std::vector<sim::DeviceBuffer<bc_t>> bck;
  bck.reserve(static_cast<std::size_t>(k_devices));
  for (int k = 0; k < k_devices; ++k) {
    bck.emplace_back(topo_.device(k),
                     static_cast<std::size_t>(shards_[static_cast<std::size_t>(
                                                          k)].n_local()),
                     "bc", 4);
    bck.back().device_fill(0.0);
  }

  DistResult result;
  result.strategy_used = Strategy::kPartition;

  // One MS-BFS block of kb <= 64 sources, every shard in lock-step. The
  // forward exchange carries ONE 8-byte mask word per vertex per level for
  // all lanes (2x the scalar rank payload, serving kb sources) plus the
  // packed block of the level's new sigma values.
  const auto run_block = [&](const std::vector<vidx_t>& batch) {
    const auto kb = batch.size();
    const std::uint64_t full = kb == 64 ? ~0ull : ((1ull << kb) - 1);
    const auto slot = [kb](std::size_t v, std::size_t j) {
      return v * kb + j;
    };

    std::vector<sim::DeviceBuffer<std::int32_t>> S;
    std::vector<sim::DeviceBuffer<T>> sigma;
    S.reserve(static_cast<std::size_t>(k_devices));
    sigma.reserve(static_cast<std::size_t>(k_devices));
    for (int k = 0; k < k_devices; ++k) {
      sim::Device& dev = topo_.device(k);
      const auto nl = static_cast<std::size_t>(
          shards_[static_cast<std::size_t>(k)].n_local());
      S.emplace_back(dev, nl * kb, "S.k");
      sigma.emplace_back(dev, nl * kb, "sigma.k", 4);
      sigma.back().set_modeled_integer(true);
      S.back().device_fill(0);
      sigma.back().device_fill(0);
    }

    vidx_t max_height = 0;
    {
      // Forward MS-BFS sweep. Local masks per shard column slice; the
      // exchange operands (global masks + global frontier sigma values)
      // are freed with the rest of the forward state at scope end.
      std::vector<sim::DeviceBuffer<std::uint64_t>> fm, vm, nm, xm;
      std::vector<sim::DeviceBuffer<T>> xs;
      std::vector<sim::DeviceBuffer<std::int32_t>> cflags;
      for (int k = 0; k < k_devices; ++k) {
        sim::Device& dev = topo_.device(k);
        const auto nl = static_cast<std::size_t>(
            shards_[static_cast<std::size_t>(k)].n_local());
        fm.emplace_back(dev, nl, "F.mask", 8);
        vm.emplace_back(dev, nl, "V.mask", 8);
        nm.emplace_back(dev, nl, "Fn.mask", 8);
        xm.emplace_back(dev, nn, "exchange.mask", 8);
        xs.emplace_back(dev, nn * kb, "exchange.sigma", 4);
        xs.back().set_modeled_integer(true);
        cflags.emplace_back(dev, kb, "c.k");
        fm.back().device_fill(0);
        vm.back().device_fill(0);
      }

      // Seed: lane j's source vertex gets the FULL membership word of that
      // vertex (duplicate sources collapse — same-value stores), computed
      // on its owner device, like the single engine's "bfs_init_msbfs".
      std::vector<std::uint64_t> seed_mask(kb, 0);
      for (std::size_t j = 0; j < kb; ++j) {
        for (std::size_t i = 0; i < kb; ++i) {
          if (batch[i] == batch[j]) seed_mask[j] |= 1ull << i;
        }
      }
      for (std::size_t j = 0; j < kb; ++j) {
        const int owner = plan_.owner(batch[j]);
        const auto oo = static_cast<std::size_t>(owner);
        const auto sl = static_cast<std::size_t>(
            batch[j] - plan_.col_begin(owner));
        const std::uint64_t mask = seed_mask[j];
        sim::launch_scalar(topo_.device(owner), "bfs_init_msbfs", 1,
                           [&](sim::ThreadCtx& t) {
                             t.count_word_ops(1);
                             fm[oo].store(t, sl, mask);
                             vm[oo].store(t, sl, mask);
                             sigma[oo].store(t, slot(sl, j), 1);
                           });
      }

      std::vector<sim::DeviceBuffer<std::uint64_t>>* cur = &fm;
      std::vector<sim::DeviceBuffer<std::uint64_t>>* nxt = &nm;
      vidx_t d = 0;
      while (true) {
        ++d;
        // Mask exchange: 8 bytes per vertex per rank (2x the scalar rank
        // payload — for ALL kb lanes), plus the packed sigma values of the
        // current frontier's set lanes, padded to the largest rank.
        topo_.all_gather(2 * plan_.rank_bytes());
        std::uint64_t max_pairs = 0;
        std::vector<std::uint64_t> global_mask(nn, 0);
        for (int k = 0; k < k_devices; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          const auto& mk = (*cur)[kk].host();
          std::uint64_t pairs = 0;
          for (std::size_t i = 0; i < mk.size(); ++i) {
            global_mask[static_cast<std::size_t>(plan_.col_begin(k)) + i] =
                mk[i];
            pairs += static_cast<std::uint64_t>(std::popcount(mk[i]));
          }
          max_pairs = std::max(max_pairs, pairs);
        }
        if (max_pairs > 0) topo_.all_gather(4ull * max_pairs);
        // Assemble the global frontier-value operand (frontier slots only;
        // everything else stays zero) and stage it on every device.
        std::vector<T> global_vals(nn * kb, T{0});
        for (int k = 0; k < k_devices; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          const auto& mk = (*cur)[kk].host();
          const auto& sg = sigma[kk].host();
          const auto cb = static_cast<std::size_t>(plan_.col_begin(k));
          for (std::size_t i = 0; i < mk.size(); ++i) {
            for (std::uint64_t bits = mk[i]; bits != 0; bits &= bits - 1) {
              const auto j =
                  static_cast<std::size_t>(std::countr_zero(bits));
              global_vals[slot(cb + i, j)] = sg[slot(i, j)];
            }
          }
        }
        for (int k = 0; k < k_devices; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          xm[kk].host() = global_mask;
          xs[kk].host() = global_vals;
        }

        bool any = false;
        for (int k = 0; k < k_devices; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          sim::Device& dev = topo_.device(k);
          (*nxt)[kk].device_fill(0);
          cflags[kk].device_fill(0);
          spmv::spmm_forward_msbfs_exch_sccsc(
              dev, *shards_[kk].csc, static_cast<int>(kb), full, d, xm[kk],
              xs[kk], vm[kk], (*nxt)[kk], sigma[kk], S[kk], cflags[kk]);
          // ONE kb-word flag readback per shard per level (vs one word per
          // source-level in the scalar pipeline).
          const auto flags = cflags[kk].copy_to_host();
          for (std::size_t j = 0; j < kb; ++j) {
            if (flags[j] != 0) any = true;
          }
        }
        if (!any) break;
        std::swap(cur, nxt);
      }
      max_height = d - 1;
    }

    // Backward stage: kb dependency columns per shard, same kernels as
    // TurboBCBatched's inline lambdas, with the exchange around each level.
    std::vector<sim::DeviceBuffer<bc_t>> delta, delta_u, delta_ut, xb;
    for (int k = 0; k < k_devices; ++k) {
      sim::Device& dev = topo_.device(k);
      const auto nl = static_cast<std::size_t>(
          shards_[static_cast<std::size_t>(k)].n_local());
      delta.emplace_back(dev, nl * kb, "delta.k", 4);
      delta_u.emplace_back(dev, nl * kb, "delta_u.k", 4);
      delta_ut.emplace_back(dev, nl * kb, "delta_ut.k", 4);
      xb.emplace_back(dev, nn * kb, "exchange", 4);
      delta.back().device_fill(0.0);
    }

    for (vidx_t d = max_height; d >= 2; --d) {
      for (int k = 0; k < k_devices; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        sim::launch_scalar(
            topo_.device(k), "dep_prepare_batched",
            static_cast<std::uint64_t>(shards_[kk].n_local()),
            [&](sim::ThreadCtx& t) {
              const auto v = static_cast<std::size_t>(t.global_id());
              for (std::size_t j = 0; j < kb; ++j) {
                bc_t out = 0.0;
                if (S[kk].load(t, slot(v, j)) == d) {
                  const T sg = sigma[kk].load(t, slot(v, j));
                  if (sg > 0) {
                    out = (1.0 + delta[kk].load(t, slot(v, j))) /
                          static_cast<bc_t>(sg);
                  }
                }
                delta_u[kk].store(t, slot(v, j), out);
                t.count_ops(1);
              }
            });
      }

      if (!directed_) {
        // Exchange all kb delta_u columns, then per-shard column gathers in
        // the same edge order as the single batched device — bit-identical.
        topo_.all_gather(static_cast<std::uint64_t>(kb) * plan_.rank_bytes());
        std::vector<bc_t> global_du(nn * kb, 0.0);
        for (int k = 0; k < k_devices; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          const auto& duk = delta_u[kk].host();
          std::copy(duk.begin(), duk.end(),
                    global_du.begin() +
                        static_cast<std::ptrdiff_t>(
                            static_cast<std::size_t>(plan_.col_begin(k)) *
                            kb));
        }
        for (int k = 0; k < k_devices; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          sim::Device& dev = topo_.device(k);
          xb[kk].host() = global_du;
          delta_ut[kk].device_fill(0.0);
          const Shard& sh = shards_[kk];
          sim::launch_scalar(
              dev, "dep_spmm_sccsc",
              static_cast<std::uint64_t>(sh.n_local()),
              [&](sim::ThreadCtx& t) {
                const auto v = static_cast<std::size_t>(t.global_id());
                const spmv::dptr_t begin = sh.csc->col_ptr().load(t, v);
                const spmv::dptr_t end = sh.csc->col_ptr().load(t, v + 1);
                bc_t sums[64] = {};
                for (spmv::dptr_t e = begin; e < end; ++e) {
                  const auto u = static_cast<std::size_t>(
                      sh.csc->row_idx().load(t, static_cast<std::size_t>(e)));
                  t.count_ops(1);
                  for (std::size_t j = 0; j < kb; ++j) {
                    sums[j] += xb[kk].load(t, slot(u, j));
                  }
                }
                for (std::size_t j = 0; j < kb; ++j) {
                  if (sums[j] != 0.0) {
                    delta_ut[kk].store(t, slot(v, j), sums[j]);
                  }
                }
              });
        }
      } else {
        // Directed: the kb-column scatter rides the same device-order ring
        // as the scalar path, so the float adds commit in global column
        // order — the single batched device's order.
        for (int k = 0; k < k_devices; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          sim::Device& dev = topo_.device(k);
          if (k == 0) {
            xb[kk].device_fill(0.0);
          } else {
            topo_.device_to_device_copy(
                k - 1, k, 4ull * static_cast<std::uint64_t>(nn * kb));
            xb[kk].host() = xb[kk - 1].host();
          }
          const Shard& sh = shards_[kk];
          sim::launch_scalar(
              dev, "dep_spmm_sccsc_scatter",
              static_cast<std::uint64_t>(sh.n_local()),
              [&](sim::ThreadCtx& t) {
                const auto w = static_cast<std::size_t>(t.global_id());
                std::uint64_t live = 0;
                for (std::size_t j = 0; j < kb; ++j) {
                  if (delta_u[kk].load(t, slot(w, j)) != 0.0) {
                    live |= 1ull << j;
                  }
                }
                if (live == 0) return;
                const spmv::dptr_t begin = sh.csc->col_ptr().load(t, w);
                const spmv::dptr_t end = sh.csc->col_ptr().load(t, w + 1);
                for (spmv::dptr_t e = begin; e < end; ++e) {
                  const auto u = static_cast<std::size_t>(
                      sh.csc->row_idx().load(t, static_cast<std::size_t>(e)));
                  t.count_ops(1);
                  for (std::size_t j = 0; j < kb; ++j) {
                    if ((live >> j) & 1ull) {
                      xb[kk].atomic_add(t, slot(u, j),
                                        delta_u[kk].load(t, slot(w, j)));
                    }
                  }
                }
              });
        }
        const int tail = k_devices - 1;
        const auto& full_du = xb[static_cast<std::size_t>(tail)].host();
        for (int k = 0; k < k_devices; ++k) {
          const auto kk = static_cast<std::size_t>(k);
          if (k != tail) {
            topo_.device_to_device_copy(
                tail, k,
                4ull * static_cast<std::uint64_t>(
                           static_cast<std::size_t>(shards_[kk].n_local()) *
                           kb));
          }
          auto& dst = delta_ut[kk].host();
          const auto cb = static_cast<std::size_t>(plan_.col_begin(k)) * kb;
          std::copy(full_du.begin() + static_cast<std::ptrdiff_t>(cb),
                    full_du.begin() +
                        static_cast<std::ptrdiff_t>(cb + dst.size()),
                    dst.begin());
        }
      }

      for (int k = 0; k < k_devices; ++k) {
        const auto kk = static_cast<std::size_t>(k);
        sim::launch_scalar(
            topo_.device(k), "dep_update_batched",
            static_cast<std::uint64_t>(shards_[kk].n_local()),
            [&](sim::ThreadCtx& t) {
              const auto v = static_cast<std::size_t>(t.global_id());
              for (std::size_t j = 0; j < kb; ++j) {
                t.count_ops(1);
                if (S[kk].load(t, slot(v, j)) == d - 1) {
                  const bc_t du = delta_ut[kk].load(t, slot(v, j));
                  if (du != 0.0) {
                    const T sg = sigma[kk].load(t, slot(v, j));
                    delta[kk].store(t, slot(v, j),
                                    delta[kk].load(t, slot(v, j)) +
                                        du * static_cast<bc_t>(sg));
                  }
                }
              }
            });
      }
    }

    // Strict per-lane LEFT fold into the running shard accumulator — the
    // exact kernel TurboBCBatched runs, on the local column slice.
    const bc_t scale = directed_ ? 1.0 : 0.5;
    for (int k = 0; k < k_devices; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      const vidx_t col_begin = plan_.col_begin(k);
      sim::launch_scalar(
          topo_.device(k), "bc_accum_batched",
          static_cast<std::uint64_t>(shards_[kk].n_local()),
          [&](sim::ThreadCtx& t) {
            const auto i = static_cast<std::size_t>(t.global_id());
            const vidx_t v = col_begin + static_cast<vidx_t>(i);
            bc_t acc = bck[kk].load(t, i);
            bool touched = false;
            for (std::size_t j = 0; j < kb; ++j) {
              if (v == batch[j]) continue;
              const bc_t dl = delta[kk].load(t, slot(i, j));
              if (dl != 0.0) {
                acc += dl * scale;
                touched = true;
              }
              t.count_ops(1);
            }
            if (touched) bck[kk].store(t, i, acc);
          });
    }

    bc::SourceStats stats;
    stats.bfs_depth = max_height;
    vidx_t reached = 0;
    for (int k = 0; k < k_devices; ++k) {
      const auto& sg = sigma[static_cast<std::size_t>(k)].host();
      const auto nl = sg.size() / kb;
      for (std::size_t i = 0; i < nl; ++i) {
        for (std::size_t j = 0; j < kb; ++j) {
          if (sg[slot(i, j)] != 0) {
            ++reached;
            break;
          }
        }
      }
    }
    stats.reached = reached;
    return stats;
  };

  const auto kb = static_cast<std::size_t>(options_.batch_size);
  for (std::size_t begin = 0; begin < sources.size(); begin += kb) {
    const std::size_t end = std::min(sources.size(), begin + kb);
    result.last_source = run_block(std::vector<vidx_t>(
        sources.begin() + static_cast<std::ptrdiff_t>(begin),
        sources.begin() + static_cast<std::ptrdiff_t>(end)));
  }

  result.bc.assign(nn, 0.0);
  for (int k = 0; k < k_devices; ++k) {
    const auto& slice = bck[static_cast<std::size_t>(k)].host();
    std::copy(slice.begin(), slice.end(),
              result.bc.begin() + plan_.col_begin(k));
  }
  result.sources = static_cast<vidx_t>(sources.size());
  result.shards.resize(static_cast<std::size_t>(k_devices));
  for (int k = 0; k < k_devices; ++k) {
    const auto kk = static_cast<std::size_t>(k);
    ShardInfo& si = result.shards[kk];
    si.variant = shards_[kk].variant;
    si.col_begin = shards_[kk].col_begin;
    si.col_end = shards_[kk].col_end;
    si.arcs = shards_[kk].csc->m();
  }
  finish_accounting(topo_, base, result);
  return result;
}

}  // namespace turbobc::dist
