// DistTurboBC: deterministic multi-GPU BC driver over a modeled Topology.
//
// Two strategies (picked by the footprint model when strategy == kAuto):
//
//  * Replicated — the graph fits one device: every device runs whole-graph
//    source blocks. The SAME 64-block plan as TurboBC::run_sources is
//    computed, contiguous block ranges are assigned to devices, every block
//    runs through TurboBC::run_source_block (the exact code path the
//    single-device engine schedules on the ExecutorPool), and partials are
//    folded in global block order. BC values are therefore bit-identical to
//    the single-device engine by shared code, at any thread width and any
//    device count. A final modeled all_reduce of the bc array (+ edge_bc /
//    moment arrays when present) closes the run.
//
//  * Partitioned 1D — the graph does NOT fit one device: CSC column blocks
//    are sharded (src/dist/partition.hpp), giving each device the
//    "7 n_local + m_local words + n-word exchange buffer" footprint. Per BFS
//    level the frontier is exchanged via modeled all_gather; the backward
//    stage all_gathers delta_u (undirected) or accumulates the scatter
//    sequentially around a modeled ring (directed) so the float fold matches
//    the single device's column-major atomic order exactly. Devices step in
//    lock-step, serially, in device order — every modeled number is again a
//    pure function of (graph, sources, K).
//
// Determinism contract (mirrors the rest of the repo): BC values, modeled
// seconds, peak bytes and comm-byte counters are bit-identical at any
// --threads width. Replicated results are additionally bit-identical to the
// single-device engine; partitioned results are bit-identical to it when the
// same variant is pinned on both sides (cross-variant folds group floats
// differently; see DESIGN.md §8 for the one directed veCSC caveat).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "core/turbobc.hpp"
#include "core/variant.hpp"
#include "dist/partition.hpp"
#include "gpusim/topology.hpp"
#include "graph/edge_list.hpp"

namespace turbobc::dist {

enum class Strategy : std::uint8_t { kAuto, kReplicate, kPartition };

const char* to_string(Strategy s);
/// "auto" / "replicate" / "partition"; nullopt on anything else.
std::optional<Strategy> parse_strategy(std::string_view name);

struct DistOptions {
  Strategy strategy = Strategy::kAuto;
  /// Pinned SpMV variant. Unset: select_variant runs per shard (for
  /// replicated shards — whole-graph replicas — that equals the global
  /// pick).
  std::optional<bc::Variant> variant;
  /// Edge betweenness (replicated strategy only).
  bool edge_bc = false;
  /// Forward-sweep advance (core/variant.hpp). Replicated shards inherit it
  /// wholesale — same code path as the single engine. The partitioned
  /// strategy exchanges the frontier as a dense BITMAP per level
  /// (ceil(block_len/32) words per rank instead of block_len) plus one
  /// packed block of the level's NEW frontier values; a vertex enters the
  /// frontier exactly once, so the packed traffic totals at most n words
  /// over a whole BFS.
  bc::Advance advance = bc::Advance::kPush;
  /// Push<->pull switch thresholds for kAuto.
  bc::DirectionThresholds thresholds;
  /// Partitioned strategy: sources advanced per MS-BFS block, in [0, 64].
  /// 0 (default) runs the per-source scalar pipeline. >= 1 packs each block
  /// of sources into per-vertex 64-bit membership masks (the batched
  /// engine's representation — core/turbobc_batched.hpp) so ONE 8-byte mask
  /// word per frontier vertex per level crosses the interconnect for all
  /// lanes at once, instead of one 4-byte frontier word per source-level.
  /// Push advance + CSC shard layout only; BC values are bit-identical to
  /// the single-device TurboBCBatched at the same batch size. The
  /// replicated strategy ignores this (its whole-graph blocks already ride
  /// TurboBC::run_source_block).
  vidx_t batch_size = 0;
};

/// Per-device outcome of one distributed run.
struct ShardInfo {
  int device = 0;
  bc::Variant variant = bc::Variant::kScCsc;
  vidx_t col_begin = 0;
  vidx_t col_end = 0;  // replicated: the full [0, n)
  eidx_t arcs = 0;
  std::size_t peak_bytes = 0;
  double device_seconds = 0.0;
  std::uint64_t comm_bytes_sent = 0;
  std::uint64_t comm_bytes_received = 0;
};

struct DistResult {
  std::vector<bc_t> bc;
  /// Canonical arc order; empty unless DistOptions::edge_bc.
  std::vector<bc_t> edge_bc;
  Strategy strategy_used = Strategy::kReplicate;
  std::vector<ShardInfo> shards;
  bc::SourceStats last_source;
  vidx_t sources = 0;
  /// Modeled bulk-synchronous critical path: max over devices of on-device
  /// seconds, plus every interconnect operation once.
  double device_seconds = 0.0;
  double comm_seconds = 0.0;
  /// Total logical payload bytes exchanged (sum over devices of bytes sent
  /// == bytes received; see gpusim/topology.hpp).
  std::uint64_t comm_bytes = 0;
  std::size_t max_peak_bytes = 0;
};

class DistTurboBC {
 public:
  /// Uploads the graph (replicated: once, to device 0, with per-block
  /// replicas cloned at run time; partitioned: one column shard per device).
  /// Throws DeviceOutOfMemory when even a shard exceeds device capacity.
  DistTurboBC(sim::Topology& topology, const graph::EdgeList& graph,
              DistOptions options = {});

  /// The resolved strategy (never kAuto).
  Strategy strategy() const noexcept { return strategy_; }
  vidx_t num_vertices() const noexcept { return n_; }
  eidx_t num_arcs() const noexcept { return m_; }
  bool directed() const noexcept { return directed_; }
  const ShardPlan& plan() const noexcept { return plan_; }

  DistResult run_single_source(vidx_t source);
  DistResult run_exact();
  DistResult run_sources(const std::vector<vidx_t>& sources);

  /// run_sources plus the approx estimator's moment accumulation (see
  /// TurboBC::run_sources_moments). Replicated strategy only.
  DistResult run_sources_moments(const std::vector<vidx_t>& sources,
                                 const std::vector<double>& weights,
                                 bc::TurboBC::MomentResult& moments);

 private:
  /// One uploaded column shard (partitioned strategy).
  struct Shard {
    vidx_t col_begin = 0;
    vidx_t col_end = 0;
    bc::Variant variant = bc::Variant::kScCsc;
    std::optional<spmv::DeviceCsc> csc;
    std::optional<spmv::DeviceCooc> cooc;
    vidx_t n_local() const noexcept { return col_end - col_begin; }
  };

  DistResult run_impl(const std::vector<vidx_t>& sources,
                      const std::vector<double>* weights,
                      bc::TurboBC::MomentResult* moments);
  DistResult run_replicated(const std::vector<vidx_t>& sources,
                            const std::vector<double>* weights,
                            bc::TurboBC::MomentResult* moments);
  DistResult run_partitioned(const std::vector<vidx_t>& sources);
  DistResult run_partitioned_batched(const std::vector<vidx_t>& sources);

  sim::Topology& topo_;
  DistOptions options_;
  vidx_t n_ = 0;
  eidx_t m_ = 0;
  bool directed_ = false;
  Strategy strategy_ = Strategy::kReplicate;
  ShardPlan plan_;
  /// Replicated strategy: the single-device engine whose block runner we
  /// schedule across devices.
  std::optional<bc::TurboBC> engine_;
  /// Partitioned strategy: one shard per device.
  std::vector<Shard> shards_;
};

}  // namespace turbobc::dist
