// 1D column partitioning for the distributed engine.
//
// The CSC matrix is split into K contiguous column blocks of ceil(n / K)
// columns (the last block may be short or empty). A shard keeps its
// column-pointer array rebased to the local column range while row indices
// stay GLOBAL — the SpMV kernels then gather from a full-length exchanged
// operand vector and write local-length results, unchanged from the
// single-device code. Because the blocks are contiguous in column-major
// nonzero order, concatenating per-shard results (and, for directed scatter,
// accumulating shard contributions in device order) reproduces the
// single-device float fold exactly — see DESIGN.md §8.
//
// The per-device footprint is the paper's algebra localized:
//   7 n_local + m_local words  +  one n-word exchange buffer
// which is what lets a graph whose 7n + m footprint overflows one device
// run on K of them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/variant.hpp"
#include "graph/csc.hpp"
#include "spmv/device_graph.hpp"

namespace turbobc::dist {

/// Column ranges of the 1D partition: a pure function of (n, K), so every
/// consumer (engine, oracle, bench) derives identical shard shapes.
struct ShardPlan {
  vidx_t n = 0;
  int num_shards = 1;
  vidx_t block_len = 0;  // ceil(n / num_shards)

  static ShardPlan make(vidx_t n, int num_shards);

  vidx_t col_begin(int k) const noexcept {
    const auto b = static_cast<std::int64_t>(k) * block_len;
    return b < n ? static_cast<vidx_t>(b) : n;
  }
  vidx_t col_end(int k) const noexcept { return col_begin(k + 1); }
  vidx_t cols(int k) const noexcept { return col_end(k) - col_begin(k); }
  /// Uniform per-rank frontier block in bytes (4-byte modeled words, padded
  /// to the longest shard so the all_gather formula is rank-independent).
  std::uint64_t rank_bytes() const noexcept {
    return 4ull * static_cast<std::uint64_t>(block_len);
  }
  /// Per-rank frontier BITMAP in bytes — the direction-optimizing exchange:
  /// ceil(block_len/32) words per level instead of block_len. Frontier
  /// values travel separately as a packed block sized by the level's
  /// new-frontier count (at most n words across a whole BFS).
  std::uint64_t rank_bitmap_bytes() const noexcept {
    return 4ull * ((static_cast<std::uint64_t>(block_len) + 31) / 32);
  }
  int owner(vidx_t v) const noexcept {
    return static_cast<int>(v / block_len);
  }
};

/// Host-side shard of the canonical CSC structure (see file comment).
struct HostShard {
  vidx_t col_begin = 0;
  vidx_t col_end = 0;
  std::vector<spmv::dptr_t> col_ptr;  // local, length n_local + 1
  std::vector<vidx_t> rows;           // global row ids, length m_local

  vidx_t n_local() const noexcept { return col_end - col_begin; }
  eidx_t m_local() const noexcept {
    return static_cast<eidx_t>(rows.size());
  }
};

std::vector<HostShard> make_host_shards(const graph::CscGraph& csc,
                                        const ShardPlan& plan);

/// Uploaded-graph bytes for a (possibly local) column block under a variant:
/// CSC keeps (cols + 1) pointer words + arcs row words, COOC 2 * arcs words.
std::uint64_t graph_shard_bytes(bc::Variant variant, vidx_t cols,
                                std::uint64_t arcs);

/// Analytic per-device peak of the partitioned engine: shard graph +
/// n-word exchange buffer + bc/S/sigma (3 n_local) + max(forward f/f_t/flag,
/// backward delta triple). Checked against the simulator's MemoryManager by
/// the QA oracle (invariant "dist_inventory").
std::uint64_t partitioned_device_bytes(bc::Variant variant, vidx_t n,
                                       vidx_t n_local, std::uint64_t m_local);

/// Analytic single-device peak of the plain engine (graph + bc + S/sigma +
/// dependency triple, + m-word edge array when edge_bc): what the auto
/// strategy compares against device capacity to decide replicate vs
/// partition, identical to the QA oracle's expected_turbobc_peak_bytes.
std::uint64_t replicated_device_bytes(bc::Variant variant, vidx_t n,
                                      std::uint64_t m, bool edge_bc);

}  // namespace turbobc::dist
