#include "dist/partition.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace turbobc::dist {

ShardPlan ShardPlan::make(vidx_t n, int num_shards) {
  TBC_CHECK(num_shards >= 1, "partition needs at least one shard");
  ShardPlan plan;
  plan.n = n;
  plan.num_shards = num_shards;
  plan.block_len = std::max<vidx_t>(
      1, (n + static_cast<vidx_t>(num_shards) - 1) /
             static_cast<vidx_t>(num_shards));
  return plan;
}

std::vector<HostShard> make_host_shards(const graph::CscGraph& csc,
                                        const ShardPlan& plan) {
  TBC_CHECK(csc.num_vertices() == plan.n,
            "shard plan was built for a different graph");
  const auto& cp = csc.col_ptr();
  const auto& rows = csc.row_idx();
  std::vector<HostShard> shards;
  shards.reserve(static_cast<std::size_t>(plan.num_shards));
  for (int k = 0; k < plan.num_shards; ++k) {
    HostShard sh;
    sh.col_begin = plan.col_begin(k);
    sh.col_end = plan.col_end(k);
    const eidx_t nz_begin = cp[static_cast<std::size_t>(sh.col_begin)];
    const eidx_t nz_end = cp[static_cast<std::size_t>(sh.col_end)];
    TBC_CHECK(nz_end - nz_begin <= std::numeric_limits<spmv::dptr_t>::max(),
              "shard too large for 32-bit device column pointers");
    sh.col_ptr.resize(static_cast<std::size_t>(sh.n_local()) + 1);
    for (vidx_t c = sh.col_begin; c <= sh.col_end; ++c) {
      sh.col_ptr[static_cast<std::size_t>(c - sh.col_begin)] =
          static_cast<spmv::dptr_t>(cp[static_cast<std::size_t>(c)] -
                                    nz_begin);
    }
    sh.rows.assign(rows.begin() + nz_begin, rows.begin() + nz_end);
    shards.push_back(std::move(sh));
  }
  return shards;
}

std::uint64_t graph_shard_bytes(bc::Variant variant, vidx_t cols,
                                std::uint64_t arcs) {
  if (variant == bc::Variant::kScCooc) return 8ull * arcs;
  return 4ull * (static_cast<std::uint64_t>(cols) + 1) + 4ull * arcs;
}

std::uint64_t partitioned_device_bytes(bc::Variant variant, vidx_t n,
                                       vidx_t n_local,
                                       std::uint64_t m_local) {
  const std::uint64_t nl = static_cast<std::uint64_t>(n_local);
  const std::uint64_t forward = 8ull * nl + 4;  // f, f_t, frontier flag
  const std::uint64_t backward = 12ull * nl;    // delta / delta_u / delta_ut
  return graph_shard_bytes(variant, n_local, m_local) +
         4ull * static_cast<std::uint64_t>(n) +  // exchange buffer
         4ull * nl +                             // bc accumulator
         8ull * nl +                             // S, sigma
         std::max(forward, backward);
}

std::uint64_t replicated_device_bytes(bc::Variant variant, vidx_t n,
                                      std::uint64_t m, bool edge_bc) {
  const std::uint64_t nn = static_cast<std::uint64_t>(n);
  const std::uint64_t forward = 8ull * nn + 4;
  const std::uint64_t backward = 12ull * nn;
  return graph_shard_bytes(variant, n, m) + 4ull * nn + 8ull * nn +
         std::max(forward, backward) + (edge_bc ? 4ull * m : 0ull);
}

}  // namespace turbobc::dist
