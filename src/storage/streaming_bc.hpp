// StreamingTurboBC: out-of-core BC over a window of compressed column
// shards (DESIGN.md §12).
//
// The compressed graph is split into contiguous column shards by the same
// dist::ShardPlan the distributed engine uses, but the shards stay on the
// HOST: only `window` of them are device-resident at a time. Each kernel
// sweep walks the shards in ascending column order, fetching absent shards
// over the modeled PCIe link (the DeviceBuffer upload path — every fetched
// byte lands in the transfer ledger) and evicting the least-recently-used
// resident shard when the window is full. The device footprint is the 7n
// working vectors plus the window, so a graph whose full 7n + m image
// overflows the device completes here — bench_ooc demonstrates the
// crossing against TurboBC's DeviceOutOfMemory.
//
// Determinism / bit-identity (oracle invariant `ooc_agreement`):
//   * shards are processed in ascending column order every sweep, so the
//     per-column work — and, for the directed scatter, the warp-ordered
//     atomic replay per target — happens in exactly the global column order
//     of the resident engine's single launch: sigma / delta / bc agree bit
//     for bit with TurboBC under compress (and hence with the uncompressed
//     engine);
//   * sources run serially on the caller's device — no pool fan-out — so
//     any --threads width reproduces width 1 trivially.
//
// Fast path: when every shard fits the window (window >= num_shards, e.g.
// any small graph), each shard is uploaded once and never evicted — the
// engine degrades to the resident compressed engine with a zero-refetch
// ledger, which tests assert.
//
// Push-only: the forward sweep is the paper's Algorithm 1 push pipeline.
// Direction-optimized streaming would re-fetch the window twice per level
// for the bitmap pass; callers wanting pull use the resident engine.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/turbobc.hpp"
#include "dist/partition.hpp"
#include "gpusim/device.hpp"
#include "storage/compressed_csc.hpp"
#include "storage/device_ccsc.hpp"
#include "storage/lru_window.hpp"

namespace turbobc::storage {

struct StreamingOptions {
  /// Column shards the compressed graph is split into (dist::ShardPlan).
  int num_shards = 4;
  /// Device-resident shard budget, >= 1. window >= num_shards is the
  /// fetch-free fast path.
  int window = 2;
};

/// Modeled PCIe traffic of the shard window. upload_bytes also lands in the
/// device's transfer ledger (the uploads go through DeviceBuffer), so the
/// savings show up in modeled seconds too; this ledger is the byte-exact
/// view the oracle and bench check.
struct StreamingLedger {
  std::uint64_t shard_uploads = 0;  // shard fetches, including first uploads
  std::uint64_t upload_bytes = 0;   // total H2D bytes for shards
  std::uint64_t refetch_bytes = 0;  // bytes past each shard's first upload
  std::uint64_t evictions = 0;
};

class StreamingTurboBC {
 public:
  StreamingTurboBC(sim::Device& device, const CompressedCsc& graph,
                   StreamingOptions options = {});

  bc::BcResult run_single_source(vidx_t source);
  bc::BcResult run_sources(const std::vector<vidx_t>& sources);
  bc::BcResult run_exact();

  vidx_t num_vertices() const noexcept { return n_; }
  eidx_t num_arcs() const noexcept { return m_; }
  bool directed() const noexcept { return directed_; }
  int num_shards() const noexcept { return static_cast<int>(shards_.size()); }
  /// True when the whole compressed graph fits the window: no shard is ever
  /// evicted and ledger().refetch_bytes stays 0.
  bool fetch_free() const noexcept {
    return static_cast<int>(shards_.size()) <= options_.window;
  }
  const StreamingLedger& ledger() const noexcept { return ledger_; }
  const StreamingOptions& options() const noexcept { return options_; }

 private:
  /// Host-side image of one column shard: offsets rebased to zero, byte
  /// stream decoding to global rows (DeviceCompressedCsc shard convention),
  /// format bitmap re-packed into local column positions.
  struct ShardImage {
    vidx_t col_begin = 0;
    vidx_t cols = 0;
    std::vector<spmv::dptr_t> col_ptr;
    std::vector<spmv::dptr_t> byte_off;
    std::vector<std::uint8_t> stream;
    std::vector<std::uint32_t> fmt;
    std::uint64_t device_bytes = 0;
    bool uploaded_once = false;
  };

  /// Returns shard k's device image, fetching (and LRU-evicting) as needed.
  const DeviceCompressedCsc& resident(std::size_t k);

  bc::SourceStats run_source(vidx_t source, sim::DeviceBuffer<bc_t>& bc_dev);

  sim::Device& device_;
  StreamingOptions options_;
  vidx_t n_ = 0;
  eidx_t m_ = 0;
  bool directed_ = false;
  std::vector<ShardImage> shards_;
  std::vector<std::optional<DeviceCompressedCsc>> window_;  // slot per shard
  LruWindow lru_{1, 1};  // re-made in the ctor once the shard count is known
  StreamingLedger ledger_;
};

}  // namespace turbobc::storage
