#include "storage/lru_window.hpp"

#include "common/error.hpp"

namespace turbobc::storage {

LruWindow::LruWindow(std::size_t slots, std::size_t capacity)
    : resident_(slots, false), last_use_(slots, 0), capacity_(capacity) {
  TBC_CHECK(capacity >= 1, "LRU window needs a capacity of at least one");
}

LruWindow::Touch LruWindow::touch(std::size_t k) {
  last_use_.at(k) = ++tick_;
  Touch t;
  if (resident_[k]) {
    t.hit = true;
    return t;
  }
  if (resident_count_ >= capacity_) {
    // Least recently used resident slot; k itself is not yet resident so
    // its fresh tick never shields it. First minimum wins (ticks are
    // unique, but determinism must not hinge on that).
    std::size_t victim = resident_.size();
    for (std::size_t i = 0; i < resident_.size(); ++i) {
      if (resident_[i] &&
          (victim == resident_.size() || last_use_[i] < last_use_[victim])) {
        victim = i;
      }
    }
    resident_[victim] = false;
    --resident_count_;
    t.evicted = true;
    t.victim = victim;
  }
  resident_[k] = true;
  ++resident_count_;
  return t;
}

}  // namespace turbobc::storage
