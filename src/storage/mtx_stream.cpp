#include "storage/mtx_stream.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "dist/partition.hpp"

namespace turbobc::storage {

namespace {

namespace fs = std::filesystem;

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Chunked line iterator: reads `chunk` bytes at a time and reassembles
/// lines across chunk boundaries, reproducing std::getline semantics (a
/// final line without trailing newline is still a line; the '\r' of CRLF
/// files is stripped like mtx_io does).
class ChunkedLineReader {
 public:
  ChunkedLineReader(std::istream& in, std::size_t chunk)
      : in_(in), buf_(std::max<std::size_t>(chunk, 64)) {}

  /// Fills `line` with the next line (without its newline). Returns false at
  /// end of stream. `lineno()` is the 1-based number of the returned line.
  bool next(std::string& line) {
    line.clear();
    while (true) {
      if (pos_ == len_) {
        if (eof_) break;
        in_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
        len_ = static_cast<std::size_t>(in_.gcount());
        pos_ = 0;
        if (len_ < buf_.size()) eof_ = true;
        if (len_ == 0) break;
      }
      const char* base = buf_.data() + pos_;
      const auto avail = len_ - pos_;
      const char* nl = static_cast<const char*>(std::memchr(base, '\n', avail));
      if (nl != nullptr) {
        line.append(base, static_cast<std::size_t>(nl - base));
        pos_ += static_cast<std::size_t>(nl - base) + 1;
        ++lineno_;
        strip_cr(line);
        return true;
      }
      line.append(base, avail);
      pos_ = len_;
    }
    if (!line.empty()) {
      ++lineno_;
      strip_cr(line);
      return true;
    }
    return false;
  }

  std::size_t lineno() const noexcept { return lineno_; }

 private:
  static void strip_cr(std::string& line) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
  }

  std::istream& in_;
  std::vector<char> buf_;
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  std::size_t lineno_ = 0;
  bool eof_ = false;
};

/// One spilled arc: the CSC coordinate (column first so the finalize sort
/// is a plain record compare).
struct ArcRec {
  vidx_t col;
  vidx_t row;
  friend bool operator==(const ArcRec&, const ArcRec&) = default;
  friend auto operator<=>(const ArcRec&, const ArcRec&) = default;
};

/// Per-bucket arc sink. With a single bucket everything stays in memory;
/// otherwise each bucket buffers a few thousand records and appends them to
/// its own spill file, so host memory stays bounded by chunk + one bucket.
class BucketSpill {
 public:
  BucketSpill(int num_buckets, const std::string& spill_dir)
      : buckets_(static_cast<std::size_t>(num_buckets)) {
    if (num_buckets <= 1) return;
    static std::atomic<unsigned> counter{0};
    const fs::path base =
        spill_dir.empty() ? fs::temp_directory_path() : fs::path(spill_dir);
    dir_ = base / ("turbobc-spill-" + std::to_string(::getpid()) + "-" +
                   std::to_string(counter.fetch_add(1)));
    fs::create_directories(dir_);
    files_.resize(buckets_.size());
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      files_[b].open(bucket_path(b), std::ios::binary | std::ios::trunc);
      TBC_CHECK(files_[b].good(),
                "cannot open spill file in " + dir_.string());
    }
  }

  ~BucketSpill() {
    std::error_code ec;  // best-effort cleanup; never throws
    if (!dir_.empty()) {
      files_.clear();
      fs::remove_all(dir_, ec);
    }
  }

  void add(int bucket, ArcRec rec) {
    auto& buf = buckets_[static_cast<std::size_t>(bucket)];
    buf.push_back(rec);
    if (!files_.empty() && buf.size() >= kFlushRecords) {
      flush(static_cast<std::size_t>(bucket));
    }
  }

  /// Drains bucket `b` (spill file + unflushed tail) into a sorted,
  /// deduplicated, self-loop-free record list.
  std::vector<ArcRec> finalize(std::size_t b) {
    std::vector<ArcRec> recs;
    if (!files_.empty()) {
      flush(b);
      files_[b].close();
      std::ifstream in(bucket_path(b), std::ios::binary);
      TBC_CHECK(in.good(), "cannot reopen spill file in " + dir_.string());
      in.seekg(0, std::ios::end);
      const auto bytes = static_cast<std::size_t>(in.tellg());
      in.seekg(0);
      recs.resize(bytes / sizeof(ArcRec));
      in.read(reinterpret_cast<char*>(recs.data()),
              static_cast<std::streamsize>(bytes));
      std::error_code ec;
      fs::remove(bucket_path(b), ec);
    } else {
      recs = std::move(buckets_[b]);
    }
    buckets_[b] = {};
    std::sort(recs.begin(), recs.end());
    recs.erase(std::unique(recs.begin(), recs.end()), recs.end());
    std::erase_if(recs, [](const ArcRec& r) { return r.col == r.row; });
    return recs;
  }

 private:
  static constexpr std::size_t kFlushRecords = 4096;

  fs::path bucket_path(std::size_t b) const {
    return dir_ / ("bucket-" + std::to_string(b) + ".bin");
  }

  void flush(std::size_t b) {
    auto& buf = buckets_[b];
    if (buf.empty()) return;
    files_[b].write(reinterpret_cast<const char*>(buf.data()),
                    static_cast<std::streamsize>(buf.size() * sizeof(ArcRec)));
    TBC_CHECK(files_[b].good(), "spill write failed in " + dir_.string());
    buf.clear();
  }

  std::vector<std::vector<ArcRec>> buckets_;
  std::vector<std::ofstream> files_;
  fs::path dir_;
};

}  // namespace

CompressedCsc read_matrix_market_compressed(std::istream& in,
                                            const ChunkedMtxOptions& options) {
  // Header / size-line grammar and every rejection path mirror
  // graph::read_matrix_market exactly (same messages, same 1-based line
  // numbers) — tests assert on both.
  ChunkedLineReader reader(in, options.chunk_bytes);
  std::string line;

  if (!reader.next(line)) throw ParseError("empty Matrix Market stream");

  std::istringstream header(line);
  std::string banner, object, fmt, field, symmetry;
  header >> banner >> object >> fmt >> field >> symmetry;
  if (banner != "%%MatrixMarket") {
    throw ParseError("missing %%MatrixMarket banner", reader.lineno());
  }
  if (to_lower(object) != "matrix") {
    throw ParseError("only matrix objects are supported", reader.lineno());
  }
  if (to_lower(fmt) != "coordinate") {
    throw ParseError("only coordinate (sparse) format is supported",
                     reader.lineno());
  }
  field = to_lower(field);
  symmetry = to_lower(symmetry);
  if (field != "pattern" && field != "real" && field != "integer") {
    throw ParseError("unsupported Matrix Market field type: " + field,
                     reader.lineno());
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    throw ParseError("unsupported Matrix Market symmetry: " + symmetry,
                     reader.lineno());
  }
  const bool has_value = field != "pattern";
  const bool symmetric = symmetry == "symmetric";

  do {
    if (!reader.next(line)) {
      throw ParseError("Matrix Market stream ended before size line",
                       reader.lineno());
    }
  } while (!line.empty() && line[0] == '%');

  long long rows = 0, cols = 0, nnz = 0;
  {
    std::istringstream size_line(line);
    size_line >> rows >> cols >> nnz;
    if (size_line.fail()) {
      throw ParseError("malformed Matrix Market size line: " + line,
                       reader.lineno());
    }
  }
  if (rows != cols) {
    throw ParseError("adjacency matrices must be square", reader.lineno());
  }
  if (rows < 0 || nnz < 0) {
    throw ParseError("negative Matrix Market dimensions", reader.lineno());
  }
  if (rows > static_cast<long long>(std::numeric_limits<vidx_t>::max())) {
    throw ParseError("Matrix Market dimension overflows 32-bit vertex index",
                     reader.lineno());
  }

  const auto n = static_cast<vidx_t>(rows);
  // Column buckets from the distributed engine's 1D partition: contiguous
  // ceil(n / K) column blocks, K bounded by bucket_cols and the open-file cap.
  const vidx_t bucket_cols = std::max<vidx_t>(options.bucket_cols, 1);
  const int num_buckets = static_cast<int>(std::clamp<long long>(
      (static_cast<long long>(n) + bucket_cols - 1) / bucket_cols, 1, 256));
  const dist::ShardPlan plan = dist::ShardPlan::make(n, num_buckets);
  BucketSpill spill(num_buckets, options.spill_dir);

  // Single pass over the entries. The matrix entry A(r, c) is the arc
  // r -> c, spilled under its CSC column c; symmetric storage spills the
  // mirror arc too (EdgeList::symmetrize semantics — dedup at finalize
  // absorbs the doubled diagonal).
  long long seen = 0;
  while (seen < nnz && reader.next(line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    long long r = 0, c = 0;
    entry >> r >> c;
    if (entry.fail()) {
      throw ParseError("malformed Matrix Market entry: " + line,
                       reader.lineno());
    }
    if (has_value) {
      double value = 0.0;
      entry >> value;  // discarded: graphs are treated as unweighted
      if (entry.fail()) {
        throw ParseError("Matrix Market entry missing its value: " + line,
                         reader.lineno());
      }
    }
    if (r < 1 || r > rows || c < 1 || c > cols) {
      throw ParseError("Matrix Market entry out of range: " + line,
                       reader.lineno());
    }
    const auto u = static_cast<vidx_t>(r - 1);
    const auto v = static_cast<vidx_t>(c - 1);
    spill.add(plan.owner(v), ArcRec{v, u});
    if (symmetric) spill.add(plan.owner(u), ArcRec{u, v});
    ++seen;
  }
  if (seen != nnz) {
    throw ParseError("Matrix Market stream ended before all entries (got " +
                         std::to_string(seen) + " of " + std::to_string(nnz) +
                         ")",
                     reader.lineno());
  }

  // Finalize bucket by bucket in column order: each bucket's sorted records
  // ARE the canonical CSC slice (columns ascend across buckets, rows ascend
  // within a column after sort + dedup + self-loop drop), so the encode is a
  // straight append.
  CompressedCsc out;
  out.n = n;
  out.directed = !symmetric;
  out.col_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  out.byte_off.assign(static_cast<std::size_t>(n) + 1, 0);
  out.fmt.assign(fmt_words(n), 0u);
  std::uint64_t total_arcs = 0;
  std::vector<vidx_t> col_rows;  // reused per-column scratch
  for (int b = 0; b < num_buckets; ++b) {
    const std::vector<ArcRec> recs = spill.finalize(static_cast<std::size_t>(b));
    total_arcs += recs.size();
    TBC_CHECK(total_arcs <= static_cast<std::uint64_t>(
                                std::numeric_limits<coff_t>::max()),
              "graph too large for 32-bit compressed column pointers");
    std::size_t i = 0;
    for (vidx_t v = plan.col_begin(b); v < plan.col_end(b); ++v) {
      col_rows.clear();
      while (i < recs.size() && recs[i].col == v) {
        col_rows.push_back(recs[i].row);
        ++i;
        ++out.col_ptr[static_cast<std::size_t>(v) + 1];
      }
      // Same per-column format decision as encode_csc: the shared helper
      // keeps the chunked loader's image bit-identical to the in-memory
      // encode of the same graph.
      if (append_column_bytes(out.bytes, col_rows.data(), col_rows.size())) {
        out.fmt[static_cast<std::size_t>(v) >> 5] |=
            1u << (static_cast<std::uint32_t>(v) & 31u);
      }
      TBC_CHECK(out.bytes.size() <= static_cast<std::size_t>(
                                        std::numeric_limits<coff_t>::max()),
                "compressed byte stream overflows 32-bit offsets");
      out.byte_off[static_cast<std::size_t>(v) + 1] =
          static_cast<coff_t>(out.bytes.size());
    }
  }
  for (std::size_t v = 0; v < static_cast<std::size_t>(n); ++v) {
    out.col_ptr[v + 1] += out.col_ptr[v];
  }
  out.m = static_cast<eidx_t>(total_arcs);
  return out;
}

CompressedCsc read_matrix_market_compressed_file(
    const std::string& path, const ChunkedMtxOptions& options) {
  std::ifstream in(path, std::ios::binary);
  TBC_CHECK(in.good(), "cannot open Matrix Market file: " + path);
  return read_matrix_market_compressed(in, options);
}

graph::EdgeList to_edge_list(const CompressedCsc& c) {
  graph::EdgeList el(c.n, c.directed);
  for (vidx_t v = 0; v < c.n; ++v) {
    for (const vidx_t u : decode_column(c, v)) el.add_edge(u, v);
  }
  return el;
}

}  // namespace turbobc::storage
