// SpMV/SpMM kernels over the delta-varint compressed CSC (DESIGN.md §12).
//
// Each kernel is the thread-per-column scCSC kernel from
// spmv/spmv_kernels.hpp with the row-id load replaced by an inline LEB128
// decode from the byte stream:
//
//   * every byte consumed is one DeviceBuffer<uint8>::load — a 1-byte Access
//     the coalescing model packs ~4x denser into 32-byte sectors than the
//     4-byte row-id loads it replaces (fewer memory transactions), and
//   * every byte also charges one t.count_word_ops(1) — the decode ALU cost
//     (shift/or/continuation test), surfaced in the KernelAggregate word_ops
//     column so the transactions-vs-ALU tradeoff is measurable per kernel.
//
// Bit-identity: the decode yields exactly the row sequence the uncompressed
// kernel loads, in the same k order, and the fold arithmetic is untouched —
// so sigma / delta / bc agree bit for bit with the uncompressed kernels
// (oracle invariant `ooc_agreement`).
//
// `col_base` shifts the OPERAND index space: a streamed shard's columns are
// local (the launch covers g.n() local columns) while x / y / sigma stay
// full-length global vectors, so masks read and results write at
// col_base + i. Resident callers pass 0. Decoded row ids are always global.
#pragma once

#include <bit>
#include <cstdint>

#include "gpusim/kernel.hpp"
#include "spmv/spmv_kernels.hpp"
#include "storage/device_ccsc.hpp"

namespace turbobc::storage {

/// Sequential row-id reader over one column's byte range. The format bitmap
/// picks the branch per column: varint chains consume one charged 1-byte
/// load plus one decode word-op per byte; raw hub columns read each row id
/// as a single charged 4-byte vector load (load_span) with no decode ALU —
/// the same shape as the uncompressed kernel's row-index load.
class CcscCursor {
 public:
  CcscCursor(const DeviceCompressedCsc& g, sim::ThreadCtx& t,
             std::size_t local_col)
      : g_(g), t_(t) {
    pos_ = static_cast<std::size_t>(g.byte_off().load(t, local_col));
    const std::uint32_t word = g.fmt().load(t, local_col >> 5);
    raw_ = ((word >> (local_col & 31u)) & 1u) != 0;
    t.count_word_ops(1);  // bitmap shift/test
  }

  /// The next row id: a raw 4-byte word, or a decoded varint (absolute for
  /// the first call, prior + gap afterwards — the inverse of
  /// append_column_bytes's delta chain).
  vidx_t next() {
    if (raw_) {
      std::uint8_t w[4];
      g_.bytes().load_span(t_, pos_, 4, w);
      pos_ += 4;
      return static_cast<vidx_t>(
          static_cast<std::uint32_t>(w[0]) |
          static_cast<std::uint32_t>(w[1]) << 8 |
          static_cast<std::uint32_t>(w[2]) << 16 |
          static_cast<std::uint32_t>(w[3]) << 24);
    }
    std::uint32_t value = 0;
    int shift = 0;
    while (true) {
      const std::uint8_t b = g_.bytes().load(t_, pos_++);
      t_.count_word_ops(1);
      value |= static_cast<std::uint32_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) break;
      shift += 7;
    }
    acc_ = first_ ? value : acc_ + value;
    first_ = false;
    return static_cast<vidx_t>(acc_);
  }

 private:
  const DeviceCompressedCsc& g_;
  sim::ThreadCtx& t_;
  std::size_t pos_ = 0;
  std::uint32_t acc_ = 0;
  bool first_ = true;
  bool raw_ = false;
};

// ---------------------------------------------------------------------------
// Forward (masked) kernels — compressed twins of bfs_spmv_sccsc and
// bfs_spmv_pull_sccsc.
// ---------------------------------------------------------------------------

template <typename T, typename M>
void spmv_forward_push_ccsc(sim::Device& device, const DeviceCompressedCsc& g,
                            const sim::DeviceBuffer<T>& x,
                            sim::DeviceBuffer<T>& y,
                            const sim::DeviceBuffer<M>& sigma,
                            vidx_t col_base = 0) {
  sim::launch_scalar(
      device, "bfs_spmv_ccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto i = static_cast<std::size_t>(t.global_id());
        const auto gi = static_cast<std::size_t>(col_base) + i;
        if (sigma.load(t, gi) != 0) return;
        const spmv::dptr_t begin = g.col_ptr().load(t, i);
        const spmv::dptr_t end = g.col_ptr().load(t, i + 1);
        CcscCursor cur(g, t, i);
        T sum = 0;
        for (spmv::dptr_t k = begin; k < end; ++k) {
          const vidx_t row = cur.next();
          sum += x.load(t, static_cast<std::size_t>(row));
          t.count_ops(1);
        }
        if (sum > 0) y.store(t, gi, sum);
      });
}

template <typename T, typename M>
void spmv_forward_pull_ccsc(sim::Device& device, const DeviceCompressedCsc& g,
                            const sim::DeviceBuffer<T>& x,
                            const sim::DeviceBuffer<std::uint32_t>& bitmap,
                            sim::DeviceBuffer<T>& y,
                            const sim::DeviceBuffer<M>& sigma,
                            vidx_t col_base = 0) {
  sim::launch_scalar(
      device, "bfs_spmv_pull_ccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto i = static_cast<std::size_t>(t.global_id());
        const auto gi = static_cast<std::size_t>(col_base) + i;
        if (sigma.load(t, gi) != 0) return;
        const spmv::dptr_t begin = g.col_ptr().load(t, i);
        const spmv::dptr_t end = g.col_ptr().load(t, i + 1);
        CcscCursor cur(g, t, i);
        T sum = 0;
        // The gap chain is sequential, so a pulled column still decodes
        // every varint; the saving is skipping the frontier-value load on
        // bitmap misses, exactly as in the uncompressed pull kernel.
        for (spmv::dptr_t k = begin; k < end; ++k) {
          const vidx_t row = cur.next();
          const std::uint32_t word =
              bitmap.load(t, static_cast<std::size_t>(row) / 32);
          t.count_ops(1);
          if ((word >> (static_cast<std::uint32_t>(row) & 31u)) & 1u) {
            sum += x.load(t, static_cast<std::size_t>(row));
          }
        }
        if (sum > 0) y.store(t, gi, sum);
      });
}

// ---------------------------------------------------------------------------
// Backward (unmasked) kernels — compressed twins of dep_spmv_sccsc,
// dep_spmv_pull_sccsc and dep_spmv_sccsc_scatter.
// ---------------------------------------------------------------------------

template <typename T>
void spmv_backward_gather_ccsc(sim::Device& device,
                               const DeviceCompressedCsc& g,
                               const sim::DeviceBuffer<T>& x,
                               sim::DeviceBuffer<T>& y, vidx_t col_base = 0) {
  sim::launch_scalar(
      device, "dep_spmv_ccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto i = static_cast<std::size_t>(t.global_id());
        const spmv::dptr_t begin = g.col_ptr().load(t, i);
        const spmv::dptr_t end = g.col_ptr().load(t, i + 1);
        CcscCursor cur(g, t, i);
        T sum = 0;
        for (spmv::dptr_t k = begin; k < end; ++k) {
          const vidx_t row = cur.next();
          sum += x.load(t, static_cast<std::size_t>(row));
          t.count_ops(1);
        }
        if (sum != 0) {
          y.store(t, static_cast<std::size_t>(col_base) + i, sum);
        }
      });
}

template <typename T>
void spmv_backward_pull_ccsc(sim::Device& device, const DeviceCompressedCsc& g,
                             const sim::DeviceBuffer<T>& x,
                             const sim::DeviceBuffer<std::uint32_t>& bitmap,
                             sim::DeviceBuffer<T>& y, vidx_t col_base = 0) {
  sim::launch_scalar(
      device, "dep_spmv_pull_ccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto i = static_cast<std::size_t>(t.global_id());
        const spmv::dptr_t begin = g.col_ptr().load(t, i);
        const spmv::dptr_t end = g.col_ptr().load(t, i + 1);
        CcscCursor cur(g, t, i);
        T sum = 0;
        for (spmv::dptr_t k = begin; k < end; ++k) {
          const vidx_t row = cur.next();
          const std::uint32_t word =
              bitmap.load(t, static_cast<std::size_t>(row) / 32);
          t.count_ops(1);
          if ((word >> (static_cast<std::uint32_t>(row) & 31u)) & 1u) {
            sum += x.load(t, static_cast<std::size_t>(row));
          }
        }
        if (sum != 0) {
          y.store(t, static_cast<std::size_t>(col_base) + i, sum);
        }
      });
}

template <typename T>
void spmv_backward_scatter_ccsc(sim::Device& device,
                                const DeviceCompressedCsc& g,
                                const sim::DeviceBuffer<T>& x,
                                sim::DeviceBuffer<T>& y, vidx_t col_base = 0) {
  sim::launch_scalar(
      device, "dep_spmv_ccsc_scatter", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto w = static_cast<std::size_t>(t.global_id());
        const T xv = x.load(t, static_cast<std::size_t>(col_base) + w);
        if (xv == 0) return;  // zero column: no decode needed
        const spmv::dptr_t begin = g.col_ptr().load(t, w);
        const spmv::dptr_t end = g.col_ptr().load(t, w + 1);
        CcscCursor cur(g, t, w);
        for (spmv::dptr_t k = begin; k < end; ++k) {
          const vidx_t row = cur.next();
          y.atomic_add(t, static_cast<std::size_t>(row), xv);
          t.count_ops(1);
        }
      });
}

// ---------------------------------------------------------------------------
// MS-BFS (batched engine) twins — the fused SpMM level kernels of
// spmv_kernels.hpp with decoded rows, plus the two batched dependency
// sweeps that turbobc_batched.cpp otherwise writes inline over the CSC.
// ---------------------------------------------------------------------------

template <typename T>
void spmm_forward_msbfs_ccsc(
    sim::Device& device, const DeviceCompressedCsc& g, int k,
    std::uint64_t full, vidx_t depth,
    const sim::DeviceBuffer<std::uint64_t>& F,
    sim::DeviceBuffer<std::uint64_t>& V, sim::DeviceBuffer<std::uint64_t>& Fn,
    sim::DeviceBuffer<T>& sigma, sim::DeviceBuffer<std::int32_t>& S,
    sim::DeviceBuffer<std::int32_t>& cflags, bool count_degrees) {
  const auto kk = static_cast<std::size_t>(k);
  sim::launch_scalar(
      device, "bfs_spmm_msbfs_ccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto v = static_cast<std::size_t>(t.global_id());
        const std::uint64_t vis = V.load(t, v);
        t.count_word_ops(1);
        if ((vis & full) == full) return;
        const spmv::dptr_t begin = g.col_ptr().load(t, v);
        const spmv::dptr_t end = g.col_ptr().load(t, v + 1);
        CcscCursor cur(g, t, v);
        T sums[64] = {};
        std::uint64_t m = 0;
        for (spmv::dptr_t e = begin; e < end; ++e) {
          const vidx_t row = cur.next();
          const std::uint64_t w =
              F.load(t, static_cast<std::size_t>(row)) & ~vis;
          t.count_word_ops(1);
          if (w == 0) continue;
          m |= w;
          for (std::uint64_t bits = w; bits != 0; bits &= bits - 1) {
            const auto j = static_cast<std::size_t>(std::countr_zero(bits));
            sums[j] += sigma.load(t, static_cast<std::size_t>(row) * kk + j);
          }
        }
        spmv::msbfs_column_commit(t, v, k, depth, V, Fn, sigma, S, cflags,
                                  count_degrees,
                                  static_cast<std::uint64_t>(end - begin),
                                  vis, m, sums);
      });
}

template <typename T>
void spmm_forward_msbfs_pull_ccsc(
    sim::Device& device, const DeviceCompressedCsc& g, int k,
    std::uint64_t full, vidx_t depth,
    const sim::DeviceBuffer<std::uint64_t>& F,
    const sim::DeviceBuffer<std::uint32_t>& bitmap,
    sim::DeviceBuffer<std::uint64_t>& V, sim::DeviceBuffer<std::uint64_t>& Fn,
    sim::DeviceBuffer<T>& sigma, sim::DeviceBuffer<std::int32_t>& S,
    sim::DeviceBuffer<std::int32_t>& cflags, bool count_degrees) {
  const auto kk = static_cast<std::size_t>(k);
  sim::launch_scalar(
      device, "bfs_spmm_msbfs_pull_ccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto v = static_cast<std::size_t>(t.global_id());
        const std::uint64_t vis = V.load(t, v);
        t.count_word_ops(1);
        if ((vis & full) == full) return;
        const spmv::dptr_t begin = g.col_ptr().load(t, v);
        const spmv::dptr_t end = g.col_ptr().load(t, v + 1);
        CcscCursor cur(g, t, v);
        T sums[64] = {};
        std::uint64_t m = 0;
        for (spmv::dptr_t e = begin; e < end; ++e) {
          const vidx_t row = cur.next();
          const std::uint32_t word =
              bitmap.load(t, static_cast<std::size_t>(row) / 32);
          t.count_ops(1);
          if (((word >> (static_cast<std::uint32_t>(row) & 31u)) & 1u) == 0) {
            continue;
          }
          const std::uint64_t w =
              F.load(t, static_cast<std::size_t>(row)) & ~vis;
          t.count_word_ops(1);
          if (w == 0) continue;
          m |= w;
          for (std::uint64_t bits = w; bits != 0; bits &= bits - 1) {
            const auto j = static_cast<std::size_t>(std::countr_zero(bits));
            sums[j] += sigma.load(t, static_cast<std::size_t>(row) * kk + j);
          }
        }
        spmv::msbfs_column_commit(t, v, k, depth, V, Fn, sigma, S, cflags,
                                  count_degrees,
                                  static_cast<std::uint64_t>(end - begin),
                                  vis, m, sums);
      });
}

/// Batched dependency gather (undirected): compressed twin of the batched
/// engine's inline "dep_spmm_sccsc" loop.
inline void dep_spmm_gather_ccsc(sim::Device& device,
                                 const DeviceCompressedCsc& g, std::size_t k,
                                 const sim::DeviceBuffer<bc_t>& delta_u,
                                 sim::DeviceBuffer<bc_t>& delta_ut) {
  sim::launch_scalar(
      device, "dep_spmm_ccsc", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto v = static_cast<std::size_t>(t.global_id());
        const spmv::dptr_t begin = g.col_ptr().load(t, v);
        const spmv::dptr_t end = g.col_ptr().load(t, v + 1);
        CcscCursor cur(g, t, v);
        bc_t sums[64] = {};
        for (spmv::dptr_t e = begin; e < end; ++e) {
          const auto u = static_cast<std::size_t>(cur.next());
          t.count_ops(1);
          for (std::size_t j = 0; j < k; ++j) {
            sums[j] += delta_u.load(t, u * k + j);
          }
        }
        for (std::size_t j = 0; j < k; ++j) {
          if (sums[j] != 0.0) delta_ut.store(t, v * k + j, sums[j]);
        }
      });
}

/// Batched dependency scatter (directed): compressed twin of the batched
/// engine's inline "dep_spmm_sccsc_scatter" loop.
inline void dep_spmm_scatter_ccsc(sim::Device& device,
                                  const DeviceCompressedCsc& g, std::size_t k,
                                  const sim::DeviceBuffer<bc_t>& delta_u,
                                  sim::DeviceBuffer<bc_t>& delta_ut) {
  sim::launch_scalar(
      device, "dep_spmm_ccsc_scatter", static_cast<std::uint64_t>(g.n()),
      [&](sim::ThreadCtx& t) {
        const auto w = static_cast<std::size_t>(t.global_id());
        std::uint64_t live = 0;
        for (std::size_t j = 0; j < k; ++j) {
          if (delta_u.load(t, w * k + j) != 0.0) live |= 1ull << j;
        }
        if (live == 0) return;
        const spmv::dptr_t begin = g.col_ptr().load(t, w);
        const spmv::dptr_t end = g.col_ptr().load(t, w + 1);
        CcscCursor cur(g, t, w);
        for (spmv::dptr_t e = begin; e < end; ++e) {
          const auto u = static_cast<std::size_t>(cur.next());
          t.count_ops(1);
          for (std::size_t j = 0; j < k; ++j) {
            if ((live >> j) & 1ull) {
              delta_ut.atomic_add(t, u * k + j, delta_u.load(t, w * k + j));
            }
          }
        }
      });
}

}  // namespace turbobc::storage
