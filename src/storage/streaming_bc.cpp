#include "storage/streaming_bc.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "gpusim/kernel.hpp"
#include "storage/ccsc_kernels.hpp"

namespace turbobc::storage {

namespace {

double device_clock(const sim::Device& d) {
  return d.kernel_seconds() + d.transfer_seconds() + d.overhead_seconds();
}

}  // namespace

StreamingTurboBC::StreamingTurboBC(sim::Device& device,
                                   const CompressedCsc& graph,
                                   StreamingOptions options)
    : device_(device),
      options_(options),
      n_(graph.n),
      m_(graph.m),
      directed_(graph.directed) {
  TBC_CHECK(n_ > 0, "StreamingTurboBC needs a non-empty graph");
  TBC_CHECK(options_.num_shards >= 1, "need at least one column shard");
  TBC_CHECK(options_.window >= 1, "need a window of at least one shard");

  // Slice the compressed image into ShardPlan column blocks. The varint
  // stream needs no re-encoding: byte ranges per column are contiguous and
  // rows are global already, so a shard is three subranges with the offsets
  // rebased to zero.
  const dist::ShardPlan plan = dist::ShardPlan::make(n_, options_.num_shards);
  shards_.reserve(static_cast<std::size_t>(plan.num_shards));
  for (int k = 0; k < plan.num_shards; ++k) {
    const vidx_t cb = plan.col_begin(k);
    const vidx_t ce = plan.col_end(k);
    if (ce == cb) continue;  // trailing empty blocks of an uneven split
    ShardImage img;
    img.col_begin = cb;
    img.cols = ce - cb;
    const auto b = static_cast<std::size_t>(cb);
    const auto e = static_cast<std::size_t>(ce);
    const coff_t arc0 = graph.col_ptr[b];
    const coff_t byte0 = graph.byte_off[b];
    img.col_ptr.resize(e - b + 1);
    img.byte_off.resize(e - b + 1);
    for (std::size_t v = b; v <= e; ++v) {
      img.col_ptr[v - b] = graph.col_ptr[v] - arc0;
      img.byte_off[v - b] = graph.byte_off[v] - byte0;
    }
    img.stream.assign(
        graph.bytes.begin() + byte0,
        graph.bytes.begin() + graph.byte_off[e]);
    // Re-pack the format bitmap into local column positions (the global and
    // local bit offsets differ unless col_begin is a multiple of 32).
    img.fmt.assign(fmt_words(img.cols), 0u);
    for (std::size_t v = b; v < e; ++v) {
      if (graph.raw_column(static_cast<vidx_t>(v))) {
        const std::size_t lv = v - b;
        img.fmt[lv >> 5] |= 1u << (static_cast<std::uint32_t>(lv) & 31u);
      }
    }
    img.device_bytes = 8ull * (static_cast<std::uint64_t>(img.cols) + 1) +
                       4ull * static_cast<std::uint64_t>(img.fmt.size()) +
                       static_cast<std::uint64_t>(img.stream.size());
    shards_.push_back(std::move(img));
  }
  window_.resize(shards_.size());
  lru_ = LruWindow(shards_.size(), static_cast<std::size_t>(options_.window));
}

const DeviceCompressedCsc& StreamingTurboBC::resident(std::size_t k) {
  // Victim selection lives in LruWindow (unit-tested in isolation); this
  // method keeps the upload and ledger bookkeeping.
  const LruWindow::Touch touch = lru_.touch(k);
  if (touch.hit) return *window_[k];
  if (touch.evicted) {
    window_[touch.victim].reset();
    ++ledger_.evictions;
  }
  ShardImage& img = shards_[k];
  // The DeviceBuffer uploads inside this construction are the modeled PCIe
  // fetch — charged to the device's transfer ledger as they happen.
  window_[k].emplace(device_, img.cols, img.col_ptr, img.byte_off,
                     img.stream, img.fmt);
  ++ledger_.shard_uploads;
  ledger_.upload_bytes += img.device_bytes;
  if (img.uploaded_once) ledger_.refetch_bytes += img.device_bytes;
  img.uploaded_once = true;
  return *window_[k];
}

bc::SourceStats StreamingTurboBC::run_source(vidx_t source,
                                             sim::DeviceBuffer<bc_t>& bc_dev) {
  using T = sigma_t;
  TBC_CHECK(source >= 0 && source < n_, "BC source vertex out of range");
  sim::Device& dev = device_;
  const auto n = static_cast<std::size_t>(n_);

  // The per-source pipeline of TurboBC::run_source_on, push advance, with
  // every graph sweep broken into ascending-column shard launches.
  sim::DeviceBuffer<std::int32_t> S(dev, n, "S");
  sim::DeviceBuffer<T> sigma(dev, n, "sigma", 4);
  sigma.set_modeled_integer(true);
  S.device_fill(0);
  sigma.device_fill(0);

  vidx_t height = 0;
  {
    sim::DeviceBuffer<T> f(dev, n, "f", 4);
    sim::DeviceBuffer<T> ft(dev, n, "f_t", 4);
    f.set_modeled_integer(true);
    ft.set_modeled_integer(true);
    sim::DeviceBuffer<std::int32_t> cflag(dev, 1, "c");
    f.device_fill(0);

    sim::launch_scalar(dev, "bfs_init", 1, [&](sim::ThreadCtx& t) {
      f.store(t, static_cast<std::size_t>(source), T{1});
      sigma.store(t, static_cast<std::size_t>(source), T{1});
    });

    vidx_t d = 0;
    while (true) {
      ++d;
      ft.device_fill(T{0});
      for (std::size_t k = 0; k < shards_.size(); ++k) {
        spmv_forward_push_ccsc(dev, resident(k), f, ft, sigma,
                               shards_[k].col_begin);
      }
      cflag.device_fill(0);
      sim::launch_scalar(dev, "bfs_update", static_cast<std::uint64_t>(n_),
                         [&](sim::ThreadCtx& t) {
                           const auto i =
                               static_cast<std::size_t>(t.global_id());
                           const T v = ft.load(t, i);
                           t.count_ops(1);
                           f.store(t, i, v);
                           if (v != 0) {
                             S.store(t, i, d);
                             sigma.store(t, i,
                                         static_cast<T>(sigma.load(t, i) + v));
                             cflag.store(t, 0, 1);
                           }
                         });
      const auto c_host = cflag.copy_to_host();
      if (c_host[0] == 0) break;
    }
    height = d - 1;
  }

  sim::DeviceBuffer<bc_t> delta(dev, n, "delta", 4);
  sim::DeviceBuffer<bc_t> delta_u(dev, n, "delta_u", 4);
  sim::DeviceBuffer<bc_t> delta_ut(dev, n, "delta_ut", 4);
  delta.device_fill(0.0);

  for (vidx_t d = height; d >= 2; --d) {
    sim::launch_scalar(dev, "dep_prepare", static_cast<std::uint64_t>(n_),
                       [&](sim::ThreadCtx& t) {
                         const auto i = static_cast<std::size_t>(t.global_id());
                         bc_t out = 0.0;
                         if (S.load(t, i) == d) {
                           const T sg = sigma.load(t, i);
                           if (sg > 0) {
                             out = (1.0 + delta.load(t, i)) /
                                   static_cast<bc_t>(sg);
                           }
                         }
                         delta_u.store(t, i, out);
                         t.count_ops(1);
                       });
    delta_ut.device_fill(0.0);
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      if (!directed_) {
        spmv_backward_gather_ccsc(dev, resident(k), delta_u, delta_ut,
                                  shards_[k].col_begin);
      } else {
        spmv_backward_scatter_ccsc(dev, resident(k), delta_u, delta_ut,
                                   shards_[k].col_begin);
      }
    }
    sim::launch_scalar(dev, "dep_update", static_cast<std::uint64_t>(n_),
                       [&](sim::ThreadCtx& t) {
                         const auto i = static_cast<std::size_t>(t.global_id());
                         if (S.load(t, i) == d - 1) {
                           const bc_t du = delta_ut.load(t, i);
                           if (du != 0.0) {
                             const T sg = sigma.load(t, i);
                             delta.store(t, i,
                                         delta.load(t, i) +
                                             du * static_cast<bc_t>(sg));
                           }
                         }
                         t.count_ops(1);
                       });
  }

  const bc_t scale = directed_ ? 1.0 : 0.5;
  sim::launch_scalar(dev, "bc_accum", static_cast<std::uint64_t>(n_),
                     [&](sim::ThreadCtx& t) {
                       const auto i = static_cast<std::size_t>(t.global_id());
                       if (static_cast<vidx_t>(i) == source) return;
                       const bc_t dl = delta.load(t, i);
                       if (dl != 0.0) {
                         bc_dev.store(t, i, bc_dev.load(t, i) + dl * scale);
                       }
                       t.count_ops(1);
                     });

  bc::SourceStats stats;
  stats.bfs_depth = height;
  vidx_t reached = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sigma.host()[i] != 0) ++reached;
  }
  stats.reached = reached;
  return stats;
}

bc::BcResult StreamingTurboBC::run_sources(
    const std::vector<vidx_t>& sources) {
  device_.memory().reset_peak();
  const double start = device_clock(device_);

  sim::DeviceBuffer<bc_t> bc_dev(device_, static_cast<std::size_t>(n_), "bc",
                                 4);
  bc_dev.device_fill(0.0);

  bc::BcResult result;
  // Serial sources on the caller's device: the shard window is shared
  // engine state, and serial order is what makes the fetch/evict sequence —
  // and the scatter's atomic fold order — a pure function of the source
  // list at any pool width.
  for (const vidx_t s : sources) {
    result.last_source = run_source(s, bc_dev);
  }
  result.sources = static_cast<vidx_t>(sources.size());
  result.device_seconds = device_clock(device_) - start;
  result.peak_device_bytes = device_.memory().peak_bytes();
  result.bc = bc_dev.copy_to_host();  // result download, outside the clock
  return result;
}

bc::BcResult StreamingTurboBC::run_single_source(vidx_t source) {
  return run_sources({source});
}

bc::BcResult StreamingTurboBC::run_exact() {
  std::vector<vidx_t> sources(static_cast<std::size_t>(n_));
  for (vidx_t v = 0; v < n_; ++v) sources[static_cast<std::size_t>(v)] = v;
  return run_sources(sources);
}

}  // namespace turbobc::storage
