// Chunked out-of-core Matrix Market ingest (DESIGN.md §12).
//
// graph::read_matrix_market materializes the whole EdgeList before building
// a CSC — ~3 copies of the arc list live at peak, which defeats the point of
// compressed storage for graphs near host memory. This loader makes ONE pass
// over the file in fixed-size byte chunks (lines may straddle chunk
// boundaries; a partial tail is carried into the next read), appends each
// parsed arc as a fixed-width record to the spill bucket owning its column
// (contiguous column ranges from dist::ShardPlan — the same 1D partition
// the distributed engine uses), then finalizes bucket by bucket: sort by
// (column, row), drop duplicates and self-loops, delta-varint encode
// straight into the CompressedCsc. Peak host memory is one chunk buffer
// plus one bucket's records, never the whole arc list.
//
// Equivalence contract (tests/storage/test_mtx_stream.cpp): for any stream,
// the result is byte-identical to
//   encode_csc(graph::CscGraph::from_edges(graph::read_matrix_market(in)))
// and malformed input throws ParseError with the SAME message and 1-based
// line number as graph::read_matrix_market — truncation at a chunk boundary
// included.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "graph/edge_list.hpp"
#include "storage/compressed_csc.hpp"

namespace turbobc::storage {

struct ChunkedMtxOptions {
  /// Read granule in bytes (clamped to >= 64). Small values in tests force
  /// entry lines to straddle chunk boundaries.
  std::size_t chunk_bytes = 1u << 20;
  /// Columns per spill bucket — the host-memory bound of the finalize pass.
  /// The bucket count is capped at 256 open spill files.
  vidx_t bucket_cols = 1 << 15;
  /// Directory for spill files; "" uses the system temp directory. A unique
  /// subdirectory is created and removed (also on throw). Single-bucket
  /// ingests keep records in memory and never touch the disk.
  std::string spill_dir;
};

/// Chunked parse of a Matrix Market stream into a delta-varint compressed
/// CSC. Same accepted dialect and same ParseError taxonomy as
/// graph::read_matrix_market.
CompressedCsc read_matrix_market_compressed(
    std::istream& in, const ChunkedMtxOptions& options = {});

/// File wrapper; throws InvalidArgument on unreadable paths (same message as
/// graph::read_matrix_market_file).
CompressedCsc read_matrix_market_compressed_file(
    const std::string& path, const ChunkedMtxOptions& options = {});

/// Inflate a compressed graph back to an EdgeList (arcs in column-major
/// order, already canonical: unique, self-loop-free, ascending per column).
/// Lets chunk-ingested graphs feed engines that take EdgeList.
graph::EdgeList to_edge_list(const CompressedCsc& c);

}  // namespace turbobc::storage
