// Device-resident delta-varint compressed CSC (DESIGN.md §12).
//
// Four buffers mirror the host CompressedCsc layout:
//   CP_A      (n+1 dptr_t)  — edge offsets, same modeled width as DeviceCsc's
//                             column pointers so degree reads cost the same.
//   CPB_A     (n+1 dptr_t)  — byte offsets into the varint stream.
//   row_bytes (B uint8)     — the byte stream, modeled at ONE byte per
//                             element. Sequential byte loads from one column
//                             coalesce into ~4x fewer 32-byte sectors than
//                             4-byte row-id loads — the fewer-transactions
//                             side of the decode tradeoff, charged by the
//                             existing coalescing model with no cost-model
//                             changes.
//   CFMT_A    (n/32 words)  — the per-column format bitmap: raw hub columns
//                             read row ids as single 4-byte vector loads
//                             (DeviceBuffer::load_span) instead of the
//                             byte-at-a-time varint walk.
//
// The shard constructor uploads a REBASED column window: `n_cols` local
// columns with col_ptr/byte_off rebased to start at zero, used by
// StreamingTurboBC's resident window. Row ids stay global in the stream
// (they are what the varints decode to), so kernels gather from full-length
// operand vectors while writing local columns — the same convention as the
// 1D-partitioned DeviceCsc shards.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "gpusim/buffer.hpp"
#include "spmv/device_graph.hpp"
#include "storage/compressed_csc.hpp"

namespace turbobc::storage {

class DeviceCompressedCsc {
 public:
  DeviceCompressedCsc(sim::Device& device, const CompressedCsc& c)
      : n_(c.n),
        m_(c.m),
        col_ptr_(device, static_cast<std::size_t>(c.n) + 1, "CP_A"),
        byte_off_(device, static_cast<std::size_t>(c.n) + 1, "CPB_A"),
        bytes_(device, c.bytes.size(), "row_bytes",
               /*modeled_elem_bytes=*/1),
        fmt_(device, fmt_words(c.n), "CFMT_A") {
    TBC_CHECK(c.col_ptr.size() == static_cast<std::size_t>(c.n) + 1 &&
                  c.byte_off.size() == static_cast<std::size_t>(c.n) + 1,
              "compressed CSC offset arrays have wrong length");
    col_ptr_.copy_from_host(c.col_ptr);
    byte_off_.copy_from_host(c.byte_off);
    bytes_.copy_from_host(c.bytes);
    if (c.fmt.size() == fmt_words(c.n)) {
      fmt_.copy_from_host(c.fmt);
    } else {
      // Hand-built fixtures without a bitmap: all-varint.
      fmt_.copy_from_host(std::vector<std::uint32_t>(fmt_words(c.n), 0u));
    }
  }

  /// Upload a raw column shard: `n_cols` local columns whose offset arrays
  /// are rebased to zero; the varint stream still decodes to GLOBAL row ids.
  DeviceCompressedCsc(sim::Device& device, vidx_t n_cols,
                      std::vector<spmv::dptr_t> cp,
                      std::vector<spmv::dptr_t> boff,
                      std::vector<std::uint8_t> stream,
                      std::vector<std::uint32_t> fmt)
      : n_(n_cols),
        m_(cp.empty() ? 0 : static_cast<eidx_t>(cp.back())),
        col_ptr_(device, static_cast<std::size_t>(n_cols) + 1, "CP_A"),
        byte_off_(device, static_cast<std::size_t>(n_cols) + 1, "CPB_A"),
        bytes_(device, stream.size(), "row_bytes",
               /*modeled_elem_bytes=*/1),
        fmt_(device, fmt_words(n_cols), "CFMT_A") {
    TBC_CHECK(cp.size() == static_cast<std::size_t>(n_cols) + 1 &&
                  boff.size() == static_cast<std::size_t>(n_cols) + 1,
              "compressed shard offset arrays have wrong length");
    TBC_CHECK(fmt.size() == fmt_words(n_cols),
              "compressed shard format bitmap has wrong length");
    col_ptr_.copy_from_host(cp);
    byte_off_.copy_from_host(boff);
    bytes_.copy_from_host(stream);
    fmt_.copy_from_host(fmt);
  }

  /// Clone onto another device (parallel source fan-out replicas).
  DeviceCompressedCsc(sim::Device& device, const DeviceCompressedCsc& other)
      : n_(other.n_),
        m_(other.m_),
        col_ptr_(device, other.col_ptr_.size(), "CP_A"),
        byte_off_(device, other.byte_off_.size(), "CPB_A"),
        bytes_(device, other.bytes_.size(), "row_bytes",
               /*modeled_elem_bytes=*/1),
        fmt_(device, other.fmt_.size(), "CFMT_A") {
    col_ptr_.copy_from_host(other.col_ptr_.host());
    byte_off_.copy_from_host(other.byte_off_.host());
    bytes_.copy_from_host(other.bytes_.host());
    fmt_.copy_from_host(other.fmt_.host());
  }

  vidx_t n() const noexcept { return n_; }
  eidx_t m() const noexcept { return m_; }
  const sim::DeviceBuffer<spmv::dptr_t>& col_ptr() const noexcept {
    return col_ptr_;
  }
  const sim::DeviceBuffer<spmv::dptr_t>& byte_off() const noexcept {
    return byte_off_;
  }
  const sim::DeviceBuffer<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  const sim::DeviceBuffer<std::uint32_t>& fmt() const noexcept {
    return fmt_;
  }

  /// Device bytes this structure occupies under the modeled widths.
  std::uint64_t device_bytes() const noexcept {
    return 4ull * (static_cast<std::uint64_t>(n_) + 1) * 2 +
           4ull * static_cast<std::uint64_t>(fmt_.size()) +
           static_cast<std::uint64_t>(bytes_.size());
  }

 private:
  vidx_t n_;
  eidx_t m_;
  sim::DeviceBuffer<spmv::dptr_t> col_ptr_;
  sim::DeviceBuffer<spmv::dptr_t> byte_off_;
  sim::DeviceBuffer<std::uint8_t> bytes_;
  sim::DeviceBuffer<std::uint32_t> fmt_;
};

}  // namespace turbobc::storage
