// Delta-varint compressed CSC: the out-of-core graph container (DESIGN.md
// §12).
//
// Each CSC column's row ids are sorted strictly ascending (CscGraph drops
// duplicates and self-loops), so the column is stored as its first row id
// followed by the gaps to each successor, every value LEB128-encoded: seven
// payload bits per byte, high bit set on continuation bytes. Gaps are >= 1,
// so a column of d in-neighbours over a small id range costs ~d bytes
// instead of 4d — the compression the paper's footprint argument (7n + m
// words) extends to graphs whose m words alone overflow the device.
//
// Layout (CompressedCsc):
//   col_ptr  (n+1 words)  — edge offsets, identical to the CSC's CP_A. Kept
//                           because the engines read in-degrees (Beamer
//                           direction counters, MS-BFS commit) without
//                           decoding the column.
//   byte_off (n+1 words)  — byte offsets: column v's varints occupy
//                           bytes [byte_off[v], byte_off[v+1]).
//   bytes    (B bytes)    — the concatenated varint stream.
//
// Exact round-trip: decode_column reproduces the CSC's row ids byte for
// byte, which tests/storage/test_codec.cpp property-checks over every
// generator family. The decode is sequential per column — why the engines
// demote compressed runs to the thread-per-column scCSC variant.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "graph/csc.hpp"

namespace turbobc::storage {

/// 32-bit offsets, matching the device's dptr_t: both the edge count and the
/// compressed byte count must stay below 2^31 (checked at encode time).
using coff_t = std::int32_t;

struct CompressedCsc {
  vidx_t n = 0;
  eidx_t m = 0;
  bool directed = true;
  /// Edge offsets (CP_A), size n + 1.
  std::vector<coff_t> col_ptr;
  /// Byte offsets into `bytes`, size n + 1, monotone non-decreasing.
  std::vector<coff_t> byte_off;
  /// Concatenated per-column varint streams.
  std::vector<std::uint8_t> bytes;

  vidx_t num_vertices() const noexcept { return n; }
  eidx_t num_arcs() const noexcept { return m; }

  /// Device-resident bytes of this structure: two (n+1)-word offset arrays
  /// plus the varint stream. The uncompressed CSC costs (n+1) + m words.
  std::uint64_t model_bytes() const noexcept {
    return 2ull * (static_cast<std::uint64_t>(n) + 1) * 4ull +
           static_cast<std::uint64_t>(bytes.size());
  }

  /// Compression ratio of the graph structure alone: uncompressed CSC bytes
  /// over compressed bytes (> 1 means the codec won).
  double compression_ratio() const noexcept {
    const auto raw = (static_cast<double>(n) + 1.0 +
                      static_cast<double>(m)) * 4.0;
    const auto packed = static_cast<double>(model_bytes());
    return packed > 0.0 ? raw / packed : 1.0;
  }
};

/// Append `value` to `out` as LEB128 (7 payload bits per byte, high bit =
/// continuation). At most 5 bytes for a 32-bit value.
inline void varint_append(std::vector<std::uint8_t>& out,
                          std::uint32_t value) {
  while (value >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>((value & 0x7Fu) | 0x80u));
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Host-side LEB128 decode; advances `pos`. The device kernels inline the
/// same loop over a DeviceBuffer so every byte is charged in the cost model.
inline std::uint32_t varint_read(const std::uint8_t* bytes,
                                 std::size_t& pos) {
  std::uint32_t value = 0;
  int shift = 0;
  while (true) {
    const std::uint8_t b = bytes[pos++];
    value |= static_cast<std::uint32_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) return value;
    shift += 7;
  }
}

/// Delta-varint encode a CSC. Column v becomes varint(row_0) followed by
/// varint(row_k - row_{k-1}) for k >= 1 — valid because CscGraph's rows
/// ascend strictly within each column.
inline CompressedCsc encode_csc(const graph::CscGraph& g) {
  CompressedCsc c;
  c.n = g.num_vertices();
  c.m = g.num_arcs();
  c.directed = g.directed();
  TBC_CHECK(static_cast<std::uint64_t>(c.m) <=
                static_cast<std::uint64_t>(
                    std::numeric_limits<coff_t>::max()),
            "graph too large for 32-bit compressed column pointers");
  const auto n = static_cast<std::size_t>(c.n);
  c.col_ptr.resize(n + 1);
  c.byte_off.resize(n + 1);
  c.bytes.reserve(static_cast<std::size_t>(c.m));
  c.byte_off[0] = 0;
  for (std::size_t v = 0; v < n; ++v) {
    c.col_ptr[v] = static_cast<coff_t>(g.col_ptr()[v]);
    vidx_t prev = 0;
    bool first = true;
    for (eidx_t k = g.col_ptr()[v]; k < g.col_ptr()[v + 1]; ++k) {
      const vidx_t row = g.row_idx()[static_cast<std::size_t>(k)];
      TBC_CHECK(first || row > prev,
                "CSC rows must ascend strictly within each column");
      varint_append(c.bytes, first ? static_cast<std::uint32_t>(row)
                                   : static_cast<std::uint32_t>(row - prev));
      prev = row;
      first = false;
    }
    TBC_CHECK(c.bytes.size() <=
                  static_cast<std::size_t>(
                      std::numeric_limits<coff_t>::max()),
              "compressed byte stream overflows 32-bit offsets");
    c.byte_off[v + 1] = static_cast<coff_t>(c.bytes.size());
  }
  c.col_ptr[n] = static_cast<coff_t>(g.col_ptr()[n]);
  return c;
}

/// Decode one column's row ids (host side; tests and the streaming loader).
inline std::vector<vidx_t> decode_column(const CompressedCsc& c, vidx_t v) {
  std::vector<vidx_t> rows;
  const auto deg = static_cast<std::size_t>(c.col_ptr[v + 1] - c.col_ptr[v]);
  rows.reserve(deg);
  auto pos = static_cast<std::size_t>(c.byte_off[v]);
  std::uint32_t acc = 0;
  for (std::size_t k = 0; k < deg; ++k) {
    acc = (k == 0 ? varint_read(c.bytes.data(), pos)
                  : acc + varint_read(c.bytes.data(), pos));
    rows.push_back(static_cast<vidx_t>(acc));
  }
  return rows;
}

/// Full round-trip check: does `c` decode to exactly `g`'s arrays?
inline bool round_trips(const CompressedCsc& c, const graph::CscGraph& g) {
  if (c.n != g.num_vertices() || c.m != g.num_arcs()) return false;
  for (vidx_t v = 0; v < c.n; ++v) {
    const auto rows = decode_column(c, v);
    const auto begin = static_cast<std::size_t>(g.col_ptr()[v]);
    if (rows.size() !=
        static_cast<std::size_t>(g.col_ptr()[v + 1]) - begin) {
      return false;
    }
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (rows[k] != g.row_idx()[begin + k]) return false;
    }
  }
  return true;
}

}  // namespace turbobc::storage
