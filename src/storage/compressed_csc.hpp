// Delta-varint compressed CSC: the out-of-core graph container (DESIGN.md
// §12).
//
// Each CSC column's row ids are sorted strictly ascending (CscGraph drops
// duplicates and self-loops), so the column is stored as its first row id
// followed by the gaps to each successor, every value LEB128-encoded: seven
// payload bits per byte, high bit set on continuation bytes. Gaps are >= 1,
// so a column of d in-neighbours over a small id range costs ~d bytes
// instead of 4d — the compression the paper's footprint argument (7n + m
// words) extends to graphs whose m words alone overflow the device.
//
// Layout (CompressedCsc):
//   col_ptr  (n+1 words)  — edge offsets, identical to the CSC's CP_A. Kept
//                           because the engines read in-degrees (Beamer
//                           direction counters, MS-BFS commit) without
//                           decoding the column.
//   byte_off (n+1 words)  — byte offsets: column v's encoding occupies
//                           bytes [byte_off[v], byte_off[v+1]).
//   bytes    (B bytes)    — the concatenated per-column streams.
//   fmt      (n/32 words) — per-column format bitmap. Bit v clear: column v
//                           is the delta-varint chain above. Bit v set: the
//                           column is RAW — absolute row ids as 4-byte
//                           little-endian words, no deltas.
//
// The raw fallback exists for hub columns. A varint hub column with large
// gaps costs ~1.8 bytes/arc decoded one byte-load at a time, so its memory
// transactions EXCEED the uncompressed kernel's one aligned 4-byte load per
// arc — the kron hub-tail load-transaction rise bench_ooc reports. Columns
// whose degree reaches kRawColumnDegree and whose varint form exceeds
// kRawBytesPerArcX4/4 bytes per arc are stored raw instead: one 4-byte load
// per arc again, bounded stream growth (raw is never chosen where varint is
// already dense).
//
// Exact round-trip: decode_column reproduces the CSC's row ids byte for
// byte, which tests/storage/test_codec.cpp property-checks over every
// generator family. The varint decode is sequential per column — why the
// engines demote compressed runs to the thread-per-column scCSC variant.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "graph/csc.hpp"

namespace turbobc::storage {

/// 32-bit offsets, matching the device's dptr_t: both the edge count and the
/// compressed byte count must stay below 2^31 (checked at encode time).
using coff_t = std::int32_t;

/// Minimum in-degree for the raw fallback to be considered. Very short
/// columns carry the absolute-first-row varint as fixed overhead, so their
/// bytes/arc reads artificially high; below this floor the stream growth
/// from going raw outweighs the handful of saved loads (tuned against
/// bench_ooc: 8 keeps road-deep's degree-2 chains varint).
inline constexpr std::size_t kRawColumnDegree = 8;

/// Break-even density, quadrupled to stay integral: a column goes raw only
/// when its varint encoding exceeds kRawBytesPerArcX4/4 bytes per arc
/// (1.25). Below that the varint stream is dense enough that its byte loads
/// pack into fewer 32-byte sectors than raw words would need; above it the
/// multi-byte gap chains issue more load transactions than one 4-byte word
/// per arc (the kron hub-tail rise bench_ooc reports).
inline constexpr std::size_t kRawBytesPerArcX4 = 5;

/// Words in the per-column format bitmap for n columns.
inline constexpr std::size_t fmt_words(vidx_t n) noexcept {
  return (static_cast<std::size_t>(n) + 31u) / 32u;
}

struct CompressedCsc {
  vidx_t n = 0;
  eidx_t m = 0;
  bool directed = true;
  /// Edge offsets (CP_A), size n + 1.
  std::vector<coff_t> col_ptr;
  /// Byte offsets into `bytes`, size n + 1, monotone non-decreasing.
  std::vector<coff_t> byte_off;
  /// Concatenated per-column streams (varint chains or raw LE words).
  std::vector<std::uint8_t> bytes;
  /// Format bitmap, fmt_words(n) words: bit v set = column v stored raw.
  std::vector<std::uint32_t> fmt;

  vidx_t num_vertices() const noexcept { return n; }
  eidx_t num_arcs() const noexcept { return m; }

  /// Is column v stored as raw 4-byte row ids (vs a delta-varint chain)?
  /// A missing bitmap word (hand-built fixtures) means all-varint.
  bool raw_column(vidx_t v) const noexcept {
    const std::size_t w = static_cast<std::size_t>(v) >> 5;
    if (w >= fmt.size()) return false;
    return ((fmt[w] >> (static_cast<std::uint32_t>(v) & 31u)) & 1u) != 0;
  }

  /// Device-resident bytes of this structure: two (n+1)-word offset arrays,
  /// the format bitmap, and the byte stream. The uncompressed CSC costs
  /// (n+1) + m words.
  std::uint64_t model_bytes() const noexcept {
    return 2ull * (static_cast<std::uint64_t>(n) + 1) * 4ull +
           4ull * static_cast<std::uint64_t>(fmt.size()) +
           static_cast<std::uint64_t>(bytes.size());
  }

  /// Compression ratio of the graph structure alone: uncompressed CSC bytes
  /// over compressed bytes (> 1 means the codec won).
  double compression_ratio() const noexcept {
    const auto raw = (static_cast<double>(n) + 1.0 +
                      static_cast<double>(m)) * 4.0;
    const auto packed = static_cast<double>(model_bytes());
    return packed > 0.0 ? raw / packed : 1.0;
  }
};

/// Append `value` to `out` as LEB128 (7 payload bits per byte, high bit =
/// continuation). At most 5 bytes for a 32-bit value.
inline void varint_append(std::vector<std::uint8_t>& out,
                          std::uint32_t value) {
  while (value >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>((value & 0x7Fu) | 0x80u));
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Host-side LEB128 decode; advances `pos`. The device kernels inline the
/// same loop over a DeviceBuffer so every byte is charged in the cost model.
inline std::uint32_t varint_read(const std::uint8_t* bytes,
                                 std::size_t& pos) {
  std::uint32_t value = 0;
  int shift = 0;
  while (true) {
    const std::uint8_t b = bytes[pos++];
    value |= static_cast<std::uint32_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) return value;
    shift += 7;
  }
}

/// Append one column's `deg` strictly-ascending row ids to `bytes` in the
/// cheaper of the two formats; returns true when the column went raw. The
/// single encode path shared by encode_csc and the chunked Matrix Market
/// loader: the varint chain is written first and rewound (a resize, no
/// copy) when the raw rule fires, so both callers apply bit-identical
/// format decisions.
inline bool append_column_bytes(std::vector<std::uint8_t>& bytes,
                                const vidx_t* rows, std::size_t deg) {
  const std::size_t start = bytes.size();
  vidx_t prev = 0;
  for (std::size_t k = 0; k < deg; ++k) {
    const vidx_t row = rows[k];
    TBC_CHECK(k == 0 || row > prev,
              "CSC rows must ascend strictly within each column");
    varint_append(bytes, k == 0 ? static_cast<std::uint32_t>(row)
                                : static_cast<std::uint32_t>(row - prev));
    prev = row;
  }
  if (deg < kRawColumnDegree ||
      4 * (bytes.size() - start) <= kRawBytesPerArcX4 * deg) {
    return false;
  }
  bytes.resize(start);
  for (std::size_t k = 0; k < deg; ++k) {
    const auto row = static_cast<std::uint32_t>(rows[k]);
    bytes.push_back(static_cast<std::uint8_t>(row & 0xFFu));
    bytes.push_back(static_cast<std::uint8_t>((row >> 8) & 0xFFu));
    bytes.push_back(static_cast<std::uint8_t>((row >> 16) & 0xFFu));
    bytes.push_back(static_cast<std::uint8_t>((row >> 24) & 0xFFu));
  }
  return true;
}

/// Compress a CSC: per column, delta-varint or the raw hub fallback (see
/// append_column_bytes). Valid because CscGraph's rows ascend strictly
/// within each column.
inline CompressedCsc encode_csc(const graph::CscGraph& g) {
  CompressedCsc c;
  c.n = g.num_vertices();
  c.m = g.num_arcs();
  c.directed = g.directed();
  TBC_CHECK(static_cast<std::uint64_t>(c.m) <=
                static_cast<std::uint64_t>(
                    std::numeric_limits<coff_t>::max()),
            "graph too large for 32-bit compressed column pointers");
  const auto n = static_cast<std::size_t>(c.n);
  c.col_ptr.resize(n + 1);
  c.byte_off.resize(n + 1);
  c.fmt.assign(fmt_words(c.n), 0u);
  c.bytes.reserve(static_cast<std::size_t>(c.m));
  c.byte_off[0] = 0;
  for (std::size_t v = 0; v < n; ++v) {
    c.col_ptr[v] = static_cast<coff_t>(g.col_ptr()[v]);
    const auto begin = static_cast<std::size_t>(g.col_ptr()[v]);
    const auto deg = static_cast<std::size_t>(g.col_ptr()[v + 1]) - begin;
    if (append_column_bytes(c.bytes, g.row_idx().data() + begin, deg)) {
      c.fmt[v >> 5] |= 1u << (v & 31u);
    }
    TBC_CHECK(c.bytes.size() <=
                  static_cast<std::size_t>(
                      std::numeric_limits<coff_t>::max()),
              "compressed byte stream overflows 32-bit offsets");
    c.byte_off[v + 1] = static_cast<coff_t>(c.bytes.size());
  }
  c.col_ptr[n] = static_cast<coff_t>(g.col_ptr()[n]);
  return c;
}

/// Decode one column's row ids (host side; tests and the streaming loader).
inline std::vector<vidx_t> decode_column(const CompressedCsc& c, vidx_t v) {
  std::vector<vidx_t> rows;
  const auto deg = static_cast<std::size_t>(c.col_ptr[v + 1] - c.col_ptr[v]);
  rows.reserve(deg);
  auto pos = static_cast<std::size_t>(c.byte_off[v]);
  if (c.raw_column(v)) {
    for (std::size_t k = 0; k < deg; ++k, pos += 4) {
      const std::uint32_t row =
          static_cast<std::uint32_t>(c.bytes[pos]) |
          static_cast<std::uint32_t>(c.bytes[pos + 1]) << 8 |
          static_cast<std::uint32_t>(c.bytes[pos + 2]) << 16 |
          static_cast<std::uint32_t>(c.bytes[pos + 3]) << 24;
      rows.push_back(static_cast<vidx_t>(row));
    }
    return rows;
  }
  std::uint32_t acc = 0;
  for (std::size_t k = 0; k < deg; ++k) {
    acc = (k == 0 ? varint_read(c.bytes.data(), pos)
                  : acc + varint_read(c.bytes.data(), pos));
    rows.push_back(static_cast<vidx_t>(acc));
  }
  return rows;
}

/// Full round-trip check: does `c` decode to exactly `g`'s arrays?
inline bool round_trips(const CompressedCsc& c, const graph::CscGraph& g) {
  if (c.n != g.num_vertices() || c.m != g.num_arcs()) return false;
  for (vidx_t v = 0; v < c.n; ++v) {
    const auto rows = decode_column(c, v);
    const auto begin = static_cast<std::size_t>(g.col_ptr()[v]);
    if (rows.size() !=
        static_cast<std::size_t>(g.col_ptr()[v + 1]) - begin) {
      return false;
    }
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (rows[k] != g.row_idx()[begin + k]) return false;
    }
  }
  return true;
}

}  // namespace turbobc::storage
