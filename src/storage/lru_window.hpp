// LruWindow: the eviction policy of the streaming shard window, split from
// StreamingTurboBC so the victim-selection order is a testable unit (and
// reusable by any future bounded device-resident cache).
//
// The window tracks `slots` keys of which at most `capacity` are resident.
// touch(k) bumps k's recency and reports what the caller must do: nothing
// (hit), upload (miss with room), or evict `victim` then upload (miss with
// a full window). Victim selection is the least-recently-used resident
// slot; ticks are unique under the serial streaming engine so there are no
// ties, and a hypothetical tie goes to the lowest slot index — fully
// deterministic, which the streaming engine's bit-identity contract needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace turbobc::storage {

class LruWindow {
 public:
  struct Touch {
    bool hit = false;      ///< already resident; no upload needed
    bool evicted = false;  ///< window was full; `victim` was dropped
    std::size_t victim = 0;
  };

  /// `slots` keys, at most `capacity` (>= 1) resident at a time.
  LruWindow(std::size_t slots, std::size_t capacity);

  /// Mark slot `k` used now; make it resident, evicting the LRU resident
  /// slot if the window is at capacity.
  Touch touch(std::size_t k);

  bool resident(std::size_t k) const { return resident_.at(k); }
  std::size_t resident_count() const noexcept { return resident_count_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t slots() const noexcept { return resident_.size(); }

 private:
  std::vector<bool> resident_;
  std::vector<std::uint64_t> last_use_;
  std::uint64_t tick_ = 0;
  std::size_t resident_count_ = 0;
  std::size_t capacity_ = 1;
};

}  // namespace turbobc::storage
