// Shared grammar and rendering for the serve session language — the single
// definition both `turbobc_cli serve` (script/stdin sessions, session.cpp)
// and the socket daemon (src/daemon/) speak.
//
// Grammar: one command per line —
//
//   bc [K]           full exact BC; print the top K vertices (default top)
//   top K            ranked vertex ids only (same order as bc)
//   approx EPS [D]   adaptive approximate BC to (EPS, D); D defaults to 0.1
//   insert U V       insert edge (both arcs when the graph is undirected)
//   delete U V       delete edge (ditto)
//   stats            running engine counters
//
// plus, under Grammar::kDaemon only,
//
//   metrics          live serving counters (queue depth, latency quantiles)
//   shutdown         graceful daemon stop (drain in-flight, then exit)
//
// Rendering: one line per event, plain text or JSON Lines, byte-identical
// across runs and pool widths in both modes. RenderOptions::wire switches to
// the daemon's epoch-deterministic schema: every event is stamped with the
// graph epoch it was computed against, bc events carry a 64-bit FNV-1a
// digest of the full BC vector's raw double bytes (bit-identity is gateable
// over the wire despite %.6f display rounding), and the order-sensitive
// cache fields (per-query recomputed/cached, per-update invalidated/valid
// counts) are DROPPED — under concurrent connections those depend on
// interleaving; the aggregate story lives on the metrics plane instead. A
// wire response is therefore a pure function of (command, epoch), which is
// what the daemon_agreement oracle and bench_daemon replay against.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/serve_engine.hpp"

namespace turbobc::serve {

/// A parsed command line.
struct Command {
  enum Kind {
    kBc,
    kTop,
    kApprox,
    kInsert,
    kDelete,
    kStats,
    kMetrics,   // daemon grammar only
    kShutdown,  // daemon grammar only
  } kind = kBc;
  vidx_t k = 0;  // kBc / kTop
  vidx_t u = 0, v = 0;
  double epsilon = 0.0, delta = 0.0;

  bool is_update() const noexcept { return kind == kInsert || kind == kDelete; }
  bool is_query() const noexcept {
    return kind == kBc || kind == kTop || kind == kApprox || kind == kStats;
  }
};

/// Which command set a line is parsed against.
enum class Grammar { kSession, kDaemon };

/// Parse one line against the grammar. Blank lines and '#' comments return
/// nullopt. A malformed line throws UsageError with "serve: ..." prose (no
/// source-location decoration) — session mode turns that into exit 2, the
/// daemon into an `error` response. `n` bounds vertex arguments;
/// `default_top` fills a bare `bc`.
std::optional<Command> parse_command(const std::string& line, vidx_t n,
                                     vidx_t default_top, Grammar grammar);

/// 64-bit FNV-1a over a raw byte range.
std::uint64_t fnv1a64(const void* data, std::size_t size) noexcept;

/// Digest of a BC vector's raw double bytes: equal digests over the wire
/// mean bit-identical vectors (modulo 2^-64 collisions), which is how remote
/// clients gate served results against a scratch replay.
std::uint64_t bc_digest(const std::vector<bc_t>& bc) noexcept;

/// Fixed-width lower-case hex (16 digits) of a digest.
std::string digest_hex(std::uint64_t digest);

struct RenderOptions {
  /// JSON Lines instead of plain text.
  bool json = false;
  /// Daemon wire schema: epoch stamps + bc digests, no order-sensitive
  /// cache fields (see file comment).
  bool wire = false;
};

// Each renderer returns one complete line INCLUDING the trailing '\n' (bc in
// text mode is one line per ranked vertex plus the header). With
// RenderOptions{json, false} the output is byte-identical to the historical
// session transcript — the serve goldens pin it.
std::string render_hello(const ServeEngine& engine, const RenderOptions& r);
std::string render_bc(const ServeEngine& engine, const std::vector<bc_t>& bc,
                      const std::vector<vidx_t>& top, const QueryStats& stats,
                      std::uint64_t epoch, const RenderOptions& r);
std::string render_top(const std::vector<vidx_t>& top, std::uint64_t epoch,
                       const RenderOptions& r);
std::string render_approx(double epsilon, double delta,
                          const approx::ApproxResult& result,
                          std::uint64_t epoch, const RenderOptions& r);
std::string render_update(const char* op, vidx_t u, vidx_t v,
                          const UpdateStats& stats, std::uint64_t epoch,
                          const RenderOptions& r);
std::string render_stats(const ServeEngine::Counters& c,
                         const RenderOptions& r);

// Daemon-only responses (no non-wire legacy form to preserve).
std::string render_error(const std::string& detail, const RenderOptions& r);
std::string render_busy(std::size_t pending, std::size_t limit,
                        const RenderOptions& r);
std::string render_bye(std::uint64_t epoch, const RenderOptions& r);

/// Escape a string for embedding inside a JSON string literal.
std::string json_escape(const std::string& s);

}  // namespace turbobc::serve
