// Line-based serve session: the serve command language (see
// serve/protocol.hpp for the grammar) run against a fresh ServeEngine, the
// substance of `turbobc_cli serve`.
//
// Blank lines and lines starting with '#' are skipped. The WHOLE script is
// parsed before anything executes; a malformed line throws UsageError
// ("serve: ..." prose, no source-location decoration) with nothing written
// to the output stream, so the CLI exits 2 with a golden-stable stderr
// message and an empty stdout — the repo-wide misuse contract.
//
// Output is one line per command — plain text or, with SessionOptions::json,
// JSON Lines — preceded by a header line describing the loaded graph. Every
// number printed is deterministic (modeled clock, fixed fold order, index
// tie-breaks), so a transcript is byte-identical across runs and pool
// widths; the qa oracle and golden tests compare transcripts verbatim.
//
// SessionOptions::wire switches to the daemon wire schema (epoch stamps, bc
// digests, no order-sensitive cache fields): a single daemon connection
// replaying the same command sequence produces a byte-identical transcript
// to `serve --wire --script`, which is what daemon-smoke and the
// daemon_agreement oracle compare.
#pragma once

#include <iosfwd>

#include "serve/serve_engine.hpp"

namespace turbobc::serve {

struct SessionOptions {
  /// JSON Lines instead of plain text.
  bool json = false;
  /// Daemon wire schema (epoch stamps + digests; see serve/protocol.hpp).
  bool wire = false;
  /// Default K of a bare `bc` command.
  vidx_t top = 5;
  ServeOptions engine;
};

/// Run the whole script (one command per line) against a fresh engine on
/// `graph`, writing one transcript line per command to `out`. Returns the
/// engine's final counters. Throws UsageError on the first malformed line,
/// before any output is written.
ServeEngine::Counters run_session(graph::EdgeList graph,
                                  const SessionOptions& options,
                                  std::istream& script, std::ostream& out);

}  // namespace turbobc::serve
