// Line-based serve session: a tiny command language over ServeEngine, the
// substance of `turbobc_cli serve`. One command per line:
//
//   bc [K]           full exact BC; print the top K vertices (default top)
//   top K            ranked vertex ids only (same order as bc)
//   approx EPS [D]   adaptive approximate BC to (EPS, D); D defaults to 0.1
//   insert U V       insert edge (both arcs when the graph is undirected)
//   delete U V       delete edge (ditto)
//   stats            running engine counters
//
// Blank lines and lines starting with '#' are skipped. The WHOLE script is
// parsed before anything executes; a malformed line throws UsageError
// ("serve: ..." prose, no source-location decoration) with nothing written
// to the output stream, so the CLI exits 2 with a golden-stable stderr
// message and an empty stdout — the repo-wide misuse contract.
//
// Output is one line per command — plain text or, with SessionOptions::json,
// JSON Lines — preceded by a header line describing the loaded graph. Every
// number printed is deterministic (modeled clock, fixed fold order, index
// tie-breaks), so a transcript is byte-identical across runs and pool
// widths; the qa oracle and golden tests compare transcripts verbatim.
#pragma once

#include <iosfwd>

#include "serve/serve_engine.hpp"

namespace turbobc::serve {

struct SessionOptions {
  /// JSON Lines instead of plain text.
  bool json = false;
  /// Default K of a bare `bc` command.
  vidx_t top = 5;
  ServeOptions engine;
};

/// Run the whole script (one command per line) against a fresh engine on
/// `graph`, writing one transcript line per command to `out`. Returns the
/// engine's final counters. Throws UsageError on the first malformed line,
/// before any output is written.
ServeEngine::Counters run_session(graph::EdgeList graph,
                                  const SessionOptions& options,
                                  std::istream& script, std::ostream& out);

}  // namespace turbobc::serve
